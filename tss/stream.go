package tss

import (
	"context"
	"fmt"

	"tasksuperscalar/internal/taskmodel"
)

// Task is one dynamic kernel invocation: the unit the task-generating
// thread emits and the pipeline decodes.
type Task = taskmodel.Task

// Generator produces a task stream lazily, one task per Next call, exactly
// as the paper's task-generating thread emits tasks while the pipeline is
// already executing older ones (§III.C). Next returns the next task and
// true, or nil and false when the stream ends. Tasks may be constructed on
// demand — the runtime never needs the whole program in memory, so streams
// can be arbitrarily long.
//
// Generators must be deterministic: two generators constructed the same way
// must yield identical tasks, so a streamed run can be validated against a
// pre-recorded one.
type Generator interface {
	Next() (*Task, bool)
}

// GeneratorFunc adapts a function to a Generator.
type GeneratorFunc func() (*Task, bool)

// Next implements Generator.
func (f GeneratorFunc) Next() (*Task, bool) { return f() }

// Generator returns a Generator replaying the program's recorded tasks in
// order (for comparing streamed against pre-recorded execution).
func (p *Program) Generator() Generator {
	s := p.Stream()
	return GeneratorFunc(func() (*Task, bool) {
		t := s.Next()
		return t, t != nil
	})
}

// TaskBuilder carries the kernel registry and object allocator of a
// streaming program — the same bookkeeping Program provides, without
// recording tasks. A Generator typically owns one and calls NewTask from
// its Next method:
//
//	b := tss.NewTaskBuilder()
//	k := b.Kernel("stage")
//	i := 0
//	gen := tss.GeneratorFunc(func() (*tss.Task, bool) {
//		if i == 1_000_000 {
//			return nil, false
//		}
//		i++
//		obj := b.Alloc(4 << 10)
//		return b.NewTask(k, tss.Microseconds(20), tss.InOut(obj, 4<<10)), true
//	})
//	res, err := tss.RunStream(gen, cfg)
type TaskBuilder struct {
	reg   taskmodel.Registry
	alloc taskmodel.Allocator
}

// NewTaskBuilder returns a builder whose allocator starts at the default
// program base.
func NewTaskBuilder() *TaskBuilder { return NewTaskBuilderAt(0x1000_0000) }

// NewTaskBuilderAt returns a builder whose allocator starts at base (use
// distinct bases for generators that will run partitioned).
func NewTaskBuilderAt(base Addr) *TaskBuilder {
	return &TaskBuilder{alloc: taskmodel.NewAllocator(base)}
}

// Kernel registers (or looks up) a kernel by name.
func (b *TaskBuilder) Kernel(name string) KernelID { return b.reg.Register(name) }

// Registry exposes the kernel registry (for graph rendering).
func (b *TaskBuilder) Registry() *taskmodel.Registry { return &b.reg }

// Alloc reserves a fresh page-aligned memory object and returns its base.
func (b *TaskBuilder) Alloc(size uint32) Addr { return b.alloc.Alloc(size) }

// NewTask builds one task without recording it anywhere; the runtime
// assigns its sequence number when the task is pulled.
func (b *TaskBuilder) NewTask(k KernelID, runtimeCycles uint64, ops ...Operand) *Task {
	return &Task{Kernel: k, Operands: ops, Runtime: runtimeCycles}
}

// seqCounter hands out globally unique sequence numbers across the streams
// of one run (partitioned streaming runs share one counter so gateway
// references stay unambiguous).
type seqCounter struct{ next uint64 }

// countingStream adapts a task source into the internal taskmodel.Stream,
// validating architectural limits and accumulating the run accounting
// (task count and total work) that the slice-based path used to compute by
// re-walking the program. It holds no tasks itself, so a streamed run's
// memory stays proportional to the pipeline's in-flight window.
type countingStream struct {
	src  taskmodel.Stream
	seqs *seqCounter // nil: keep the sequence numbers already assigned

	n    uint64 // tasks handed to the runtime
	work uint64 // sum of their runtimes
	err  error  // validation failure; ends the stream early
}

func newCountingStream(src taskmodel.Stream, seqs *seqCounter) *countingStream {
	return &countingStream{src: src, seqs: seqs}
}

// generatorStream adapts a public Generator to taskmodel.Stream.
type generatorStream struct{ g Generator }

func (s generatorStream) Next() *taskmodel.Task {
	t, ok := s.g.Next()
	if !ok {
		return nil
	}
	return t
}

// Next implements taskmodel.Stream.
func (s *countingStream) Next() *taskmodel.Task {
	if s.err != nil {
		return nil
	}
	t := s.src.Next()
	if t == nil {
		return nil
	}
	if t.NumOperands() > MaxOperands {
		s.err = fmt.Errorf("tss: task %d has %d operands; the pipeline supports at most %d",
			s.n, t.NumOperands(), MaxOperands)
		return nil
	}
	if s.seqs != nil {
		t.Seq = s.seqs.next
		s.seqs.next++
	}
	s.n++
	s.work += t.Runtime
	return t
}

// RunStream executes a lazily generated task stream. Unlike Run, memory is
// bounded by the pipeline's in-flight window rather than the stream length:
// per-task schedule recording and consumer-chain statistics are disabled
// (Result.Start and Result.Finish are nil; set Config.OnComplete to observe
// retirement instead), and the generator is paced by gateway back-pressure,
// so streams of millions of tasks run in O(window) space.
func RunStream(g Generator, cfg Config) (*Result, error) {
	return RunStreamCtx(context.Background(), g, cfg)
}

// RunStreamCtx is RunStream with cooperative cancellation: the engine loop
// polls ctx every Config.CancelCheckCycles simulated cycles (see RunCtx) and
// a cancelled stream is abandoned with an error wrapping ctx.Err().
func RunStreamCtx(ctx context.Context, g Generator, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Backend.RecordSchedule = false
	cfg.Frontend.RecordChains = false
	st := newCountingStream(generatorStream{g}, &seqCounter{})
	return dispatchRun(ctx, st, cfg, false)
}

// RunStreamPartitioned executes several lazily generated streams, one
// task-generating thread each, on the hardware pipeline (the streaming
// analogue of RunPartitioned). Partitions must not share memory objects;
// with unbounded streams this cannot be checked up front, so the caller is
// responsible for data partitioning (build each generator from a
// NewTaskBuilderAt with a distinct base).
func RunStreamPartitioned(gens []Generator, cfg Config) (*Result, error) {
	return RunStreamPartitionedCtx(context.Background(), gens, cfg)
}

// RunStreamPartitionedCtx is RunStreamPartitioned with cooperative
// cancellation (see RunStreamCtx).
func RunStreamPartitionedCtx(ctx context.Context, gens []Generator, cfg Config) (*Result, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("tss: no generators")
	}
	if cfg.Runtime != HardwarePipeline {
		return nil, fmt.Errorf("tss: RunStreamPartitioned requires the hardware pipeline")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Backend.RecordSchedule = false
	cfg.Frontend.RecordChains = false
	seqs := &seqCounter{}
	streams := make([]*countingStream, len(gens))
	for i, g := range gens {
		streams[i] = newCountingStream(generatorStream{g}, seqs)
	}
	return runHardwareMulti(ctx, streams, cfg, false)
}
