package tss

import (
	"fmt"

	"tasksuperscalar/internal/backend"
	"tasksuperscalar/internal/core"
	"tasksuperscalar/internal/mem"
	"tasksuperscalar/internal/softrt"
)

// RuntimeKind selects how tasks are decoded and scheduled.
type RuntimeKind int

const (
	// HardwarePipeline runs the task superscalar frontend (the paper's
	// contribution).
	HardwarePipeline RuntimeKind = iota
	// SoftwareRuntime runs the StarSs software-decoder baseline.
	SoftwareRuntime
	// Sequential executes tasks back-to-back on one core (the speedup
	// denominator).
	Sequential
)

// String names the runtime kind.
func (k RuntimeKind) String() string {
	switch k {
	case HardwarePipeline:
		return "task-superscalar"
	case SoftwareRuntime:
		return "software-runtime"
	case Sequential:
		return "sequential"
	}
	return fmt.Sprintf("RuntimeKind(%d)", int(k))
}

// MaxOperands is the pipeline's per-task operand limit (19: one main TRS
// block plus three indirect blocks).
const MaxOperands = core.MaxOperands

// Config describes the simulated machine.
type Config struct {
	// Runtime selects the decode/schedule engine.
	Runtime RuntimeKind

	// Cores is the number of worker processors (Table II: 32-256).
	Cores int
	// CoresPerRing is the local-ring arity (Table II: 8).
	CoresPerRing int

	// Frontend sizes the hardware pipeline (ignored for other runtimes).
	Frontend core.Config
	// Software configures the software-runtime baseline.
	Software softrt.Config

	// Backend sizes the Carbon-like queuing system. Cores is overridden
	// by the Cores field above.
	Backend backend.Config

	// Memory enables the coherent memory hierarchy (L1/L2/directory/
	// DRAM); without it operand staging is free and only decode and
	// dependency timing are modeled.
	Memory bool
	// LineDetailMemory additionally drives line-granular L1 models.
	LineDetailMemory bool

	// OnComplete, when set, observes every task retirement (sequence
	// number and completion cycle) as it happens. It is the bounded-memory
	// alternative to Result.Start/Finish for streamed runs.
	OnComplete func(seq, cycle uint64)

	// CancelCheckCycles is the simulated-cycle granularity at which the
	// context-taking entry points (RunCtx, RunTasksCtx, RunStreamCtx) poll
	// for cancellation (0: sim.DefaultCancelCheckCycles). Like OnComplete
	// it is an observer, not machine state: it never alters event order,
	// so it is excluded from CanonicalString and cannot change a result.
	CancelCheckCycles uint64

	// Shards runs the simulation on the engine's sharded executor: the
	// pending-event set is partitioned across Shards goroutine-owned
	// calendar queues, with events committed in global (cycle, seq) order
	// (<= 1 selects the serial loop; values above sim.MaxShards are
	// clamped). Like CancelCheckCycles it is an observer, not machine
	// state: a sharded run is bit-for-bit identical to the serial run at
	// every shard count, so Shards is excluded from CanonicalString and
	// cannot change a result. See docs/ARCHITECTURE.md, "Parallel engine".
	Shards int
}

// DefaultConfig returns the paper's operating point: 256 cores, 8 TRS,
// 2 ORT/OVT (7 MB eDRAM), memory system enabled.
func DefaultConfig() Config {
	return Config{
		Runtime:      HardwarePipeline,
		Cores:        256,
		CoresPerRing: 8,
		Frontend:     core.DefaultConfig(),
		Software:     softrt.DefaultConfig(),
		Backend:      backend.DefaultConfig(256),
		Memory:       true,
	}
}

// WithCores returns the config resized to n worker cores.
func (c Config) WithCores(n int) Config {
	c.Cores = n
	c.Backend.Cores = n
	return c
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("tss: need at least one core, got %d", c.Cores)
	}
	if c.CoresPerRing < 1 {
		return fmt.Errorf("tss: cores per ring must be positive, got %d", c.CoresPerRing)
	}
	if c.Runtime == HardwarePipeline {
		if c.Frontend.NumTRS < 1 || c.Frontend.NumORT < 1 {
			return fmt.Errorf("tss: hardware pipeline needs >=1 TRS and >=1 ORT")
		}
	}
	return nil
}

// memSystemConfig derives the memory-system configuration.
func (c Config) memSystemConfig() mem.SystemConfig {
	mc := mem.DefaultSystemConfig(c.Cores)
	mc.LineDetail = c.LineDetailMemory
	return mc
}
