package tss

import (
	"fmt"
	"strconv"
	"strings"

	"tasksuperscalar/internal/backend"
	"tasksuperscalar/internal/core"
	"tasksuperscalar/internal/mem"
	"tasksuperscalar/internal/softrt"
)

// RuntimeKind selects how tasks are decoded and scheduled.
type RuntimeKind int

const (
	// HardwarePipeline runs the task superscalar frontend (the paper's
	// contribution).
	HardwarePipeline RuntimeKind = iota
	// SoftwareRuntime runs the StarSs software-decoder baseline.
	SoftwareRuntime
	// Sequential executes tasks back-to-back on one core (the speedup
	// denominator).
	Sequential
)

// String names the runtime kind.
func (k RuntimeKind) String() string {
	switch k {
	case HardwarePipeline:
		return "task-superscalar"
	case SoftwareRuntime:
		return "software-runtime"
	case Sequential:
		return "sequential"
	}
	return fmt.Sprintf("RuntimeKind(%d)", int(k))
}

// MaxOperands is the pipeline's per-task operand limit (19: one main TRS
// block plus three indirect blocks).
const MaxOperands = core.MaxOperands

// WorkerClass re-exports the backend's worker-class descriptor so callers
// configuring heterogeneous machines need not import internal packages.
type WorkerClass = backend.WorkerClass

// DispatchStats re-exports the backend's per-run dispatch accounting.
type DispatchStats = backend.DispatchStats

// DispatchRecord re-exports one observed dispatch decision.
type DispatchRecord = backend.DispatchRecord

// PolicyNames lists the built-in dispatch policies in a stable order.
func PolicyNames() []string { return backend.PolicyNames() }

// Built-in dispatch policy names (see internal/backend for semantics).
const (
	PolicyFIFO         = backend.PolicyFIFO
	PolicyCriticalPath = backend.PolicyCriticalPath
	PolicyHetero       = backend.PolicyHetero
	PolicySpec         = backend.PolicySpec
)

// Config describes the simulated machine.
type Config struct {
	// Runtime selects the decode/schedule engine.
	Runtime RuntimeKind

	// Cores is the number of worker processors (Table II: 32-256).
	Cores int
	// CoresPerRing is the local-ring arity (Table II: 8).
	CoresPerRing int

	// Frontend sizes the hardware pipeline (ignored for other runtimes).
	Frontend core.Config
	// Software configures the software-runtime baseline.
	Software softrt.Config

	// Backend sizes the Carbon-like queuing system. Cores is overridden
	// by the Cores field above.
	Backend backend.Config

	// Policy selects the backend dispatch policy by name ("" = "fifo";
	// see backend.PolicyNames). It is machine state — different policies
	// schedule different (task, worker, cycle) triples — so it
	// participates in canonicalization, unlike the Shards observer. A
	// policy set here overrides Backend.Policy; both spellings
	// canonicalize identically (EffectivePolicy).
	Policy string

	// WorkerClasses partitions the worker cores into named execution
	// classes (backend.WorkerClass): the first class takes the first
	// Count cores, and so on; leftover cores form the baseline. Class
	// speeds scale execution under every policy; the hetero policy also
	// places tasks by class affinity. Machine state, canonicalized.
	// Overrides Backend.WorkerClasses when non-nil.
	WorkerClasses []WorkerClass

	// Memory enables the coherent memory hierarchy (L1/L2/directory/
	// DRAM); without it operand staging is free and only decode and
	// dependency timing are modeled.
	Memory bool
	// LineDetailMemory additionally drives line-granular L1 models.
	LineDetailMemory bool

	// OnComplete, when set, observes every task retirement (sequence
	// number and completion cycle) as it happens. It is the bounded-memory
	// alternative to Result.Start/Finish for streamed runs.
	OnComplete func(seq, cycle uint64)

	// CancelCheckCycles is the simulated-cycle granularity at which the
	// context-taking entry points (RunCtx, RunTasksCtx, RunStreamCtx) poll
	// for cancellation (0: sim.DefaultCancelCheckCycles). Like OnComplete
	// it is an observer, not machine state: it never alters event order,
	// so it is excluded from CanonicalString and cannot change a result.
	CancelCheckCycles uint64

	// Shards runs the simulation on the engine's sharded executor: the
	// pending-event set is partitioned across Shards goroutine-owned
	// calendar queues, with events committed in global (cycle, seq) order
	// (<= 1 selects the serial loop; values above sim.MaxShards are
	// clamped). Like CancelCheckCycles it is an observer, not machine
	// state: a sharded run is bit-for-bit identical to the serial run at
	// every shard count, so Shards is excluded from CanonicalString and
	// cannot change a result. See docs/ARCHITECTURE.md, "Parallel engine".
	Shards int
}

// DefaultConfig returns the paper's operating point: 256 cores, 8 TRS,
// 2 ORT/OVT (7 MB eDRAM), memory system enabled.
func DefaultConfig() Config {
	return Config{
		Runtime:      HardwarePipeline,
		Cores:        256,
		CoresPerRing: 8,
		Frontend:     core.DefaultConfig(),
		Software:     softrt.DefaultConfig(),
		Backend:      backend.DefaultConfig(256),
		Memory:       true,
	}
}

// WithCores returns the config resized to n worker cores.
func (c Config) WithCores(n int) Config {
	c.Cores = n
	c.Backend.Cores = n
	return c
}

// EffectivePolicy resolves the dispatch policy: the top-level Policy wins,
// then Backend.Policy, then "fifo". Canonicalization uses the resolved
// value, so both spellings fingerprint identically.
func (c Config) EffectivePolicy() string {
	if c.Policy != "" {
		return c.Policy
	}
	if c.Backend.Policy != "" {
		return c.Backend.Policy
	}
	return backend.PolicyFIFO
}

// EffectiveWorkerClasses resolves the worker-class mix (top-level wins).
func (c Config) EffectiveWorkerClasses() []WorkerClass {
	if c.WorkerClasses != nil {
		return c.WorkerClasses
	}
	return c.Backend.WorkerClasses
}

// validClassName matches class names that survive canonical encoding
// unambiguously (no separators used by the encoding).
func validClassName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("tss: need at least one core, got %d", c.Cores)
	}
	if c.CoresPerRing < 1 {
		return fmt.Errorf("tss: cores per ring must be positive, got %d", c.CoresPerRing)
	}
	if c.Runtime == HardwarePipeline {
		if c.Frontend.NumTRS < 1 || c.Frontend.NumORT < 1 {
			return fmt.Errorf("tss: hardware pipeline needs >=1 TRS and >=1 ORT")
		}
	}
	if p := c.EffectivePolicy(); !backend.ValidPolicy(p) {
		return fmt.Errorf("tss: unknown dispatch policy %q (have %v)", p, backend.PolicyNames())
	}
	classes := c.EffectiveWorkerClasses()
	if len(classes) > 64 {
		return fmt.Errorf("tss: at most 64 worker classes, got %d", len(classes))
	}
	total := 0
	for i, wc := range classes {
		if !validClassName(wc.Name) {
			return fmt.Errorf("tss: worker class %d has invalid name %q (want [a-z0-9_-]+)", i, wc.Name)
		}
		if wc.Count < 1 {
			return fmt.Errorf("tss: worker class %q needs a positive count, got %d", wc.Name, wc.Count)
		}
		if wc.Speed < 0 {
			return fmt.Errorf("tss: worker class %q has negative speed %g", wc.Name, wc.Speed)
		}
		for k, s := range wc.KernelSpeed {
			if s < 0 {
				return fmt.Errorf("tss: worker class %q kernel %d has negative speed %g", wc.Name, k, s)
			}
		}
		total += wc.Count
	}
	if total > c.Cores {
		return fmt.Errorf("tss: worker classes cover %d cores but the machine has %d", total, c.Cores)
	}
	return nil
}

// ParseWorkerClasses parses the CLI worker-class syntax: comma-separated
// `name:count@speed` entries, each optionally followed by a parenthesized
// per-kernel speed list, e.g. "fast:8@2,slow:24@0.5" or
// "gpu:4@1(4,0.25)". The speed suffix may be omitted (`name:count` = speed
// 1). Validation beyond syntax (name charset, counts vs cores) happens in
// Config.Validate.
func ParseWorkerClasses(s string) ([]WorkerClass, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []WorkerClass
	for _, entry := range splitTopLevel(s) {
		entry = strings.TrimSpace(entry)
		var kernels []float64
		if i := strings.IndexByte(entry, '('); i >= 0 {
			if !strings.HasSuffix(entry, ")") {
				return nil, fmt.Errorf("tss: worker class %q: unclosed kernel-speed list", entry)
			}
			for _, ks := range strings.Split(entry[i+1:len(entry)-1], ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(ks), 64)
				if err != nil {
					return nil, fmt.Errorf("tss: worker class %q: bad kernel speed %q", entry, ks)
				}
				kernels = append(kernels, v)
			}
			entry = entry[:i]
		}
		speed := 0.0
		if i := strings.IndexByte(entry, '@'); i >= 0 {
			v, err := strconv.ParseFloat(entry[i+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("tss: worker class %q: bad speed %q", entry, entry[i+1:])
			}
			speed = v
			entry = entry[:i]
		}
		name, count, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("tss: worker class %q: want name:count[@speed]", entry)
		}
		n, err := strconv.Atoi(count)
		if err != nil {
			return nil, fmt.Errorf("tss: worker class %q: bad count %q", entry, count)
		}
		out = append(out, WorkerClass{Name: name, Count: n, Speed: speed, KernelSpeed: kernels})
	}
	return out, nil
}

// splitTopLevel splits on commas outside parentheses.
func splitTopLevel(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// memSystemConfig derives the memory-system configuration.
func (c Config) memSystemConfig() mem.SystemConfig {
	mc := mem.DefaultSystemConfig(c.Cores)
	mc.LineDetail = c.LineDetailMemory
	return mc
}
