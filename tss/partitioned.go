package tss

import (
	"context"
	"fmt"

	"tasksuperscalar/internal/taskmodel"
)

// RunPartitioned executes several task partitions, each emitted by its own
// task-generating thread (§III.B of the paper: the single-threaded in-order
// decode property extends to multiple generating threads when data is
// partitioned between them — tasks from different threads then have no data
// dependencies, so any interleaving at the gateway preserves per-object
// decode order).
//
// Partitions must not share memory objects; RunPartitioned verifies this and
// rejects overlapping partitions (build partitions with NewProgramAt and
// distinct bases). Only the hardware pipeline supports multiple generators.
func RunPartitioned(partitions []*Program, cfg Config) (*Result, error) {
	if len(partitions) == 0 {
		return nil, fmt.Errorf("tss: no partitions")
	}
	if cfg.Runtime != HardwarePipeline {
		return nil, fmt.Errorf("tss: RunPartitioned requires the hardware pipeline")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var streams [][]*taskmodel.Task
	for i, p := range partitions {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("tss: partition %d: %w", i, err)
		}
		streams = append(streams, p.tasks)
	}
	if err := checkDisjoint(streams); err != nil {
		return nil, err
	}

	// Assign globally unique sequence numbers, preserving per-partition
	// order (observability arrays are indexed by Seq).
	total := 0
	for _, ts := range streams {
		for _, t := range ts {
			t.Seq = uint64(total)
			total++
		}
	}

	// Each partition becomes one pre-sequenced stream; the shared
	// multi-generator machinery drives one generating thread per stream.
	counting := make([]*countingStream, len(streams))
	for i, ts := range streams {
		counting[i] = newCountingStream(&rawStream{tasks: ts}, nil)
	}
	return runHardwareMulti(context.Background(), counting, cfg, true)
}

// checkDisjoint rejects partitions that touch the same memory object.
func checkDisjoint(streams [][]*taskmodel.Task) error {
	owner := make(map[taskmodel.Addr]int)
	for i, ts := range streams {
		for _, t := range ts {
			for _, op := range t.Operands {
				if op.Dir == taskmodel.Scalar {
					continue
				}
				if prev, ok := owner[op.Base]; ok && prev != i {
					return fmt.Errorf("tss: partitions %d and %d share object %#x (data must be partitioned between generating threads)",
						prev, i, uint64(op.Base))
				}
				owner[op.Base] = i
			}
		}
	}
	return nil
}

// rawStream is a Stream over pre-sequenced tasks (sequence numbers must not
// be reassigned, unlike taskmodel.SliceStream).
type rawStream struct {
	tasks []*taskmodel.Task
	pos   int
}

func (s *rawStream) Next() *taskmodel.Task {
	if s.pos >= len(s.tasks) {
		return nil
	}
	t := s.tasks[s.pos]
	s.pos++
	return t
}
