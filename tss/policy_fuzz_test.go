package tss

import (
	"encoding/json"
	"testing"

	"tasksuperscalar/internal/backend"
)

// fuzzPolicyClasses are the worker-class mixes the conservation fuzzer
// cycles through (selector-indexed so the corpus stays a flat tuple).
func fuzzPolicyClasses(classSel uint8, cores int) []WorkerClass {
	switch classSel % 4 {
	case 1:
		return []WorkerClass{{Name: "fast", Count: cores / 4, Speed: 2}}
	case 2:
		return []WorkerClass{
			{Name: "fast", Count: cores / 4, Speed: 2, KernelSpeed: []float64{4}},
			{Name: "slow", Count: cores / 2, Speed: 0.5},
		}
	case 3:
		return []WorkerClass{{Name: "one", Count: 1, Speed: 3}}
	default:
		return nil
	}
}

// FuzzPolicyConservation extends the parallel-equivalence fuzz to the
// policy laboratory: random LCG task graphs × a fuzzer-chosen policy and
// worker-class mix must conserve tasks (every seq retires exactly once),
// keep speculation fully validated, and stay byte-identical between the
// serial and sharded engines.
func FuzzPolicyConservation(f *testing.F) {
	f.Add(uint64(1), uint16(120), uint8(8), uint8(4), uint8(2), uint8(0), uint8(0), uint8(3))
	f.Add(uint64(42), uint16(200), uint8(1), uint8(12), uint8(0), uint8(1), uint8(1), uint8(2))
	f.Add(uint64(7), uint16(90), uint8(15), uint8(2), uint8(4), uint8(2), uint8(2), uint8(4))
	f.Add(uint64(0xfeed), uint16(150), uint8(3), uint8(8), uint8(1), uint8(3), uint8(3), uint8(2))

	policies := backend.PolicyNames()

	f.Fuzz(func(t *testing.T, seed uint64, n uint16, chainDepth, fanout, memMix, policySel, classSel, shards uint8) {
		tasks := fuzzGraph(seed, int(n)%256+8, chainDepth, fanout, memMix)
		ntasks := uint64(len(tasks))

		cfg := DefaultConfig().WithCores(16)
		cfg.Memory = false
		cfg.Policy = policies[int(policySel)%len(policies)]
		cfg.WorkerClasses = fuzzPolicyClasses(classSel, cfg.Cores)

		seen := make([]int, ntasks)
		cfg.OnComplete = func(seq, cycle uint64) {
			if seq < ntasks {
				seen[seq]++
			}
		}
		want, err := RunTasks(tasks, cfg)
		if err != nil {
			t.Fatalf("serial (%s): %v", cfg.Policy, err)
		}
		cfg.OnComplete = nil
		for seq, c := range seen {
			if c != 1 {
				t.Fatalf("policy %s: seq %d retired %d times", cfg.Policy, seq, c)
			}
		}
		if want.Tasks != ntasks {
			t.Fatalf("policy %s executed %d of %d tasks", cfg.Policy, want.Tasks, ntasks)
		}
		if want.Dispatch.SpecDispatches != want.Dispatch.SpecValidated {
			t.Fatalf("policy %s: %d speculative dispatches but %d validated",
				cfg.Policy, want.Dispatch.SpecDispatches, want.Dispatch.SpecValidated)
		}

		sharded := cfg
		sharded.Shards = 2 + int(shards)%7 // 2..8
		if sharded.Fingerprint() != cfg.Fingerprint() {
			t.Fatalf("Shards=%d changed the config fingerprint", sharded.Shards)
		}
		got, err := RunTasks(tasks, sharded)
		if err != nil {
			t.Fatalf("shards %d (%s): %v", sharded.Shards, cfg.Policy, err)
		}

		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(got)
		if string(wb) != string(gb) {
			t.Fatalf("policy %s diverged at %d shards\nserial: %s\nsharded: %s",
				cfg.Policy, sharded.Shards, wb, gb)
		}
	})
}
