package tss

import (
	"encoding/json"
	"testing"

	"tasksuperscalar/internal/backend"
	"tasksuperscalar/internal/workloads"
)

// The differential policy harness: every workload × every policy ×
// serial/2-shard/4-shard engines, asserting
//
//	(a) fifo is byte-identical to the default (unset-policy) machine,
//	(b) every policy conserves tasks (each seq retires exactly once),
//	(c) spec replays cycle-exact against its own recorded dispatch trace
//	    under the non-speculative validation oracle,
//	(d) every policy is deterministic across repeated runs and across
//	    shard counts.
//
// The absolute fifo goldens (pre-PR behaviour at 1/2/4/8 shards) are pinned
// separately by scripts/check_determinism.sh; here fifo's baseline is the
// in-process default machine, which those goldens anchor.

// diffPolicyConfig is the harness machine: small enough that the full grid
// stays fast, hardware pipeline, no memory system (policies act on the
// dispatch choke point either way).
func diffPolicyConfig(policy string) Config {
	cfg := DefaultConfig().WithCores(16)
	cfg.Memory = false
	cfg.Policy = policy
	if policy == backend.PolicyHetero {
		// A quarter of the machine runs kernel 0 at double speed so
		// affinity has something to prefer.
		cfg.WorkerClasses = []WorkerClass{
			{Name: "fast", Count: 4, Speed: 1, KernelSpeed: []float64{2}},
		}
	}
	return cfg
}

func resultBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return b
}

func TestPolicyDifferential(t *testing.T) {
	budget := 400
	if testing.Short() {
		budget = 150
	}
	for _, wl := range workloads.All() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			t.Parallel()
			tasks := wl.Gen(budget, 42).Tasks
			n := uint64(len(tasks))

			// (a) the unset-policy machine is the fifo baseline.
			base, err := RunTasks(tasks, diffPolicyConfig(""))
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			baseBytes := resultBytes(t, base)

			for _, policy := range backend.PolicyNames() {
				policy := policy
				t.Run(policy, func(t *testing.T) {
					t.Parallel()
					cfg := diffPolicyConfig(policy)

					// (b) conservation: each seq exactly once.
					seen := make([]int, n)
					cfg.OnComplete = func(seq, cycle uint64) {
						if seq >= n {
							t.Errorf("retired unknown seq %d", seq)
							return
						}
						seen[seq]++
					}
					serial, err := RunTasks(tasks, cfg)
					if err != nil {
						t.Fatalf("serial run: %v", err)
					}
					cfg.OnComplete = nil
					for seq, c := range seen {
						if c != 1 {
							t.Fatalf("seq %d retired %d times", seq, c)
						}
					}
					if serial.Tasks != n {
						t.Fatalf("executed %d of %d tasks", serial.Tasks, n)
					}
					got := resultBytes(t, serial)

					if policy == backend.PolicyFIFO && string(got) != string(baseBytes) {
						t.Fatalf("fifo diverged from the default machine:\n%s\nvs\n%s", got, baseBytes)
					}
					if ds := serial.Dispatch; ds.Policy != policy {
						t.Fatalf("Dispatch.Policy = %q, want %q", ds.Policy, policy)
					} else if ds.Dispatches != n {
						t.Fatalf("Dispatches = %d, want %d", ds.Dispatches, n)
					}

					// (d) repeatability and shard invariance.
					for _, run := range []struct {
						name   string
						shards int
					}{{"repeat", 0}, {"shards2", 2}, {"shards4", 4}} {
						c := cfg
						c.Shards = run.shards
						r, err := RunTasks(tasks, c)
						if err != nil {
							t.Fatalf("%s run: %v", run.name, err)
						}
						if b := resultBytes(t, r); string(b) != string(got) {
							t.Fatalf("%s diverged from serial:\n%s\nvs\n%s", run.name, b, got)
						}
					}

					// (c) spec validates against its own trace.
					if policy == backend.PolicySpec {
						if serial.Dispatch.SpecDispatches != serial.Dispatch.SpecValidated {
							t.Fatalf("speculation not fully validated: %d dispatched, %d validated",
								serial.Dispatch.SpecDispatches, serial.Dispatch.SpecValidated)
						}
						var trace []DispatchRecord
						c := cfg
						c.Backend.OnDispatch = func(rec DispatchRecord) { trace = append(trace, rec) }
						if _, err := RunTasks(tasks, c); err != nil {
							t.Fatalf("trace run: %v", err)
						}
						c.Backend.OnDispatch = nil
						c.Backend.SpecValidate = trace
						replay, err := RunTasks(tasks, c)
						if err != nil {
							t.Fatalf("validation replay: %v", err)
						}
						if b := resultBytes(t, replay); string(b) != string(got) {
							t.Fatalf("validation replay diverged from serial run")
						}
					}
				})
			}
		})
	}
}

// TestPolicyChangesSchedule pins the laboratory's reason to exist: on a
// dependency-heavy workload with a heterogeneous machine, critical-path and
// hetero dispatch measurably change the scheduled work/makespan relative to
// fifo on the same machine. (TotalWorkCycles — the stream's runtime sum —
// is policy-invariant by construction; the scheduled WorkCycles and the
// makespan are where placement shows.)
func TestPolicyChangesSchedule(t *testing.T) {
	tasks := workloads.Cholesky(400, 42).Tasks

	run := func(policy string) *Result {
		cfg := DefaultConfig().WithCores(16)
		cfg.Memory = false
		cfg.Policy = policy
		cfg.WorkerClasses = []WorkerClass{{Name: "fast", Count: 4, Speed: 2}}
		r, err := RunTasks(tasks, cfg)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		return r
	}

	fifo := run(backend.PolicyFIFO)
	cp := run(backend.PolicyCriticalPath)
	het := run(backend.PolicyHetero)

	if cp.Cycles == fifo.Cycles {
		t.Errorf("critical-path makespan identical to fifo (%d cycles) — priority had no effect", cp.Cycles)
	}
	if het.Dispatch.WorkCycles == fifo.Dispatch.WorkCycles {
		t.Errorf("hetero scheduled the same work cycles as fifo (%d) — affinity had no effect",
			het.Dispatch.WorkCycles)
	}
	if het.Dispatch.AffineDispatches == 0 {
		t.Errorf("hetero made no affine dispatches")
	}
	if cp.Dispatch.MaxDepth == 0 {
		t.Errorf("critical-path saw no chain depth on a Cholesky graph")
	}
	for _, r := range []*Result{fifo, cp, het} {
		if r.TotalWorkCycles != fifo.TotalWorkCycles {
			t.Errorf("TotalWorkCycles must be policy-invariant: %d vs %d",
				r.TotalWorkCycles, fifo.TotalWorkCycles)
		}
	}
}
