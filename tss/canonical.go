package tss

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// SimVersion identifies the generation of the simulator's cycle-exact
// semantics. It participates in every config fingerprint, so any cached or
// recorded result is implicitly keyed by the code that produced it. Bump it
// whenever a change alters simulated cycle counts (the same changes that
// require regenerating docs/goldens/ with scripts/check_determinism.sh
// -update); pure refactors, new statistics, and API changes leave it alone.
const SimVersion = "tss-sim/2"

// CanonicalString renders every semantically relevant field of the config —
// everything that can influence a run's result, including the observation
// switches that change which statistics are collected — as a stable,
// human-readable key/value listing. Two configs produce the same string if
// and only if they describe the same simulated machine under the same
// SimVersion, which is what makes results content-addressable: the string
// (and the Fingerprint derived from it) is the cache key used by the tssd
// daemon's result cache.
//
// Function-valued fields (OnComplete/OnDispatch hooks), the
// cancellation-poll granularity (CancelCheckCycles), the engine shard count
// (Shards), the SpecValidate replay trace, and the derived per-workload
// Backend.TaskDepth table are observers or derived inputs, not machine
// state, and are excluded. The dispatch policy and worker classes ARE
// machine state and are always included.
func (c Config) CanonicalString() string {
	var b strings.Builder
	w := func(key string, v any) { fmt.Fprintf(&b, "%s=%v\n", key, v) }
	w("sim", SimVersion)
	w("runtime", c.Runtime.String())
	w("cores", c.Cores)
	w("cores_per_ring", c.CoresPerRing)

	fe := c.Frontend
	w("fe.num_trs", fe.NumTRS)
	w("fe.num_ort", fe.NumORT)
	w("fe.trs_bytes_each", fe.TRSBytesEach)
	w("fe.ort_bytes_each", fe.ORTBytesEach)
	w("fe.ovt_bytes_each", fe.OVTBytesEach)
	w("fe.proc_cycles", fe.ProcCycles)
	w("fe.edram_cycles", fe.EDRAMCycles)
	w("fe.gateway_buf_bytes", fe.GatewayBufBytes)
	w("fe.gen_base_cycles", fe.GenBaseCycles)
	w("fe.gen_per_op_cycles", fe.GenPerOpCycles)
	w("fe.renaming", fe.Renaming)
	w("fe.chaining", fe.Chaining)
	w("fe.ctrl_bytes", fe.CtrlBytes)
	w("fe.ort_stash_limit", fe.ORTStashLimit)
	w("fe.gateway_max_tasks", fe.GatewayMaxTasks)
	w("fe.record_chains", fe.RecordChains)

	sw := c.Software
	w("sw.decode_base", sw.DecodeBase)
	w("sw.decode_per_op", sw.DecodePerOp)
	w("sw.wakeup_cycles", sw.WakeupCycles)
	w("sw.gen_base", sw.GenBase)
	w("sw.gen_per_op", sw.GenPerOp)

	be := c.Backend
	w("be.cores", be.Cores)
	w("be.local_queue_depth", be.LocalQueueDepth)
	w("be.dispatch_cycles", be.DispatchCycles)
	w("be.ctrl_bytes", be.CtrlBytes)
	w("be.stealing", be.Stealing)
	if len(be.CoreSpeed) > 0 {
		var sb strings.Builder
		for i, s := range be.CoreSpeed {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%g", s)
		}
		w("be.core_speed", sb.String())
	}
	w("be.record_schedule", be.RecordSchedule)
	// The dispatch policy and worker-class mix are machine state (they
	// change which worker runs which task and when), so they always
	// canonicalize — resolved through EffectivePolicy/-WorkerClasses so
	// the top-level and Backend spellings yield one fingerprint. The
	// class encoding is injective given the validated name charset.
	w("be.policy", c.EffectivePolicy())
	if classes := c.EffectiveWorkerClasses(); len(classes) > 0 {
		var sb strings.Builder
		for i := range classes {
			wc := &classes[i]
			if i > 0 {
				sb.WriteByte(';')
			}
			fmt.Fprintf(&sb, "%s:%dx%g", wc.Name, wc.Count, wc.Speed)
			if len(wc.KernelSpeed) > 0 {
				sb.WriteByte('[')
				for k, s := range wc.KernelSpeed {
					if k > 0 {
						sb.WriteByte(',')
					}
					fmt.Fprintf(&sb, "%g", s)
				}
				sb.WriteByte(']')
			}
		}
		w("be.worker_classes", sb.String())
	}

	w("memory", c.Memory)
	w("line_detail_memory", c.LineDetailMemory)
	return b.String()
}

// Fingerprint returns the hex SHA-256 of the canonical config encoding.
// Identical fingerprints guarantee identical simulated machines (under the
// embedded SimVersion), so a deterministic workload run against two configs
// with equal fingerprints yields cycle-exact identical results.
func (c Config) Fingerprint() string {
	sum := sha256.Sum256([]byte(c.CanonicalString()))
	return hex.EncodeToString(sum[:])
}
