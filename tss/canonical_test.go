package tss

import (
	"strings"
	"testing"
)

// The fingerprint must be stable for equal configs and sensitive to every
// class of semantic field: machine shape, frontend sizing, runtime choice,
// cost model, ablation switches, and the observation flags that change what
// a result contains.
func TestFingerprintSensitivity(t *testing.T) {
	base := DefaultConfig()
	if base.Fingerprint() != base.Fingerprint() {
		t.Fatal("fingerprint not stable across calls")
	}
	other := DefaultConfig()
	if base.Fingerprint() != other.Fingerprint() {
		t.Fatal("identical configs produced different fingerprints")
	}

	mutations := map[string]func(*Config){
		"runtime":     func(c *Config) { c.Runtime = SoftwareRuntime },
		"cores":       func(c *Config) { *c = c.WithCores(128) },
		"ring":        func(c *Config) { c.CoresPerRing = 4 },
		"trs":         func(c *Config) { c.Frontend.NumTRS = 4 },
		"trs bytes":   func(c *Config) { c.Frontend.TRSBytesEach = 512 << 10 },
		"renaming":    func(c *Config) { c.Frontend.Renaming = false },
		"sw decode":   func(c *Config) { c.Software.DecodeBase = 999 },
		"stealing":    func(c *Config) { c.Backend.Stealing = true },
		"core speed":  func(c *Config) { c.Backend.CoreSpeed = []float64{1, 0.5} },
		"memory":      func(c *Config) { c.Memory = false },
		"line detail": func(c *Config) { c.LineDetailMemory = true },
		"chains":      func(c *Config) { c.Frontend.RecordChains = false },
		"schedule":    func(c *Config) { c.Backend.RecordSchedule = false },
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	for name, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		fp := cfg.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[fp] = name
	}
}

// OnComplete is an observer, not machine state: wiring a hook must not
// change the fingerprint, or a daemon could never share cached results with
// hook-free direct runs.
func TestFingerprintIgnoresHooks(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	b.OnComplete = func(seq, cycle uint64) {}
	b.Backend.OnComplete = nil
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("OnComplete hook changed the fingerprint")
	}
}

func TestCanonicalStringCarriesSimVersion(t *testing.T) {
	if !strings.Contains(DefaultConfig().CanonicalString(), SimVersion) {
		t.Fatalf("canonical string missing SimVersion %q", SimVersion)
	}
}
