package tss

import (
	"context"
	"fmt"

	"tasksuperscalar/internal/backend"
	"tasksuperscalar/internal/core"
	"tasksuperscalar/internal/mem"
	"tasksuperscalar/internal/noc"
	"tasksuperscalar/internal/sim"
	"tasksuperscalar/internal/softrt"
	"tasksuperscalar/internal/taskmodel"
)

// Result reports one simulation run.
type Result struct {
	// Kind is the runtime that executed the run.
	Kind RuntimeKind
	// Cores is the worker-core count of the simulated machine.
	Cores int
	// Tasks is the number of tasks executed.
	Tasks uint64

	// Cycles is the makespan in core cycles.
	Cycles uint64
	// TotalWorkCycles is the sum of task runtimes (the sequential lower
	// bound without overheads).
	TotalWorkCycles uint64

	// DecodeRateCycles is the average time between successive additions
	// to the task graph (hardware and software runtimes).
	DecodeRateCycles float64

	// Utilization is the time-averaged fraction of busy cores.
	Utilization float64

	// WindowMax is the peak number of in-flight decoded tasks.
	WindowMax int64

	// Dispatch carries the backend's per-run dispatch-policy accounting
	// (policy name, dispatch counts, speculation validation, ready-set
	// peak, scheduled work cycles).
	Dispatch DispatchStats

	// Frontend carries hardware-pipeline statistics (hardware runs only).
	Frontend core.FrontendStats
	// Software carries software-runtime statistics (software runs only).
	Software softrt.Stats
	// Mem carries memory-system statistics when Memory is enabled.
	Mem mem.Stats

	// Start and Finish are per-task observed times indexed by sequence
	// number (for validation). Streamed runs leave them nil — use
	// Config.OnComplete to observe retirement in bounded memory.
	Start, Finish []uint64
}

// DecodeRateNs converts the decode rate to nanoseconds.
func (r *Result) DecodeRateNs() float64 { return CyclesToNs(r.DecodeRateCycles) }

// SpeedupOver returns this run's speedup relative to a baseline run.
func (r *Result) SpeedupOver(base *Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// Run executes the program on the configured machine.
func Run(p *Program, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), p, cfg)
}

// RunCtx is Run with cooperative cancellation: the simulation loop polls ctx
// every Config.CancelCheckCycles simulated cycles (a pure observation — an
// uncancelled RunCtx is cycle-exact identical to Run) and, once cancelled,
// abandons the machine and returns an error wrapping ctx.Err().
func RunCtx(ctx context.Context, p *Program, cfg Config) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return RunTasksCtx(ctx, p.tasks, cfg)
}

// RunTasks executes a raw task list (used by the benchmark harness, whose
// workload generators produce taskmodel streams directly).
func RunTasks(tasks []*taskmodel.Task, cfg Config) (*Result, error) {
	return RunTasksCtx(context.Background(), tasks, cfg)
}

// RunTasksCtx is RunTasks with cooperative cancellation (see RunCtx).
func RunTasksCtx(ctx context.Context, tasks []*taskmodel.Task, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// The critical-path policy wants the dependent-chain height table;
	// with the whole task list in hand it is derivable here. Streaming
	// entry points have no list, so their tasks fall back to depth 0
	// (arrival order) unless the caller supplies Backend.TaskDepth.
	if cfg.Backend.TaskDepth == nil && cfg.EffectivePolicy() == backend.PolicyCriticalPath {
		cfg.Backend.TaskDepth = TaskDepths(tasks, cfg.Frontend.Renaming)
	}
	st := newCountingStream(taskmodel.NewSliceStream(tasks), nil)
	return dispatchRun(ctx, st, cfg, true)
}

// dispatchRun executes one task stream on the selected runtime. record
// retains the per-task schedule (O(tasks) memory; pre-recorded runs only).
func dispatchRun(ctx context.Context, st *countingStream, cfg Config, record bool) (*Result, error) {
	switch cfg.Runtime {
	case Sequential:
		return runSequential(ctx, st, cfg, record)
	case HardwarePipeline:
		return runHardwareMulti(ctx, []*countingStream{st}, cfg, record)
	case SoftwareRuntime:
		return runSoftware(ctx, st, cfg, record)
	default:
		return nil, fmt.Errorf("tss: unknown runtime kind %d", cfg.Runtime)
	}
}

// runEngine drives the machine's event loop to completion, polling ctx at
// the config's cancellation granularity. A cancelled run is abandoned
// mid-flight: the error wraps ctx.Err() (so errors.Is(err, context.Canceled)
// holds) and the partial machine state is discarded by the caller.
func runEngine(ctx context.Context, m *machine, cfg Config) error {
	if _, err := m.eng.RunContext(ctx, cfg.CancelCheckCycles); err != nil {
		return fmt.Errorf("tss: run cancelled at cycle %d: %w", m.eng.Now(), err)
	}
	return nil
}

// machine bundles the shared substrate of a parallel run.
type machine struct {
	eng       *sim.Engine
	net       *noc.Network
	coreNodes []noc.NodeID
	genNode   noc.NodeID
	memory    *mem.System
	back      *backend.Backend
}

// buildMachine assembles engine, network, cores, memory and backend.
func buildMachine(cfg Config) *machine {
	eng := sim.NewEngine()
	if cfg.Shards > 1 {
		eng.SetShards(cfg.Shards, shardWindow(noc.DefaultConfig()))
	}
	net := noc.NewNetwork(eng, cfg.CoresPerRing, noc.DefaultConfig())
	m := &machine{eng: eng, net: net}
	// One shared diagnostic name: cores are identified by NodeID, and a
	// formatted name per core is a measurable slice of construction cost
	// at 256 cores per sweep point.
	m.coreNodes = make([]noc.NodeID, 0, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		m.coreNodes = append(m.coreNodes, net.AddCore("core"))
	}
	// The task-generating thread runs on its own core.
	m.genNode = net.AddCore("generator")
	if cfg.Memory {
		m.memory = mem.NewSystem(eng, net, m.coreNodes, cfg.memSystemConfig())
	}
	bcfg := cfg.Backend
	bcfg.Cores = cfg.Cores
	// Resolve the sweepable policy axes into the backend config: the
	// top-level fields win, and the backend always sees the resolved
	// policy name (never ""), matching what CanonicalString fingerprints.
	bcfg.Policy = cfg.EffectivePolicy()
	bcfg.WorkerClasses = cfg.EffectiveWorkerClasses()
	if cfg.OnComplete != nil {
		hook := cfg.OnComplete
		bcfg.OnComplete = func(seq uint64, at sim.Cycle) { hook(seq, uint64(at)) }
	}
	m.back = backend.New(eng, net, m.coreNodes, bcfg, m.memory)
	return m
}

// shardWindow derives the sharded engine's commit window from the
// interconnect's conservative lookahead: the default window rounded up to a
// whole number of minimum message latencies, so every cross-module message
// staged in one window is committed on a lookahead boundary of the next.
// Window length — like everything about sharding — is an observer: it tunes
// barrier amortization, never results.
func shardWindow(nc noc.Config) sim.Cycle {
	la := nc.MinMessageLatency()
	if la == 0 {
		return sim.DefaultShardWindow
	}
	w := sim.DefaultShardWindow
	if rem := w % la; rem != 0 {
		w += la - rem
	}
	return w
}

// finish fills the common result fields. n and work are the stream's task
// count and total runtime; record additionally extracts the per-task
// schedule from the backend.
func (m *machine) finish(res *Result, n, work uint64, record bool) {
	res.Cycles = uint64(m.eng.Now())
	res.Tasks = m.back.Executed()
	res.TotalWorkCycles = work
	res.Dispatch = m.back.Dispatch()
	res.Utilization = m.back.Utilization(m.eng.Now()) / float64(res.Cores)
	if record {
		res.Start, res.Finish = m.back.Schedule(int(n))
	}
	if m.memory != nil {
		res.Mem = m.memory.Snapshot()
	}
}

// runHardwareMulti drives the hardware pipeline from one or more
// task-generating threads, each pulling lazily from its own stream with the
// gateway's buffer as back-pressure.
func runHardwareMulti(ctx context.Context, streams []*countingStream, cfg Config, record bool) (*Result, error) {
	m := buildMachine(cfg)
	var copyEng core.CopyEngine
	if m.memory != nil {
		copyEng = m.memory
	} else {
		copyEng = core.NewNullCopyEngine(m.eng)
	}
	fe := core.New(m.eng, m.net, cfg.Frontend, copyEng)
	fe.SetDispatcher(m.back)
	m.back.SetFinishHandler(fe)

	// One generating thread per stream; a single stream reuses the
	// machine's generator core, additional ones get their own.
	genNodes := []noc.NodeID{m.genNode}
	if len(streams) > 1 {
		genNodes = genNodes[:0]
		for range streams {
			genNodes = append(genNodes, m.net.AddCore("generator"))
		}
	}
	m.net.Build()
	gens := make([]*core.Generator, len(streams))
	for i, st := range streams {
		gens[i] = core.NewGenerator(fe, genNodes[i], st)
	}
	for _, g := range gens {
		g.Start()
	}
	if err := runEngine(ctx, m, cfg); err != nil {
		return nil, err
	}

	var n, work uint64
	var streamErr error
	for _, st := range streams {
		n += st.n
		work += st.work
		if streamErr == nil && st.err != nil {
			streamErr = st.err
		}
	}
	res := &Result{Kind: HardwarePipeline, Cores: cfg.Cores}
	m.finish(res, n, work, record)
	res.Frontend = fe.Stats(m.eng.Now())
	res.DecodeRateCycles = res.Frontend.DecodeRate
	res.WindowMax = res.Frontend.WindowMax
	if streamErr != nil {
		return res, streamErr
	}
	if m.back.Executed() != n {
		return res, fmt.Errorf("tss: hardware run executed %d of %d tasks (pipeline deadlock?)",
			m.back.Executed(), n)
	}
	return res, nil
}

func runSoftware(ctx context.Context, st *countingStream, cfg Config, record bool) (*Result, error) {
	m := buildMachine(cfg)
	rt := softrt.New(m.eng, cfg.Software, st, m.back, m.genNode)
	m.back.SetFinishHandler(rt)
	m.net.Build()

	rt.Start()
	if err := runEngine(ctx, m, cfg); err != nil {
		return nil, err
	}

	res := &Result{Kind: SoftwareRuntime, Cores: cfg.Cores}
	m.finish(res, st.n, st.work, record)
	res.Software = rt.Snapshot()
	res.DecodeRateCycles = res.Software.DecodeRate
	res.WindowMax = res.Software.WindowMax
	if st.err != nil {
		return res, st.err
	}
	if m.back.Executed() != st.n {
		return res, fmt.Errorf("tss: software run executed %d of %d tasks",
			m.back.Executed(), st.n)
	}
	return res, nil
}

// seqFinisher drives the next task when the previous one completes.
type seqFinisher struct {
	feed func()
}

func (s *seqFinisher) TaskFinished(from noc.NodeID, id core.TaskID) { s.feed() }

func runSequential(ctx context.Context, st *countingStream, cfg Config, record bool) (*Result, error) {
	cfg = cfg.WithCores(1)
	m := buildMachine(cfg)
	m.net.Build()

	var feed func()
	feed = func() {
		t := st.Next()
		if t == nil {
			return
		}
		ops := make([]core.ResolvedOperand, len(t.Operands))
		for i, op := range t.Operands {
			ops[i] = core.ResolvedOperand{
				Base: op.Base, Buf: uint64(op.Base), Size: op.Size, Dir: op.Dir,
			}
		}
		m.back.TaskReady(&core.ReadyTask{
			ID:       core.TaskID{Slot: uint32(t.Seq)},
			Task:     t,
			Operands: ops,
		})
	}
	m.back.SetFinishHandler(&seqFinisher{feed: feed})
	feed()
	if err := runEngine(ctx, m, cfg); err != nil {
		return nil, err
	}

	res := &Result{Kind: Sequential, Cores: 1}
	m.finish(res, st.n, st.work, record)
	if st.err != nil {
		return res, st.err
	}
	if m.back.Executed() != st.n {
		return res, fmt.Errorf("tss: sequential run executed %d of %d tasks",
			m.back.Executed(), st.n)
	}
	return res, nil
}

// SequentialCycles is a fast analytic lower bound used where a full
// sequential simulation is unnecessary: the sum of task runtimes.
func SequentialCycles(tasks []*taskmodel.Task) uint64 {
	var sum uint64
	for _, t := range tasks {
		sum += t.Runtime
	}
	return sum
}
