package tss

import (
	"runtime"
	"testing"

	"tasksuperscalar/internal/taskmodel"
	"tasksuperscalar/internal/workloads"
)

func streamCfg(cores int) Config {
	cfg := DefaultConfig().WithCores(cores)
	cfg.Memory = false
	return cfg
}

// collect drains a generator into a slice (recorded-program equivalent).
func collect(g Generator) []*taskmodel.Task {
	var out []*taskmodel.Task
	for {
		t, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

// TestStreamedMatchesRecorded runs the same fixed-seed workload once
// pre-recorded (Run/RunTasks path) and once streamed (RunStream path) and
// requires the identical retirement schedule: every task finishes at the
// same cycle in both runs, so streaming changes memory behaviour only.
func TestStreamedMatchesRecorded(t *testing.T) {
	const n = 3000
	cfg := streamCfg(32)

	tasks := collect(workloads.NewCPIStream(n, 42))
	recorded, err := RunTasks(tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recorded.Finish) != n {
		t.Fatalf("recorded run reported %d finish times, want %d", len(recorded.Finish), n)
	}

	type retirement struct {
		seq, cycle uint64
	}
	var retired []retirement
	scfg := cfg
	scfg.OnComplete = func(seq, cycle uint64) {
		retired = append(retired, retirement{seq, cycle})
	}
	streamed, err := RunStream(workloads.NewCPIStream(n, 42), scfg)
	if err != nil {
		t.Fatal(err)
	}

	if streamed.Tasks != recorded.Tasks {
		t.Fatalf("task counts differ: streamed %d, recorded %d", streamed.Tasks, recorded.Tasks)
	}
	if streamed.Cycles != recorded.Cycles {
		t.Fatalf("makespans differ: streamed %d, recorded %d", streamed.Cycles, recorded.Cycles)
	}
	if streamed.Start != nil || streamed.Finish != nil {
		t.Fatal("streamed run recorded a per-task schedule; it must not")
	}
	if len(retired) != n {
		t.Fatalf("observed %d retirements, want %d", len(retired), n)
	}
	var last uint64
	for i, r := range retired {
		if r.cycle != recorded.Finish[r.seq] {
			t.Fatalf("task %d finished at %d streamed vs %d recorded", r.seq, r.cycle, recorded.Finish[r.seq])
		}
		if r.cycle < last {
			t.Fatalf("retirement %d out of order: cycle %d after %d", i, r.cycle, last)
		}
		last = r.cycle
	}
}

// TestStreamedSoftwareAndSequential exercises the streamed path on the
// non-hardware runtimes.
func TestStreamedSoftwareAndSequential(t *testing.T) {
	const n = 400
	for _, kind := range []RuntimeKind{SoftwareRuntime, Sequential} {
		cfg := streamCfg(8)
		cfg.Runtime = kind
		res, err := RunStream(workloads.NewCPIStream(n, 7), cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Tasks != n {
			t.Fatalf("%v executed %d tasks, want %d", kind, res.Tasks, n)
		}
	}
}

// TestRunStreamRejectsWideTasks checks that architectural validation ends a
// stream gracefully with an error instead of a panic.
func TestRunStreamRejectsWideTasks(t *testing.T) {
	b := NewTaskBuilder()
	k := b.Kernel("wide")
	emitted := false
	gen := GeneratorFunc(func() (*Task, bool) {
		if emitted {
			return nil, false
		}
		emitted = true
		ops := make([]Operand, MaxOperands+1)
		for i := range ops {
			ops[i] = In(b.Alloc(4096), 4096)
		}
		return b.NewTask(k, 1000, ops...), true
	})
	if _, err := RunStream(gen, streamCfg(4)); err == nil {
		t.Fatal("RunStream accepted a task over the operand limit")
	}
}

// TestRunStreamPartitioned checks multi-generator streaming: disjoint
// partitions, all tasks executed, same makespan as the recorded
// RunPartitioned of the same two programs.
func TestRunStreamPartitioned(t *testing.T) {
	build := func(base Addr) *Program {
		p := NewProgramAt(base)
		k := p.Kernel("step")
		for c := 0; c < 4; c++ {
			obj := p.Alloc(16 << 10)
			for i := 0; i < 20; i++ {
				p.Spawn(k, 10_000, InOut(obj, 16<<10))
			}
		}
		return p
	}
	cfg := streamCfg(8)

	recorded, err := RunPartitioned([]*Program{build(0x1000_0000), build(0x9000_0000)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := RunStreamPartitioned([]Generator{
		build(0x1000_0000).Generator(),
		build(0x9000_0000).Generator(),
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Tasks != recorded.Tasks {
		t.Fatalf("task counts differ: streamed %d, recorded %d", streamed.Tasks, recorded.Tasks)
	}
	if streamed.Cycles != recorded.Cycles {
		t.Fatalf("makespans differ: streamed %d, recorded %d", streamed.Cycles, recorded.Cycles)
	}
}

// TestMillionTaskStreamBoundedMemory streams one million tasks through the
// hardware pipeline and checks that retained heap stays proportional to the
// in-flight window, not the stream length (a recorded run of the same
// workload would retain hundreds of megabytes of tasks and schedule maps).
func TestMillionTaskStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("million-task stream is a long test; skipped with -short")
	}
	const n = 1_000_000
	cfg := streamCfg(64)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	res, err := RunStream(workloads.NewCPIStream(n, 42), cfg)
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if res.Tasks != n {
		t.Fatalf("executed %d tasks, want %d", res.Tasks, n)
	}
	if res.Start != nil || res.Finish != nil {
		t.Fatal("streamed run recorded a per-task schedule")
	}
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	t.Logf("heap growth %.1f MB, window max %d tasks, makespan %d cycles",
		float64(growth)/(1<<20), res.WindowMax, res.Cycles)
	if growth > 100<<20 {
		t.Fatalf("heap grew %.1f MB across a streamed run; window-bounded memory expected",
			float64(growth)/(1<<20))
	}
}
