package tss

import (
	"encoding/json"
	"testing"

	"tasksuperscalar/internal/taskmodel"
)

// fuzzGraph builds a seeded random task graph. The shape knobs map to the
// dependency patterns that stress the sharded engine differently:
//
//   - chainDepth: how many tasks alternately write and read the same
//     objects, forming serial dependency chains (tight cross-module,
//     cross-shard timing);
//   - fanout: how many readers each producer feeds (one commit waking many
//     staged events at once);
//   - memMix: the blend of In/Out/InOut operands (renaming vs true
//     dependencies vs versioned writes).
//
// The generator is a pure function of its arguments, so serial and sharded
// runs receive bit-identical streams.
func fuzzGraph(seed uint64, n int, chainDepth, fanout, memMix uint8) []*taskmodel.Task {
	rng := seed | 1
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 33
	}
	var reg taskmodel.Registry
	kid := reg.Register("fuzz_kernel")

	// A fixed object set, each with a fixed size — as in the real workload
	// generators, where an object is one matrix block or frame buffer.
	nobj := 2 + int(chainDepth)%16 + int(fanout)%16
	objs := make([]taskmodel.Addr, nobj)
	sizes := make([]uint32, nobj)
	alloc := taskmodel.NewAllocator(0x2000_0000)
	for i := range objs {
		sizes[i] = uint32(256 + next()%4096)
		objs[i] = alloc.Alloc(sizes[i])
	}

	tasks := make([]*taskmodel.Task, 0, n)
	for i := 0; i < n; i++ {
		nops := 1 + int(next()%4)
		if nops > nobj {
			nops = nobj
		}
		ops := make([]taskmodel.Operand, 0, nops)
		used := make(map[int]bool, nops)
		for k := 0; k < nops; k++ {
			var dir taskmodel.Dir
			switch (next() + uint64(memMix)) % 5 {
			case 0, 1:
				dir = taskmodel.In
			case 2:
				dir = taskmodel.Out
			case 3:
				dir = taskmodel.InOut
			default:
				dir = taskmodel.Scalar
			}
			if dir == taskmodel.Scalar {
				ops = append(ops, taskmodel.Operand{Size: 8, Dir: taskmodel.Scalar})
				continue
			}
			// Chain tasks onto a small object set so writers and readers
			// collide; fanout widens the reader side by biasing reads onto
			// object 0. Operand objects are distinct within a task, as the
			// programming model requires.
			oi := int(next()) % nobj
			if dir == taskmodel.In && fanout > 0 && next()%4 == 0 {
				oi = 0
			}
			for used[oi] {
				oi = (oi + 1) % nobj
			}
			used[oi] = true
			ops = append(ops, taskmodel.Operand{
				Base: objs[oi],
				Size: sizes[oi],
				Dir:  dir,
			})
		}
		tasks = append(tasks, &taskmodel.Task{
			Kernel:   kid,
			Operands: ops,
			Runtime:  100 + next()%5000,
			Seq:      uint64(i),
		})
	}
	return tasks
}

// FuzzParallelEquivalence is the randomized differential harness for the
// sharded engine: every generated task graph is executed serially and on a
// fuzzer-chosen shard count, and the complete results must be
// byte-identical — plus the configs must share a Fingerprint, pinning
// Shards as an observer field.
func FuzzParallelEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(120), uint8(8), uint8(4), uint8(2), uint8(4), false)
	f.Add(uint64(42), uint16(200), uint8(1), uint8(12), uint8(0), uint8(2), false)
	f.Add(uint64(0xfeed), uint16(80), uint8(15), uint8(0), uint8(4), uint8(8), true)

	f.Fuzz(func(t *testing.T, seed uint64, n uint16, chainDepth, fanout, memMix, shards uint8, memory bool) {
		tasks := int(n)%256 + 8
		nshards := 2 + int(shards)%7 // 2..8

		cfg := DefaultConfig().WithCores(16)
		cfg.Memory = memory

		want, err := RunTasks(fuzzGraph(seed, tasks, chainDepth, fanout, memMix), cfg)
		if err != nil {
			t.Fatalf("serial: %v", err)
		}

		sharded := cfg
		sharded.Shards = nshards
		if sharded.Fingerprint() != cfg.Fingerprint() {
			t.Fatalf("Shards=%d changed the config fingerprint", nshards)
		}
		got, err := RunTasks(fuzzGraph(seed, tasks, chainDepth, fanout, memMix), sharded)
		if err != nil {
			t.Fatalf("shards %d: %v", nshards, err)
		}

		wb, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(wb) != string(gb) {
			t.Fatalf("shards %d diverged from serial\nserial: %s\nsharded: %s", nshards, wb, gb)
		}
	})
}
