// Package tss is the public API of the task superscalar library: a
// reproduction of "Task Superscalar: An Out-of-Order Task Pipeline"
// (Etsion et al., MICRO 2010).
//
// Programs are built StarSs-style: kernels are registered by name, and each
// Spawn call records one task whose operands carry explicit directionality
// annotations (input / output / inout). Run executes the program on a
// simulated chip multiprocessor driven either by the hardware task
// superscalar pipeline frontend, by a software-runtime baseline, or
// sequentially:
//
//	p := tss.NewProgram()
//	gemm := p.Kernel("sgemm")
//	a, b, c := p.Alloc(16<<10), p.Alloc(16<<10), p.Alloc(16<<10)
//	p.Spawn(gemm, tss.Microseconds(23), tss.In(a, 16<<10), tss.In(b, 16<<10), tss.InOut(c, 16<<10))
//	res, err := tss.Run(p, tss.DefaultConfig())
//
// A Program records every task before the run starts. For unbounded
// workloads, implement Generator (see stream.go) and call RunStream: tasks
// are then produced lazily under gateway back-pressure and the run's memory
// is bounded by the pipeline's in-flight task window instead of the stream
// length.
package tss

import (
	"fmt"

	"tasksuperscalar/internal/taskmodel"
)

// Addr is a simulated memory address identifying a memory object.
type Addr = taskmodel.Addr

// KernelID identifies a registered kernel.
type KernelID = taskmodel.KernelID

// Operand annotates one task operand with its directionality.
type Operand = taskmodel.Operand

// In annotates a read-only memory operand of the given size in bytes.
func In(a Addr, size uint32) Operand {
	return Operand{Base: a, Size: size, Dir: taskmodel.In}
}

// Out annotates a write-only memory operand. Output operands are renamed by
// the pipeline, breaking anti- and output-dependencies.
func Out(a Addr, size uint32) Operand {
	return Operand{Base: a, Size: size, Dir: taskmodel.Out}
}

// InOut annotates a read-write memory operand (a true dependency; never
// renamed).
func InOut(a Addr, size uint32) Operand {
	return Operand{Base: a, Size: size, Dir: taskmodel.InOut}
}

// Scalar annotates an immediate value operand (no dependency tracking).
func Scalar() Operand {
	return Operand{Size: 8, Dir: taskmodel.Scalar}
}

// ClockGHz is the simulated core clock (Table II).
const ClockGHz = 3.2

// Microseconds converts a task runtime to core cycles.
func Microseconds(us float64) uint64 { return uint64(us * 1000 * ClockGHz) }

// Nanoseconds converts a duration to core cycles.
func Nanoseconds(ns float64) uint64 { return uint64(ns * ClockGHz) }

// CyclesToNs converts cycles to nanoseconds at the simulated clock.
func CyclesToNs(cycles float64) float64 { return cycles / ClockGHz }

// Program is a sequential task-generating program: an ordered list of
// annotated tasks, exactly what the task-generating thread would emit.
type Program struct {
	reg   taskmodel.Registry
	tasks []*taskmodel.Task
	alloc taskmodel.Allocator
}

// NewProgram returns an empty program. Its allocator starts at a fixed
// base; when building multiple programs that will run together (see
// RunPartitioned), use NewProgramAt with distinct bases so their objects do
// not alias.
func NewProgram() *Program {
	return NewProgramAt(0x1000_0000)
}

// NewProgramAt returns an empty program whose allocator starts at base.
func NewProgramAt(base Addr) *Program {
	return &Program{alloc: taskmodel.NewAllocator(base)}
}

// Kernel registers (or looks up) a kernel by name.
func (p *Program) Kernel(name string) KernelID { return p.reg.Register(name) }

// KernelName returns the registered name for an ID.
func (p *Program) KernelName(id KernelID) string { return p.reg.Name(id) }

// Registry exposes the kernel registry (for graph rendering).
func (p *Program) Registry() *taskmodel.Registry { return &p.reg }

// Alloc reserves a fresh memory object of the given size and returns its
// base address. Objects are page-aligned so distinct objects never alias.
func (p *Program) Alloc(size uint32) Addr { return p.alloc.Alloc(size) }

// Spawn appends a task invoking kernel k with the given runtime (cycles) and
// operands. It returns the task's sequence number.
func (p *Program) Spawn(k KernelID, runtimeCycles uint64, ops ...Operand) int {
	t := &taskmodel.Task{
		Kernel:   k,
		Operands: ops,
		Runtime:  runtimeCycles,
		Seq:      uint64(len(p.tasks)),
	}
	p.tasks = append(p.tasks, t)
	return int(t.Seq)
}

// Len returns the number of spawned tasks.
func (p *Program) Len() int { return len(p.tasks) }

// Tasks exposes the task list (read-only by convention).
func (p *Program) Tasks() []*taskmodel.Task { return p.tasks }

// Stream returns a fresh sequential stream over the program.
func (p *Program) Stream() *taskmodel.SliceStream {
	return taskmodel.NewSliceStream(p.tasks)
}

// Validate checks the program against the pipeline's architectural limits.
func (p *Program) Validate() error {
	for i, t := range p.tasks {
		if len(t.Operands) > MaxOperands {
			return fmt.Errorf("tss: task %d has %d operands; the pipeline supports at most %d",
				i, len(t.Operands), MaxOperands)
		}
	}
	return nil
}
