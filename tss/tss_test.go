package tss

import (
	"testing"

	"tasksuperscalar/internal/graph"
)

// chainProgram builds w independent chains of depth d (runtime per task rt).
func chainProgram(w, d int, rt uint64) *Program {
	p := NewProgram()
	k := p.Kernel("step")
	for c := 0; c < w; c++ {
		obj := p.Alloc(16 << 10)
		for i := 0; i < d; i++ {
			p.Spawn(k, rt, InOut(obj, 16<<10))
		}
	}
	return p
}

func TestSequentialMatchesTotalWork(t *testing.T) {
	p := chainProgram(4, 5, 10_000)
	cfg := DefaultConfig().WithCores(4)
	cfg.Runtime = Sequential
	cfg.Memory = false
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential time is total work plus small dispatch overheads.
	if res.Cycles < res.TotalWorkCycles {
		t.Fatalf("sequential cycles %d below total work %d", res.Cycles, res.TotalWorkCycles)
	}
	if float64(res.Cycles) > 1.01*float64(res.TotalWorkCycles) {
		t.Fatalf("sequential overhead too high: %d vs work %d", res.Cycles, res.TotalWorkCycles)
	}
}

func TestHardwareSpeedsUpIndependentChains(t *testing.T) {
	p := chainProgram(8, 10, 50_000)
	seqCfg := DefaultConfig().WithCores(8)
	seqCfg.Runtime = Sequential
	seqCfg.Memory = false
	seq, err := Run(p, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	hwCfg := DefaultConfig().WithCores(8)
	hwCfg.Memory = false
	hw, err := Run(p, hwCfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := seq.SpeedupOver(seq)
	if sp != 1 {
		t.Fatalf("self speedup = %f, want 1", sp)
	}
	got := hw.SpeedupOver(seq)
	if got < 6 {
		t.Fatalf("8 chains on 8 cores speedup = %.2f, want >= 6", got)
	}
	if hw.DecodeRateCycles <= 0 {
		t.Fatal("decode rate missing")
	}
}

func TestSoftwareRuntimeRuns(t *testing.T) {
	p := chainProgram(8, 10, 50_000)
	cfg := DefaultConfig().WithCores(8)
	cfg.Runtime = SoftwareRuntime
	cfg.Memory = false
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 80 {
		t.Fatalf("software run executed %d tasks, want 80", res.Tasks)
	}
	// The decoder is serialized: single-operand tasks decode at
	// DecodeBase + DecodePerOp + generation cost ~ 1600 cycles.
	if res.DecodeRateCycles < 1500 {
		t.Fatalf("software decode rate %.0f cycles/task, want >= 1500", res.DecodeRateCycles)
	}
}

func TestHardwareDecodeFasterThanSoftware(t *testing.T) {
	p := chainProgram(16, 8, 20_000)
	hwCfg := DefaultConfig().WithCores(16)
	hwCfg.Memory = false
	hw, err := Run(p, hwCfg)
	if err != nil {
		t.Fatal(err)
	}
	swCfg := DefaultConfig().WithCores(16)
	swCfg.Runtime = SoftwareRuntime
	swCfg.Memory = false
	sw, err := Run(p, swCfg)
	if err != nil {
		t.Fatal(err)
	}
	if hw.DecodeRateCycles >= sw.DecodeRateCycles {
		t.Fatalf("hardware decode (%.0f cy) not faster than software (%.0f cy)",
			hw.DecodeRateCycles, sw.DecodeRateCycles)
	}
}

func TestRunWithMemorySystem(t *testing.T) {
	p := chainProgram(4, 4, 30_000)
	cfg := DefaultConfig().WithCores(4)
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.Fetches == 0 {
		t.Fatal("memory system saw no fetches")
	}
	if res.Mem.Writebacks == 0 {
		t.Fatal("memory system saw no writebacks")
	}
	// Memory overhead must cost something versus the no-memory run.
	cfg2 := cfg
	cfg2.Memory = false
	res2, err := Run(p, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= res2.Cycles {
		t.Fatalf("memory-modeled run (%d) not slower than free-memory run (%d)",
			res.Cycles, res2.Cycles)
	}
}

func TestScheduleValidAgainstOracle(t *testing.T) {
	p := NewProgram()
	k := p.Kernel("k")
	// A few objects with mixed operations.
	objs := make([]Addr, 6)
	for i := range objs {
		objs[i] = p.Alloc(8 << 10)
	}
	for i := 0; i < 120; i++ {
		a := objs[i%len(objs)]
		b := objs[(i*7+3)%len(objs)]
		switch i % 3 {
		case 0:
			p.Spawn(k, 5_000, In(a, 8<<10), Out(b, 8<<10))
		case 1:
			p.Spawn(k, 7_000, InOut(a, 8<<10))
		case 2:
			p.Spawn(k, 3_000, In(a, 8<<10), In(b, 8<<10), Out(b, 8<<10))
		}
	}
	cfg := DefaultConfig().WithCores(16)
	res, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(p.Tasks(), graph.Options{Renaming: true})
	if err := g.ValidateSchedule(res.Start, res.Finish); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsTooManyOperands(t *testing.T) {
	p := NewProgram()
	k := p.Kernel("k")
	var ops []Operand
	for i := 0; i < MaxOperands+1; i++ {
		ops = append(ops, In(p.Alloc(4096), 4096))
	}
	p.Spawn(k, 100, ops...)
	if _, err := Run(p, DefaultConfig().WithCores(2)); err == nil {
		t.Fatal("expected operand-limit validation error")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig().WithCores(0)
	if err := cfg.Validate(); err == nil {
		t.Fatal("0 cores must be rejected")
	}
	cfg = DefaultConfig()
	cfg.Frontend.NumTRS = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("0 TRS must be rejected")
	}
}

func TestUnitConversions(t *testing.T) {
	if Microseconds(1) != 3200 {
		t.Fatalf("Microseconds(1) = %d, want 3200", Microseconds(1))
	}
	if Nanoseconds(100) != 320 {
		t.Fatalf("Nanoseconds(100) = %d, want 320", Nanoseconds(100))
	}
	if got := CyclesToNs(3200); got != 1000 {
		t.Fatalf("CyclesToNs(3200) = %f, want 1000", got)
	}
}

func TestAllocAlignment(t *testing.T) {
	p := NewProgram()
	a := p.Alloc(100)
	b := p.Alloc(100)
	if a == b {
		t.Fatal("allocations alias")
	}
	if uint64(b-a) < 0x1000 {
		t.Fatalf("allocations not page separated: %#x %#x", a, b)
	}
}

func TestRuntimeKindString(t *testing.T) {
	if HardwarePipeline.String() == "" || SoftwareRuntime.String() == "" || Sequential.String() == "" {
		t.Fatal("RuntimeKind names missing")
	}
}
