package tss

import (
	"strings"
	"testing"
)

// fuzzConfig builds a validating Config from raw fuzz inputs.
func fuzzConfig(rt uint8, cores, cpr, trs, ort int, trsb, ortb uint64, memory, lineDetail bool) Config {
	pos := func(v, m, min int) int {
		v %= m
		if v < 0 {
			v = -v
		}
		return v + min
	}
	cfg := DefaultConfig().WithCores(pos(cores, 1024, 1))
	cfg.Runtime = []RuntimeKind{HardwarePipeline, SoftwareRuntime, Sequential}[int(rt)%3]
	cfg.CoresPerRing = pos(cpr, 64, 1)
	cfg.Frontend.NumTRS = pos(trs, 64, 1)
	cfg.Frontend.NumORT = pos(ort, 16, 1)
	cfg.Frontend.TRSBytesEach = trsb%(64<<20) + 1
	cfg.Frontend.ORTBytesEach = ortb%(16<<20) + 1
	cfg.Frontend.OVTBytesEach = cfg.Frontend.ORTBytesEach
	cfg.Memory = memory
	cfg.LineDetailMemory = lineDetail
	return cfg
}

// FuzzConfigCanonicalString drives the fingerprint contract behind every
// cached result: two configs built from the same semantic fields encode (and
// hash) identically whatever observers are attached, any semantic change
// changes the fingerprint, and the encoding itself stays a well-formed
// unique-keyed listing.
func FuzzConfigCanonicalString(f *testing.F) {
	f.Add(uint8(0), 256, 8, 8, 2, uint64(768<<10), uint64(256<<10), true, false)
	f.Add(uint8(1), 32, 8, 4, 1, uint64(1<<20), uint64(128<<10), false, false)
	f.Add(uint8(2), 1, 1, 1, 1, uint64(1), uint64(1), true, true)
	f.Add(uint8(77), -300, 0, 1000, -5, uint64(1<<60), uint64(0), false, true)

	f.Fuzz(func(t *testing.T, rt uint8, cores, cpr, trs, ort int, trsb, ortb uint64, memory, lineDetail bool) {
		a := fuzzConfig(rt, cores, cpr, trs, ort, trsb, ortb, memory, lineDetail)
		b := fuzzConfig(rt, cores, cpr, trs, ort, trsb, ortb, memory, lineDetail)

		canon := a.CanonicalString()
		if canon != b.CanonicalString() {
			t.Fatal("identical configs encode differently")
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatal("identical configs fingerprint differently")
		}

		// Observers are not machine state: attaching them must not move
		// the content address.
		b.OnComplete = func(seq, cycle uint64) {}
		b.CancelCheckCycles = 99999
		b.Shards = 8
		if b.CanonicalString() != canon {
			t.Fatal("observer fields leaked into CanonicalString")
		}

		// Every semantic mutation moves the fingerprint.
		mutations := map[string]func(*Config){
			"cores":          func(c *Config) { c.Cores++ },
			"cores_per_ring": func(c *Config) { c.CoresPerRing++ },
			"num_trs":        func(c *Config) { c.Frontend.NumTRS++ },
			"num_ort":        func(c *Config) { c.Frontend.NumORT++ },
			"trs_bytes":      func(c *Config) { c.Frontend.TRSBytesEach++ },
			"ort_bytes":      func(c *Config) { c.Frontend.ORTBytesEach++ },
			"memory":         func(c *Config) { c.Memory = !c.Memory },
			"line_detail":    func(c *Config) { c.LineDetailMemory = !c.LineDetailMemory },
			"runtime": func(c *Config) {
				if c.Runtime == HardwarePipeline {
					c.Runtime = SoftwareRuntime
				} else {
					c.Runtime = HardwarePipeline
				}
			},
			"backend_cores": func(c *Config) { c.Backend.Cores++ },
			// The dispatch-policy axes are machine state: both the
			// top-level and Backend spellings must move the fingerprint.
			"policy":         func(c *Config) { c.Policy = "critical-path" },
			"backend_policy": func(c *Config) { c.Backend.Policy = "spec" },
			"worker_classes": func(c *Config) {
				c.WorkerClasses = []WorkerClass{{Name: "fast", Count: 1, Speed: 2}}
			},
			"worker_class_speed": func(c *Config) {
				c.WorkerClasses = []WorkerClass{{Name: "fast", Count: 1, Speed: 4}}
			},
			"worker_class_kernels": func(c *Config) {
				c.WorkerClasses = []WorkerClass{{Name: "fast", Count: 1, Speed: 2, KernelSpeed: []float64{3}}}
			},
		}
		for name, mutate := range mutations {
			m := a
			mutate(&m)
			if m.Fingerprint() == a.Fingerprint() {
				t.Fatalf("mutating %s did not change the fingerprint", name)
			}
		}

		// The two spellings of the policy axes resolve to one machine,
		// so they must canonicalize identically.
		top, nested := a, a
		top.Policy = "hetero"
		top.WorkerClasses = []WorkerClass{{Name: "fast", Count: 1, Speed: 2}}
		nested.Backend.Policy = "hetero"
		nested.Backend.WorkerClasses = []WorkerClass{{Name: "fast", Count: 1, Speed: 2}}
		if top.CanonicalString() != nested.CanonicalString() {
			t.Fatal("top-level and Backend policy spellings canonicalize differently")
		}

		// The encoding is a newline-terminated k=v listing with unique
		// keys — the property that makes it safe to extend.
		seen := map[string]bool{}
		for _, line := range strings.Split(strings.TrimSuffix(canon, "\n"), "\n") {
			k, _, ok := strings.Cut(line, "=")
			if !ok || k == "" {
				t.Fatalf("malformed canonical line %q", line)
			}
			if seen[k] {
				t.Fatalf("duplicate canonical key %q", k)
			}
			seen[k] = true
		}
	})
}
