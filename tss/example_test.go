package tss_test

import (
	"fmt"

	"tasksuperscalar/tss"
)

// ExampleRun annotates a small blocked computation StarSs-style and executes
// it on a simulated 16-core machine driven by the hardware task superscalar
// pipeline. Determinism makes the simulated cycle counts exact, so examples
// can assert on them.
func ExampleRun() {
	p := tss.NewProgram()
	k := p.Kernel("stage")
	const blockBytes = 8 << 10

	// Four independent chains of eight dependent tasks each: the pipeline
	// should overlap the chains close to 4x.
	for c := 0; c < 4; c++ {
		obj := p.Alloc(blockBytes)
		for i := 0; i < 8; i++ {
			p.Spawn(k, tss.Microseconds(20), tss.InOut(obj, blockBytes))
		}
	}

	cfg := tss.DefaultConfig().WithCores(16)
	cfg.Memory = false
	res, err := tss.Run(p, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tasks executed: %d\n", res.Tasks)
	fmt.Printf("parallel chains overlapped: %v\n",
		float64(res.TotalWorkCycles)/float64(res.Cycles) > 3)
	// Output:
	// tasks executed: 32
	// parallel chains overlapped: true
}

// ExampleRunStream executes a lazily generated task stream: the generator is
// pulled under gateway back-pressure, so memory stays bounded by the
// pipeline's in-flight window however long the stream is.
func ExampleRunStream() {
	b := tss.NewTaskBuilder()
	k := b.Kernel("stage")
	const n = 500
	obj := b.Alloc(4 << 10)
	i := 0
	gen := tss.GeneratorFunc(func() (*tss.Task, bool) {
		if i == n {
			return nil, false
		}
		i++
		return b.NewTask(k, tss.Microseconds(10), tss.InOut(obj, 4<<10)), true
	})

	cfg := tss.DefaultConfig().WithCores(8)
	cfg.Memory = false
	res, err := tss.RunStream(gen, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tasks executed: %d\n", res.Tasks)
	// Streamed runs do not record per-task schedules (O(tasks) memory).
	fmt.Printf("schedule recorded: %v\n", res.Start != nil)
	// Output:
	// tasks executed: 500
	// schedule recorded: false
}
