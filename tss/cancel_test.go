package tss

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"tasksuperscalar/internal/workloads"
)

// An uncancelled context must leave a run cycle-exact identical to the
// plain entry point, for every runtime kind and for both the serial and
// the sharded engine: cancellation polling (like sharding) is
// observational.
func TestRunCtxUncancelledMatchesRun(t *testing.T) {
	wl, _ := workloads.ByName("cholesky")
	for _, kind := range []RuntimeKind{HardwarePipeline, SoftwareRuntime, Sequential} {
		b := wl.Gen(600, 7)
		cfg := DefaultConfig().WithCores(16)
		cfg.Memory = false
		cfg.Runtime = kind
		want, err := RunTasks(b.Tasks, cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}

		for _, shards := range []int{1, 4} {
			ctx, cancel := context.WithCancel(context.Background())
			b2 := wl.Gen(600, 7)
			cfg.Shards = shards
			cfg.CancelCheckCycles = 1000 // aggressive polling must not perturb anything
			got, err := RunTasksCtx(ctx, b2.Tasks, cfg)
			cancel()
			if err != nil {
				t.Fatalf("%v shards %d: %v", kind, shards, err)
			}
			if got.Cycles != want.Cycles || got.Tasks != want.Tasks {
				t.Fatalf("%v shards %d: ctx run %d cycles/%d tasks, plain run %d cycles/%d tasks",
					kind, shards, got.Cycles, got.Tasks, want.Cycles, want.Tasks)
			}
		}
	}
}

// A pre-cancelled context aborts the run with an error wrapping
// context.Canceled and no result.
func TestRunTasksCtxPreCancelled(t *testing.T) {
	wl, _ := workloads.ByName("cholesky")
	for _, shards := range []int{1, 8} {
		b := wl.Gen(600, 7)
		cfg := DefaultConfig().WithCores(16)
		cfg.Memory = false
		cfg.Shards = shards
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := RunTasksCtx(ctx, b.Tasks, cfg)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("shards %d: error = %v, want wrap of context.Canceled", shards, err)
		}
		if res != nil {
			t.Fatalf("shards %d: cancelled run returned a result", shards)
		}
	}
}

// Cancelling mid-run (from the OnComplete observer, so the cancel lands at a
// known point of simulated time) stops the engine promptly: with a poll
// interval of k cycles, no more than k cycles of simulated time may elapse
// after the cancellation. The sharded rows additionally pin the barrier
// protocol: a cancelled sharded run must return (joining every shard
// goroutine on the way out) rather than deadlocking at a window barrier,
// and must leak no workers.
func TestRunTasksCtxCancelMidRun(t *testing.T) {
	wl, _ := workloads.ByName("cholesky")
	for _, shards := range []int{1, 2, 8} {
		base := runtime.NumGoroutine()
		b := wl.Gen(2000, 7)
		cfg := DefaultConfig().WithCores(16)
		cfg.Memory = false
		cfg.Shards = shards
		cfg.CancelCheckCycles = 4096

		ctx, cancel := context.WithCancel(context.Background())
		var cancelAt uint64
		var retired int
		cfg.OnComplete = func(seq, cycle uint64) {
			retired++
			if retired == 50 {
				cancelAt = cycle
				cancel()
			}
		}
		_, err := RunTasksCtx(ctx, b.Tasks, cfg)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("shards %d: error = %v, want wrap of context.Canceled", shards, err)
		}
		if cancelAt == 0 {
			t.Fatalf("shards %d: run finished before the cancel point was reached", shards)
		}
		waitGoroutines(t, base)
	}
}

// waitGoroutines polls until the goroutine count returns to base (exited
// goroutines may stay briefly visible to runtime.NumGoroutine).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("shard goroutines leaked after cancel: %d live, base %d",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// RunStreamCtx honors cancellation too (the streaming path shares the same
// engine loop), serial and sharded alike.
func TestRunStreamCtxCancelled(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := DefaultConfig().WithCores(8)
		cfg.Memory = false
		cfg.Shards = shards
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := RunStreamCtx(ctx, workloads.NewCPIStream(5000, 42), cfg)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("shards %d: error = %v, want wrap of context.Canceled", shards, err)
		}
	}
}

// CancelCheckCycles is an observer knob: it must not enter the canonical
// config encoding, or identical machines would stop sharing cache keys.
func TestCancelCheckCyclesNotInFingerprint(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	b.CancelCheckCycles = 12345
	if a.CanonicalString() != b.CanonicalString() {
		t.Fatal("CancelCheckCycles leaked into CanonicalString")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("CancelCheckCycles leaked into Fingerprint")
	}
}

// Shards is an observer knob exactly like CancelCheckCycles: a sharded run
// is bit-identical to the serial run, so the shard count must not enter the
// canonical encoding or the fingerprint.
func TestShardsNotInFingerprint(t *testing.T) {
	a := DefaultConfig()
	for _, shards := range []int{2, 4, 8, 64} {
		b := DefaultConfig()
		b.Shards = shards
		if a.CanonicalString() != b.CanonicalString() {
			t.Fatalf("Shards=%d leaked into CanonicalString", shards)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("Shards=%d leaked into Fingerprint", shards)
		}
	}
}
