package tss

import (
	"context"
	"errors"
	"testing"

	"tasksuperscalar/internal/workloads"
)

// An uncancelled context must leave a run cycle-exact identical to the
// plain entry point, for every runtime kind: cancellation polling is
// observational.
func TestRunCtxUncancelledMatchesRun(t *testing.T) {
	wl, _ := workloads.ByName("cholesky")
	for _, kind := range []RuntimeKind{HardwarePipeline, SoftwareRuntime, Sequential} {
		b := wl.Gen(600, 7)
		cfg := DefaultConfig().WithCores(16)
		cfg.Memory = false
		cfg.Runtime = kind
		want, err := RunTasks(b.Tasks, cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}

		ctx, cancel := context.WithCancel(context.Background())
		b2 := wl.Gen(600, 7)
		cfg.CancelCheckCycles = 1000 // aggressive polling must not perturb anything
		got, err := RunTasksCtx(ctx, b2.Tasks, cfg)
		cancel()
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if got.Cycles != want.Cycles || got.Tasks != want.Tasks {
			t.Fatalf("%v: ctx run %d cycles/%d tasks, plain run %d cycles/%d tasks",
				kind, got.Cycles, got.Tasks, want.Cycles, want.Tasks)
		}
	}
}

// A pre-cancelled context aborts the run with an error wrapping
// context.Canceled and no result.
func TestRunTasksCtxPreCancelled(t *testing.T) {
	wl, _ := workloads.ByName("cholesky")
	b := wl.Gen(600, 7)
	cfg := DefaultConfig().WithCores(16)
	cfg.Memory = false
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunTasksCtx(ctx, b.Tasks, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want wrap of context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
}

// Cancelling mid-run (from the OnComplete observer, so the cancel lands at a
// known point of simulated time) stops the engine promptly: with a poll
// interval of k cycles, no more than k cycles of simulated time may elapse
// after the cancellation.
func TestRunTasksCtxCancelMidRun(t *testing.T) {
	wl, _ := workloads.ByName("cholesky")
	b := wl.Gen(2000, 7)
	cfg := DefaultConfig().WithCores(16)
	cfg.Memory = false
	cfg.CancelCheckCycles = 4096

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cancelAt uint64
	var retired int
	cfg.OnComplete = func(seq, cycle uint64) {
		retired++
		if retired == 50 {
			cancelAt = cycle
			cancel()
		}
	}
	_, err := RunTasksCtx(ctx, b.Tasks, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want wrap of context.Canceled", err)
	}
	if cancelAt == 0 {
		t.Fatal("run finished before the cancel point was reached")
	}
}

// RunStreamCtx honors cancellation too (the streaming path shares the same
// engine loop).
func TestRunStreamCtxCancelled(t *testing.T) {
	cfg := DefaultConfig().WithCores(8)
	cfg.Memory = false
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunStreamCtx(ctx, workloads.NewCPIStream(5000, 42), cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want wrap of context.Canceled", err)
	}
}

// CancelCheckCycles is an observer knob: it must not enter the canonical
// config encoding, or identical machines would stop sharing cache keys.
func TestCancelCheckCyclesNotInFingerprint(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	b.CancelCheckCycles = 12345
	if a.CanonicalString() != b.CanonicalString() {
		t.Fatal("CancelCheckCycles leaked into CanonicalString")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("CancelCheckCycles leaked into Fingerprint")
	}
}
