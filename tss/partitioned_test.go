package tss

import (
	"testing"

	"tasksuperscalar/internal/graph"
	"tasksuperscalar/internal/taskmodel"
)

// partition builds one generating thread's chain-structured program. Each
// call gets a fresh address region so partitions stay disjoint.
var partitionRegion Addr = 0x1000_0000

func partition(chains, depth int) *Program {
	partitionRegion += 0x1000_0000
	p := NewProgramAt(partitionRegion)
	k := p.Kernel("step")
	for c := 0; c < chains; c++ {
		obj := p.Alloc(16 << 10)
		for d := 0; d < depth; d++ {
			p.Spawn(k, 20_000, InOut(obj, 16<<10))
		}
	}
	return p
}

func TestPartitionedRunCompletes(t *testing.T) {
	parts := []*Program{partition(4, 6), partition(4, 6), partition(4, 6)}
	cfg := DefaultConfig().WithCores(16)
	cfg.Memory = false
	res, err := RunPartitioned(parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 3*4*6 {
		t.Fatalf("executed %d tasks, want %d", res.Tasks, 3*4*6)
	}
}

func TestPartitionedRespectsPerPartitionOrder(t *testing.T) {
	parts := []*Program{partition(2, 8), partition(2, 8)}
	cfg := DefaultConfig().WithCores(8)
	cfg.Memory = false
	res, err := RunPartitioned(parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Build the oracle over the concatenated (re-sequenced) stream; since
	// partitions are disjoint, dependencies are intra-partition only.
	var all []*taskmodel.Task
	for _, p := range parts {
		all = append(all, p.tasks...)
	}
	g := graph.Build(all, graph.Options{Renaming: true})
	if err := g.ValidateSchedule(res.Start, res.Finish); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedRejectsSharedObjects(t *testing.T) {
	a := NewProgram()
	k := a.Kernel("k")
	obj := a.Alloc(4096)
	a.Spawn(k, 100, InOut(obj, 4096))
	b := NewProgram()
	kb := b.Kernel("k")
	// Deliberately alias partition a's object.
	b.Spawn(kb, 100, In(obj, 4096))
	cfg := DefaultConfig().WithCores(4)
	cfg.Memory = false
	if _, err := RunPartitioned([]*Program{a, b}, cfg); err == nil {
		t.Fatal("overlapping partitions accepted")
	}
}

func TestPartitionedRejectsNonHardware(t *testing.T) {
	cfg := DefaultConfig().WithCores(4)
	cfg.Runtime = SoftwareRuntime
	if _, err := RunPartitioned([]*Program{partition(1, 2)}, cfg); err == nil {
		t.Fatal("software runtime accepted for partitioned run")
	}
	if _, err := RunPartitioned(nil, DefaultConfig()); err == nil {
		t.Fatal("empty partition list accepted")
	}
}

func TestPartitionedMatchesSingleThreadThroughput(t *testing.T) {
	// Splitting a stream of tiny tasks across two generating threads must
	// not regress throughput (the decode pipeline, not generation, is the
	// bottleneck at this grain: generation costs ~36 cycles/task against
	// ~70 cycles/task of decode).
	mk := func(n int) *Program {
		partitionRegion += 0x1000_0000
		p := NewProgramAt(partitionRegion)
		k := p.Kernel("t")
		for i := 0; i < n; i++ {
			p.Spawn(k, 1, In(p.Alloc(4096), 4096))
		}
		return p
	}
	cfg := DefaultConfig().WithCores(64)
	cfg.Memory = false

	single, err := RunPartitioned([]*Program{mk(4000)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dual, err := RunPartitioned([]*Program{mk(2000), mk(2000)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if float64(dual.Cycles) > 1.05*float64(single.Cycles) {
		t.Fatalf("two generating threads (%d cycles) regressed versus one (%d cycles)",
			dual.Cycles, single.Cycles)
	}
}
