package tss

import (
	"tasksuperscalar/internal/graph"
	"tasksuperscalar/internal/taskmodel"
)

// TaskDepths computes each task's dependent-chain height — the length of
// the longest dependency chain hanging off its outputs — against the
// reference dependency graph, under the same renaming semantics the
// pipeline uses. The table is indexed by task sequence number and feeds the
// critical-path dispatch policy (backend.Config.TaskDepth): a task whose
// completion unblocks a deep chain dispatches ahead of one that unblocks
// nothing.
//
// The result is a pure function of the workload, not of the machine, which
// is why TaskDepth stays out of config canonicalization.
func TaskDepths(tasks []*taskmodel.Task, renaming bool) []uint32 {
	if len(tasks) == 0 {
		return nil
	}
	g := graph.Build(tasks, graph.Options{Renaming: renaming})
	h := make([]uint32, len(tasks))
	// Edges point from earlier to later tasks, so one reverse pass sees
	// every successor's height before its predecessors need it.
	for i := len(tasks) - 1; i >= 0; i-- {
		var best uint32
		for _, s := range g.Succ[i] {
			if d := h[s] + 1; d > best {
				best = d
			}
		}
		h[i] = best
	}
	var maxSeq uint64
	for _, t := range tasks {
		if t.Seq > maxSeq {
			maxSeq = t.Seq
		}
	}
	if maxSeq == uint64(len(tasks)-1) {
		// Sequence numbers are dense slice indices (the common case):
		// h is already the seq-indexed table.
		return h
	}
	out := make([]uint32, maxSeq+1)
	for i, t := range tasks {
		out[t.Seq] = h[i]
	}
	return out
}
