#!/usr/bin/env bash
# Allocation-regression gate.
#
# The frontend's steady-state decode path is designed to be allocation-free:
# task records live in slot arenas, version records in open-addressed
# slabs, protocol messages and dispatch records in free-list pools (see
# docs/ARCHITECTURE.md "Memory layout"). What remains in the measured
# allocs-per-simulated-task figure is per-run machine construction spread
# over the workload, so the number is small and stable — and any structural
# regression (a map reintroduced on a hot path, a pooled object leaking to
# the heap) moves it sharply.
#
# This script fails if the freshly measured `frontend_decode` allocs/task
# in BENCH_engine.json exceeds the ceiling committed in
# docs/goldens/alloc_budget.txt. Raise the ceiling only with a justified,
# reviewed change (and say so in the PR description).
set -euo pipefail
cd "$(dirname "$0")/.."

bench=${1:-BENCH_engine.json}
budget_file=docs/goldens/alloc_budget.txt

# The budget file commits one ceiling per line: serial decode first, then
# the sharded (4-shard) decode, whose figure additionally carries the
# shard machinery (queues, outboxes, per-run goroutine spawns) amortized
# over the reference workload, then the critical-path policy decode,
# which adds the one-time dependence-graph depth precompute.
ceiling=$(grep -v '^#' "$budget_file" | sed -n 1p | tr -d '[:space:]')
shard_ceiling=$(grep -v '^#' "$budget_file" | sed -n 2p | tr -d '[:space:]')
cp_ceiling=$(grep -v '^#' "$budget_file" | sed -n 3p | tr -d '[:space:]')

gate() { # gate <bench-key> <ceiling>
  local key=$1 limit=$2
  local actual
  actual=$(python3 - "$bench" "$key" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
print(data["current"]["results"][sys.argv[2]]["allocs_per_task"])
EOF
  )
  echo "$key: ${actual} allocs/task (ceiling ${limit})"
  python3 - "$actual" "$limit" "$key" <<'EOF'
import sys
actual, ceiling = float(sys.argv[1]), float(sys.argv[2])
if actual > ceiling:
    print(f"FAIL: {sys.argv[3]} allocates {actual} times per simulated task, "
          f"over the committed ceiling of {ceiling}.", file=sys.stderr)
    print("If this increase is intentional, raise docs/goldens/alloc_budget.txt "
          "and justify it in the PR description.", file=sys.stderr)
    sys.exit(1)
EOF
}

gate frontend_decode "$ceiling"
gate frontend_decode_shard4 "$shard_ceiling"
gate frontend_decode_critical_path "$cp_ceiling"
echo "allocation budget OK"
