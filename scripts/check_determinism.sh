#!/usr/bin/env bash
# Determinism golden check.
#
# The simulator's contract is cycle-exact reproducibility: the same inputs
# must produce byte-identical output on every run, at every sweep worker
# count, on every machine. This script verifies that in three steps:
#
#   1. tsbench quick mode twice — serial and with a 4-way worker pool —
#      must be byte-identical (parallel sweep determinism);
#   2. tssim on two fixed seeds (one hardware run, one with the full
#      memory hierarchy) — exercises single-run determinism;
#   3. the sha256 hashes of all outputs must match the goldens committed
#      under docs/goldens/ (cross-PR drift detection).
#
# Run with -update after an INTENDED simulation-semantics change to
# regenerate the goldens (and say so in the PR description).
set -euo pipefail
cd "$(dirname "$0")/.."

golden=docs/goldens/determinism.sha256
update=0
[ "${1:-}" = "-update" ] && update=1

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/tsbench" ./cmd/tsbench
go build -o "$tmp/tssim" ./cmd/tssim

# Drop the wall-clock timing lines tsbench prints per experiment.
norm() { grep -v '^('; }

"$tmp/tsbench" -experiment all -workers 1 | norm > "$tmp/bench-serial.txt"
"$tmp/tsbench" -experiment all -workers 4 | norm > "$tmp/bench-parallel.txt"
if ! cmp -s "$tmp/bench-serial.txt" "$tmp/bench-parallel.txt"; then
  echo "FAIL: serial and 4-worker sweeps differ (parallel determinism broken)" >&2
  diff "$tmp/bench-serial.txt" "$tmp/bench-parallel.txt" | head -20 >&2
  exit 1
fi

"$tmp/tssim" -workload cholesky -tasks 3000 -seed 7 -cores 64 > "$tmp/sim-cholesky-seed7.txt"
"$tmp/tssim" -workload h264 -tasks 2000 -seed 3 -cores 128 -memory > "$tmp/sim-h264-seed3.txt"
"$tmp/tssim" -workload cholesky -tasks 3000 -seed 7 -cores 64 -policy critical-path > "$tmp/sim-cholesky-cp.txt"

# Sharded-engine invariance: the same fixed-seed runs at several shard
# counts must reproduce the serial output byte for byte. The goldens are
# deliberately shard-count-invariant — sharding is an observer — so the
# sharded outputs are diffed against the serial files that the goldens
# hash, rather than hashed separately. Only the host-resource line (wall
# time and heap of the simulator process itself) is excluded: it reports
# the host, not the simulation.
simnorm() { grep -v '^host:'; }
simnorm < "$tmp/sim-cholesky-seed7.txt" > "$tmp/serial-cholesky.norm"
simnorm < "$tmp/sim-h264-seed3.txt" > "$tmp/serial-h264.norm"
simnorm < "$tmp/sim-cholesky-cp.txt" > "$tmp/serial-cholesky-cp.norm"
for n in 2 4 8; do
  "$tmp/tssim" -workload cholesky -tasks 3000 -seed 7 -cores 64 -shards "$n" | simnorm > "$tmp/shard$n-cholesky.norm"
  if ! cmp -s "$tmp/serial-cholesky.norm" "$tmp/shard$n-cholesky.norm"; then
    echo "FAIL: $n-shard cholesky run differs from serial (sharded determinism broken)" >&2
    diff "$tmp/serial-cholesky.norm" "$tmp/shard$n-cholesky.norm" | head -20 >&2
    exit 1
  fi
  "$tmp/tssim" -workload h264 -tasks 2000 -seed 3 -cores 128 -memory -shards "$n" | simnorm > "$tmp/shard$n-h264.norm"
  if ! cmp -s "$tmp/serial-h264.norm" "$tmp/shard$n-h264.norm"; then
    echo "FAIL: $n-shard h264+memory run differs from serial (sharded determinism broken)" >&2
    diff "$tmp/serial-h264.norm" "$tmp/shard$n-h264.norm" | head -20 >&2
    exit 1
  fi
  "$tmp/tssim" -workload cholesky -tasks 3000 -seed 7 -cores 64 -policy critical-path -shards "$n" | simnorm > "$tmp/shard$n-cholesky-cp.norm"
  if ! cmp -s "$tmp/serial-cholesky-cp.norm" "$tmp/shard$n-cholesky-cp.norm"; then
    echo "FAIL: $n-shard critical-path run differs from serial (policy sharded determinism broken)" >&2
    diff "$tmp/serial-cholesky-cp.norm" "$tmp/shard$n-cholesky-cp.norm" | head -20 >&2
    exit 1
  fi
done

(cd "$tmp" && sha256sum bench-serial.txt sim-cholesky-seed7.txt sim-h264-seed3.txt sim-cholesky-cp.txt) > "$tmp/hashes"

if [ "$update" = 1 ]; then
  mkdir -p "$(dirname "$golden")"
  cp "$tmp/hashes" "$golden"
  echo "goldens updated in $golden"
  exit 0
fi

if ! diff -u "$golden" "$tmp/hashes"; then
  echo "FAIL: output drifted from the committed goldens ($golden)." >&2
  echo "If this PR intentionally changes simulation semantics, regenerate with:" >&2
  echo "  scripts/check_determinism.sh -update" >&2
  exit 1
fi
echo "determinism OK ($(wc -l < "$golden") goldens)"
