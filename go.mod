module tasksuperscalar

go 1.24
