module tasksuperscalar

go 1.23
