// Integration tests: drive the assembled machine (frontend + backend +
// memory + NoC) across all nine workloads and both runtimes, validating
// against the dependency-graph oracle and the paper's qualitative claims.
package main

import (
	"testing"

	"tasksuperscalar/internal/graph"
	"tasksuperscalar/internal/workloads"
	"tasksuperscalar/tss"
)

func smallCfg(cores int) tss.Config {
	cfg := tss.DefaultConfig().WithCores(cores)
	cfg.Memory = false
	return cfg
}

// TestAllWorkloadsRespectOracle runs every benchmark at small scale on the
// hardware pipeline and validates the observed schedule against the
// sequential-semantics dependency graph.
func TestAllWorkloadsRespectOracle(t *testing.T) {
	for _, wl := range workloads.All() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			b := wl.Gen(1200, 7)
			res, err := tss.RunTasks(b.Tasks, smallCfg(64))
			if err != nil {
				t.Fatal(err)
			}
			if int(res.Tasks) != len(b.Tasks) {
				t.Fatalf("executed %d of %d tasks", res.Tasks, len(b.Tasks))
			}
			g := graph.Build(b.Tasks, graph.Options{Renaming: true})
			if err := g.ValidateSchedule(res.Start, res.Finish); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAllWorkloadsOnSoftwareRuntime runs every benchmark on the software
// baseline and validates schedules the same way.
func TestAllWorkloadsOnSoftwareRuntime(t *testing.T) {
	for _, wl := range workloads.All() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			b := wl.Gen(800, 7)
			cfg := smallCfg(64)
			cfg.Runtime = tss.SoftwareRuntime
			res, err := tss.RunTasks(b.Tasks, cfg)
			if err != nil {
				t.Fatal(err)
			}
			g := graph.Build(b.Tasks, graph.Options{Renaming: true})
			if err := g.ValidateSchedule(res.Start, res.Finish); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRunsAreDeterministic re-runs the same configuration and demands
// identical cycle counts (the discrete-event engine is seeded and ordered).
func TestRunsAreDeterministic(t *testing.T) {
	b := workloads.Cholesky(1500, 42)
	var first uint64
	for i := 0; i < 3; i++ {
		res, err := tss.RunTasks(b.Tasks, smallCfg(64))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Cycles
		} else if res.Cycles != first {
			t.Fatalf("run %d took %d cycles, run 0 took %d", i, res.Cycles, first)
		}
	}
}

// TestMoreCoresNeverSlower checks speedup monotonicity across machine sizes.
func TestMoreCoresNeverSlower(t *testing.T) {
	b := workloads.MatMul(2000, 42)
	var prev uint64 = ^uint64(0)
	for _, cores := range []int{8, 32, 128} {
		res, err := tss.RunTasks(b.Tasks, smallCfg(cores))
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles > prev+prev/20 { // allow 5% noise
			t.Fatalf("%d cores took %d cycles, more than fewer cores (%d)", cores, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

// TestHardwareBeatsSoftwareOnShortTasks reproduces the core claim: for
// fine-grain tasks (STAP) the hardware pipeline scales far beyond the
// software runtime.
func TestHardwareBeatsSoftwareOnShortTasks(t *testing.T) {
	b := workloads.STAP(4000, 42)
	seq := float64(tss.SequentialCycles(b.Tasks))
	hw, err := tss.RunTasks(b.Tasks, smallCfg(256))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(256)
	cfg.Runtime = tss.SoftwareRuntime
	sw, err := tss.RunTasks(b.Tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hwSp := seq / float64(hw.Cycles)
	swSp := seq / float64(sw.Cycles)
	if hwSp < 2*swSp {
		t.Fatalf("STAP at 256p: hardware %.0fx vs software %.0fx; want >= 2x gap", hwSp, swSp)
	}
}

// TestSoftwareScalesOnLongTasks reproduces §VI.C: for ~100 us tasks (Knn)
// the software decoder is adequate and the two runtimes converge.
func TestSoftwareScalesOnLongTasks(t *testing.T) {
	b := workloads.Knn(3000, 42)
	seq := float64(tss.SequentialCycles(b.Tasks))
	hw, err := tss.RunTasks(b.Tasks, smallCfg(128))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(128)
	cfg.Runtime = tss.SoftwareRuntime
	sw, err := tss.RunTasks(b.Tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hwSp := seq / float64(hw.Cycles)
	swSp := seq / float64(sw.Cycles)
	if swSp < 0.7*hwSp {
		t.Fatalf("Knn at 128p: software %.0fx should approach hardware %.0fx", swSp, hwSp)
	}
}

// TestWindowCapacityLimitsSpeedup reproduces Figure 15's mechanism: a tiny
// TRS window reduces uncovered parallelism.
func TestWindowCapacityLimitsSpeedup(t *testing.T) {
	b := workloads.H264(6000, 42)
	seq := float64(tss.SequentialCycles(b.Tasks))
	small := smallCfg(256)
	small.Frontend.TRSBytesEach = (256 << 10) / 8
	rSmall, err := tss.RunTasks(b.Tasks, small)
	if err != nil {
		t.Fatal(err)
	}
	big := smallCfg(256)
	rBig, err := tss.RunTasks(b.Tasks, big)
	if err != nil {
		t.Fatal(err)
	}
	spSmall := seq / float64(rSmall.Cycles)
	spBig := seq / float64(rBig.Cycles)
	if spBig <= spSmall*1.2 {
		t.Fatalf("window effect missing: 256KB window %.1fx vs 6MB window %.1fx", spSmall, spBig)
	}
}

// TestDecodeRateBeatsTarget reproduces the headline: the default pipeline
// decodes the average benchmark faster than the 256p consumption limit.
func TestDecodeRateBeatsTarget(t *testing.T) {
	// 187 cycles/task is the 256p target from §II; KMeans (17-operand
	// reduction tasks) sits just above it, like H264 does in the paper.
	limits := map[string]float64{"Cholesky": 187, "MatMul": 187, "KMeans": 250}
	for name, limit := range limits {
		wl, _ := workloads.ByName(name)
		b := wl.Gen(3000, 42)
		res, err := tss.RunTasks(b.Tasks, smallCfg(256))
		if err != nil {
			t.Fatal(err)
		}
		if res.DecodeRateCycles > limit {
			t.Errorf("%s decode rate %.0f cycles/task exceeds %0.f",
				name, res.DecodeRateCycles, limit)
		}
	}
}

// TestMemorySystemEndToEnd runs a small workload with the full coherent
// hierarchy enabled and checks the machine still validates.
func TestMemorySystemEndToEnd(t *testing.T) {
	b := workloads.CholeskyN(8, 42) // 120 tasks
	cfg := tss.DefaultConfig().WithCores(16)
	cfg.Memory = true
	res, err := tss.RunTasks(b.Tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(b.Tasks, graph.Options{Renaming: true})
	if err := g.ValidateSchedule(res.Start, res.Finish); err != nil {
		t.Fatal(err)
	}
	if res.Mem.Fetches == 0 || res.Mem.Writebacks == 0 {
		t.Fatal("memory system not exercised")
	}
	// Renamed versions idle at the end are copied home by the DMA engine.
	if res.Frontend.Renames > 0 && res.Mem.DMACopies == 0 {
		t.Fatal("rename copy-back did not use the DMA engine")
	}
}

// TestLineDetailMemoryEndToEnd exercises the line-granular L1 models.
func TestLineDetailMemoryEndToEnd(t *testing.T) {
	b := workloads.CholeskyN(6, 42)
	cfg := tss.DefaultConfig().WithCores(8)
	cfg.Memory = true
	cfg.LineDetailMemory = true
	res, err := tss.RunTasks(b.Tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Tasks) != len(b.Tasks) {
		t.Fatalf("executed %d of %d", res.Tasks, len(b.Tasks))
	}
}

// TestRenamingOffStillCorrect runs the pipeline without renaming and
// validates against the unrenamed oracle (WaR/WaW edges included).
func TestRenamingOffStillCorrect(t *testing.T) {
	b := workloads.FFT(1500, 42)
	cfg := smallCfg(64)
	cfg.Frontend.Renaming = false
	res, err := tss.RunTasks(b.Tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Build(b.Tasks, graph.Options{Renaming: false})
	if err := g.ValidateSchedule(res.Start, res.Finish); err != nil {
		t.Fatal(err)
	}
}
