// Benchmark harness: one testing.B benchmark per table and figure of the
// paper (regenerating the same rows/series via internal/experiments), plus
// ablation benches for the design choices DESIGN.md calls out.
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks run the experiment in quick mode per iteration;
// cmd/tsbench -full regenerates the paper-scale outputs.
package main

import (
	"io"
	"testing"

	"tasksuperscalar/internal/benchsuite"
	"tasksuperscalar/internal/experiments"
	"tasksuperscalar/internal/workloads"
	"tasksuperscalar/tss"
)

func benchOpts() experiments.Options {
	return experiments.Options{Quick: true, Seed: 42, Cores: 256}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table I (benchmark task statistics).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig12 regenerates Figure 12 (decode rate vs parallelism,
// Cholesky and H264).
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Figure 13 (average decode rate vs parallelism).
func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14 regenerates Figure 14 (speedup vs total ORT capacity).
func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15 regenerates Figure 15 (speedup vs total TRS capacity).
func BenchmarkFig15(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16 regenerates Figure 16 (hardware vs software speedups).
func BenchmarkFig16(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkHeadline regenerates the abstract's headline numbers.
func BenchmarkHeadline(b *testing.B) { runExperiment(b, "headline") }

// BenchmarkChains regenerates the consumer-chain statistics (§IV.B).
func BenchmarkChains(b *testing.B) { runExperiment(b, "chains") }

// --- ablation benches: design choices from DESIGN.md §5 ---

// ablationRun measures Cholesky decode rate and speedup under a config
// mutation, reporting cycles/task and speedup as custom metrics.
func ablationRun(b *testing.B, mutate func(cfg *tss.Config)) {
	b.Helper()
	build := workloads.Cholesky(4000, 42)
	var decode, speed float64
	for i := 0; i < b.N; i++ {
		cfg := tss.DefaultConfig().WithCores(256)
		cfg.Memory = false
		mutate(&cfg)
		res, err := tss.RunTasks(build.Tasks, cfg)
		if err != nil {
			b.Fatal(err)
		}
		decode = res.DecodeRateCycles
		speed = float64(tss.SequentialCycles(build.Tasks)) / float64(res.Cycles)
	}
	b.ReportMetric(decode, "decode-cy/task")
	b.ReportMetric(speed, "speedup")
}

// BenchmarkAblationBaseline is the default pipeline (8 TRS / 2 ORT,
// chaining and renaming on).
func BenchmarkAblationBaseline(b *testing.B) {
	ablationRun(b, func(cfg *tss.Config) {})
}

// scratchReuseProgram is the renaming stress: producers cycle through a
// small pool of scratch output buffers (register-style reuse). Renaming
// breaks the WaR/WaW hazards on the pool; without it parallelism collapses
// to roughly the pool size.
func scratchReuseProgram() *tss.Program {
	p := tss.NewProgram()
	k := p.Kernel("stage")
	const blockBytes = 8 << 10
	scratch := make([]tss.Addr, 8)
	for i := range scratch {
		scratch[i] = p.Alloc(blockBytes)
	}
	for i := 0; i < 2000; i++ {
		input := p.Alloc(blockBytes)
		s := scratch[i%len(scratch)]
		p.Spawn(k, tss.Microseconds(30), tss.In(input, blockBytes), tss.Out(s, blockBytes))
		p.Spawn(k, tss.Microseconds(30), tss.In(s, blockBytes), tss.Out(p.Alloc(blockBytes), blockBytes))
	}
	return p
}

func renamingAblation(b *testing.B, renaming bool) {
	b.Helper()
	p := scratchReuseProgram()
	var speed float64
	for i := 0; i < b.N; i++ {
		cfg := tss.DefaultConfig().WithCores(256)
		cfg.Memory = false
		cfg.Frontend.Renaming = renaming
		res, err := tss.Run(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		speed = float64(tss.SequentialCycles(p.Tasks())) / float64(res.Cycles)
	}
	b.ReportMetric(speed, "speedup")
}

// BenchmarkAblationRenaming runs the scratch-reuse stress with OVT renaming
// (anti- and output-dependencies broken).
func BenchmarkAblationRenaming(b *testing.B) { renamingAblation(b, true) }

// BenchmarkAblationNoRenaming disables OVT renaming on the same stress:
// WaR/WaW hazards on the scratch pool serialize execution.
func BenchmarkAblationNoRenaming(b *testing.B) { renamingAblation(b, false) }

func chainingAblation(b *testing.B, chaining bool) {
	b.Helper()
	// KMeans broadcasts each centroids version to 512 readers: the
	// chaining trade-off (forwarding latency vs producer-TRS load) shows
	// up in decode rate and makespan.
	build := workloads.KMeans(6000, 42)
	var speed, decode float64
	for i := 0; i < b.N; i++ {
		cfg := tss.DefaultConfig().WithCores(256)
		cfg.Memory = false
		cfg.Frontend.Chaining = chaining
		res, err := tss.RunTasks(build.Tasks, cfg)
		if err != nil {
			b.Fatal(err)
		}
		speed = float64(tss.SequentialCycles(build.Tasks)) / float64(res.Cycles)
		decode = res.DecodeRateCycles
	}
	b.ReportMetric(speed, "speedup")
	b.ReportMetric(decode, "decode-cy/task")
}

// BenchmarkAblationChaining uses the paper's consumer chaining on a
// broadcast-heavy workload.
func BenchmarkAblationChaining(b *testing.B) { chainingAblation(b, true) }

// BenchmarkAblationNoChaining replaces consumer chaining with per-operand
// consumer lists held at the producer on the same workload.
func BenchmarkAblationNoChaining(b *testing.B) { chainingAblation(b, false) }

// BenchmarkAblationSingleTRS serializes all task-graph operations in one
// reservation station (the Figure 13 asymmetry: many ORTs cannot compensate
// for one TRS).
func BenchmarkAblationSingleTRS(b *testing.B) {
	ablationRun(b, func(cfg *tss.Config) {
		cfg.Frontend.NumTRS = 1
		cfg.Frontend.TRSBytesEach = 6 << 20
		cfg.Frontend.NumORT = 8
		cfg.Frontend.ORTBytesEach = 64 << 10
		cfg.Frontend.OVTBytesEach = 64 << 10
	})
}

// BenchmarkAblationNoPrefetch disables the Carbon-like local-queue
// prefetching (local queue depth 1: dispatch latency exposed per task).
func BenchmarkAblationNoPrefetch(b *testing.B) {
	ablationRun(b, func(cfg *tss.Config) { cfg.Backend.LocalQueueDepth = 1 })
}

// BenchmarkAblationWithMemory enables the full coherent memory hierarchy
// (operand staging through L1/L2/ring instead of trace burst mode).
func BenchmarkAblationWithMemory(b *testing.B) {
	ablationRun(b, func(cfg *tss.Config) { cfg.Memory = true })
}

// BenchmarkAblationStealing enables local-queue task stealing (Carbon
// supports it; the paper's backend does not — §IV.B.5).
func BenchmarkAblationStealing(b *testing.B) {
	ablationRun(b, func(cfg *tss.Config) { cfg.Backend.Stealing = true })
}

// BenchmarkAblationHeterogeneous models the heterogeneous-CMP direction of
// the paper's conclusion: half the cores run at 60% speed; the dataflow
// scheduler absorbs the imbalance without any code change.
func BenchmarkAblationHeterogeneous(b *testing.B) {
	ablationRun(b, func(cfg *tss.Config) {
		speeds := make([]float64, cfg.Cores)
		for i := range speeds {
			if i%2 == 0 {
				speeds[i] = 1.0
			} else {
				speeds[i] = 0.6
			}
		}
		cfg.Backend.CoreSpeed = speeds
	})
}

// --- microbenches: substrate hot paths ---

// BenchmarkFrontendDecode measures raw frontend decode throughput
// (cycles of simulated work per simulated task are reported by Fig12/13;
// this reports host ns and allocations per simulated task). The body is
// shared with `tsbench -benchjson` via internal/benchsuite.
func BenchmarkFrontendDecode(b *testing.B) { benchsuite.FrontendDecode(b) }

// BenchmarkFrontendDecodeSharded is the same decode run on the sharded
// engine (4 shards) — the parallel-engine trajectory in BENCH_engine.json.
func BenchmarkFrontendDecodeSharded(b *testing.B) { benchsuite.FrontendDecodeSharded(b) }

// BenchmarkFrontendDecodeCriticalPath is the same decode run under the
// critical-path dispatch policy — the policy-laboratory trajectory in
// BENCH_engine.json.
func BenchmarkFrontendDecodeCriticalPath(b *testing.B) { benchsuite.FrontendDecodeCriticalPath(b) }

// BenchmarkSoftwareRuntime measures the software-baseline path.
func BenchmarkSoftwareRuntime(b *testing.B) {
	build := workloads.Cholesky(2000, 42)
	cfg := tss.DefaultConfig().WithCores(256)
	cfg.Memory = false
	cfg.Runtime = tss.SoftwareRuntime
	benchsuite.ReportPerTask(b, len(build.Tasks), func() {
		if _, err := tss.RunTasks(build.Tasks, cfg); err != nil {
			b.Fatal(err)
		}
	})
}
