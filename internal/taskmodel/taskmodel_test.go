package taskmodel

import (
	"testing"
	"testing/quick"
)

func TestDirString(t *testing.T) {
	cases := map[Dir]string{In: "input", Out: "output", InOut: "inout", Scalar: "scalar"}
	for d, want := range cases {
		if d.String() != want {
			t.Errorf("Dir(%d).String() = %q, want %q", d, d.String(), want)
		}
	}
	if Dir(99).String() != "Dir(99)" {
		t.Errorf("unknown dir formatting broken: %q", Dir(99).String())
	}
}

func TestDirReadsWrites(t *testing.T) {
	if !In.Reads() || In.Writes() {
		t.Error("In must read and not write")
	}
	if Out.Reads() || !Out.Writes() {
		t.Error("Out must write and not read")
	}
	if !InOut.Reads() || !InOut.Writes() {
		t.Error("InOut must read and write")
	}
	if Scalar.Reads() || Scalar.Writes() {
		t.Error("Scalar must neither read nor write")
	}
}

func TestTaskDataBytes(t *testing.T) {
	task := &Task{Operands: []Operand{
		{Base: 0x1000, Size: 1024, Dir: In},
		{Base: 0x2000, Size: 2048, Dir: Out},
		{Base: 0, Size: 8, Dir: Scalar},
	}}
	if got := task.DataBytes(); got != 3072 {
		t.Fatalf("DataBytes() = %d, want 3072 (scalars excluded)", got)
	}
	if task.NumOperands() != 3 {
		t.Fatalf("NumOperands() = %d, want 3", task.NumOperands())
	}
}

func TestRegistry(t *testing.T) {
	var r Registry
	a := r.Register("sgemm")
	b := r.Register("spotrf")
	a2 := r.Register("sgemm")
	if a != a2 {
		t.Fatalf("re-registering returned %d, want %d", a2, a)
	}
	if a == b {
		t.Fatal("distinct kernels share an ID")
	}
	if r.Name(a) != "sgemm" || r.Name(b) != "spotrf" {
		t.Fatalf("names wrong: %q %q", r.Name(a), r.Name(b))
	}
	if r.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", r.Len())
	}
	if r.Name(KernelID(42)) == "" {
		t.Fatal("unknown kernel must format, not be empty")
	}
}

func TestSliceStream(t *testing.T) {
	tasks := []*Task{{Kernel: 1}, {Kernel: 2}, {Kernel: 3}}
	s := NewSliceStream(tasks)
	if s.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", s.Len())
	}
	var seqs []uint64
	for task := s.Next(); task != nil; task = s.Next() {
		seqs = append(seqs, task.Seq)
	}
	for i, seq := range seqs {
		if seq != uint64(i) {
			t.Fatalf("sequence numbers not in order: %v", seqs)
		}
	}
	if s.Next() != nil {
		t.Fatal("exhausted stream must keep returning nil")
	}
	s.Reset()
	if got := s.Next(); got == nil || got.Seq != 0 {
		t.Fatal("Reset did not rewind")
	}
}

func TestCollect(t *testing.T) {
	tasks := []*Task{{}, {}, {}, {}}
	got := Collect(NewSliceStream(tasks))
	if len(got) != 4 {
		t.Fatalf("Collect returned %d tasks, want 4", len(got))
	}
}

// Property: DataBytes equals the sum of non-scalar operand sizes for
// arbitrary operand lists.
func TestDataBytesProperty(t *testing.T) {
	f := func(sizes []uint16, dirs []uint8) bool {
		n := len(sizes)
		if len(dirs) < n {
			n = len(dirs)
		}
		task := &Task{}
		var want uint64
		for i := 0; i < n; i++ {
			d := Dir(dirs[i] % 4)
			task.Operands = append(task.Operands, Operand{Base: Addr(i * 4096), Size: uint32(sizes[i]), Dir: d})
			if d != Scalar {
				want += uint64(sizes[i])
			}
		}
		return task.DataBytes() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
