// Package taskmodel defines the task abstraction shared by the whole
// repository: tasks are dynamic instances of annotated kernel functions whose
// operands are memory objects or scalars with explicit directionality
// (input, output, or inout), exactly as in the StarSs programming model the
// paper builds on (§III).
package taskmodel

import "fmt"

// Dir is the directionality of a task operand.
type Dir uint8

const (
	// In marks an operand that is only read by the task.
	In Dir = iota
	// Out marks an operand that is only written by the task.
	Out
	// InOut marks an operand that is both read and written (a true
	// dependency on the previous version; never renamed).
	InOut
	// Scalar marks an immediate value; scalars need no dependency
	// tracking and are sent directly to the TRS.
	Scalar
)

// String returns the StarSs annotation keyword for the directionality.
func (d Dir) String() string {
	switch d {
	case In:
		return "input"
	case Out:
		return "output"
	case InOut:
		return "inout"
	case Scalar:
		return "scalar"
	}
	return fmt.Sprintf("Dir(%d)", uint8(d))
}

// Reads reports whether the operand consumes data produced by earlier tasks.
func (d Dir) Reads() bool { return d == In || d == InOut }

// Writes reports whether the operand produces a new version of the object.
func (d Dir) Writes() bool { return d == Out || d == InOut }

// Addr is a simulated memory address. Operand base addresses identify memory
// objects; the frontend's dependency analysis is limited to consecutive
// memory objects identified by their base pointer (paper §III.A).
type Addr uint64

// Operand is the tuple the gateway distributes to the ORTs: operand type
// (memory object or scalar, folded into Dir), base pointer, object size, and
// directionality.
type Operand struct {
	Base Addr
	Size uint32 // bytes
	Dir  Dir
}

// Task is one dynamic kernel invocation emitted by the task-generating
// thread. Runtime is the task's execution time in core cycles, as the
// trace-driven simulator would replay it.
type Task struct {
	Kernel   KernelID
	Operands []Operand
	Runtime  uint64 // execution cycles on a worker core
	Seq      uint64 // creation order, assigned by the stream
}

// NumOperands returns the operand count (the gateway needs it to size the
// TRS allocation).
func (t *Task) NumOperands() int { return len(t.Operands) }

// DataBytes returns the total bytes of memory operands (Table I "Data Sz").
func (t *Task) DataBytes() uint64 {
	var n uint64
	for _, op := range t.Operands {
		if op.Dir != Scalar {
			n += uint64(op.Size)
		}
	}
	return n
}

// Allocator hands out fresh page-aligned memory objects by bumping a base
// address — the one object-allocation policy shared by recorded programs,
// streaming builders, and the workload generators, so streamed and recorded
// forms of the same program produce identical operand addresses.
type Allocator struct{ next Addr }

// NewAllocator returns an allocator starting at base.
func NewAllocator(base Addr) Allocator { return Allocator{next: base} }

// Alloc reserves an object of the given size (rounded up to a 4 KB page,
// minimum one page) and returns its base address.
func (a *Allocator) Alloc(size uint32) Addr {
	addr := a.next
	sz := (Addr(size) + 0xFFF) &^ Addr(0xFFF)
	if sz == 0 {
		sz = 0x1000
	}
	a.next += sz
	return addr
}

// KernelID identifies a kernel function in the registry.
type KernelID uint32

// Kernel describes an annotated kernel function.
type Kernel struct {
	ID   KernelID
	Name string
}

// Registry holds the kernels of a program. The zero value is ready to use.
type Registry struct {
	kernels []Kernel
	byName  map[string]KernelID
}

// Register adds a kernel by name and returns its ID. Registering the same
// name twice returns the existing ID.
func (r *Registry) Register(name string) KernelID {
	if r.byName == nil {
		r.byName = make(map[string]KernelID)
	}
	if id, ok := r.byName[name]; ok {
		return id
	}
	id := KernelID(len(r.kernels))
	r.kernels = append(r.kernels, Kernel{ID: id, Name: name})
	r.byName[name] = id
	return id
}

// Name returns the kernel name for id, or a placeholder when unknown.
func (r *Registry) Name(id KernelID) string {
	if int(id) < len(r.kernels) {
		return r.kernels[id].Name
	}
	return fmt.Sprintf("kernel#%d", id)
}

// Len returns the number of registered kernels.
func (r *Registry) Len() int { return len(r.kernels) }

// Stream produces tasks in sequential program order. Next returns nil when
// the stream is exhausted. Streams must be deterministic: two iterations of
// the same stream yield identical tasks.
type Stream interface {
	Next() *Task
}

// SliceStream adapts a pre-built task slice into a Stream, assigning
// sequence numbers in order.
type SliceStream struct {
	tasks []*Task
	pos   int
}

// NewSliceStream returns a Stream over tasks. Sequence numbers are
// (re)assigned from 0 in slice order.
func NewSliceStream(tasks []*Task) *SliceStream {
	for i, t := range tasks {
		t.Seq = uint64(i)
	}
	return &SliceStream{tasks: tasks}
}

// Next implements Stream.
func (s *SliceStream) Next() *Task {
	if s.pos >= len(s.tasks) {
		return nil
	}
	t := s.tasks[s.pos]
	s.pos++
	return t
}

// Len returns the total number of tasks in the underlying slice.
func (s *SliceStream) Len() int { return len(s.tasks) }

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Collect drains a stream into a slice (for analysis tools that need the
// whole program, like the reference graph builder).
func Collect(s Stream) []*Task {
	var out []*Task
	for t := s.Next(); t != nil; t = s.Next() {
		out = append(out, t)
	}
	return out
}
