package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d, want 5", s.N())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %v/%v, want 1/5", s.Min(), s.Max())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean = %v, want 3", s.Mean())
	}
	if s.Median() != 3 {
		t.Fatalf("median = %v, want 3", s.Median())
	}
	if s.Sum() != 15 {
		t.Fatalf("sum = %v, want 15", s.Sum())
	}
}

func TestEmptySampleIsSafe(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 || s.StdDev() != 0 {
		t.Fatal("empty sample must return zeros")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Sample
	for i := 1; i <= 4; i++ {
		s.Add(float64(i)) // 1,2,3,4
	}
	if got := s.Percentile(50); got != 2.5 {
		t.Fatalf("P50 = %v, want 2.5", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v, want 1", got)
	}
	if got := s.Percentile(100); got != 4 {
		t.Fatalf("P100 = %v, want 4", got)
	}
}

func TestFracAtMost(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 2, 3, 10} {
		s.Add(v)
	}
	if got := s.FracAtMost(2); got != 0.6 {
		t.Fatalf("FracAtMost(2) = %v, want 0.6", got)
	}
	if got := s.FracAbove(3); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("FracAbove(3) = %v, want 0.2", got)
	}
}

func TestStdDev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Add(1)  // bucket 0
	h.Add(2)  // bucket 1
	h.Add(3)  // bucket 2 (2 < 3 <= 4)
	h.Add(4)  // bucket 2
	h.Add(5)  // bucket 3
	h.Add(16) // bucket 4
	b := h.Buckets()
	want := []uint64{1, 1, 2, 1, 1}
	if len(b) != len(want) {
		t.Fatalf("buckets = %v, want %v", b, want)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
	if h.N() != 6 {
		t.Fatalf("N = %d, want 6", h.N())
	}
	if h.String() == "" {
		t.Fatal("String() must render non-empty for non-empty histogram")
	}
}

func TestCounterTimeAvg(t *testing.T) {
	var c Counter
	c.Inc(0, 2)   // value 2 from cycle 0
	c.Inc(10, 3)  // value 5 from cycle 10
	c.Inc(20, -5) // value 0 from cycle 20
	if c.Max() != 5 {
		t.Fatalf("max = %d, want 5", c.Max())
	}
	if c.Cur() != 0 {
		t.Fatalf("cur = %d, want 0", c.Cur())
	}
	// avg over [0,40): (2*10 + 5*10 + 0*20)/40 = 70/40
	if got := c.TimeAvg(40); math.Abs(got-1.75) > 1e-9 {
		t.Fatalf("TimeAvg = %v, want 1.75", got)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		n := 1 + rng.Intn(100)
		for i := 0; i < n; i++ {
			s.Add(rng.Float64() * 1000)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < prev-1e-9 || v < s.Min()-1e-9 || v > s.Max()+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the exact median matches a direct computation on sorted values.
func TestMedianMatchesSortProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
			s.Add(float64(v))
		}
		sort.Float64s(vals)
		var want float64
		n := len(vals)
		if n%2 == 1 {
			want = vals[n/2]
		} else {
			want = (vals[n/2-1] + vals[n/2]) / 2
		}
		return math.Abs(s.Median()-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram total always equals number of additions.
func TestHistogramCountProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		var h Histogram
		for _, v := range vals {
			h.Add(uint64(v))
		}
		var sum uint64
		for _, b := range h.Buckets() {
			sum += b
		}
		return sum == uint64(len(vals)) && h.N() == uint64(len(vals))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
