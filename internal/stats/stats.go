// Package stats provides the small statistics toolkit used by the simulator:
// streaming summaries (min/median/avg/percentiles), fixed-bucket histograms,
// and helpers to format Table-I-style rows.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations for summary statistics. The zero value is
// ready to use. Values are retained, so percentiles are exact.
type Sample struct {
	vals   []float64
	sum    float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sum += v
	s.sorted = false
}

// AddN records an integer observation (a common case for cycle counts).
func (s *Sample) AddN(v uint64) { s.Add(float64(v)) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Sum returns the sum of observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.sum / float64(len(s.vals))
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Min returns the smallest observation, or 0 with none.
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.vals[0]
}

// Max returns the largest observation, or 0 with none.
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.vals[len(s.vals)-1]
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Percentile returns the p-th percentile (0–100) using nearest-rank
// interpolation. With no observations it returns 0.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[len(s.vals)-1]
	}
	rank := p / 100 * float64(len(s.vals)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.vals[lo]
	}
	frac := rank - float64(lo)
	return s.vals[lo]*(1-frac) + s.vals[hi]*frac
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.vals {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// FracAtMost returns the fraction of observations <= limit.
func (s *Sample) FracAtMost(limit float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	idx := sort.SearchFloat64s(s.vals, math.Nextafter(limit, math.Inf(1)))
	return float64(idx) / float64(len(s.vals))
}

// FracAbove returns the fraction of observations > limit.
func (s *Sample) FracAbove(limit float64) float64 { return 1 - s.FracAtMost(limit) }

// Histogram counts observations into power-of-two buckets: bucket i counts
// values v with 2^(i-1) < v <= 2^i (bucket 0 counts v <= 1).
type Histogram struct {
	buckets []uint64
	n       uint64
}

// Add records an observation.
func (h *Histogram) Add(v uint64) {
	b := 0
	for b < 63 && (uint64(1)<<b) < v {
		b++
	}
	for len(h.buckets) <= b {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[b]++
	h.n++
}

// N returns the total count.
func (h *Histogram) N() uint64 { return h.n }

// Buckets returns a copy of the bucket counts.
func (h *Histogram) Buckets() []uint64 { return append([]uint64(nil), h.buckets...) }

// String renders the histogram for logs.
func (h *Histogram) String() string {
	out := ""
	lo := uint64(0)
	hi := uint64(1)
	for i, c := range h.buckets {
		if c > 0 {
			out += fmt.Sprintf("(%d,%d]:%d ", lo, hi, c)
		}
		lo = hi
		hi *= 2
		_ = i
	}
	return out
}

// Counter is a running max/total tracker for occupancy-style metrics
// (e.g. task-window size over time).
type Counter struct {
	cur, max int64
	// time-weighted accumulation
	lastAt   uint64
	weighted float64
}

// Inc adds delta at simulated time now, updating the time-weighted average.
func (c *Counter) Inc(now uint64, delta int64) {
	c.weighted += float64(c.cur) * float64(now-c.lastAt)
	c.lastAt = now
	c.cur += delta
	if c.cur > c.max {
		c.max = c.cur
	}
}

// Cur returns the current value.
func (c *Counter) Cur() int64 { return c.cur }

// Max returns the high-water mark.
func (c *Counter) Max() int64 { return c.max }

// TimeAvg returns the time-weighted average up to cycle end.
func (c *Counter) TimeAvg(end uint64) float64 {
	w := c.weighted + float64(c.cur)*float64(end-c.lastAt)
	if end == 0 {
		return 0
	}
	return w / float64(end)
}
