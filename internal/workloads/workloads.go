// Package workloads synthesizes the nine benchmark task streams of Table I.
//
// The paper drives its simulator with traces of StarSs applications; we do
// not have those traces, so each generator reproduces the published,
// behaviour-defining properties of its application instead: the dependency
// structure (which object each task reads and writes, in creation order),
// the operand counts, the per-task data sizes, and the runtime distribution
// (min / median / average of Table I). Frontend behaviour depends only on
// these, not on the kernels' arithmetic.
//
// Workloads come in two forms. The recorded form — All, ByName, and the
// per-benchmark GenFuncs (Cholesky, MatMul, FFT, H264, KMeans, Knn, PBPI,
// SPECFEM, STAP) — builds the whole task slice up front as a Build, which
// tss.RunTasks replays and MeasureTableI summarizes the way Table I reports
// benchmarks. The streaming form — CPIStream in stream.go — materializes
// tasks lazily as the runtime pulls them, so arbitrarily long streams run
// in memory proportional to the pipeline's task window (the workload behind
// tss.RunStream and tssim -stream).
//
// All generation is deterministic: a generator called twice with the same
// (budget, seed) yields identical tasks, which is what lets the experiment
// sweeps regenerate workloads independently in concurrent jobs and still
// produce byte-identical tables.
package workloads

import (
	"fmt"
	"math/rand"

	"tasksuperscalar/internal/stats"
	"tasksuperscalar/internal/taskmodel"
)

// cyclesPerUs is the 3.2 GHz core clock of Table II.
const cyclesPerUs = 3200

func us(v float64) uint64 { return uint64(v * cyclesPerUs) }

// Build is a generated workload instance.
type Build struct {
	Name  string
	Reg   *taskmodel.Registry
	Tasks []*taskmodel.Task
}

// Stream returns a fresh sequential stream over the build.
func (b *Build) Stream() *taskmodel.SliceStream {
	return taskmodel.NewSliceStream(b.Tasks)
}

// GenFunc generates roughly `budget` tasks deterministically from seed.
type GenFunc func(budget int, seed int64) *Build

// PaperStats are the published Table I values for comparison.
type PaperStats struct {
	DataKB float64
	MinUs  float64
	MedUs  float64
	AvgUs  float64
	RateNs float64 // decode-rate limit for a 256-way CMP
}

// Info describes one benchmark.
type Info struct {
	Name        string
	Class       string
	Description string
	Paper       PaperStats
	Gen         GenFunc
}

// All returns the nine benchmarks in Table I order.
func All() []Info {
	return []Info{
		{"Cholesky", "Math. kernel", "Blocked Cholesky decomposition",
			PaperStats{47, 16, 33, 31, 63}, Cholesky},
		{"MatMul", "Math. kernel", "Blocked matrix multiplication",
			PaperStats{48, 23, 23, 23, 90}, MatMul},
		{"FFT", "Signal Processing", "2D Fast Fourier Transform",
			PaperStats{10, 13, 14, 26, 51}, FFT},
		{"H264", "Multimedia", "Decoding a HD clip",
			PaperStats{97, 2, 115, 130, 8}, H264},
		{"KMeans", "Machine Learning", "K-Means clustering",
			PaperStats{38, 24, 59, 55, 94}, KMeans},
		{"Knn", "Pattern Recognition", "K-Nearest Neighbors",
			PaperStats{10, 17, 107, 109, 66}, Knn},
		{"PBPI", "Bioinformatics", "Bayesian Phylogenetic Inference",
			PaperStats{32, 28, 29, 29, 108}, PBPI},
		{"SPECFEM", "Physics (Earth)", "Seismic wave propagation",
			PaperStats{770, 9, 14, 49, 35}, SPECFEM},
		{"STAP", "Physics (Radar)", "Space-Time Adaptive Processing",
			PaperStats{8, 1, 9, 28, 4}, STAP},
	}
}

// ByName looks up a benchmark case-insensitively by its Table I name.
func ByName(name string) (Info, bool) {
	for _, w := range All() {
		if equalFold(w.Name, name) {
			return w, true
		}
	}
	return Info{}, false
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Measured summarizes a build the way Table I reports benchmarks.
type Measured struct {
	Tasks       int
	DataKBAvg   float64
	MinUs       float64
	MedUs       float64
	AvgUs       float64
	RateNs256   float64 // min runtime / 256 processors
	OpsAvg      float64
	FracOver6Op float64
}

// MeasureTableI computes the Table I statistics of a build.
func MeasureTableI(b *Build) Measured {
	var rt, data, ops stats.Sample
	over6 := 0
	for _, t := range b.Tasks {
		rt.Add(float64(t.Runtime) / cyclesPerUs)
		data.Add(float64(t.DataBytes()) / 1024)
		ops.Add(float64(t.NumOperands()))
		if t.NumOperands() > 6 {
			over6++
		}
	}
	m := Measured{
		Tasks:     len(b.Tasks),
		DataKBAvg: data.Mean(),
		MinUs:     rt.Min(),
		MedUs:     rt.Median(),
		AvgUs:     rt.Mean(),
		OpsAvg:    ops.Mean(),
	}
	m.RateNs256 = m.MinUs * 1000 / 256
	if len(b.Tasks) > 0 {
		m.FracOver6Op = float64(over6) / float64(len(b.Tasks))
	}
	return m
}

// builder carries shared generator state.
type builder struct {
	reg   taskmodel.Registry
	tasks []*taskmodel.Task
	rng   *rand.Rand
	mem   taskmodel.Allocator
}

func newBuilder(seed int64) *builder {
	return &builder{rng: rand.New(rand.NewSource(seed)), mem: taskmodel.NewAllocator(0x1000_0000)}
}

func (b *builder) alloc(size uint32) taskmodel.Addr { return b.mem.Alloc(size) }

// allocN allocates n equally sized objects.
func (b *builder) allocN(n int, size uint32) []taskmodel.Addr {
	out := make([]taskmodel.Addr, n)
	for i := range out {
		out[i] = b.alloc(size)
	}
	return out
}

// jitter returns v with a deterministic +-5% perturbation.
func (b *builder) jitter(v uint64) uint64 {
	f := 0.95 + 0.1*b.rng.Float64()
	return uint64(float64(v) * f)
}

func (b *builder) spawn(k taskmodel.KernelID, runtime uint64, ops ...taskmodel.Operand) {
	b.tasks = append(b.tasks, &taskmodel.Task{
		Kernel:   k,
		Operands: ops,
		Runtime:  runtime,
		Seq:      uint64(len(b.tasks)),
	})
}

func in(a taskmodel.Addr, size uint32) taskmodel.Operand {
	return taskmodel.Operand{Base: a, Size: size, Dir: taskmodel.In}
}
func out(a taskmodel.Addr, size uint32) taskmodel.Operand {
	return taskmodel.Operand{Base: a, Size: size, Dir: taskmodel.Out}
}
func inout(a taskmodel.Addr, size uint32) taskmodel.Operand {
	return taskmodel.Operand{Base: a, Size: size, Dir: taskmodel.InOut}
}
func scalar() taskmodel.Operand {
	return taskmodel.Operand{Size: 8, Dir: taskmodel.Scalar}
}

func (b *builder) build(name string) *Build {
	return &Build{Name: name, Reg: &b.reg, Tasks: b.tasks}
}

// choleskyTaskCount returns the task count of an NxN blocked Cholesky.
func choleskyTaskCount(n int) int {
	count := 0
	for j := 0; j < n; j++ {
		count += j * (n - 1 - j) // sgemm
		count += j               // ssyrk
		count++                  // spotrf
		count += n - 1 - j       // strsm
	}
	return count
}

// CholeskyN generates a blocked Cholesky decomposition of an NxN matrix of
// 16 KB blocks, reproducing the kernel structure of Figure 4 (and, for N=5,
// the 35-task graph of Figure 1).
func CholeskyN(n int, seed int64) *Build {
	b := newBuilder(seed)
	sgemm := b.reg.Register("sgemm")
	ssyrk := b.reg.Register("ssyrk")
	spotrf := b.reg.Register("spotrf")
	strsm := b.reg.Register("strsm")

	const blockBytes = 16 << 10 // 64x64 floats
	blocks := make([][]taskmodel.Addr, n)
	for i := range blocks {
		blocks[i] = b.allocN(n, blockBytes)
	}
	A := func(i, j int) taskmodel.Addr { return blocks[i][j] }

	for j := 0; j < n; j++ {
		for k := 0; k < j; k++ {
			for i := j + 1; i < n; i++ {
				b.spawn(sgemm, b.jitter(us(33)),
					in(A(i, k), blockBytes), in(A(j, k), blockBytes),
					inout(A(i, j), blockBytes))
			}
		}
		for i := 0; i < j; i++ {
			b.spawn(ssyrk, b.jitter(us(30)),
				in(A(j, i), blockBytes), inout(A(j, j), blockBytes))
		}
		b.spawn(spotrf, b.jitter(us(16)), inout(A(j, j), blockBytes))
		for i := j + 1; i < n; i++ {
			b.spawn(strsm, b.jitter(us(26)),
				in(A(j, j), blockBytes), inout(A(i, j), blockBytes))
		}
	}
	return b.build("Cholesky")
}

// Cholesky sizes the matrix to approximately meet the task budget.
func Cholesky(budget int, seed int64) *Build {
	n := 4
	for choleskyTaskCount(n+1) <= budget && n < 96 {
		n++
	}
	return CholeskyN(n, seed)
}

// MatMul generates a blocked matrix multiplication C += A*B with NxN blocks
// of 16 KB: N^3 sgemm tasks of 23 us each; each C block carries an N-long
// true-dependency chain while A and B blocks are read-shared.
func MatMul(budget int, seed int64) *Build {
	n := 2
	for (n+1)*(n+1)*(n+1) <= budget && n < 40 {
		n++
	}
	b := newBuilder(seed)
	sgemm := b.reg.Register("sgemm")
	const blockBytes = 16 << 10
	alloc2D := func() [][]taskmodel.Addr {
		m := make([][]taskmodel.Addr, n)
		for i := range m {
			m[i] = b.allocN(n, blockBytes)
		}
		return m
	}
	A, B, C := alloc2D(), alloc2D(), alloc2D()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				b.spawn(sgemm, us(23),
					in(A[i][k], blockBytes), in(B[k][j], blockBytes),
					inout(C[i][j], blockBytes))
			}
		}
	}
	return b.build("MatMul")
}

// FFT generates a 2D FFT: row FFTs, a blocked transpose, column FFTs, a
// second transpose, and final row FFTs — phases coupled through transpose
// blocks. Row/column transforms run ~13-14 us on 10 KB rows; transpose
// tasks touch several rows and run longer, matching Table I's skewed
// average (min 13, med 14, avg 26).
func FFT(budget int, seed int64) *Build {
	// tasks per n rows: 3 FFT phases (n each) + 2 transpose phases
	// (n/4 each): 3.5n.
	n := 8
	for float64(n+4)*3.5 <= float64(budget) && n < 4096 {
		n += 4
	}
	b := newBuilder(seed)
	fftRow := b.reg.Register("fft_row")
	fftCol := b.reg.Register("fft_col")
	transp := b.reg.Register("transpose")

	const rowBytes = 10 << 10
	rows := b.allocN(n, rowBytes)
	cols := b.allocN(n, rowBytes)
	rows2 := b.allocN(n, rowBytes)

	// Phase 1: row FFTs (in place).
	for r := 0; r < n; r++ {
		b.spawn(fftRow, b.jitter(us(14)), inout(rows[r], rowBytes))
	}
	// Phase 2: blocked transpose, 4 rows per task (tile-sized transfers).
	group := 4
	const tileBytes = rowBytes / 4
	for g := 0; g < n; g += group {
		ops := []taskmodel.Operand{}
		for r := g; r < g+group && r < n; r++ {
			ops = append(ops, in(rows[r], tileBytes))
		}
		for c := g; c < g+group && c < n; c++ {
			ops = append(ops, out(cols[c], tileBytes))
		}
		b.spawn(transp, b.jitter(us(95)), ops...)
	}
	// Phase 3: column FFTs.
	for c := 0; c < n; c++ {
		b.spawn(fftCol, b.jitter(us(13)), inout(cols[c], rowBytes))
	}
	// Phase 4: transpose back.
	for g := 0; g < n; g += group {
		ops := []taskmodel.Operand{}
		for c := g; c < g+group && c < n; c++ {
			ops = append(ops, in(cols[c], tileBytes))
		}
		for r := g; r < g+group && r < n; r++ {
			ops = append(ops, out(rows2[r], tileBytes))
		}
		b.spawn(transp, b.jitter(us(95)), ops...)
	}
	// Phase 5: final row pass (twiddle/scale).
	for r := 0; r < n; r++ {
		b.spawn(fftRow, b.jitter(us(14)), inout(rows2[r], rowBytes))
	}
	return b.build("FFT")
}

// H264 generates the macroblock wavefront of an H.264 decoder: each
// macroblock task depends on its west, north-west, north and north-east
// neighbours within the frame, on the co-located macroblock of a reference
// frame (usually the previous frame, occasionally up to 60 frames back:
// the long RaW chains of §VI.C), and on per-frame parameters. Interior
// macroblocks carry 7 operands, matching the ">6 operands for ~94% of
// tasks" property. Runtimes are bimodal: a few skipped blocks at 2-9 us,
// most at ~115 us, some at ~240 us (min 2, med 115, avg 130).
func H264(budget int, seed int64) *Build {
	// Frame geometry: aim for the paper's >2000 tasks per frame when the
	// budget allows, shrinking for small runs.
	w, h := 60, 34
	for w*h*3 > budget && w > 6 {
		w -= 6
		h -= 3
		if h < 4 {
			h = 4
		}
	}
	frames := budget / (w * h)
	if frames < 2 {
		frames = 2
	}
	b := newBuilder(seed)
	mbKern := b.reg.Register("decode_mb")

	const mbBytes = 16 << 10
	const paramBytes = 4 << 10
	intraTables := b.alloc(paramBytes)
	// Keep the full history of frame MB objects for reference frames.
	mb := make([][][]taskmodel.Addr, frames)
	params := make([]taskmodel.Addr, frames)
	for f := range mb {
		params[f] = b.alloc(paramBytes)
		mb[f] = make([][]taskmodel.Addr, h)
		for y := range mb[f] {
			mb[f][y] = b.allocN(w, mbBytes)
		}
	}

	runtime := func() uint64 {
		r := b.rng.Float64()
		switch {
		case r < 0.13: // skipped blocks
			return us(2 + 7*b.rng.Float64())
		case r < 0.75:
			return b.jitter(us(115))
		default:
			return b.jitter(us(240))
		}
	}

	for f := 0; f < frames; f++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				ops := []taskmodel.Operand{in(params[f], paramBytes)}
				if x > 0 {
					ops = append(ops, in(mb[f][y][x-1], mbBytes)) // W
				}
				if y > 0 {
					if x > 0 {
						ops = append(ops, in(mb[f][y-1][x-1], mbBytes)) // NW
					}
					ops = append(ops, in(mb[f][y-1][x], mbBytes)) // N
					if x < w-1 {
						ops = append(ops, in(mb[f][y-1][x+1], mbBytes)) // NE
					}
				}
				if f > 0 {
					ref := 1
					if b.rng.Float64() < 0.02 {
						ref = 1 + b.rng.Intn(min(60, f))
					}
					ops = append(ops, in(mb[f-ref][y][x], mbBytes))
				} else {
					ops = append(ops, in(intraTables, paramBytes))
				}
				ops = append(ops, inout(mb[f][y][x], mbBytes))
				b.spawn(mbKern, runtime(), ops...)
			}
		}
	}
	return b.build("H264")
}

// KMeans generates iterative K-Means clustering: per iteration, 512
// independent assignment tasks read the centroids and their point partition
// and write partial accumulators; a three-level tree of reduction tasks
// folds the accumulators back into the centroids, forming the next
// iteration's barrier.
func KMeans(budget int, seed int64) *Build {
	parts := 512
	perIter := parts + parts/16 + 4 + 1
	iters := budget / perIter
	if iters < 2 {
		iters = 2
		parts = budget / 3
		if parts < 16 {
			parts = 16
		}
		perIter = parts + parts/16 + 4 + 1
	}
	b := newBuilder(seed)
	assign := b.reg.Register("assign")
	reduce := b.reg.Register("reduce")

	const pointsBytes = 32 << 10
	const centBytes = 4 << 10
	const accBytes = 2 << 10
	points := b.allocN(parts, pointsBytes)
	acc := b.allocN(parts, accBytes)
	centroids := b.alloc(centBytes)

	for it := 0; it < iters; it++ {
		for p := 0; p < parts; p++ {
			b.spawn(assign, b.jitter(us(59)),
				in(points[p], pointsBytes), in(centroids, centBytes),
				out(acc[p], accBytes))
		}
		// Level 1: fold 16 accumulators at a time.
		l1 := b.allocN((parts+15)/16, accBytes)
		for g := 0; g*16 < parts; g++ {
			ops := []taskmodel.Operand{}
			for p := g * 16; p < (g+1)*16 && p < parts; p++ {
				ops = append(ops, in(acc[p], accBytes))
			}
			ops = append(ops, out(l1[g], accBytes))
			b.spawn(reduce, b.jitter(us(24)), ops...)
		}
		// Level 2: fold level-1 partials into at most 4.
		groups := (len(l1) + 7) / 8
		l2 := b.allocN(groups, accBytes)
		for g := 0; g < groups; g++ {
			ops := []taskmodel.Operand{}
			for p := g * 8; p < (g+1)*8 && p < len(l1); p++ {
				ops = append(ops, in(l1[p], accBytes))
			}
			ops = append(ops, out(l2[g], accBytes))
			b.spawn(reduce, b.jitter(us(24)), ops...)
		}
		// Final: update the centroids (the iteration barrier).
		ops := []taskmodel.Operand{}
		for _, p := range l2 {
			ops = append(ops, in(p, accBytes))
		}
		ops = append(ops, inout(centroids, centBytes))
		b.spawn(reduce, b.jitter(us(24)), ops...)
	}
	return b.build("KMeans")
}

// Knn generates K-Nearest-Neighbors classification: a few setup tasks
// (~17 us) partition the training set, then fully independent classify
// tasks (~105-115 us) dominate — the long-task benchmark for which even
// the software runtime scales (§VI.C).
func Knn(budget int, seed int64) *Build {
	b := newBuilder(seed)
	setup := b.reg.Register("partition")
	classify := b.reg.Register("classify")

	const chunkBytes = 6 << 10
	const queryBytes = 4 << 10
	nSetup := budget / 50
	if nSetup < 1 {
		nSetup = 1
	}
	train := b.allocN(nSetup, chunkBytes)
	raw := b.alloc(64 << 10)
	for i := 0; i < nSetup; i++ {
		b.spawn(setup, b.jitter(us(18)), in(raw, 64<<10), out(train[i], chunkBytes))
	}
	nClassify := budget - nSetup
	for i := 0; i < nClassify; i++ {
		q := b.alloc(queryBytes)
		res := b.alloc(1 << 10)
		b.spawn(classify, b.jitter(us(110)),
			in(train[i%nSetup], chunkBytes), in(q, queryBytes), out(res, 1<<10))
	}
	return b.build("Knn")
}

// PBPI generates Bayesian phylogenetic inference: each MCMC generation
// evaluates the tree likelihood over 512 independent site blocks, reduces
// the per-block partials through a two-level tree, and updates the chain
// state at the root — wide phases chained through the sampler state.
// Runtimes are uniform (~29 us, Table I).
func PBPI(budget int, seed int64) *Build {
	blocks := 512
	perGen := blocks + blocks/16 + 2 + 1
	gens := budget / perGen
	if gens < 2 {
		gens = 2
		blocks = budget / 3
		if blocks < 16 {
			blocks = 16
		}
		perGen = blocks + blocks/16 + 2 + 1
	}
	b := newBuilder(seed)
	like := b.reg.Register("site_likelihood")
	red := b.reg.Register("reduce_likelihood")
	root := b.reg.Register("root_update")

	const vecBytes = 24 << 10
	const partBytes = 4 << 10
	const stateBytes = 4 << 10
	state := b.alloc(stateBytes)
	sites := b.allocN(blocks, vecBytes)

	for g := 0; g < gens; g++ {
		partials := b.allocN(blocks, partBytes)
		for i := 0; i < blocks; i++ {
			b.spawn(like, b.jitter(us(29)),
				in(sites[i], vecBytes), in(state, stateBytes), out(partials[i], partBytes))
		}
		l1 := b.allocN((blocks+15)/16, partBytes)
		for i := 0; i*16 < blocks; i++ {
			ops := []taskmodel.Operand{}
			for p := i * 16; p < (i+1)*16 && p < blocks; p++ {
				ops = append(ops, in(partials[p], partBytes))
			}
			ops = append(ops, out(l1[i], partBytes))
			b.spawn(red, b.jitter(us(29)), ops...)
		}
		groups := (len(l1) + 15) / 16
		l2 := b.allocN(groups, partBytes)
		for i := 0; i < groups; i++ {
			ops := []taskmodel.Operand{}
			for p := i * 16; p < (i+1)*16 && p < len(l1); p++ {
				ops = append(ops, in(l1[p], partBytes))
			}
			ops = append(ops, out(l2[i], partBytes))
			b.spawn(red, b.jitter(us(29)), ops...)
		}
		ops := []taskmodel.Operand{}
		for _, p := range l2 {
			ops = append(ops, in(p, partBytes))
		}
		ops = append(ops, inout(state, stateBytes))
		b.spawn(root, b.jitter(us(28)), ops...)
	}
	return b.build("PBPI")
}

// SPECFEM generates seismic wave propagation: timesteps over a 2D grid of
// large domain partitions (770 KB fields). Each step runs one heavy update
// task per partition (~200 us) plus small boundary-exchange tasks (~9-16
// us) coupling stencil neighbours.
func SPECFEM(budget int, seed int64) *Build {
	grid := 16                                            // 16x16 partitions
	perStep := func(g int) int { return g*g + 2*g*(g-1) } // updates + halo tasks
	for grid > 4 && perStep(grid)*2 > budget {
		grid /= 2
	}
	steps := budget / perStep(grid)
	if steps < 2 {
		steps = 2
	}
	b := newBuilder(seed)
	update := b.reg.Register("element_update")
	halo := b.reg.Register("halo_exchange")

	const fieldBytes = 760 << 10
	const haloBytes = 8 << 10
	field := make([][]taskmodel.Addr, grid)
	haloN := make([][]taskmodel.Addr, grid)
	haloW := make([][]taskmodel.Addr, grid)
	for i := range field {
		field[i] = b.allocN(grid, fieldBytes)
		haloN[i] = b.allocN(grid, haloBytes)
		haloW[i] = b.allocN(grid, haloBytes)
	}

	for s := 0; s < steps; s++ {
		// Halo extraction: small tasks reading fields, writing halos.
		for i := 0; i < grid; i++ {
			for j := 0; j < grid; j++ {
				// Boundary extraction reads strided planes across the
				// whole field object (hence SPECFEM's 770 KB/task).
				if i > 0 {
					b.spawn(halo, b.jitter(us(12)),
						in(field[i][j], fieldBytes), out(haloN[i][j], haloBytes))
				}
				if j > 0 {
					b.spawn(halo, b.jitter(us(10)),
						in(field[i][j], fieldBytes), out(haloW[i][j], haloBytes))
				}
			}
		}
		// Element update: heavy stencil step per partition.
		for i := 0; i < grid; i++ {
			for j := 0; j < grid; j++ {
				ops := []taskmodel.Operand{inout(field[i][j], fieldBytes)}
				if i > 0 {
					ops = append(ops, in(haloN[i][j], haloBytes))
				}
				if i < grid-1 {
					ops = append(ops, in(haloN[i+1][j], haloBytes))
				}
				if j > 0 {
					ops = append(ops, in(haloW[i][j], haloBytes))
				}
				if j < grid-1 {
					ops = append(ops, in(haloW[i][j+1], haloBytes))
				}
				b.spawn(update, b.jitter(us(115)), ops...)
			}
		}
	}
	return b.build("SPECFEM")
}

// STAP generates Space-Time Adaptive Processing: independent coherent
// processing intervals (CPIs), each a three-stage pipeline of very short
// tasks — Doppler filtering (1-3 us), covariance estimation (~9 us), and
// weight application (~100 us). The abundant sub-10 us tasks make STAP the
// decode-rate stress test (8 ns/task target in Table I).
func STAP(budget int, seed int64) *Build {
	const chans = 8
	perCPI := chans + chans + chans/2
	cpis := budget / perCPI
	if cpis < 2 {
		cpis = 2
	}
	b := newBuilder(seed)
	doppler := b.reg.Register("doppler_fir")
	covar := b.reg.Register("covariance")
	weights := b.reg.Register("apply_weights")

	const sliceBytes = 3 << 10
	const covBytes = 4 << 10
	for c := 0; c < cpis; c++ {
		cube := b.alloc(64 << 10)
		filtered := b.allocN(chans, sliceBytes)
		for ch := 0; ch < chans; ch++ {
			b.spawn(doppler, us(1+2*b.rng.Float64()),
				in(cube, sliceBytes), out(filtered[ch], sliceBytes))
		}
		covs := b.allocN(chans, covBytes)
		for ch := 0; ch < chans; ch++ {
			b.spawn(covar, b.jitter(us(9)),
				in(filtered[ch], sliceBytes), out(covs[ch], covBytes))
		}
		for g := 0; g < chans/2; g++ {
			res := b.alloc(4 << 10)
			b.spawn(weights, b.jitter(us(120)),
				in(covs[g*2], covBytes), in(covs[g*2+1], covBytes),
				in(filtered[g*2], sliceBytes), out(res, 4<<10))
		}
	}
	return b.build("STAP")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Describe formats a one-line summary of a build.
func Describe(b *Build) string {
	m := MeasureTableI(b)
	return fmt.Sprintf("%s: %d tasks, %.0f KB avg, runtime %.0f/%.0f/%.0f us (min/med/avg)",
		b.Name, m.Tasks, m.DataKBAvg, m.MinUs, m.MedUs, m.AvgUs)
}
