package workloads

import (
	"testing"

	"tasksuperscalar/internal/graph"
	"tasksuperscalar/internal/taskmodel"
)

func TestCholesky5x5HasFigure1Shape(t *testing.T) {
	b := CholeskyN(5, 1)
	if len(b.Tasks) != 35 {
		t.Fatalf("5x5 Cholesky generated %d tasks, Figure 1 shows 35", len(b.Tasks))
	}
	counts := map[string]int{}
	for _, task := range b.Tasks {
		counts[b.Reg.Name(task.Kernel)]++
	}
	want := map[string]int{"spotrf": 5, "strsm": 10, "ssyrk": 10, "sgemm": 10}
	for k, w := range want {
		if counts[k] != w {
			t.Fatalf("kernel %s count = %d, want %d (got %v)", k, counts[k], w, counts)
		}
	}
	// The graph must expose distant parallelism: tasks 6 and 23 (1-based)
	// can run in parallel per the paper's Figure 1 discussion — verify at
	// least that the graph is not a chain and has width > 1.
	g := graph.Build(b.Tasks, graph.Options{Renaming: true})
	a := g.Analyze()
	if a.PeakWidth < 3 {
		t.Fatalf("5x5 Cholesky peak width = %d, expected >= 3", a.PeakWidth)
	}
	if a.MaxDepth < 5 {
		t.Fatalf("5x5 Cholesky depth = %d, expected a multi-level graph", a.MaxDepth)
	}
}

func TestCholeskyOperandLimit(t *testing.T) {
	b := Cholesky(3000, 1)
	for _, task := range b.Tasks {
		if task.NumOperands() > 3 {
			t.Fatalf("Cholesky task with %d operands; the paper says at most 3", task.NumOperands())
		}
	}
}

// checkTableI asserts the measured runtime distribution lands near the
// published Table I values (shape-level tolerances).
func checkTableI(t *testing.T, name string, tolFrac float64) Measured {
	t.Helper()
	w, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	b := w.Gen(4000, 42)
	m := MeasureTableI(b)
	close := func(metric string, got, want float64) {
		t.Helper()
		if want == 0 {
			return
		}
		lo, hi := want*(1-tolFrac), want*(1+tolFrac)
		if got < lo || got > hi {
			t.Errorf("%s %s = %.1f, want within %.0f%% of %.1f",
				name, metric, got, tolFrac*100, want)
		}
	}
	close("min us", m.MinUs, w.Paper.MinUs)
	close("med us", m.MedUs, w.Paper.MedUs)
	close("avg us", m.AvgUs, w.Paper.AvgUs)
	return m
}

func TestTableIRuntimes(t *testing.T) {
	for _, name := range []string{"Cholesky", "MatMul", "FFT", "H264", "KMeans", "Knn", "PBPI", "SPECFEM", "STAP"} {
		name := name
		t.Run(name, func(t *testing.T) { checkTableI(t, name, 0.30) })
	}
}

func TestTableIDataSizes(t *testing.T) {
	for _, w := range All() {
		b := w.Gen(3000, 7)
		m := MeasureTableI(b)
		lo, hi := w.Paper.DataKB*0.5, w.Paper.DataKB*1.6
		if m.DataKBAvg < lo || m.DataKBAvg > hi {
			t.Errorf("%s data size %.0f KB, paper reports %.0f KB", w.Name, m.DataKBAvg, w.Paper.DataKB)
		}
	}
}

func TestH264OperandCounts(t *testing.T) {
	b := H264(6000, 3)
	m := MeasureTableI(b)
	if m.FracOver6Op < 0.80 {
		t.Fatalf("H264: %.0f%% of tasks have >6 operands; paper says ~94%%", m.FracOver6Op*100)
	}
}

func TestH264HasDistantDependencies(t *testing.T) {
	b := H264(8000, 3)
	g := graph.Build(b.Tasks, graph.Options{Renaming: true})
	maxSpan := 0
	for i := range g.Tasks {
		for _, p := range g.Pred[i] {
			if span := i - int(p); span > maxSpan {
				maxSpan = span
			}
		}
	}
	// Reference frames reach far back in creation order.
	if maxSpan < 2000 {
		t.Fatalf("H264 max dependency span = %d tasks, expected distant (>2000) spans", maxSpan)
	}
}

func TestMatMulChains(t *testing.T) {
	b := MatMul(1000, 1)
	g := graph.Build(b.Tasks, graph.Options{Renaming: true})
	a := g.Analyze()
	// N^3 tasks with N-long chains per C block: depth >= N-1.
	n := 2
	for (n+1)*(n+1)*(n+1) <= 1000 && n < 40 {
		n++
	}
	if a.MaxDepth < n-1 {
		t.Fatalf("MatMul depth = %d, want >= %d (chains on C blocks)", a.MaxDepth, n-1)
	}
	if a.PeakWidth < n {
		t.Fatalf("MatMul width = %d, want >= %d", a.PeakWidth, n)
	}
}

func TestKnnMostlyIndependent(t *testing.T) {
	b := Knn(2000, 1)
	g := graph.Build(b.Tasks, graph.Options{Renaming: true})
	a := g.Analyze()
	if a.AvgParallelism < 50 {
		t.Fatalf("Knn average parallelism = %.0f, expected abundant (>=50)", a.AvgParallelism)
	}
}

func TestPBPIGenerationsSerialize(t *testing.T) {
	b := PBPI(1000, 1)
	g := graph.Build(b.Tasks, graph.Options{Renaming: true})
	a := g.Analyze()
	// Each generation is a 4-level phase chained through the sampler
	// state; at least two generations must serialize.
	if a.MaxDepth < 7 {
		t.Fatalf("PBPI depth = %d, want >= 7 (two serialized generations)", a.MaxDepth)
	}
}

func TestSPECFEMStencilCoupling(t *testing.T) {
	b := SPECFEM(1000, 1)
	g := graph.Build(b.Tasks, graph.Options{Renaming: true})
	a := g.Analyze()
	if a.MaxDepth < 3 {
		t.Fatalf("SPECFEM depth = %d, want timestep coupling", a.MaxDepth)
	}
	if a.PeakWidth < 16 {
		t.Fatalf("SPECFEM width = %d, want wide steps", a.PeakWidth)
	}
}

func TestDeterminism(t *testing.T) {
	for _, w := range All() {
		b1 := w.Gen(500, 99)
		b2 := w.Gen(500, 99)
		if len(b1.Tasks) != len(b2.Tasks) {
			t.Fatalf("%s: nondeterministic task count", w.Name)
		}
		for i := range b1.Tasks {
			t1, t2 := b1.Tasks[i], b2.Tasks[i]
			if t1.Runtime != t2.Runtime || t1.NumOperands() != t2.NumOperands() {
				t.Fatalf("%s: task %d differs across identical seeds", w.Name, i)
			}
			for j := range t1.Operands {
				if t1.Operands[j] != t2.Operands[j] {
					t.Fatalf("%s: task %d operand %d differs", w.Name, i, j)
				}
			}
		}
	}
}

func TestBudgetsRoughlyRespected(t *testing.T) {
	for _, w := range All() {
		for _, budget := range []int{300, 2000, 10000} {
			b := w.Gen(budget, 5)
			n := len(b.Tasks)
			if n < budget/4 || n > budget*3 {
				t.Errorf("%s: budget %d produced %d tasks", w.Name, budget, n)
			}
		}
	}
}

func TestOperandLimitRespected(t *testing.T) {
	for _, w := range All() {
		b := w.Gen(3000, 11)
		for i, task := range b.Tasks {
			if task.NumOperands() > 19 {
				t.Fatalf("%s task %d has %d operands (>19)", w.Name, i, task.NumOperands())
			}
		}
	}
}

func TestRateLimitColumn(t *testing.T) {
	// Table I's decode-rate column is min-runtime/256; verify the
	// measured column lands within 2x of the paper's for each benchmark.
	for _, w := range All() {
		b := w.Gen(4000, 42)
		m := MeasureTableI(b)
		if w.Paper.RateNs == 0 {
			continue
		}
		ratio := m.RateNs256 / w.Paper.RateNs
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%s rate limit %.0f ns vs paper %.0f ns (ratio %.2f)",
				w.Name, m.RateNs256, w.Paper.RateNs, ratio)
		}
	}
}

func TestByNameLookup(t *testing.T) {
	if _, ok := ByName("cholesky"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := ByName("nosuch"); ok {
		t.Fatal("bogus name accepted")
	}
}

func TestDescribe(t *testing.T) {
	b := CholeskyN(5, 1)
	if Describe(b) == "" {
		t.Fatal("empty description")
	}
}

func TestStreamsAreFresh(t *testing.T) {
	b := CholeskyN(5, 1)
	s1 := b.Stream()
	var n1 int
	for task := s1.Next(); task != nil; task = s1.Next() {
		n1++
	}
	s2 := b.Stream()
	if s2.Next() == nil {
		t.Fatal("second stream not rewound")
	}
	if n1 != 35 {
		t.Fatalf("stream yielded %d tasks, want 35", n1)
	}
}

func TestScalarHelperCompiles(t *testing.T) {
	op := scalar()
	if op.Dir != taskmodel.Scalar {
		t.Fatal("scalar helper broken")
	}
}
