package workloads

import (
	"testing"

	"tasksuperscalar/internal/taskmodel"
)

func drain(s *CPIStream) []*taskmodel.Task {
	var out []*taskmodel.Task
	for {
		t, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

func TestCPIStreamExactCount(t *testing.T) {
	for _, n := range []int{0, 1, CPITasks, CPITasks + 7, 5*CPITasks - 3} {
		got := len(drain(NewCPIStream(n, 1)))
		if got != n {
			t.Errorf("stream of %d tasks yielded %d", n, got)
		}
	}
}

func TestCPIStreamDeterministic(t *testing.T) {
	a := drain(NewCPIStream(507, 42))
	b := drain(NewCPIStream(507, 42))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Kernel != y.Kernel || x.Runtime != y.Runtime || len(x.Operands) != len(y.Operands) {
			t.Fatalf("task %d differs: %+v vs %+v", i, x, y)
		}
		for j := range x.Operands {
			if x.Operands[j] != y.Operands[j] {
				t.Fatalf("task %d operand %d differs: %+v vs %+v",
					i, j, x.Operands[j], y.Operands[j])
			}
		}
	}
}

func TestCPIStreamBoundedBuffer(t *testing.T) {
	s := NewCPIStream(10*CPITasks, 7)
	for i := 0; i < 5*CPITasks; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("stream ended early at %d", i)
		}
		if len(s.buf) > CPITasks {
			t.Fatalf("buffer holds %d tasks, want <= %d", len(s.buf), CPITasks)
		}
	}
}

func TestCPIStreamMatchesSTAPShape(t *testing.T) {
	tasks := drain(NewCPIStream(CPITasks, 3))
	var ops int
	for _, tk := range tasks {
		ops += len(tk.Operands)
		if len(tk.Operands) > 19 {
			t.Fatalf("task exceeds operand limit: %d", len(tk.Operands))
		}
	}
	// 8 doppler (2 ops) + 8 covar (2 ops) + 4 weights (4 ops).
	if want := 8*2 + 8*2 + 4*4; ops != want {
		t.Fatalf("CPI has %d operands, want %d", ops, want)
	}
}
