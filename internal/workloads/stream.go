package workloads

import (
	"math/rand"

	"tasksuperscalar/internal/taskmodel"
)

// CPIStream lazily synthesizes the STAP benchmark as an unbounded stream of
// coherent processing intervals: per CPI, eight short Doppler-filter tasks
// feed eight covariance estimations, which pair up into four weight
// applications (the same shape as the recorded STAP generator). Unlike the
// slice-building GenFuncs, tasks are materialized one at a time as the
// runtime pulls them, so a CPIStream of millions of tasks occupies only the
// current CPI (at most 20 tasks) in memory — the workload the streaming
// frontend path (tss.RunStream) is sized against.
//
// CPIStream implements the tss.Generator pull protocol; Next returns nil,
// false once the requested task count has been emitted. Two streams built
// with the same arguments yield identical tasks, so a streamed run can be
// validated against the equivalent pre-recorded one.
type CPIStream struct {
	remaining int
	rng       *rand.Rand
	reg       taskmodel.Registry
	mem       taskmodel.Allocator

	doppler, covar, weights taskmodel.KernelID

	buf []*taskmodel.Task // tasks of the current CPI, drained in order
	pos int
}

// cpiChans is the CPI fan-out (channels per interval); one CPI emits
// cpiChans doppler + cpiChans covariance + cpiChans/2 weight tasks.
const cpiChans = 8

// CPITasks is the number of tasks in one full coherent processing interval.
const CPITasks = cpiChans + cpiChans + cpiChans/2

// NewCPIStream returns a deterministic stream of exactly n STAP-like tasks
// (the final CPI is truncated when n is not a multiple of CPITasks).
func NewCPIStream(n int, seed int64) *CPIStream {
	s := &CPIStream{
		remaining: n,
		rng:       rand.New(rand.NewSource(seed)),
		mem:       taskmodel.NewAllocator(0x1000_0000),
	}
	s.doppler = s.reg.Register("doppler_fir")
	s.covar = s.reg.Register("covariance")
	s.weights = s.reg.Register("apply_weights")
	return s
}

// Registry exposes the kernel registry (for rendering and tracing).
func (s *CPIStream) Registry() *taskmodel.Registry { return &s.reg }

func (s *CPIStream) alloc(size uint32) taskmodel.Addr { return s.mem.Alloc(size) }

func (s *CPIStream) jitter(v uint64) uint64 {
	f := 0.95 + 0.1*s.rng.Float64()
	return uint64(float64(v) * f)
}

// refill synthesizes the next CPI into the buffer.
func (s *CPIStream) refill() {
	const sliceBytes = 3 << 10
	const covBytes = 4 << 10
	s.buf = s.buf[:0]
	s.pos = 0
	add := func(k taskmodel.KernelID, runtime uint64, ops ...taskmodel.Operand) {
		s.buf = append(s.buf, &taskmodel.Task{Kernel: k, Operands: ops, Runtime: runtime})
	}
	cube := s.alloc(64 << 10)
	filtered := make([]taskmodel.Addr, cpiChans)
	for ch := range filtered {
		filtered[ch] = s.alloc(sliceBytes)
	}
	for ch := 0; ch < cpiChans; ch++ {
		add(s.doppler, us(1+2*s.rng.Float64()),
			in(cube, sliceBytes), out(filtered[ch], sliceBytes))
	}
	covs := make([]taskmodel.Addr, cpiChans)
	for ch := range covs {
		covs[ch] = s.alloc(covBytes)
	}
	for ch := 0; ch < cpiChans; ch++ {
		add(s.covar, s.jitter(us(9)),
			in(filtered[ch], sliceBytes), out(covs[ch], covBytes))
	}
	for g := 0; g < cpiChans/2; g++ {
		res := s.alloc(4 << 10)
		add(s.weights, s.jitter(us(120)),
			in(covs[g*2], covBytes), in(covs[g*2+1], covBytes),
			in(filtered[g*2], sliceBytes), out(res, 4<<10))
	}
}

// Next implements the tss.Generator pull protocol.
func (s *CPIStream) Next() (*taskmodel.Task, bool) {
	if s.remaining <= 0 {
		return nil, false
	}
	if s.pos >= len(s.buf) {
		s.refill()
	}
	t := s.buf[s.pos]
	s.buf[s.pos] = nil
	s.pos++
	s.remaining--
	return t, true
}
