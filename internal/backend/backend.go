// Package backend is the execution half of the task superscalar machine: a
// Carbon-like hardware queuing system (a global task unit plus per-core
// local task units that prefetch work, without stealing — §IV.B.5) driving
// in-order worker cores. Cores stage task operands into their L1s with
// DMA-style bursts through the memory system, execute for the task's trace
// runtime, write outputs back, and report completion to the frontend.
package backend

import (
	"fmt"

	"tasksuperscalar/internal/core"
	"tasksuperscalar/internal/mem"
	"tasksuperscalar/internal/noc"
	"tasksuperscalar/internal/sim"
	"tasksuperscalar/internal/stats"
	"tasksuperscalar/internal/taskmodel"
)

// FinishHandler receives task-completion notifications (the pipeline
// frontend, the software runtime, or a test harness).
type FinishHandler interface {
	TaskFinished(from noc.NodeID, id core.TaskID)
}

// Config sizes the backend.
type Config struct {
	Cores           int
	LocalQueueDepth int       // tasks prefetched per core (Carbon LTU)
	DispatchCycles  sim.Cycle // global queue processing per dispatch
	CtrlBytes       uint32

	// Stealing lets an idle core take a staged-but-unstarted task from
	// another core's local queue (Carbon supports this; the paper's
	// system does not — §IV.B.5 — so it defaults off and is an ablation).
	Stealing bool

	// CoreSpeed optionally scales each core's execution rate (1.0 =
	// Table II baseline). Values below 1 model slower cores in a
	// heterogeneous CMP — the management direction the paper's
	// conclusion points at. Nil means all cores run at full speed.
	CoreSpeed []float64

	// Policy selects the dispatch policy by name ("" = PolicyFIFO); see
	// policy.go. The policy is part of the machine and participates in
	// config canonicalization.
	Policy string

	// WorkerClasses partitions the cores into named execution classes
	// (first class → first Count cores, remainder = baseline). Class
	// speeds scale execution under every policy; the hetero policy
	// additionally uses them for placement. Part of the machine, so
	// canonicalized.
	WorkerClasses []WorkerClass

	// TaskDepth maps task sequence numbers to dependent-chain heights for
	// the critical-path policy (tasks past the end have depth 0). It is a
	// pure function of the workload — derived per-run input, excluded
	// from canonicalization.
	TaskDepth []uint32

	// OnDispatch, when set, observes every dispatch decision in commit
	// order (an observer: excluded from canonicalization).
	OnDispatch func(DispatchRecord)

	// SpecValidate replays a recorded dispatch trace against this run:
	// each decision must match the trace entry exactly and pass the
	// policy's admission legality re-check, else the backend panics. This
	// is the spec policy's non-speculative validation oracle (observer;
	// excluded from canonicalization).
	SpecValidate []DispatchRecord

	// RecordSchedule retains per-task start/finish times (O(tasks)
	// memory) for Schedule. Streaming runs disable it so backend memory
	// stays proportional to the in-flight window.
	RecordSchedule bool

	// OnComplete, when set, is invoked as each task finishes (with its
	// sequence number and completion cycle) — a bounded-memory
	// alternative to Schedule for observing the retirement order.
	OnComplete func(seq uint64, at sim.Cycle)
}

// DefaultConfig returns the backend used throughout the evaluation.
func DefaultConfig(cores int) Config {
	return Config{Cores: cores, LocalQueueDepth: 2, DispatchCycles: 16, CtrlBytes: 32,
		RecordSchedule: true}
}

// stagedTask is a local-queue entry whose operands may still be in flight.
// It doubles as the staging-complete event and recycles through the
// backend's free list.
type stagedTask struct {
	rt     *core.ReadyTask
	staged bool
	b      *Backend
	w      *worker
	next   *stagedTask
}

// Fire marks the operands arrived and pokes the owning core.
func (st *stagedTask) Fire() {
	st.staged = true
	st.b.maybeStart(st.w)
}

// worker is one processor core acting as a functional unit. Operand staging
// is double-buffered: the local task unit prefetches the operands of queued
// tasks while the current task executes (the Cell-heritage DMA overlap the
// paper's fine-grain tasks depend on).
type worker struct {
	idx     int
	node    noc.NodeID
	queue   sim.FIFO[*stagedTask]
	running bool
	credit  *gtuCredit // reusable (immutable) local-queue credit message
	hint    *gtuHint   // reusable execution-finished hint (spec policy only)
}

// Backend implements core.Dispatcher.
type Backend struct {
	eng *sim.Engine
	net *noc.Network
	cfg Config
	mem *mem.System // may be nil (frontend-only studies)

	finish FinishHandler

	node    noc.NodeID // global task unit
	gtu     *sim.Server[any]
	policy  Policy // owns the ready set; picks (task, worker) pairs
	credits []int  // free local-queue slots per worker
	freeRR  int
	workers []*worker

	// Worker-class precomputation (nil unless WorkerClasses set).
	classOf      []int8    // worker → class index, -1 = baseline
	classMembers [][]int32 // class index → member workers, ascending

	// Speculation state (nil unless the spec policy is active).
	wantHints bool
	specHint  []bool // worker finished executing; credit in flight
	specDebt  []int8 // outstanding speculative dispatches (0 or 1)

	// Free lists for the per-task event objects (delivery, staging,
	// execution lifecycle), so steady-state execution does not allocate.
	freeStaged  *stagedTask
	freeTask    *taskEvent
	freeDeliver *deliverTaskEvent

	// Observability: per-task start/finish cycles, indexed directly by
	// task sequence number (grown on demand; nil unless RecordSchedule).
	recSched bool
	startAt  []sim.Cycle
	finishAt []sim.Cycle

	busy      stats.Counter
	executed  uint64
	readyPeak int
	steals    uint64

	// Per-run dispatch accounting (see DispatchStats / ResetRunStats).
	dispatches       uint64
	affineDispatches uint64
	specDispatched   uint64
	specValidated    uint64
	workCycles       uint64
	depthMax         uint32
	valIdx           int // cursor into cfg.SpecValidate
}

// gtuMsg types. Ready tasks travel as bare *core.ReadyTask pointers;
// credits and hints are per-worker singletons — none allocates per message.
type gtuCredit struct{ worker int }
type gtuHint struct{ worker int }   // worker finished executing (spec policy)
type gtuMove struct{ from, to int } // steal: slot moves between workers

// execCycles scales a task's runtime by the worker core's speed and, when
// worker classes are configured, by the class's (per-kernel) speed — a
// machine property that applies under every dispatch policy.
func (b *Backend) execCycles(w *worker, rt *core.ReadyTask) sim.Cycle {
	t := rt.Task.Runtime
	if b.cfg.CoreSpeed != nil && w.idx < len(b.cfg.CoreSpeed) {
		if sp := b.cfg.CoreSpeed[w.idx]; sp > 0 && sp != 1 {
			t = uint64(float64(t) / sp)
		}
	}
	if b.classOf != nil {
		if c := b.classOf[w.idx]; c >= 0 {
			if sp := b.cfg.WorkerClasses[c].effSpeed(rt.Task.Kernel); sp != 1 {
				t = uint64(float64(t) / sp)
			}
		}
	}
	return sim.Cycle(t)
}

// trySteal moves a staged-but-unstarted task from the most loaded peer's
// local queue to the idle worker w (two control messages of latency).
func (b *Backend) trySteal(w *worker) {
	var victim *worker
	for _, v := range b.workers {
		if v == w || v.queue.Len() == 0 {
			continue
		}
		// Only steal fully staged tasks that are not about to start.
		last := *v.queue.At(v.queue.Len() - 1)
		if !last.staged || (v.queue.Len() == 1 && !v.running) {
			continue
		}
		if victim == nil || v.queue.Len() > victim.queue.Len() {
			victim = v
		}
	}
	if victim == nil {
		return
	}
	st := victim.queue.PopBack()
	st.w = w
	b.steals++
	b.net.Send(w.node, victim.node, b.cfg.CtrlBytes, func() {
		b.net.Send(victim.node, w.node, b.cfg.CtrlBytes, func() {
			// Re-stage on the thief (its L1 must hold the operands).
			b.stageOperands(w, st.rt, sim.FuncEvent(func() {
				w.queue.Push(st)
				st.staged = true
				b.maybeStart(w)
			}))
			// The local-queue slot moves with the task.
			b.gtu.Submit(gtuMove{from: victim.idx, to: w.idx})
		})
	})
}

// New builds the backend and attaches the global task unit and the worker
// cores to the network (call before net.Build()). coreNodes supplies the
// worker attachment points; the caller creates them so the memory system
// and backend agree on core indices.
func New(eng *sim.Engine, net *noc.Network, coreNodes []noc.NodeID, cfg Config, m *mem.System) *Backend {
	b := &Backend{
		eng:  eng,
		net:  net,
		cfg:  cfg,
		mem:  m,
		node: net.AddGlobalNode("gtu"),
	}
	b.recSched = cfg.RecordSchedule
	b.gtu = sim.NewServer[any](eng, "gtu", b.handleGTU)
	// Shard affinity: the GTU keys past the per-worker space; worker-bound
	// events key by worker index (see taskEvent/deliverTaskEvent.ShardKey).
	b.gtu.SetShardKey(uint32(cfg.Cores))
	// Workers, credits, and credit messages in three contiguous arrays.
	ws := make([]worker, cfg.Cores)
	creds := make([]gtuCredit, cfg.Cores)
	b.workers = make([]*worker, cfg.Cores)
	b.credits = make([]int, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		creds[i] = gtuCredit{worker: i}
		ws[i] = worker{idx: i, node: coreNodes[i], credit: &creds[i]}
		b.workers[i] = &ws[i]
		b.credits[i] = cfg.LocalQueueDepth
	}
	if len(cfg.WorkerClasses) > 0 {
		b.classOf = make([]int8, cfg.Cores)
		b.classMembers = make([][]int32, len(cfg.WorkerClasses))
		for i := range b.classOf {
			b.classOf[i] = -1
		}
		next := 0
		for ci := range cfg.WorkerClasses {
			for j := 0; j < cfg.WorkerClasses[ci].Count && next < cfg.Cores; j++ {
				b.classOf[next] = int8(ci)
				b.classMembers[ci] = append(b.classMembers[ci], int32(next))
				next++
			}
		}
	}
	if cfg.Policy == PolicySpec {
		b.wantHints = true
		b.specHint = make([]bool, cfg.Cores)
		b.specDebt = make([]int8, cfg.Cores)
		hints := make([]gtuHint, cfg.Cores)
		for i := range hints {
			hints[i] = gtuHint{worker: i}
			b.workers[i].hint = &hints[i]
		}
	}
	b.policy = b.newPolicy(cfg.Policy)
	return b
}

// record writes one observation into a seq-indexed table, growing it on
// demand (sequence numbers arrive roughly in order, so growth is amortized
// doubling, not per task).
func record(tab []sim.Cycle, seq uint64, at sim.Cycle) []sim.Cycle {
	for uint64(len(tab)) <= seq {
		tab = append(tab, 0)
	}
	tab[seq] = at
	return tab
}

// SetFinishHandler wires completion notifications (frontend or soft runtime).
func (b *Backend) SetFinishHandler(h FinishHandler) { b.finish = h }

// Node implements core.Dispatcher.
func (b *Backend) Node() noc.NodeID { return b.node }

// TaskReady implements core.Dispatcher: the ready queue accepts the task.
func (b *Backend) TaskReady(rt *core.ReadyTask) { b.gtu.Submit(rt) }

func (b *Backend) handleGTU(m any) sim.Cycle {
	switch msg := m.(type) {
	case *core.ReadyTask:
		b.policy.Enqueue(msg)
		if r := b.policy.Ready(); r > b.readyPeak {
			b.readyPeak = r
		}
		return b.dispatch()
	case *gtuCredit:
		if b.specDebt != nil && b.specDebt[msg.worker] > 0 {
			// The slot this credit frees was consumed early by a
			// speculative dispatch: repay the debt instead. This is
			// the rollback-free validation — the speculation is
			// confirmed correct by the credit's arrival.
			b.specDebt[msg.worker]--
			b.specValidated++
		} else {
			b.credits[msg.worker]++
		}
		return b.dispatch()
	case *gtuHint:
		b.specHint[msg.worker] = true
		return b.dispatch()
	case gtuMove:
		b.credits[msg.from]++
		b.credits[msg.to]--
		return b.dispatch()
	default:
		panic("gtu: unknown message")
	}
}

// deliverTaskEvent carries one dispatched task from the global task unit to
// a worker's local queue; pooled on the backend.
type deliverTaskEvent struct {
	b    *Backend
	w    *worker
	rt   *core.ReadyTask
	next *deliverTaskEvent
}

// ShardKey stages each in-flight delivery with its destination worker.
func (ev *deliverTaskEvent) ShardKey() uint32 { return uint32(ev.w.idx) }

func (ev *deliverTaskEvent) Fire() {
	b, w, rt := ev.b, ev.w, ev.rt
	ev.rt = nil
	ev.next = b.freeDeliver
	b.freeDeliver = ev
	b.deliver(w, rt)
}

// dispatch drains the policy's ready set onto workers: the policy picks
// (task, worker) pairs until none is admissible; the loop charges credits,
// accounts the decision, and sends the delivery.
func (b *Backend) dispatch() sim.Cycle {
	var cost sim.Cycle
	for b.policy.Ready() > 0 {
		rt, wi, spec, ok := b.policy.Pick()
		if !ok {
			break
		}
		if !spec {
			b.credits[wi]--
		}
		b.dispatches++
		if b.cfg.OnDispatch != nil || b.cfg.SpecValidate != nil {
			b.checkDispatch(rt, wi, spec)
		}
		w := b.workers[wi]
		size := b.cfg.CtrlBytes + 16*uint32(len(rt.Operands))
		ev := b.freeDeliver
		if ev == nil {
			ev = &deliverTaskEvent{b: b}
		} else {
			b.freeDeliver = ev.next
			ev.next = nil
		}
		ev.w, ev.rt = w, rt
		b.net.SendEvent(b.node, w.node, size, ev)
		cost += b.cfg.DispatchCycles
	}
	return cost
}

// checkDispatch reports one dispatch decision to the observers and, under
// SpecValidate, replays it against the recorded trace: the decision must
// match the next trace entry exactly and be legal under the policy's own
// admission rules. A divergence is a determinism or speculation bug, so it
// panics rather than degrading silently.
func (b *Backend) checkDispatch(rt *core.ReadyTask, w int, spec bool) {
	rec := DispatchRecord{Seq: rt.Task.Seq, Worker: w, Cycle: uint64(b.eng.Now()), Speculative: spec}
	if b.cfg.OnDispatch != nil {
		b.cfg.OnDispatch(rec)
	}
	trace := b.cfg.SpecValidate
	if trace == nil {
		return
	}
	if b.valIdx >= len(trace) {
		panic(fmt.Sprintf("backend: dispatch %d (%+v) beyond recorded trace of %d", b.valIdx, rec, len(trace)))
	}
	want := trace[b.valIdx]
	b.valIdx++
	if rec != want {
		panic(fmt.Sprintf("backend: dispatch %d diverged: got %+v, trace has %+v", b.valIdx-1, rec, want))
	}
	if spec {
		if b.specDebt == nil || b.specDebt[w] != 1 {
			panic(fmt.Sprintf("backend: speculative dispatch %d to worker %d without debt", b.valIdx-1, w))
		}
	} else if b.credits[w] < 0 {
		panic(fmt.Sprintf("backend: dispatch %d overdrew worker %d credits", b.valIdx-1, w))
	}
}

// deliver places a task in a worker's local queue and begins staging its
// operands immediately, overlapping any current execution.
func (b *Backend) deliver(w *worker, rt *core.ReadyTask) {
	st := b.freeStaged
	if st == nil {
		st = &stagedTask{b: b}
	} else {
		b.freeStaged = st.next
		st.next = nil
	}
	st.rt, st.w, st.staged = rt, w, false
	w.queue.Push(st)
	b.stageOperands(w, rt, st)
}

// taskEvent drives one task's execution lifecycle (execution end, then
// writeback completion) through a single pooled object.
type taskEvent struct {
	b     *Backend
	w     *worker
	rt    *core.ReadyTask
	phase uint8
	next  *taskEvent
}

const (
	phaseExecDone uint8 = iota
	phaseWriteDone
)

// ShardKey keeps a task's lifecycle events on its worker's shard.
func (ev *taskEvent) ShardKey() uint32 { return uint32(ev.w.idx) }

func (ev *taskEvent) Fire() {
	b, w, rt := ev.b, ev.w, ev.rt
	switch ev.phase {
	case phaseExecDone:
		// The core frees at execution end; output writeback proceeds in
		// the background and gates only the completion notification.
		b.busy.Inc(b.eng.Now(), -1)
		w.running = false
		if b.wantHints {
			// Tell the GTU this worker's credit is now provably in
			// flight (writeback → completion → credit), enabling one
			// speculative early dispatch against it.
			b.net.SendMsg(w.node, b.node, b.cfg.CtrlBytes, b.gtu, w.hint)
		}
		b.maybeStart(w)
		ev.phase = phaseWriteDone
		b.writeOutputs(w, rt, ev)
	case phaseWriteDone:
		ev.rt = nil
		ev.next = b.freeTask
		b.freeTask = ev
		b.completeTask(w, rt)
	}
}

// maybeStart launches the head task once the core is idle and the task's
// operands have arrived.
func (b *Backend) maybeStart(w *worker) {
	if w.running {
		return
	}
	if w.queue.Len() == 0 || !(*w.queue.Front()).staged {
		if b.cfg.Stealing && w.queue.Len() == 0 {
			b.trySteal(w)
		}
		return
	}
	st := w.queue.Pop()
	w.running = true
	rt := st.rt
	st.rt, st.w = nil, nil
	st.next = b.freeStaged
	b.freeStaged = st
	b.busy.Inc(b.eng.Now(), +1)
	if b.recSched {
		b.startAt = record(b.startAt, rt.Task.Seq, b.eng.Now())
	}
	ev := b.freeTask
	if ev == nil {
		ev = &taskEvent{b: b}
	} else {
		b.freeTask = ev.next
		ev.next = nil
	}
	ev.w, ev.rt, ev.phase = w, rt, phaseExecDone
	c := b.execCycles(w, rt)
	b.workCycles += uint64(c)
	b.eng.ScheduleEvent(c, ev)
}

// stageOperands brings every input operand into the worker's L1 and
// acquires write ownership of outputs, all in parallel; done fires once
// everything has arrived.
func (b *Backend) stageOperands(w *worker, rt *core.ReadyTask, done sim.Event) {
	if b.mem == nil {
		b.eng.ScheduleEvent(0, done)
		return
	}
	pending := 0
	fire := func() {
		pending--
		if pending == 0 {
			done.Fire()
		}
	}
	for _, op := range rt.Operands {
		if op.Dir == taskmodel.Scalar || op.Size == 0 {
			continue
		}
		pending++
		switch op.Dir {
		case taskmodel.In:
			b.mem.Fetch(w.idx, op.Buf, op.Size, fire)
		case taskmodel.InOut:
			b.mem.FetchExclusive(w.idx, op.Buf, op.Size, fire)
		case taskmodel.Out:
			b.mem.AcquireWrite(w.idx, op.Buf, op.Size, fire)
		}
	}
	if pending == 0 {
		b.eng.ScheduleEvent(0, done)
	}
}

// writeOutputs flushes produced data to the shared L2 so consumers see it.
func (b *Backend) writeOutputs(w *worker, rt *core.ReadyTask, done sim.Event) {
	if b.mem == nil {
		b.eng.ScheduleEvent(0, done)
		return
	}
	pending := 0
	fire := func() {
		pending--
		if pending == 0 {
			done.Fire()
		}
	}
	for _, op := range rt.Operands {
		if !op.Dir.Writes() || op.Size == 0 {
			continue
		}
		pending++
		b.mem.Writeback(w.idx, op.Buf, op.Size, fire)
	}
	if pending == 0 {
		b.eng.ScheduleEvent(0, done)
	}
}

func (b *Backend) completeTask(w *worker, rt *core.ReadyTask) {
	now := b.eng.Now()
	if b.recSched {
		b.finishAt = record(b.finishAt, rt.Task.Seq, now)
	}
	if b.cfg.OnComplete != nil {
		b.cfg.OnComplete(rt.Task.Seq, now)
	}
	b.executed++
	if b.finish != nil {
		b.finish.TaskFinished(w.node, rt.ID)
	}
	// Return the local-queue slot to the global task unit.
	b.net.SendMsg(w.node, b.node, b.cfg.CtrlBytes, b.gtu, w.credit)
	// The task is fully retired: hand the dispatch record back to its
	// issuing frontend's pool (no-op for unpooled producers).
	rt.Release()
}

// Executed returns the number of completed tasks.
func (b *Backend) Executed() uint64 { return b.executed }

// Schedule returns observed start and finish times indexed by task sequence
// number (for validation against the dependency-graph oracle). It returns
// nils when the run was configured without schedule recording.
func (b *Backend) Schedule(n int) (start, finish []uint64) {
	if !b.recSched {
		return nil, nil
	}
	start = make([]uint64, n)
	finish = make([]uint64, n)
	copy(start, b.startAt)
	copy(finish, b.finishAt)
	return start, finish
}

// Utilization returns average busy cores over [0, end].
func (b *Backend) Utilization(end sim.Cycle) float64 { return b.busy.TimeAvg(end) }

// ReadyPeak returns the high-water mark of the global ready set.
func (b *Backend) ReadyPeak() int { return b.readyPeak }

// Steals returns the number of tasks moved between local queues.
func (b *Backend) Steals() uint64 { return b.steals }

// Policy returns the active dispatch policy (for tests and observability).
func (b *Backend) Policy() Policy { return b.policy }

// Dispatch returns the run's dispatch accounting.
func (b *Backend) Dispatch() DispatchStats {
	return DispatchStats{
		Policy:           b.policy.Name(),
		Dispatches:       b.dispatches,
		AffineDispatches: b.affineDispatches,
		SpecDispatches:   b.specDispatched,
		SpecValidated:    b.specValidated,
		ReadyPeak:        b.readyPeak,
		MaxDepth:         b.depthMax,
		WorkCycles:       b.workCycles,
		Steals:           b.steals,
	}
}

// ResetRunStats clears the per-run observability counters so a backend
// reused across engine runs reports the new run alone (previously ReadyPeak
// leaked the old run's high-water mark). The busy counter — and therefore
// Utilization — stays cumulative: it is time-weighted over the engine
// clock, which also keeps advancing across runs.
func (b *Backend) ResetRunStats() {
	b.readyPeak = 0
	b.executed = 0
	b.steals = 0
	b.dispatches = 0
	b.affineDispatches = 0
	b.specDispatched = 0
	b.specValidated = 0
	b.workCycles = 0
	b.depthMax = 0
	b.valIdx = 0
	b.startAt = b.startAt[:0]
	b.finishAt = b.finishAt[:0]
}
