// Package backend is the execution half of the task superscalar machine: a
// Carbon-like hardware queuing system (a global task unit plus per-core
// local task units that prefetch work, without stealing — §IV.B.5) driving
// in-order worker cores. Cores stage task operands into their L1s with
// DMA-style bursts through the memory system, execute for the task's trace
// runtime, write outputs back, and report completion to the frontend.
package backend

import (
	"tasksuperscalar/internal/core"
	"tasksuperscalar/internal/mem"
	"tasksuperscalar/internal/noc"
	"tasksuperscalar/internal/sim"
	"tasksuperscalar/internal/stats"
	"tasksuperscalar/internal/taskmodel"
)

// FinishHandler receives task-completion notifications (the pipeline
// frontend, the software runtime, or a test harness).
type FinishHandler interface {
	TaskFinished(from noc.NodeID, id core.TaskID)
}

// Config sizes the backend.
type Config struct {
	Cores           int
	LocalQueueDepth int       // tasks prefetched per core (Carbon LTU)
	DispatchCycles  sim.Cycle // global queue processing per dispatch
	CtrlBytes       uint32

	// Stealing lets an idle core take a staged-but-unstarted task from
	// another core's local queue (Carbon supports this; the paper's
	// system does not — §IV.B.5 — so it defaults off and is an ablation).
	Stealing bool

	// CoreSpeed optionally scales each core's execution rate (1.0 =
	// Table II baseline). Values below 1 model slower cores in a
	// heterogeneous CMP — the management direction the paper's
	// conclusion points at. Nil means all cores run at full speed.
	CoreSpeed []float64

	// RecordSchedule retains per-task start/finish times (O(tasks)
	// memory) for Schedule. Streaming runs disable it so backend memory
	// stays proportional to the in-flight window.
	RecordSchedule bool

	// OnComplete, when set, is invoked as each task finishes (with its
	// sequence number and completion cycle) — a bounded-memory
	// alternative to Schedule for observing the retirement order.
	OnComplete func(seq uint64, at sim.Cycle)
}

// DefaultConfig returns the backend used throughout the evaluation.
func DefaultConfig(cores int) Config {
	return Config{Cores: cores, LocalQueueDepth: 2, DispatchCycles: 16, CtrlBytes: 32,
		RecordSchedule: true}
}

// stagedTask is a local-queue entry whose operands may still be in flight.
// It doubles as the staging-complete event and recycles through the
// backend's free list.
type stagedTask struct {
	rt     *core.ReadyTask
	staged bool
	b      *Backend
	w      *worker
	next   *stagedTask
}

// Fire marks the operands arrived and pokes the owning core.
func (st *stagedTask) Fire() {
	st.staged = true
	st.b.maybeStart(st.w)
}

// worker is one processor core acting as a functional unit. Operand staging
// is double-buffered: the local task unit prefetches the operands of queued
// tasks while the current task executes (the Cell-heritage DMA overlap the
// paper's fine-grain tasks depend on).
type worker struct {
	idx     int
	node    noc.NodeID
	queue   sim.FIFO[*stagedTask]
	running bool
	credit  *gtuCredit // reusable (immutable) local-queue credit message
}

// Backend implements core.Dispatcher.
type Backend struct {
	eng *sim.Engine
	net *noc.Network
	cfg Config
	mem *mem.System // may be nil (frontend-only studies)

	finish FinishHandler

	node    noc.NodeID // global task unit
	gtu     *sim.Server[any]
	readyQ  sim.FIFO[*core.ReadyTask]
	credits []int // free local-queue slots per worker
	freeRR  int
	workers []*worker

	// Free lists for the per-task event objects (delivery, staging,
	// execution lifecycle), so steady-state execution does not allocate.
	freeStaged  *stagedTask
	freeTask    *taskEvent
	freeDeliver *deliverTaskEvent

	// Observability: per-task start/finish cycles, indexed directly by
	// task sequence number (grown on demand; nil unless RecordSchedule).
	recSched bool
	startAt  []sim.Cycle
	finishAt []sim.Cycle

	busy      stats.Counter
	executed  uint64
	readyPeak int
	steals    uint64
}

// gtuMsg types. Ready tasks travel as bare *core.ReadyTask pointers;
// credits are per-worker singletons — neither allocates per message.
type gtuCredit struct{ worker int }
type gtuMove struct{ from, to int } // steal: slot moves between workers

// execCycles scales a task's runtime by the worker core's speed.
func (b *Backend) execCycles(w *worker, rt *core.ReadyTask) sim.Cycle {
	t := rt.Task.Runtime
	if b.cfg.CoreSpeed != nil && w.idx < len(b.cfg.CoreSpeed) {
		if sp := b.cfg.CoreSpeed[w.idx]; sp > 0 && sp != 1 {
			t = uint64(float64(t) / sp)
		}
	}
	return sim.Cycle(t)
}

// trySteal moves a staged-but-unstarted task from the most loaded peer's
// local queue to the idle worker w (two control messages of latency).
func (b *Backend) trySteal(w *worker) {
	var victim *worker
	for _, v := range b.workers {
		if v == w || v.queue.Len() == 0 {
			continue
		}
		// Only steal fully staged tasks that are not about to start.
		last := *v.queue.At(v.queue.Len() - 1)
		if !last.staged || (v.queue.Len() == 1 && !v.running) {
			continue
		}
		if victim == nil || v.queue.Len() > victim.queue.Len() {
			victim = v
		}
	}
	if victim == nil {
		return
	}
	st := victim.queue.PopBack()
	st.w = w
	b.steals++
	b.net.Send(w.node, victim.node, b.cfg.CtrlBytes, func() {
		b.net.Send(victim.node, w.node, b.cfg.CtrlBytes, func() {
			// Re-stage on the thief (its L1 must hold the operands).
			b.stageOperands(w, st.rt, sim.FuncEvent(func() {
				w.queue.Push(st)
				st.staged = true
				b.maybeStart(w)
			}))
			// The local-queue slot moves with the task.
			b.gtu.Submit(gtuMove{from: victim.idx, to: w.idx})
		})
	})
}

// New builds the backend and attaches the global task unit and the worker
// cores to the network (call before net.Build()). coreNodes supplies the
// worker attachment points; the caller creates them so the memory system
// and backend agree on core indices.
func New(eng *sim.Engine, net *noc.Network, coreNodes []noc.NodeID, cfg Config, m *mem.System) *Backend {
	b := &Backend{
		eng:  eng,
		net:  net,
		cfg:  cfg,
		mem:  m,
		node: net.AddGlobalNode("gtu"),
	}
	b.recSched = cfg.RecordSchedule
	b.gtu = sim.NewServer[any](eng, "gtu", b.handleGTU)
	// Shard affinity: the GTU keys past the per-worker space; worker-bound
	// events key by worker index (see taskEvent/deliverTaskEvent.ShardKey).
	b.gtu.SetShardKey(uint32(cfg.Cores))
	// Workers, credits, and credit messages in three contiguous arrays.
	ws := make([]worker, cfg.Cores)
	creds := make([]gtuCredit, cfg.Cores)
	b.workers = make([]*worker, cfg.Cores)
	b.credits = make([]int, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		creds[i] = gtuCredit{worker: i}
		ws[i] = worker{idx: i, node: coreNodes[i], credit: &creds[i]}
		b.workers[i] = &ws[i]
		b.credits[i] = cfg.LocalQueueDepth
	}
	return b
}

// record writes one observation into a seq-indexed table, growing it on
// demand (sequence numbers arrive roughly in order, so growth is amortized
// doubling, not per task).
func record(tab []sim.Cycle, seq uint64, at sim.Cycle) []sim.Cycle {
	for uint64(len(tab)) <= seq {
		tab = append(tab, 0)
	}
	tab[seq] = at
	return tab
}

// SetFinishHandler wires completion notifications (frontend or soft runtime).
func (b *Backend) SetFinishHandler(h FinishHandler) { b.finish = h }

// Node implements core.Dispatcher.
func (b *Backend) Node() noc.NodeID { return b.node }

// TaskReady implements core.Dispatcher: the ready queue accepts the task.
func (b *Backend) TaskReady(rt *core.ReadyTask) { b.gtu.Submit(rt) }

func (b *Backend) handleGTU(m any) sim.Cycle {
	switch msg := m.(type) {
	case *core.ReadyTask:
		b.readyQ.Push(msg)
		if b.readyQ.Len() > b.readyPeak {
			b.readyPeak = b.readyQ.Len()
		}
		return b.dispatch()
	case *gtuCredit:
		b.credits[msg.worker]++
		return b.dispatch()
	case gtuMove:
		b.credits[msg.from]++
		b.credits[msg.to]--
		return b.dispatch()
	default:
		panic("gtu: unknown message")
	}
}

// deliverTaskEvent carries one dispatched task from the global task unit to
// a worker's local queue; pooled on the backend.
type deliverTaskEvent struct {
	b    *Backend
	w    *worker
	rt   *core.ReadyTask
	next *deliverTaskEvent
}

// ShardKey stages each in-flight delivery with its destination worker.
func (ev *deliverTaskEvent) ShardKey() uint32 { return uint32(ev.w.idx) }

func (ev *deliverTaskEvent) Fire() {
	b, w, rt := ev.b, ev.w, ev.rt
	ev.rt = nil
	ev.next = b.freeDeliver
	b.freeDeliver = ev
	b.deliver(w, rt)
}

// dispatch hands queued tasks to workers with free local-queue slots,
// round-robin across cores.
func (b *Backend) dispatch() sim.Cycle {
	var cost sim.Cycle
	n := len(b.workers)
	for b.readyQ.Len() > 0 {
		picked := -1
		for i := 0; i < n; i++ {
			idx := (b.freeRR + i) % n
			if b.credits[idx] > 0 {
				picked = idx
				b.freeRR = (idx + 1) % n
				break
			}
		}
		if picked < 0 {
			break
		}
		rt := b.readyQ.Pop()
		b.credits[picked]--
		w := b.workers[picked]
		size := b.cfg.CtrlBytes + 16*uint32(len(rt.Operands))
		ev := b.freeDeliver
		if ev == nil {
			ev = &deliverTaskEvent{b: b}
		} else {
			b.freeDeliver = ev.next
			ev.next = nil
		}
		ev.w, ev.rt = w, rt
		b.net.SendEvent(b.node, w.node, size, ev)
		cost += b.cfg.DispatchCycles
	}
	return cost
}

// deliver places a task in a worker's local queue and begins staging its
// operands immediately, overlapping any current execution.
func (b *Backend) deliver(w *worker, rt *core.ReadyTask) {
	st := b.freeStaged
	if st == nil {
		st = &stagedTask{b: b}
	} else {
		b.freeStaged = st.next
		st.next = nil
	}
	st.rt, st.w, st.staged = rt, w, false
	w.queue.Push(st)
	b.stageOperands(w, rt, st)
}

// taskEvent drives one task's execution lifecycle (execution end, then
// writeback completion) through a single pooled object.
type taskEvent struct {
	b     *Backend
	w     *worker
	rt    *core.ReadyTask
	phase uint8
	next  *taskEvent
}

const (
	phaseExecDone uint8 = iota
	phaseWriteDone
)

// ShardKey keeps a task's lifecycle events on its worker's shard.
func (ev *taskEvent) ShardKey() uint32 { return uint32(ev.w.idx) }

func (ev *taskEvent) Fire() {
	b, w, rt := ev.b, ev.w, ev.rt
	switch ev.phase {
	case phaseExecDone:
		// The core frees at execution end; output writeback proceeds in
		// the background and gates only the completion notification.
		b.busy.Inc(b.eng.Now(), -1)
		w.running = false
		b.maybeStart(w)
		ev.phase = phaseWriteDone
		b.writeOutputs(w, rt, ev)
	case phaseWriteDone:
		ev.rt = nil
		ev.next = b.freeTask
		b.freeTask = ev
		b.completeTask(w, rt)
	}
}

// maybeStart launches the head task once the core is idle and the task's
// operands have arrived.
func (b *Backend) maybeStart(w *worker) {
	if w.running {
		return
	}
	if w.queue.Len() == 0 || !(*w.queue.Front()).staged {
		if b.cfg.Stealing && w.queue.Len() == 0 {
			b.trySteal(w)
		}
		return
	}
	st := w.queue.Pop()
	w.running = true
	rt := st.rt
	st.rt, st.w = nil, nil
	st.next = b.freeStaged
	b.freeStaged = st
	b.busy.Inc(b.eng.Now(), +1)
	if b.recSched {
		b.startAt = record(b.startAt, rt.Task.Seq, b.eng.Now())
	}
	ev := b.freeTask
	if ev == nil {
		ev = &taskEvent{b: b}
	} else {
		b.freeTask = ev.next
		ev.next = nil
	}
	ev.w, ev.rt, ev.phase = w, rt, phaseExecDone
	b.eng.ScheduleEvent(b.execCycles(w, rt), ev)
}

// stageOperands brings every input operand into the worker's L1 and
// acquires write ownership of outputs, all in parallel; done fires once
// everything has arrived.
func (b *Backend) stageOperands(w *worker, rt *core.ReadyTask, done sim.Event) {
	if b.mem == nil {
		b.eng.ScheduleEvent(0, done)
		return
	}
	pending := 0
	fire := func() {
		pending--
		if pending == 0 {
			done.Fire()
		}
	}
	for _, op := range rt.Operands {
		if op.Dir == taskmodel.Scalar || op.Size == 0 {
			continue
		}
		pending++
		switch op.Dir {
		case taskmodel.In:
			b.mem.Fetch(w.idx, op.Buf, op.Size, fire)
		case taskmodel.InOut:
			b.mem.FetchExclusive(w.idx, op.Buf, op.Size, fire)
		case taskmodel.Out:
			b.mem.AcquireWrite(w.idx, op.Buf, op.Size, fire)
		}
	}
	if pending == 0 {
		b.eng.ScheduleEvent(0, done)
	}
}

// writeOutputs flushes produced data to the shared L2 so consumers see it.
func (b *Backend) writeOutputs(w *worker, rt *core.ReadyTask, done sim.Event) {
	if b.mem == nil {
		b.eng.ScheduleEvent(0, done)
		return
	}
	pending := 0
	fire := func() {
		pending--
		if pending == 0 {
			done.Fire()
		}
	}
	for _, op := range rt.Operands {
		if !op.Dir.Writes() || op.Size == 0 {
			continue
		}
		pending++
		b.mem.Writeback(w.idx, op.Buf, op.Size, fire)
	}
	if pending == 0 {
		b.eng.ScheduleEvent(0, done)
	}
}

func (b *Backend) completeTask(w *worker, rt *core.ReadyTask) {
	now := b.eng.Now()
	if b.recSched {
		b.finishAt = record(b.finishAt, rt.Task.Seq, now)
	}
	if b.cfg.OnComplete != nil {
		b.cfg.OnComplete(rt.Task.Seq, now)
	}
	b.executed++
	if b.finish != nil {
		b.finish.TaskFinished(w.node, rt.ID)
	}
	// Return the local-queue slot to the global task unit.
	b.net.SendMsg(w.node, b.node, b.cfg.CtrlBytes, b.gtu, w.credit)
	// The task is fully retired: hand the dispatch record back to its
	// issuing frontend's pool (no-op for unpooled producers).
	rt.Release()
}

// Executed returns the number of completed tasks.
func (b *Backend) Executed() uint64 { return b.executed }

// Schedule returns observed start and finish times indexed by task sequence
// number (for validation against the dependency-graph oracle). It returns
// nils when the run was configured without schedule recording.
func (b *Backend) Schedule(n int) (start, finish []uint64) {
	if !b.recSched {
		return nil, nil
	}
	start = make([]uint64, n)
	finish = make([]uint64, n)
	copy(start, b.startAt)
	copy(finish, b.finishAt)
	return start, finish
}

// Utilization returns average busy cores over [0, end].
func (b *Backend) Utilization(end sim.Cycle) float64 { return b.busy.TimeAvg(end) }

// ReadyPeak returns the high-water mark of the global ready queue.
func (b *Backend) ReadyPeak() int { return b.readyPeak }

// Steals returns the number of tasks moved between local queues.
func (b *Backend) Steals() uint64 { return b.steals }
