package backend

import (
	"fmt"
	"math/bits"

	"tasksuperscalar/internal/core"
	"tasksuperscalar/internal/sim"
	"tasksuperscalar/internal/taskmodel"
)

// Built-in dispatch policy names. The policy is part of the machine (it
// changes which worker runs which task and when), so it participates in
// config canonicalization — unlike the Shards observer, which only changes
// how the same machine is simulated.
const (
	// PolicyFIFO is the paper's dispatcher: tasks leave the global ready
	// queue in arrival order to the first free worker, round-robin.
	PolicyFIFO = "fifo"
	// PolicyCriticalPath prefers the ready task with the deepest chain of
	// transitive dependents (Config.TaskDepth), HTS-style, using a
	// 64-bucket bitmap scoreboard with a CLZ pick.
	PolicyCriticalPath = "critical-path"
	// PolicyHetero adds kernel-class affinity on top of FIFO: a bounded
	// window of the ready queue is scanned for tasks whose kernel runs
	// faster on a configured worker class with a free slot; everything
	// else falls through to the FIFO path (work-conserving).
	PolicyHetero = "hetero"
	// PolicySpec speculatively dispatches one extra task to a worker whose
	// current task has finished executing but not yet retired (its
	// local-queue credit is provably in flight). Validation is
	// rollback-free: the returning credit repays the speculation debt
	// instead of freeing a slot, so no task ever needs to be re-dispatched.
	PolicySpec = "spec"
)

// PolicyNames lists the built-in policies in a stable order.
func PolicyNames() []string {
	return []string{PolicyFIFO, PolicyCriticalPath, PolicyHetero, PolicySpec}
}

// ValidPolicy reports whether name selects a built-in policy ("" = fifo).
func ValidPolicy(name string) bool {
	switch name {
	case "", PolicyFIFO, PolicyCriticalPath, PolicyHetero, PolicySpec:
		return true
	}
	return false
}

// WorkerClass names a contiguous group of worker cores sharing an execution
// profile. Classes are assigned in declaration order: the first class takes
// the first Count cores, the next class the following Count, and any
// remaining cores form the unnamed baseline (speed 1). Class speeds are a
// machine property — they scale execution time under every policy — while
// only the hetero policy uses them for placement.
type WorkerClass struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
	// Speed is the class's default execution-rate multiplier (0 = 1.0).
	Speed float64 `json:"speed,omitempty"`
	// KernelSpeed optionally overrides Speed per kernel ID (index =
	// taskmodel.KernelID; 0 entries fall back to Speed).
	KernelSpeed []float64 `json:"kernel_speed,omitempty"`
}

// effSpeed is the class's execution-rate multiplier for kernel k.
func (wc *WorkerClass) effSpeed(k taskmodel.KernelID) float64 {
	if int(k) < len(wc.KernelSpeed) {
		if s := wc.KernelSpeed[k]; s > 0 {
			return s
		}
	}
	if wc.Speed > 0 {
		return wc.Speed
	}
	return 1
}

// DispatchRecord is one dispatch decision, as observed by Config.OnDispatch
// and replayed by Config.SpecValidate.
type DispatchRecord struct {
	Seq         uint64 `json:"seq"`
	Worker      int    `json:"worker"`
	Cycle       uint64 `json:"cycle"`
	Speculative bool   `json:"speculative,omitempty"`
}

// DispatchStats summarizes one run's dispatch behaviour.
type DispatchStats struct {
	// Policy is the resolved policy name (never empty).
	Policy string `json:"policy"`
	// Dispatches counts GTU→worker task deliveries (== tasks executed at
	// quiescence; stealing moves tasks after dispatch).
	Dispatches uint64 `json:"dispatches"`
	// AffineDispatches counts hetero-policy placements on a task's best
	// worker class (0 under other policies).
	AffineDispatches uint64 `json:"affine_dispatches,omitempty"`
	// SpecDispatches / SpecValidated count speculative early dispatches
	// and their credit-repayment validations; they are equal once the run
	// quiesces (rollback-free speculation never undoes a dispatch).
	SpecDispatches uint64 `json:"spec_dispatches,omitempty"`
	SpecValidated  uint64 `json:"spec_validated,omitempty"`
	// ReadyPeak is the high-water mark of the global ready set.
	ReadyPeak int `json:"ready_peak"`
	// MaxDepth is the deepest dependent-chain height seen by the
	// critical-path policy (0 otherwise).
	MaxDepth uint32 `json:"max_depth,omitempty"`
	// WorkCycles is the sum of per-task execution cycles as actually
	// scheduled — including class/core speed scaling — so policies that
	// change placement measurably change it.
	WorkCycles uint64 `json:"work_cycles"`
	// Steals counts local-queue moves (stealing ablation).
	Steals uint64 `json:"steals,omitempty"`
}

// Policy owns the backend's ready set and picks the next (task, worker)
// pair. Implementations run inside the GTU's message handler — on the
// committer under sharded simulation — so they are single-threaded and must
// be deterministic functions of the message order; they must not allocate
// on the steady-state pick path.
type Policy interface {
	// Name returns the policy's registered name.
	Name() string
	// Enqueue accepts a newly ready task into the ready set.
	Enqueue(rt *core.ReadyTask)
	// Ready returns the number of tasks awaiting dispatch.
	Ready() int
	// Admit reports whether worker w could accept a task right now (the
	// admission predicate Pick honors for its worker choice).
	Admit(w int) bool
	// Pick removes and returns the next task and its target worker, with
	// spec set when the pick is a speculative early dispatch (no
	// local-queue credit is consumed). ok is false when no admissible
	// (task, worker) pair exists; the ready set is left unchanged.
	Pick() (rt *core.ReadyTask, w int, spec bool, ok bool)
}

// newPolicy builds the named policy bound to b. The caller (tss.Validate)
// rejects unknown names before a machine is built; reaching here with one
// is a programming error.
func (b *Backend) newPolicy(name string) Policy {
	switch name {
	case "", PolicyFIFO:
		return &fifoPolicy{b: b}
	case PolicyCriticalPath:
		return &cpPolicy{b: b}
	case PolicyHetero:
		return &heteroPolicy{b: b}
	case PolicySpec:
		return &specPolicy{b: b}
	}
	panic(fmt.Sprintf("backend: unknown dispatch policy %q", name))
}

// pickFreeWorkerRR scans for a worker with a free local-queue credit,
// round-robin from the shared cursor, and advances the cursor past the
// returned worker. It returns -1 when every local queue is full.
func (b *Backend) pickFreeWorkerRR() int {
	n := len(b.workers)
	for i := 0; i < n; i++ {
		idx := (b.freeRR + i) % n
		if b.credits[idx] > 0 {
			b.freeRR = (idx + 1) % n
			return idx
		}
	}
	return -1
}

// --- fifo ---

// fifoPolicy reproduces the paper's dispatcher exactly: arrival order,
// first free worker round-robin.
type fifoPolicy struct {
	b *Backend
	q sim.FIFO[*core.ReadyTask]
}

func (p *fifoPolicy) Name() string               { return PolicyFIFO }
func (p *fifoPolicy) Enqueue(rt *core.ReadyTask) { p.q.Push(rt) }
func (p *fifoPolicy) Ready() int                 { return p.q.Len() }
func (p *fifoPolicy) Admit(w int) bool           { return p.b.credits[w] > 0 }

func (p *fifoPolicy) Pick() (*core.ReadyTask, int, bool, bool) {
	w := p.b.pickFreeWorkerRR()
	if w < 0 {
		return nil, 0, false, false
	}
	return p.q.Pop(), w, false, true
}

// --- critical-path ---

// cpBuckets is the number of priority levels; chains deeper than the last
// bucket saturate into it (they are all "maximally urgent").
const cpBuckets = 64

// cpPolicy prioritizes the ready task with the deepest dependent chain,
// read from the precomputed Config.TaskDepth table. The ready set is a
// bucket-per-depth scoreboard with an occupancy bitmap: the pick is a CLZ
// over the bitmap plus a FIFO pop, so arrival order breaks ties and the
// pick path is O(1) with zero allocation.
type cpPolicy struct {
	b       *Backend
	buckets [cpBuckets]sim.FIFO[*core.ReadyTask]
	occ     uint64 // bit d set ⇔ buckets[d] non-empty
	n       int
}

func (p *cpPolicy) Name() string     { return PolicyCriticalPath }
func (p *cpPolicy) Ready() int       { return p.n }
func (p *cpPolicy) Admit(w int) bool { return p.b.credits[w] > 0 }

func (p *cpPolicy) Enqueue(rt *core.ReadyTask) {
	var d uint32
	if seq := rt.Task.Seq; seq < uint64(len(p.b.cfg.TaskDepth)) {
		d = p.b.cfg.TaskDepth[seq]
	}
	rt.Depth = d
	if d > p.b.depthMax {
		p.b.depthMax = d
	}
	if d >= cpBuckets {
		d = cpBuckets - 1
	}
	p.buckets[d].Push(rt)
	p.occ |= 1 << d
	p.n++
}

func (p *cpPolicy) Pick() (*core.ReadyTask, int, bool, bool) {
	w := p.b.pickFreeWorkerRR()
	if w < 0 {
		return nil, 0, false, false
	}
	top := 63 - bits.LeadingZeros64(p.occ)
	rt := p.buckets[top].Pop()
	if p.buckets[top].Len() == 0 {
		p.occ &^= 1 << uint(top)
	}
	p.n--
	return rt, w, false, true
}

// --- hetero ---

// heteroScanWindow bounds the affinity scan: only the oldest entries of the
// ready queue are considered for class placement, keeping the pick path
// O(window) and starvation-free (a task never waits behind more than a
// window of younger affine picks before the FIFO pass takes it).
const heteroScanWindow = 64

// heteroPolicy places tasks on the worker class that runs their kernel
// fastest when such a worker is free, and falls back to plain FIFO
// otherwise — it never idles a worker to wait for affinity (work-
// conserving), so it conserves tasks trivially and only reorders.
type heteroPolicy struct {
	b       *Backend
	q       sim.FIFO[*core.ReadyTask]
	best    []int8 // kernel ID → fastest class, -1 when baseline ties or wins
	classRR []int  // per-class round-robin cursor
}

func (p *heteroPolicy) Name() string               { return PolicyHetero }
func (p *heteroPolicy) Enqueue(rt *core.ReadyTask) { p.q.Push(rt) }
func (p *heteroPolicy) Ready() int                 { return p.q.Len() }
func (p *heteroPolicy) Admit(w int) bool           { return p.b.credits[w] > 0 }

// bestClass resolves (and caches) the fastest class for kernel k. The cache
// grows once per newly seen kernel ID; the steady-state path is a slice
// index.
func (p *heteroPolicy) bestClass(k taskmodel.KernelID) int8 {
	for int(k) >= len(p.best) {
		kid := taskmodel.KernelID(len(p.best))
		best, bestSp := int8(-1), 1.0 // baseline speed is 1
		for ci := range p.b.cfg.WorkerClasses {
			if sp := p.b.cfg.WorkerClasses[ci].effSpeed(kid); sp > bestSp {
				best, bestSp = int8(ci), sp
			}
		}
		p.best = append(p.best, best)
	}
	return p.best[k]
}

// pickClassWorker finds a free worker in class c, round-robin within the
// class's members.
func (p *heteroPolicy) pickClassWorker(c int) int {
	if p.classRR == nil {
		p.classRR = make([]int, len(p.b.cfg.WorkerClasses))
	}
	mem := p.b.classMembers[c]
	n := len(mem)
	for i := 0; i < n; i++ {
		j := (p.classRR[c] + i) % n
		w := int(mem[j])
		if p.b.credits[w] > 0 {
			p.classRR[c] = (j + 1) % n
			return w
		}
	}
	return -1
}

func (p *heteroPolicy) Pick() (*core.ReadyTask, int, bool, bool) {
	// Pass 1: affinity — oldest-first over a bounded window, so older
	// tasks still get first claim on their preferred class.
	lim := p.q.Len()
	if lim > heteroScanWindow {
		lim = heteroScanWindow
	}
	for i := 0; i < lim; i++ {
		rt := *p.q.At(i)
		c := p.bestClass(rt.Task.Kernel)
		if c < 0 {
			continue
		}
		if w := p.pickClassWorker(int(c)); w >= 0 {
			p.q.RemoveAt(i)
			p.b.affineDispatches++
			return rt, w, false, true
		}
	}
	// Pass 2: work-conserving FIFO fallback.
	w := p.b.pickFreeWorkerRR()
	if w < 0 {
		return nil, 0, false, false
	}
	return p.q.Pop(), w, false, true
}

// --- spec ---

// specPolicy dispatches FIFO while credits last, then speculates: a worker
// whose current task has finished executing (hint received) but not yet
// retired has a local-queue credit provably in flight, so one extra task
// may be shipped against it early. Validation is rollback-free — the
// returning credit repays the debt instead of freeing a slot (see
// handleGTU) — so a speculative dispatch is never undone, only accounted.
// At most one speculation per worker is outstanding.
type specPolicy struct {
	b      *Backend
	q      sim.FIFO[*core.ReadyTask]
	specRR int
}

func (p *specPolicy) Name() string               { return PolicySpec }
func (p *specPolicy) Enqueue(rt *core.ReadyTask) { p.q.Push(rt) }
func (p *specPolicy) Ready() int                 { return p.q.Len() }

func (p *specPolicy) Admit(w int) bool {
	return p.b.credits[w] > 0 || (p.b.specHint[w] && p.b.specDebt[w] == 0)
}

func (p *specPolicy) Pick() (*core.ReadyTask, int, bool, bool) {
	b := p.b
	if w := b.pickFreeWorkerRR(); w >= 0 {
		return p.q.Pop(), w, false, true
	}
	n := len(b.workers)
	for i := 0; i < n; i++ {
		idx := (p.specRR + i) % n
		if b.specHint[idx] && b.specDebt[idx] == 0 {
			p.specRR = (idx + 1) % n
			b.specHint[idx] = false
			b.specDebt[idx] = 1
			b.specDispatched++
			return p.q.Pop(), idx, true, true
		}
	}
	return nil, 0, false, false
}
