package backend

import (
	"testing"

	"tasksuperscalar/internal/core"
	"tasksuperscalar/internal/mem"
	"tasksuperscalar/internal/noc"
	"tasksuperscalar/internal/sim"
	"tasksuperscalar/internal/taskmodel"
)

// finishRecorder counts completions.
type finishRecorder struct {
	done []core.TaskID
}

func (f *finishRecorder) TaskFinished(from noc.NodeID, id core.TaskID) {
	f.done = append(f.done, id)
}

func rig(t *testing.T, cores int, withMem bool) (*sim.Engine, *Backend, *finishRecorder) {
	t.Helper()
	eng := sim.NewEngine()
	net := noc.NewNetwork(eng, 8, noc.DefaultConfig())
	var coreNodes []noc.NodeID
	for i := 0; i < cores; i++ {
		coreNodes = append(coreNodes, net.AddCore("core"))
	}
	var m *mem.System
	if withMem {
		m = mem.NewSystem(eng, net, coreNodes, mem.DefaultSystemConfig(cores))
	}
	b := New(eng, net, coreNodes, DefaultConfig(cores), m)
	fr := &finishRecorder{}
	b.SetFinishHandler(fr)
	net.Build()
	return eng, b, fr
}

func mkTask(seq uint64, runtime uint64, ops ...core.ResolvedOperand) *core.ReadyTask {
	return &core.ReadyTask{
		ID:       core.TaskID{TRS: 0, Slot: uint32(seq)},
		Task:     &taskmodel.Task{Seq: seq, Runtime: runtime},
		Operands: ops,
	}
}

func TestBackendExecutesTask(t *testing.T) {
	eng, b, fr := rig(t, 2, false)
	b.TaskReady(mkTask(0, 1000))
	eng.Run()
	if len(fr.done) != 1 {
		t.Fatalf("finished %d tasks, want 1", len(fr.done))
	}
	if b.Executed() != 1 {
		t.Fatalf("Executed() = %d, want 1", b.Executed())
	}
	start, finish := b.Schedule(1)
	if finish[0]-start[0] < 1000 {
		t.Fatalf("task ran %d cycles, want >= 1000", finish[0]-start[0])
	}
}

func TestBackendParallelism(t *testing.T) {
	eng, b, fr := rig(t, 4, false)
	for i := 0; i < 4; i++ {
		b.TaskReady(mkTask(uint64(i), 100_000))
	}
	end := eng.Run()
	if len(fr.done) != 4 {
		t.Fatalf("finished %d, want 4", len(fr.done))
	}
	// Four independent tasks on four cores run concurrently: makespan
	// must be near one task runtime, not four.
	if end > 150_000 {
		t.Fatalf("4 tasks on 4 cores took %d cycles; not parallel", end)
	}
}

func TestBackendSerializesOnOneCore(t *testing.T) {
	eng, b, _ := rig(t, 1, false)
	for i := 0; i < 3; i++ {
		b.TaskReady(mkTask(uint64(i), 50_000))
	}
	end := eng.Run()
	if end < 150_000 {
		t.Fatalf("3 tasks on 1 core took %d cycles; they must serialize", end)
	}
}

func TestBackendLocalQueuePrefetch(t *testing.T) {
	// With memory enabled and queue depth 2, the second task's operand
	// staging overlaps the first task's execution.
	eng, b, _ := rig(t, 1, true)
	op := core.ResolvedOperand{Base: 0x10000, Buf: 0x10000, Size: 32 << 10, Dir: taskmodel.In}
	op2 := core.ResolvedOperand{Base: 0x20000, Buf: 0x20000, Size: 32 << 10, Dir: taskmodel.In}
	b.TaskReady(mkTask(0, 100_000, op))
	b.TaskReady(mkTask(1, 100_000, op2))
	end := eng.Run()
	// Staging 32 KB from DRAM costs ~18k cycles; overlapped it should
	// appear only once.
	if end > 245_000 {
		t.Fatalf("makespan %d: staging not overlapped with execution", end)
	}
	if b.Executed() != 2 {
		t.Fatalf("executed %d, want 2", b.Executed())
	}
}

func TestBackendWritebackGatesFinish(t *testing.T) {
	eng, b, fr := rig(t, 1, true)
	out := core.ResolvedOperand{Base: 0x30000, Buf: 0x30000, Size: 16 << 10, Dir: taskmodel.Out}
	b.TaskReady(mkTask(0, 1000, out))
	eng.Run()
	if len(fr.done) != 1 {
		t.Fatal("task with output never finished")
	}
	_, finish := b.Schedule(1)
	// Finish must include writeback time beyond the raw runtime.
	if finish[0] <= 1000 {
		t.Fatalf("finish at %d does not include writeback", finish[0])
	}
}

func TestBackendUtilization(t *testing.T) {
	eng, b, _ := rig(t, 2, false)
	b.TaskReady(mkTask(0, 10_000))
	b.TaskReady(mkTask(1, 10_000))
	end := eng.Run()
	util := b.Utilization(end)
	if util < 1.0 || util > 2.0 {
		t.Fatalf("utilization = %.2f busy cores, want in (1,2]", util)
	}
}

func TestBackendManyTasksAllComplete(t *testing.T) {
	eng, b, fr := rig(t, 8, false)
	const n = 500
	for i := 0; i < n; i++ {
		b.TaskReady(mkTask(uint64(i), uint64(1000+i)))
	}
	eng.Run()
	if len(fr.done) != n {
		t.Fatalf("finished %d, want %d", len(fr.done), n)
	}
	if b.ReadyPeak() == 0 {
		t.Fatal("ready queue peak not recorded")
	}
}

func TestBackendScalarOperandsSkipStaging(t *testing.T) {
	eng, b, fr := rig(t, 1, true)
	sc := core.ResolvedOperand{Dir: taskmodel.Scalar, Size: 8}
	b.TaskReady(mkTask(0, 1000, sc))
	eng.Run()
	if len(fr.done) != 1 {
		t.Fatal("scalar-only task never finished")
	}
}

func TestHeterogeneousCoreSpeeds(t *testing.T) {
	eng := sim.NewEngine()
	net := noc.NewNetwork(eng, 8, noc.DefaultConfig())
	coreNodes := []noc.NodeID{net.AddCore("fast"), net.AddCore("slow")}
	cfg := DefaultConfig(2)
	cfg.CoreSpeed = []float64{1.0, 0.5}
	b := New(eng, net, coreNodes, cfg, nil)
	b.SetFinishHandler(&finishRecorder{})
	net.Build()
	// Round-robin dispatch gives task 0 to core 0, task 1 to core 1.
	b.TaskReady(mkTask(0, 100_000))
	b.TaskReady(mkTask(1, 100_000))
	eng.Run()
	start, finish := b.Schedule(2)
	fast := finish[0] - start[0]
	slow := finish[1] - start[1]
	if fast != 100_000 {
		t.Fatalf("fast core ran %d cycles, want 100000", fast)
	}
	if slow != 200_000 {
		t.Fatalf("half-speed core ran %d cycles, want 200000", slow)
	}
}

func TestStealingBalancesLoad(t *testing.T) {
	// Two cores, four tasks: one long task plus three short ones. The
	// GTU's round-robin puts two tasks on each core; without stealing the
	// short task queued behind the long one waits; with stealing the idle
	// core takes it.
	run := func(stealing bool) uint64 {
		eng := sim.NewEngine()
		net := noc.NewNetwork(eng, 8, noc.DefaultConfig())
		coreNodes := []noc.NodeID{net.AddCore("a"), net.AddCore("b")}
		cfg := DefaultConfig(2)
		cfg.Stealing = stealing
		b := New(eng, net, coreNodes, cfg, nil)
		b.SetFinishHandler(&finishRecorder{})
		net.Build()
		b.TaskReady(mkTask(0, 1_000_000)) // long, core 0
		b.TaskReady(mkTask(1, 10_000))    // core 1
		b.TaskReady(mkTask(2, 10_000))    // queued on core 0 behind the long task
		b.TaskReady(mkTask(3, 10_000))    // queued on core 1
		end := eng.Run()
		if b.Executed() != 4 {
			t.Fatalf("executed %d of 4 (stealing=%v)", b.Executed(), stealing)
		}
		return uint64(end)
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Fatalf("stealing did not help: %d cycles with vs %d without", with, without)
	}
}

func TestStealingCountsSteals(t *testing.T) {
	eng := sim.NewEngine()
	net := noc.NewNetwork(eng, 8, noc.DefaultConfig())
	coreNodes := []noc.NodeID{net.AddCore("a"), net.AddCore("b")}
	cfg := DefaultConfig(2)
	cfg.Stealing = true
	b := New(eng, net, coreNodes, cfg, nil)
	b.SetFinishHandler(&finishRecorder{})
	net.Build()
	b.TaskReady(mkTask(0, 2_000_000))
	b.TaskReady(mkTask(1, 1_000))
	b.TaskReady(mkTask(2, 1_000))
	b.TaskReady(mkTask(3, 1_000))
	eng.Run()
	if b.Steals() == 0 {
		t.Fatal("no steals recorded in an imbalanced run")
	}
}
