package backend

import (
	"testing"

	"tasksuperscalar/internal/core"
	"tasksuperscalar/internal/mem"
	"tasksuperscalar/internal/noc"
	"tasksuperscalar/internal/sim"
	"tasksuperscalar/internal/taskmodel"
)

// rigCfg is rig with a caller-supplied config (cfg.Cores decides the core
// count).
func rigCfg(t *testing.T, cfg Config) (*sim.Engine, *Backend, *finishRecorder) {
	t.Helper()
	return rigCfgMem(t, cfg, false)
}

// rigCfgMem is rigCfg with an optional memory system.
func rigCfgMem(t *testing.T, cfg Config, withMem bool) (*sim.Engine, *Backend, *finishRecorder) {
	t.Helper()
	eng := sim.NewEngine()
	net := noc.NewNetwork(eng, 8, noc.DefaultConfig())
	var coreNodes []noc.NodeID
	for i := 0; i < cfg.Cores; i++ {
		coreNodes = append(coreNodes, net.AddCore("core"))
	}
	var m *mem.System
	if withMem {
		m = mem.NewSystem(eng, net, coreNodes, mem.DefaultSystemConfig(cfg.Cores))
	}
	b := New(eng, net, coreNodes, cfg, m)
	fr := &finishRecorder{}
	b.SetFinishHandler(fr)
	net.Build()
	return eng, b, fr
}

// kernelTask is mkTask with an explicit kernel ID.
func kernelTask(seq uint64, kernel taskmodel.KernelID, runtime uint64) *core.ReadyTask {
	rt := mkTask(seq, runtime)
	rt.Task.Kernel = kernel
	return rt
}

// --- ready-queue peak accounting ---

func TestReadyPeakAccounting(t *testing.T) {
	// One core with a single local-queue slot: the first of five tasks
	// dispatches immediately, the other four pile up in the ready set, so
	// the recorded peak must be exactly 4 — not 5, not the running total.
	cfg := DefaultConfig(1)
	cfg.LocalQueueDepth = 1
	eng, b, _ := rigCfg(t, cfg)
	for i := 0; i < 5; i++ {
		b.TaskReady(mkTask(uint64(i), 10_000))
	}
	eng.Run()
	if b.Executed() != 5 {
		t.Fatalf("executed %d of 5", b.Executed())
	}
	if got := b.ReadyPeak(); got != 4 {
		t.Fatalf("ReadyPeak = %d, want 4", got)
	}
}

// --- credit exhaustion under a full local queue ---

func TestCreditExhaustionBoundsInFlight(t *testing.T) {
	// 2 cores × depth 2 = 4 credits. With many ready tasks, the number
	// dispatched but not yet completed must never exceed the credit pool:
	// the GTU stops when every local queue is full and resumes per
	// returning credit.
	cfg := DefaultConfig(2)
	var inFlight, peak int
	cfg.OnDispatch = func(DispatchRecord) {
		inFlight++
		if inFlight > peak {
			peak = inFlight
		}
	}
	cfg.OnComplete = func(seq uint64, at sim.Cycle) { inFlight-- }
	eng, b, _ := rigCfg(t, cfg)
	const n = 40
	for i := 0; i < n; i++ {
		b.TaskReady(mkTask(uint64(i), 5_000))
	}
	eng.Run()
	if b.Executed() != n {
		t.Fatalf("executed %d of %d", b.Executed(), n)
	}
	limit := cfg.Cores * cfg.LocalQueueDepth
	if peak > limit {
		t.Fatalf("in-flight peak %d exceeds the credit pool %d", peak, limit)
	}
	if peak < limit {
		t.Fatalf("in-flight peak %d never saturated the credit pool %d", peak, limit)
	}
	if ds := b.Dispatch(); ds.Dispatches != n {
		t.Fatalf("Dispatches = %d, want %d", ds.Dispatches, n)
	}
}

// --- ReadyTask.Release round-trips under pooling ---

// recordPool implements core.ReadyTaskPool and records every returned
// record.
type recordPool struct {
	got []*core.ReadyTask
}

func (p *recordPool) PutReadyTask(rt *core.ReadyTask) { p.got = append(p.got, rt) }

func TestReadyTaskReleaseRoundTrip(t *testing.T) {
	for _, policy := range PolicyNames() {
		t.Run(policy, func(t *testing.T) {
			cfg := DefaultConfig(2)
			cfg.Policy = policy
			eng, b, _ := rigCfg(t, cfg)
			pool := &recordPool{}
			const n = 24
			records := make(map[*core.ReadyTask]bool, n)
			for i := 0; i < n; i++ {
				rt := core.NewPooledReadyTask(pool)
				rt.ID = core.TaskID{Slot: uint32(i)}
				rt.Task = &taskmodel.Task{Seq: uint64(i), Runtime: 2_000}
				records[rt] = true
				b.TaskReady(rt)
			}
			eng.Run()
			if b.Executed() != n {
				t.Fatalf("executed %d of %d", b.Executed(), n)
			}
			// Exactly-once: every submitted record comes back, none
			// twice, none foreign.
			if len(pool.got) != n {
				t.Fatalf("pool received %d records, want %d", len(pool.got), n)
			}
			seen := make(map[*core.ReadyTask]bool, n)
			for _, rt := range pool.got {
				if !records[rt] {
					t.Fatal("pool received a record it does not own")
				}
				if seen[rt] {
					t.Fatal("record released twice")
				}
				seen[rt] = true
			}
		})
	}
}

// --- per-policy steady-state allocation gate ---

func TestPolicyPickPathDoesNotAllocate(t *testing.T) {
	const n = 64
	for _, policy := range PolicyNames() {
		t.Run(policy, func(t *testing.T) {
			cfg := DefaultConfig(4)
			cfg.Policy = policy
			switch policy {
			case PolicyHetero:
				cfg.WorkerClasses = []WorkerClass{{Name: "fast", Count: 1, KernelSpeed: []float64{2}}}
			case PolicyCriticalPath:
				depths := make([]uint32, n)
				for i := range depths {
					depths[i] = uint32(i % 16)
				}
				cfg.TaskDepth = depths
			}
			eng, b, _ := rigCfg(t, cfg)
			tasks := make([]*core.ReadyTask, n)
			for i := range tasks {
				tasks[i] = mkTask(uint64(i), uint64(500+i*7))
			}
			run := func() {
				b.ResetRunStats()
				for _, rt := range tasks {
					b.TaskReady(rt)
				}
				eng.Run()
				if b.Executed() != n {
					t.Fatalf("executed %d of %d", b.Executed(), n)
				}
			}
			run() // warm the pools, queues and caches
			// Retry a non-zero measurement twice: unrelated background
			// allocations (GC pacing after earlier subtests) occasionally
			// pollute a single AllocsPerRun window, but a genuine per-run
			// leak allocates in every window.
			var avg float64
			for attempt := 0; attempt < 3; attempt++ {
				if avg = testing.AllocsPerRun(3, run); avg == 0 {
					break
				}
			}
			if avg != 0 {
				t.Fatalf("%s pick path allocated %.2f times per run, want 0", policy, avg)
			}
		})
	}
}

// --- the ReadyPeak reset bugfix ---

func TestResetRunStatsClearsPerRunCounters(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.LocalQueueDepth = 1
	eng, b, _ := rigCfg(t, cfg)
	for i := 0; i < 8; i++ {
		b.TaskReady(mkTask(uint64(i), 1_000))
	}
	eng.Run()
	if b.ReadyPeak() != 7 {
		t.Fatalf("first run ReadyPeak = %d, want 7", b.ReadyPeak())
	}

	// Before the fix, a reused backend reported the first run's peak
	// forever; the second run's single task can never queue 7 deep.
	b.ResetRunStats()
	if b.ReadyPeak() != 0 || b.Executed() != 0 || b.Dispatch().Dispatches != 0 {
		t.Fatal("ResetRunStats left per-run counters set")
	}
	b.TaskReady(mkTask(8, 1_000))
	eng.Run()
	if got := b.ReadyPeak(); got != 1 {
		t.Fatalf("second run ReadyPeak = %d, want 1 (leaked from first run?)", got)
	}
	if b.Executed() != 1 {
		t.Fatalf("second run Executed = %d, want 1", b.Executed())
	}
	if ds := b.Dispatch(); ds.WorkCycles != 1_000 {
		t.Fatalf("second run WorkCycles = %d, want 1000", ds.WorkCycles)
	}
}

// --- policy behaviour pins ---

func TestCriticalPathPicksDeepestFirst(t *testing.T) {
	// One core, one slot. Task 0 occupies the core; tasks 1..3 arrive
	// with depths 0, 5, 9 and must start in depth order 3, 2, 1 — the
	// reverse of arrival.
	cfg := DefaultConfig(1)
	cfg.LocalQueueDepth = 1
	cfg.Policy = PolicyCriticalPath
	cfg.TaskDepth = []uint32{0, 0, 5, 9}
	eng, b, _ := rigCfg(t, cfg)
	for i := 0; i < 4; i++ {
		b.TaskReady(mkTask(uint64(i), 10_000))
	}
	eng.Run()
	start, _ := b.Schedule(4)
	if !(start[3] < start[2] && start[2] < start[1]) {
		t.Fatalf("start order not by depth: starts = %v", start)
	}
	if ds := b.Dispatch(); ds.MaxDepth != 9 {
		t.Fatalf("MaxDepth = %d, want 9", ds.MaxDepth)
	}
}

func TestCriticalPathDepthSaturates(t *testing.T) {
	// Depths beyond the bucket range collapse into the top bucket rather
	// than indexing out of it; the run must still complete and report the
	// true (unclamped) maximum depth.
	cfg := DefaultConfig(1)
	cfg.Policy = PolicyCriticalPath
	cfg.TaskDepth = []uint32{500, 70, 63}
	eng, b, _ := rigCfg(t, cfg)
	for i := 0; i < 3; i++ {
		b.TaskReady(mkTask(uint64(i), 1_000))
	}
	eng.Run()
	if b.Executed() != 3 {
		t.Fatalf("executed %d of 3", b.Executed())
	}
	if ds := b.Dispatch(); ds.MaxDepth != 500 {
		t.Fatalf("MaxDepth = %d, want 500", ds.MaxDepth)
	}
}

func TestHeteroAffinityPlacesOnFastClass(t *testing.T) {
	// Worker 0 runs kernel 0 at double speed. Both tasks prefer it, so
	// both dispatch there (affine) and execute in half their runtime,
	// while worker 1 idles.
	cfg := DefaultConfig(2)
	cfg.Policy = PolicyHetero
	cfg.WorkerClasses = []WorkerClass{{Name: "fast", Count: 1, KernelSpeed: []float64{2}}}
	eng, b, _ := rigCfg(t, cfg)
	b.TaskReady(kernelTask(0, 0, 100_000))
	b.TaskReady(kernelTask(1, 0, 100_000))
	eng.Run()
	if ds := b.Dispatch(); ds.AffineDispatches != 2 {
		t.Fatalf("AffineDispatches = %d, want 2", ds.AffineDispatches)
	}
	start, finish := b.Schedule(2)
	for i := range start {
		if got := finish[i] - start[i]; got != 50_000 {
			t.Fatalf("task %d ran %d cycles on the fast class, want 50000", i, got)
		}
	}
}

func TestHeteroFallsBackWorkConserving(t *testing.T) {
	// Kernel 1 has no preferred class, and the fast class's queue is
	// finite: with four kernel-0 tasks and four kernel-1 tasks on a
	// 1-fast + 1-baseline machine, every worker must stay fed — the
	// policy never idles a core waiting for affinity.
	cfg := DefaultConfig(2)
	cfg.Policy = PolicyHetero
	cfg.WorkerClasses = []WorkerClass{{Name: "fast", Count: 1, KernelSpeed: []float64{2}}}
	eng, b, _ := rigCfg(t, cfg)
	const n = 8
	for i := 0; i < n; i++ {
		b.TaskReady(kernelTask(uint64(i), taskmodel.KernelID(i%2), 50_000))
	}
	eng.Run()
	if b.Executed() != n {
		t.Fatalf("executed %d of %d", b.Executed(), n)
	}
	ds := b.Dispatch()
	if ds.AffineDispatches == 0 || ds.AffineDispatches == ds.Dispatches {
		t.Fatalf("want a mix of affine and fallback dispatches, got %d of %d affine",
			ds.AffineDispatches, ds.Dispatches)
	}
}

func TestSpecDispatchesAndValidates(t *testing.T) {
	// A single core with a single slot starves the fifo path, so the spec
	// policy's only way to overlap dispatch latency is the hint channel.
	// Every speculative dispatch must be validated by a returning credit.
	cfg := DefaultConfig(1)
	cfg.LocalQueueDepth = 1
	cfg.Policy = PolicySpec
	eng, b, _ := rigCfg(t, cfg)
	const n = 16
	for i := 0; i < n; i++ {
		b.TaskReady(mkTask(uint64(i), 20_000))
	}
	eng.Run()
	if b.Executed() != n {
		t.Fatalf("executed %d of %d", b.Executed(), n)
	}
	ds := b.Dispatch()
	if ds.SpecDispatches == 0 {
		t.Fatal("spec policy never speculated under a starved fifo path")
	}
	if ds.SpecDispatches != ds.SpecValidated {
		t.Fatalf("speculation not validated: %d dispatched, %d validated",
			ds.SpecDispatches, ds.SpecValidated)
	}
}

func TestSpecBeatsFifoOnWritebackTail(t *testing.T) {
	// The point of speculation: the credit only returns after the
	// finished task's outputs write back, but the hint fires at execution
	// end — so spec dispatches and stages the next task underneath the
	// writeback, where fifo leaves the core idle. Needs the memory system
	// (without it writeback is free and there is no tail to hide).
	run := func(policy string) uint64 {
		cfg := DefaultConfig(1)
		cfg.LocalQueueDepth = 1
		cfg.Policy = policy
		eng, b, _ := rigCfgMem(t, cfg, true)
		for i := 0; i < 16; i++ {
			rt := mkTask(uint64(i), 1_000, core.ResolvedOperand{
				Base: taskmodel.Addr(0x100000 + i*0x8000),
				Buf:  uint64(0x100000 + i*0x8000),
				Size: 16 << 10, Dir: taskmodel.Out,
			})
			b.TaskReady(rt)
		}
		end := eng.Run()
		if b.Executed() != 16 {
			t.Fatalf("%s executed %d of 16", policy, b.Executed())
		}
		return uint64(end)
	}
	fifo := run(PolicyFIFO)
	spec := run(PolicySpec)
	if spec >= fifo {
		t.Fatalf("spec (%d cycles) not faster than fifo (%d cycles)", spec, fifo)
	}
}

func TestWorkerClassSpeedScalesUnderFifo(t *testing.T) {
	// Class speeds are machine state, not policy state: even plain fifo
	// runs tasks faster on a fast-class worker.
	cfg := DefaultConfig(2)
	cfg.WorkerClasses = []WorkerClass{{Name: "fast", Count: 1, Speed: 2}}
	eng, b, _ := rigCfg(t, cfg)
	b.TaskReady(mkTask(0, 100_000)) // round-robin → worker 0 (fast)
	b.TaskReady(mkTask(1, 100_000)) // → worker 1 (baseline)
	eng.Run()
	start, finish := b.Schedule(2)
	if got := finish[0] - start[0]; got != 50_000 {
		t.Fatalf("fast-class task ran %d cycles, want 50000", got)
	}
	if got := finish[1] - start[1]; got != 100_000 {
		t.Fatalf("baseline task ran %d cycles, want 100000", got)
	}
}
