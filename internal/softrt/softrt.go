// Package softrt models the StarSs software runtime that the paper uses as
// its baseline (Figure 16): a serialized software dependency decoder with an
// effectively infinite task window. The decoder's measured rate — just over
// 700 ns per task on a 2.66 GHz Core Duo (§II) — is the entire model; the
// decoded tasks run on the same execution backend as the hardware pipeline,
// so the comparison isolates decode scalability exactly as the paper does.
package softrt

import (
	"tasksuperscalar/internal/core"
	"tasksuperscalar/internal/noc"
	"tasksuperscalar/internal/sim"
	"tasksuperscalar/internal/taskmodel"
)

// Config models the software runtime's costs, in core cycles at 3.2 GHz.
type Config struct {
	// DecodeBase + DecodePerOp*operands is charged per task on the
	// decoder thread. The defaults average ~2240 cycles (700 ns) for a
	// 4-operand task.
	DecodeBase  sim.Cycle
	DecodePerOp sim.Cycle
	// WakeupCycles is charged per dependent made ready at task completion.
	WakeupCycles sim.Cycle
	// GenBase/GenPerOp mirror the task-generating thread's packing cost.
	GenBase  sim.Cycle
	GenPerOp sim.Cycle
}

// DefaultConfig calibrates the decoder to the paper's 700 ns/task.
func DefaultConfig() Config {
	return Config{
		DecodeBase:   1340,
		DecodePerOp:  225,
		WakeupCycles: 60,
		GenBase:      24,
		GenPerOp:     12,
	}
}

// record tracks one decoded task in the software dependency graph.
type record struct {
	rt      *core.ReadyTask
	pending int
	succs   []int32
	done    bool
}

// objState is the decoder's per-object renaming state (StarSs renames too,
// so WaR/WaW do not serialize).
type objState struct {
	lastWriter       int32
	readersSinceLast []int32
}

// Runtime is the software decoder: a single serialized thread that pops
// tasks from the stream, resolves dependencies in software, and feeds the
// shared backend. Its window is unbounded.
type Runtime struct {
	eng *sim.Engine
	cfg Config

	stream  taskmodel.Stream
	backend *backendIface
	node    noc.NodeID

	recs    []*record
	objs    map[taskmodel.Addr]*objState
	decoded uint64
	retired uint64

	firstDecode sim.Cycle
	lastDecode  sim.Cycle

	windowCur int64
	windowMax int64
}

// backendIface is the minimal dispatcher surface (satisfied by
// backend.Backend).
type backendIface struct {
	ready func(rt *core.ReadyTask)
}

// Dispatcher is what the software runtime needs from the backend.
type Dispatcher interface {
	TaskReady(rt *core.ReadyTask)
}

// New creates a software runtime decoding stream onto d. node is the core
// the decoder thread runs on (used as the completion-notification target).
func New(eng *sim.Engine, cfg Config, stream taskmodel.Stream, d Dispatcher, node noc.NodeID) *Runtime {
	return &Runtime{
		eng:     eng,
		cfg:     cfg,
		stream:  stream,
		backend: &backendIface{ready: d.TaskReady},
		node:    node,
		objs:    make(map[taskmodel.Addr]*objState),
	}
}

// Start begins decoding.
func (r *Runtime) Start() { r.decodeNext() }

func (r *Runtime) decodeNext() {
	t := r.stream.Next()
	if t == nil {
		return
	}
	cost := r.cfg.GenBase + r.cfg.DecodeBase +
		(r.cfg.GenPerOp+r.cfg.DecodePerOp)*sim.Cycle(t.NumOperands())
	r.eng.Schedule(cost, func() {
		r.admit(t)
		r.decodeNext()
	})
}

// admit resolves the task's dependencies against the software object state
// (renamed semantics: pure outputs do not serialize against earlier users).
func (r *Runtime) admit(t *taskmodel.Task) {
	idx := int32(len(r.recs))
	rec := &record{rt: r.makeReady(t)}
	preds := map[int32]struct{}{}
	for _, op := range t.Operands {
		if op.Dir == taskmodel.Scalar {
			continue
		}
		s := r.objs[op.Base]
		if s == nil {
			s = &objState{lastWriter: -1}
			r.objs[op.Base] = s
		}
		if op.Dir.Reads() && s.lastWriter >= 0 {
			preds[s.lastWriter] = struct{}{}
		}
		if op.Dir == taskmodel.InOut {
			for _, rd := range s.readersSinceLast {
				if rd != idx {
					preds[rd] = struct{}{}
				}
			}
		}
	}
	for _, op := range t.Operands {
		if op.Dir == taskmodel.Scalar {
			continue
		}
		s := r.objs[op.Base]
		if op.Dir.Writes() {
			s.lastWriter = idx
			s.readersSinceLast = s.readersSinceLast[:0]
		}
		s.readersSinceLast = append(s.readersSinceLast, idx)
	}
	for p := range preds {
		if !r.recs[p].done {
			rec.pending++
			r.recs[p].succs = append(r.recs[p].succs, idx)
		}
	}
	r.recs = append(r.recs, rec)
	now := r.eng.Now()
	if r.decoded == 0 {
		r.firstDecode = now
	}
	r.lastDecode = now
	r.decoded++
	r.windowCur++
	if r.windowCur > r.windowMax {
		r.windowMax = r.windowCur
	}
	if rec.pending == 0 {
		rec.rt.DecodedAt = now
		rec.rt.ReadyAt = now
		r.backend.ready(rec.rt)
	}
}

// makeReady builds the dispatch record; the software runtime passes home
// addresses through (its renaming is internal to the host runtime).
func (r *Runtime) makeReady(t *taskmodel.Task) *core.ReadyTask {
	ops := make([]core.ResolvedOperand, len(t.Operands))
	for i, op := range t.Operands {
		ops[i] = core.ResolvedOperand{
			Base: op.Base,
			Buf:  uint64(op.Base),
			Size: op.Size,
			Dir:  op.Dir,
		}
	}
	return &core.ReadyTask{
		ID:       core.TaskID{TRS: 0, Slot: uint32(t.Seq)},
		Task:     t,
		Operands: ops,
	}
}

// TaskFinished implements the backend's FinishHandler: wake dependents.
// The slot of a software task ID is its sequence number.
func (r *Runtime) TaskFinished(from noc.NodeID, id core.TaskID) {
	rec := r.recs[id.Slot]
	if rec.done {
		panic("softrt: double finish")
	}
	rec.done = true
	r.retired++
	r.windowCur--
	// Wakeups run on the runtime thread: charge them serially.
	delay := sim.Cycle(0)
	for _, sIdx := range rec.succs {
		s := r.recs[sIdx]
		s.pending--
		if s.pending == 0 {
			delay += r.cfg.WakeupCycles
			dep := s
			r.eng.Schedule(delay, func() {
				now := r.eng.Now()
				dep.rt.DecodedAt = now
				dep.rt.ReadyAt = now
				r.backend.ready(dep.rt)
			})
		}
	}
}

// Stats of the software runtime.
type Stats struct {
	Decoded    uint64
	Retired    uint64
	DecodeRate float64 // cycles per task
	WindowMax  int64
}

// Snapshot returns decode statistics.
func (r *Runtime) Snapshot() Stats {
	s := Stats{Decoded: r.decoded, Retired: r.retired, WindowMax: r.windowMax}
	if r.decoded > 1 {
		s.DecodeRate = float64(r.lastDecode-r.firstDecode) / float64(r.decoded-1)
	}
	return s
}
