package softrt

import (
	"testing"

	"tasksuperscalar/internal/core"
	"tasksuperscalar/internal/graph"
	"tasksuperscalar/internal/noc"
	"tasksuperscalar/internal/sim"
	"tasksuperscalar/internal/taskmodel"
)

// instantBackend runs tasks with unlimited parallelism after their runtime.
type instantBackend struct {
	eng    *sim.Engine
	rt     *Runtime
	node   noc.NodeID
	start  map[uint64]uint64
	finish map[uint64]uint64
}

func (b *instantBackend) TaskReady(rt *core.ReadyTask) {
	b.start[rt.Task.Seq] = uint64(b.eng.Now())
	b.eng.Schedule(sim.Cycle(rt.Task.Runtime), func() {
		b.finish[rt.Task.Seq] = uint64(b.eng.Now())
		b.rt.TaskFinished(b.node, rt.ID)
	})
}

func runSoft(t *testing.T, tasks []*taskmodel.Task) (*Runtime, *instantBackend, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	be := &instantBackend{eng: eng, start: map[uint64]uint64{}, finish: map[uint64]uint64{}}
	rt := New(eng, DefaultConfig(), taskmodel.NewSliceStream(tasks), be, 0)
	be.rt = rt
	rt.Start()
	eng.Run()
	return rt, be, eng
}

func opr(a taskmodel.Addr, d taskmodel.Dir) taskmodel.Operand {
	return taskmodel.Operand{Base: a, Size: 1024, Dir: d}
}

func TestSoftDecodeSerializes(t *testing.T) {
	var tasks []*taskmodel.Task
	for i := 0; i < 10; i++ {
		tasks = append(tasks, &taskmodel.Task{
			Runtime:  100,
			Operands: []taskmodel.Operand{opr(taskmodel.Addr(0x1000*(i+1)), taskmodel.Out)},
		})
	}
	rt, be, _ := runSoft(t, tasks)
	s := rt.Snapshot()
	if s.Decoded != 10 || s.Retired != 10 {
		t.Fatalf("decoded/retired = %d/%d, want 10/10", s.Decoded, s.Retired)
	}
	// ~700ns/task at one operand: > 1500 cycles between decodes.
	if s.DecodeRate < 1500 {
		t.Fatalf("decode rate %.0f cycles/task, want >= 1500 (serialized software decode)", s.DecodeRate)
	}
	// Starts are spaced by at least the decode rate.
	if be.start[9] < 9*1500 {
		t.Fatalf("10th task started at %d; decode did not serialize", be.start[9])
	}
}

func TestSoftDependenciesRespected(t *testing.T) {
	obj := taskmodel.Addr(0x4000)
	tasks := []*taskmodel.Task{
		{Runtime: 50_000, Operands: []taskmodel.Operand{opr(obj, taskmodel.Out)}},
		{Runtime: 1000, Operands: []taskmodel.Operand{opr(obj, taskmodel.In)}},
		{Runtime: 1000, Operands: []taskmodel.Operand{opr(obj, taskmodel.InOut)}},
	}
	_, be, _ := runSoft(t, tasks)
	g := graph.Build(tasks, graph.Options{Renaming: true})
	start := []uint64{be.start[0], be.start[1], be.start[2]}
	finish := []uint64{be.finish[0], be.finish[1], be.finish[2]}
	if err := g.ValidateSchedule(start, finish); err != nil {
		t.Fatal(err)
	}
}

func TestSoftRenamedSemantics(t *testing.T) {
	// Reader then writer of the same object: StarSs renames, so the
	// writer must not wait for the long reader.
	obj := taskmodel.Addr(0x4000)
	tasks := []*taskmodel.Task{
		{Runtime: 10, Operands: []taskmodel.Operand{opr(obj, taskmodel.Out)}},
		{Runtime: 5_000_000, Operands: []taskmodel.Operand{opr(obj, taskmodel.In)}},
		{Runtime: 10, Operands: []taskmodel.Operand{opr(obj, taskmodel.Out)}},
	}
	_, be, _ := runSoft(t, tasks)
	if be.start[2] >= be.finish[1] {
		t.Fatalf("renamed writer waited for reader: start %d vs finish %d",
			be.start[2], be.finish[1])
	}
}

func TestSoftInfiniteWindow(t *testing.T) {
	// A long chain head blocks execution while decode races ahead: the
	// window grows without bound (unlike the hardware TRS).
	obj := taskmodel.Addr(0x8000)
	var tasks []*taskmodel.Task
	tasks = append(tasks, &taskmodel.Task{
		Runtime:  50_000_000,
		Operands: []taskmodel.Operand{opr(obj, taskmodel.Out)},
	})
	for i := 0; i < 500; i++ {
		tasks = append(tasks, &taskmodel.Task{
			Runtime:  100,
			Operands: []taskmodel.Operand{opr(obj, taskmodel.InOut)},
		})
	}
	rt, _, _ := runSoft(t, tasks)
	s := rt.Snapshot()
	if s.WindowMax < 400 {
		t.Fatalf("window max %d; the software window must be unbounded", s.WindowMax)
	}
}

func TestSoftWakeupChain(t *testing.T) {
	// Diamond: 0 -> {1,2} -> 3.
	a, b, c := taskmodel.Addr(0x1000), taskmodel.Addr(0x2000), taskmodel.Addr(0x3000)
	tasks := []*taskmodel.Task{
		{Runtime: 1000, Operands: []taskmodel.Operand{opr(a, taskmodel.Out)}},
		{Runtime: 1000, Operands: []taskmodel.Operand{opr(a, taskmodel.In), opr(b, taskmodel.Out)}},
		{Runtime: 2000, Operands: []taskmodel.Operand{opr(a, taskmodel.In), opr(c, taskmodel.Out)}},
		{Runtime: 1000, Operands: []taskmodel.Operand{opr(b, taskmodel.In), opr(c, taskmodel.In)}},
	}
	rt, be, _ := runSoft(t, tasks)
	if rt.Snapshot().Retired != 4 {
		t.Fatalf("retired %d, want 4", rt.Snapshot().Retired)
	}
	if be.start[3] < be.finish[1] || be.start[3] < be.finish[2] {
		t.Fatal("join task started before both branches finished")
	}
}

func TestSoftScalarOperands(t *testing.T) {
	tasks := []*taskmodel.Task{
		{Runtime: 100, Operands: []taskmodel.Operand{{Dir: taskmodel.Scalar, Size: 8}}},
	}
	rt, _, _ := runSoft(t, tasks)
	if rt.Snapshot().Retired != 1 {
		t.Fatal("scalar-only task not retired")
	}
}
