package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
)

// Job statuses, in lifecycle order. A job ends in exactly one of the three
// terminal states: done, failed, or cancelled.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// terminalStatus reports whether a status is one of the terminal states.
func terminalStatus(st string) bool {
	return st == StatusDone || st == StatusFailed || st == StatusCancelled
}

// Config sizes a Server.
type Config struct {
	// Workers bounds how many jobs simulate concurrently (default
	// GOMAXPROCS). Each sweep job may additionally fan out its own
	// internal pool (SweepSpec.Workers, default 1).
	Workers int
	// QueueDepth bounds the jobs waiting for a worker; submits beyond it
	// are rejected with 503 (default 1024).
	QueueDepth int
	// CacheEntries and CacheBytes bound the result cache (defaults 1024
	// entries, 64 MiB).
	CacheEntries int
	CacheBytes   int64
	// MaxLogLines bounds the per-job log retained for SSE replay
	// (default 4096; older lines are dropped, newest kept).
	MaxLogLines int
	// MaxJobs bounds the job registry (default 4096): beyond it the
	// oldest *terminal* job records — including their pinned result
	// bytes — are evicted and subsequently 404. Results stay available
	// through the LRU cache via re-submission of the same spec.
	MaxJobs int
	// Fleet switches the daemon into dispatcher mode: instead of running
	// jobs on a local pool it fans them out to remote tssd workers that
	// registered via POST /v1/workers, coalescing identical jobs across
	// nodes and retrying on another worker when one dies mid-job. Workers
	// is ignored (execution capacity lives on the workers); QueueDepth
	// bounds the concurrent dispatches.
	Fleet bool
	// CacheDir, when set, adds a persistent disk layer under the LRU: every
	// finished result is written there as a self-verifying envelope and
	// misses read through it, so the content-addressed result space
	// survives restarts (see DiskStore). CacheDiskBytes bounds the
	// directory (default 1 GiB); past it the least-recently-used envelopes
	// are evicted.
	CacheDir       string
	CacheDiskBytes int64
}

// execution is the shared run state of one content-addressed job. Jobs that
// coalesce onto the same in-flight run share one execution; its condition
// variable broadcasts every observable change to the SSE streams.
type execution struct {
	mu      sync.Mutex
	cond    *sync.Cond
	status  string
	done    uint64 // retired tasks (sim jobs)
	total   uint64 // total tasks once known (sim jobs)
	logs    []string
	logBase int // index of logs[0] in the full log stream
	result  []byte
	errMsg  string
	version uint64 // bumped on every observable change

	// ctx cancels the execution cooperatively (DELETE /v1/jobs/{id});
	// cancel is idempotent and always called once the execution reaches a
	// terminal state. Cache-hit answers never run, so they carry neither.
	ctx    context.Context
	cancel context.CancelFunc
}

func newExecution(status string) *execution {
	e := &execution{status: status}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// newRunnableExecution returns a queued execution with a cancellation
// context attached (for jobs that will actually run, locally or remotely).
func newRunnableExecution() *execution {
	e := newExecution(StatusQueued)
	e.ctx, e.cancel = context.WithCancel(context.Background())
	return e
}

// transition moves status from → to atomically, waking watchers; it reports
// whether the move happened. A failed transition means another actor won the
// race (e.g. a cancel flipped a queued job before its worker popped it).
func (e *execution) transition(from, to string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.status != from {
		return false
	}
	e.status = to
	e.version++
	e.cond.Broadcast()
	return true
}

// set applies fn under the lock and wakes every watcher.
func (e *execution) set(fn func()) {
	e.mu.Lock()
	fn()
	e.version++
	e.cond.Broadcast()
	e.mu.Unlock()
}

// wake broadcasts without changing state (watchers re-check their
// contexts). The lock is required for the broadcast to be reliable: without
// it, a disconnect could land between a watcher's condition check and its
// cond.Wait and be lost, leaving the watcher blocked until the job's next
// state change.
func (e *execution) wake() {
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
}

// execSnapshot is a consistent copy of an execution's observable state.
type execSnapshot struct {
	status      string
	done, total uint64
	logs        []string // full retained log
	logBase     int
	result      []byte
	errMsg      string
	version     uint64
}

func (e *execution) snapshot() execSnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return execSnapshot{
		status: e.status, done: e.done, total: e.total,
		logs: e.logs, logBase: e.logBase,
		result: e.result, errMsg: e.errMsg, version: e.version,
	}
}

func (s execSnapshot) terminal() bool { return terminalStatus(s.status) }

// job is one submission: its own identity and spec, sharing an execution
// with any identical submissions it was coalesced with. Sweep points are
// also jobs (unregistered internal ones), which is what lets API submissions
// and sweep shards coalesce onto each other's executions.
type job struct {
	id        string
	spec      JobSpec
	key       string
	exec      *execution
	cached    bool     // answered from the in-memory result cache
	coalesced bool     // attached to an identical in-flight run
	via       []string // dispatcher chain that routed the job here (fleet)

	// disk records that the result was served from the persistent store
	// at execution time. Atomic because it is set by the running worker
	// while status endpoints may already be reading the job.
	disk atomic.Bool
}

// Server is the tssd daemon: an http.Handler plus the worker pool and
// result cache behind it. Create with New, serve via Handler, and Close when
// done.
type Server struct {
	cfg      Config
	cache    *Cache
	disk     *DiskStore // non-nil when Config.CacheDir is set
	mux      *http.ServeMux
	fleet    *fleet // non-nil in dispatcher mode
	instance string // unique per-process daemon identity (see handleHealthz)

	queue chan *job
	wg    sync.WaitGroup

	mu        sync.Mutex
	closed    bool
	jobs      map[string]*job
	order     []string        // job IDs in submission order
	inflight  map[string]*job // key → primary job currently queued/running
	nextID    uint64
	coalesced uint64
	completed uint64
	failed    uint64
	cancelled uint64
	cacheHits uint64 // submissions answered from the in-memory cache
	diskHits  uint64 // submissions answered from the persistent store
	shard     ShardStats
}

// New starts a server: its workers are running on return. The only error
// path is a Config.CacheDir that cannot be opened.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.MaxLogLines <= 0 {
		cfg.MaxLogLines = 4096
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4096
	}
	s := &Server{
		cfg:      cfg,
		cache:    NewCache(cfg.CacheEntries, cfg.CacheBytes),
		queue:    make(chan *job, cfg.QueueDepth),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		instance: newInstanceID(),
	}
	if cfg.CacheDir != "" {
		var err error
		s.disk, err = OpenDiskStore(cfg.CacheDir, cfg.CacheDiskBytes)
		if err != nil {
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if cfg.Fleet {
		s.fleet = newFleet(s)
		s.mux.HandleFunc("POST /v1/workers", s.fleet.handleJoin)
		s.mux.HandleFunc("GET /v1/workers", s.fleet.handleList)
		s.mux.HandleFunc("DELETE /v1/workers/{id}", s.fleet.handleLeave)
		return s, nil // execution capacity lives on the workers
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close rejects further submissions and waits for the workers (or, in fleet
// mode, the in-flight dispatches) to drain. In-flight jobs finish; queued
// jobs still run (the queue is drained, not dropped). Safe to call once.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	if s.fleet != nil {
		close(s.fleet.stop)
	}
	close(s.queue)
	s.wg.Wait()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes a primary job on the local pool and publishes its outcome
// to the shared execution, the cache, and the server counters.
func (s *Server) runJob(j *job) {
	e := j.exec
	if !e.transition(StatusQueued, StatusRunning) {
		// Cancelled while queued: the cancel handler already published
		// the terminal state and released the inflight slot; just free
		// the worker.
		return
	}
	// Read through the persistent store before simulating anything: a
	// result that survived a restart answers the job without a run.
	if result, ok := s.diskGet(j.key); ok {
		s.finishJobFromDisk(j, result)
		return
	}

	var result []byte
	var err error
	switch j.spec.Kind {
	case KindSim:
		result, err = runSim(e.ctx, j.spec.Sim, func(done, total uint64) {
			e.set(func() { e.done, e.total = done, total })
		})
	case KindSweep:
		s.runShardedSweep(j)
		return
	default:
		err = fmt.Errorf("unknown job kind %q", j.spec.Kind)
	}
	s.finishJob(j, result, err)
}

// diskGet reads through the persistent store (a no-op without -cache-dir),
// promoting hits into the in-memory LRU so repeats stay off the disk.
func (s *Server) diskGet(key string) ([]byte, bool) {
	if s.disk == nil {
		return nil, false
	}
	b, ok := s.disk.Get(key)
	if ok {
		s.cache.Put(key, b)
	}
	return b, ok
}

// appendLog appends one log line to an execution, trimming to the retention
// bound and waking the SSE watchers.
func (s *Server) appendLog(e *execution, line string) {
	e.set(func() {
		e.logs = append(e.logs, line)
		if over := len(e.logs) - s.cfg.MaxLogLines; over > 0 {
			e.logs = e.logs[over:]
			e.logBase += over
		}
	})
}

// settle publishes an execution's terminal state exactly once: done with its
// result on success, cancelled when the execution's context was cancelled,
// failed otherwise. It stores successful results in both cache layers (the
// disk write is skipped when the result just came from there), releases the
// key's inflight slot, and returns the terminal status it published — or ""
// when the execution was already terminal (a cancel flipped it while
// queued), which is what makes status transitions idempotent under every
// race. Counter updates are the callers' job: API submissions go through
// finishJob/finishJobFromDisk; internal sweep points call settle directly
// and account themselves in ShardStats.
func (s *Server) settle(j *job, result []byte, err error, fromDisk bool) string {
	e := j.exec
	status := StatusDone
	if err != nil {
		if errors.Is(err, context.Canceled) || (e.ctx != nil && e.ctx.Err() != nil) {
			status = StatusCancelled
		} else {
			status = StatusFailed
		}
	}

	e.mu.Lock()
	if terminalStatus(e.status) {
		e.mu.Unlock()
		return ""
	}
	switch status {
	case StatusDone:
		e.result = result
	default:
		e.errMsg = err.Error()
	}
	e.status = status
	e.version++
	e.cond.Broadcast()
	e.mu.Unlock()
	if e.cancel != nil {
		e.cancel()
	}

	if status == StatusDone {
		s.cache.Put(j.key, result)
		if s.disk != nil && !fromDisk {
			s.disk.Put(j.key, result)
		}
	}
	s.mu.Lock()
	if p := s.inflight[j.key]; p != nil && p.exec == e {
		delete(s.inflight, j.key)
	}
	s.mu.Unlock()
	return status
}

// finishJob settles a primary API job, updates the terminal-state counters,
// and re-checks the registry bound so a burst that finishes after its
// submissions still converges to MaxJobs.
func (s *Server) finishJob(j *job, result []byte, err error) {
	status := s.settle(j, result, err, false)
	if status == "" {
		return
	}
	s.mu.Lock()
	switch status {
	case StatusDone:
		s.completed++
	case StatusFailed:
		s.failed++
	case StatusCancelled:
		s.cancelled++
	}
	s.evictJobsLocked()
	s.mu.Unlock()
}

// finishJobFromDisk settles a primary API job whose result was read from the
// persistent store: the job counts as a disk hit, not a completion, keeping
// the conservation invariant (every settled submission is exactly one of
// completed, failed, cancelled, coalesced, cache hit, or disk hit).
func (s *Server) finishJobFromDisk(j *job, result []byte) {
	if s.settle(j, result, nil, true) == "" {
		return
	}
	j.disk.Store(true)
	s.mu.Lock()
	s.diskHits++
	s.evictJobsLocked()
	s.mu.Unlock()
}

// SubmitStatus is the response to POST /v1/jobs and the per-job body of the
// job and list endpoints.
type SubmitStatus struct {
	// ID names the job for the polling and SSE endpoints.
	ID string `json:"id"`
	// Kind echoes the spec's kind.
	Kind string `json:"kind"`
	// Key is the job's content address (hex SHA-256 of the normalized
	// spec; see JobSpec.Key).
	Key string `json:"key"`
	// Status is queued, running, or one of the terminal states: done,
	// failed, or cancelled.
	Status string `json:"status"`
	// Cached reports that the result was served from the cache without
	// re-simulating.
	Cached bool `json:"cached"`
	// Coalesced reports that the submission attached to an identical
	// in-flight run instead of starting its own.
	Coalesced bool `json:"coalesced"`
	// Done/Total report task-retirement progress for sim jobs.
	Done  uint64 `json:"done"`
	Total uint64 `json:"total"`
	// Error is the failure message for failed jobs.
	Error string `json:"error,omitempty"`
	// Result is the canonical result payload, present once done.
	Result json.RawMessage `json:"result,omitempty"`
}

func (s *Server) statusOf(j *job) SubmitStatus {
	snap := j.exec.snapshot()
	st := SubmitStatus{
		ID: j.id, Kind: j.spec.Kind, Key: j.key,
		Status: snap.status, Cached: j.cached || j.disk.Load(), Coalesced: j.coalesced,
		Done: snap.done, Total: snap.total, Error: snap.errMsg,
	}
	if snap.status == StatusDone {
		st.Result = snap.result
	}
	return st
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var via []string
	if h := r.Header.Get(DispatchPathHeader); h != "" {
		via = strings.Split(h, ",")
		for _, inst := range via {
			if inst == s.instance {
				// The job has already passed through this daemon: the
				// fleet topology contains a dispatch cycle (dispatchers
				// registered as each other's workers). Accepting it would
				// coalesce the job with itself and hang both ends.
				httpError(w, http.StatusBadRequest,
					"dispatch loop detected: this daemon is already in the job's dispatch path")
				return
			}
		}
	}
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if err := spec.Normalize(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid job: %v", err)
		return
	}
	key := spec.Key()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	j := &job{spec: spec, key: key, via: via}
	if primary, ok := s.inflight[key]; ok {
		// Identical spec already queued or running: share its execution.
		j.exec = primary.exec
		j.coalesced = true
		s.coalesced++
		s.register(j)
		s.mu.Unlock()
	} else if result, ok := s.cache.Get(key); ok {
		// Content-addressed hit: answer without simulating. (The
		// persistent store is deliberately not consulted here — disk I/O
		// stays off the submit path; a worker checks it at execution
		// start instead.)
		j.exec = newExecution(StatusDone)
		j.exec.result = result
		j.cached = true
		s.cacheHits++
		s.register(j)
		s.mu.Unlock()
	} else if s.fleet != nil {
		j.exec = newRunnableExecution()
		// Dispatcher mode: the job is fanned out to a remote worker by a
		// dispatch goroutine, bounded by the fleet's slot semaphore.
		if !s.fleet.tryAcquire() {
			s.mu.Unlock()
			httpError(w, http.StatusServiceUnavailable, "dispatch queue full (%d in flight)", s.cfg.QueueDepth)
			return
		}
		s.register(j)
		s.inflight[key] = j
		s.wg.Add(1)
		go s.fleet.dispatch(j)
		s.mu.Unlock()
	} else {
		j.exec = newRunnableExecution()
		// Non-blocking enqueue under the lock: either the job is queued
		// and registered atomically, or nothing is recorded at all.
		select {
		case s.queue <- j:
			s.register(j)
			s.inflight[key] = j
			s.mu.Unlock()
		default:
			s.mu.Unlock()
			httpError(w, http.StatusServiceUnavailable, "job queue full (%d pending)", s.cfg.QueueDepth)
			return
		}
	}

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(s.statusOf(j))
}

// register assigns the job its ID and records it; caller holds s.mu.
func (s *Server) register(j *job) {
	s.nextID++
	j.id = fmt.Sprintf("job-%d", s.nextID)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictJobsLocked()
}

// evictJobsLocked drops the oldest terminal job records (and with them the
// result bytes their executions pin) once the registry exceeds MaxJobs, so
// daemon memory is bounded by the LRU cache plus MaxJobs records rather
// than growing with the submission history. Non-terminal jobs are never
// evicted. Caller holds s.mu.
func (s *Server) evictJobsLocked() {
	excess := len(s.jobs) - s.cfg.MaxJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j.exec.snapshot().terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return nil
	}
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.statusOf(j))
}

// handleCancel implements DELETE /v1/jobs/{id}: cooperative, idempotent
// cancellation. A queued job flips straight to cancelled (it will be skipped
// when a worker pops it); a running job has its context cancelled, and the
// engine loop abandons the run within one cancellation-poll interval (a
// dispatched job is also cancelled on its remote worker, best effort); a
// terminal job — done, failed, or already cancelled — is left untouched.
// The response is always the job's current status, so repeated DELETEs
// observe a stable terminal state. Cancelling any submission that coalesced
// onto a shared execution cancels that execution for every submission
// attached to it.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	e := j.exec

	cancelledNow := false
	e.mu.Lock()
	if e.status == StatusQueued {
		e.status = StatusCancelled
		e.errMsg = "cancelled before execution"
		e.version++
		e.cond.Broadcast()
		cancelledNow = true
	}
	e.mu.Unlock()
	if e.cancel != nil {
		e.cancel() // idempotent; running executions observe it cooperatively
	}
	if cancelledNow {
		s.mu.Lock()
		if p := s.inflight[j.key]; p != nil && p.exec == e {
			delete(s.inflight, j.key)
		}
		s.cancelled++
		s.evictJobsLocked()
		s.mu.Unlock()
	}

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.statusOf(j))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		list = append(list, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]SubmitStatus, len(list))
	for i, j := range list {
		out[i] = s.statusOf(j)
		out[i].Result = nil // listings stay light; fetch per job
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleResult serves the raw canonical result bytes — the byte-identity
// surface: these bytes are exactly what RunSpec produces for the same spec.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	snap := j.exec.snapshot()
	switch snap.status {
	case StatusDone:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Tssd-Cached", fmt.Sprintf("%v", j.cached))
		w.Write(snap.result)
	case StatusFailed:
		httpError(w, http.StatusConflict, "job failed: %s", snap.errMsg)
	case StatusCancelled:
		httpError(w, http.StatusConflict, "job cancelled: %s", snap.errMsg)
	default:
		httpError(w, http.StatusConflict, "job is %s; result not available yet", snap.status)
	}
}

// handleEvents streams the job over Server-Sent Events: a status event on
// every transition, progress events for sim jobs, log events for sweep
// jobs, and a terminal result or error event (see docs/SERVICE.md).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	e := j.exec
	// Wake the cond loop when the client goes away.
	ctx := r.Context()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			e.wake()
		case <-watchDone:
		}
	}()

	emit := func(event string, data any) {
		b, _ := json.Marshal(data)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	}

	var lastStatus string
	var lastDone uint64
	sentDone := false
	nextLog := 0
	for {
		snap := e.snapshot()
		if snap.status != lastStatus {
			lastStatus = snap.status
			emit("status", map[string]any{"id": j.id, "status": snap.status, "cached": j.cached})
		}
		if snap.total > 0 && (snap.done != lastDone || !sentDone) {
			lastDone, sentDone = snap.done, true
			emit("progress", map[string]any{"done": snap.done, "total": snap.total})
		}
		if nextLog < snap.logBase {
			nextLog = snap.logBase // lines rotated out before we read them
		}
		for ; nextLog-snap.logBase < len(snap.logs); nextLog++ {
			emit("log", map[string]any{"line": snap.logs[nextLog-snap.logBase]})
		}
		if snap.terminal() {
			switch snap.status {
			case StatusDone:
				fmt.Fprintf(w, "event: result\ndata: %s\n\n", snap.result)
			case StatusCancelled:
				emit("cancelled", map[string]any{"error": snap.errMsg})
			default:
				emit("error", map[string]any{"error": snap.errMsg})
			}
			fl.Flush()
			return
		}
		fl.Flush()

		e.mu.Lock()
		for e.version == snap.version && ctx.Err() == nil {
			e.cond.Wait()
		}
		e.mu.Unlock()
		if ctx.Err() != nil {
			return
		}
	}
}

// ServerStats is the body of GET /stats.
type ServerStats struct {
	// Workers is the job pool width; QueueDepth its submit bound.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// Submitted counts every accepted job; Completed/Failed/Cancelled
	// count finished primary executions by terminal state; Coalesced
	// counts submissions that attached to an identical in-flight run;
	// CacheHits/DiskHits count submissions answered from the in-memory
	// cache and the persistent store without running; Inflight is the
	// number of distinct executions currently queued or running. Every
	// settled submission is exactly one of completed, failed, cancelled,
	// coalesced, a cache hit, or a disk hit — the conservation invariant
	// the concurrency tests assert. (CacheHits is job-level: unlike
	// Cache.Hits it is not inflated by internal per-point lookups.)
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	Coalesced uint64 `json:"coalesced"`
	CacheHits uint64 `json:"cache_hits"`
	DiskHits  uint64 `json:"disk_hits"`
	Inflight  int    `json:"inflight"`
	// Shard reports sweep decomposition: how many constituent points were
	// resolved, and how (its own conservation invariant; see ShardStats).
	Shard ShardStats `json:"shard"`
	// Cache reports the result cache's occupancy and hit/miss/eviction
	// counters, including the persistent layer when configured.
	Cache CacheStats `json:"cache"`
	// Fleet reports dispatcher-mode state (nil on a plain daemon).
	Fleet *FleetStats `json:"fleet,omitempty"`
}

// ShardStats counts sweep-point resolution outcomes. Every point a sharded
// sweep enumerates settles as exactly one of the outcome counters:
// Points == MemHits + DiskHits + Coalesced + Simulated + Inline + Failed
// once all sweeps have drained.
type ShardStats struct {
	// Points counts every constituent simulation a sharded sweep asked
	// the resolver for.
	Points uint64 `json:"points"`
	// MemHits/DiskHits count points answered from the in-memory cache and
	// the persistent store; Coalesced counts points that attached to an
	// identical in-flight execution (another sweep's point or an API sim
	// job); Simulated counts points actually executed (locally or on a
	// fleet worker); Inline counts points whose machine configuration is
	// not expressible as a sim spec, run inside the sweep without caching;
	// Failed counts points whose resolution errored.
	MemHits   uint64 `json:"mem_hits"`
	DiskHits  uint64 `json:"disk_hits"`
	Coalesced uint64 `json:"coalesced"`
	Simulated uint64 `json:"simulated"`
	Inline    uint64 `json:"inline"`
	Failed    uint64 `json:"failed"`
}

// Stats snapshots the daemon counters (also served on /stats).
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	st := ServerStats{
		Workers:    s.cfg.Workers,
		QueueDepth: s.cfg.QueueDepth,
		Submitted:  s.nextID,
		Completed:  s.completed,
		Failed:     s.failed,
		Cancelled:  s.cancelled,
		Coalesced:  s.coalesced,
		CacheHits:  s.cacheHits,
		DiskHits:   s.diskHits,
		Inflight:   len(s.inflight),
		Shard:      s.shard,
	}
	s.mu.Unlock()
	st.Cache = s.cache.Stats()
	if s.disk != nil {
		d := s.disk.Stats()
		st.Cache.Disk = &d
	}
	if s.fleet != nil {
		fs := s.fleet.stats()
		st.Fleet = &fs
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

// healthz is the body of GET /healthz. Instance uniquely identifies the
// daemon process; a fleet dispatcher compares it against its own on worker
// registration to reject a join that would dispatch jobs back to itself.
type healthz struct {
	OK       bool   `json:"ok"`
	Instance string `json:"instance"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(healthz{OK: true, Instance: s.instance})
}

// newInstanceID returns a random per-process daemon identity.
func newInstanceID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
