package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
)

// Job statuses, in lifecycle order.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// Config sizes a Server.
type Config struct {
	// Workers bounds how many jobs simulate concurrently (default
	// GOMAXPROCS). Each sweep job may additionally fan out its own
	// internal pool (SweepSpec.Workers, default 1).
	Workers int
	// QueueDepth bounds the jobs waiting for a worker; submits beyond it
	// are rejected with 503 (default 1024).
	QueueDepth int
	// CacheEntries and CacheBytes bound the result cache (defaults 1024
	// entries, 64 MiB).
	CacheEntries int
	CacheBytes   int64
	// MaxLogLines bounds the per-job log retained for SSE replay
	// (default 4096; older lines are dropped, newest kept).
	MaxLogLines int
	// MaxJobs bounds the job registry (default 4096): beyond it the
	// oldest *terminal* job records — including their pinned result
	// bytes — are evicted and subsequently 404. Results stay available
	// through the LRU cache via re-submission of the same spec.
	MaxJobs int
}

// execution is the shared run state of one content-addressed job. Jobs that
// coalesce onto the same in-flight run share one execution; its condition
// variable broadcasts every observable change to the SSE streams.
type execution struct {
	mu      sync.Mutex
	cond    *sync.Cond
	status  string
	done    uint64 // retired tasks (sim jobs)
	total   uint64 // total tasks once known (sim jobs)
	logs    []string
	logBase int // index of logs[0] in the full log stream
	result  []byte
	errMsg  string
	version uint64 // bumped on every observable change
}

func newExecution(status string) *execution {
	e := &execution{status: status}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// set applies fn under the lock and wakes every watcher.
func (e *execution) set(fn func()) {
	e.mu.Lock()
	fn()
	e.version++
	e.cond.Broadcast()
	e.mu.Unlock()
}

// wake broadcasts without changing state (watchers re-check their
// contexts). The lock is required for the broadcast to be reliable: without
// it, a disconnect could land between a watcher's condition check and its
// cond.Wait and be lost, leaving the watcher blocked until the job's next
// state change.
func (e *execution) wake() {
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
}

// execSnapshot is a consistent copy of an execution's observable state.
type execSnapshot struct {
	status      string
	done, total uint64
	logs        []string // full retained log
	logBase     int
	result      []byte
	errMsg      string
	version     uint64
}

func (e *execution) snapshot() execSnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return execSnapshot{
		status: e.status, done: e.done, total: e.total,
		logs: e.logs, logBase: e.logBase,
		result: e.result, errMsg: e.errMsg, version: e.version,
	}
}

func (s execSnapshot) terminal() bool { return s.status == StatusDone || s.status == StatusFailed }

// job is one submission: its own identity and spec, sharing an execution
// with any identical submissions it was coalesced with.
type job struct {
	id        string
	spec      JobSpec
	key       string
	exec      *execution
	cached    bool // answered from the result cache
	coalesced bool // attached to an identical in-flight run
}

// Server is the tssd daemon: an http.Handler plus the worker pool and
// result cache behind it. Create with New, serve via Handler, and Close when
// done.
type Server struct {
	cfg   Config
	cache *Cache
	mux   *http.ServeMux

	queue chan *job
	wg    sync.WaitGroup

	mu        sync.Mutex
	closed    bool
	jobs      map[string]*job
	order     []string        // job IDs in submission order
	inflight  map[string]*job // key → primary job currently queued/running
	nextID    uint64
	coalesced uint64
	completed uint64
	failed    uint64
}

// New starts a server: its workers are running on return.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.MaxLogLines <= 0 {
		cfg.MaxLogLines = 4096
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4096
	}
	s := &Server{
		cfg:      cfg,
		cache:    NewCache(cfg.CacheEntries, cfg.CacheBytes),
		queue:    make(chan *job, cfg.QueueDepth),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close rejects further submissions and waits for the workers to drain.
// In-flight jobs finish; queued jobs still run (the queue is drained, not
// dropped). Safe to call once.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes a primary job and publishes its outcome to the shared
// execution, the cache, and the server counters.
func (s *Server) runJob(j *job) {
	e := j.exec
	e.set(func() { e.status = StatusRunning })

	var result []byte
	var err error
	switch j.spec.Kind {
	case KindSim:
		result, err = runSim(j.spec.Sim, func(done, total uint64) {
			e.set(func() { e.done, e.total = done, total })
		})
	case KindSweep:
		result, err = runSweep(j.spec.Sweep, func(line string) {
			e.set(func() {
				e.logs = append(e.logs, line)
				if over := len(e.logs) - s.cfg.MaxLogLines; over > 0 {
					e.logs = e.logs[over:]
					e.logBase += over
				}
			})
		})
	default:
		err = fmt.Errorf("unknown job kind %q", j.spec.Kind)
	}

	if err == nil {
		s.cache.Put(j.key, result)
	}
	s.mu.Lock()
	delete(s.inflight, j.key)
	if err == nil {
		s.completed++
	} else {
		s.failed++
	}
	s.mu.Unlock()
	e.set(func() {
		if err != nil {
			e.status = StatusFailed
			e.errMsg = err.Error()
		} else {
			e.status = StatusDone
			e.result = result
		}
	})
	// This job just became evictable; re-check the registry bound so a
	// burst that finishes after its submissions still converges to MaxJobs
	// without waiting for the next submit.
	s.mu.Lock()
	s.evictJobsLocked()
	s.mu.Unlock()
}

// SubmitStatus is the response to POST /v1/jobs and the per-job body of the
// job and list endpoints.
type SubmitStatus struct {
	// ID names the job for the polling and SSE endpoints.
	ID string `json:"id"`
	// Kind echoes the spec's kind.
	Kind string `json:"kind"`
	// Key is the job's content address (hex SHA-256 of the normalized
	// spec; see JobSpec.Key).
	Key string `json:"key"`
	// Status is queued, running, done, or failed.
	Status string `json:"status"`
	// Cached reports that the result was served from the cache without
	// re-simulating.
	Cached bool `json:"cached"`
	// Coalesced reports that the submission attached to an identical
	// in-flight run instead of starting its own.
	Coalesced bool `json:"coalesced"`
	// Done/Total report task-retirement progress for sim jobs.
	Done  uint64 `json:"done"`
	Total uint64 `json:"total"`
	// Error is the failure message for failed jobs.
	Error string `json:"error,omitempty"`
	// Result is the canonical result payload, present once done.
	Result json.RawMessage `json:"result,omitempty"`
}

func (s *Server) statusOf(j *job) SubmitStatus {
	snap := j.exec.snapshot()
	st := SubmitStatus{
		ID: j.id, Kind: j.spec.Kind, Key: j.key,
		Status: snap.status, Cached: j.cached, Coalesced: j.coalesced,
		Done: snap.done, Total: snap.total, Error: snap.errMsg,
	}
	if snap.status == StatusDone {
		st.Result = snap.result
	}
	return st
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if err := spec.Normalize(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid job: %v", err)
		return
	}
	key := spec.Key()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	j := &job{spec: spec, key: key}
	if primary, ok := s.inflight[key]; ok {
		// Identical spec already queued or running: share its execution.
		j.exec = primary.exec
		j.coalesced = true
		s.coalesced++
		s.register(j)
		s.mu.Unlock()
	} else if result, ok := s.cache.Get(key); ok {
		// Content-addressed hit: answer without simulating.
		j.exec = newExecution(StatusDone)
		j.exec.result = result
		j.cached = true
		s.register(j)
		s.mu.Unlock()
	} else {
		j.exec = newExecution(StatusQueued)
		// Non-blocking enqueue under the lock: either the job is queued
		// and registered atomically, or nothing is recorded at all.
		select {
		case s.queue <- j:
			s.register(j)
			s.inflight[key] = j
			s.mu.Unlock()
		default:
			s.mu.Unlock()
			httpError(w, http.StatusServiceUnavailable, "job queue full (%d pending)", s.cfg.QueueDepth)
			return
		}
	}

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(s.statusOf(j))
}

// register assigns the job its ID and records it; caller holds s.mu.
func (s *Server) register(j *job) {
	s.nextID++
	j.id = fmt.Sprintf("job-%d", s.nextID)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictJobsLocked()
}

// evictJobsLocked drops the oldest terminal job records (and with them the
// result bytes their executions pin) once the registry exceeds MaxJobs, so
// daemon memory is bounded by the LRU cache plus MaxJobs records rather
// than growing with the submission history. Non-terminal jobs are never
// evicted. Caller holds s.mu.
func (s *Server) evictJobsLocked() {
	excess := len(s.jobs) - s.cfg.MaxJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j.exec.snapshot().terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return nil
	}
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.statusOf(j))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		list = append(list, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]SubmitStatus, len(list))
	for i, j := range list {
		out[i] = s.statusOf(j)
		out[i].Result = nil // listings stay light; fetch per job
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleResult serves the raw canonical result bytes — the byte-identity
// surface: these bytes are exactly what RunSpec produces for the same spec.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	snap := j.exec.snapshot()
	switch snap.status {
	case StatusDone:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Tssd-Cached", fmt.Sprintf("%v", j.cached))
		w.Write(snap.result)
	case StatusFailed:
		httpError(w, http.StatusConflict, "job failed: %s", snap.errMsg)
	default:
		httpError(w, http.StatusConflict, "job is %s; result not available yet", snap.status)
	}
}

// handleEvents streams the job over Server-Sent Events: a status event on
// every transition, progress events for sim jobs, log events for sweep
// jobs, and a terminal result or error event (see docs/SERVICE.md).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	e := j.exec
	// Wake the cond loop when the client goes away.
	ctx := r.Context()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			e.wake()
		case <-watchDone:
		}
	}()

	emit := func(event string, data any) {
		b, _ := json.Marshal(data)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	}

	var lastStatus string
	var lastDone uint64
	sentDone := false
	nextLog := 0
	for {
		snap := e.snapshot()
		if snap.status != lastStatus {
			lastStatus = snap.status
			emit("status", map[string]any{"id": j.id, "status": snap.status, "cached": j.cached})
		}
		if snap.total > 0 && (snap.done != lastDone || !sentDone) {
			lastDone, sentDone = snap.done, true
			emit("progress", map[string]any{"done": snap.done, "total": snap.total})
		}
		if nextLog < snap.logBase {
			nextLog = snap.logBase // lines rotated out before we read them
		}
		for ; nextLog-snap.logBase < len(snap.logs); nextLog++ {
			emit("log", map[string]any{"line": snap.logs[nextLog-snap.logBase]})
		}
		if snap.terminal() {
			if snap.status == StatusDone {
				fmt.Fprintf(w, "event: result\ndata: %s\n\n", snap.result)
			} else {
				emit("error", map[string]any{"error": snap.errMsg})
			}
			fl.Flush()
			return
		}
		fl.Flush()

		e.mu.Lock()
		for e.version == snap.version && ctx.Err() == nil {
			e.cond.Wait()
		}
		e.mu.Unlock()
		if ctx.Err() != nil {
			return
		}
	}
}

// ServerStats is the body of GET /stats.
type ServerStats struct {
	// Workers is the job pool width; QueueDepth its submit bound.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// Submitted counts every accepted job; Completed/Failed count
	// finished primary executions; Coalesced counts submissions that
	// attached to an identical in-flight run; Inflight is the number of
	// distinct executions currently queued or running.
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Coalesced uint64 `json:"coalesced"`
	Inflight  int    `json:"inflight"`
	// Cache reports the result cache's occupancy and hit/miss/eviction
	// counters.
	Cache CacheStats `json:"cache"`
}

// Stats snapshots the daemon counters (also served on /stats).
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	st := ServerStats{
		Workers:    s.cfg.Workers,
		QueueDepth: s.cfg.QueueDepth,
		Submitted:  s.nextID,
		Completed:  s.completed,
		Failed:     s.failed,
		Coalesced:  s.coalesced,
		Inflight:   len(s.inflight),
	}
	s.mu.Unlock()
	st.Cache = s.cache.Stats()
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"ok":true}`)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
