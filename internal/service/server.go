package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tasksuperscalar/internal/faults"
)

// Job statuses, in lifecycle order. A job ends in exactly one of the three
// terminal states: done, failed, or cancelled.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// terminalStatus reports whether a status is one of the terminal states.
func terminalStatus(st string) bool {
	return st == StatusDone || st == StatusFailed || st == StatusCancelled
}

// Config sizes a Server.
type Config struct {
	// Workers bounds how many jobs simulate concurrently (default
	// GOMAXPROCS). Each sweep job may additionally fan out its own
	// internal pool (SweepSpec.Workers, default 1).
	Workers int
	// QueueDepth bounds the jobs waiting for a worker; submits beyond it
	// are rejected with 503 (default 1024).
	QueueDepth int
	// CacheEntries and CacheBytes bound the result cache (defaults 1024
	// entries, 64 MiB).
	CacheEntries int
	CacheBytes   int64
	// MaxLogLines bounds the per-job log retained for SSE replay
	// (default 4096; older lines are dropped, newest kept).
	MaxLogLines int
	// MaxJobs bounds the job registry (default 4096): beyond it the
	// oldest *terminal* job records — including their pinned result
	// bytes — are evicted and subsequently 404. Results stay available
	// through the LRU cache via re-submission of the same spec.
	MaxJobs int
	// Fleet switches the daemon into dispatcher mode: instead of running
	// jobs on a local pool it fans them out to remote tssd workers that
	// registered via POST /v1/workers, coalescing identical jobs across
	// nodes and retrying on another worker when one dies mid-job. Workers
	// is ignored (execution capacity lives on the workers); QueueDepth
	// bounds the concurrent dispatches.
	Fleet bool
	// CacheDir, when set, adds a persistent disk layer under the LRU: every
	// finished result is written there as a self-verifying envelope and
	// misses read through it, so the content-addressed result space
	// survives restarts (see DiskStore). CacheDiskBytes bounds the
	// directory (default 1 GiB); past it the least-recently-used envelopes
	// are evicted.
	CacheDir       string
	CacheDiskBytes int64
	// Auth, when set, requires a bearer token on every /v1 endpoint and
	// maps each token to a tenant with its own fair-share weight, in-flight
	// quota, and submission rate limit (see auth.go). Nil leaves the daemon
	// open: every request is the unlimited default tenant.
	Auth *AuthConfig
	// PeerToken is the bearer token this daemon presents when calling other
	// daemons (a dispatcher submitting to its workers). Empty sends none.
	PeerToken string
	// HeartbeatInterval paces fleet liveness (dispatcher mode): workers are
	// expected to heartbeat at this interval, turn suspect after missing
	// ~2.5 intervals and dead after ~5, and the background liveness sweep
	// ticks at this rate (default 5s). Workers that never heartbeat (plain
	// -join registrations) keep the probe-based health of earlier releases.
	HeartbeatInterval time.Duration
	// JournalDir, when set, makes accepted jobs crash-durable: every job
	// lifecycle transition is appended to an fsync'd, self-verifying journal
	// there, and on start the daemon replays it — queued jobs re-enqueue,
	// in-flight jobs re-execute, and determinism plus the persistent result
	// store make the recovered outcomes byte-identical (see journal.go).
	JournalDir string
	// JobTimeout bounds each job execution (0 = unbounded): a job running
	// past it settles failed with a deadline error in the envelope. For
	// sweeps the bound applies per constituent point, matching the
	// cancellation granularity.
	JobTimeout time.Duration
	// DispatchRetries bounds how many worker-level failures one fleet
	// dispatch absorbs before the job fails (default 4). Between attempts
	// the dispatcher backs off exponentially from RetryBackoff (default
	// 100ms) capped at RetryBackoffMax (default 5s), with seeded ±50%
	// jitter.
	DispatchRetries int
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// NoWorkerWait is how long a fleet job waits for a dispatchable worker
	// before failing (default 30s; negative = fail immediately). Graceful
	// degradation: a fleet momentarily at zero workers — mid-restart, all
	// breakers tripped — holds jobs instead of failing them instantly.
	NoWorkerWait time.Duration
	// BreakerThreshold consecutive dispatch failures trip a worker's circuit
	// breaker (default 3); a tripped worker receives no dispatches for
	// BreakerCooldown (default 5s), then one half-open probe job decides
	// between revival and re-trip (see worker.go).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Faults, when set, threads the deterministic fault injector through the
	// dispatcher's worker RPC/SSE transport and the persistent store's
	// writes. Test instrumentation; nil in production.
	Faults *faults.Injector
}

// execution is the shared run state of one content-addressed job. Jobs that
// coalesce onto the same in-flight run share one execution; its condition
// variable broadcasts every observable change to the SSE streams.
type execution struct {
	mu      sync.Mutex
	cond    *sync.Cond
	status  string
	done    uint64 // retired tasks (sim jobs)
	total   uint64 // total tasks once known (sim jobs)
	logs    []string
	logBase int // index of logs[0] in the full log stream
	result  []byte
	errMsg  string
	version uint64 // bumped on every observable change

	// ctx cancels the execution cooperatively (DELETE /v1/jobs/{id});
	// cancel is idempotent and always called once the execution reaches a
	// terminal state. Cache-hit answers never run, so they carry neither.
	ctx    context.Context
	cancel context.CancelFunc
}

func newExecution(status string) *execution {
	e := &execution{status: status}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// newRunnableExecution returns a queued execution with a cancellation
// context attached (for jobs that will actually run, locally or remotely).
func newRunnableExecution() *execution {
	e := newExecution(StatusQueued)
	e.ctx, e.cancel = context.WithCancel(context.Background())
	return e
}

// transition moves status from → to atomically, waking watchers; it reports
// whether the move happened. A failed transition means another actor won the
// race (e.g. a cancel flipped a queued job before its worker popped it).
func (e *execution) transition(from, to string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.status != from {
		return false
	}
	e.status = to
	e.version++
	e.cond.Broadcast()
	return true
}

// set applies fn under the lock and wakes every watcher.
func (e *execution) set(fn func()) {
	e.mu.Lock()
	fn()
	e.version++
	e.cond.Broadcast()
	e.mu.Unlock()
}

// wake broadcasts without changing state (watchers re-check their
// contexts). The lock is required for the broadcast to be reliable: without
// it, a disconnect could land between a watcher's condition check and its
// cond.Wait and be lost, leaving the watcher blocked until the job's next
// state change.
func (e *execution) wake() {
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
}

// execSnapshot is a consistent copy of an execution's observable state.
type execSnapshot struct {
	status      string
	done, total uint64
	logs        []string // full retained log
	logBase     int
	result      []byte
	errMsg      string
	version     uint64
}

func (e *execution) snapshot() execSnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return execSnapshot{
		status: e.status, done: e.done, total: e.total,
		logs: e.logs, logBase: e.logBase,
		result: e.result, errMsg: e.errMsg, version: e.version,
	}
}

func (s execSnapshot) terminal() bool { return terminalStatus(s.status) }

// job is one submission: its own identity and spec, sharing an execution
// with any identical submissions it was coalesced with. Sweep points are
// also jobs (unregistered internal ones), which is what lets API submissions
// and sweep shards coalesce onto each other's executions.
type job struct {
	id        string
	spec      JobSpec
	key       string
	exec      *execution
	cached    bool     // answered from the in-memory result cache
	coalesced bool     // attached to an identical in-flight run
	via       []string // dispatcher chain that routed the job here (fleet)

	// tenant is the submitting tenant (nil on internal sweep points); class
	// is the scheduling priority class; seq is the scheduler-assigned
	// arrival sequence.
	tenant *tenantState
	class  int
	seq    uint64
	// slotHeld marks that the job holds one of its tenant's in-flight
	// quota slots; released exactly once at settle or queued-cancel.
	slotHeld atomic.Bool

	// disk records that the result was served from the persistent store
	// at execution time. Atomic because it is set by the running worker
	// while status endpoints may already be reading the job.
	disk atomic.Bool
}

// Server is the tssd daemon: an http.Handler plus the worker pool and
// result cache behind it. Create with New, serve via Handler, and Close when
// done.
type Server struct {
	cfg      Config
	cache    *Cache
	disk     *DiskStore // non-nil when Config.CacheDir is set
	journal  *journal   // non-nil when Config.JournalDir is set
	mux      *http.ServeMux
	fleet    *fleet // non-nil in dispatcher mode
	instance string // unique per-process daemon identity (see handleHealthz)

	// sched is the weighted fair-share intake between accepted submissions
	// and the worker pool (local mode) or dispatch pump (fleet mode).
	sched *scheduler
	// tokens maps bearer tokens to tenants (empty = open daemon);
	// tenantOrder is the deterministic /stats ordering; defaultTenant is
	// the identity of unauthenticated deployments.
	tokens        map[string]*tenantState
	tenantOrder   []*tenantState
	defaultTenant *tenantState

	wg sync.WaitGroup

	mu        sync.Mutex
	closed    bool
	jobs      map[string]*job
	order     []string        // job IDs in submission order
	inflight  map[string]*job // key → primary job currently queued/running
	nextID    uint64
	submitted uint64 // accepted submissions, journal-replayed jobs included
	coalesced uint64
	completed uint64
	failed    uint64
	cancelled uint64
	cacheHits uint64 // submissions answered from the in-memory cache
	diskHits  uint64 // submissions answered from the persistent store
	shard     ShardStats
}

// New starts a server: its workers are running on return. The error paths
// are a Config.CacheDir that cannot be opened and an invalid Config.Auth.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.MaxLogLines <= 0 {
		cfg.MaxLogLines = 4096
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4096
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 5 * time.Second
	}
	if cfg.DispatchRetries <= 0 {
		cfg.DispatchRetries = 4
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.RetryBackoffMax <= 0 {
		cfg.RetryBackoffMax = 5 * time.Second
	}
	switch {
	case cfg.NoWorkerWait == 0:
		cfg.NoWorkerWait = 30 * time.Second
	case cfg.NoWorkerWait < 0:
		cfg.NoWorkerWait = 0
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	s := &Server{
		cfg:           cfg,
		cache:         NewCache(cfg.CacheEntries, cfg.CacheBytes),
		sched:         newScheduler(cfg.QueueDepth),
		tokens:        make(map[string]*tenantState),
		defaultTenant: newTenantState(TenantConfig{Name: DefaultTenant}),
		jobs:          make(map[string]*job),
		inflight:      make(map[string]*job),
		instance:      newInstanceID(),
	}
	if cfg.Auth != nil {
		if err := cfg.Auth.Validate(); err != nil {
			return nil, err
		}
		for _, tc := range cfg.Auth.Tenants {
			t := newTenantState(tc)
			s.tokens[tc.Token] = t
			s.tenantOrder = append(s.tenantOrder, t)
		}
	} else {
		s.tenantOrder = []*tenantState{s.defaultTenant}
	}
	if cfg.CacheDir != "" {
		var err error
		s.disk, err = OpenDiskStore(cfg.CacheDir, cfg.CacheDiskBytes)
		if err != nil {
			return nil, err
		}
		s.disk.SetFaults(cfg.Faults)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.protect(s.handleSubmit))
	s.mux.HandleFunc("GET /v1/jobs", s.protect(s.handleList))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.protect(s.handleJob))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.protect(s.handleCancel))
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.protect(s.handleResult))
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.protect(s.handleEvents))
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	// Open and replay the journal before any worker or pump goroutine
	// exists: recovered jobs are queued (in original ID order) ahead of the
	// first pick, and no settle can race the replay.
	if cfg.JournalDir != "" {
		jl, live, err := openJournal(cfg.JournalDir)
		if err != nil {
			return nil, err
		}
		s.journal = jl
		s.replayJournal(live)
	}
	if cfg.Fleet {
		s.fleet = newFleet(s)
		s.mux.HandleFunc("POST /v1/workers", s.protect(s.fleet.handleJoin))
		s.mux.HandleFunc("POST /v1/workers/heartbeat", s.protect(s.fleet.handleHeartbeat))
		s.mux.HandleFunc("GET /v1/workers", s.protect(s.fleet.handleList))
		s.mux.HandleFunc("DELETE /v1/workers/{id}", s.protect(s.fleet.handleLeave))
		s.mux.HandleFunc("POST /v1/workers/{id}/drain", s.protect(s.fleet.handleDrain))
		s.mux.HandleFunc("DELETE /v1/workers/{id}/drain", s.protect(s.fleet.handleUndrain))
		// Execution capacity lives on the workers; one pump goroutine pulls
		// the scheduler's fair-share picks and fans them out.
		s.wg.Add(1)
		go s.fleet.pump()
		return s, nil
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Instance returns the daemon's unique per-process identity (the same value
// /healthz reports); fleet workers send it with their heartbeats.
func (s *Server) Instance() string { return s.instance }

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close rejects further submissions and waits for the workers (or, in fleet
// mode, the in-flight dispatches) to drain. In-flight jobs finish; queued
// jobs still run (the queue is drained, not dropped). Safe to call once.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	if s.fleet != nil {
		close(s.fleet.stop)
	}
	s.sched.close()
	s.wg.Wait()
	s.journal.Close()
}

// Kill simulates a crash: where Close drains, Kill halts. The journal and
// the persistent store stop persisting (writes issued after a power cut
// never land), queued jobs are dropped on the floor, and in-flight
// executions are cancelled so their goroutines exit without settling
// durably. A new Server opened on the same JournalDir/CacheDir recovers
// every job that had not durably settled — the crash/recovery contract the
// chaos suite asserts.
func (s *Server) Kill() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	inflight := make([]*execution, 0, len(s.inflight))
	for _, j := range s.inflight {
		inflight = append(inflight, j.exec)
	}
	s.mu.Unlock()
	// Halt durability first: nothing that happens after the "crash instant"
	// may reach the journal or the store.
	s.journal.halt()
	if s.disk != nil {
		s.disk.halt()
	}
	if s.fleet != nil {
		close(s.fleet.stop)
	}
	s.sched.abort()
	for _, e := range inflight {
		if e.cancel != nil {
			e.cancel()
		}
	}
	s.wg.Wait()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.sched.next()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// runJob executes a primary job on the local pool and publishes its outcome
// to the shared execution, the cache, and the server counters.
func (s *Server) runJob(j *job) {
	e := j.exec
	if !e.transition(StatusQueued, StatusRunning) {
		// Cancelled while queued: the cancel handler already published
		// the terminal state and released the inflight slot; just free
		// the worker.
		return
	}
	s.journalStart(j)
	// Read through the persistent store before simulating anything: a
	// result that survived a restart answers the job without a run — which
	// is also what makes journal replay duplicate-free for work that
	// settled into the store before a crash.
	if result, ok := s.diskGet(j.key); ok {
		s.finishJobFromDisk(j, result)
		return
	}

	var result []byte
	var err error
	switch j.spec.Kind {
	case KindSim:
		ctx, cancel := s.execCtx(e)
		result, err = runSim(ctx, j.spec.Sim, func(done, total uint64) {
			e.set(func() { e.done, e.total = done, total })
		})
		cancel()
		err = s.deadlineErr(e, err)
	case KindSweep:
		s.runShardedSweep(j)
		return
	default:
		err = fmt.Errorf("unknown job kind %q", j.spec.Kind)
	}
	s.finishJob(j, result, err)
}

// execCtx derives the context an execution runs under: its cancel context,
// bounded by the per-job deadline when one is configured.
func (s *Server) execCtx(e *execution) (context.Context, context.CancelFunc) {
	if s.cfg.JobTimeout <= 0 {
		return e.ctx, func() {}
	}
	return context.WithTimeout(e.ctx, s.cfg.JobTimeout)
}

// deadlineErr rewrites a per-job deadline expiry into an explicit envelope
// message. The parent execution context is still live in that case, so
// settle classifies the job failed (not cancelled) — a deadline is the
// server's verdict, not the client's request.
func (s *Server) deadlineErr(e *execution, err error) error {
	if err != nil && errors.Is(err, context.DeadlineExceeded) && (e.ctx == nil || e.ctx.Err() == nil) {
		return fmt.Errorf("job exceeded its %s deadline (-job-timeout): %w", s.cfg.JobTimeout, err)
	}
	return err
}

// diskGet reads through the persistent store (a no-op without -cache-dir),
// promoting hits into the in-memory LRU so repeats stay off the disk.
func (s *Server) diskGet(key string) ([]byte, bool) {
	if s.disk == nil {
		return nil, false
	}
	b, ok := s.disk.Get(key)
	if ok {
		s.cache.Put(key, b)
	}
	return b, ok
}

// appendLog appends one log line to an execution, trimming to the retention
// bound and waking the SSE watchers.
func (s *Server) appendLog(e *execution, line string) {
	e.set(func() {
		e.logs = append(e.logs, line)
		if over := len(e.logs) - s.cfg.MaxLogLines; over > 0 {
			e.logs = e.logs[over:]
			e.logBase += over
		}
	})
}

// settle publishes an execution's terminal state exactly once: done with its
// result on success, cancelled when the execution's context was cancelled,
// failed otherwise. It stores successful results in both cache layers (the
// disk write is skipped when the result just came from there), releases the
// key's inflight slot, and returns the terminal status it published — or ""
// when the execution was already terminal (a cancel flipped it while
// queued), which is what makes status transitions idempotent under every
// race. Counter updates are the callers' job: API submissions go through
// finishJob/finishJobFromDisk; internal sweep points call settle directly
// and account themselves in ShardStats.
func (s *Server) settle(j *job, result []byte, err error, fromDisk bool) string {
	e := j.exec
	status := StatusDone
	if err != nil {
		if errors.Is(err, context.Canceled) || (e.ctx != nil && e.ctx.Err() != nil) {
			status = StatusCancelled
		} else {
			status = StatusFailed
		}
	}

	e.mu.Lock()
	if terminalStatus(e.status) {
		e.mu.Unlock()
		return ""
	}
	switch status {
	case StatusDone:
		e.result = result
	default:
		e.errMsg = err.Error()
	}
	e.status = status
	e.version++
	e.cond.Broadcast()
	e.mu.Unlock()
	if e.cancel != nil {
		e.cancel()
	}

	if status == StatusDone {
		s.cache.Put(j.key, result)
		if s.disk != nil && !fromDisk {
			s.disk.Put(j.key, result)
		}
	}
	s.mu.Lock()
	if p := s.inflight[j.key]; p != nil && p.exec == e {
		delete(s.inflight, j.key)
	}
	// Journal the settlement under the same s.mu hold that releases the
	// inflight slot: accepts are journaled under s.mu too, so a new
	// submission of this key can never have its accept record cleared by
	// this (earlier) settle. Keys never journaled (internal sweep points)
	// write nothing.
	s.journal.settleKey(j.key, status)
	s.mu.Unlock()
	return status
}

// releaseSlot returns the job's tenant quota slot, exactly once.
func (s *Server) releaseSlot(j *job) {
	if j.tenant != nil && j.slotHeld.CompareAndSwap(true, false) {
		j.tenant.releaseSlot()
	}
}

// finishJob settles a primary API job, updates the terminal-state counters,
// releases the tenant's quota slot, and re-checks the registry bound so a
// burst that finishes after its submissions still converges to MaxJobs.
func (s *Server) finishJob(j *job, result []byte, err error) {
	status := s.settle(j, result, err, false)
	if status == "" {
		return
	}
	s.releaseSlot(j)
	s.mu.Lock()
	switch status {
	case StatusDone:
		s.completed++
		if j.tenant != nil {
			j.tenant.noteCompleted()
		}
	case StatusFailed:
		s.failed++
	case StatusCancelled:
		s.cancelled++
	}
	s.evictJobsLocked()
	s.mu.Unlock()
}

// finishJobFromDisk settles a primary API job whose result was read from the
// persistent store: the job counts as a disk hit, not a completion, keeping
// the conservation invariant (every settled submission is exactly one of
// completed, failed, cancelled, coalesced, cache hit, or disk hit).
func (s *Server) finishJobFromDisk(j *job, result []byte) {
	if s.settle(j, result, nil, true) == "" {
		return
	}
	s.releaseSlot(j)
	j.disk.Store(true)
	s.mu.Lock()
	s.diskHits++
	s.evictJobsLocked()
	s.mu.Unlock()
}

// SubmitStatus is the response to POST /v1/jobs and the per-job body of the
// job and list endpoints.
type SubmitStatus struct {
	// ID names the job for the polling and SSE endpoints.
	ID string `json:"id"`
	// Kind echoes the spec's kind.
	Kind string `json:"kind"`
	// Key is the job's content address (hex SHA-256 of the normalized
	// spec; see JobSpec.Key).
	Key string `json:"key"`
	// Status is queued, running, or one of the terminal states: done,
	// failed, or cancelled.
	Status string `json:"status"`
	// Tenant is the submitting tenant; Priority is the scheduling class
	// (interactive or bulk).
	Tenant   string `json:"tenant,omitempty"`
	Priority string `json:"priority,omitempty"`
	// Cached reports that the result was served from the cache without
	// re-simulating.
	Cached bool `json:"cached"`
	// Coalesced reports that the submission attached to an identical
	// in-flight run instead of starting its own.
	Coalesced bool `json:"coalesced"`
	// Done/Total report task-retirement progress for sim jobs.
	Done  uint64 `json:"done"`
	Total uint64 `json:"total"`
	// Error is the failure message for failed jobs.
	Error string `json:"error,omitempty"`
	// Result is the canonical result payload, present once done.
	Result json.RawMessage `json:"result,omitempty"`
}

func (s *Server) statusOf(j *job) SubmitStatus {
	snap := j.exec.snapshot()
	st := SubmitStatus{
		ID: j.id, Kind: j.spec.Kind, Key: j.key,
		Status: snap.status, Cached: j.cached || j.disk.Load(), Coalesced: j.coalesced,
		Done: snap.done, Total: snap.total, Error: snap.errMsg,
		Priority: j.spec.Priority,
	}
	if j.tenant != nil {
		st.Tenant = j.tenant.name
	}
	if snap.status == StatusDone {
		st.Result = snap.result
	}
	return st
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := s.requestTenant(r)
	// Submission rate limit: counted per request, before any work is done
	// on its behalf (coalesced and cache-hit submissions are submissions
	// too — the limit protects the daemon, not just the workers).
	if !tenant.allowRate(time.Now()) {
		writeError(w, http.StatusTooManyRequests, CodeRateLimited,
			"tenant %q exceeded its submission rate (%.3g/s)", tenant.name, tenant.ratePerSec)
		return
	}
	var via []string
	if h := r.Header.Get(DispatchPathHeader); h != "" {
		via = strings.Split(h, ",")
		for _, inst := range via {
			if inst == s.instance {
				// The job has already passed through this daemon: the
				// fleet topology contains a dispatch cycle (dispatchers
				// registered as each other's workers). Accepting it would
				// coalesce the job with itself and hang both ends.
				writeError(w, http.StatusBadRequest, CodeDispatchLoop,
					"dispatch loop detected: this daemon is already in the job's dispatch path")
				return
			}
		}
	}
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad job spec: %v", err)
		return
	}
	if err := spec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid job: %v", err)
		return
	}
	key := spec.Key()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "server shutting down")
		return
	}
	j := &job{spec: spec, key: key, via: via, tenant: tenant, class: classOf(spec.Priority)}
	if primary, ok := s.inflight[key]; ok {
		// Identical spec already queued or running: share its execution.
		// No quota slot: the submission occupies no worker of its own.
		j.exec = primary.exec
		j.coalesced = true
		s.coalesced++
		s.submitted++
		tenant.noteSubmitted()
		s.register(j)
		// Coalesced submissions are journaled too (with their own spec):
		// replay re-groups live ids by key, so after a crash the coalesced
		// job re-attaches to — or, if alone, becomes — the key's primary.
		s.journalAccept(j)
		s.mu.Unlock()
	} else if result, ok := s.cache.Get(key); ok {
		// Content-addressed hit: answer without simulating. (The
		// persistent store is deliberately not consulted here — disk I/O
		// stays off the submit path; a worker checks it at execution
		// start instead.)
		j.exec = newExecution(StatusDone)
		j.exec.result = result
		j.cached = true
		s.cacheHits++
		s.submitted++
		tenant.noteSubmitted()
		s.register(j)
		s.mu.Unlock()
	} else {
		// The job will occupy execution capacity: charge the tenant's
		// in-flight quota, then hand it to the fair-share scheduler. The
		// worker pool (or, in fleet mode, the dispatch pump) picks it up
		// in weighted fair order rather than FIFO.
		if !tenant.acquireSlot() {
			s.mu.Unlock()
			writeError(w, http.StatusTooManyRequests, CodeQuotaExceeded,
				"tenant %q is at its in-flight job quota (%d)", tenant.name, tenant.maxInflight)
			return
		}
		j.slotHeld.Store(true)
		j.exec = newRunnableExecution()
		// Register and journal before the enqueue: the accept record must be
		// durable before any worker can pop the job, or a fast settle could
		// land in the journal ahead of its own accept. All under one s.mu
		// hold, so a worker that pops the job immediately still blocks on
		// s.mu in settle until the job is fully recorded.
		s.register(j)
		s.journalAccept(j)
		if !s.sched.enqueue(j) {
			// Roll the registration back: the job never became runnable.
			s.journal.settleKey(key, StatusFailed)
			delete(s.jobs, j.id)
			s.order = s.order[:len(s.order)-1]
			s.nextID--
			s.releaseSlot(j)
			s.mu.Unlock()
			writeError(w, http.StatusServiceUnavailable, CodeQueueFull,
				"job queue full (%d pending)", s.cfg.QueueDepth)
			return
		}
		s.submitted++
		tenant.noteSubmitted()
		s.inflight[key] = j
		s.mu.Unlock()
	}

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(s.statusOf(j))
}

// register assigns the job its ID and records it; caller holds s.mu.
func (s *Server) register(j *job) {
	s.nextID++
	j.id = fmt.Sprintf("job-%d", s.nextID)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictJobsLocked()
}

// evictJobsLocked drops the oldest terminal job records (and with them the
// result bytes their executions pin) once the registry exceeds MaxJobs, so
// daemon memory is bounded by the LRU cache plus MaxJobs records rather
// than growing with the submission history. Non-terminal jobs are never
// evicted. Caller holds s.mu.
func (s *Server) evictJobsLocked() {
	excess := len(s.jobs) - s.cfg.MaxJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j.exec.snapshot().terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no such job %q", r.PathValue("id"))
		return nil
	}
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.statusOf(j))
}

// handleCancel implements DELETE /v1/jobs/{id}: cooperative, idempotent
// cancellation. A queued job flips straight to cancelled (it will be skipped
// when a worker pops it); a running job has its context cancelled, and the
// engine loop abandons the run within one cancellation-poll interval (a
// dispatched job is also cancelled on its remote worker, best effort); a
// terminal job — done, failed, or already cancelled — is left untouched.
// The response is always the job's current status, so repeated DELETEs
// observe a stable terminal state. Cancelling any submission that coalesced
// onto a shared execution cancels that execution for every submission
// attached to it.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	e := j.exec

	cancelledNow := false
	e.mu.Lock()
	if e.status == StatusQueued {
		e.status = StatusCancelled
		e.errMsg = "cancelled before execution"
		e.version++
		e.cond.Broadcast()
		cancelledNow = true
	}
	e.mu.Unlock()
	if e.cancel != nil {
		e.cancel() // idempotent; running executions observe it cooperatively
	}
	if cancelledNow {
		var primary *job
		s.mu.Lock()
		if p := s.inflight[j.key]; p != nil && p.exec == e {
			delete(s.inflight, j.key)
			primary = p
		}
		// A queued cancel bypasses settle, so the journal settle lands here:
		// cancelling any submission of the key cancels them all, and none
		// must replay after a crash.
		s.journal.settleKey(j.key, StatusCancelled)
		s.cancelled++
		s.evictJobsLocked()
		s.mu.Unlock()
		if primary != nil {
			// The primary never reaches finishJob (a worker popping it just
			// skips it), so its tenant quota slot is returned here.
			s.releaseSlot(primary)
		}
	}

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.statusOf(j))
}

// handleList implements GET /v1/jobs?status=&tenant=&limit=&after=: the
// operator's queue-inspection endpoint. Jobs come back in submission order
// with deterministic cursor pagination: `after` is a job ID and the page
// resumes strictly after it, so walking pages while jobs settle never skips
// or repeats a job that existed when the walk started (evicted records are
// simply absent). Status and tenant filters apply before pagination.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	statusFilter := q.Get("status")
	if statusFilter != "" {
		switch statusFilter {
		case StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCancelled:
		default:
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				"unknown status filter %q", statusFilter)
			return
		}
	}
	tenantFilter := q.Get("tenant")
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	if limit > 1000 {
		limit = 1000
	}
	afterSeq := uint64(0)
	if v := q.Get("after"); v != "" {
		n, ok := jobIDSeq(v)
		if !ok {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "bad cursor %q", v)
			return
		}
		afterSeq = n
	}

	s.mu.Lock()
	list := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if n, _ := jobIDSeq(j.id); n <= afterSeq && afterSeq > 0 {
			continue
		}
		if tenantFilter != "" && (j.tenant == nil || j.tenant.name != tenantFilter) {
			continue
		}
		list = append(list, j)
	}
	s.mu.Unlock()

	out := JobList{Jobs: make([]SubmitStatus, 0, limit)}
	for i, j := range list {
		st := s.statusOf(j)
		if statusFilter != "" && st.Status != statusFilter {
			continue
		}
		st.Result = nil // listings stay light; fetch per job
		out.Jobs = append(out.Jobs, st)
		if len(out.Jobs) == limit {
			if i < len(list)-1 {
				out.NextAfter = j.id
			}
			break
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// jobIDSeq parses the numeric suffix of a job ID ("job-17" → 17).
func jobIDSeq(id string) (uint64, bool) {
	const prefix = "job-"
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	n, err := strconv.ParseUint(id[len(prefix):], 10, 64)
	return n, err == nil
}

// handleResult serves the raw canonical result bytes — the byte-identity
// surface: these bytes are exactly what RunSpec produces for the same spec.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	snap := j.exec.snapshot()
	switch snap.status {
	case StatusDone:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Tssd-Cached", fmt.Sprintf("%v", j.cached))
		w.Write(snap.result)
	case StatusFailed:
		writeError(w, http.StatusConflict, CodeJobFailed, "job failed: %s", snap.errMsg)
	case StatusCancelled:
		writeError(w, http.StatusConflict, CodeJobCancelled, "job cancelled: %s", snap.errMsg)
	default:
		writeError(w, http.StatusConflict, CodeNotReady, "job is %s; result not available yet", snap.status)
	}
}

// handleEvents streams the job over Server-Sent Events: a status event on
// every transition, progress events for sim jobs, log events for sweep
// jobs, and a terminal result or error event (see docs/SERVICE.md).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, CodeInternal, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	e := j.exec
	// Wake the cond loop when the client goes away.
	ctx := r.Context()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			e.wake()
		case <-watchDone:
		}
	}()

	emit := func(event string, data any) {
		b, _ := json.Marshal(data)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	}

	var lastStatus string
	var lastDone uint64
	sentDone := false
	nextLog := 0
	for {
		snap := e.snapshot()
		if snap.status != lastStatus {
			lastStatus = snap.status
			emit("status", map[string]any{"id": j.id, "status": snap.status, "cached": j.cached})
		}
		if snap.total > 0 && (snap.done != lastDone || !sentDone) {
			lastDone, sentDone = snap.done, true
			emit("progress", map[string]any{"done": snap.done, "total": snap.total})
		}
		if nextLog < snap.logBase {
			nextLog = snap.logBase // lines rotated out before we read them
		}
		for ; nextLog-snap.logBase < len(snap.logs); nextLog++ {
			emit("log", map[string]any{"line": snap.logs[nextLog-snap.logBase]})
		}
		if snap.terminal() {
			switch snap.status {
			case StatusDone:
				fmt.Fprintf(w, "event: result\ndata: %s\n\n", snap.result)
			case StatusCancelled:
				emit("cancelled", map[string]any{"error": snap.errMsg})
			default:
				emit("error", map[string]any{"error": snap.errMsg})
			}
			fl.Flush()
			return
		}
		fl.Flush()

		e.mu.Lock()
		for e.version == snap.version && ctx.Err() == nil {
			e.cond.Wait()
		}
		e.mu.Unlock()
		if ctx.Err() != nil {
			return
		}
	}
}

// ServerStats is the body of GET /stats.
type ServerStats struct {
	// Workers is the job pool width; QueueDepth its submit bound.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// Submitted counts every accepted job; Completed/Failed/Cancelled
	// count finished primary executions by terminal state; Coalesced
	// counts submissions that attached to an identical in-flight run;
	// CacheHits/DiskHits count submissions answered from the in-memory
	// cache and the persistent store without running; Inflight is the
	// number of distinct executions currently queued or running. Every
	// settled submission is exactly one of completed, failed, cancelled,
	// coalesced, a cache hit, or a disk hit — the conservation invariant
	// the concurrency tests assert. (CacheHits is job-level: unlike
	// Cache.Hits it is not inflated by internal per-point lookups.)
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	Coalesced uint64 `json:"coalesced"`
	CacheHits uint64 `json:"cache_hits"`
	DiskHits  uint64 `json:"disk_hits"`
	Inflight  int    `json:"inflight"`
	// Sched reports the fair-share scheduler: queue depth overall and per
	// priority class, plus total dispatches.
	Sched SchedStats `json:"sched"`
	// Tenants reports per-tenant admission limits, counters, and queue
	// depths, in configuration order — rich enough to drive an autoscaler
	// (per-tenant backlog) or a quota dashboard.
	Tenants []TenantStats `json:"tenants"`
	// Shard reports sweep decomposition: how many constituent points were
	// resolved, and how (its own conservation invariant; see ShardStats).
	Shard ShardStats `json:"shard"`
	// Cache reports the result cache's occupancy and hit/miss/eviction
	// counters, including the persistent layer when configured.
	Cache CacheStats `json:"cache"`
	// Fleet reports dispatcher-mode state (nil on a plain daemon).
	Fleet *FleetStats `json:"fleet,omitempty"`
	// Journal reports crash-durability state (nil without -journal-dir).
	Journal *JournalStats `json:"journal,omitempty"`
}

// ShardStats counts sweep-point resolution outcomes. Every point a sharded
// sweep enumerates settles as exactly one of the outcome counters:
// Points == MemHits + DiskHits + Coalesced + Simulated + Inline + Failed
// once all sweeps have drained.
type ShardStats struct {
	// Points counts every constituent simulation a sharded sweep asked
	// the resolver for.
	Points uint64 `json:"points"`
	// MemHits/DiskHits count points answered from the in-memory cache and
	// the persistent store; Coalesced counts points that attached to an
	// identical in-flight execution (another sweep's point or an API sim
	// job); Simulated counts points actually executed (locally or on a
	// fleet worker); Inline counts points whose machine configuration is
	// not expressible as a sim spec, run inside the sweep without caching;
	// Failed counts points whose resolution errored.
	MemHits   uint64 `json:"mem_hits"`
	DiskHits  uint64 `json:"disk_hits"`
	Coalesced uint64 `json:"coalesced"`
	Simulated uint64 `json:"simulated"`
	Inline    uint64 `json:"inline"`
	Failed    uint64 `json:"failed"`
}

// Stats snapshots the daemon counters (also served on /stats).
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	st := ServerStats{
		Workers:    s.cfg.Workers,
		QueueDepth: s.cfg.QueueDepth,
		Submitted:  s.submitted,
		Completed:  s.completed,
		Failed:     s.failed,
		Cancelled:  s.cancelled,
		Coalesced:  s.coalesced,
		CacheHits:  s.cacheHits,
		DiskHits:   s.diskHits,
		Inflight:   len(s.inflight),
		Shard:      s.shard,
	}
	s.mu.Unlock()
	byTenant := make(map[string]*TenantStats, len(s.tenantOrder))
	st.Tenants = make([]TenantStats, len(s.tenantOrder))
	for i, t := range s.tenantOrder {
		st.Tenants[i] = t.snapshot()
		byTenant[t.name] = &st.Tenants[i]
	}
	st.Sched = s.sched.stats(byTenant)
	st.Cache = s.cache.Stats()
	if s.disk != nil {
		d := s.disk.Stats()
		st.Cache.Disk = &d
	}
	if s.fleet != nil {
		fs := s.fleet.stats()
		st.Fleet = &fs
	}
	if s.journal != nil {
		js := s.journal.stats()
		st.Journal = &js
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

// healthz is the body of GET /healthz. Instance uniquely identifies the
// daemon process; a fleet dispatcher compares it against its own on worker
// registration to reject a join that would dispatch jobs back to itself.
type healthz struct {
	OK       bool   `json:"ok"`
	Instance string `json:"instance"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(healthz{OK: true, Instance: s.instance})
}

// newInstanceID returns a random per-process daemon identity.
func newInstanceID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}
