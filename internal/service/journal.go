package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Crash durability: the journal is an append-only, fsync'd, self-verifying
// record of job lifecycle transitions. Every accepted API job appends an
// `accept` record (id, key, tenant, and the full normalized spec — enough to
// reconstruct the submission from nothing), execution start appends `start`,
// and terminal settlement appends `settle`. On daemon start the journal is
// replayed: jobs accepted but never settled are re-registered under their
// original IDs and re-enqueued — queued jobs simply run, in-flight jobs
// re-execute. Determinism plus the content-addressed result store make this
// sound: a re-executed job produces byte-identical results, and work that
// settled into the persistent store before the crash is answered from disk
// without a duplicate execution.
//
// Format: one record per line,
//
//	TSSDJNL1 <crc32-ieee-of-json, 8 hex digits> <json>\n
//
// fsync'd per append. The reader verifies magic and CRC per line and stops
// at the first bad record: a crash can tear only the tail, and a record that
// fails its checksum poisons trust in everything after it (a skipped settle
// would resurrect finished work; stopping merely re-runs unsettled work,
// which determinism makes free of harm). Settlement is recorded by *key*,
// clearing every live id coalesced onto that key in one record.
//
// The journal compacts itself — rewriting only live accepts, atomically —
// on every open and whenever the file grows well past the live set, so its
// size tracks the working set, not the submission history.

const (
	journalMagic    = "TSSDJNL1"
	journalFileName = "journal.log"
	// journalCompactMin and the 4× live-set factor bound file growth: a
	// compaction rewrites at most the live set, so amortized append cost
	// stays O(1) records.
	journalCompactMin = 1024
)

// Journal record ops.
const (
	journalOpAccept = "accept"
	journalOpStart  = "start"
	journalOpSettle = "settle"
	// journalOpMark preserves the highest job-ID sequence ever accepted
	// across compaction (which otherwise rewrites only live accepts): a
	// restarted daemon must never re-issue the ID of a settled job, or a
	// client polling a pre-crash ID could silently observe a different job.
	journalOpMark = "mark"
)

// journalRecord is one line of the journal. Accept records carry the whole
// submission; start records flip the Started flag of a live accept (carried
// forward through compaction so an operator can distinguish re-enqueued from
// re-executed work); settle records clear a key.
type journalRecord struct {
	Op      string          `json:"op"`
	ID      string          `json:"id,omitempty"`
	Key     string          `json:"key,omitempty"`
	Tenant  string          `json:"tenant,omitempty"`
	Spec    json.RawMessage `json:"spec,omitempty"`
	Status  string          `json:"status,omitempty"`
	Started bool            `json:"started,omitempty"`
	// Seq is the ID watermark carried by mark records.
	Seq uint64 `json:"seq,omitempty"`
}

// journal is the durable lifecycle log. All methods are safe for concurrent
// use; a nil *journal is valid everywhere and records nothing.
type journal struct {
	mu     sync.Mutex
	dir    string
	f      *os.File
	halted bool

	live      map[string]*journalRecord // id → live accept record
	byKey     map[string][]string       // key → live ids, append order
	recs      int                       // records in the file since last compaction
	watermark uint64                    // highest job-ID sequence ever accepted

	appends, settles, errs, corrupt uint64
	replayed                        int
}

func (jl *journal) path() string { return filepath.Join(jl.dir, journalFileName) }

// encodeJournalRecord renders one self-verifying journal line.
func encodeJournalRecord(rec *journalRecord) []byte {
	b, _ := json.Marshal(rec)
	return []byte(fmt.Sprintf("%s %08x %s\n", journalMagic, crc32.ChecksumIEEE(b), b))
}

// decodeJournalLine verifies one journal line and returns its record.
func decodeJournalLine(line []byte) (*journalRecord, error) {
	parts := bytes.SplitN(line, []byte(" "), 3)
	if len(parts) != 3 || string(parts[0]) != journalMagic || len(parts[1]) != 8 {
		return nil, fmt.Errorf("journal: malformed record framing")
	}
	var crc uint32
	if _, err := fmt.Sscanf(string(parts[1]), "%08x", &crc); err != nil {
		return nil, fmt.Errorf("journal: bad checksum field: %w", err)
	}
	if crc32.ChecksumIEEE(parts[2]) != crc {
		return nil, fmt.Errorf("journal: checksum mismatch")
	}
	var rec journalRecord
	if err := json.Unmarshal(parts[2], &rec); err != nil {
		return nil, fmt.Errorf("journal: bad record body: %w", err)
	}
	return &rec, nil
}

// openJournal opens (creating if needed) the journal under dir, replays its
// records into the live set, compacts the file, and returns the journal plus
// the live accept records sorted by job ID sequence.
func openJournal(dir string) (*journal, []*journalRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal dir: %w", err)
	}
	jl := &journal{
		dir:   dir,
		live:  make(map[string]*journalRecord),
		byKey: make(map[string][]string),
	}
	if b, err := os.ReadFile(jl.path()); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(b))
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			rec, err := decodeJournalLine(line)
			if err != nil {
				// Torn or corrupt: everything from here on is untrusted.
				jl.corrupt++
				break
			}
			jl.applyLocked(rec)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}

	live := jl.liveRecordsLocked()
	// Compact on open: the rewritten file is exactly the unsettled set, and
	// the atomic rename doubles as the durability point for the directory.
	if err := jl.compactLocked(); err != nil {
		return nil, nil, err
	}
	return jl, live, nil
}

// applyLocked folds one record into the live set.
func (jl *journal) applyLocked(rec *journalRecord) {
	switch rec.Op {
	case journalOpAccept:
		if rec.ID == "" || rec.Key == "" {
			return
		}
		if seq, ok := jobIDSeq(rec.ID); ok && seq > jl.watermark {
			jl.watermark = seq
		}
		if _, ok := jl.live[rec.ID]; ok {
			return // duplicate accept; first wins
		}
		jl.live[rec.ID] = rec
		jl.byKey[rec.Key] = append(jl.byKey[rec.Key], rec.ID)
	case journalOpMark:
		if rec.Seq > jl.watermark {
			jl.watermark = rec.Seq
		}
	case journalOpStart:
		if r, ok := jl.live[rec.ID]; ok {
			r.Started = true
		}
	case journalOpSettle:
		for _, id := range jl.byKey[rec.Key] {
			delete(jl.live, id)
		}
		delete(jl.byKey, rec.Key)
	}
	jl.recs++
}

// liveRecordsLocked returns the live accepts sorted by job ID sequence — the
// replay order, which re-registers jobs exactly as they were first accepted.
func (jl *journal) liveRecordsLocked() []*journalRecord {
	live := make([]*journalRecord, 0, len(jl.live))
	for _, rec := range jl.live {
		live = append(live, rec)
	}
	sort.Slice(live, func(i, j int) bool {
		a, _ := jobIDSeq(live[i].ID)
		b, _ := jobIDSeq(live[j].ID)
		return a < b
	})
	return live
}

// compactLocked atomically rewrites the journal to just the live accepts and
// reopens it for appending, fsyncing the file before rename and the
// directory after.
func (jl *journal) compactLocked() error {
	if jl.f != nil {
		jl.f.Close()
		jl.f = nil
	}
	tmp, err := os.CreateTemp(jl.dir, ".journal-*")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var buf bytes.Buffer
	if jl.watermark > 0 {
		buf.Write(encodeJournalRecord(&journalRecord{Op: journalOpMark, Seq: jl.watermark}))
	}
	for _, rec := range jl.liveRecordsLocked() {
		buf.Write(encodeJournalRecord(rec))
	}
	if _, err := tmp.Write(buf.Bytes()); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), jl.path()); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: %w", err)
	}
	syncDir(jl.dir)
	f, err := os.OpenFile(jl.path(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	jl.f = f
	jl.recs = len(jl.live)
	return nil
}

// append durably writes one record: fold into the live set, write the line,
// fsync. Append errors are counted, not fatal — a daemon with a dying disk
// keeps serving; it just loses crash durability from that point on.
func (jl *journal) append(rec *journalRecord) {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.halted || jl.f == nil {
		return
	}
	jl.applyLocked(rec)
	if _, err := jl.f.Write(encodeJournalRecord(rec)); err != nil {
		jl.errs++
		return
	}
	if err := jl.f.Sync(); err != nil {
		jl.errs++
		return
	}
	jl.appends++
	if jl.recs > journalCompactMin && jl.recs > 4*len(jl.live)+64 {
		if err := jl.compactLocked(); err != nil {
			jl.errs++
		}
	}
}

// accept records one accepted API submission.
func (jl *journal) accept(id, key, tenant string, spec json.RawMessage) {
	jl.append(&journalRecord{Op: journalOpAccept, ID: id, Key: key, Tenant: tenant, Spec: spec})
}

// start records that a job's execution began.
func (jl *journal) start(id string) {
	jl.append(&journalRecord{Op: journalOpStart, ID: id})
}

// settleKey records terminal settlement of every live job coalesced onto
// key. It writes nothing when no live job matches — internal sweep points
// settle through the same code path but were never journaled.
func (jl *journal) settleKey(key, status string) {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	hasLive := len(jl.byKey[key]) > 0
	jl.mu.Unlock()
	if !hasLive {
		return
	}
	jl.append(&journalRecord{Op: journalOpSettle, Key: key, Status: status})
	jl.mu.Lock()
	jl.settles++
	jl.mu.Unlock()
}

// seqWatermark is the highest job-ID sequence the journal has ever seen —
// settled jobs included — so a restarted daemon allocates fresh IDs only.
func (jl *journal) seqWatermark() uint64 {
	if jl == nil {
		return 0
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.watermark
}

// halt freezes the journal, simulating a crash: subsequent appends are
// silently discarded, exactly as writes issued after a power cut would be.
func (jl *journal) halt() {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	jl.halted = true
	if jl.f != nil {
		jl.f.Close()
		jl.f = nil
	}
	jl.mu.Unlock()
}

// Close flushes and closes the journal file.
func (jl *journal) Close() {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	if jl.f != nil {
		jl.f.Sync()
		jl.f.Close()
		jl.f = nil
	}
	jl.mu.Unlock()
}

// JournalStats is the journal section of GET /stats.
type JournalStats struct {
	// Dir is the journal directory; Live the unsettled job count.
	Dir  string `json:"dir"`
	Live int    `json:"live"`
	// Appended/Settled count durable record writes this process; Replayed is
	// how many jobs the daemon recovered at start; CorruptDropped counts
	// records discarded at open (torn tail); Errors counts append failures.
	Appended       uint64 `json:"appended"`
	Settled        uint64 `json:"settled"`
	Replayed       int    `json:"replayed"`
	CorruptDropped uint64 `json:"corrupt_dropped"`
	Errors         uint64 `json:"errors"`
}

func (jl *journal) stats() JournalStats {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return JournalStats{
		Dir: jl.dir, Live: len(jl.live),
		Appended: jl.appends, Settled: jl.settles,
		Replayed: jl.replayed, CorruptDropped: jl.corrupt, Errors: jl.errs,
	}
}

// syncDir fsyncs a directory, making a just-renamed file durable. Best
// effort: not every filesystem supports it, and the rename itself is already
// atomic.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// ---- Server integration -------------------------------------------------

// journalAccept records an accepted API job; caller holds s.mu (the same
// critical section that registered and enqueued it, so a settle racing in
// from a worker serializes after the accept).
func (s *Server) journalAccept(j *job) {
	if s.journal == nil {
		return
	}
	spec, err := json.Marshal(&j.spec)
	if err != nil {
		return
	}
	tenant := ""
	if j.tenant != nil {
		tenant = j.tenant.name
	}
	s.journal.accept(j.id, j.key, tenant, spec)
}

// journalStart records execution start for registered jobs (internal sweep
// points carry no id and are never journaled).
func (s *Server) journalStart(j *job) {
	if s.journal == nil || j.id == "" {
		return
	}
	s.journal.start(j.id)
}

// tenantByName resolves a journaled tenant name to its state for replay; an
// unknown name (auth table changed across the restart) falls back to the
// default tenant rather than dropping the job.
func (s *Server) tenantByName(name string) *tenantState {
	for _, t := range s.tenantOrder {
		if t.name == name {
			return t
		}
	}
	return s.defaultTenant
}

// replayJournal re-registers and re-enqueues every unsettled journaled job.
// Called from New before any worker or pump goroutine starts, so replayed
// jobs are queued before the first pick. Jobs are replayed in original ID
// order; the first live job of each key becomes the primary (new runnable
// execution, inflight slot, scheduler entry) and later ones coalesce onto
// it, reconstructing the exact sharing structure the crash interrupted.
// Replayed jobs bypass tenant quota and rate admission — they were admitted
// once already — but do count as submissions, so the conservation invariant
// (every submission settles into exactly one terminal bucket) spans replay.
func (s *Server) replayJournal(live []*journalRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range live {
		if _, ok := jobIDSeq(rec.ID); !ok {
			s.journal.settleKey(rec.Key, StatusFailed)
			continue
		}
		var spec JobSpec
		if err := json.Unmarshal(rec.Spec, &spec); err != nil || spec.Normalize() != nil {
			// Unreplayable (spec schema moved underneath it): settle it out
			// of the journal so it does not replay forever.
			s.journal.settleKey(rec.Key, StatusFailed)
			continue
		}
		key := spec.Key()
		if key != rec.Key {
			// The content address moved (simulator semantics changed across
			// the restart). Re-home the journal entry under the new key so a
			// future settle clears it.
			spec2, _ := json.Marshal(&spec)
			s.journal.settleKey(rec.Key, "rekeyed")
			s.journal.accept(rec.ID, key, rec.Tenant, spec2)
		}
		j := &job{
			id: rec.ID, spec: spec, key: key,
			tenant: s.tenantByName(rec.Tenant),
			class:  classOf(spec.Priority),
		}
		s.submitted++
		if primary, ok := s.inflight[key]; ok {
			j.exec = primary.exec
			j.coalesced = true
			s.coalesced++
		} else {
			j.exec = newRunnableExecution()
			if !s.sched.enqueue(j) {
				// Queue depth shrank below the journal's live set; leave the
				// job journaled (a later restart with capacity recovers it)
				// but surface it as failed now.
				j.exec.transition(StatusQueued, StatusFailed)
				j.exec.set(func() { j.exec.errMsg = "journal replay: queue full" })
				s.failed++
				s.jobs[j.id] = j
				s.order = append(s.order, j.id)
				s.journal.replayed++
				continue
			}
			s.inflight[key] = j
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.journal.replayed++
	}
	// Resume ID allocation past every ID the journal has ever seen — settled
	// jobs included — so a pre-crash ID is never reassigned to new work.
	if wm := s.journal.seqWatermark(); wm > s.nextID {
		s.nextID = wm
	}
	// Keep s.order sorted by ID sequence for pagination even if the journal
	// interleaved oddly.
	sort.Slice(s.order, func(i, k int) bool {
		a, _ := jobIDSeq(s.order[i])
		b, _ := jobIDSeq(s.order[k])
		return a < b
	})
}
