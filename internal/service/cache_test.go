package service

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(3, 1<<20)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	// Touch k0 so k1 becomes the LRU entry.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Put("k3", []byte{3})
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been evicted (LRU)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 3 entries / 1 eviction", st)
	}
	// 5 hits (k0 + the three survivors... k0 twice), 1 miss (k1).
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

func TestCacheByteBound(t *testing.T) {
	c := NewCache(100, 100)
	c.Put("a", make([]byte, 60))
	c.Put("b", make([]byte, 60)) // exceeds 100 bytes → evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted by the byte bound")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b should be cached")
	}
	// A value larger than the whole budget is refused outright.
	c.Put("huge", make([]byte, 200))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized value should not be cached")
	}
	if st := c.Stats(); st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d over budget %d", st.Bytes, st.MaxBytes)
	}
}

func TestCacheOverwriteKeepsBytesAccurate(t *testing.T) {
	c := NewCache(10, 1000)
	c.Put("k", make([]byte, 100))
	c.Put("k", make([]byte, 10))
	if st := c.Stats(); st.Bytes != 10 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 10 bytes / 1 entry", st)
	}
	v, ok := c.Get("k")
	if !ok || !bytes.Equal(v, make([]byte, 10)) {
		t.Fatal("overwritten value not returned")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(64, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%100)
				if v, ok := c.Get(k); ok && len(v) == 0 {
					t.Error("empty cached value")
					return
				}
				c.Put(k, []byte(k))
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > 64 {
		t.Fatalf("entry bound violated: %d", st.Entries)
	}
}
