package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// --- scheduler unit tests (no HTTP, no clock) ---

func schedTestJob(t *tenantState, class int, label string) *job {
	return &job{id: label, tenant: t, class: class, exec: newExecution(StatusQueued)}
}

// Weighted shares: two saturated tenants at weights 3:1 receive picks in a
// 3:1 ratio, deterministically, from start-time fair queueing.
func TestSchedulerWeightedShares(t *testing.T) {
	sc := newScheduler(1024)
	alpha := newTenantState(TenantConfig{Name: "alpha", Weight: 3})
	beta := newTenantState(TenantConfig{Name: "beta", Weight: 1})
	for i := 0; i < 200; i++ {
		if !sc.enqueue(schedTestJob(alpha, classBulk, fmt.Sprintf("a%d", i))) {
			t.Fatal("enqueue rejected")
		}
		if !sc.enqueue(schedTestJob(beta, classBulk, fmt.Sprintf("b%d", i))) {
			t.Fatal("enqueue rejected")
		}
	}
	counts := map[string]int{}
	for i := 0; i < 200; i++ {
		j := sc.next()
		counts[j.tenant.name]++
	}
	// 3:1 over 200 picks is exactly 150/50; allow ±2 for tag-tie boundary
	// effects at the start of the run.
	if counts["alpha"] < 148 || counts["alpha"] > 152 {
		t.Fatalf("alpha got %d of 200 picks, want ~150 (beta %d)", counts["alpha"], counts["beta"])
	}
}

// A tenant returning from idle banks no credit: its tag is floored to the
// virtual clock, so it resumes at its weighted share rather than burning a
// backlog of "owed" picks.
func TestSchedulerIdleTenantBanksNoCredit(t *testing.T) {
	sc := newScheduler(1024)
	alpha := newTenantState(TenantConfig{Name: "alpha", Weight: 3})
	beta := newTenantState(TenantConfig{Name: "beta", Weight: 1})
	// Beta idles while alpha alone receives 60 picks.
	for i := 0; i < 100; i++ {
		sc.enqueue(schedTestJob(alpha, classBulk, fmt.Sprintf("a%d", i)))
	}
	for i := 0; i < 60; i++ {
		if j := sc.next(); j.tenant != alpha {
			t.Fatal("pick from an empty tenant")
		}
	}
	// Beta returns with a backlog. Over the next 40 picks it must receive
	// ~10 (its 1/4 share), not dozens of catch-up picks.
	for i := 0; i < 40; i++ {
		sc.enqueue(schedTestJob(beta, classBulk, fmt.Sprintf("b%d", i)))
	}
	betaPicks := 0
	for i := 0; i < 40; i++ {
		if sc.next().tenant == beta {
			betaPicks++
		}
	}
	if betaPicks < 9 || betaPicks > 12 {
		t.Fatalf("beta got %d of 40 picks after idling, want ~10", betaPicks)
	}
}

// Within a tenant, interactive preempts bulk — but bulk wait is bounded:
// after bulkPromoteEvery consecutive interactive picks with bulk queued, the
// next pick is bulk.
func TestSchedulerPriorityPreemptionBoundedWait(t *testing.T) {
	sc := newScheduler(1024)
	tn := newTenantState(TenantConfig{Name: "solo"})
	for i := 0; i < 4; i++ {
		sc.enqueue(schedTestJob(tn, classBulk, fmt.Sprintf("bulk%d", i)))
	}
	for i := 0; i < 40; i++ {
		sc.enqueue(schedTestJob(tn, classInteractive, fmt.Sprintf("int%d", i)))
	}
	var order []int
	for i := 0; i < 44; i++ {
		order = append(order, sc.next().class)
	}
	// Interactive preempts the bulk jobs that arrived first.
	for i := 0; i < bulkPromoteEvery; i++ {
		if order[i] != classInteractive {
			t.Fatalf("pick %d is bulk; interactive must preempt queued bulk", i)
		}
	}
	// And bulk is promoted at the bound: no stretch of bulkPromoteEvery+1
	// consecutive interactive picks while bulk work remained queued.
	bulkSeen, run := 0, 0
	for i, cls := range order {
		if cls == classBulk {
			bulkSeen++
			run = 0
			continue
		}
		run++
		if bulkSeen < 4 && run > bulkPromoteEvery {
			t.Fatalf("bulk starved: %d consecutive interactive picks at pick %d", run, i)
		}
	}
	if bulkSeen != 4 {
		t.Fatalf("drained %d bulk jobs, want 4", bulkSeen)
	}
}

// The schedule is a pure function of (arrival sequence, tenant, priority):
// replaying the same enqueue sequence yields the identical pick order.
func TestSchedulerDeterministic(t *testing.T) {
	run := func() []string {
		sc := newScheduler(1024)
		ta := newTenantState(TenantConfig{Name: "a", Weight: 2})
		tb := newTenantState(TenantConfig{Name: "b", Weight: 1})
		tc := newTenantState(TenantConfig{Name: "c", Weight: 5})
		seqs := []struct {
			tn  *tenantState
			cls int
		}{
			{ta, classBulk}, {tb, classInteractive}, {tc, classBulk},
			{ta, classInteractive}, {tc, classInteractive}, {tb, classBulk},
		}
		n := 0
		for round := 0; round < 12; round++ {
			for _, s := range seqs {
				n++
				sc.enqueue(schedTestJob(s.tn, s.cls, fmt.Sprintf("j%d", n)))
			}
		}
		var order []string
		for i := 0; i < n; i++ {
			order = append(order, sc.next().id)
		}
		return order
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("pick %d differs between identical runs: %s vs %s", i, first[i], second[i])
		}
	}
}

// Closing the scheduler drains the queue (workers finish what was admitted)
// and then returns nil — the shutdown signal.
func TestSchedulerCloseDrains(t *testing.T) {
	sc := newScheduler(16)
	tn := newTenantState(TenantConfig{Name: "t"})
	for i := 0; i < 3; i++ {
		sc.enqueue(schedTestJob(tn, classInteractive, fmt.Sprintf("j%d", i)))
	}
	sc.close()
	if sc.enqueue(schedTestJob(tn, classInteractive, "late")) {
		t.Fatal("enqueue accepted after close")
	}
	for i := 0; i < 3; i++ {
		if sc.next() == nil {
			t.Fatalf("queue dropped on close: nil at drain pick %d", i)
		}
	}
	if sc.next() != nil {
		t.Fatal("next returned a job from an empty closed scheduler")
	}
}

// --- end-to-end scheduling acceptance ---

// The multi-tenant acceptance bar: two tenants at weights 3:1 saturating a
// 4-worker daemon converge to a 75%/25% completed-job share (±10%) while
// both stay backlogged.
func TestFairShareConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("saturates a worker pool for seconds")
	}
	auth := &AuthConfig{Tenants: []TenantConfig{
		{Name: "alpha", Token: "tok-alpha", Weight: 3},
		{Name: "beta", Token: "tok-beta", Weight: 1},
	}}
	_, cl := startDaemon(t, Config{Workers: 4, Auth: auth})
	clA := NewClient(cl.Base(), WithToken("tok-alpha"))
	clB := NewClient(cl.Base(), WithToken("tok-beta"))
	ctx := context.Background()

	// 48 alpha + 16 beta jobs, every spec distinct (no coalescing, no cache
	// hits), interleaved 3:1 so both tenants are backlogged from the start.
	submit := func(c *Client, seed int64) {
		t.Helper()
		if _, err := c.Submit(ctx, simSpec("cholesky", 6000, seed, 16)); err != nil {
			t.Fatal(err)
		}
	}
	var a, b int64
	for i := 0; i < 16; i++ {
		submit(clA, 1000+a)
		a++
		submit(clA, 1000+a)
		a++
		submit(clA, 1000+a)
		a++
		submit(clB, 2000+b)
		b++
	}
	for i := 0; i < 32; i++ {
		submit(clA, 1000+a)
		a++
	}

	// Sample completed counts mid-run: once ≥40 jobs finished, the share
	// must already reflect the 3:1 weights. (Beta still has jobs queued at
	// that point — 40 fair picks consume only 10 of its 16.)
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st, err := clA.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		var alphaDone, betaDone uint64
		for _, ts := range st.Tenants {
			switch ts.Name {
			case "alpha":
				alphaDone = ts.Completed
			case "beta":
				betaDone = ts.Completed
			}
		}
		total := alphaDone + betaDone
		if total >= 40 {
			share := float64(alphaDone) / float64(total)
			if share < 0.65 || share > 0.85 {
				t.Fatalf("alpha completed share %.2f (%d/%d), want 0.75±0.10", share, alphaDone, total)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d jobs completed before deadline", total)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// An interactive job submitted while bulk work is queued starts before any
// further queued bulk job: with one worker, the interactive job must settle
// before any of the bulk jobs that were queued ahead of it.
func TestInteractivePreemptsQueuedBulk(t *testing.T) {
	_, cl := startDaemon(t, Config{Workers: 1})
	ctx := context.Background()

	// Occupy the single worker. The job must still be running after all five
	// submissions below land (each HTTP round trip can take tens of
	// milliseconds while the worker saturates the host), so it is sized for
	// about a second of simulated work.
	first, err := cl.Submit(ctx, simSpec("cholesky", 60000, 101, 16))
	if err != nil {
		t.Fatal(err)
	}
	waitForStatus(t, cl, first.ID, StatusRunning)

	// Queue bulk work behind it. Each bulk job is also long: a bulk job that
	// (correctly) starts only after the interactive job settles must still be
	// visibly unfinished when the checks below poll it.
	var bulkIDs []string
	for i := int64(0); i < 4; i++ {
		spec := simSpec("cholesky", 60000, 201+i, 16)
		spec.Priority = PriorityBulk
		st, err := cl.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if st.Priority != PriorityBulk {
			t.Fatalf("bulk job echoed priority %q", st.Priority)
		}
		bulkIDs = append(bulkIDs, st.ID)
	}
	// ...then an interactive job, submitted last.
	inter, err := cl.Submit(ctx, simSpec("cholesky", 500, 301, 16))
	if err != nil {
		t.Fatal(err)
	}
	if inter.Priority != PriorityInteractive {
		t.Fatalf("sim job defaulted to priority %q, want interactive", inter.Priority)
	}

	fin, err := cl.Wait(ctx, inter.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Status != StatusDone {
		t.Fatalf("interactive job ended %s: %s", fin.Status, fin.Error)
	}
	// The interactive job is done; every bulk job queued before it must not
	// be (at most one can have started, after the interactive job finished).
	for _, id := range bulkIDs {
		st, err := cl.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == StatusDone {
			t.Fatalf("bulk job %s finished before the later interactive job", id)
		}
	}
	// Don't make the daemon drain ~3s of deliberately slow bulk work on
	// shutdown.
	for _, id := range bulkIDs {
		cl.Cancel(ctx, id) //nolint:errcheck // best-effort teardown
	}
}

// waitForStatus polls a job until it reaches want (failing on terminal
// mismatch or timeout).
func waitForStatus(t *testing.T, cl *Client, id, want string) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		st, err := cl.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == want {
			return
		}
		if terminalStatus(st.Status) || time.Now().After(deadline) {
			t.Fatalf("job %s is %s, want %s", id, st.Status, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// Priority is scheduling metadata only: the same spec at either priority has
// the same content address, so an interactive submission is answered from a
// result computed for a bulk one.
func TestPriorityExcludedFromKey(t *testing.T) {
	bulk := simSpec("cholesky", 500, 7, 16)
	bulk.Priority = PriorityBulk
	inter := simSpec("cholesky", 500, 7, 16)
	inter.Priority = PriorityInteractive
	if err := bulk.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := inter.Normalize(); err != nil {
		t.Fatal(err)
	}
	if bulk.Key() != inter.Key() {
		t.Fatal("priority leaked into the job key")
	}

	bad := simSpec("cholesky", 500, 7, 16)
	bad.Priority = "urgent"
	var apiErr *APIError
	_, cl := startDaemon(t, Config{Workers: 1})
	_, err := cl.Submit(context.Background(), bad)
	if !errors.As(err, &apiErr) || apiErr.Code != CodeBadRequest {
		t.Fatalf("unknown priority: got %v, want bad_request", err)
	}
}
