// Package service implements tssd, a long-running simulation-as-a-service
// daemon for the task superscalar reproduction.
//
// Clients submit jobs — a single simulation (one workload on one simulated
// machine) or a whole experiment sweep — as JSON over HTTP. Jobs run on a
// bounded worker pool and publish progress that clients observe either by
// polling the job resource or by subscribing to its Server-Sent-Events
// stream. Because every run is deterministic (see docs/ARCHITECTURE.md,
// "Determinism rules"), results are content-addressable: each normalized
// spec hashes to a key over (workload, machine config, seed, tss.SimVersion),
// identical submissions are answered byte-identically from a bounded LRU
// cache without re-simulating, and concurrent identical submissions coalesce
// onto a single execution.
//
// Jobs are cancelled cooperatively (DELETE /v1/jobs/{id}): queued jobs flip
// to cancelled immediately, running jobs stop within one engine
// cancellation-poll interval, and terminal jobs are untouched — the call is
// idempotent. In fleet mode (Config.Fleet) the same Server becomes a
// dispatcher: jobs fan out to remote worker daemons registered via
// POST /v1/workers, identical jobs coalesce across nodes, the dispatcher's
// cache answers repeats without touching a worker, and a job whose worker
// dies mid-run is retried elsewhere with byte-identical results.
//
// The HTTP API is documented in docs/SERVICE.md; cmd/tssd is the daemon
// binary and Client is the Go client used by the CLIs' -remote mode.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"tasksuperscalar/internal/experiments"
	"tasksuperscalar/internal/workloads"
	"tasksuperscalar/tss"
)

// SpecVersion versions the job-spec schema itself. It participates in every
// job key next to tss.SimVersion, so a spec-interpretation change can never
// alias a cached result produced under the old interpretation.
const SpecVersion = "tssd-spec/1"

// Job kinds.
const (
	KindSim   = "sim"   // one workload on one machine configuration
	KindSweep = "sweep" // one experiment from the internal/experiments registry
)

// JobSpec is the body of POST /v1/jobs: exactly one of Sim or Sweep is set,
// selected by Kind.
type JobSpec struct {
	// Kind is "sim" or "sweep".
	Kind string `json:"kind"`
	// Sim describes a single-simulation job (Kind "sim").
	Sim *SimSpec `json:"sim,omitempty"`
	// Sweep describes an experiment-sweep job (Kind "sweep").
	Sweep *SweepSpec `json:"sweep,omitempty"`
	// Priority is the scheduling class: "interactive" (default for sim
	// jobs) or "bulk" (default for sweep jobs). Within a tenant,
	// interactive jobs are picked before queued bulk jobs. Scheduling
	// metadata only — excluded from Key, so either priority addresses the
	// same cached result.
	Priority string `json:"priority,omitempty"`
}

// SimSpec is one deterministic simulation: a generated workload executed on
// one simulated machine. Omitted fields mean "server default" and are
// filled in by Normalize before hashing, so a defaulted field and its
// explicit default produce the same job key. Tasks and Seed are pointers so
// the wire format can distinguish "omitted" from an explicit zero — seed 0
// is a legitimate seed and must not silently become the default.
type SimSpec struct {
	// Workload is a Table I benchmark name (case-insensitive; see
	// internal/workloads). Normalized to its canonical capitalization.
	Workload string `json:"workload"`
	// Tasks is the approximate task budget (omitted: 3000; if given it
	// must be positive).
	Tasks *int `json:"tasks,omitempty"`
	// Seed drives deterministic workload generation (omitted: 42).
	Seed *int64 `json:"seed,omitempty"`
	// Machine shapes the simulated machine.
	Machine MachineSpec `json:"machine,omitempty"`
}

// MachineSpec is the wire form of tss.Config: the machine-shape knobs the
// service exposes. Unset fields take the paper's Table II defaults.
type MachineSpec struct {
	// Runtime is "hardware" (default), "software", or "sequential".
	Runtime string `json:"runtime,omitempty"`
	// Cores is the worker-core count (default 256).
	Cores int `json:"cores,omitempty"`
	// TRS is the number of task reservation stations (default 8).
	TRS int `json:"trs,omitempty"`
	// ORT is the number of ORT/OVT pairs (default 2).
	ORT int `json:"ort,omitempty"`
	// TRSKB is the eDRAM per TRS in KB (default 768).
	TRSKB int `json:"trs_kb,omitempty"`
	// ORTKB is the eDRAM per ORT in KB (default 256).
	ORTKB int `json:"ort_kb,omitempty"`
	// OVTKB is the eDRAM per OVT in KB (default: ORTKB, the paper's
	// symmetric sizing). Decoupling the two is what lets an ORT-capacity
	// sweep point (Figure 14 holds OVTs fixed while ORTs scale) be
	// expressed as a standalone sim spec.
	OVTKB int `json:"ovt_kb,omitempty"`
	// Memory enables the coherent memory hierarchy.
	Memory bool `json:"memory,omitempty"`
	// Policy is the backend dispatch policy (default "fifo"; see
	// tss.PolicyNames). Machine state, so it participates in the job key
	// through the config's canonical string.
	Policy string `json:"policy,omitempty"`
	// Classes partitions the worker cores into heterogeneous speed classes
	// (empty: homogeneous machine).
	Classes []tss.WorkerClass `json:"classes,omitempty"`
}

// SweepSpec is one experiment from the internal/experiments registry, run
// with the same options cmd/tsbench exposes.
type SweepSpec struct {
	// Experiment is the registry ID (table1, fig12 … chains).
	Experiment string `json:"experiment"`
	// Full runs at paper scale instead of quick mode.
	Full bool `json:"full,omitempty"`
	// Seed drives workload generation (omitted: 42; explicit 0 honored,
	// like SimSpec.Seed).
	Seed *int64 `json:"seed,omitempty"`
	// Cores is the largest machine size (default 256).
	Cores int `json:"cores,omitempty"`
	// Workers bounds the sweep's internal worker pool (default 1: inside
	// the daemon, cross-job parallelism comes from the job pool, so a
	// single sweep does not fan out unless asked to).
	Workers int `json:"workers,omitempty"`
	// Policy overrides the dispatch policy for every simulation in the
	// sweep that does not pin its own (default "fifo"). Part of the job
	// key: different policies produce different results.
	Policy string `json:"policy,omitempty"`
}

// Normalize fills defaults and canonicalizes names in place, then validates.
// A normalized spec is what Key hashes, so two specs that differ only in
// defaulted-vs-explicit fields or workload capitalization address the same
// cached result.
func (s *JobSpec) Normalize() error {
	switch s.Kind {
	case KindSim:
		if s.Sim == nil {
			return fmt.Errorf("kind %q requires a sim spec", s.Kind)
		}
		if s.Sweep != nil {
			return fmt.Errorf("kind %q must not carry a sweep spec", s.Kind)
		}
		if err := s.normalizePriority(PriorityInteractive); err != nil {
			return err
		}
		return s.Sim.normalize()
	case KindSweep:
		if s.Sweep == nil {
			return fmt.Errorf("kind %q requires a sweep spec", s.Kind)
		}
		if s.Sim != nil {
			return fmt.Errorf("kind %q must not carry a sim spec", s.Kind)
		}
		if err := s.normalizePriority(PriorityBulk); err != nil {
			return err
		}
		return s.Sweep.normalize()
	case "":
		return fmt.Errorf("missing job kind (want %q or %q)", KindSim, KindSweep)
	default:
		return fmt.Errorf("unknown job kind %q (want %q or %q)", s.Kind, KindSim, KindSweep)
	}
}

// normalizePriority fills the kind's default scheduling class and rejects
// unknown classes. Priority never reaches Key.
func (s *JobSpec) normalizePriority(def string) error {
	switch s.Priority {
	case "":
		s.Priority = def
	case PriorityInteractive, PriorityBulk:
	default:
		return fmt.Errorf("unknown priority %q (want %q or %q)",
			s.Priority, PriorityInteractive, PriorityBulk)
	}
	return nil
}

func (s *SimSpec) normalize() error {
	wl, ok := workloads.ByName(s.Workload)
	if !ok {
		return fmt.Errorf("unknown workload %q", s.Workload)
	}
	s.Workload = wl.Name
	if s.Tasks == nil {
		def := 3000
		s.Tasks = &def
	}
	if *s.Tasks < 1 {
		return fmt.Errorf("tasks must be positive, got %d", *s.Tasks)
	}
	if s.Seed == nil {
		def := int64(42)
		s.Seed = &def
	}
	m := &s.Machine
	if m.Runtime == "" {
		m.Runtime = "hardware"
	}
	switch m.Runtime {
	case "hardware", "software", "sequential":
	default:
		return fmt.Errorf("unknown runtime %q (want hardware, software, or sequential)", m.Runtime)
	}
	if m.Cores == 0 {
		m.Cores = 256
	}
	if m.TRS == 0 {
		m.TRS = 8
	}
	if m.ORT == 0 {
		m.ORT = 2
	}
	if m.TRSKB == 0 {
		m.TRSKB = 768
	}
	if m.ORTKB == 0 {
		m.ORTKB = 256
	}
	if m.OVTKB == 0 {
		m.OVTKB = m.ORTKB
	}
	if m.Policy == "" {
		m.Policy = tss.PolicyFIFO
	}
	return s.Config().Validate()
}

func (s *SweepSpec) normalize() error {
	if _, ok := experiments.Get(s.Experiment); !ok {
		return fmt.Errorf("unknown experiment %q", s.Experiment)
	}
	if s.Seed == nil {
		def := int64(42)
		s.Seed = &def
	}
	if s.Cores == 0 {
		s.Cores = 256
	}
	if s.Workers <= 0 {
		s.Workers = 1
	}
	if s.Policy == "" {
		s.Policy = tss.PolicyFIFO
	}
	if !validPolicyName(s.Policy) {
		return fmt.Errorf("unknown policy %q (have %v)", s.Policy, tss.PolicyNames())
	}
	return nil
}

// validPolicyName reports whether name is one of the built-in dispatch
// policies.
func validPolicyName(name string) bool {
	for _, p := range tss.PolicyNames() {
		if name == p {
			return true
		}
	}
	return false
}

// Config builds the tss machine configuration a normalized sim spec
// describes. The daemon never records per-task schedules (they are O(tasks)
// and not part of the result payload), so RecordSchedule is always off —
// clients verifying byte-identity against a direct run must build their
// config through this same method.
func (s *SimSpec) Config() tss.Config {
	cfg := tss.DefaultConfig().WithCores(s.Machine.Cores)
	switch s.Machine.Runtime {
	case "software":
		cfg.Runtime = tss.SoftwareRuntime
	case "sequential":
		cfg.Runtime = tss.Sequential
	default:
		cfg.Runtime = tss.HardwarePipeline
	}
	cfg.Frontend.NumTRS = s.Machine.TRS
	cfg.Frontend.NumORT = s.Machine.ORT
	cfg.Frontend.TRSBytesEach = uint64(s.Machine.TRSKB) << 10
	cfg.Frontend.ORTBytesEach = uint64(s.Machine.ORTKB) << 10
	cfg.Frontend.OVTBytesEach = uint64(s.Machine.OVTKB) << 10
	cfg.Memory = s.Machine.Memory
	cfg.Policy = s.Machine.Policy
	cfg.WorkerClasses = s.Machine.Classes
	cfg.Backend.RecordSchedule = false
	return cfg
}

// Options builds the experiment options a normalized sweep spec describes;
// ctx cancels the sweep between its constituent simulations.
func (s *SweepSpec) Options(ctx context.Context, sink *experiments.Sink) experiments.Options {
	o := experiments.Options{
		Quick:   !s.Full,
		Seed:    *s.Seed,
		Cores:   s.Cores,
		Workers: s.Workers,
		Sink:    sink,
		Context: ctx,
	}
	if s.Policy != tss.PolicyFIFO {
		o.Policy = s.Policy
	}
	return o
}

// Key returns the job's content address: the hex SHA-256 of a canonical
// encoding of the normalized spec, the spec-schema version, and the
// simulator-semantics version (via tss.Config.CanonicalString, which embeds
// tss.SimVersion). Two jobs with equal keys are guaranteed to produce
// byte-identical results, which is what makes the result cache sound.
func (s *JobSpec) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\nkind=%s\n", SpecVersion, s.Kind)
	switch s.Kind {
	case KindSim:
		fmt.Fprintf(&b, "workload=%s\ntasks=%d\nseed=%d\n--config--\n%s",
			s.Sim.Workload, *s.Sim.Tasks, *s.Sim.Seed, s.Sim.Config().CanonicalString())
	case KindSweep:
		// Workers is deliberately excluded: the sweep engine's contract is
		// byte-identical output at every pool width, so submissions that
		// differ only in Workers address the same result.
		fmt.Fprintf(&b, "experiment=%s\nfull=%v\nseed=%d\ncores=%d\nsim=%s\n",
			s.Sweep.Experiment, s.Sweep.Full, *s.Sweep.Seed, s.Sweep.Cores, tss.SimVersion)
		// The default policy is omitted so pre-policy sweep keys stay
		// stable; a non-default policy changes every constituent run, so
		// it must (and does) change the key.
		if s.Sweep.Policy != tss.PolicyFIFO {
			fmt.Fprintf(&b, "policy=%s\n", s.Sweep.Policy)
		}
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
