package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// The worker side of fleet mode: registration plumbing between a plain tssd
// daemon (the worker) and a dispatcher (a Server with Config.Fleet set).
// A worker needs no special build — any tssd daemon whose URL the dispatcher
// can reach is a valid worker; joining is one POST /v1/workers carrying that
// URL (cmd/tssd -join does it at startup, re-registering with backoff so a
// restarted dispatcher re-learns its fleet).

// WorkerInfo is the wire form of one registered fleet worker
// (POST/GET /v1/workers and the fleet section of /stats).
type WorkerInfo struct {
	// ID names the worker for DELETE /v1/workers/{id}.
	ID string `json:"id"`
	// URL is the worker daemon's base URL as registered.
	URL string `json:"url"`
	// Healthy is false after a dispatch to the worker failed; an unhealthy
	// worker rejoins the rotation when a /healthz probe succeeds (or when
	// it re-registers).
	Healthy bool `json:"healthy"`
	// Active is the number of jobs currently dispatched to the worker.
	Active int `json:"active"`
	// Dispatched and Failures count dispatch attempts and worker-level
	// failures over the worker's registration lifetime.
	Dispatched uint64 `json:"dispatched"`
	Failures   uint64 `json:"failures"`
}

// workerNode is the dispatcher's handle on one registered worker.
type workerNode struct {
	id  string
	url string
	cl  *Client

	mu         sync.Mutex
	healthy    bool
	active     int
	dispatched uint64
	failures   uint64
}

func (w *workerNode) begin() {
	w.mu.Lock()
	w.active++
	w.dispatched++
	w.mu.Unlock()
}

func (w *workerNode) end() {
	w.mu.Lock()
	w.active--
	w.mu.Unlock()
}

func (w *workerNode) noteFailure() {
	w.mu.Lock()
	w.healthy = false
	w.failures++
	w.mu.Unlock()
}

func (w *workerNode) state() (healthy bool, active int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy, w.active
}

func (w *workerNode) info() WorkerInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorkerInfo{
		ID: w.id, URL: w.url, Healthy: w.healthy,
		Active: w.active, Dispatched: w.dispatched, Failures: w.failures,
	}
}

// probeHealthz fetches a daemon's /healthz with a short timeout and returns
// its instance identity.
func probeHealthz(cl *Client) (string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var h healthz
	if err := cl.getJSON(ctx, "/healthz", &h); err != nil {
		return "", err
	}
	return h.Instance, nil
}

// probe checks the worker's /healthz and, on success, marks the worker
// healthy again.
func (w *workerNode) probe() bool {
	if _, err := probeHealthz(w.cl); err != nil {
		return false
	}
	w.mu.Lock()
	w.healthy = true
	w.mu.Unlock()
	return true
}

// joinRequest is the body of POST /v1/workers.
type joinRequest struct {
	// URL is the joining worker's base URL, reachable from the dispatcher.
	URL string `json:"url"`
}

// handleJoin implements POST /v1/workers: register (or re-register) a worker
// by URL. The worker is probed before acceptance — an unreachable URL is
// rejected (joiners retry; see JoinFleet), and so is a URL that reaches this
// dispatcher itself, which would otherwise dispatch every job back onto its
// own queue, coalesce it with itself, and deadlock. Joining is idempotent —
// a URL that is already registered gets its existing ID back and is marked
// healthy again, which is how a restarted worker or dispatcher converges
// without duplicate nodes.
func (f *fleet) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad join request: %v", err)
		return
	}
	u, err := url.Parse(req.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		httpError(w, http.StatusBadRequest, "worker url %q is not absolute", req.URL)
		return
	}
	base := strings.TrimRight(req.URL, "/")

	instance, err := probeHealthz(NewClient(base))
	if err != nil {
		httpError(w, http.StatusBadRequest, "worker at %s is unreachable: %v", base, err)
		return
	}
	if instance == f.s.instance {
		httpError(w, http.StatusBadRequest, "worker url %s reaches this dispatcher itself; a dispatcher cannot be its own worker", base)
		return
	}

	f.mu.Lock()
	for _, n := range f.workers {
		if n.url == base {
			f.mu.Unlock()
			n.mu.Lock()
			n.healthy = true
			n.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(n.info())
			return
		}
	}
	f.nextID++
	n := &workerNode{
		id:      fmt.Sprintf("worker-%d", f.nextID),
		url:     base,
		cl:      NewClient(base),
		healthy: true,
	}
	f.workers = append(f.workers, n)
	f.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(n.info())
}

// handleList implements GET /v1/workers.
func (f *fleet) handleList(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(f.stats().Workers)
}

// handleLeave implements DELETE /v1/workers/{id}: deregister a worker. Jobs
// currently relayed to it finish (or fail over) on their own; the worker
// just stops receiving new dispatches. Removing an unknown ID is a 404.
func (f *fleet) handleLeave(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	f.mu.Lock()
	for i, n := range f.workers {
		if n.id == id {
			f.workers = append(f.workers[:i], f.workers[i+1:]...)
			f.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(n.info())
			return
		}
	}
	f.mu.Unlock()
	httpError(w, http.StatusNotFound, "no such worker %q", id)
}

// JoinFleet registers the worker daemon reachable at advertiseURL with the
// fleet dispatcher at dispatcherURL, retrying with backoff until it succeeds
// or ctx ends. It returns the assigned worker ID. cmd/tssd -join calls this
// at startup.
func JoinFleet(ctx context.Context, dispatcherURL, advertiseURL string) (string, error) {
	cl := NewClient(dispatcherURL)
	backoff := time.Second
	for {
		info, err := cl.JoinWorker(ctx, advertiseURL)
		if err == nil {
			return info.ID, nil
		}
		select {
		case <-ctx.Done():
			return "", fmt.Errorf("joining fleet at %s: %w (last error: %v)", dispatcherURL, ctx.Err(), err)
		case <-time.After(backoff):
		}
		if backoff < 30*time.Second {
			backoff *= 2
		}
	}
}

// JoinWorker registers workerURL with the dispatcher this client points at
// (POST /v1/workers) and returns the registration record.
func (c *Client) JoinWorker(ctx context.Context, workerURL string) (*WorkerInfo, error) {
	body, err := json.Marshal(joinRequest{URL: workerURL})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/workers", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	var info WorkerInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Workers lists the dispatcher's registered workers (GET /v1/workers).
func (c *Client) Workers(ctx context.Context) ([]WorkerInfo, error) {
	var ws []WorkerInfo
	if err := c.getJSON(ctx, "/v1/workers", &ws); err != nil {
		return nil, err
	}
	return ws, nil
}
