package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"tasksuperscalar/internal/faults"
)

// The worker side of fleet mode: registration and lifecycle plumbing between
// a plain tssd daemon (the worker) and a dispatcher (a Server with
// Config.Fleet set). A worker needs no special build — any tssd daemon whose
// URL the dispatcher can reach is a valid worker.
//
// Two lifecycles coexist:
//
//   - Join-only (POST /v1/workers, cmd/tssd -join): the original protocol.
//     The dispatcher probes the worker at registration and marks it unhealthy
//     on dispatch failure; a background probe returns it to the rotation.
//   - Heartbeat (POST /v1/workers/heartbeat, cmd/tssd -join with -heartbeat):
//     the worker reports in every HeartbeatInterval. The dispatcher ages it
//     through a liveness state machine — healthy → suspect (missed ~2.5
//     intervals) → dead (missed ~5) — and a beat (or successful probe)
//     revives it. Because a heartbeat carrying an unknown URL registers the
//     worker on the spot, a restarted dispatcher re-learns its whole fleet
//     within one heartbeat interval with no operator action.
//
// Either kind of worker can be drained (POST /v1/workers/{id}/drain): it
// stops receiving new dispatches while jobs already relayed to it finish, the
// graceful way to take a node out for maintenance. DELETE .../drain returns
// it to the rotation.

// Worker liveness states (WorkerInfo.State).
const (
	WorkerHealthy = "healthy"
	WorkerSuspect = "suspect" // missed heartbeats / failed a dispatch; not picked while healthy peers exist
	WorkerDead    = "dead"    // missed ~5 heartbeat intervals; never picked until revived
)

// Circuit-breaker states, orthogonal to liveness: liveness asks "is the
// process up?" (heartbeats, probes); the breaker asks "do dispatches to it
// succeed?" (a node can answer /healthz all day while its pool is wedged).
// Closed admits dispatches; tripped (after Config.BreakerThreshold
// consecutive failures) admits none until Config.BreakerCooldown elapses;
// half-open admits exactly one probe job, whose outcome closes or re-trips
// the breaker (WorkerInfo.Breaker).
const (
	BreakerClosed   = "closed"
	BreakerTripped  = "tripped"
	BreakerHalfOpen = "half-open"
)

// WorkerInfo is the wire form of one registered fleet worker
// (POST/GET /v1/workers and the fleet section of /stats).
type WorkerInfo struct {
	// ID names the worker for DELETE /v1/workers/{id} and the drain
	// endpoints.
	ID string `json:"id"`
	// URL is the worker daemon's base URL as registered.
	URL string `json:"url"`
	// State is the liveness state: healthy, suspect, or dead.
	State string `json:"state"`
	// Healthy reports State == healthy (kept for older clients).
	Healthy bool `json:"healthy"`
	// Draining reports that the worker receives no new dispatches while its
	// running jobs finish.
	Draining bool `json:"draining,omitempty"`
	// Heartbeat reports that the worker uses the heartbeat lifecycle.
	Heartbeat bool `json:"heartbeat,omitempty"`
	// Active is the number of jobs currently dispatched to the worker.
	Active int `json:"active"`
	// Dispatched and Failures count dispatch attempts and worker-level
	// failures over the worker's registration lifetime; Revived counts
	// returns from the dead state.
	Dispatched uint64 `json:"dispatched"`
	Failures   uint64 `json:"failures"`
	Revived    uint64 `json:"revived,omitempty"`
	// Breaker is the circuit-breaker state (closed, tripped, half-open);
	// BreakerTrips counts trips over the registration lifetime.
	Breaker      string `json:"breaker"`
	BreakerTrips uint64 `json:"breaker_trips,omitempty"`
}

// workerNode is the dispatcher's handle on one registered worker.
type workerNode struct {
	id  string
	url string
	cl  *Client

	mu         sync.Mutex
	state      string // WorkerHealthy, WorkerSuspect, or WorkerDead
	draining   bool
	beatOpted  bool      // the worker has sent at least one heartbeat
	lastBeat   time.Time // last heartbeat or successful probe
	active     int
	dispatched uint64
	failures   uint64
	revived    uint64

	// Circuit breaker (see the Breaker* constants): consecFails counts
	// consecutive dispatch failures since the last success; trippedAt stamps
	// the trip for the cooldown clock.
	breaker     string
	consecFails int
	trippedAt   time.Time
	trips       uint64
}

func (w *workerNode) begin() {
	w.mu.Lock()
	w.active++
	w.dispatched++
	w.mu.Unlock()
}

func (w *workerNode) end() {
	w.mu.Lock()
	w.active--
	w.mu.Unlock()
}

// noteFailure records one worker-level dispatch failure: liveness drops to
// suspect, and the breaker trips after `threshold` consecutive failures — or
// instantly if this was the half-open probe job.
func (w *workerNode) noteFailure(threshold int) {
	w.mu.Lock()
	if w.state == WorkerHealthy {
		w.state = WorkerSuspect
	}
	w.failures++
	w.consecFails++
	switch {
	case w.breaker == BreakerHalfOpen:
		// The probe job failed: straight back to tripped, cooldown restarts.
		w.breaker = BreakerTripped
		w.trippedAt = time.Now()
		w.trips++
	case w.breaker != BreakerTripped && w.consecFails >= threshold:
		w.breaker = BreakerTripped
		w.trippedAt = time.Now()
		w.trips++
	}
	w.mu.Unlock()
}

// noteSuccess records a dispatch the worker served correctly: the breaker
// closes (reviving a half-open worker into the rotation), the consecutive
// failure count resets, and — a served job being direct evidence of life —
// liveness returns to healthy.
func (w *workerNode) noteSuccess() {
	w.mu.Lock()
	w.breaker = BreakerClosed
	w.consecFails = 0
	if w.state == WorkerDead {
		w.revived++
	}
	w.state = WorkerHealthy
	w.lastBeat = time.Now()
	w.mu.Unlock()
}

// breakerClosed reports whether the breaker admits normal dispatches.
func (w *workerNode) breakerClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.breaker == BreakerClosed || w.breaker == ""
}

// claimHalfOpen claims the single half-open probe slot of a tripped worker
// whose cooldown has expired. At most one caller wins until the probe's
// outcome (noteSuccess / noteFailure / releaseHalfOpen) resolves the state.
func (w *workerNode) claimHalfOpen(now time.Time, cooldown time.Duration) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.breaker != BreakerTripped || now.Sub(w.trippedAt) < cooldown {
		return false
	}
	w.breaker = BreakerHalfOpen
	return true
}

// releaseHalfOpen returns an unresolved half-open claim (the probe dispatch
// was aborted by cancellation, proving nothing) to tripped — with the
// original trip time, so the next pick may claim a fresh probe immediately.
func (w *workerNode) releaseHalfOpen() {
	w.mu.Lock()
	if w.breaker == BreakerHalfOpen {
		w.breaker = BreakerTripped
	}
	w.mu.Unlock()
}

// markAlive records direct evidence of life (a heartbeat or a successful
// probe): the worker returns to healthy, counting a revival if it was dead.
func (w *workerNode) markAlive(now time.Time) {
	w.mu.Lock()
	if w.state == WorkerDead {
		w.revived++
	}
	w.state = WorkerHealthy
	w.lastBeat = now
	w.mu.Unlock()
}

// noteBeat is markAlive plus heartbeat-lifecycle opt-in.
func (w *workerNode) noteBeat(now time.Time) {
	w.mu.Lock()
	w.beatOpted = true
	w.mu.Unlock()
	w.markAlive(now)
}

// age advances the liveness state machine of a heartbeat-opted worker:
// suspect after missing ~2.5 intervals, dead after ~5. Join-only workers are
// untouched — their health is probe- and dispatch-driven, as before
// heartbeats existed.
func (w *workerNode) age(now time.Time, interval time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.beatOpted {
		return
	}
	elapsed := now.Sub(w.lastBeat)
	switch {
	case elapsed >= 5*interval:
		w.state = WorkerDead
	case elapsed >= interval*5/2:
		if w.state == WorkerHealthy {
			w.state = WorkerSuspect
		}
	}
}

// dispatchable reports whether pick may send new work: not draining and not
// dead. (Suspect workers are dispatchable only as a probed last resort.)
func (w *workerNode) dispatchable() (ok, healthy bool, active int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.draining && w.state != WorkerDead, w.state == WorkerHealthy, w.active
}

func (w *workerNode) info() WorkerInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	breaker := w.breaker
	if breaker == "" {
		breaker = BreakerClosed
	}
	return WorkerInfo{
		ID: w.id, URL: w.url,
		State: w.state, Healthy: w.state == WorkerHealthy,
		Draining: w.draining, Heartbeat: w.beatOpted,
		Active: w.active, Dispatched: w.dispatched,
		Failures: w.failures, Revived: w.revived,
		Breaker: breaker, BreakerTrips: w.trips,
	}
}

// probeHealthz fetches a daemon's /healthz with a short timeout and returns
// its instance identity.
func probeHealthz(cl *Client) (string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var h healthz
	if err := cl.getJSON(ctx, "/healthz", &h); err != nil {
		return "", err
	}
	return h.Instance, nil
}

// probe checks the worker's /healthz and, on success, marks the worker
// alive — a probe is evidence of life as good as a heartbeat, so it also
// resets the heartbeat ageing clock (otherwise a just-probed worker would be
// re-suspected on the next liveness sweep).
func (w *workerNode) probe() bool {
	if _, err := probeHealthz(w.cl); err != nil {
		return false
	}
	w.markAlive(time.Now())
	return true
}

// joinRequest is the body of POST /v1/workers.
type joinRequest struct {
	// URL is the joining worker's base URL, reachable from the dispatcher.
	URL string `json:"url"`
}

// heartbeatRequest is the body of POST /v1/workers/heartbeat.
type heartbeatRequest struct {
	// URL is the worker's base URL (its registration identity).
	URL string `json:"url"`
	// Instance is the worker daemon's /healthz instance ID, used to reject a
	// worker that is actually this dispatcher itself.
	Instance string `json:"instance"`
}

// parseWorkerURL validates and canonicalizes a worker's advertised base URL.
func parseWorkerURL(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return "", fmt.Errorf("worker url %q is not absolute", raw)
	}
	return strings.TrimRight(raw, "/"), nil
}

// handleJoin implements POST /v1/workers: register (or re-register) a worker
// by URL. The worker is probed before acceptance — an unreachable URL is
// rejected (joiners retry; see JoinFleet), and so is a URL that reaches this
// dispatcher itself, which would otherwise dispatch every job back onto its
// own queue, coalesce it with itself, and deadlock. Joining is idempotent —
// a URL that is already registered gets its existing ID back and is marked
// healthy again, which is how a restarted worker or dispatcher converges
// without duplicate nodes.
func (f *fleet) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad join request: %v", err)
		return
	}
	base, err := parseWorkerURL(req.URL)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}

	instance, err := probeHealthz(f.workerClient(base))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "worker at %s is unreachable: %v", base, err)
		return
	}
	if instance == f.s.instance {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"worker url %s reaches this dispatcher itself; a dispatcher cannot be its own worker", base)
		return
	}

	n, created := f.register(base)
	n.markAlive(time.Now())
	w.Header().Set("Content-Type", "application/json")
	if created {
		w.WriteHeader(http.StatusCreated)
	}
	json.NewEncoder(w).Encode(n.info())
}

// handleHeartbeat implements POST /v1/workers/heartbeat. A beat from a known
// URL refreshes its liveness (reviving a dead worker); a beat from an unknown
// URL registers the worker on the spot — the beat itself is the liveness
// proof, no probe needed — which is what lets a restarted dispatcher re-learn
// its fleet within one heartbeat interval.
func (f *fleet) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad heartbeat: %v", err)
		return
	}
	base, err := parseWorkerURL(req.URL)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if req.Instance == f.s.instance {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"worker url %s is this dispatcher itself; a dispatcher cannot be its own worker", base)
		return
	}

	n, created := f.register(base)
	n.noteBeat(time.Now())
	w.Header().Set("Content-Type", "application/json")
	if created {
		w.WriteHeader(http.StatusCreated)
	}
	json.NewEncoder(w).Encode(n.info())
}

// workerClient builds the dispatcher's client for one worker, presenting the
// daemon's peer token when configured. With a fault injector installed
// (chaos tests), every request and response body to the worker routes
// through the injecting transport — which is how drops, delays, synthetic
// 5xxs, and mid-stream SSE cuts reach the dispatch path deterministically.
func (f *fleet) workerClient(base string) *Client {
	opts := []ClientOption{WithToken(f.s.cfg.PeerToken), WithUserAgent("tssd-dispatcher/1")}
	if in := f.s.cfg.Faults; in != nil {
		opts = append(opts, WithHTTPClient(&http.Client{
			Transport: faults.NewTransport(nil, in, faults.RPC, faults.Stream),
		}))
	}
	return NewClient(base, opts...)
}

// register finds or creates the node for a worker URL; it reports whether the
// node was newly created.
func (f *fleet) register(base string) (*workerNode, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range f.workers {
		if n.url == base {
			return n, false
		}
	}
	f.nextID++
	n := &workerNode{
		id:      fmt.Sprintf("worker-%d", f.nextID),
		url:     base,
		cl:      f.workerClient(base),
		state:   WorkerHealthy,
		breaker: BreakerClosed,
	}
	f.workers = append(f.workers, n)
	return n, true
}

// handleList implements GET /v1/workers.
func (f *fleet) handleList(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(f.stats().Workers)
}

// handleLeave implements DELETE /v1/workers/{id}: deregister a worker. Jobs
// currently relayed to it finish (or fail over) on their own; the worker
// just stops receiving new dispatches. Removing an unknown ID is a 404.
func (f *fleet) handleLeave(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	f.mu.Lock()
	for i, n := range f.workers {
		if n.id == id {
			f.workers = append(f.workers[:i], f.workers[i+1:]...)
			f.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(n.info())
			return
		}
	}
	f.mu.Unlock()
	writeError(w, http.StatusNotFound, CodeNotFound, "no such worker %q", id)
}

// lookupWorker resolves {id} for the drain endpoints.
func (f *fleet) lookupWorker(w http.ResponseWriter, r *http.Request) *workerNode {
	id := r.PathValue("id")
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range f.workers {
		if n.id == id {
			return n
		}
	}
	writeError(w, http.StatusNotFound, CodeNotFound, "no such worker %q", id)
	return nil
}

// handleDrain implements POST /v1/workers/{id}/drain: stop dispatching new
// jobs to the worker while jobs already relayed to it run to completion —
// the graceful way to take a node out for maintenance. Idempotent.
func (f *fleet) handleDrain(w http.ResponseWriter, r *http.Request) {
	n := f.lookupWorker(w, r)
	if n == nil {
		return
	}
	n.mu.Lock()
	n.draining = true
	n.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(n.info())
}

// handleUndrain implements DELETE /v1/workers/{id}/drain: return a drained
// worker to the dispatch rotation. Idempotent.
func (f *fleet) handleUndrain(w http.ResponseWriter, r *http.Request) {
	n := f.lookupWorker(w, r)
	if n == nil {
		return
	}
	n.mu.Lock()
	n.draining = false
	n.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(n.info())
}

// JoinFleet registers the worker daemon reachable at advertiseURL with the
// fleet dispatcher at dispatcherURL, retrying with backoff until it succeeds
// or ctx ends. It returns the assigned worker ID. The backoff doubles from
// 1s to a 30s cap with ±50% jitter seeded from advertiseURL: deterministic
// per worker, but distinct across the fleet, so a whole fleet rejoining
// after a dispatcher restart spreads out instead of reconnecting in
// lockstep (thundering herd). cmd/tssd -join calls this at startup; opts
// typically carry WithToken for an authenticated dispatcher.
func JoinFleet(ctx context.Context, dispatcherURL, advertiseURL string, opts ...ClientOption) (string, error) {
	cl := NewClient(dispatcherURL, opts...)
	bo := newBackoff(time.Second, 30*time.Second, seedFromString(advertiseURL))
	for {
		info, err := cl.JoinWorker(ctx, advertiseURL)
		if err == nil {
			return info.ID, nil
		}
		select {
		case <-ctx.Done():
			return "", fmt.Errorf("joining fleet at %s: %w (last error: %v)", dispatcherURL, ctx.Err(), err)
		case <-time.After(bo.next()):
		}
	}
}

// HeartbeatLoop reports the worker at advertiseURL (whose daemon instance ID
// is instance — see Server.Instance) to the dispatcher every interval, until
// ctx ends. Beats are best-effort: a missed beat costs nothing but liveness
// credit, and because an unknown URL registers on contact, the loop doubles
// as re-registration — a restarted dispatcher re-learns this worker on the
// next beat. cmd/tssd runs this when started with -join and a heartbeat
// interval.
func HeartbeatLoop(ctx context.Context, dispatcherURL, advertiseURL, instance string, interval time.Duration, opts ...ClientOption) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	cl := NewClient(dispatcherURL, opts...)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		bctx, cancel := context.WithTimeout(ctx, interval)
		cl.Heartbeat(bctx, advertiseURL, instance)
		cancel()
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// JoinWorker registers workerURL with the dispatcher this client points at
// (POST /v1/workers) and returns the registration record.
func (c *Client) JoinWorker(ctx context.Context, workerURL string) (*WorkerInfo, error) {
	var info WorkerInfo
	if err := c.doJSON(ctx, http.MethodPost, "/v1/workers", joinRequest{URL: workerURL}, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Heartbeat reports the worker at workerURL alive to the dispatcher
// (POST /v1/workers/heartbeat), registering it if unknown.
func (c *Client) Heartbeat(ctx context.Context, workerURL, instance string) (*WorkerInfo, error) {
	var info WorkerInfo
	err := c.doJSON(ctx, http.MethodPost, "/v1/workers/heartbeat",
		heartbeatRequest{URL: workerURL, Instance: instance}, &info)
	if err != nil {
		return nil, err
	}
	return &info, nil
}

// DrainWorker takes a worker out of the dispatch rotation gracefully
// (POST /v1/workers/{id}/drain): running jobs finish, new dispatches go
// elsewhere.
func (c *Client) DrainWorker(ctx context.Context, id string) (*WorkerInfo, error) {
	var info WorkerInfo
	if err := c.doJSON(ctx, http.MethodPost, "/v1/workers/"+id+"/drain", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// UndrainWorker returns a drained worker to the dispatch rotation
// (DELETE /v1/workers/{id}/drain).
func (c *Client) UndrainWorker(ctx context.Context, id string) (*WorkerInfo, error) {
	var info WorkerInfo
	if err := c.doJSON(ctx, http.MethodDelete, "/v1/workers/"+id+"/drain", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Workers lists the dispatcher's registered workers (GET /v1/workers).
func (c *Client) Workers(ctx context.Context) ([]WorkerInfo, error) {
	var ws []WorkerInfo
	if err := c.getJSON(ctx, "/v1/workers", &ws); err != nil {
		return nil, err
	}
	return ws, nil
}
