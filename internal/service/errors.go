package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Unified error envelope: every non-2xx response across the v1 API carries
// one structured JSON shape,
//
//	{"error": {"code": "...", "message": "...", "retryable": true|false}}
//
// with a stable machine-readable code. Clients branch on Code (via APIError),
// never on message text; Retryable tells a client whether backing off and
// re-submitting the identical request can ever succeed.

// Stable API error codes.
const (
	// CodeBadRequest: the request body or parameters are malformed or
	// invalid (bad JSON, unknown workload, invalid machine config, …).
	CodeBadRequest = "bad_request"
	// CodeUnauthorized: the request carries no bearer token, or one that no
	// configured tenant owns.
	CodeUnauthorized = "unauthorized"
	// CodeQuotaExceeded: the tenant is at its max-in-flight job quota;
	// retry after one of its jobs settles.
	CodeQuotaExceeded = "quota_exceeded"
	// CodeRateLimited: the tenant exceeded its submission rate; retry
	// after backing off.
	CodeRateLimited = "rate_limited"
	// CodeDraining: the daemon is shutting down (or the fleet has no
	// dispatchable worker because every node is draining); running jobs
	// finish, new work is refused.
	CodeDraining = "draining"
	// CodeNotFound: no such job or worker.
	CodeNotFound = "not_found"
	// CodeQueueFull: the scheduler queue is at QueueDepth.
	CodeQueueFull = "queue_full"
	// CodeNotReady: the result was requested before the job reached a
	// terminal state.
	CodeNotReady = "not_ready"
	// CodeJobFailed / CodeJobCancelled: the result was requested for a job
	// that settled without one.
	CodeJobFailed    = "job_failed"
	CodeJobCancelled = "job_cancelled"
	// CodeDispatchLoop: the fleet topology routed a job back through a
	// dispatcher it already passed (see DispatchPathHeader).
	CodeDispatchLoop = "dispatch_loop"
	// CodeInternal: the daemon itself failed.
	CodeInternal = "internal"
)

// retryableCode reports whether a request rejected with code can succeed
// verbatim later (after backoff, quota release, or drain completion).
func retryableCode(code string) bool {
	switch code {
	case CodeQuotaExceeded, CodeRateLimited, CodeDraining, CodeQueueFull, CodeNotReady:
		return true
	}
	return false
}

// errorDetail is the inner object of the error envelope.
type errorDetail struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// errorBody is the wire shape of every non-2xx v1 response.
type errorBody struct {
	Error errorDetail `json:"error"`
}

// writeError emits the unified error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: errorDetail{
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		Retryable: retryableCode(code),
	}})
}

// APIError is a non-2xx daemon response, decoded from the unified error
// envelope. Client methods return it (as error) for every API-level
// rejection, so callers can branch on Code with errors.As:
//
//	var apiErr *service.APIError
//	if errors.As(err, &apiErr) && apiErr.Code == service.CodeRateLimited { … }
type APIError struct {
	// Status is the HTTP status code of the response.
	Status int
	// Code is the stable machine-readable error code (Code* constants).
	Code string
	// Message is the human-readable description.
	Message string
	// Retryable reports whether the identical request can succeed later.
	Retryable bool
}

func (e *APIError) Error() string {
	return fmt.Sprintf("tssd: %s (%s)", e.Message, e.Code)
}

// decodeAPIError turns a non-2xx response into an *APIError. It understands
// the unified envelope, the pre-envelope `{"error":"message"}` shape older
// daemons emit, and falls back to the raw body, deriving a code from the
// HTTP status when the wire carries none.
func decodeAPIError(resp *http.Response) error {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))

	var envelope struct {
		Error json.RawMessage `json:"error"`
	}
	apiErr := &APIError{Status: resp.StatusCode}
	if json.Unmarshal(body, &envelope) == nil && len(envelope.Error) > 0 {
		var detail errorDetail
		var legacy string
		switch {
		case json.Unmarshal(envelope.Error, &detail) == nil && detail.Message != "":
			apiErr.Code = detail.Code
			apiErr.Message = detail.Message
			apiErr.Retryable = detail.Retryable
		case json.Unmarshal(envelope.Error, &legacy) == nil && legacy != "":
			apiErr.Message = legacy
		}
	}
	if apiErr.Message == "" {
		apiErr.Message = fmt.Sprintf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if apiErr.Code == "" {
		apiErr.Code = codeForStatus(resp.StatusCode)
		apiErr.Retryable = retryableCode(apiErr.Code)
	}
	return apiErr
}

// codeForStatus maps an HTTP status to the closest stable code, for
// responses (older daemons, proxies) that carry no code of their own.
func codeForStatus(status int) string {
	switch status {
	case http.StatusUnauthorized:
		return CodeUnauthorized
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusTooManyRequests:
		return CodeRateLimited
	case http.StatusServiceUnavailable:
		return CodeDraining
	case http.StatusConflict:
		return CodeNotReady
	}
	if status >= 500 {
		return CodeInternal
	}
	return CodeBadRequest
}
