package service

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"tasksuperscalar/internal/experiments"
	"tasksuperscalar/internal/workloads"
	"tasksuperscalar/tss"
)

// fig12Spec is the sweep used by the sharding tests: in quick mode it
// enumerates 16 constituent simulations (2 benchmarks x 4 TRS x 2 ORT
// points), every one expressible as a standalone sim spec.
func fig12Spec() *JobSpec {
	return &JobSpec{Kind: KindSweep, Sweep: &SweepSpec{Experiment: "fig12"}}
}

const fig12Points = 16

// fig12PointSpec is the sim-spec form of one fig12 quick point: 600 tasks of
// the named benchmark at seed 42 on the decode-sweep machine (6 MB total TRS
// split over numTRS, 512 KB ORT/OVT each, 256 cores).
func fig12PointSpec(workload string, numTRS, numORT int) *JobSpec {
	tasks, seed := 600, int64(42)
	return &JobSpec{Kind: KindSim, Sim: &SimSpec{
		Workload: workload, Tasks: &tasks, Seed: &seed,
		Machine: MachineSpec{
			Cores: 256, TRS: numTRS, ORT: numORT,
			TRSKB: (6 << 10) / numTRS, ORTKB: 512, OVTKB: 512,
		},
	}}
}

// directBytes runs a spec through the monolithic in-process path — the
// reference every sharded execution must match byte-for-byte.
func directBytes(t *testing.T, spec *JobSpec) []byte {
	t.Helper()
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	b, err := RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// shardConserved asserts the shard-level conservation invariant: every point
// a sweep enumerated settled as exactly one outcome.
func shardConserved(t *testing.T, sh ShardStats) {
	t.Helper()
	if got := sh.MemHits + sh.DiskHits + sh.Coalesced + sh.Simulated + sh.Inline + sh.Failed; got != sh.Points {
		t.Fatalf("shard conservation violated: outcomes sum to %d of %d points (%+v)", got, sh.Points, sh)
	}
}

// The sharding tentpole on one daemon: a sweep decomposed into per-point sim
// jobs reassembles byte-identically to the monolithic run, every point flows
// through the content-addressed store (none fall back to inline execution),
// and the point results are shared bidirectionally with the plain sim-job
// API — a pre-run sim answers a sweep point from cache, and a sweep point
// answers a later sim submission from cache.
func TestShardedSweepByteIdenticalAndCacheShared(t *testing.T) {
	want := directBytes(t, fig12Spec())
	srv, cl := startDaemon(t, Config{Workers: 2})
	ctx := context.Background()

	// Pre-run one constituent point as an ordinary API sim job: the sweep
	// must pick its result up from the cache instead of re-simulating.
	pre, err := cl.Submit(ctx, fig12PointSpec("cholesky", 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if pre, err = cl.Wait(ctx, pre.ID, nil); err != nil || pre.Status != StatusDone {
		t.Fatalf("pre-run point: %v / %+v", err, pre)
	}

	st, err := cl.Submit(ctx, fig12Spec())
	if err != nil {
		t.Fatal(err)
	}
	fin, err := cl.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Status != StatusDone {
		t.Fatalf("sweep ended %s: %s", fin.Status, fin.Error)
	}
	got, err := cl.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sharded sweep differs from monolithic run:\n got: %.200s…\nwant: %.200s…", got, want)
	}

	sh := srv.Stats().Shard
	shardConserved(t, sh)
	if sh.Points != fig12Points {
		t.Fatalf("sweep enumerated %d points, want %d", sh.Points, fig12Points)
	}
	if sh.Inline != 0 {
		t.Fatalf("%d points fell back to inline execution — pointSpec no longer expresses the decode sweep", sh.Inline)
	}
	if sh.Failed != 0 {
		t.Fatalf("%d points failed", sh.Failed)
	}
	if sh.MemHits == 0 {
		t.Fatal("the pre-run point was not served to the sweep from cache — sim and sweep keys diverged")
	}

	// The reverse direction: a point the sweep simulated now answers an
	// ordinary sim submission without running anything.
	after, err := cl.Submit(ctx, fig12PointSpec("h264", 64, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !after.Cached || after.Status != StatusDone {
		t.Fatalf("sim submission of a swept point: cached=%v status=%s, want cached done", after.Cached, after.Status)
	}
}

// A sharded sweep on a fleet: one dispatcher over three workers, six
// concurrent duplicate submissions of the same sweep under -race. The
// duplicates coalesce into one execution whose points fan out across the
// fleet; every client reads bytes identical to the monolithic run, and the
// job- and point-level conservation invariants hold on every node.
func TestFleetShardedSweep(t *testing.T) {
	want := directBytes(t, fig12Spec())
	disp, cl, workers := startFleet(t, 3, Config{Workers: 2})
	ctx := context.Background()

	const dupes = 6
	results := make([][]byte, dupes)
	var wg sync.WaitGroup
	for i := 0; i < dupes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := cl.Submit(ctx, fig12Spec())
			if err != nil {
				t.Errorf("client %d submit: %v", i, err)
				return
			}
			if !st.Cached {
				if st, err = cl.Wait(ctx, st.ID, nil); err != nil {
					t.Errorf("client %d wait: %v", i, err)
					return
				}
				if st.Status != StatusDone {
					t.Errorf("client %d sweep %s: %s", i, st.Status, st.Error)
					return
				}
			}
			body, err := cl.Result(ctx, st.ID)
			if err != nil {
				t.Errorf("client %d result: %v", i, err)
				return
			}
			results[i] = body
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, body := range results {
		if !bytes.Equal(body, want) {
			t.Fatalf("client %d: sharded fleet sweep differs from monolithic run", i)
		}
	}

	ds := disp.Stats()
	// Job level: one execution, the rest coalesced or cache-answered.
	if got := ds.Completed + ds.Coalesced + ds.CacheHits + ds.DiskHits; got != dupes {
		t.Fatalf("completed(%d)+coalesced(%d)+cache(%d)+disk(%d) = %d, want %d submissions",
			ds.Completed, ds.Coalesced, ds.CacheHits, ds.DiskHits, got, dupes)
	}
	if ds.Completed != 1 {
		t.Fatalf("%d sweep executions for %d duplicate submissions", ds.Completed, dupes)
	}
	// Point level: all 16 points resolved through the store, none inline,
	// none failed, and every fleet-executed point settled on some worker.
	shardConserved(t, ds.Shard)
	if ds.Shard.Points != fig12Points {
		t.Fatalf("fleet sweep enumerated %d points, want %d", ds.Shard.Points, fig12Points)
	}
	if ds.Shard.Inline != 0 || ds.Shard.Failed != 0 {
		t.Fatalf("inline=%d failed=%d points on the fleet", ds.Shard.Inline, ds.Shard.Failed)
	}
	if ds.Shard.Simulated == 0 {
		t.Fatal("no points were executed through the fleet")
	}
	var workerSettled uint64
	participating := 0
	for _, w := range workers {
		ws := w.srv.Stats()
		workerSettled += ws.Completed + ws.Coalesced + ws.CacheHits + ws.DiskHits
		if ws.Submitted > 0 {
			participating++
		}
		if ws.Failed != 0 || ws.Inflight != 0 {
			t.Fatalf("worker settled dirty: %+v", ws)
		}
	}
	if workerSettled != ds.Shard.Simulated {
		t.Fatalf("workers settled %d jobs, dispatcher executed %d points through the fleet",
			workerSettled, ds.Shard.Simulated)
	}
	if participating < 2 {
		t.Fatalf("only %d of 3 workers received points — sweep did not fan out", participating)
	}
	if ds.Fleet.Retries != 0 {
		t.Fatalf("%d unexpected retries with healthy workers", ds.Fleet.Retries)
	}
}

// The policy laboratory across a fleet: the "policies" experiment — whose
// grid mixes all four dispatch policies and a heterogeneous worker-class
// point — decomposes into per-point sim jobs that fan out over three worker
// daemons and reassemble byte-identically to the monolithic in-process run.
// Every point must be expressible as a sim spec (policy and classes survive
// the pointSpec round-trip) — none may fall back to inline execution.
func TestFleetPolicySweep(t *testing.T) {
	spec := func() *JobSpec {
		return &JobSpec{Kind: KindSweep, Sweep: &SweepSpec{Experiment: "policies"}}
	}
	want := directBytes(t, spec())
	disp, cl, _ := startFleet(t, 3, Config{Workers: 2})
	ctx := context.Background()

	st, err := cl.Submit(ctx, spec())
	if err != nil {
		t.Fatal(err)
	}
	fin, err := cl.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Status != StatusDone {
		t.Fatalf("policy sweep ended %s: %s", fin.Status, fin.Error)
	}
	got, err := cl.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet policy sweep differs from monolithic run:\n got: %.300s…\nwant: %.300s…", got, want)
	}

	sh := disp.Stats().Shard
	shardConserved(t, sh)
	// Quick mode: 1 benchmark × 4 policies × 2 core counts.
	if sh.Points != 8 {
		t.Fatalf("policy sweep enumerated %d points, want 8", sh.Points)
	}
	if sh.Inline != 0 {
		t.Fatalf("%d policy points fell back to inline execution — pointSpec dropped policy or classes", sh.Inline)
	}
	if sh.Failed != 0 {
		t.Fatalf("%d policy points failed", sh.Failed)
	}
}

// pointSpec must express every machine shape the experiment sweeps generate
// — including Figure 14's asymmetric ORT/OVT sizing — and must refuse
// anything it cannot round-trip exactly.
func TestPointSpecExpressibility(t *testing.T) {
	chol, ok := workloads.ByName("cholesky")
	if !ok {
		t.Fatal("cholesky workload missing")
	}
	base := func() tss.Config {
		cfg := tss.DefaultConfig().WithCores(256)
		cfg.Memory = false
		return cfg
	}

	t.Run("decode sweep point", func(t *testing.T) {
		cfg := base()
		cfg.Frontend.NumTRS = 4
		cfg.Frontend.NumORT = 2
		cfg.Frontend.TRSBytesEach = (6 << 20) / 4
		cfg.Frontend.ORTBytesEach = 512 << 10
		cfg.Frontend.OVTBytesEach = 512 << 10
		spec, ok := pointSpec(experiments.SimJob{Workload: chol, Tasks: 600, Seed: 42, Config: cfg})
		if !ok {
			t.Fatal("decode-sweep point not expressible")
		}
		// Its key must equal the key of the equivalent API-submitted spec,
		// or sweeps and sim jobs would stop sharing results.
		api := fig12PointSpec("cholesky", 4, 2)
		if err := api.Normalize(); err != nil {
			t.Fatal(err)
		}
		if spec.Key() != api.Key() {
			t.Fatalf("point key %s != equivalent API spec key %s", spec.Key(), api.Key())
		}
	})

	t.Run("fig14 asymmetric ORT/OVT", func(t *testing.T) {
		cfg := base()
		// Figure 14 scales per-ORT capacity while OVTs stay at the default
		// 256 KB — only the OVTKB field makes this expressible.
		cfg.Frontend.ORTBytesEach = (16 << 10) / uint64(cfg.Frontend.NumORT)
		spec, ok := pointSpec(experiments.SimJob{Workload: chol, Tasks: 600, Seed: 42, Config: cfg})
		if !ok {
			t.Fatal("fig14 point not expressible")
		}
		if spec.Sim.Machine.ORTKB != 8 || spec.Sim.Machine.OVTKB != 256 {
			t.Fatalf("ORT/OVT sizing lost: ortkb=%d ovtkb=%d, want 8/256",
				spec.Sim.Machine.ORTKB, spec.Sim.Machine.OVTKB)
		}
	})

	t.Run("software runtime", func(t *testing.T) {
		cfg := base()
		cfg.Runtime = tss.SoftwareRuntime
		spec, ok := pointSpec(experiments.SimJob{Workload: chol, Tasks: 600, Seed: 42, Config: cfg})
		if !ok {
			t.Fatal("software-runtime point not expressible")
		}
		if spec.Sim.Machine.Runtime != "software" {
			t.Fatalf("runtime mapped to %q", spec.Sim.Machine.Runtime)
		}
	})

	t.Run("policy laboratory point", func(t *testing.T) {
		cfg := base()
		cfg.Policy = tss.PolicyHetero
		cfg.WorkerClasses = []tss.WorkerClass{{Name: "fast", Count: 64, Speed: 2}}
		spec, ok := pointSpec(experiments.SimJob{Workload: chol, Tasks: 600, Seed: 42, Config: cfg})
		if !ok {
			t.Fatal("hetero policy point not expressible")
		}
		if spec.Sim.Machine.Policy != "hetero" || len(spec.Sim.Machine.Classes) != 1 {
			t.Fatalf("policy/classes lost: %+v", spec.Sim.Machine)
		}
		// A fifo point and the same point with a policy must not share a key.
		plain, ok := pointSpec(experiments.SimJob{Workload: chol, Tasks: 600, Seed: 42, Config: base()})
		if !ok {
			t.Fatal("baseline point not expressible")
		}
		if spec.Key() == plain.Key() {
			t.Fatal("policy point aliases the fifo point's key")
		}
	})

	t.Run("schedule recording is an observer", func(t *testing.T) {
		// The sweeps inherit RecordSchedule=true from the engine default
		// while the daemon always runs with it off; since it never affects
		// the result payload the point must still be expressible.
		cfg := base()
		cfg.Backend.RecordSchedule = true
		if _, ok := pointSpec(experiments.SimJob{Workload: chol, Tasks: 600, Seed: 42, Config: cfg}); !ok {
			t.Fatal("schedule-recording config not expressible")
		}
	})

	t.Run("rejections", func(t *testing.T) {
		aligned := base()
		bad := []struct {
			name string
			job  experiments.SimJob
		}{
			{"zero tasks", experiments.SimJob{Workload: chol, Tasks: 0, Seed: 42, Config: aligned}},
			{"sub-KB TRS capacity", func() experiments.SimJob {
				cfg := base()
				cfg.Frontend.TRSBytesEach = 1000
				return experiments.SimJob{Workload: chol, Tasks: 600, Seed: 42, Config: cfg}
			}()},
			{"unknown runtime", func() experiments.SimJob {
				cfg := base()
				cfg.Runtime = tss.RuntimeKind(99)
				return experiments.SimJob{Workload: chol, Tasks: 600, Seed: 42, Config: cfg}
			}()},
		}
		for _, tc := range bad {
			if _, ok := pointSpec(tc.job); ok {
				t.Errorf("%s accepted — the key would not address this simulation", tc.name)
			}
		}
	})
}

// OVTKB is a semantic machine knob: changing only it must change the
// content address, and leaving it defaulted must alias the symmetric ORTKB
// sizing (the paper's default) so existing keys stay stable.
func TestOVTKBKeying(t *testing.T) {
	sym := fig12PointSpec("cholesky", 8, 2)
	if err := sym.Normalize(); err != nil {
		t.Fatal(err)
	}
	defaulted := fig12PointSpec("cholesky", 8, 2)
	defaulted.Sim.Machine.OVTKB = 0 // omitted on the wire
	if err := defaulted.Normalize(); err != nil {
		t.Fatal(err)
	}
	if defaulted.Sim.Machine.OVTKB != defaulted.Sim.Machine.ORTKB {
		t.Fatalf("omitted OVTKB normalized to %d, want ORTKB %d",
			defaulted.Sim.Machine.OVTKB, defaulted.Sim.Machine.ORTKB)
	}
	if defaulted.Key() != sym.Key() {
		t.Fatal("omitted OVTKB does not alias the symmetric sizing")
	}
	asym := fig12PointSpec("cholesky", 8, 2)
	asym.Sim.Machine.OVTKB = 256
	if err := asym.Normalize(); err != nil {
		t.Fatal(err)
	}
	if asym.Key() == sym.Key() {
		t.Fatal("changing OVTKB alone did not change the key")
	}
}
