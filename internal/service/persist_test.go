package service

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// restartable wraps one daemon generation whose lifetime is controlled by
// the test rather than t.Cleanup — the restart tests kill and relaunch
// whole generations mid-test.
type restartable struct {
	srv  *Server
	hs   *httptest.Server
	once sync.Once
}

func (r *restartable) stop() {
	r.once.Do(func() {
		r.hs.Close()
		r.srv.Close()
	})
}

// startGen launches one daemon generation over the given persistent cache
// directory.
func startGen(t *testing.T, cfg Config) (*restartable, *Client) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := &restartable{srv: srv, hs: httptest.NewServer(srv.Handler())}
	t.Cleanup(g.stop)
	return g, NewClient(g.hs.URL)
}

// startGenFleet launches a dispatcher generation (persistent cache attached
// dispatcher-side) with n fresh diskless workers — the fleet shares the
// result space purely through dispatcher-side lookup.
func startGenFleet(t *testing.T, dir string, n int) (*restartable, *Client, []*restartable) {
	t.Helper()
	disp, cl := startGen(t, Config{Fleet: true, QueueDepth: 256, CacheDir: dir, CacheDiskBytes: 64 << 20})
	workers := make([]*restartable, n)
	for i := range workers {
		w, _ := startGen(t, Config{Workers: 2})
		workers[i] = w
		if _, err := cl.JoinWorker(context.Background(), w.hs.URL); err != nil {
			t.Fatalf("registering worker %d: %v", i, err)
		}
	}
	return disp, cl, workers
}

// submitSweepAndWait pushes the fig12 sweep through one generation and
// returns its result bytes and terminal status.
func submitSweepAndWait(t *testing.T, cl *Client) ([]byte, *SubmitStatus) {
	t.Helper()
	ctx := context.Background()
	st, err := cl.Submit(ctx, fig12Spec())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cached {
		if st, err = cl.Wait(ctx, st.ID, nil); err != nil {
			t.Fatal(err)
		}
	}
	if st.Status != StatusDone {
		t.Fatalf("sweep ended %s: %s", st.Status, st.Error)
	}
	body, err := cl.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return body, st
}

// sweepEnvelopePath locates the persisted envelope of the whole-sweep
// result inside a cache directory.
func sweepEnvelopePath(t *testing.T, dir string) string {
	t.Helper()
	spec := fig12Spec()
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, spec.Key())
}

// Killing the daemon mid-sweep must not lose the points it already settled:
// a restarted daemon on the same -cache-dir recovers them from disk, runs
// only the remainder, and still produces bytes identical to an
// uninterrupted run.
func TestRestartRecoversMidSweepProgress(t *testing.T) {
	want := directBytes(t, fig12Spec())
	dir := t.TempDir()
	ctx := context.Background()

	// Generation A: start the sweep, let a few points settle, then cancel
	// and tear the daemon down — the moral equivalent of a crash part-way
	// through, except we can still read its counters.
	genA, clA := startGen(t, Config{Workers: 2, CacheDir: dir, CacheDiskBytes: 64 << 20})
	st, err := clA.Submit(ctx, fig12Spec())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, clA, st.ID, func(s *SubmitStatus) bool {
		return terminalStatus(s.Status) || genA.srv.Stats().Shard.Simulated >= 4
	}, "mid-sweep progress")
	if _, err := clA.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitFor(t, clA, st.ID, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
	persisted := genA.srv.Stats().Shard.Simulated // every settled point was disk-written
	genA.stop()
	if persisted < 4 {
		t.Fatalf("only %d points settled before shutdown — cancel landed too early", persisted)
	}
	if fin.Status == StatusDone {
		// The cancel lost the race and the sweep completed: its own
		// envelope is on disk and would satisfy the resubmission wholesale.
		// Drop it so the next generation still exercises per-point
		// recovery.
		if err := os.Remove(sweepEnvelopePath(t, dir)); err != nil {
			t.Fatal(err)
		}
	}

	// Generation B: a fresh daemon (empty memory cache) on the same
	// directory. The re-submitted sweep must pick up the crashed run's
	// points from disk and simulate only the rest.
	genB, clB := startGen(t, Config{Workers: 2, CacheDir: dir, CacheDiskBytes: 64 << 20})
	got, _ := submitSweepAndWait(t, clB)
	if !bytes.Equal(got, want) {
		t.Fatal("recovered sweep differs from an uninterrupted run")
	}
	sh := genB.srv.Stats().Shard
	shardConserved(t, sh)
	if sh.Points != fig12Points {
		t.Fatalf("recovery sweep enumerated %d points, want %d", sh.Points, fig12Points)
	}
	if sh.DiskHits < persisted {
		t.Fatalf("only %d disk hits for %d points persisted before the crash", sh.DiskHits, persisted)
	}
	if sh.DiskHits+sh.Simulated != fig12Points {
		t.Fatalf("recovery mixed outcomes beyond disk+simulate: %+v", sh)
	}
	if ds := genB.srv.Stats().Cache.Disk; ds == nil || ds.Hits == 0 {
		t.Fatal("/stats does not surface the disk layer's hits")
	}
}

// The fleet acceptance bar for persistence: a sweep re-submitted after a
// FULL fleet restart — new dispatcher process, all-new workers — returns a
// byte-identical result with zero point re-simulations, first from the
// whole-sweep envelope and, once that is deleted, reassembled purely from
// the per-point envelopes.
func TestFullFleetRestartServesSweepFromDisk(t *testing.T) {
	want := directBytes(t, fig12Spec())
	dir := t.TempDir()

	// Generation 1 computes the sweep across the fleet and persists it.
	disp1, cl1, workers1 := startGenFleet(t, dir, 3)
	got, _ := submitSweepAndWait(t, cl1)
	if !bytes.Equal(got, want) {
		t.Fatal("fleet sweep differs from monolithic run")
	}
	if sh := disp1.srv.Stats().Shard; sh.Simulated == 0 {
		t.Fatalf("generation 1 simulated nothing: %+v", sh)
	}
	disp1.stop()
	for _, w := range workers1 {
		w.stop()
	}

	// Generation 2: everything is new except the cache directory. The
	// resubmission must be answered by the persisted sweep envelope —
	// no sharding, no worker traffic, no simulation.
	disp2, cl2, workers2 := startGenFleet(t, dir, 3)
	got2, st2 := submitSweepAndWait(t, cl2)
	if !bytes.Equal(got2, want) {
		t.Fatal("post-restart sweep differs")
	}
	if !st2.Cached {
		t.Fatal("disk-served sweep not reported cached")
	}
	ds2 := disp2.srv.Stats()
	if ds2.DiskHits != 1 || ds2.Completed != 0 || ds2.Shard.Points != 0 {
		t.Fatalf("restart resubmission was not a pure disk hit: diskHits=%d completed=%d shardPoints=%d",
			ds2.DiskHits, ds2.Completed, ds2.Shard.Points)
	}
	for i, w := range workers2 {
		if ws := w.srv.Stats(); ws.Submitted != 0 {
			t.Fatalf("worker %d received %d jobs during a disk-served resubmission", i, ws.Submitted)
		}
	}
	disp2.stop()
	for _, w := range workers2 {
		w.stop()
	}

	// Generation 3: delete the whole-sweep envelope, keeping only the
	// per-point ones. The sweep must shard and reassemble byte-identically
	// from disk alone — still zero simulations, still zero worker traffic.
	if err := os.Remove(sweepEnvelopePath(t, dir)); err != nil {
		t.Fatal(err)
	}
	disp3, cl3, workers3 := startGenFleet(t, dir, 3)
	got3, _ := submitSweepAndWait(t, cl3)
	if !bytes.Equal(got3, want) {
		t.Fatal("sweep reassembled from point envelopes differs")
	}
	ds3 := disp3.srv.Stats()
	shardConserved(t, ds3.Shard)
	if ds3.Shard.Points != fig12Points || ds3.Shard.DiskHits != fig12Points || ds3.Shard.Simulated != 0 {
		t.Fatalf("reassembly was not purely disk-fed: %+v", ds3.Shard)
	}
	if ds3.Completed != 1 {
		t.Fatalf("reassembled sweep completed %d jobs, want 1", ds3.Completed)
	}
	for i, w := range workers3 {
		if ws := w.srv.Stats(); ws.Submitted != 0 {
			t.Fatalf("worker %d received %d jobs during point-envelope reassembly", i, ws.Submitted)
		}
	}
}
