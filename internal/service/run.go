package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"

	"tasksuperscalar/internal/core"
	"tasksuperscalar/internal/experiments"
	"tasksuperscalar/internal/mem"
	"tasksuperscalar/internal/softrt"
	"tasksuperscalar/internal/workloads"
	"tasksuperscalar/tss"
)

// SimResult is the canonical result payload of a sim job: the
// machine-independent summary of one deterministic run. Its JSON encoding is
// what the cache stores and what clients receive — two runs of the same
// normalized spec encode byte-identically.
type SimResult struct {
	// SimVersion is tss.SimVersion at the time of the run.
	SimVersion string `json:"sim_version"`
	// Workload, Seed, and Runtime echo the normalized spec.
	Workload string `json:"workload"`
	Seed     int64  `json:"seed"`
	Runtime  string `json:"runtime"`
	// Cores is the worker-core count of the simulated machine.
	Cores int `json:"cores"`
	// Tasks is the number of tasks executed.
	Tasks uint64 `json:"tasks"`
	// Cycles is the makespan in core cycles.
	Cycles uint64 `json:"cycles"`
	// TotalWorkCycles is the sequential lower bound (sum of task runtimes).
	TotalWorkCycles uint64 `json:"total_work_cycles"`
	// SpeedupOverWork is TotalWorkCycles / Cycles.
	SpeedupOverWork float64 `json:"speedup_over_work"`
	// DecodeRateCycles is the average decode interval in cycles/task.
	DecodeRateCycles float64 `json:"decode_rate_cycles"`
	// Utilization is the time-averaged fraction of busy cores.
	Utilization float64 `json:"utilization"`
	// WindowMax is the peak number of in-flight decoded tasks.
	WindowMax int64 `json:"window_max"`
	// Frontend carries hardware-pipeline statistics (hardware runs only).
	Frontend *core.FrontendStats `json:"frontend,omitempty"`
	// Software carries software-runtime statistics (software runs only).
	Software *softrt.Stats `json:"software,omitempty"`
	// Mem carries memory-system statistics when the hierarchy is modeled.
	Mem *mem.Stats `json:"mem,omitempty"`
	// Dispatch carries the backend's per-run dispatch-policy accounting.
	// A pointer so cached payloads from before the policy laboratory
	// (which lack the field) still decode; new encodes always set it.
	Dispatch *tss.DispatchStats `json:"dispatch,omitempty"`
}

// SweepResult is the canonical result payload of a sweep job: the
// experiment's printed output plus every aggregated sweep point.
type SweepResult struct {
	// SimVersion is tss.SimVersion at the time of the run.
	SimVersion string `json:"sim_version"`
	// Experiment and Title identify the registry entry.
	Experiment string `json:"experiment"`
	Title      string `json:"title"`
	// Output is the experiment's formatted table text, exactly as
	// cmd/tsbench would print it.
	Output string `json:"output"`
	// Points are the aggregated sweep points (the -json payload).
	Points []experiments.Point `json:"points"`
}

// EncodeSimResult renders the canonical byte encoding of a sim job's result
// for a *normalized* spec. It is exported (within the module) so tests and
// clients can verify that a daemon response is byte-identical to a direct
// tss run of the same spec.
func EncodeSimResult(spec *SimSpec, res *tss.Result) ([]byte, error) {
	out := SimResult{
		SimVersion:       tss.SimVersion,
		Workload:         spec.Workload,
		Seed:             *spec.Seed,
		Runtime:          res.Kind.String(),
		Cores:            res.Cores,
		Tasks:            res.Tasks,
		Cycles:           res.Cycles,
		TotalWorkCycles:  res.TotalWorkCycles,
		DecodeRateCycles: res.DecodeRateCycles,
		Utilization:      res.Utilization,
		WindowMax:        res.WindowMax,
	}
	if res.Cycles > 0 {
		out.SpeedupOverWork = float64(res.TotalWorkCycles) / float64(res.Cycles)
	}
	switch res.Kind {
	case tss.HardwarePipeline:
		fe := res.Frontend
		out.Frontend = &fe
	case tss.SoftwareRuntime:
		sw := res.Software
		out.Software = &sw
	}
	if spec.Machine.Memory {
		m := res.Mem
		out.Mem = &m
	}
	ds := res.Dispatch
	out.Dispatch = &ds
	return json.Marshal(out)
}

// runSim executes a normalized sim spec and returns its canonical result
// bytes. progress (may be nil) observes retirement counts at ~1% granularity
// plus a final exact count. Cancelling ctx abandons the simulation within
// one engine cancellation-poll interval.
func runSim(ctx context.Context, spec *SimSpec, progress func(done, total uint64)) ([]byte, error) {
	wl, ok := workloads.ByName(spec.Workload)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", spec.Workload)
	}
	b := wl.Gen(*spec.Tasks, *spec.Seed)
	total := uint64(len(b.Tasks))
	cfg := spec.Config()
	if progress != nil {
		progress(0, total)
		step := total/100 + 1
		var done atomic.Uint64
		cfg.OnComplete = func(seq, cycle uint64) {
			d := done.Add(1)
			if d%step == 0 || d == total {
				progress(d, total)
			}
		}
	}
	res, err := tss.RunTasksCtx(ctx, b.Tasks, cfg)
	if err != nil {
		return nil, err
	}
	return EncodeSimResult(spec, res)
}

// lineWriter tees writes into buf and feeds each completed line to emit.
type lineWriter struct {
	buf  *bytes.Buffer
	line bytes.Buffer
	emit func(string)
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.buf.Write(p)
	if w.emit != nil {
		w.line.Write(p)
		for {
			b := w.line.Bytes()
			i := bytes.IndexByte(b, '\n')
			if i < 0 {
				break
			}
			w.emit(string(b[:i]))
			w.line.Next(i + 1)
		}
	}
	return len(p), nil
}

// runSweep executes a normalized sweep spec and returns its canonical
// result bytes. logLine (may be nil) observes each formatted output line as
// the experiment prints it. Cancelling ctx abandons the sweep between its
// constituent simulations (point granularity).
func runSweep(ctx context.Context, spec *SweepSpec, logLine func(string)) ([]byte, error) {
	return runSweepWith(ctx, spec, logLine, nil)
}

// runSweepWith is runSweep with an options hook: tune (may be nil) edits the
// experiment options before the run — the seam the daemon uses to install
// its per-point resolver (Options.RunSim) and widen the pool in fleet mode.
// Because the sweep engine's output is independent of pool width and RunSim
// is contractually result-preserving, every tuning yields the same bytes.
func runSweepWith(ctx context.Context, spec *SweepSpec, logLine func(string), tune func(*experiments.Options)) ([]byte, error) {
	e, ok := experiments.Get(spec.Experiment)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q", spec.Experiment)
	}
	sink := &experiments.Sink{}
	var buf bytes.Buffer
	var w io.Writer = &buf
	if logLine != nil {
		w = &lineWriter{buf: &buf, emit: logLine}
	}
	o := spec.Options(ctx, sink)
	if tune != nil {
		tune(&o)
	}
	if err := e.Run(w, o); err != nil {
		return nil, err
	}
	out := SweepResult{
		SimVersion: tss.SimVersion,
		Experiment: e.ID,
		Title:      e.Title,
		Output:     buf.String(),
		Points:     sink.Points(),
	}
	return json.Marshal(out)
}

// RunSpec executes a normalized job spec outside any daemon — the direct
// path a cached daemon response must be byte-identical to.
func RunSpec(spec *JobSpec) ([]byte, error) {
	switch spec.Kind {
	case KindSim:
		return runSim(context.Background(), spec.Sim, nil)
	case KindSweep:
		return runSweep(context.Background(), spec.Sweep, nil)
	}
	return nil, fmt.Errorf("unknown job kind %q", spec.Kind)
}
