package service

import (
	"sync"
	"time"
)

// DefaultTenant is the identity every request resolves to on a daemon with
// no auth configured: weight 1, no quota, no rate limit — the open,
// single-tenant behavior the service had before multi-tenancy.
const DefaultTenant = "default"

// tenantState is the runtime state of one tenant: its admission limits
// (max-in-flight quota and submission-rate token bucket) and its counters.
// Scheduling state (per-class queues, the fair-share virtual-time tag) lives
// in the scheduler, keyed by the same tenant; Stats joins the two views.
//
// tenantState's lock is a leaf: it is taken with s.mu held (admission under
// the submit critical section) and on its own (slot release at settle), and
// never takes another lock itself.
type tenantState struct {
	name        string
	weight      int
	maxInflight int     // 0 = unlimited
	ratePerSec  float64 // 0 = unlimited
	burst       float64

	mu         sync.Mutex
	tokens     float64
	lastRefill time.Time
	inflight   int // primary jobs currently queued or running for this tenant

	submitted     uint64 // accepted submissions
	completed     uint64 // primary jobs settled done
	rejectedQuota uint64
	rejectedRate  uint64
}

func newTenantState(cfg TenantConfig) *tenantState {
	t := &tenantState{
		name:        cfg.Name,
		weight:      cfg.Weight,
		maxInflight: cfg.MaxInflight,
		ratePerSec:  cfg.RatePerSec,
		burst:       float64(cfg.Burst),
	}
	if t.weight < 1 {
		t.weight = 1
	}
	if t.ratePerSec > 0 && t.burst < 1 {
		// A limited tenant can always burst at least one submission.
		t.burst = t.ratePerSec
		if t.burst < 1 {
			t.burst = 1
		}
	}
	t.tokens = t.burst
	return t
}

// allowRate consumes one token from the tenant's submission-rate bucket,
// reporting whether the submission is admitted. Unlimited tenants always
// pass.
func (t *tenantState) allowRate(now time.Time) bool {
	if t.ratePerSec <= 0 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.lastRefill.IsZero() {
		t.tokens += now.Sub(t.lastRefill).Seconds() * t.ratePerSec
		if t.tokens > t.burst {
			t.tokens = t.burst
		}
	}
	t.lastRefill = now
	if t.tokens < 1 {
		t.rejectedRate++
		return false
	}
	t.tokens--
	return true
}

// acquireSlot claims one in-flight job slot against the tenant's quota.
func (t *tenantState) acquireSlot() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.maxInflight > 0 && t.inflight >= t.maxInflight {
		t.rejectedQuota++
		return false
	}
	t.inflight++
	return true
}

func (t *tenantState) releaseSlot() {
	t.mu.Lock()
	t.inflight--
	t.mu.Unlock()
}

func (t *tenantState) noteSubmitted() {
	t.mu.Lock()
	t.submitted++
	t.mu.Unlock()
}

func (t *tenantState) noteCompleted() {
	t.mu.Lock()
	t.completed++
	t.mu.Unlock()
}

// TenantStats is one tenant's section of GET /stats: admission limits and
// counters joined with the scheduler's per-class queue depths.
type TenantStats struct {
	// Name and Weight identify the tenant and its fair share.
	Name   string `json:"name"`
	Weight int    `json:"weight"`
	// Inflight is the number of primary jobs currently queued or running;
	// MaxInflight is its quota (0 = unlimited).
	Inflight    int `json:"inflight"`
	MaxInflight int `json:"max_inflight,omitempty"`
	// QueuedInteractive/QueuedBulk are the tenant's scheduler queue depths
	// by priority class; Dispatched counts scheduler picks.
	QueuedInteractive int    `json:"queued_interactive"`
	QueuedBulk        int    `json:"queued_bulk"`
	Dispatched        uint64 `json:"dispatched"`
	// Submitted counts accepted submissions; Completed counts primary jobs
	// settled done; RejectedQuota/RejectedRate count submissions refused at
	// admission (neither registers a job nor consumes a scheduler slot).
	Submitted     uint64 `json:"submitted"`
	Completed     uint64 `json:"completed"`
	RejectedQuota uint64 `json:"rejected_quota"`
	RejectedRate  uint64 `json:"rejected_rate"`
}

// snapshot copies the tenant's admission-side stats (the scheduler fills in
// queue depths and dispatch counts).
func (t *tenantState) snapshot() TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TenantStats{
		Name:          t.name,
		Weight:        t.weight,
		Inflight:      t.inflight,
		MaxInflight:   t.maxInflight,
		Submitted:     t.submitted,
		Completed:     t.completed,
		RejectedQuota: t.rejectedQuota,
		RejectedRate:  t.rejectedRate,
	}
}
