package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
)

// Bearer-token auth and tenant identity.
//
// A daemon started with an auth config (cmd/tssd -auth-file) requires
// `Authorization: Bearer <token>` on every /v1/* endpoint — job submission,
// inspection, cancellation, and fleet registration alike. Each token maps to
// a tenant, and the tenant carries the daemon's multi-tenant policy: a
// fair-share weight (see sched.go), a max-in-flight job quota, and a
// submission rate limit. /stats and /healthz stay open: health probes and
// metrics scrapers need no identity.
//
// Without an auth config the daemon is open, exactly as before multi-tenancy:
// every request resolves to the built-in DefaultTenant with weight 1 and no
// limits.

// TenantConfig declares one tenant in the auth config file.
type TenantConfig struct {
	// Name identifies the tenant in /stats, job listings, and scheduling.
	Name string `json:"name"`
	// Token is the bearer token that authenticates as this tenant.
	Token string `json:"token"`
	// Weight is the tenant's fair-share weight (default 1): under
	// saturation, tenants receive worker time proportionally to weight.
	Weight int `json:"weight,omitempty"`
	// MaxInflight bounds the tenant's concurrently queued + running primary
	// jobs (0 = unlimited). Cache hits and coalesced submissions don't
	// consume quota — they never occupy a worker.
	MaxInflight int `json:"max_inflight,omitempty"`
	// RatePerSec bounds the tenant's submission rate via a token bucket
	// (0 = unlimited); Burst is the bucket size (default max(1, RatePerSec)).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      int     `json:"burst,omitempty"`
}

// AuthConfig is the daemon's static token table (Config.Auth, loaded from
// cmd/tssd -auth-file).
type AuthConfig struct {
	Tenants []TenantConfig `json:"tenants"`
}

// Validate checks the config for the invariants the daemon relies on:
// nonempty unique names and tokens, sane weights and limits.
func (a *AuthConfig) Validate() error {
	if len(a.Tenants) == 0 {
		return fmt.Errorf("auth config declares no tenants")
	}
	names := make(map[string]bool, len(a.Tenants))
	tokens := make(map[string]bool, len(a.Tenants))
	for i, tc := range a.Tenants {
		if tc.Name == "" {
			return fmt.Errorf("tenant %d has no name", i)
		}
		if tc.Token == "" {
			return fmt.Errorf("tenant %q has no token", tc.Name)
		}
		if names[tc.Name] {
			return fmt.Errorf("duplicate tenant name %q", tc.Name)
		}
		if tokens[tc.Token] {
			return fmt.Errorf("tenant %q reuses another tenant's token", tc.Name)
		}
		names[tc.Name], tokens[tc.Token] = true, true
		if tc.Weight < 0 {
			return fmt.Errorf("tenant %q has negative weight %d", tc.Name, tc.Weight)
		}
		if tc.MaxInflight < 0 || tc.RatePerSec < 0 || tc.Burst < 0 {
			return fmt.Errorf("tenant %q has a negative limit", tc.Name)
		}
	}
	return nil
}

// LoadAuthFile reads and validates a JSON auth config:
//
//	{"tenants": [
//	  {"name": "alice", "token": "s3cret", "weight": 3,
//	   "max_inflight": 8, "rate_per_sec": 50, "burst": 100},
//	  {"name": "bob", "token": "hunter2"}
//	]}
func LoadAuthFile(path string) (*AuthConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("auth file: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var cfg AuthConfig
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("auth file %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("auth file %s: %w", path, err)
	}
	return &cfg, nil
}

// tenantCtxKey carries the authenticated *tenantState through the request
// context from the auth wrapper to the handlers.
type tenantCtxKey struct{}

// protect wraps a /v1 handler with tenant resolution: with auth configured
// the request must carry a known bearer token (else 401 with the
// unauthorized envelope); without, it resolves to the default tenant.
func (s *Server) protect(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, ok := s.authenticate(r)
		if !ok {
			writeError(w, http.StatusUnauthorized, CodeUnauthorized,
				"missing or unknown bearer token")
			return
		}
		h(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, t)))
	}
}

// authenticate resolves the request's tenant.
func (s *Server) authenticate(r *http.Request) (*tenantState, bool) {
	if len(s.tokens) == 0 {
		return s.defaultTenant, true
	}
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(auth, prefix) {
		return nil, false
	}
	t, ok := s.tokens[strings.TrimSpace(auth[len(prefix):])]
	return t, ok
}

// requestTenant returns the tenant the auth wrapper resolved for this
// request (the default tenant if the handler was somehow reached unwrapped).
func (s *Server) requestTenant(r *http.Request) *tenantState {
	if t, ok := r.Context().Value(tenantCtxKey{}).(*tenantState); ok {
		return t
	}
	return s.defaultTenant
}
