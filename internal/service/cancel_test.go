package service

import (
	"context"
	"strings"
	"testing"
	"time"
)

// waitFor polls a job until pred holds (returning its final status) or the
// deadline passes.
func waitFor(t *testing.T, cl *Client, id string, pred func(*SubmitStatus) bool, what string) *SubmitStatus {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := cl.Job(ctx, id)
		if err != nil {
			t.Fatalf("polling %s: %v", id, err)
		}
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never became %s (still %s)", id, what, st.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// longSpec is a sim job big enough to reliably straddle a cancellation
// (tens of thousands of decode intervals of wall time).
func longSpec(seed int64) *JobSpec { return simSpec("cholesky", 60000, seed, 8) }

// quickSpec is a sim job that finishes fast — the probe used to show a
// worker-pool slot was freed.
func quickSpec(seed int64) *JobSpec { return simSpec("fft", 300, seed, 8) }

// assertSlotFree proves the daemon's single worker slot is usable by running
// a fresh quick job to completion.
func assertSlotFree(t *testing.T, cl *Client, seed int64) {
	t.Helper()
	st, err := cl.Submit(context.Background(), quickSpec(seed))
	if err != nil {
		t.Fatalf("probe submit: %v", err)
	}
	if !st.Cached {
		st = waitFor(t, cl, st.ID, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
	}
	if st.Status != StatusDone {
		t.Fatalf("probe job ended %s: %s — worker slot not freed?", st.Status, st.Error)
	}
}

// The cancellation lifecycle, table-driven: every scenario asserts the
// status transitions it induces, that a second DELETE is idempotent (same
// terminal status, no error), and that the worker-pool slot the job held (if
// any) is released.
func TestCancelLifecycle(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		run  func(t *testing.T, srv *Server, cl *Client, seed int64)
	}{
		{"before queue (unknown job)", func(t *testing.T, srv *Server, cl *Client, seed int64) {
			// Cancelling a job that was never submitted is a 404, not a
			// silent success.
			if _, err := cl.Cancel(ctx, "job-999"); err == nil || !strings.Contains(err.Error(), "no such job") {
				t.Fatalf("cancel of unknown job: %v, want 'no such job'", err)
			}
		}},
		{"while queued", func(t *testing.T, srv *Server, cl *Client, seed int64) {
			blocker, err := cl.Submit(ctx, longSpec(seed))
			if err != nil {
				t.Fatal(err)
			}
			queued, err := cl.Submit(ctx, longSpec(seed+1))
			if err != nil {
				t.Fatal(err)
			}
			if queued.Status != StatusQueued {
				t.Fatalf("second job on a 1-worker daemon is %s, want queued", queued.Status)
			}
			// Cancel the queued job: it must flip to cancelled immediately,
			// without waiting for the worker to reach it.
			st, err := cl.Cancel(ctx, queued.ID)
			if err != nil {
				t.Fatal(err)
			}
			if st.Status != StatusCancelled {
				t.Fatalf("queued job is %s after DELETE, want cancelled", st.Status)
			}
			// Its key's inflight slot is released: an identical submission
			// must start fresh, not coalesce onto the cancelled execution.
			again, err := cl.Submit(ctx, longSpec(seed+1))
			if err != nil {
				t.Fatal(err)
			}
			if again.Coalesced || again.Cached {
				t.Fatalf("resubmission after queued-cancel: coalesced=%v cached=%v, want fresh", again.Coalesced, again.Cached)
			}
			// Idempotent double-DELETE, and cleanup of the rest.
			st2, err := cl.Cancel(ctx, queued.ID)
			if err != nil {
				t.Fatal(err)
			}
			if st2.Status != StatusCancelled {
				t.Fatalf("double DELETE: %s, want cancelled", st2.Status)
			}
			for _, id := range []string{again.ID, blocker.ID} {
				if _, err := cl.Cancel(ctx, id); err != nil {
					t.Fatal(err)
				}
				waitFor(t, cl, id, func(s *SubmitStatus) bool { return s.Status == StatusCancelled }, "cancelled")
			}
		}},
		{"mid-run", func(t *testing.T, srv *Server, cl *Client, seed int64) {
			st, err := cl.Submit(ctx, longSpec(seed))
			if err != nil {
				t.Fatal(err)
			}
			// Wait until the engine has demonstrably started retiring
			// tasks, so the cancel lands mid-simulation.
			waitFor(t, cl, st.ID, func(s *SubmitStatus) bool {
				return s.Status == StatusRunning && s.Done > 0
			}, "running with progress")
			cst, err := cl.Cancel(ctx, st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if cst.Status != StatusRunning && cst.Status != StatusCancelled {
				t.Fatalf("job is %s right after mid-run DELETE", cst.Status)
			}
			fin := waitFor(t, cl, st.ID, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
			if fin.Status != StatusCancelled {
				t.Fatalf("mid-run cancel ended %s: %s", fin.Status, fin.Error)
			}
			// The result endpoint must refuse, naming the cancellation.
			if _, err := cl.Result(ctx, st.ID); err == nil || !strings.Contains(err.Error(), "cancelled") {
				t.Fatalf("result of cancelled job: %v, want cancelled conflict", err)
			}
			// Double-DELETE stays cancelled.
			cst2, err := cl.Cancel(ctx, st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if cst2.Status != StatusCancelled {
				t.Fatalf("double DELETE after mid-run cancel: %s", cst2.Status)
			}
		}},
		{"after completion", func(t *testing.T, srv *Server, cl *Client, seed int64) {
			st, err := cl.Submit(ctx, quickSpec(seed))
			if err != nil {
				t.Fatal(err)
			}
			fin := waitFor(t, cl, st.ID, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
			if fin.Status != StatusDone {
				t.Fatalf("job ended %s: %s", fin.Status, fin.Error)
			}
			// DELETE after completion is a no-op: status stays done and
			// the result stays fetchable — including on a repeat DELETE.
			for i := 0; i < 2; i++ {
				cst, err := cl.Cancel(ctx, st.ID)
				if err != nil {
					t.Fatal(err)
				}
				if cst.Status != StatusDone {
					t.Fatalf("DELETE %d flipped a done job to %s", i+1, cst.Status)
				}
			}
			if _, err := cl.Result(ctx, st.ID); err != nil {
				t.Fatalf("result gone after DELETE of done job: %v", err)
			}
			// A cached submission (terminal at birth, no execution
			// context) tolerates DELETE the same way.
			hit, err := cl.Submit(ctx, quickSpec(seed))
			if err != nil {
				t.Fatal(err)
			}
			if !hit.Cached {
				t.Fatalf("repeat submission not served from cache")
			}
			cst, err := cl.Cancel(ctx, hit.ID)
			if err != nil {
				t.Fatal(err)
			}
			if cst.Status != StatusDone {
				t.Fatalf("DELETE flipped a cached job to %s", cst.Status)
			}
		}},
	}

	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, cl := startDaemon(t, Config{Workers: 1})
			tc.run(t, srv, cl, int64(1000*(i+1)))
			// Whatever the scenario did, the single worker slot must be
			// usable afterwards.
			assertSlotFree(t, cl, int64(1000*(i+1))+500)
			// And the counters must conserve: every settled submission is
			// exactly one of completed, failed, cancelled, coalesced, a
			// cache hit, or a disk hit.
			st := srv.Stats()
			if got := st.Completed + st.Failed + st.Cancelled + st.Coalesced + st.CacheHits + st.DiskHits; got != st.Submitted {
				t.Fatalf("conservation violated: completed(%d)+failed(%d)+cancelled(%d)+coalesced(%d)+cache(%d)+disk(%d) = %d, want %d submissions",
					st.Completed, st.Failed, st.Cancelled, st.Coalesced, st.CacheHits, st.DiskHits, got, st.Submitted)
			}
			if st.Inflight != 0 {
				t.Fatalf("%d executions still inflight after drain", st.Inflight)
			}
		})
	}
}

// A cancelled sweep job stops between its constituent simulations and frees
// its slot (sweeps cancel at point granularity rather than engine-poll
// granularity).
func TestCancelSweepJob(t *testing.T) {
	_, cl := startDaemon(t, Config{Workers: 1})
	ctx := context.Background()
	st, err := cl.Submit(ctx, &JobSpec{Kind: KindSweep, Sweep: &SweepSpec{Experiment: "fig16", Seed: i64p(777)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitFor(t, cl, st.ID, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
	if fin.Status != StatusCancelled {
		t.Fatalf("sweep cancel ended %s: %s", fin.Status, fin.Error)
	}
	assertSlotFree(t, cl, 778)
}

// SSE watchers of a cancelled job see the cancelled status transition and a
// terminal "cancelled" event, then the stream ends.
func TestCancelTerminatesEventStream(t *testing.T) {
	_, cl := startDaemon(t, Config{Workers: 1})
	ctx := context.Background()
	st, err := cl.Submit(ctx, longSpec(31337))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, cl, st.ID, func(s *SubmitStatus) bool { return s.Status == StatusRunning && s.Done > 0 }, "running")

	done := make(chan error, 1)
	var sawCancelled bool
	go func() {
		done <- cl.Events(ctx, st.ID, func(ev Event) error {
			if ev.Type == "cancelled" {
				sawCancelled = true
			}
			return nil
		})
	}()
	if _, err := cl.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("event stream: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("event stream did not terminate after cancel")
	}
	if !sawCancelled {
		t.Fatal("no terminal cancelled event on the stream")
	}
}
