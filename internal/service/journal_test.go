package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func TestJournalRecordRoundTrip(t *testing.T) {
	rec := &journalRecord{
		Op: journalOpAccept, ID: "job-7", Key: "abc123", Tenant: "team-a",
		Spec: json.RawMessage(`{"kind":"sim"}`),
	}
	line := encodeJournalRecord(rec)
	got, err := decodeJournalLine(bytes.TrimSuffix(line, []byte("\n")))
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != rec.Op || got.ID != rec.ID || got.Key != rec.Key || got.Tenant != rec.Tenant {
		t.Fatalf("round trip: %+v != %+v", got, rec)
	}

	// Any single flipped byte must fail verification, never decode wrong.
	for i := 0; i < len(line)-1; i++ {
		mut := append([]byte(nil), line...)
		mut[i] ^= 0x40
		if _, err := decodeJournalLine(bytes.TrimSuffix(mut, []byte("\n"))); err == nil {
			// Flipping inside the CRC field can only produce a mismatch;
			// a decode that still passes means the checksum is not binding.
			t.Fatalf("flipped byte %d still decoded", i)
		}
	}
}

// A torn tail — the one corruption a crash mid-append can produce — drops
// only the torn record and everything after it, never a settled prefix.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	jl, live, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 0 {
		t.Fatalf("fresh journal has %d live records", len(live))
	}
	jl.accept("job-1", "key-a", "", json.RawMessage(`{}`))
	jl.accept("job-2", "key-b", "", json.RawMessage(`{}`))
	jl.settleKey("key-a", StatusDone)
	jl.Close()

	// Tear the file mid-record: append half a valid line.
	full := encodeJournalRecord(&journalRecord{Op: journalOpAccept, ID: "job-3", Key: "key-c"})
	f, err := os.OpenFile(filepath.Join(dir, journalFileName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(full[:len(full)/2])
	f.Close()

	jl2, live2, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if len(live2) != 1 || live2[0].ID != "job-2" {
		t.Fatalf("live after torn tail: %+v, want just job-2", live2)
	}
	if st := jl2.stats(); st.CorruptDropped != 1 {
		t.Fatalf("corrupt counter %d, want 1", st.CorruptDropped)
	}
	// Open compacted the file: a third open sees a clean journal with the
	// same live set and no corruption.
	jl2.Close()
	jl3, live3, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jl3.Close()
	if len(live3) != 1 || live3[0].ID != "job-2" || jl3.stats().CorruptDropped != 0 {
		t.Fatalf("post-compaction open: live=%+v corrupt=%d", live3, jl3.stats().CorruptDropped)
	}
}

// Compaction keeps the file proportional to the live set, not the history,
// and preserves the ID watermark so settled IDs are never re-issued.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	jl, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3000; i++ {
		id := "job-" + strconv.Itoa(i)
		key := "key-" + strconv.Itoa(i)
		jl.accept(id, key, "", json.RawMessage(`{}`))
		jl.settleKey(key, StatusDone)
	}
	jl.accept("job-3001", "key-live", "", json.RawMessage(`{}`))
	jl.Close()

	info, err := os.Stat(filepath.Join(dir, journalFileName))
	if err != nil {
		t.Fatal(err)
	}
	// 6000 records at ~100 bytes each would be ~600 KiB without compaction.
	if info.Size() > 64<<10 {
		t.Fatalf("journal grew to %d bytes despite compaction", info.Size())
	}

	jl2, live, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if len(live) != 1 || live[0].ID != "job-3001" {
		t.Fatalf("live after compaction: %+v", live)
	}
	if wm := jl2.seqWatermark(); wm != 3001 {
		t.Fatalf("watermark %d survived compaction, want 3001", wm)
	}
}

// journaledServer starts a daemon whose journal and result store live under
// dir, so a successor opened on the same dir recovers its state.
func journaledServer(t *testing.T, dir string, cfg Config) (*Server, *Client, *httptest.Server) {
	t.Helper()
	cfg.JournalDir = filepath.Join(dir, "journal")
	cfg.CacheDir = filepath.Join(dir, "cache")
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	return srv, NewClient(hs.URL), hs
}

// The replay acceptance bar: kill a daemon with work queued and running,
// restart on the same journal, and every job settles under its original ID
// with bytes identical to a fault-free run — while work that settled into
// the store before the crash is never executed a second time.
func TestJournalReplayRecoversKilledJobs(t *testing.T) {
	dir := t.TempDir()
	srvA, clA, hsA := journaledServer(t, dir, Config{Workers: 2})
	ctx := context.Background()

	// Phase 1: settle one job durably, then load the daemon and kill it.
	settled, err := clA.Submit(ctx, quickSpec(90))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, clA, settled.ID, func(s *SubmitStatus) bool { return s.Status == StatusDone }, "done")

	specs := []*JobSpec{quickSpec(91), quickSpec(92), quickSpec(93), quickSpec(94)}
	ids := make([]string, len(specs))
	for i, sp := range specs {
		st, err := clA.Submit(ctx, sp)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	srvA.Kill()
	hsA.Close()

	// Phase 2: a successor on the same dirs recovers everything unsettled.
	srvB, clB, hsB := journaledServer(t, dir, Config{Workers: 2})
	t.Cleanup(func() { hsB.Close(); srvB.Close() })

	for i, id := range ids {
		want, err := RunSpec(mustNormalize(t, quickSpec(int64(91+i))))
		if err != nil {
			t.Fatal(err)
		}
		st, err := clB.Job(ctx, id)
		if err != nil {
			// Settled (and journal-cleared) before the kill: its result must
			// still be one disk read away.
			re, serr := clB.Submit(ctx, specs[i])
			if serr != nil {
				t.Fatalf("job %s gone after crash and resubmission failed: %v", id, serr)
			}
			st, err = clB.Job(ctx, re.ID)
			if err != nil {
				t.Fatal(err)
			}
			id = re.ID
		}
		fin := st
		if !terminalStatus(fin.Status) {
			fin = waitFor(t, clB, id, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
		}
		if fin.Status != StatusDone {
			t.Fatalf("recovered job %s ended %s: %s", id, fin.Status, fin.Error)
		}
		got, err := clB.Result(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("recovered job %s result differs from fault-free run", id)
		}
	}

	// The pre-kill settled job was cleared from the journal: resubmitting its
	// spec must be served from the persistent store, not executed again.
	before := srvB.Stats()
	re, err := clB.Submit(ctx, quickSpec(90))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitFor(t, clB, re.ID, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
	if fin.Status != StatusDone {
		t.Fatalf("store-settled resubmission ended %s", fin.Status)
	}
	after := srvB.Stats()
	if after.Completed != before.Completed {
		t.Fatalf("store-settled job was re-executed (completed %d → %d)", before.Completed, after.Completed)
	}
	if hits := after.DiskHits + after.CacheHits - before.DiskHits - before.CacheHits; hits != 1 {
		t.Fatalf("store-settled resubmission produced %d cache/disk hits, want 1", hits)
	}

	// Replay must never reuse a pre-crash job ID for new work.
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		seen[id] = true
	}
	if seen[re.ID] || re.ID == settled.ID {
		t.Fatalf("successor daemon re-issued pre-crash job ID %s", re.ID)
	}

	// Conservation spans the replay: every submission on B (replayed or new)
	// settled into exactly one terminal bucket, and the journal drained.
	st := srvB.Stats()
	if got := st.Completed + st.Failed + st.Cancelled + st.Coalesced + st.CacheHits + st.DiskHits; got != st.Submitted {
		t.Fatalf("conservation after replay: buckets %d != submitted %d", got, st.Submitted)
	}
	if st.Journal == nil || st.Journal.Live != 0 {
		t.Fatalf("journal not drained after recovery: %+v", st.Journal)
	}
}

// Coalesced submissions recover as a group: two IDs sharing one key before
// the crash still share one execution — and one result — after it.
func TestJournalReplayCoalescing(t *testing.T) {
	dir := t.TempDir()
	// A fleet dispatcher with no workers parks jobs in dispatch wait,
	// guaranteeing both submissions are live (and coalesced) at the kill.
	srvA, clA, hsA := journaledServer(t, dir, Config{Fleet: true, NoWorkerWait: 0})
	ctx := context.Background()

	spec := quickSpec(77)
	st1, err := clA.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := clA.Submit(ctx, quickSpec(77))
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Coalesced {
		t.Fatalf("second identical submission not coalesced")
	}
	srvA.Kill()
	hsA.Close()

	srvB, clB, hsB := journaledServer(t, dir, Config{Workers: 2})
	t.Cleanup(func() { hsB.Close(); srvB.Close() })

	want, err := RunSpec(mustNormalize(t, quickSpec(77)))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{st1.ID, st2.ID} {
		fin := waitFor(t, clB, id, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
		if fin.Status != StatusDone {
			t.Fatalf("replayed job %s ended %s: %s", id, fin.Status, fin.Error)
		}
		got, err := clB.Result(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("replayed job %s result differs", id)
		}
	}
	// One execution, two settled IDs: the coalescing structure survived.
	st := srvB.Stats()
	if st.Completed != 1 || st.Coalesced != 1 {
		t.Fatalf("replayed pair: completed=%d coalesced=%d, want 1/1", st.Completed, st.Coalesced)
	}
}

// A clean shutdown settles everything: the successor daemon replays nothing.
func TestJournalCleanShutdownReplaysNothing(t *testing.T) {
	dir := t.TempDir()
	srvA, clA, hsA := journaledServer(t, dir, Config{Workers: 2})
	ctx := context.Background()
	st, err := clA.Submit(ctx, quickSpec(88))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, clA, st.ID, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
	hsA.Close()
	srvA.Close()

	srvB, _, hsB := journaledServer(t, dir, Config{Workers: 2})
	t.Cleanup(func() { hsB.Close(); srvB.Close() })
	js := srvB.Stats().Journal
	if js == nil || js.Replayed != 0 || js.Live != 0 {
		t.Fatalf("clean shutdown left journal state: %+v", js)
	}
}

func mustNormalize(t *testing.T, spec *JobSpec) *JobSpec {
	t.Helper()
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	return spec
}
