package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tasksuperscalar/internal/faults"
	"tasksuperscalar/tss"
)

// The persistent layer of the result cache: one file per content-addressed
// result under a directory (cmd/tssd -cache-dir), so the fleet's result
// space survives daemon restarts. Every file is a self-verifying envelope —
// magic, a JSON header binding the job key, tss.SimVersion, and a payload
// checksum, then the payload — written atomically (temp file + rename).
// Anything that fails verification (truncation, bit flips, a result produced
// under different simulator semantics) is treated as a miss and removed;
// the store never serves bytes it cannot prove are the keyed result.

// envelopeMagic brands a result file; envelopeVersion versions the header
// schema itself, so the format can evolve without misreading old files.
const (
	envelopeMagic   = "TSSDRES1"
	envelopeVersion = "tssd-env/1"
)

// maxEnvelopeHeader bounds the header line a decoder will scan for, keeping
// decode cost O(1) on arbitrary junk files.
const maxEnvelopeHeader = 4 << 10

// envelopeHeader is the JSON line between the magic and the payload.
type envelopeHeader struct {
	// V is the envelope schema version (envelopeVersion).
	V string `json:"v"`
	// Key is the job content address the payload belongs to.
	Key string `json:"key"`
	// Sim is tss.SimVersion at write time; a mismatch means the payload
	// was produced by different simulator semantics and must not be served.
	Sim string `json:"sim"`
	// Len and SHA256 are the payload's length and hex checksum.
	Len    int64  `json:"len"`
	SHA256 string `json:"sha256"`
}

// encodeEnvelope renders the canonical on-disk form of one result.
func encodeEnvelope(key string, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	hdr, _ := json.Marshal(envelopeHeader{
		V:      envelopeVersion,
		Key:    key,
		Sim:    tss.SimVersion,
		Len:    int64(len(payload)),
		SHA256: hex.EncodeToString(sum[:]),
	})
	var b bytes.Buffer
	b.Grow(len(envelopeMagic) + 1 + len(hdr) + 1 + len(payload))
	b.WriteString(envelopeMagic)
	b.WriteByte('\n')
	b.Write(hdr)
	b.WriteByte('\n')
	b.Write(payload)
	return b.Bytes()
}

// decodeEnvelope verifies an on-disk envelope against the key it was looked
// up under and returns the payload. Every failure mode — short file, wrong
// magic, unparseable or foreign-version header, key mismatch, foreign
// tss.SimVersion, length or checksum mismatch — is an error, never a wrong
// payload; callers treat any error as a cache miss.
func decodeEnvelope(key string, b []byte) ([]byte, error) {
	if len(b) < len(envelopeMagic)+1 || string(b[:len(envelopeMagic)]) != envelopeMagic || b[len(envelopeMagic)] != '\n' {
		return nil, fmt.Errorf("envelope: bad magic")
	}
	rest := b[len(envelopeMagic)+1:]
	end := bytes.IndexByte(rest, '\n')
	if end < 0 || end > maxEnvelopeHeader {
		return nil, fmt.Errorf("envelope: missing or oversized header")
	}
	var hdr envelopeHeader
	if err := json.Unmarshal(rest[:end], &hdr); err != nil {
		return nil, fmt.Errorf("envelope: bad header: %w", err)
	}
	if hdr.V != envelopeVersion {
		return nil, fmt.Errorf("envelope: version %q, want %q", hdr.V, envelopeVersion)
	}
	if hdr.Key != key {
		return nil, fmt.Errorf("envelope: keyed %.12s…, looked up as %.12s…", hdr.Key, key)
	}
	if hdr.Sim != tss.SimVersion {
		return nil, fmt.Errorf("envelope: simulator version %q, want %q", hdr.Sim, tss.SimVersion)
	}
	payload := rest[end+1:]
	if int64(len(payload)) != hdr.Len {
		return nil, fmt.Errorf("envelope: %d payload bytes, header says %d", len(payload), hdr.Len)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != hdr.SHA256 {
		return nil, fmt.Errorf("envelope: payload checksum mismatch")
	}
	return payload, nil
}

// DiskStore is the persistent result store: one envelope file per key under
// dir, bounded by a total-byte budget with least-recently-used eviction.
// Recency is persisted as file mtime (refreshed on every hit), so the LRU
// order survives restarts. All methods are safe for concurrent use.
type DiskStore struct {
	dir      string
	maxBytes int64

	// halted freezes the store (Server.Kill crash simulation): reads miss,
	// writes vanish — the post-crash-instant I/O a real power cut loses.
	halted atomic.Bool
	// injector tears writes deterministically under chaos tests (nil in
	// production).
	injector atomic.Pointer[faults.Injector]

	mu      sync.Mutex
	entries map[string]*diskEntry
	bytes   int64
	tick    int64

	hits, misses, evictions, invalid uint64
}

// SetFaults installs (or, with nil, removes) a deterministic fault injector
// consulted on every write. Test instrumentation.
func (s *DiskStore) SetFaults(in *faults.Injector) { s.injector.Store(in) }

// halt freezes the store for crash simulation.
func (s *DiskStore) halt() { s.halted.Store(true) }

type diskEntry struct {
	size int64
	tick int64 // recency: higher = more recently used
}

// isResultKey reports whether name is a well-formed content address (the hex
// SHA-256 JobSpec.Key produces) — the only filenames the store creates or
// will read, so stray files in the directory are never touched.
func isResultKey(name string) bool {
	if len(name) != 64 {
		return false
	}
	_, err := hex.DecodeString(name)
	return err == nil
}

// OpenDiskStore opens (creating if needed) the persistent store at dir with
// the given byte budget (non-positive: 1 GiB). Existing envelope files are
// indexed by mtime so the LRU order carries over from the previous process;
// if the directory already exceeds the budget, the oldest entries are
// evicted immediately.
func OpenDiskStore(dir string, maxBytes int64) (*DiskStore, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 30
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache dir: %w", err)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cache dir: %w", err)
	}
	type scanned struct {
		key   string
		size  int64
		mtime time.Time
	}
	var found []scanned
	for _, de := range des {
		if de.IsDir() || !isResultKey(de.Name()) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with removal; skip
		}
		found = append(found, scanned{key: de.Name(), size: info.Size(), mtime: info.ModTime()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	s := &DiskStore{dir: dir, maxBytes: maxBytes, entries: make(map[string]*diskEntry, len(found))}
	for _, f := range found {
		s.tick++
		s.entries[f.key] = &diskEntry{size: f.size, tick: s.tick}
		s.bytes += f.size
	}
	s.evictLocked()
	return s, nil
}

// path returns the envelope file for a key.
func (s *DiskStore) path(key string) string { return filepath.Join(s.dir, key) }

// Get reads, verifies, and returns the payload stored for key. A verification
// failure removes the file and counts as a miss (plus the invalid counter) —
// a corrupted store degrades to re-simulation, never to wrong results. Hits
// refresh both the in-memory recency and the file mtime, so the LRU order
// survives a restart.
func (s *DiskStore) Get(key string) ([]byte, bool) {
	if !isResultKey(key) || s.halted.Load() {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	b, err := os.ReadFile(s.path(key))
	if err == nil {
		var payload []byte
		payload, err = decodeEnvelope(key, b)
		if err == nil {
			s.hits++
			s.tick++
			ent.tick = s.tick
			now := time.Now()
			os.Chtimes(s.path(key), now, now)
			return payload, true
		}
	}
	// Unreadable or failed verification: drop the entry so the key is
	// re-simulated and re-written cleanly.
	os.Remove(s.path(key))
	s.bytes -= ent.size
	delete(s.entries, key)
	s.invalid++
	s.misses++
	return nil, false
}

// Put writes the payload for key atomically and durably: temp file, fsync
// the file, rename into place, fsync the directory. Without the fsyncs the
// atomic-write design is a fair-weather claim — after a crash the kernel may
// surface a truncated envelope (data not yet flushed) or no file at all (the
// rename's directory entry not yet flushed), which is exactly the torn state
// the envelope checksums then catch only by discarding the result. A payload
// whose envelope exceeds the whole budget is not stored; a key already
// present is left untouched (content addressing makes rewrites pointless).
func (s *DiskStore) Put(key string, payload []byte) {
	if !isResultKey(key) || s.halted.Load() {
		return
	}
	env := encodeEnvelope(key, payload)
	// Deterministic crash simulation: a torn write keeps only a prefix and
	// skips every fsync, modeling a power cut mid-write. The truncated
	// envelope fails verification on the next Get and heals (miss + remove).
	torn := false
	if f := s.injector.Load().At(faults.StoreWrite); f.Kind == faults.Torn {
		n := f.After
		if n >= len(env) {
			n = len(env) / 2
		}
		env = env[:n]
		torn = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if int64(len(env)) > s.maxBytes {
		return
	}
	if _, ok := s.entries[key]; ok {
		return
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(env)
	if werr == nil && !torn {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if !torn {
		syncDir(s.dir)
	}
	s.tick++
	s.entries[key] = &diskEntry{size: int64(len(env)), tick: s.tick}
	s.bytes += int64(len(env))
	s.evictLocked()
}

// evictLocked removes lowest-tick entries until the store fits its budget.
// Caller holds s.mu.
func (s *DiskStore) evictLocked() {
	for s.bytes > s.maxBytes && len(s.entries) > 0 {
		var oldestKey string
		var oldest *diskEntry
		for k, e := range s.entries {
			if oldest == nil || e.tick < oldest.tick {
				oldestKey, oldest = k, e
			}
		}
		os.Remove(s.path(oldestKey))
		s.bytes -= oldest.size
		delete(s.entries, oldestKey)
		s.evictions++
	}
}

// DiskStats is the persistent-layer section of /stats (CacheStats.Disk).
type DiskStats struct {
	// Dir is the store directory; Entries/Bytes its occupancy and MaxBytes
	// the configured budget.
	Dir      string `json:"dir"`
	Entries  int    `json:"entries"`
	Bytes    int64  `json:"bytes"`
	MaxBytes int64  `json:"max_bytes"`
	// Hits, Misses, and Evictions count Get outcomes and budget evictions;
	// Invalid counts files dropped because they failed envelope
	// verification (truncation, corruption, foreign simulator version).
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Invalid   uint64 `json:"invalid"`
}

// Stats snapshots the store counters.
func (s *DiskStore) Stats() DiskStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return DiskStats{
		Dir:       s.dir,
		Entries:   len(s.entries),
		Bytes:     s.bytes,
		MaxBytes:  s.maxBytes,
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
		Invalid:   s.invalid,
	}
}
