package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tasksuperscalar/internal/experiments"
	"tasksuperscalar/internal/workloads"
	"tasksuperscalar/tss"
)

// startDaemon spins up a full tssd over httptest and returns a client for it.
func startDaemon(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, NewClient(hs.URL)
}

func ip(v int) *int { return &v }

func i64p(v int64) *int64 { return &v }

func simSpec(workload string, tasks int, seed int64, cores int) *JobSpec {
	return &JobSpec{
		Kind: KindSim,
		Sim: &SimSpec{
			Workload: workload, Tasks: &tasks, Seed: &seed,
			Machine: MachineSpec{Cores: cores},
		},
	}
}

// The tentpole end-to-end path: submit → SSE progress → result, with the
// result byte-identical to a direct in-process run of the same spec, and a
// second identical submission answered from the cache (verified by the
// /stats hit counter) with the same bytes.
func TestSubmitSSEResultAndCacheHit(t *testing.T) {
	_, cl := startDaemon(t, Config{Workers: 2})
	ctx := context.Background()

	spec := simSpec("cholesky", 6000, 7, 64)

	// Direct run of the same spec, through the same normalize/config path
	// a daemon uses.
	directSpec := simSpec("cholesky", 6000, 7, 64)
	if err := directSpec.Normalize(); err != nil {
		t.Fatal(err)
	}
	wl, _ := workloads.ByName(directSpec.Sim.Workload)
	b := wl.Gen(*directSpec.Sim.Tasks, *directSpec.Sim.Seed)
	res, err := tss.RunTasks(b.Tasks, directSpec.Sim.Config())
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeSimResult(directSpec.Sim, res)
	if err != nil {
		t.Fatal(err)
	}

	st, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached {
		t.Fatal("first submission must not be a cache hit")
	}

	var progress []struct{ Done, Total uint64 }
	var sawResult []byte
	final, err := cl.Wait(ctx, st.ID, func(ev Event) {
		switch ev.Type {
		case "progress":
			var p struct{ Done, Total uint64 }
			if err := json.Unmarshal(ev.Data, &p); err != nil {
				t.Errorf("bad progress payload %q: %v", ev.Data, err)
			}
			progress = append(progress, p)
		case "result":
			sawResult = append([]byte(nil), ev.Data...)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	if len(progress) < 2 {
		t.Fatalf("want at least 2 SSE progress events, got %d", len(progress))
	}
	last := progress[len(progress)-1]
	if last.Done != last.Total || last.Total == 0 {
		t.Fatalf("final progress %d/%d, want complete", last.Done, last.Total)
	}

	got, err := cl.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("daemon result differs from direct run:\n got: %s\nwant: %s", got, want)
	}
	if !bytes.Equal(sawResult, want) {
		t.Fatalf("SSE result event differs from direct run")
	}

	// Second identical submission: served from cache, byte-identical,
	// hit counter incremented, and no second simulation ran.
	before, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := cl.Submit(ctx, simSpec("cholesky", 6000, 7, 64))
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.Status != StatusDone {
		t.Fatalf("second submission: cached=%v status=%s, want cached done", st2.Cached, st2.Status)
	}
	if st2.Key != st.Key {
		t.Fatalf("identical specs got different keys %s vs %s", st.Key, st2.Key)
	}
	got2, err := cl.Result(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want) {
		t.Fatal("cached result not byte-identical to the original run")
	}
	after, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cache.Hits != before.Cache.Hits+1 {
		t.Fatalf("cache hits %d → %d, want +1", before.Cache.Hits, after.Cache.Hits)
	}
	if after.Completed != before.Completed {
		t.Fatalf("completed executions changed %d → %d: the cache hit re-simulated",
			before.Completed, after.Completed)
	}
}

// Defaulted and explicit-default specs must share one content address, and
// workload names are case-insensitive.
func TestSpecNormalizationSharesKeys(t *testing.T) {
	a := &JobSpec{Kind: KindSim, Sim: &SimSpec{Workload: "CHOLESKY"}}
	b := simSpec("cholesky", 3000, 42, 256)
	for _, s := range []*JobSpec{a, b} {
		if err := s.Normalize(); err != nil {
			t.Fatal(err)
		}
	}
	if a.Key() != b.Key() {
		t.Fatalf("defaulted spec key %s != explicit default key %s", a.Key(), b.Key())
	}
}

// An explicit zero seed is a legitimate seed: it must survive normalization
// (not be rewritten to the default) and address a different result than the
// default. Explicit zero task budgets are rejected, not defaulted.
func TestExplicitZeroSeedHonored(t *testing.T) {
	zero := simSpec("cholesky", 3000, 0, 256)
	if err := zero.Normalize(); err != nil {
		t.Fatal(err)
	}
	if *zero.Sim.Seed != 0 {
		t.Fatalf("explicit seed 0 rewritten to %d", *zero.Sim.Seed)
	}
	def := &JobSpec{Kind: KindSim, Sim: &SimSpec{Workload: "cholesky"}}
	if err := def.Normalize(); err != nil {
		t.Fatal(err)
	}
	if zero.Key() == def.Key() {
		t.Fatal("seed 0 and default seed share a key")
	}

	sweepZero := &JobSpec{Kind: KindSweep, Sweep: &SweepSpec{Experiment: "table1", Seed: i64p(0)}}
	if err := sweepZero.Normalize(); err != nil {
		t.Fatal(err)
	}
	if *sweepZero.Sweep.Seed != 0 {
		t.Fatalf("explicit sweep seed 0 rewritten to %d", *sweepZero.Sweep.Seed)
	}

	badTasks := simSpec("cholesky", 0, 7, 256)
	if err := badTasks.Normalize(); err == nil {
		t.Fatal("explicit tasks 0 accepted")
	}
}

// A sweep job's output and points must match a direct run of the same
// experiment, and its output must stream back as SSE log events.
func TestSweepJobMatchesDirectRun(t *testing.T) {
	_, cl := startDaemon(t, Config{Workers: 2})
	ctx := context.Background()

	var buf bytes.Buffer
	sink := &experiments.Sink{}
	e, _ := experiments.Get("table1")
	if err := e.Run(&buf, experiments.Options{Quick: true, Seed: 42, Cores: 256, Workers: 1, Sink: sink}); err != nil {
		t.Fatal(err)
	}

	st, err := cl.Submit(ctx, &JobSpec{Kind: KindSweep, Sweep: &SweepSpec{Experiment: "table1"}})
	if err != nil {
		t.Fatal(err)
	}
	var logLines []string
	final, err := cl.Wait(ctx, st.ID, func(ev Event) {
		if ev.Type == "log" {
			var l struct{ Line string }
			if err := json.Unmarshal(ev.Data, &l); err != nil {
				t.Errorf("bad log payload: %v", err)
			}
			logLines = append(logLines, l.Line)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("sweep ended %s: %s", final.Status, final.Error)
	}
	var res SweepResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Output != buf.String() {
		t.Fatalf("sweep output differs from direct run:\n got: %q\nwant: %q", res.Output, buf.String())
	}
	if want := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n"); len(logLines) != len(want) {
		t.Fatalf("streamed %d log lines, direct output has %d", len(logLines), len(want))
	}
	if len(res.Points) != len(sink.Points()) {
		t.Fatalf("sweep returned %d points, direct run recorded %d", len(res.Points), len(sink.Points()))
	}
}

// The acceptance bar: ≥32 concurrent sweep-job clients (plus sim clients)
// against one daemon under -race, with every client of the same key
// observing byte-identical results, and submissions either simulated once,
// coalesced onto an in-flight run, or served from cache — never re-run.
func TestConcurrentClients(t *testing.T) {
	srv, cl := startDaemon(t, Config{Workers: 4})
	ctx := context.Background()

	// Eight distinct job contents shared by 40 clients: six sweep specs
	// (different seeds so they cannot coalesce with each other) and two
	// sim specs.
	specs := make([]*JobSpec, 0, 8)
	for i := 0; i < 6; i++ {
		specs = append(specs, &JobSpec{Kind: KindSweep,
			Sweep: &SweepSpec{Experiment: "table1", Seed: i64p(int64(100 + i))}})
	}
	specs = append(specs,
		simSpec("matmul", 400, 5, 16),
		simSpec("fft", 400, 9, 16),
	)

	const clients = 40
	results := make([]struct {
		key   string
		bytes []byte
	}, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := specs[i%len(specs)]
			st, err := cl.Submit(ctx, spec)
			if err != nil {
				t.Errorf("client %d submit: %v", i, err)
				return
			}
			if !st.Cached {
				if st, err = cl.Wait(ctx, st.ID, nil); err != nil {
					t.Errorf("client %d wait: %v", i, err)
					return
				}
				if st.Status != StatusDone {
					t.Errorf("client %d job %s: %s", i, st.Status, st.Error)
					return
				}
			}
			body, err := cl.Result(ctx, st.ID)
			if err != nil {
				t.Errorf("client %d result: %v", i, err)
				return
			}
			results[i].key = st.Key
			results[i].bytes = body
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Every client holding the same key must hold identical bytes.
	byKey := map[string][]byte{}
	for i, r := range results {
		if prev, ok := byKey[r.key]; ok {
			if !bytes.Equal(prev, r.bytes) {
				t.Fatalf("client %d: result bytes diverge for key %s", i, r.key)
			}
		} else {
			byKey[r.key] = r.bytes
		}
	}
	if len(byKey) != len(specs) {
		t.Fatalf("saw %d distinct keys, want %d", len(byKey), len(specs))
	}

	// Conservation: every submission was either a fresh execution, a
	// coalesce onto one, or a cache/disk hit — and only len(specs)
	// executions ever ran. (Job-level CacheHits, not store-level
	// Cache.Hits: sweep sharding probes the store once per point.)
	st := srv.Stats()
	if st.Completed != uint64(len(specs)) {
		t.Fatalf("ran %d executions for %d distinct specs", st.Completed, len(specs))
	}
	if got := st.Completed + st.Coalesced + st.CacheHits + st.DiskHits; got != clients {
		t.Fatalf("executions(%d) + coalesced(%d) + cache(%d) + disk(%d) = %d, want %d submissions",
			st.Completed, st.Coalesced, st.CacheHits, st.DiskHits, got, clients)
	}
	if st.Failed != 0 || st.Inflight != 0 {
		t.Fatalf("failed=%d inflight=%d after drain", st.Failed, st.Inflight)
	}

	// A repeat wave of every spec is now answered entirely from cache.
	for i, spec := range specs {
		st, err := cl.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Cached {
			t.Fatalf("repeat submission %d not served from cache", i)
		}
		body, err := cl.Result(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, byKey[st.Key]) {
			t.Fatalf("repeat submission %d: cached bytes differ", i)
		}
	}
}

// Beyond MaxJobs the oldest finished job records — and the result bytes
// their executions pin — are evicted (404 afterwards), so daemon memory is
// bounded by the LRU cache plus MaxJobs records, not the submission history.
func TestJobRegistryBounded(t *testing.T) {
	srv, cl := startDaemon(t, Config{Workers: 2, MaxJobs: 3})
	ctx := context.Background()
	var firstID string
	for i := 0; i < 6; i++ {
		st, err := cl.Submit(ctx, simSpec("cholesky", 600, int64(i+1), 8))
		if err != nil {
			t.Fatal(err)
		}
		if st, err = cl.Wait(ctx, st.ID, nil); err != nil || st.Status != StatusDone {
			t.Fatalf("job %d: %v / %+v", i, err, st)
		}
		if i == 0 {
			firstID = st.ID
		}
	}
	srv.mu.Lock()
	n := len(srv.jobs)
	srv.mu.Unlock()
	if n > 3 {
		t.Fatalf("registry holds %d records, bound is 3", n)
	}
	if _, err := cl.Job(ctx, firstID); err == nil {
		t.Fatalf("oldest job %s should have been evicted", firstID)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, cl := startDaemon(t, Config{Workers: 1})
	ctx := context.Background()
	bad := []*JobSpec{
		{},
		{Kind: "simulate"},
		{Kind: KindSim},
		{Kind: KindSim, Sim: &SimSpec{Workload: "nope"}},
		{Kind: KindSim, Sim: &SimSpec{Workload: "cholesky", Machine: MachineSpec{Runtime: "quantum"}}},
		{Kind: KindSweep, Sweep: &SweepSpec{Experiment: "fig99"}},
		{Kind: KindSweep, Sweep: &SweepSpec{Experiment: "fig12"}, Sim: &SimSpec{Workload: "fft"}},
	}
	for i, spec := range bad {
		if _, err := cl.Submit(ctx, spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if _, err := cl.Job(ctx, "job-999"); err == nil || !strings.Contains(err.Error(), "no such job") {
		t.Errorf("unknown job lookup: %v", err)
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Submitted != 0 {
		t.Errorf("rejected specs counted as submissions: %d", stats.Submitted)
	}
}

// Identical fingerprints must guarantee identical results across distinct
// machine-shape specs too: a spec differing in any machine knob gets a
// different key.
func TestKeySensitivity(t *testing.T) {
	base := simSpec("cholesky", 6000, 7, 64)
	if err := base.Normalize(); err != nil {
		t.Fatal(err)
	}
	variants := []*JobSpec{
		simSpec("cholesky", 801, 7, 32),
		simSpec("cholesky", 800, 8, 32),
		simSpec("cholesky", 800, 7, 64),
		simSpec("matmul", 800, 7, 32),
		{Kind: KindSim, Sim: &SimSpec{Workload: "cholesky", Tasks: ip(800), Seed: i64p(7),
			Machine: MachineSpec{Cores: 32, Runtime: "software"}}},
		{Kind: KindSim, Sim: &SimSpec{Workload: "cholesky", Tasks: ip(800), Seed: i64p(7),
			Machine: MachineSpec{Cores: 32, Memory: true}}},
		{Kind: KindSim, Sim: &SimSpec{Workload: "cholesky", Tasks: ip(800), Seed: i64p(7),
			Machine: MachineSpec{Cores: 32, TRS: 4}}},
	}
	seen := map[string]int{base.Key(): -1}
	for i, v := range variants {
		if err := v.Normalize(); err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[v.Key()]; dup {
			t.Errorf("variant %d key collides with %d", i, prev)
		}
		seen[v.Key()] = i
	}
}

// A job's polled status must close the full lifecycle and carry final
// progress; fetching the result of a job that failed reports the error.
func TestJobLifecycleAndFailureSurface(t *testing.T) {
	_, cl := startDaemon(t, Config{Workers: 1})
	ctx := context.Background()

	st, err := cl.Submit(ctx, simSpec("cholesky", 600, 3, 8))
	if err != nil {
		t.Fatal(err)
	}
	final, err := cl.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	if final.Done == 0 || final.Done != final.Total {
		t.Fatalf("final progress %d/%d, want complete and nonzero", final.Done, final.Total)
	}
	if len(final.Key) != 64 {
		t.Fatalf("key %q is not a hex sha256", final.Key)
	}
}
