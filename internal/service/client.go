package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is the Go client for a tssd daemon. The zero HTTP client uses
// http.DefaultClient; Base is the daemon's root URL (e.g.
// "http://localhost:7077").
type Client struct {
	// Base is the daemon root URL, without a trailing slash.
	Base string
	// HTTP optionally overrides the transport (nil uses
	// http.DefaultClient).
	HTTP *http.Client
}

// NewClient returns a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError decodes a non-2xx response into an error.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("tssd: %s (%s)", e.Error, resp.Status)
	}
	return fmt.Errorf("tssd: %s: %s", resp.Status, strings.TrimSpace(string(body)))
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// DispatchPathHeader carries the chain of dispatcher instance IDs a job has
// passed through (comma-separated). A daemon that finds its own instance in
// the incoming chain rejects the submission: the fleet topology contains a
// dispatch cycle that would otherwise coalesce a job with itself and hang.
const DispatchPathHeader = "X-Tssd-Dispatch-Path"

// Submit posts a job spec and returns the accepted job's status (which is
// already terminal for cache hits).
func (c *Client) Submit(ctx context.Context, spec *JobSpec) (*SubmitStatus, error) {
	return c.SubmitVia(ctx, spec, nil)
}

// SubmitVia is Submit carrying the dispatch chain that routed the job here
// (used by fleet dispatchers relaying to workers; see DispatchPathHeader).
func (c *Client) SubmitVia(ctx context.Context, spec *JobSpec, via []string) (*SubmitStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if len(via) > 0 {
		req.Header.Set(DispatchPathHeader, strings.Join(via, ","))
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	var st SubmitStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches a job's current status (result included once done).
func (c *Client) Job(ctx context.Context, id string) (*SubmitStatus, error) {
	var st SubmitStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel requests cooperative cancellation of a job (DELETE /v1/jobs/{id})
// and returns the job's status as of the request. Cancellation is
// idempotent: a job that already reached a terminal state is left untouched
// and its settled status is returned, so repeated Cancels converge.
func (c *Client) Cancel(ctx context.Context, id string) (*SubmitStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.Base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	var st SubmitStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Result fetches a finished job's raw canonical result bytes — byte-identical
// to RunSpec of the same spec, whether simulated or served from cache.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Stats fetches the daemon's /stats counters.
func (c *Client) Stats(ctx context.Context) (*ServerStats, error) {
	var st ServerStats
	if err := c.getJSON(ctx, "/stats", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Event is one Server-Sent Event from a job's event stream.
type Event struct {
	// Type is status, progress, log, or a terminal result, error, or
	// cancelled.
	Type string
	// Data is the event's JSON payload.
	Data []byte
}

// Events subscribes to a job's SSE stream and invokes fn for every event
// until the stream ends (after a terminal result/error/cancelled event), fn
// returns an error, or ctx is cancelled. Cancellation aborts the stream
// promptly even while the read is blocked waiting for the server's next
// event: a watchdog closes the response body the moment ctx is done, rather
// than relying on the transport to notice between reads.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			resp.Body.Close() // unblocks the scanner mid-read
		case <-watchDone:
		}
	}()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var ev Event
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.Type = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			ev.Data = append(ev.Data[:0:0], line[len("data: "):]...)
		case line == "":
			if ev.Type == "" && ev.Data == nil {
				continue
			}
			if err := fn(ev); err != nil {
				return err
			}
			ev = Event{}
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return ctx.Err()
}

// Wait follows a job's event stream until it finishes and returns its final
// (terminal) status — done, failed, or cancelled. onEvent (may be nil)
// additionally observes every event — the hook the CLIs use to print
// progress and sweep log lines live. A cancelled ctx aborts the wait
// promptly with ctx's error (the job itself keeps running; use Cancel to
// stop it).
func (c *Client) Wait(ctx context.Context, id string, onEvent func(Event)) (*SubmitStatus, error) {
	err := c.Events(ctx, id, func(ev Event) error {
		if onEvent != nil {
			onEvent(ev)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	st, err := c.Job(ctx, id)
	if err != nil {
		return nil, err
	}
	if !terminalStatus(st.Status) {
		return nil, fmt.Errorf("tssd: event stream ended but job %s is %s", id, st.Status)
	}
	return st, nil
}
