package service

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"encoding/json"
)

// Client is the Go client for a tssd daemon. Construct it with NewClient and
// functional options:
//
//	cl := service.NewClient("http://localhost:7077",
//		service.WithToken("s3cret"),
//		service.WithHTTPClient(&http.Client{Timeout: 0}))
//
// The zero option set uses http.DefaultClient, no auth, and a default
// User-Agent.
type Client struct {
	base      string
	http      *http.Client
	token     string
	userAgent string
	retry     RetryPolicy
}

// ClientOption configures a Client at construction.
type ClientOption func(*Client)

// WithToken sets the bearer token sent as `Authorization: Bearer <token>` on
// every request — required against a daemon running with an auth config.
func WithToken(token string) ClientOption {
	return func(c *Client) { c.token = token }
}

// WithHTTPClient overrides the underlying *http.Client (timeouts, custom
// transports). nil restores http.DefaultClient.
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.http = h }
}

// WithUserAgent overrides the User-Agent header.
func WithUserAgent(ua string) ClientOption {
	return func(c *Client) { c.userAgent = ua }
}

// RetryPolicy bounds the client's transparent retries. The zero policy (or
// Attempts <= 1) disables retrying entirely — every call is single-shot, the
// pre-retry behaviour.
type RetryPolicy struct {
	// Attempts is the total number of tries per call, first attempt
	// included. 5 means up to 4 retries.
	Attempts int
	// Base and Max bound the exponential backoff between attempts
	// (defaults 100ms and 5s). Each delay is jittered ±50%.
	Base time.Duration
	Max  time.Duration
	// Seed drives the jitter stream, making retry timing reproducible. 0
	// derives a seed from the daemon URL.
	Seed int64
}

// WithRetry makes the client retry failed calls under the given policy.
//
// A call is retried only when it failed in a way the daemon itself marks as
// transient: a transport-level error (connection refused/reset mid-restart —
// *url.Error) or an API error whose envelope carries `retryable: true` (503
// queue-full, draining, 429 quota). Terminal rejections (bad spec, auth,
// not-found) fail immediately. Retrying is safe because the API is
// idempotent by construction — submissions are content-addressed, so a
// replayed Submit coalesces with or cache-hits the first attempt rather than
// running the job twice.
//
// With a retry policy installed, Wait additionally survives a severed event
// stream by reconnecting (the job's status is re-checked between attempts),
// so a watcher rides through a dispatcher restart.
func WithRetry(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// NewClient returns a client for the daemon at base.
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		base:      strings.TrimRight(base, "/"),
		userAgent: "tssd-client/1",
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Base returns the daemon root URL this client targets.
func (c *Client) Base() string { return c.base }

func (c *Client) httpClient() *http.Client {
	if c.http != nil {
		return c.http
	}
	return http.DefaultClient
}

// newRequest builds a request with the client's standing headers applied.
func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	if c.userAgent != "" {
		req.Header.Set("User-Agent", c.userAgent)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return req, nil
}

// retryable reports whether err is worth retrying: a transport error (the
// daemon was unreachable or the connection died — *url.Error) or an API
// error the daemon explicitly marked transient in its envelope. A done ctx
// is never retryable: the caller gave up, not the daemon.
func (c *Client) retryable(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Retryable
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// retrySeed is the jitter seed for one retry loop, keyed by the call path so
// concurrent calls through one client don't share a delay schedule.
func (c *Client) retrySeed(path string) int64 {
	if c.retry.Seed != 0 {
		return c.retry.Seed ^ seedFromString(path)
	}
	return seedFromString(c.base + path)
}

// withRetry runs fn under the client's retry policy. fn must build its
// request from scratch on every call (bodies are consumed per attempt).
func (c *Client) withRetry(ctx context.Context, path string, fn func() error) error {
	err := fn()
	if c.retry.Attempts <= 1 || err == nil {
		return err
	}
	bo := newBackoff(c.retry.Base, c.retry.Max, c.retrySeed(path))
	for attempt := 1; attempt < c.retry.Attempts && c.retryable(ctx, err); attempt++ {
		if !sleepCtx(ctx, bo.next()) {
			return err
		}
		err = fn()
	}
	return err
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	return c.withRetry(ctx, path, func() error {
		req, err := c.newRequest(ctx, http.MethodGet, path, nil)
		if err != nil {
			return err
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return decodeAPIError(resp)
		}
		defer resp.Body.Close()
		return json.NewDecoder(resp.Body).Decode(out)
	})
}

// doJSON issues a request with an optional JSON body and decodes a 2xx
// response into out.
func (c *Client) doJSON(ctx context.Context, method, path string, body, out any) error {
	var b []byte
	if body != nil {
		var err error
		if b, err = json.Marshal(body); err != nil {
			return err
		}
	}
	return c.withRetry(ctx, path, func() error {
		var r io.Reader
		if b != nil {
			r = bytes.NewReader(b)
		}
		req, err := c.newRequest(ctx, method, path, r)
		if err != nil {
			return err
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode < 200 || resp.StatusCode >= 300 {
			return decodeAPIError(resp)
		}
		defer resp.Body.Close()
		if out == nil {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	})
}

// DispatchPathHeader carries the chain of dispatcher instance IDs a job has
// passed through (comma-separated). A daemon that finds its own instance in
// the incoming chain rejects the submission: the fleet topology contains a
// dispatch cycle that would otherwise coalesce a job with itself and hang.
const DispatchPathHeader = "X-Tssd-Dispatch-Path"

// Submit posts a job spec and returns the accepted job's status (which is
// already terminal for cache hits).
func (c *Client) Submit(ctx context.Context, spec *JobSpec) (*SubmitStatus, error) {
	return c.SubmitVia(ctx, spec, nil)
}

// SubmitVia is Submit carrying the dispatch chain that routed the job here
// (used by fleet dispatchers relaying to workers; see DispatchPathHeader).
func (c *Client) SubmitVia(ctx context.Context, spec *JobSpec, via []string) (*SubmitStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	var st SubmitStatus
	err = c.withRetry(ctx, "/v1/jobs", func() error {
		req, err := c.newRequest(ctx, http.MethodPost, "/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return err
		}
		if len(via) > 0 {
			req.Header.Set(DispatchPathHeader, strings.Join(via, ","))
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusAccepted {
			return decodeAPIError(resp)
		}
		defer resp.Body.Close()
		return json.NewDecoder(resp.Body).Decode(&st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches a job's current status (result included once done).
func (c *Client) Job(ctx context.Context, id string) (*SubmitStatus, error) {
	var st SubmitStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// JobFilter selects and pages the job listing (GET /v1/jobs).
type JobFilter struct {
	// Status keeps only jobs in that state (queued, running, done, failed,
	// cancelled); empty keeps all.
	Status string
	// Tenant keeps only jobs submitted by that tenant; empty keeps all.
	Tenant string
	// Limit bounds the page size (server default 100, max 1000).
	Limit int
	// After resumes a listing after the given job ID — pass the previous
	// page's NextAfter cursor.
	After string
}

// JobList is one page of the job listing.
type JobList struct {
	// Jobs are the matching jobs in submission order (results elided; fetch
	// per job).
	Jobs []SubmitStatus `json:"jobs"`
	// NextAfter, when set, is the cursor for the next page: the listing
	// stopped at Limit with more jobs remaining.
	NextAfter string `json:"next_after,omitempty"`
}

// Jobs lists the daemon's jobs with optional filtering and deterministic
// cursor pagination.
func (c *Client) Jobs(ctx context.Context, f JobFilter) (*JobList, error) {
	q := url.Values{}
	if f.Status != "" {
		q.Set("status", f.Status)
	}
	if f.Tenant != "" {
		q.Set("tenant", f.Tenant)
	}
	if f.Limit > 0 {
		q.Set("limit", strconv.Itoa(f.Limit))
	}
	if f.After != "" {
		q.Set("after", f.After)
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var list JobList
	if err := c.getJSON(ctx, path, &list); err != nil {
		return nil, err
	}
	return &list, nil
}

// Cancel requests cooperative cancellation of a job (DELETE /v1/jobs/{id})
// and returns the job's status as of the request. Cancellation is
// idempotent: a job that already reached a terminal state is left untouched
// and its settled status is returned, so repeated Cancels converge.
func (c *Client) Cancel(ctx context.Context, id string) (*SubmitStatus, error) {
	var st SubmitStatus
	if err := c.doJSON(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Result fetches a finished job's raw canonical result bytes — byte-identical
// to RunSpec of the same spec, whether simulated or served from cache.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	path := "/v1/jobs/" + id + "/result"
	var out []byte
	err := c.withRetry(ctx, path, func() error {
		req, err := c.newRequest(ctx, http.MethodGet, path, nil)
		if err != nil {
			return err
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return decodeAPIError(resp)
		}
		defer resp.Body.Close()
		out, err = io.ReadAll(resp.Body)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stats fetches the daemon's /stats counters.
func (c *Client) Stats(ctx context.Context) (*ServerStats, error) {
	var st ServerStats
	if err := c.getJSON(ctx, "/stats", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Event is one Server-Sent Event from a job's event stream.
type Event struct {
	// Type is status, progress, log, or a terminal result, error, or
	// cancelled.
	Type string
	// Data is the event's JSON payload.
	Data []byte
}

// Events subscribes to a job's SSE stream and invokes fn for every event
// until the stream ends (after a terminal result/error/cancelled event), fn
// returns an error, or ctx is cancelled. Cancellation aborts the stream
// promptly even while the read is blocked waiting for the server's next
// event: a watchdog closes the response body the moment ctx is done, rather
// than relying on the transport to notice between reads.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) error) error {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			resp.Body.Close() // unblocks the scanner mid-read
		case <-watchDone:
		}
	}()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var ev Event
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.Type = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			ev.Data = append(ev.Data[:0:0], line[len("data: "):]...)
		case line == "":
			if ev.Type == "" && ev.Data == nil {
				continue
			}
			if err := fn(ev); err != nil {
				return err
			}
			ev = Event{}
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return ctx.Err()
}

// Wait follows a job's event stream until it finishes and returns its final
// (terminal) status — done, failed, or cancelled. onEvent (may be nil)
// additionally observes every event — the hook the CLIs use to print
// progress and sweep log lines live. A cancelled ctx aborts the wait
// promptly with ctx's error (the job itself keeps running; use Cancel to
// stop it).
//
// Under a WithRetry policy, a stream that dies mid-flight (connection cut,
// daemon restarting) is reconnected up to Attempts times with backoff: the
// job's status is re-checked first — a job that settled while the stream
// was down returns immediately — and a fresh stream replays the job's event
// history, so onEvent may observe events more than once across a reconnect.
func (c *Client) Wait(ctx context.Context, id string, onEvent func(Event)) (*SubmitStatus, error) {
	bo := newBackoff(c.retry.Base, c.retry.Max, c.retrySeed("/v1/jobs/"+id+"/events"))
	var err error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if !sleepCtx(ctx, bo.next()) {
				return nil, err
			}
			// The job may have settled while the stream was down.
			if st, jerr := c.Job(ctx, id); jerr == nil && terminalStatus(st.Status) {
				return st, nil
			}
		}
		err = c.Events(ctx, id, func(ev Event) error {
			if onEvent != nil {
				onEvent(ev)
			}
			return nil
		})
		if err == nil {
			break
		}
		// A stream that died mid-flight is transient by definition — the
		// read error is a raw net error, not *url.Error — so reconnect on
		// anything except an explicit terminal API rejection (404, 401).
		var ae *APIError
		terminal := errors.As(err, &ae) && !ae.Retryable
		if attempt+1 >= c.retry.Attempts || ctx.Err() != nil || terminal {
			return nil, err
		}
	}
	st, err := c.Job(ctx, id)
	if err != nil {
		return nil, err
	}
	if !terminalStatus(st.Status) {
		return nil, fmt.Errorf("tssd: event stream ended but job %s is %s", id, st.Status)
	}
	return st, nil
}
