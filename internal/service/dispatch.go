package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Fleet mode: the dispatcher side of a multi-node tssd deployment.
//
// A dispatcher is a Server with Config.Fleet set. It exposes the same job
// API as a plain daemon — so service.Client, tssim -remote, and tsbench
// -remote work against it unchanged — but instead of simulating locally it
// forwards each primary job to a registered remote worker (itself a plain
// tssd daemon) over the existing HTTP/JSON + SSE protocol, with JobSpec and
// its content-address Key as the wire unit. Everything content-addressed
// composes across nodes for free:
//
//   - identical submissions coalesce at the dispatcher exactly as they do on
//     one daemon (one remote execution serves all of them), and additionally
//     coalesce on the worker if two dispatchers race;
//   - the dispatcher's own result cache answers repeat submissions without
//     touching a worker, so the fleet shares one result space;
//   - because runs are deterministic, a job retried on a different worker
//     after a mid-job failure produces byte-identical results, which is what
//     makes transparent retry sound.
//
// Progress and log events relay from the worker's SSE stream into the
// dispatcher's execution state, so a client watching the dispatcher sees the
// same stream it would see watching the worker. Cancellation propagates the
// other way: cancelling the dispatcher job cancels its context, which aborts
// the relay and best-effort DELETEs the job on the worker.

// remoteJobError marks a deterministic job-level failure reported by a
// worker: the job itself is bad (it would fail identically anywhere), so the
// dispatcher must not retry it on another node.
type remoteJobError struct{ msg string }

func (e remoteJobError) Error() string { return e.msg }

// fleet is the dispatcher state behind a Server with Config.Fleet set.
type fleet struct {
	s     *Server
	slots chan struct{} // bounds concurrent dispatches (QueueDepth)
	stop  chan struct{} // ends the background health re-probe loop

	mu        sync.Mutex
	workers   []*workerNode // registration order
	nextID    uint64
	retries   uint64 // worker-level failures retried (on this or another node)
	exhausted uint64 // jobs failed after burning their whole retry budget
	starved   uint64 // waits entered because zero workers were dispatchable
}

func newFleet(s *Server) *fleet {
	f := &fleet{s: s, slots: make(chan struct{}, s.cfg.QueueDepth), stop: make(chan struct{})}
	go f.livenessLoop()
	return f
}

// livenessLoop is the background liveness sweep, ticking at the configured
// heartbeat interval. Heartbeat-opted workers age through the state machine
// (healthy → suspect → dead) purely on elapsed time since their last beat;
// join-only workers — which never beat — are instead re-probed when suspect,
// so a recovered node rejoins the rotation even while healthy peers are
// absorbing the load (the pre-heartbeat behavior).
func (f *fleet) livenessLoop() {
	t := time.NewTicker(f.s.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		f.mu.Lock()
		nodes := append([]*workerNode(nil), f.workers...)
		f.mu.Unlock()
		for _, w := range nodes {
			w.mu.Lock()
			opted, state := w.beatOpted, w.state
			w.mu.Unlock()
			if opted {
				w.age(now, f.s.cfg.HeartbeatInterval)
			} else if state != WorkerHealthy {
				w.probe()
			}
		}
	}
}

// pump is fleet mode's intake: one goroutine pulls the scheduler's
// fair-share picks — the same weighted, priority-aware order the local
// worker pool sees — and fans each job out on its own dispatch goroutine,
// bounded by the slots semaphore. It exits when the scheduler is closed and
// drained; in-flight dispatches then finish under the server WaitGroup.
func (f *fleet) pump() {
	defer f.s.wg.Done()
	for {
		j := f.s.sched.next()
		if j == nil {
			return
		}
		f.slots <- struct{}{}
		f.s.wg.Add(1)
		go f.dispatch(j)
	}
}

// dispatch runs one primary job to completion on the fleet. Sim jobs go
// through the remote attempt loop (execute); sweep jobs are sharded into
// per-point sim jobs right here on the dispatcher, each point itself
// dispatched through execute — so the whole fleet works one sweep in
// parallel. Either way the persistent store is consulted first (the
// dispatcher-side lookup that makes the result space fleet-wide), and
// exactly-one terminal transition is guaranteed by finishJob.
func (f *fleet) dispatch(j *job) {
	defer func() {
		<-f.slots
		f.s.wg.Done()
	}()
	e := j.exec
	// The job is "running" from the fleet's perspective the moment a
	// dispatch goroutine owns it; if a cancel won the race this transition
	// fails and the context check inside execute ends the dispatch
	// immediately.
	e.transition(StatusQueued, StatusRunning)

	f.s.journalStart(j)
	if result, ok := f.s.diskGet(j.key); ok {
		f.s.finishJobFromDisk(j, result)
		return
	}
	if j.spec.Kind == KindSweep {
		f.s.runShardedSweep(j)
		return
	}
	ctx, cancel := f.s.execCtx(e)
	result, err := f.execute(ctx, j)
	cancel()
	f.s.finishJob(j, result, f.s.deadlineErr(e, err))
}

// execute runs one job's remote attempt loop: pick a worker, relay, and —
// when a worker fails mid-job — back off (exponential, seeded ±50% jitter)
// and retry, preferring a different node, until the job finishes, is
// cancelled, the retry budget (Config.DispatchRetries) is exhausted, or the
// deadline passes. A transient error no longer excludes the worker from the
// job forever: the circuit breaker decides who is dispatchable, so a fleet
// whose nodes all hiccuped once still serves jobs. When zero workers are
// dispatchable the job degrades gracefully — it waits (bounded by
// Config.NoWorkerWait and ctx) for a worker to register, revive, or exit
// cooldown instead of failing instantly. It returns the result instead of
// settling the job, so the primary dispatch path and the sweep-point
// resolver share it. Points do not hold dispatch slots: a sweep occupies one
// slot while its points fan out bounded by the sweep's own pool width.
func (f *fleet) execute(ctx context.Context, j *job) ([]byte, error) {
	e := j.exec
	cfg := f.s.cfg
	bo := newBackoff(cfg.RetryBackoff, cfg.RetryBackoffMax, seedFromString(j.key))
	var lastErr error
	lastFailed := ""
	failures := 0
	waitDeadline := time.Now().Add(cfg.NoWorkerWait)
	waitLogged := false
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("dispatch cancelled: %w", err)
		}
		w := f.pick(lastFailed)
		if w == nil {
			// Graceful degradation: zero dispatchable workers right now is
			// not a job failure yet — wait for the fleet to come back.
			if !time.Now().Before(waitDeadline) {
				if lastErr == nil {
					lastErr = errors.New("no dispatchable workers registered")
				}
				return nil, fmt.Errorf("fleet: no dispatchable worker within %s: %w", cfg.NoWorkerWait, lastErr)
			}
			if !waitLogged {
				waitLogged = true
				f.mu.Lock()
				f.starved++
				f.mu.Unlock()
				f.s.appendLog(e, "[dispatcher] no dispatchable workers; holding the job until one returns")
			}
			sleepCtx(ctx, cfg.RetryBackoff)
			continue
		}
		waitLogged = false
		result, err := f.runOn(ctx, w, j)
		var jobErr remoteJobError
		switch {
		case err == nil:
			w.noteSuccess()
			return result, nil
		case ctx.Err() != nil:
			// The caller classifies this as cancelled (or past deadline) via
			// the context. The aborted attempt says nothing about the
			// worker's health; release a half-open probe slot if we held it.
			w.releaseHalfOpen()
			return nil, err
		case errors.As(err, &jobErr):
			// Deterministic failure: retrying elsewhere reproduces it. The
			// worker did its part correctly — this is a success for its
			// breaker.
			w.noteSuccess()
			return nil, err
		default:
			// Worker-level failure (connection refused, SSE cut mid-job,
			// 5xx): feed the node's breaker, spend one unit of retry budget,
			// back off, and go around — preferring a different node.
			lastErr = fmt.Errorf("worker %s (%s): %w", w.id, w.url, err)
			lastFailed = w.id
			w.noteFailure(cfg.BreakerThreshold)
			failures++
			if failures > cfg.DispatchRetries {
				f.mu.Lock()
				f.exhausted++
				f.mu.Unlock()
				return nil, fmt.Errorf("fleet: retry budget exhausted after %d worker failures: %w",
					failures, lastErr)
			}
			f.mu.Lock()
			f.retries++
			f.mu.Unlock()
			f.s.appendLog(e, fmt.Sprintf("[dispatcher] worker %s failed (%v); retry %d/%d",
				w.id, err, failures, cfg.DispatchRetries))
			sleepCtx(ctx, bo.next())
		}
	}
}

// shardWidth picks the point fan-out for a sharded sweep: wide enough to
// keep every healthy worker busy (2x, so relay latency overlaps simulation)
// but bounded. SweepSpec.Workers is excluded from the sweep key and the
// sweep engine is width-independent, so the dispatcher is free to choose.
func (f *fleet) shardWidth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, w := range f.workers {
		if ok, healthy, _ := w.dispatchable(); ok && healthy {
			n++
		}
	}
	width := 2 * n
	if width < 1 {
		width = 1
	}
	if width > 64 {
		width = 64
	}
	return width
}

// runOn executes the job on one worker: submit, relay the SSE stream into
// the dispatcher-side execution, and fetch the canonical result bytes. Any
// error that is not a remoteJobError is a worker-level failure the caller
// may retry elsewhere; a cancelled dispatcher context additionally
// best-effort cancels the job on the worker before returning. ctx is the
// execution context, already bounded by the per-job deadline.
func (f *fleet) runOn(ctx context.Context, w *workerNode, j *job) ([]byte, error) {
	e := j.exec
	w.begin()
	defer w.end()

	st, err := w.cl.SubmitVia(ctx, &j.spec, append(append([]string(nil), j.via...), f.s.instance))
	if err != nil {
		return nil, err
	}
	remoteID := st.ID
	// Whether the dispatch was cancelled or the relay broke, the worker —
	// if it is still alive — must not keep burning a pool slot on a job
	// nobody is waiting for: every early exit best-effort cancels the
	// remote job on a fresh short-lived context (ours may be dead, and a
	// severed relay connection says nothing about fresh connections).
	abandon := func() {
		cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		w.cl.Cancel(cctx, remoteID)
	}
	if st.Key != j.key {
		// A worker on different simulator semantics would silently serve
		// results from a different content address; refuse loudly (and
		// stop the run the worker just started for us).
		abandon()
		return nil, remoteJobError{fmt.Sprintf(
			"worker %s computed key %.12s… for key %.12s… (mixed simulator versions in the fleet?)",
			w.id, st.Key, j.key)}
	}
	if !terminalStatus(st.Status) {
		st, err = w.cl.Wait(ctx, remoteID, func(ev Event) { f.relay(e, ev) })
		if err != nil {
			abandon()
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, err
		}
	}
	switch st.Status {
	case StatusDone:
		b, err := w.cl.Result(ctx, remoteID)
		if err != nil {
			return nil, err
		}
		return b, nil
	case StatusFailed:
		return nil, remoteJobError{st.Error}
	case StatusCancelled:
		// Nobody but this dispatcher should cancel a worker job it owns;
		// treat an externally cancelled remote job as a worker fault and
		// retry elsewhere.
		return nil, fmt.Errorf("job cancelled on the worker")
	}
	abandon()
	return nil, fmt.Errorf("worker job ended in unexpected state %q", st.Status)
}

// relay publishes one worker SSE event into the dispatcher-side execution,
// so dispatcher watchers see the worker's progress and log stream live.
// Status/result/error events are not relayed: terminal state is published
// exactly once by finishJob, from the fetched canonical result.
func (f *fleet) relay(e *execution, ev Event) {
	switch ev.Type {
	case "progress":
		var p struct{ Done, Total uint64 }
		if json.Unmarshal(ev.Data, &p) == nil {
			e.set(func() { e.done, e.total = p.Done, p.Total })
		}
	case "log":
		var l struct{ Line string }
		if json.Unmarshal(ev.Data, &l) == nil {
			f.s.appendLog(e, l.Line)
		}
	}
}

// pick chooses the worker for the next attempt, in preference order:
//
//  1. healthy, breaker-closed workers, fewest active dispatches first
//     (ties: registration order), skipping `avoid` — the worker that just
//     failed this job — while any alternative exists;
//  2. a tripped worker whose cooldown has expired: it is claimed into the
//     half-open state and gets exactly this one probe job — success revives
//     it (noteSuccess), failure re-trips it;
//  3. a suspect join-only worker that answers a /healthz probe, so a
//     recovered node rejoins the rotation without manual intervention.
//
// Draining and dead workers are never picked — that is the whole drain and
// liveness contract. `avoid` is only a preference: a one-worker fleet still
// retries on the worker that just failed.
func (f *fleet) pick(avoid string) *workerNode {
	now := time.Now()
	cooldown := f.s.cfg.BreakerCooldown
	f.mu.Lock()
	candidates := append([]*workerNode(nil), f.workers...)
	f.mu.Unlock()

	pass := func(includeAvoid bool) *workerNode {
		var best *workerNode
		bestActive := 0
		for _, w := range candidates {
			if w.id == avoid && !includeAvoid {
				continue
			}
			ok, healthy, active := w.dispatchable()
			if !ok || !healthy || !w.breakerClosed() {
				continue
			}
			if best == nil || active < bestActive {
				best, bestActive = w, active
			}
		}
		return best
	}
	if best := pass(false); best != nil {
		return best
	}
	// Half-open probes: one tripped-but-cooled worker gets one job.
	for _, w := range candidates {
		if ok, _, _ := w.dispatchable(); ok && w.claimHalfOpen(now, cooldown) {
			return w
		}
	}
	// Probe-based revival for suspect join-only workers (pre-heartbeat
	// behavior), still subject to the breaker.
	for _, w := range candidates {
		if w.id == avoid {
			continue
		}
		if ok, _, _ := w.dispatchable(); ok && w.breakerClosed() && w.probe() {
			return w
		}
	}
	if best := pass(true); best != nil {
		return best
	}
	if avoid != "" {
		for _, w := range candidates {
			if w.id != avoid {
				continue
			}
			if ok, _, _ := w.dispatchable(); ok && w.breakerClosed() && w.probe() {
				return w
			}
		}
	}
	return nil
}

// FleetStats is the dispatcher section of GET /stats.
type FleetStats struct {
	// Retries counts worker-level failures that were retried (each burns one
	// unit of a job's DispatchRetries budget); Exhausted counts jobs failed
	// after burning the whole budget; Starved counts waits entered because
	// zero workers were dispatchable. Conservation: every worker-level
	// failure is either one of the Retries or the last straw of an
	// Exhausted job, so sum(worker.Failures) == Retries + Exhausted once
	// the fleet drains.
	Retries   uint64 `json:"retries"`
	Exhausted uint64 `json:"exhausted"`
	Starved   uint64 `json:"starved"`
	// Workers lists every registered worker with its dispatch counters.
	Workers []WorkerInfo `json:"workers"`
}

func (f *fleet) stats() FleetStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FleetStats{
		Retries: f.retries, Exhausted: f.exhausted, Starved: f.starved,
		Workers: make([]WorkerInfo, 0, len(f.workers)),
	}
	for _, w := range f.workers {
		st.Workers = append(st.Workers, w.info())
	}
	return st
}
