package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Fleet mode: the dispatcher side of a multi-node tssd deployment.
//
// A dispatcher is a Server with Config.Fleet set. It exposes the same job
// API as a plain daemon — so service.Client, tssim -remote, and tsbench
// -remote work against it unchanged — but instead of simulating locally it
// forwards each primary job to a registered remote worker (itself a plain
// tssd daemon) over the existing HTTP/JSON + SSE protocol, with JobSpec and
// its content-address Key as the wire unit. Everything content-addressed
// composes across nodes for free:
//
//   - identical submissions coalesce at the dispatcher exactly as they do on
//     one daemon (one remote execution serves all of them), and additionally
//     coalesce on the worker if two dispatchers race;
//   - the dispatcher's own result cache answers repeat submissions without
//     touching a worker, so the fleet shares one result space;
//   - because runs are deterministic, a job retried on a different worker
//     after a mid-job failure produces byte-identical results, which is what
//     makes transparent retry sound.
//
// Progress and log events relay from the worker's SSE stream into the
// dispatcher's execution state, so a client watching the dispatcher sees the
// same stream it would see watching the worker. Cancellation propagates the
// other way: cancelling the dispatcher job cancels its context, which aborts
// the relay and best-effort DELETEs the job on the worker.

// remoteJobError marks a deterministic job-level failure reported by a
// worker: the job itself is bad (it would fail identically anywhere), so the
// dispatcher must not retry it on another node.
type remoteJobError struct{ msg string }

func (e remoteJobError) Error() string { return e.msg }

// fleet is the dispatcher state behind a Server with Config.Fleet set.
type fleet struct {
	s     *Server
	slots chan struct{} // bounds concurrent dispatches (QueueDepth)
	stop  chan struct{} // ends the background health re-probe loop

	mu      sync.Mutex
	workers []*workerNode // registration order
	nextID  uint64
	retries uint64 // dispatch attempts moved to another node after a worker failure
}

func newFleet(s *Server) *fleet {
	f := &fleet{s: s, slots: make(chan struct{}, s.cfg.QueueDepth), stop: make(chan struct{})}
	go f.livenessLoop()
	return f
}

// livenessLoop is the background liveness sweep, ticking at the configured
// heartbeat interval. Heartbeat-opted workers age through the state machine
// (healthy → suspect → dead) purely on elapsed time since their last beat;
// join-only workers — which never beat — are instead re-probed when suspect,
// so a recovered node rejoins the rotation even while healthy peers are
// absorbing the load (the pre-heartbeat behavior).
func (f *fleet) livenessLoop() {
	t := time.NewTicker(f.s.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		f.mu.Lock()
		nodes := append([]*workerNode(nil), f.workers...)
		f.mu.Unlock()
		for _, w := range nodes {
			w.mu.Lock()
			opted, state := w.beatOpted, w.state
			w.mu.Unlock()
			if opted {
				w.age(now, f.s.cfg.HeartbeatInterval)
			} else if state != WorkerHealthy {
				w.probe()
			}
		}
	}
}

// pump is fleet mode's intake: one goroutine pulls the scheduler's
// fair-share picks — the same weighted, priority-aware order the local
// worker pool sees — and fans each job out on its own dispatch goroutine,
// bounded by the slots semaphore. It exits when the scheduler is closed and
// drained; in-flight dispatches then finish under the server WaitGroup.
func (f *fleet) pump() {
	defer f.s.wg.Done()
	for {
		j := f.s.sched.next()
		if j == nil {
			return
		}
		f.slots <- struct{}{}
		f.s.wg.Add(1)
		go f.dispatch(j)
	}
}

// dispatch runs one primary job to completion on the fleet. Sim jobs go
// through the remote attempt loop (execute); sweep jobs are sharded into
// per-point sim jobs right here on the dispatcher, each point itself
// dispatched through execute — so the whole fleet works one sweep in
// parallel. Either way the persistent store is consulted first (the
// dispatcher-side lookup that makes the result space fleet-wide), and
// exactly-one terminal transition is guaranteed by finishJob.
func (f *fleet) dispatch(j *job) {
	defer func() {
		<-f.slots
		f.s.wg.Done()
	}()
	e := j.exec
	// The job is "running" from the fleet's perspective the moment a
	// dispatch goroutine owns it; if a cancel won the race this transition
	// fails and the context check inside execute ends the dispatch
	// immediately.
	e.transition(StatusQueued, StatusRunning)

	if result, ok := f.s.diskGet(j.key); ok {
		f.s.finishJobFromDisk(j, result)
		return
	}
	if j.spec.Kind == KindSweep {
		f.s.runShardedSweep(j)
		return
	}
	result, err := f.execute(j)
	f.s.finishJob(j, result, err)
}

// execute runs one job's remote attempt loop: pick a worker, relay, and —
// when a worker dies mid-job — retry on another node until the job finishes,
// is cancelled, or no healthy worker remains. It returns the result instead
// of settling the job, so the primary dispatch path and the sweep-point
// resolver share it. Points do not hold dispatch slots: a sweep occupies one
// slot while its points fan out bounded by the sweep's own pool width.
func (f *fleet) execute(j *job) ([]byte, error) {
	e := j.exec
	var excluded map[string]bool
	var lastErr error
	for {
		if err := e.ctx.Err(); err != nil {
			return nil, fmt.Errorf("dispatch cancelled: %w", err)
		}
		w := f.pick(excluded)
		if w == nil {
			if lastErr == nil {
				lastErr = errors.New("no healthy workers registered")
			}
			return nil, fmt.Errorf("fleet: %w", lastErr)
		}
		result, err := f.runOn(w, j)
		var jobErr remoteJobError
		switch {
		case err == nil:
			return result, nil
		case e.ctx.Err() != nil:
			// The caller classifies this as cancelled via the context.
			return nil, err
		case errors.As(err, &jobErr):
			// Deterministic failure: retrying elsewhere reproduces it.
			return nil, err
		default:
			// Worker-level failure (connection refused, SSE cut mid-job,
			// 5xx): mark the node unhealthy, exclude it from this job's
			// future attempts, and move on.
			lastErr = fmt.Errorf("worker %s (%s): %w", w.id, w.url, err)
			if excluded == nil {
				excluded = make(map[string]bool)
			}
			excluded[w.id] = true
			w.noteFailure()
			f.mu.Lock()
			f.retries++
			f.mu.Unlock()
			f.s.appendLog(e, fmt.Sprintf("[dispatcher] worker %s failed (%v); retrying on another node", w.id, err))
		}
	}
}

// shardWidth picks the point fan-out for a sharded sweep: wide enough to
// keep every healthy worker busy (2x, so relay latency overlaps simulation)
// but bounded. SweepSpec.Workers is excluded from the sweep key and the
// sweep engine is width-independent, so the dispatcher is free to choose.
func (f *fleet) shardWidth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, w := range f.workers {
		if ok, healthy, _ := w.dispatchable(); ok && healthy {
			n++
		}
	}
	width := 2 * n
	if width < 1 {
		width = 1
	}
	if width > 64 {
		width = 64
	}
	return width
}

// runOn executes the job on one worker: submit, relay the SSE stream into
// the dispatcher-side execution, and fetch the canonical result bytes. Any
// error that is not a remoteJobError is a worker-level failure the caller
// may retry elsewhere; a cancelled dispatcher context additionally
// best-effort cancels the job on the worker before returning.
func (f *fleet) runOn(w *workerNode, j *job) ([]byte, error) {
	e := j.exec
	ctx := e.ctx
	w.begin()
	defer w.end()

	st, err := w.cl.SubmitVia(ctx, &j.spec, append(append([]string(nil), j.via...), f.s.instance))
	if err != nil {
		return nil, err
	}
	remoteID := st.ID
	// Whether the dispatch was cancelled or the relay broke, the worker —
	// if it is still alive — must not keep burning a pool slot on a job
	// nobody is waiting for: every early exit best-effort cancels the
	// remote job on a fresh short-lived context (ours may be dead, and a
	// severed relay connection says nothing about fresh connections).
	abandon := func() {
		cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		w.cl.Cancel(cctx, remoteID)
	}
	if st.Key != j.key {
		// A worker on different simulator semantics would silently serve
		// results from a different content address; refuse loudly (and
		// stop the run the worker just started for us).
		abandon()
		return nil, remoteJobError{fmt.Sprintf(
			"worker %s computed key %.12s… for key %.12s… (mixed simulator versions in the fleet?)",
			w.id, st.Key, j.key)}
	}
	if !terminalStatus(st.Status) {
		st, err = w.cl.Wait(ctx, remoteID, func(ev Event) { f.relay(e, ev) })
		if err != nil {
			abandon()
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, err
		}
	}
	switch st.Status {
	case StatusDone:
		b, err := w.cl.Result(ctx, remoteID)
		if err != nil {
			return nil, err
		}
		return b, nil
	case StatusFailed:
		return nil, remoteJobError{st.Error}
	case StatusCancelled:
		// Nobody but this dispatcher should cancel a worker job it owns;
		// treat an externally cancelled remote job as a worker fault and
		// retry elsewhere.
		return nil, fmt.Errorf("job cancelled on the worker")
	}
	abandon()
	return nil, fmt.Errorf("worker job ended in unexpected state %q", st.Status)
}

// relay publishes one worker SSE event into the dispatcher-side execution,
// so dispatcher watchers see the worker's progress and log stream live.
// Status/result/error events are not relayed: terminal state is published
// exactly once by finishJob, from the fetched canonical result.
func (f *fleet) relay(e *execution, ev Event) {
	switch ev.Type {
	case "progress":
		var p struct{ Done, Total uint64 }
		if json.Unmarshal(ev.Data, &p) == nil {
			e.set(func() { e.done, e.total = p.Done, p.Total })
		}
	case "log":
		var l struct{ Line string }
		if json.Unmarshal(ev.Data, &l) == nil {
			f.s.appendLog(e, l.Line)
		}
	}
}

// pick chooses the healthy, non-excluded, non-draining worker with the
// fewest active dispatches (ties: registration order). If no candidate is
// healthy, each dispatchable one is probed once via /healthz so a recovered
// node rejoins the rotation without manual intervention. Draining workers
// are never picked — that is the whole drain contract.
func (f *fleet) pick(excluded map[string]bool) *workerNode {
	f.mu.Lock()
	candidates := make([]*workerNode, 0, len(f.workers))
	for _, w := range f.workers {
		if !excluded[w.id] {
			candidates = append(candidates, w)
		}
	}
	f.mu.Unlock()

	var best *workerNode
	bestActive := 0
	for _, w := range candidates {
		ok, healthy, active := w.dispatchable()
		if !ok || !healthy {
			continue
		}
		if best == nil || active < bestActive {
			best, bestActive = w, active
		}
	}
	if best != nil {
		return best
	}
	for _, w := range candidates {
		if ok, _, _ := w.dispatchable(); ok && w.probe() {
			return w
		}
	}
	return nil
}

// FleetStats is the dispatcher section of GET /stats.
type FleetStats struct {
	// Retries counts dispatch attempts that moved to another node after a
	// worker failure.
	Retries uint64 `json:"retries"`
	// Workers lists every registered worker with its dispatch counters.
	Workers []WorkerInfo `json:"workers"`
}

func (f *fleet) stats() FleetStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FleetStats{Retries: f.retries, Workers: make([]WorkerInfo, 0, len(f.workers))}
	for _, w := range f.workers {
		st.Workers = append(st.Workers, w.info())
	}
	return st
}
