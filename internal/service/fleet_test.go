package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fleetWorker is one in-process worker daemon for fleet tests.
type fleetWorker struct {
	srv *Server
	hs  *httptest.Server
}

// kill severs every open connection to the worker (the dispatcher's SSE
// relay included) without stopping its HTTP listener — the shape of a node
// whose network died mid-job.
func (w *fleetWorker) kill() { w.hs.CloseClientConnections() }

// startFleet spins up a dispatcher with n registered in-process workers.
func startFleet(t *testing.T, n int, workerCfg Config) (*Server, *Client, []*fleetWorker) {
	t.Helper()
	disp, err := New(Config{Fleet: true, QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	dhs := httptest.NewServer(disp.Handler())
	dcl := NewClient(dhs.URL)

	workers := make([]*fleetWorker, n)
	for i := range workers {
		wsrv, err := New(workerCfg)
		if err != nil {
			t.Fatal(err)
		}
		whs := httptest.NewServer(wsrv.Handler())
		workers[i] = &fleetWorker{srv: wsrv, hs: whs}
		if _, err := dcl.JoinWorker(context.Background(), whs.URL); err != nil {
			t.Fatalf("registering worker %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		dhs.Close()
		disp.Close()
		for _, w := range workers {
			w.hs.Close()
			w.srv.Close()
		}
	})
	return disp, dcl, workers
}

// The fleet acceptance bar, part 1: a job submitted to a dispatcher backed
// by two workers returns a result byte-identical to the direct in-process
// run of the same spec, with progress relayed through the dispatcher's SSE
// stream; a repeat submission is a dispatcher-side cache hit that touches no
// worker.
func TestFleetDispatchByteIdentical(t *testing.T) {
	disp, cl, workers := startFleet(t, 2, Config{Workers: 2})
	ctx := context.Background()

	spec := simSpec("cholesky", 6000, 11, 64)
	direct := simSpec("cholesky", 6000, 11, 64)
	if err := direct.Normalize(); err != nil {
		t.Fatal(err)
	}
	want, err := RunSpec(direct)
	if err != nil {
		t.Fatal(err)
	}

	st, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var progress int
	fin, err := cl.Wait(ctx, st.ID, func(ev Event) {
		if ev.Type == "progress" {
			progress++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fin.Status != StatusDone {
		t.Fatalf("fleet job ended %s: %s", fin.Status, fin.Error)
	}
	if progress < 2 {
		t.Fatalf("only %d progress events relayed through the dispatcher", progress)
	}
	got, err := cl.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet result differs from direct run:\n got: %s\nwant: %s", got, want)
	}

	// Exactly one worker executed it.
	var workerRuns uint64
	for _, w := range workers {
		workerRuns += w.srv.Stats().Completed
	}
	if workerRuns != 1 {
		t.Fatalf("%d worker executions for one job", workerRuns)
	}

	// Repeat: dispatcher-side cache hit, same bytes, still one worker run.
	st2, err := cl.Submit(ctx, simSpec("cholesky", 6000, 11, 64))
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.Status != StatusDone {
		t.Fatalf("repeat: cached=%v status=%s, want cached done", st2.Cached, st2.Status)
	}
	got2, err := cl.Result(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want) {
		t.Fatal("dispatcher-cached result not byte-identical")
	}
	workerRuns = 0
	for _, w := range workers {
		workerRuns += w.srv.Stats().Completed
	}
	if workerRuns != 1 {
		t.Fatalf("cache hit re-dispatched: %d worker executions", workerRuns)
	}
	if ds := disp.Stats(); ds.Fleet == nil || len(ds.Fleet.Workers) != 2 {
		t.Fatalf("dispatcher stats missing fleet section: %+v", disp.Stats())
	}
}

// The fleet acceptance bar, part 2: killing the executing worker mid-job
// retries the job on another node and still yields bytes identical to the
// direct run.
func TestFleetWorkerDeathMidJobRetries(t *testing.T) {
	disp, cl, workers := startFleet(t, 2, Config{Workers: 2})
	ctx := context.Background()

	spec := longSpec(23)
	direct := longSpec(23)
	if err := direct.Normalize(); err != nil {
		t.Fatal(err)
	}
	want, err := RunSpec(direct)
	if err != nil {
		t.Fatal(err)
	}

	st, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the job is demonstrably mid-run (progress relayed from a
	// worker), then find the executing worker and cut its connections.
	waitFor(t, cl, st.ID, func(s *SubmitStatus) bool {
		return s.Status == StatusRunning && s.Done > 0
	}, "running with relayed progress")
	var executing *fleetWorker
	for _, w := range workers {
		if w.srv.Stats().Inflight > 0 {
			executing = w
			break
		}
	}
	if executing == nil {
		t.Fatal("no worker reports the job inflight")
	}
	executing.kill()

	fin := waitFor(t, cl, st.ID, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
	if fin.Status != StatusDone {
		t.Fatalf("job ended %s after worker death: %s", fin.Status, fin.Error)
	}
	got, err := cl.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("retried result differs from direct run:\n got: %.80s…\nwant: %.80s…", got, want)
	}
	ds := disp.Stats()
	if ds.Fleet.Retries == 0 {
		t.Fatal("dispatcher recorded no retry for the killed worker")
	}
	if ds.Completed != 1 || ds.Failed != 0 {
		t.Fatalf("dispatcher counters after retry: completed=%d failed=%d", ds.Completed, ds.Failed)
	}
	// The abandoned job on the severed-but-alive worker was best-effort
	// cancelled rather than left burning its pool slot to completion.
	deadline := time.Now().Add(30 * time.Second)
	for {
		ws := executing.srv.Stats()
		if ws.Inflight == 0 {
			if ws.Cancelled+ws.Completed != 1 {
				t.Fatalf("killed worker settled oddly: %+v", ws)
			}
			if ws.Cancelled != 1 {
				t.Logf("note: abandoned job completed before the cancel landed (completed=%d)", ws.Completed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned job never settled on the killed worker: %+v", ws)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Cancelling a dispatched job propagates to the executing worker: the
// dispatcher job ends cancelled and the worker's own record of it settles as
// cancelled too (its engine stopped cooperatively).
func TestFleetCancelPropagatesToWorker(t *testing.T) {
	_, cl, workers := startFleet(t, 1, Config{Workers: 1})
	ctx := context.Background()

	st, err := cl.Submit(ctx, longSpec(29))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, cl, st.ID, func(s *SubmitStatus) bool {
		return s.Status == StatusRunning && s.Done > 0
	}, "running")
	if _, err := cl.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitFor(t, cl, st.ID, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
	if fin.Status != StatusCancelled {
		t.Fatalf("dispatcher job ended %s", fin.Status)
	}
	// The worker's execution settles cancelled as well (poll: the DELETE
	// relay is best-effort asynchronous with respect to our view).
	deadline := time.Now().Add(30 * time.Second)
	for {
		ws := workers[0].srv.Stats()
		if ws.Cancelled == 1 && ws.Inflight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never settled the cancelled job: %+v", ws)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Two dispatchers registered as each other's workers form a dispatch cycle;
// the dispatch-path header must break it into a loud failure instead of a
// circular wait (each side would otherwise coalesce the job with itself).
func TestFleetDispatchCycleFailsFast(t *testing.T) {
	mk := func() (*Server, *httptest.Server, *Client) {
		d, err := New(Config{Fleet: true})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(d.Handler())
		return d, hs, NewClient(hs.URL)
	}
	ad, ahs, acl := mk()
	bd, bhs, bcl := mk()
	ctx := context.Background()
	if _, err := acl.JoinWorker(ctx, bhs.URL); err != nil {
		t.Fatal(err)
	}
	if _, err := bcl.JoinWorker(ctx, ahs.URL); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ahs.Close(); bhs.Close(); ad.Close(); bd.Close() })

	st, err := acl.Submit(ctx, quickSpec(47))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitFor(t, acl, st.ID, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
	if fin.Status != StatusFailed {
		t.Fatalf("cyclic fleet job ended %s, want a loud failure", fin.Status)
	}
	if !strings.Contains(fin.Error, "loop") && !strings.Contains(fin.Error, "worker") {
		t.Fatalf("failure does not surface the loop: %s", fin.Error)
	}
}

// A dispatcher with no live workers fails the job rather than hanging.
func TestFleetNoWorkersFailsFast(t *testing.T) {
	// NoWorkerWait < 0 opts out of graceful degradation: with no workers
	// joined, dispatch fails the job immediately instead of waiting for one
	// to appear (see TestFleetNoWorkerWaitDegradation for the default).
	disp, err := New(Config{Fleet: true, NoWorkerWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	dhs := httptest.NewServer(disp.Handler())
	t.Cleanup(func() { dhs.Close(); disp.Close() })
	cl := NewClient(dhs.URL)
	ctx := context.Background()

	st, err := cl.Submit(ctx, quickSpec(41))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitFor(t, cl, st.ID, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
	if fin.Status != StatusFailed {
		t.Fatalf("job on empty fleet ended %s", fin.Status)
	}
}

// The fleet concurrency bar: a dispatcher over 3 workers serving 40
// concurrent clients under -race. Every client of the same key observes
// byte-identical bytes; the conservation invariant extends across nodes —
// dispatcher-side, completed + coalesced + cache hits == submissions, and
// the dispatched executions all landed on (and only on) the workers.
func TestFleetConcurrentClients(t *testing.T) {
	disp, cl, workers := startFleet(t, 3, Config{Workers: 2})
	ctx := context.Background()

	// Eight distinct job contents shared by 40 clients: six sweeps with
	// different seeds plus two sims (mirrors the single-node concurrency
	// test, now fanned across nodes).
	specs := make([]*JobSpec, 0, 8)
	for i := 0; i < 6; i++ {
		specs = append(specs, &JobSpec{Kind: KindSweep,
			Sweep: &SweepSpec{Experiment: "table1", Seed: i64p(int64(200 + i))}})
	}
	specs = append(specs,
		simSpec("matmul", 400, 15, 16),
		simSpec("fft", 400, 19, 16),
	)

	const clients = 40
	results := make([]struct {
		key   string
		bytes []byte
	}, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := specs[i%len(specs)]
			st, err := cl.Submit(ctx, spec)
			if err != nil {
				t.Errorf("client %d submit: %v", i, err)
				return
			}
			if !st.Cached {
				if st, err = cl.Wait(ctx, st.ID, nil); err != nil {
					t.Errorf("client %d wait: %v", i, err)
					return
				}
				if st.Status != StatusDone {
					t.Errorf("client %d job %s: %s", i, st.Status, st.Error)
					return
				}
			}
			body, err := cl.Result(ctx, st.ID)
			if err != nil {
				t.Errorf("client %d result: %v", i, err)
				return
			}
			results[i].key = st.Key
			results[i].bytes = body
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	byKey := map[string][]byte{}
	for i, r := range results {
		if prev, ok := byKey[r.key]; ok {
			if !bytes.Equal(prev, r.bytes) {
				t.Fatalf("client %d: result bytes diverge for key %s", i, r.key)
			}
		} else {
			byKey[r.key] = r.bytes
		}
	}
	if len(byKey) != len(specs) {
		t.Fatalf("saw %d distinct keys, want %d", len(byKey), len(specs))
	}

	// Conservation at the dispatcher… (job-level CacheHits/DiskHits, not
	// store-level Cache.Hits: sweep sharding probes the store per point)
	ds := disp.Stats()
	if ds.Completed != uint64(len(specs)) {
		t.Fatalf("dispatched %d executions for %d distinct specs", ds.Completed, len(specs))
	}
	if got := ds.Completed + ds.Coalesced + ds.CacheHits + ds.DiskHits; got != clients {
		t.Fatalf("completed(%d) + coalesced(%d) + cache(%d) + disk(%d) = %d, want %d submissions",
			ds.Completed, ds.Coalesced, ds.CacheHits, ds.DiskHits, got, clients)
	}
	if ds.Failed != 0 || ds.Cancelled != 0 || ds.Inflight != 0 {
		t.Fatalf("failed=%d cancelled=%d inflight=%d after drain", ds.Failed, ds.Cancelled, ds.Inflight)
	}
	// …and extends across the nodes. Sweeps are sharded on the dispatcher
	// (table1 runs no constituent simulations, so it contributes no
	// points); what reaches the workers is the sim jobs plus every
	// fleet-executed sweep point, each settling on its worker as exactly
	// one run, coalesce, or cache hit.
	const simSpecs = 2
	if ds.Shard.Points != ds.Shard.MemHits+ds.Shard.DiskHits+ds.Shard.Coalesced+ds.Shard.Simulated+ds.Shard.Inline+ds.Shard.Failed {
		t.Fatalf("shard conservation violated: %+v", ds.Shard)
	}
	var workerRuns, workerHitsCoalesces uint64
	for _, w := range workers {
		ws := w.srv.Stats()
		workerRuns += ws.Completed
		workerHitsCoalesces += ws.CacheHits + ws.DiskHits + ws.Coalesced
		if ws.Failed != 0 || ws.Inflight != 0 {
			t.Fatalf("worker settled dirty: %+v", ws)
		}
	}
	if workerRuns+workerHitsCoalesces != simSpecs+ds.Shard.Simulated {
		t.Fatalf("workers ran %d + answered %d from cache/coalesce, dispatcher sent %d sims + %d points",
			workerRuns, workerHitsCoalesces, simSpecs, ds.Shard.Simulated)
	}
	if ds.Fleet.Retries != 0 {
		t.Fatalf("%d unexpected retries with healthy workers", ds.Fleet.Retries)
	}

	// A repeat wave of every spec is answered from the dispatcher cache
	// without touching the fleet.
	for i, spec := range specs {
		st, err := cl.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Cached {
			t.Fatalf("repeat submission %d not served from the dispatcher cache", i)
		}
		body, err := cl.Result(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, byKey[st.Key]) {
			t.Fatalf("repeat submission %d: cached bytes differ", i)
		}
	}
}

// Worker registration is idempotent by URL, validated (unreachable and
// self-referential URLs are rejected), listable, and removable.
func TestFleetWorkerRegistry(t *testing.T) {
	_, cl, workers := startFleet(t, 2, Config{Workers: 1})
	ctx := context.Background()

	// The dispatcher must refuse to register itself as its own worker
	// (self-dispatch would coalesce a job with itself and deadlock) and
	// must refuse a worker it cannot reach.
	if _, err := cl.JoinWorker(ctx, cl.Base()); err == nil || !strings.Contains(err.Error(), "itself") {
		t.Fatalf("self-join: %v, want rejection naming the dispatcher itself", err)
	}
	if _, err := cl.JoinWorker(ctx, "http://127.0.0.1:1"); err == nil {
		t.Fatal("unreachable worker URL accepted")
	}

	// Re-joining the same URL returns the existing registration.
	again, err := cl.JoinWorker(ctx, workers[0].hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := cl.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("re-join duplicated the worker: %d registered", len(ws))
	}
	if again.ID != ws[0].ID {
		t.Fatalf("re-join returned %s, want existing %s", again.ID, ws[0].ID)
	}

	// Deregistration removes the node (and is 404 the second time).
	req, err := http.NewRequest(http.MethodDelete, cl.Base()+"/v1/workers/"+ws[1].ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.httpClient().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("DELETE worker: %s", resp.Status)
	}
	left, err := cl.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 {
		t.Fatalf("%d workers after deregistration, want 1", len(left))
	}
	resp, err = cl.httpClient().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("double worker DELETE: %s, want 404", resp.Status)
	}
}
