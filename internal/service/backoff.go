package service

import (
	"context"
	"time"
)

// Seeded exponential backoff with ±50% jitter, shared by every retry loop in
// the service: the fleet's dispatch attempts, worker fleet-join, and the
// client's WithRetry option. Jitter is essential at fleet scale — after a
// dispatcher restart every worker and every polling client retries at once,
// and without jitter they stay phase-locked (thundering herd) forever. The
// jitter source is seeded, not global randomness, so tests and chaos
// schedules replay identically.

type backoff struct {
	base, max time.Duration
	attempt   uint
	state     uint64
}

// newBackoff returns a backoff whose nth delay is (base<<n) capped at max,
// then jittered uniformly into [d/2, 3d/2). Non-positive base/max get
// service-wide defaults (100ms / 5s).
func newBackoff(base, max time.Duration, seed int64) *backoff {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if max < base {
		max = base
	}
	return &backoff{base: base, max: max, state: uint64(seed)}
}

// mix is the SplitMix64 step, advancing the jitter stream one draw.
func (b *backoff) mix() uint64 {
	b.state += 0x9e3779b97f4a7c15
	x := b.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// next returns the next jittered delay and advances the attempt counter.
func (b *backoff) next() time.Duration {
	d := b.max
	if b.attempt < 32 {
		if shifted := b.base << b.attempt; shifted > 0 && shifted < b.max {
			d = shifted
		}
	}
	b.attempt++
	// ±50%: d/2 plus a uniform draw from [0, d).
	return d/2 + time.Duration(b.mix()%uint64(d))
}

// reset rewinds the exponential ramp (kept jitter stream), for loops that
// back off between failures but recover after a success.
func (b *backoff) reset() { b.attempt = 0 }

// seedFromString folds a string into a backoff seed (FNV-1a), giving each
// worker/client a distinct but deterministic jitter stream.
func seedFromString(s string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h)
}

// sleepCtx sleeps for d or until ctx ends, reporting whether the full sleep
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
