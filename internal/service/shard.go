package service

import (
	"context"
	"encoding/json"
	"fmt"

	"tasksuperscalar/internal/experiments"
	"tasksuperscalar/tss"
)

// Sweep sharding: a sweep job is not one opaque simulation but a grid of
// independent points, each a (workload, machine, seed) triple with its own
// content address. Instead of running the sweep monolithically, the daemon
// installs experiments.Options.RunSim and resolves every point through the
// same machinery API sim jobs use — in-memory cache, persistent store,
// in-flight coalescing, and (on a dispatcher) the fleet's remote attempt
// loop. The experiment still formats its output serially from ordered
// slots, so the reassembled sweep result is byte-identical to a monolithic
// run at any fan-out, while each point becomes individually cacheable,
// shareable, and retryable.

// runShardedSweep executes a sweep job point-by-point through the resolver
// and settles it. Shared by the local worker pool and the fleet dispatcher;
// the dispatcher additionally widens the point fan-out to cover its workers.
func (s *Server) runShardedSweep(j *job) {
	e := j.exec
	result, err := runSweepWith(e.ctx, j.spec.Sweep, func(line string) {
		s.appendLog(e, line)
	}, func(o *experiments.Options) {
		if s.fleet != nil {
			if w := s.fleet.shardWidth(); w > o.Workers {
				o.Workers = w
			}
		}
		o.RunSim = s.pointRunner(e.ctx)
	})
	s.finishJob(j, result, err)
}

// pointRunner returns the Options.RunSim hook bound to one sweep run: each
// constituent simulation is accounted in ShardStats and resolved through
// the content-addressed store, falling back to an inline uncached run for
// configurations a sim spec cannot express.
func (s *Server) pointRunner(swctx context.Context) func(experiments.SimJob) (*tss.Result, error) {
	return func(pj experiments.SimJob) (*tss.Result, error) {
		s.mu.Lock()
		s.shard.Points++
		s.mu.Unlock()

		spec, ok := pointSpec(pj)
		if !ok {
			// Not expressible as a sim spec: run it inline under the
			// sweep's own cancellation, exactly as the monolithic path
			// would, and skip the caches (no sound key exists for it).
			s.mu.Lock()
			s.shard.Inline++
			s.mu.Unlock()
			b := pj.Workload.Gen(pj.Tasks, pj.Seed)
			return tss.RunTasksCtx(swctx, b.Tasks, pj.Config)
		}

		payload, outcome, err := s.resolvePoint(swctx, spec)
		s.mu.Lock()
		switch {
		case err != nil:
			s.shard.Failed++
		case outcome == pointMemHit:
			s.shard.MemHits++
		case outcome == pointDiskHit:
			s.shard.DiskHits++
		case outcome == pointCoalesced:
			s.shard.Coalesced++
		default:
			s.shard.Simulated++
		}
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return decodeSimResult(payload)
	}
}

// Point resolution outcomes (ShardStats buckets).
const (
	pointMemHit    = "mem"
	pointDiskHit   = "disk"
	pointCoalesced = "coalesced"
	pointSimulated = "sim"
)

// resolvePoint resolves one sweep point to its canonical result bytes:
// coalesce onto an identical in-flight execution, hit the in-memory cache,
// hit the persistent store, or claim the key and simulate (locally on a
// plain daemon, through the fleet's attempt loop on a dispatcher). The
// claimed execution is placed in the inflight table as an internal job, so
// concurrent API submissions of the same sim spec coalesce onto the point
// and vice versa. ctx is the owning sweep's context: a point execution that
// was cancelled from outside (via a coalesced API job) is retried as long
// as the sweep itself is still live.
func (s *Server) resolvePoint(ctx context.Context, spec *JobSpec) ([]byte, string, error) {
	key := spec.Key()
	for {
		if err := ctx.Err(); err != nil {
			return nil, "", err
		}
		s.mu.Lock()
		if primary, ok := s.inflight[key]; ok {
			e := primary.exec
			s.mu.Unlock()
			payload, err := awaitExecution(ctx, e)
			switch {
			case err == nil:
				return payload, pointCoalesced, nil
			case ctx.Err() != nil:
				return nil, "", ctx.Err()
			case e.ctx != nil && e.ctx.Err() != nil:
				// That execution was cancelled, but our sweep was not:
				// release its inflight slot if its finisher has not yet
				// (idempotent, same guard as settle), then go around and
				// claim the key ourselves.
				s.mu.Lock()
				if p := s.inflight[key]; p != nil && p.exec == e {
					delete(s.inflight, key)
				}
				s.mu.Unlock()
				continue
			default:
				// Deterministic failure: re-running would reproduce it.
				return nil, "", err
			}
		}
		if payload, ok := s.cache.Get(key); ok {
			s.mu.Unlock()
			return payload, pointMemHit, nil
		}
		// Claim the key with an internal (unregistered) job: visible to
		// coalescers through the inflight table, invisible to the job API.
		pj := &job{spec: *spec, key: key, exec: newRunnableExecution()}
		pj.exec.transition(StatusQueued, StatusRunning)
		s.inflight[key] = pj
		s.mu.Unlock()

		if payload, ok := s.diskGet(key); ok {
			s.settle(pj, payload, nil, true)
			return payload, pointDiskHit, nil
		}
		// The per-job deadline applies per point — the same granularity
		// cancellation already has — so long sweeps make progress while no
		// single point can wedge a worker forever.
		pctx, pcancel := s.execCtx(pj.exec)
		var payload []byte
		var err error
		if s.fleet != nil {
			payload, err = s.fleet.execute(pctx, pj)
		} else {
			// Run inline in the sweep's pool goroutine — point
			// concurrency is bounded by the sweep's pool width, never by
			// (or competing for) the server's job queue.
			payload, err = runSim(pctx, spec.Sim, func(done, total uint64) {
				pj.exec.set(func() { pj.exec.done, pj.exec.total = done, total })
			})
		}
		pcancel()
		err = s.deadlineErr(pj.exec, err)
		s.settle(pj, payload, err, false)
		switch {
		case err == nil:
			return payload, pointSimulated, nil
		case ctx.Err() != nil:
			return nil, "", ctx.Err()
		case pj.exec.ctx.Err() != nil:
			// A coalesced API job cancelled our claimed execution while
			// the sweep lives on: resolve the point again from scratch.
			continue
		default:
			return nil, "", err
		}
	}
}

// awaitExecution blocks until e reaches a terminal state (returning its
// result or error) or ctx is cancelled.
func awaitExecution(ctx context.Context, e *execution) ([]byte, error) {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			e.wake()
		case <-stop:
		}
	}()
	e.mu.Lock()
	defer e.mu.Unlock()
	for !terminalStatus(e.status) && ctx.Err() == nil {
		e.cond.Wait()
	}
	if err := ctx.Err(); err != nil && !terminalStatus(e.status) {
		return nil, err
	}
	if e.status == StatusDone {
		return e.result, nil
	}
	return nil, fmt.Errorf("%s", e.errMsg)
}

// pointSpec converts one sweep point into the sim-spec form of the same
// simulation, or reports that the configuration is not expressible. The
// round-trip guard is exact: the spec is accepted only if its machine
// config's canonical string matches the point's (modulo schedule recording,
// an observer that is excluded from result payloads), so a key computed from
// the spec provably addresses the point's result.
func pointSpec(pj experiments.SimJob) (*JobSpec, bool) {
	c := pj.Config
	fe := c.Frontend
	if pj.Tasks < 1 ||
		fe.TRSBytesEach%1024 != 0 || fe.ORTBytesEach%1024 != 0 || fe.OVTBytesEach%1024 != 0 ||
		fe.TRSBytesEach == 0 || fe.ORTBytesEach == 0 || fe.OVTBytesEach == 0 {
		return nil, false
	}
	var rt string
	switch c.Runtime {
	case tss.HardwarePipeline:
		rt = "hardware"
	case tss.SoftwareRuntime:
		rt = "software"
	case tss.Sequential:
		rt = "sequential"
	default:
		return nil, false
	}
	tasks, seed := pj.Tasks, pj.Seed
	spec := &JobSpec{Kind: KindSim, Sim: &SimSpec{
		Workload: pj.Workload.Name,
		Tasks:    &tasks,
		Seed:     &seed,
		Machine: MachineSpec{
			Runtime: rt,
			Cores:   c.Cores,
			TRS:     fe.NumTRS,
			ORT:     fe.NumORT,
			TRSKB:   int(fe.TRSBytesEach >> 10),
			ORTKB:   int(fe.ORTBytesEach >> 10),
			OVTKB:   int(fe.OVTBytesEach >> 10),
			Memory:  c.Memory,
			Policy:  c.EffectivePolicy(),
			Classes: c.EffectiveWorkerClasses(),
		},
	}}
	if err := spec.Normalize(); err != nil {
		return nil, false
	}
	want := pj.Config
	want.Backend.RecordSchedule = false
	if spec.Sim.Config().CanonicalString() != want.CanonicalString() {
		return nil, false
	}
	return spec, true
}

// decodeSimResult reconstructs a tss.Result from a sim job's canonical
// payload bytes. Exact by construction: every numeric field is an integer or
// a float64, and Go's JSON encoding round-trips both losslessly, so a result
// resolved through the store is indistinguishable from one the in-process
// engine returned — which is what lets sharded sweeps reassemble
// byte-identical output from cached points.
func decodeSimResult(payload []byte) (*tss.Result, error) {
	var sr SimResult
	if err := json.Unmarshal(payload, &sr); err != nil {
		return nil, fmt.Errorf("sim result payload: %w", err)
	}
	if sr.SimVersion != tss.SimVersion {
		return nil, fmt.Errorf("sim result from simulator %q, want %q", sr.SimVersion, tss.SimVersion)
	}
	res := &tss.Result{
		Cores:            sr.Cores,
		Tasks:            sr.Tasks,
		Cycles:           sr.Cycles,
		TotalWorkCycles:  sr.TotalWorkCycles,
		DecodeRateCycles: sr.DecodeRateCycles,
		Utilization:      sr.Utilization,
		WindowMax:        sr.WindowMax,
	}
	switch sr.Runtime {
	case "task-superscalar":
		res.Kind = tss.HardwarePipeline
	case "software-runtime":
		res.Kind = tss.SoftwareRuntime
	case "sequential":
		res.Kind = tss.Sequential
	default:
		return nil, fmt.Errorf("sim result with unknown runtime %q", sr.Runtime)
	}
	if sr.Frontend != nil {
		res.Frontend = *sr.Frontend
	}
	if sr.Software != nil {
		res.Software = *sr.Software
	}
	if sr.Mem != nil {
		res.Mem = *sr.Mem
	}
	if sr.Dispatch != nil {
		res.Dispatch = *sr.Dispatch
	}
	return res, nil
}
