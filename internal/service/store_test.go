package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
	"unicode/utf8"

	"tasksuperscalar/internal/faults"
	"tasksuperscalar/tss"
)

// testKey derives a well-formed content address from a label, so store tests
// never collide with each other.
func testKey(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

func openStore(t *testing.T, dir string, maxBytes int64) *DiskStore {
	t.Helper()
	s, err := OpenDiskStore(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The store's core contract: a stored payload is returned verbatim, and —
// because entries are plain envelope files — it is still returned verbatim by
// a fresh store opened on the same directory (the restart path).
func TestDiskStoreRoundTripSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 0)

	key := testKey("round-trip")
	payload := []byte(`{"sim_version":"` + tss.SimVersion + `","cycles":12345}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	s.Put(key, payload)
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("get after put: ok=%v got=%q", ok, got)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 || st.Invalid != 0 {
		t.Fatalf("stats after one miss + one hit: %+v", st)
	}

	// A fresh store on the same directory serves the same bytes: the
	// persistent layer is what survives a daemon crash or restart.
	s2 := openStore(t, dir, 0)
	got2, ok := s2.Get(key)
	if !ok || !bytes.Equal(got2, payload) {
		t.Fatalf("get after reopen: ok=%v got=%q", ok, got2)
	}
	if st := s2.Stats(); st.Entries != 1 {
		t.Fatalf("reopened store indexed %d entries, want 1", st.Entries)
	}
}

// Every corruption mode degrades to a miss (and removal of the bad file) —
// never a wrong payload, never a crash. The key is then re-storable.
func TestDiskStoreCorruptionIsMiss(t *testing.T) {
	payload := []byte(`{"sim_version":"` + tss.SimVersion + `","cycles":999}`)
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flipped payload", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)-1] ^= 0x40
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flipped header", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(envelopeMagic)+3] ^= 0x01
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"emptied", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"file removed underneath", func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := openStore(t, dir, 0)
			key := testKey("corrupt/" + tc.name)
			s.Put(key, payload)
			tc.corrupt(t, filepath.Join(dir, key))

			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupted entry served: %q", got)
			}
			if st := s.Stats(); st.Invalid != 1 || st.Entries != 0 {
				t.Fatalf("stats after corruption: %+v", st)
			}
			if _, err := os.Stat(filepath.Join(dir, key)); !os.IsNotExist(err) {
				t.Fatalf("corrupted file not removed: %v", err)
			}
			// The slot heals: a clean re-put serves again.
			s.Put(key, payload)
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
				t.Fatalf("re-put after corruption: ok=%v got=%q", ok, got)
			}
		})
	}
}

// A result written by a different simulator version must never be served —
// same key space, different semantics.
func TestDiskStoreRejectsForeignSimVersion(t *testing.T) {
	dir := t.TempDir()
	key := testKey("foreign-sim")
	payload := []byte(`{"cycles":1}`)

	// Forge an otherwise-valid envelope claiming a foreign simulator: the
	// checksum and length are correct, only the version differs.
	env := encodeEnvelope(key, payload)
	forged := bytes.Replace(env, []byte(`"sim":"`+tss.SimVersion+`"`), []byte(`"sim":"tss-sim/0"`), 1)
	if bytes.Equal(env, forged) {
		t.Fatal("forgery failed to rewrite the sim version")
	}
	if err := os.WriteFile(filepath.Join(dir, key), forged, 0o644); err != nil {
		t.Fatal(err)
	}

	s := openStore(t, dir, 0)
	if got, ok := s.Get(key); ok {
		t.Fatalf("foreign-version envelope served: %q", got)
	}
	if st := s.Stats(); st.Invalid != 1 {
		t.Fatalf("foreign version not counted invalid: %+v", st)
	}
}

// The byte budget evicts least-recently-used entries, where recency is
// refreshed by hits and persisted across a reopen (mtime order).
func TestDiskStoreEvictionLRU(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 1024)
	envSize := int64(len(encodeEnvelope(testKey("size"), payload)))

	// Budget for exactly two envelopes.
	s := openStore(t, dir, 2*envSize)
	a, b, c := testKey("evict/a"), testKey("evict/b"), testKey("evict/c")
	s.Put(a, payload)
	s.Put(b, payload)
	// Touch a so b becomes the LRU entry, then overflow with c.
	if _, ok := s.Get(a); !ok {
		t.Fatal("a missing before eviction")
	}
	s.Put(c, payload)

	if _, ok := s.Get(b); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := s.Get(a); !ok {
		t.Fatal("recently-used entry a was evicted")
	}
	if _, ok := s.Get(c); !ok {
		t.Fatal("new entry c missing")
	}
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats after eviction: %+v", st)
	}

	// Reopening with a smaller budget evicts down to it immediately, oldest
	// mtime first. (Backdate a's file so the order is unambiguous even on
	// coarse filesystem clocks.)
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, a), old, old); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, envSize)
	if st := s2.Stats(); st.Entries != 1 {
		t.Fatalf("reopen with 1-envelope budget kept %d entries", st.Entries)
	}
	if _, ok := s2.Get(c); !ok {
		t.Fatal("newest entry c evicted at reopen instead of the backdated one")
	}
}

// Files that are not well-formed content addresses are never indexed,
// served, or deleted — the store shares a directory politely.
func TestDiskStoreIgnoresStrayFiles(t *testing.T) {
	dir := t.TempDir()
	stray := filepath.Join(dir, "README")
	if err := os.WriteFile(stray, []byte("not a result"), 0o644); err != nil {
		t.Fatal(err)
	}
	short := filepath.Join(dir, "deadbeef")
	if err := os.WriteFile(short, []byte("also not"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := openStore(t, dir, 0)
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("stray files indexed: %+v", st)
	}
	if _, ok := s.Get("README"); ok {
		t.Fatal("non-key lookup served a stray file")
	}
	s.Put("not-a-key", []byte("x"))
	for _, p := range []string{stray, short} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("stray file %s disturbed: %v", p, err)
		}
	}
}

// Exhaustive small-scale tamper property: no truncation and no single-byte
// corruption of a valid envelope can ever decode to a different payload.
// (Failing to decode is fine — that is a miss; decoding wrong bytes is the
// one unacceptable outcome.)
func TestEnvelopeTamperNeverYieldsWrongPayload(t *testing.T) {
	key := testKey("tamper")
	payload := []byte(`{"sim_version":"` + tss.SimVersion + `","cycles":42,"util":0.5}`)
	env := encodeEnvelope(key, payload)

	check := func(what string, mutated []byte) {
		t.Helper()
		got, err := decodeEnvelope(key, mutated)
		if err == nil && !bytes.Equal(got, payload) {
			t.Fatalf("%s decoded to a different payload: %q", what, got)
		}
	}
	for i := 0; i < len(env); i++ {
		check(fmt.Sprintf("truncation to %d bytes", i), env[:i])
		m := append([]byte(nil), env...)
		m[i] ^= 0xff
		check(fmt.Sprintf("flip at byte %d", i), m)
	}
	// And the unmutated envelope still decodes exactly.
	got, err := decodeEnvelope(key, env)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("pristine envelope: %v %q", err, got)
	}
}

// FuzzResultEnvelope drives the persistent store's safety contract from
// arbitrary bytes: decoding never panics, anything that decodes re-encodes
// losslessly, and every payload round-trips exactly through its envelope.
func FuzzResultEnvelope(f *testing.F) {
	key := testKey("fuzz-seed")
	valid := encodeEnvelope(key, []byte(`{"sim_version":"`+tss.SimVersion+`","cycles":7}`))
	f.Add(key, valid)
	f.Add(key, valid[:len(valid)/2])
	f.Add(key, []byte{})
	f.Add(key, []byte(envelopeMagic+"\n{}\n"))
	f.Add(strings.Repeat("f", 64), []byte(envelopeMagic+"\nnot-json\npayload"))

	f.Fuzz(func(t *testing.T, k string, data []byte) {
		// Arbitrary bytes either fail to decode (a miss) or decode to a
		// payload whose re-encoding is stable under the same key.
		if payload, err := decodeEnvelope(k, data); err == nil {
			again, err2 := decodeEnvelope(k, encodeEnvelope(k, payload))
			if err2 != nil || !bytes.Equal(again, payload) {
				t.Fatalf("accepted envelope is not re-encode stable: %v", err2)
			}
		}
		// Every (key, payload) pair round-trips exactly, as long as the
		// header fits the decoder's scan bound (absurd multi-KB keys are
		// legitimately rejected; real keys are always 64 hex bytes) and the
		// key survives JSON encoding (invalid UTF-8 is lossily replaced by
		// encoding/json, which a real key never contains).
		if !utf8.ValidString(k) {
			return
		}
		env := encodeEnvelope(k, data)
		if hdrEnd := bytes.IndexByte(env[len(envelopeMagic)+1:], '\n'); hdrEnd > maxEnvelopeHeader {
			return
		}
		got, err := decodeEnvelope(k, env)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round-trip changed payload: %q -> %q", data, got)
		}
	})
}

// The fsync regression bar: a write torn mid-envelope — the crash-between-
// write-and-fsync state the store's file+directory fsyncs exist to prevent —
// must never be served. The next Get detects the truncation, heals by
// removing the file, and a clean re-Put restores the key.
func TestDiskStoreTornWriteHeals(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 0)
	// P=1 Torn with a tiny prefix: the very first Put is torn.
	s.SetFaults(faults.New(3, faults.Plan{
		faults.StoreWrite: {P: 1, Kinds: []faults.Kind{faults.Torn}, TornAfter: 16},
	}))

	key := testKey("torn-write")
	payload := []byte(`{"sim_version":"` + tss.SimVersion + `","cycles":777}`)
	s.Put(key, payload)

	// The torn file exists but must fail verification and heal to a miss.
	if _, err := os.Stat(filepath.Join(dir, key)); err != nil {
		t.Fatalf("torn write left no file to detect: %v", err)
	}
	if got, ok := s.Get(key); ok {
		t.Fatalf("torn envelope served: %q", got)
	}
	if st := s.Stats(); st.Invalid != 1 {
		t.Fatalf("torn envelope not counted invalid: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, key)); !os.IsNotExist(err) {
		t.Fatalf("torn envelope not removed: %v", err)
	}

	// Faults off: the clean re-Put round-trips, and survives reopen — the
	// durable path (write, fsync file, rename, fsync dir) is intact.
	s.SetFaults(nil)
	s.Put(key, payload)
	if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("re-put after heal: ok=%v got=%q", ok, got)
	}
	s2 := openStore(t, dir, 0)
	if got, ok := s2.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("reopened store after heal: ok=%v got=%q", ok, got)
	}
}

// A halted store (the crash instant) neither serves nor records anything.
func TestDiskStoreHaltFreezesIO(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 0)
	key := testKey("halted")
	payload := []byte(`{"sim_version":"` + tss.SimVersion + `"}`)
	s.Put(key, payload)
	s.halt()
	if _, ok := s.Get(key); ok {
		t.Fatal("halted store served a read")
	}
	s.Put(testKey("halted-2"), payload)
	if _, err := os.Stat(filepath.Join(dir, testKey("halted-2"))); !os.IsNotExist(err) {
		t.Fatal("halted store persisted a write")
	}
	// The pre-halt write is durable: a successor store serves it.
	s2 := openStore(t, dir, 0)
	if got, ok := s2.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("pre-halt write lost: ok=%v got=%q", ok, got)
	}
}
