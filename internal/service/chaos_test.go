package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"tasksuperscalar/internal/faults"
)

// The chaos suite: a 3-worker fleet with a journaled, disk-backed dispatcher
// runs a job load under a seeded fault schedule — dropped and delayed RPCs,
// synthetic 5xx, SSE streams cut mid-relay, torn store writes — plus a full
// dispatcher crash (Kill, not drain) and restart in the middle. The bar is
// absolute: every submitted job settles done, every result is byte-identical
// to the fault-free run, the conservation invariants hold on the surviving
// daemon, and the journal drains to zero live jobs.

// chaosPlan is the fault mix every seed runs under. Heartbeat is left clean:
// worker liveness flapping is a load balancer concern, not what this suite
// pins down.
func chaosPlan() faults.Plan {
	return faults.Plan{
		faults.RPC: {
			P:        0.15,
			Kinds:    []faults.Kind{faults.Drop, faults.Delay, faults.Err5xx},
			MaxDelay: 10 * time.Millisecond,
		},
		faults.Stream:     {P: 0.15, Kinds: []faults.Kind{faults.Cut}},
		faults.StoreWrite: {P: 0.2, Kinds: []faults.Kind{faults.Torn}},
	}
}

// chaosFleet keeps the dispatcher behind a stable URL across crash/restart
// generations: the proxy forwards to the current Server, and answers 503
// draining (a retryable envelope) while no generation is alive — exactly
// what a client of a crashed daemon sees before its supervisor restarts it.
type chaosFleet struct {
	t     *testing.T
	dir   string
	seed  int64
	proxy *httptest.Server

	mu  sync.Mutex
	cur *Server
}

func (cf *chaosFleet) dispatcherConfig() Config {
	return Config{
		Fleet:             true,
		JournalDir:        filepath.Join(cf.dir, "journal"),
		CacheDir:          filepath.Join(cf.dir, "cache"),
		DispatchRetries:   8,
		RetryBackoff:      5 * time.Millisecond,
		RetryBackoffMax:   50 * time.Millisecond,
		NoWorkerWait:      20 * time.Second,
		BreakerCooldown:   100 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
		Faults:            faults.New(cf.seed, chaosPlan()),
	}
}

func (cf *chaosFleet) current() *Server {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	return cf.cur
}

// crashRestart kills the current dispatcher generation mid-flight and brings
// up a successor on the same journal and store. The fault injector is fresh
// per generation (its call counters restart), which is what a real restart
// does too.
func (cf *chaosFleet) crashRestart() {
	cf.mu.Lock()
	old := cf.cur
	cf.cur = nil
	cf.mu.Unlock()
	old.Kill()
	next, err := New(cf.dispatcherConfig())
	if err != nil {
		cf.t.Errorf("restarting dispatcher: %v", err)
		return
	}
	cf.mu.Lock()
	cf.cur = next
	cf.mu.Unlock()
}

func startChaosFleet(t *testing.T, seed int64, nWorkers int) *chaosFleet {
	t.Helper()
	cf := &chaosFleet{t: t, dir: t.TempDir(), seed: seed}
	srv, err := New(cf.dispatcherConfig())
	if err != nil {
		t.Fatal(err)
	}
	cf.cur = srv
	cf.proxy = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := cf.current()
		if cur == nil {
			writeError(w, http.StatusServiceUnavailable, CodeDraining, "dispatcher restarting")
			return
		}
		cur.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		cf.proxy.Close()
		if cur := cf.current(); cur != nil {
			cur.Close()
		}
	})

	// Workers register through HeartbeatLoop against the stable proxy URL:
	// heartbeats double as registration, so a restarted dispatcher
	// generation re-learns the whole fleet within one beat.
	hbCtx, hbCancel := context.WithCancel(context.Background())
	t.Cleanup(hbCancel)
	for i := 0; i < nWorkers; i++ {
		wsrv, err := New(Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		whs := httptest.NewServer(wsrv.Handler())
		t.Cleanup(func() { whs.Close(); wsrv.Close() })
		go HeartbeatLoop(hbCtx, cf.proxy.URL, whs.URL, wsrv.Instance(), 20*time.Millisecond)
	}

	// Don't start the clock on the job load until at least one worker is in
	// the rotation.
	cl := NewClient(cf.proxy.URL)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ws, err := cl.Workers(context.Background()); err == nil && len(ws) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no worker registered within 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cf
}

// chaosClient is what a well-behaved caller of a crash-prone daemon looks
// like: a retry policy rides out transport faults and draining windows, and
// a 404 on a previously issued job ID — the daemon settled and forgot the
// job before crashing — is answered by resubmitting the spec, which content
// addressing makes exactly as safe as polling.
func chaosClient(proxy string) *Client {
	return NewClient(proxy, WithRetry(RetryPolicy{
		Attempts: 12, Base: 5 * time.Millisecond, Max: 100 * time.Millisecond,
	}))
}

// settleJob polls id until it settles done and returns the result bytes,
// resubmitting spec if the ID was forgotten across a crash. Transient errors
// (mid-restart windows that outlast the client's own retry budget) are
// retried until the deadline.
func settleJob(ctx context.Context, cl *Client, spec *JobSpec, id string) ([]byte, error) {
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s did not settle within 60s", id)
		}
		st, err := cl.Job(ctx, id)
		switch {
		case err != nil:
			var ae *APIError
			if errors.As(err, &ae) && ae.Code == CodeNotFound {
				ns, serr := cl.Submit(ctx, spec)
				if serr != nil {
					var sae *APIError
					if errors.As(serr, &sae) && !sae.Retryable {
						return nil, fmt.Errorf("resubmitting %s: %w", id, serr)
					}
					break // transient: retry the whole step
				}
				id = ns.ID
				continue
			}
			// Transient (restart window, injected fault run): retry.
		case terminalStatus(st.Status):
			if st.Status != StatusDone {
				return nil, fmt.Errorf("job %s settled %s: %s", id, st.Status, st.Error)
			}
			body, rerr := cl.Result(ctx, id)
			if rerr != nil {
				var ae *APIError
				if errors.As(rerr, &ae) && ae.Code == CodeNotFound {
					continue // settled and evicted mid-poll: resubmit path
				}
				break // transient: re-poll
			}
			return body, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// runChaos drives one seeded schedule end to end and asserts the settle,
// byte-identity, conservation, and journal-drain bars.
func runChaos(t *testing.T, seed int64) {
	cf := startChaosFleet(t, seed, 3)
	ctx := context.Background()

	// 12 jobs over 8 distinct specs: the duplicates exercise coalescing and
	// cache hits under faults. Expected bytes come from a local fault-free
	// run — determinism makes them exact, not approximate.
	type tracked struct {
		spec *JobSpec
		want []byte
		id   string
		got  []byte
		err  error
	}
	jobs := make([]*tracked, 12)
	for i := range jobs {
		spec := quickSpec(int64(200 + i%8))
		want, err := RunSpec(mustNormalize(t, spec))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = &tracked{spec: spec, want: want}
	}

	submit := func(j *tracked) {
		cl := chaosClient(cf.proxy.URL)
		st, err := cl.Submit(ctx, j.spec)
		if err != nil {
			j.err = fmt.Errorf("submit: %w", err)
			return
		}
		j.id = st.ID
	}

	// Batch 1 goes in, the dispatcher crashes with that load queued,
	// running, and partially settled, then batch 2 lands on the successor.
	for _, j := range jobs[:8] {
		submit(j)
	}
	time.Sleep(30 * time.Millisecond)
	cf.crashRestart()
	for _, j := range jobs[8:] {
		submit(j)
	}

	var wg sync.WaitGroup
	for _, j := range jobs {
		if j.err != nil {
			continue
		}
		wg.Add(1)
		go func(j *tracked) {
			defer wg.Done()
			cl := chaosClient(cf.proxy.URL)
			j.got, j.err = settleJob(ctx, cl, j.spec, j.id)
		}(j)
	}
	wg.Wait()

	for i, j := range jobs {
		if j.err != nil {
			t.Errorf("job %d (%s): %v", i, j.id, j.err)
			continue
		}
		if !bytes.Equal(j.got, j.want) {
			t.Errorf("job %d (%s): result diverged from fault-free run (%d vs %d bytes)",
				i, j.id, len(j.got), len(j.want))
		}
	}
	if t.Failed() {
		return
	}

	// The surviving generation's books must balance: every accepted
	// submission (journal-replayed ones included) is in exactly one
	// terminal bucket, nothing is left in flight, and the journal holds no
	// live jobs.
	srv := cf.current()
	st := srv.Stats()
	buckets := st.Completed + st.Failed + st.Cancelled + st.Coalesced + st.CacheHits + st.DiskHits
	if buckets != st.Submitted || st.Inflight != 0 {
		t.Errorf("conservation: %d settled of %d submitted, %d inflight (%+v)",
			buckets, st.Submitted, st.Inflight, st)
	}
	if st.Journal == nil || st.Journal.Live != 0 {
		t.Errorf("journal not drained: %+v", st.Journal)
	}
	if st.Fleet != nil {
		var failures uint64
		for _, w := range st.Fleet.Workers {
			failures += w.Failures
		}
		if failures != st.Fleet.Retries+st.Fleet.Exhausted {
			t.Errorf("fleet conservation: worker failures %d != retries %d + exhausted %d",
				failures, st.Fleet.Retries, st.Fleet.Exhausted)
		}
	}
}

// TestChaosEveryJobSettles runs the fixed seed bank CI gates on. Each seed
// is an independent fleet, fault schedule, and crash.
func TestChaosEveryJobSettles(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is not short")
	}
	for _, seed := range []int64{11, 23, 37, 41, 59} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaos(t, seed)
		})
	}
}

// TestChaosRandomSeed is the randomized smoke: CI passes a fresh CHAOS_SEED
// so the fixed bank never fossilizes. A failing seed reproduces exactly by
// exporting the same value locally.
func TestChaosRandomSeed(t *testing.T) {
	v := os.Getenv("CHAOS_SEED")
	if v == "" {
		t.Skip("set CHAOS_SEED to run the randomized chaos smoke")
	}
	seed, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED %q: %v", v, err)
	}
	runChaos(t, seed)
}
