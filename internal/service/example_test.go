package service_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"tasksuperscalar/internal/service"
)

// ExampleClient submits a simulation to a tssd daemon, waits for it over the
// job's event stream, and shows that a repeated identical submission is
// answered from the content-addressed result cache without re-simulating.
func ExampleClient() {
	srv, err := service.New(service.Config{Workers: 2})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	cl := service.NewClient(hs.URL)
	ctx := context.Background()
	tasks, seed := 600, int64(7)
	spec := &service.JobSpec{
		Kind: service.KindSim,
		Sim: &service.SimSpec{
			Workload: "cholesky",
			Tasks:    &tasks,
			Seed:     &seed,
			Machine:  service.MachineSpec{Cores: 16},
		},
	}

	st, _ := cl.Submit(ctx, spec)
	st, err = cl.Wait(ctx, st.ID, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("first run: %s (cached: %v)\n", st.Status, st.Cached)

	// Same spec again: a deterministic simulator makes the cached result
	// exact, so the daemon answers without running anything.
	again, _ := cl.Submit(ctx, spec)
	fmt.Printf("second run: %s (cached: %v)\n", again.Status, again.Cached)

	stats, _ := cl.Stats(ctx)
	fmt.Printf("cache hits: %d\n", stats.Cache.Hits)
	// Output:
	// first run: done (cached: false)
	// second run: done (cached: true)
	// cache hits: 1
}
