package service

import "sync"

// Weighted fair-share scheduling: the intake between accepted submissions
// and the worker pool (or, in fleet mode, the dispatch pump).
//
// The old intake was a single FIFO channel — one heavy tenant could bury
// everyone else's jobs arbitrarily deep. The scheduler replaces it with
// per-tenant, per-priority-class queues drained by start-time fair queueing:
//
//   - Each tenant carries a virtual-time tag. Picking always takes the
//     backlogged tenant with the smallest tag (ties: tenant creation order),
//     then advances that tenant's tag by 1/weight. Under saturation this
//     converges to worker shares proportional to the configured weights; a
//     tenant returning from idle has its tag floored to the global virtual
//     clock, so idling banks no credit.
//   - Within a tenant, the interactive class preempts the bulk class:
//     queued interactive jobs (point queries) are picked before queued bulk
//     jobs (sweep shards). Starvation is bounded: after bulkPromoteEvery
//     consecutive interactive picks while bulk work waits, the next pick
//     from that tenant is bulk.
//
// Every decision is a pure function of (arrival sequence, tenant, priority):
// no timers, no randomness — so a given submission interleaving always
// yields the same dispatch order, and the byte-identity and conservation
// guarantees of the execution layer are untouched (the scheduler only
// reorders *which* job a worker takes next).

// Priority classes. PriorityInteractive is the default for sim jobs (a
// human waiting on one point), PriorityBulk for sweep jobs (a batch of
// shards nobody is staring at). JobSpec.Priority overrides the default and
// is scheduling metadata only — it is excluded from the job key, so the same
// spec at either priority addresses the same cached result.
const (
	PriorityInteractive = "interactive"
	PriorityBulk        = "bulk"
)

const (
	classInteractive = iota
	classBulk
	numClasses
)

// classOf maps a normalized priority to its class index.
func classOf(priority string) int {
	if priority == PriorityBulk {
		return classBulk
	}
	return classInteractive
}

// bulkPromoteEvery bounds bulk-class starvation within a tenant: after this
// many consecutive interactive picks while the tenant's bulk queue is
// nonempty, the next pick is bulk. A queued bulk job therefore waits at most
// bulkPromoteEvery interactive dispatches of its tenant per queue position.
const bulkPromoteEvery = 8

// tenantQueue is one tenant's scheduler state.
type tenantQueue struct {
	name   string
	weight float64
	index  int     // creation order: the deterministic tie-break
	tag    float64 // virtual-time tag (next pick's start time)
	intRun int     // consecutive interactive picks while bulk waited

	q          [numClasses][]*job
	dispatched uint64
}

func (tq *tenantQueue) queued() int {
	return len(tq.q[classInteractive]) + len(tq.q[classBulk])
}

// scheduler is the shared intake. enqueue never blocks (capacity rejection
// is the caller's 503); next blocks until a job is available, and returns
// nil once the scheduler is closed and drained — the worker-pool shutdown
// signal, mirroring the closed-channel semantics it replaces.
type scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	depth  int

	queued     int
	seq        uint64  // arrival sequence
	vclock     float64 // tag of the most recently dispatched job
	queues     []*tenantQueue
	byName     map[string]*tenantQueue
	dispatched uint64
}

func newScheduler(depth int) *scheduler {
	sc := &scheduler{depth: depth, byName: make(map[string]*tenantQueue)}
	sc.cond = sync.NewCond(&sc.mu)
	return sc
}

// enqueue admits one job, assigning its arrival sequence. It reports false —
// and records nothing — when the scheduler is closed or at depth.
func (sc *scheduler) enqueue(j *job) bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.closed || sc.queued >= sc.depth {
		return false
	}
	tq := sc.byName[j.tenant.name]
	if tq == nil {
		tq = &tenantQueue{
			name:   j.tenant.name,
			weight: float64(j.tenant.weight),
			index:  len(sc.queues),
		}
		sc.queues = append(sc.queues, tq)
		sc.byName[tq.name] = tq
	}
	if tq.queued() == 0 {
		// Idle → backlogged: floor the tag to the virtual clock so the
		// tenant competes from now, not from banked idle time.
		if tq.tag < sc.vclock {
			tq.tag = sc.vclock
		}
	}
	sc.seq++
	j.seq = sc.seq
	tq.q[j.class] = append(tq.q[j.class], j)
	sc.queued++
	sc.cond.Signal()
	return true
}

// next blocks until a job is available and returns the fair-share pick, or
// nil when the scheduler is closed and fully drained.
func (sc *scheduler) next() *job {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for sc.queued == 0 && !sc.closed {
		sc.cond.Wait()
	}
	if sc.queued == 0 {
		return nil
	}
	return sc.pickLocked()
}

// pickLocked implements the scheduling decision; caller holds sc.mu and has
// checked queued > 0.
func (sc *scheduler) pickLocked() *job {
	var best *tenantQueue
	for _, tq := range sc.queues {
		if tq.queued() == 0 {
			continue
		}
		if best == nil || tq.tag < best.tag {
			best = tq
		}
	}

	// Class within the tenant: interactive preempts bulk, bounded by the
	// promotion counter so bulk is never starved.
	cls := classInteractive
	switch {
	case len(best.q[classInteractive]) == 0:
		cls = classBulk
	case len(best.q[classBulk]) > 0 && best.intRun >= bulkPromoteEvery:
		cls = classBulk
	}
	if cls == classBulk {
		best.intRun = 0
	} else if len(best.q[classBulk]) > 0 {
		best.intRun++
	} else {
		best.intRun = 0
	}

	j := best.q[cls][0]
	best.q[cls][0] = nil // free the slot for GC
	best.q[cls] = best.q[cls][1:]
	sc.queued--
	best.dispatched++
	sc.dispatched++

	// Advance virtual time: the clock moves to this pick's start tag, and
	// the tenant's next start is one weighted quantum later.
	sc.vclock = best.tag
	best.tag += 1 / best.weight
	return j
}

// close wakes every waiter; workers drain the remaining queue (next keeps
// returning queued jobs) and then exit on nil.
func (sc *scheduler) close() {
	sc.mu.Lock()
	sc.closed = true
	sc.cond.Broadcast()
	sc.mu.Unlock()
}

// abort closes the scheduler AND drops the queue on the floor — crash
// semantics (Server.Kill), where close is shutdown semantics. Workers exit
// on their next pick; the dropped jobs live on in the journal, which is
// exactly where a restart recovers them from.
func (sc *scheduler) abort() {
	sc.mu.Lock()
	sc.closed = true
	for _, tq := range sc.queues {
		for cls := range tq.q {
			for i := range tq.q[cls] {
				tq.q[cls][i] = nil
			}
			tq.q[cls] = nil
		}
	}
	sc.queued = 0
	sc.cond.Broadcast()
	sc.mu.Unlock()
}

// SchedStats is the scheduler section of GET /stats: queue depth overall and
// by priority class, plus total dispatches.
type SchedStats struct {
	Queued            int    `json:"queued"`
	QueuedInteractive int    `json:"queued_interactive"`
	QueuedBulk        int    `json:"queued_bulk"`
	Dispatched        uint64 `json:"dispatched"`
}

// stats snapshots the scheduler counters and per-tenant queue depths,
// merging the latter into byTenant (keyed by tenant name).
func (sc *scheduler) stats(byTenant map[string]*TenantStats) SchedStats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	st := SchedStats{Queued: sc.queued, Dispatched: sc.dispatched}
	for _, tq := range sc.queues {
		st.QueuedInteractive += len(tq.q[classInteractive])
		st.QueuedBulk += len(tq.q[classBulk])
		if ts := byTenant[tq.name]; ts != nil {
			ts.QueuedInteractive = len(tq.q[classInteractive])
			ts.QueuedBulk = len(tq.q[classBulk])
			ts.Dispatched = tq.dispatched
		}
	}
	return st
}
