package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// detachedTransport strips the request context before delegating, the shape
// of third-party RoundTripper wrappers (retry, logging) that rebuild
// requests: with one of these installed, the transport will never abort a
// blocked body read on cancellation — only Events' own watchdog can.
type detachedTransport struct{}

func (detachedTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	return http.DefaultTransport.RoundTrip(r.WithContext(context.Background()))
}

// Regression: Events (and Wait on top of it) must abort promptly when the
// context is cancelled while the SSE read is blocked waiting for the
// server's next event — not at the next event, which for an idle job may be
// arbitrarily far away, and not only when the transport happens to watch
// the request context mid-read. The stalling server below sends one event
// and then goes silent until the test ends; the client's transport detaches
// request contexts, so only the client-side watchdog can unblock the read.
func TestEventsAbortsPromptlyOnCancel(t *testing.T) {
	release := make(chan struct{})
	firstSent := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, "event: status\ndata: {\"status\":\"running\"}\n\n")
		w.(http.Flusher).Flush()
		close(firstSent)
		<-release // no further events, ever
	}))
	t.Cleanup(func() { close(release); hs.Close() })

	cl := NewClient(hs.URL, WithHTTPClient(&http.Client{Transport: detachedTransport{}}))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	got := make(chan error, 1)
	sawFirst := make(chan struct{})
	go func() {
		first := true
		got <- cl.Events(ctx, "job-1", func(ev Event) error {
			if first {
				first = false
				close(sawFirst)
			}
			return nil
		})
	}()

	<-firstSent
	select {
	case <-sawFirst:
	case <-time.After(10 * time.Second):
		t.Fatal("first event never delivered")
	}
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Events returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Events blocked past cancellation (stuck in the SSE read)")
	}
}

// The same promptness through Wait against a real daemon: cancelling the
// wait context while a job runs returns immediately with the context error
// and leaves the job running (Wait abandons the watch, Cancel stops jobs).
func TestWaitAbortsPromptlyOnCancel(t *testing.T) {
	_, cl := startDaemon(t, Config{Workers: 1})
	bg := context.Background()

	st, err := cl.Submit(bg, longSpec(61))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, cl, st.ID, func(s *SubmitStatus) bool { return s.Status == StatusRunning && s.Done > 0 }, "running")

	ctx, cancel := context.WithCancel(bg)
	got := make(chan error, 1)
	go func() {
		_, err := cl.Wait(ctx, st.ID, nil)
		got <- err
	}()
	// Let the watcher attach, then cancel only the wait.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait blocked past cancellation")
	}
	// The job itself was not cancelled by abandoning the watch.
	now, err := cl.Job(bg, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if now.Status == StatusCancelled {
		t.Fatal("abandoning a Wait cancelled the job")
	}
	if _, err := cl.Cancel(bg, st.ID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, cl, st.ID, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
}
