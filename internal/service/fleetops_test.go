package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// pollWorkers polls the dispatcher's worker list until cond is satisfied.
func pollWorkers(t *testing.T, cl *Client, what string, cond func([]WorkerInfo) bool) []WorkerInfo {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		ws, err := cl.Workers(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if cond(ws) {
			return ws
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; workers: %+v", what, ws)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Graceful drain: a draining worker finishes the job it is running but
// receives no new dispatches; undraining returns it to the rotation.
func TestWorkerDrainGraceful(t *testing.T) {
	_, cl, workers := startFleet(t, 2, Config{Workers: 1})
	ctx := context.Background()

	// Occupy the first worker (least-active tie-break picks registration
	// order, so the first dispatch lands on workers[0]).
	st1, err := cl.Submit(ctx, simSpec("cholesky", 12000, 51, 16))
	if err != nil {
		t.Fatal(err)
	}
	ws := pollWorkers(t, cl, "first dispatch to land", func(ws []WorkerInfo) bool {
		return ws[0].Active == 1
	})

	// Drain it mid-job.
	info, err := cl.DrainWorker(ctx, ws[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Draining {
		t.Fatalf("drain response %+v, want draining", info)
	}

	// New work goes elsewhere while the drained worker still runs job 1.
	st2, err := cl.Submit(ctx, simSpec("cholesky", 500, 52, 16))
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := cl.Wait(ctx, st2.ID, nil); err != nil || fin.Status != StatusDone {
		t.Fatalf("job on the remaining worker: %v %+v", err, fin)
	}

	// The running job finishes on the drained worker.
	fin1, err := cl.Wait(ctx, st1.ID, nil)
	if err != nil || fin1.Status != StatusDone {
		t.Fatalf("job on the drained worker: %v %+v", err, fin1)
	}
	if got := workers[0].srv.Stats().Submitted; got != 1 {
		t.Fatalf("drained worker received %d jobs, want only the pre-drain one", got)
	}
	if got := workers[1].srv.Stats().Submitted; got != 1 {
		t.Fatalf("second worker received %d jobs, want 1", got)
	}

	// With every worker draining, dispatch has nowhere to go and the job
	// fails with the fleet error (naming "worker", as the older tests pin).
	ws, err = cl.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.DrainWorker(ctx, ws[1].ID); err != nil {
		t.Fatal(err)
	}
	st3, err := cl.Submit(ctx, simSpec("cholesky", 500, 53, 16))
	if err != nil {
		t.Fatal(err)
	}
	fin3, err := cl.Wait(ctx, st3.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin3.Status != StatusFailed {
		t.Fatalf("job with all workers draining ended %s", fin3.Status)
	}

	// Undrain: the fleet serves again.
	if _, err := cl.UndrainWorker(ctx, ws[0].ID); err != nil {
		t.Fatal(err)
	}
	st4, err := cl.Submit(ctx, simSpec("cholesky", 500, 54, 16))
	if err != nil {
		t.Fatal(err)
	}
	if fin4, err := cl.Wait(ctx, st4.ID, nil); err != nil || fin4.Status != StatusDone {
		t.Fatalf("job after undrain: %v %+v", err, fin4)
	}

	// Draining an unknown worker is a unified not_found.
	var apiErr *APIError
	if _, err := cl.DrainWorker(ctx, "worker-99"); !errors.As(err, &apiErr) || apiErr.Code != CodeNotFound {
		t.Fatalf("drain of unknown worker: %v, want not_found", err)
	}
}

// The heartbeat liveness state machine: a worker that beats is healthy, ages
// to suspect and then dead as beats stop, and revives on the next beat. A
// heartbeat also registers an unknown worker without probing it — the beat
// itself is the liveness proof.
func TestHeartbeatLivenessStateMachine(t *testing.T) {
	interval := 30 * time.Millisecond
	srv, err := New(Config{Fleet: true, HeartbeatInterval: interval})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	cl := NewClient(hs.URL)
	ctx := context.Background()

	// The advertised URL is never probed on heartbeat registration, so a
	// plain unreachable address works for driving the state machine.
	info, err := cl.Heartbeat(ctx, "http://127.0.0.1:1", "instance-w1")
	if err != nil {
		t.Fatal(err)
	}
	if info.State != WorkerHealthy || !info.Heartbeat {
		t.Fatalf("heartbeat registration %+v, want healthy heartbeat worker", info)
	}

	// A dispatcher must reject a heartbeat claiming its own instance —
	// self-dispatch would deadlock.
	var apiErr *APIError
	if _, err := cl.Heartbeat(ctx, "http://127.0.0.1:1", srv.Instance()); !errors.As(err, &apiErr) || apiErr.Code != CodeBadRequest {
		t.Fatalf("self-heartbeat: %v, want bad_request", err)
	}

	// Stop beating: healthy → suspect (~2.5 intervals) → dead (~5).
	pollWorkers(t, cl, "suspect", func(ws []WorkerInfo) bool {
		return len(ws) == 1 && ws[0].State == WorkerSuspect && !ws[0].Healthy
	})
	pollWorkers(t, cl, "dead", func(ws []WorkerInfo) bool {
		return ws[0].State == WorkerDead
	})

	// One beat revives it.
	info, err = cl.Heartbeat(ctx, "http://127.0.0.1:1", "instance-w1")
	if err != nil {
		t.Fatal(err)
	}
	if info.State != WorkerHealthy || info.Revived != 1 {
		t.Fatalf("post-revival %+v, want healthy with revived=1", info)
	}
	// And re-registration was idempotent throughout: still one worker.
	if ws, _ := cl.Workers(ctx); len(ws) != 1 {
		t.Fatalf("%d workers after repeated heartbeats, want 1", len(ws))
	}
}

// Dispatcher restart recovery: when the dispatcher process is replaced by a
// fresh one that knows no workers, the workers' periodic heartbeats re-learn
// the whole fleet within one heartbeat interval — no operator action, and
// jobs dispatch end to end again.
func TestDispatcherRestartRelearnsFleet(t *testing.T) {
	interval := 25 * time.Millisecond

	// The dispatcher sits behind a swappable handler, so "restart" replaces
	// the daemon while its URL — the one workers heartbeat to — survives.
	var mu sync.Mutex
	var handler http.Handler
	dhs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		h := handler
		mu.Unlock()
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(dhs.Close)

	disp1, err := New(Config{Fleet: true, HeartbeatInterval: interval})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(disp1.Close)
	mu.Lock()
	handler = disp1.Handler()
	mu.Unlock()

	// One real worker daemon, heartbeating.
	wsrv, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	whs := httptest.NewServer(wsrv.Handler())
	t.Cleanup(func() { whs.Close(); wsrv.Close() })
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go HeartbeatLoop(ctx, dhs.URL, whs.URL, wsrv.Instance(), interval)

	cl := NewClient(dhs.URL)
	pollWorkers(t, cl, "initial registration", func(ws []WorkerInfo) bool {
		return len(ws) == 1 && ws[0].State == WorkerHealthy
	})

	// "Restart" the dispatcher: a brand-new daemon with an empty worker set.
	disp2, err := New(Config{Fleet: true, HeartbeatInterval: interval})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(disp2.Close)
	mu.Lock()
	handler = disp2.Handler()
	mu.Unlock()

	start := time.Now()
	pollWorkers(t, cl, "re-learned worker", func(ws []WorkerInfo) bool {
		return len(ws) == 1 && ws[0].State == WorkerHealthy && ws[0].Heartbeat
	})
	// Heartbeats are periodic, so re-learning takes at most about one
	// interval; allow generous scheduling slack while still proving it was
	// the beat (not an operator) that re-registered.
	if elapsed := time.Since(start); elapsed > 20*interval {
		t.Fatalf("re-learning took %v, want about one %v interval", elapsed, interval)
	}

	// And the re-learned fleet dispatches end to end.
	st, err := cl.Submit(context.Background(), simSpec("cholesky", 500, 61, 16))
	if err != nil {
		t.Fatal(err)
	}
	fin, err := cl.Wait(context.Background(), st.ID, nil)
	if err != nil || fin.Status != StatusDone {
		t.Fatalf("post-restart job: %v %+v", err, fin)
	}
	if wsrv.Stats().Submitted != 1 {
		t.Fatalf("worker ran %d jobs, want 1", wsrv.Stats().Submitted)
	}
}

// Fleet registration endpoints sit behind the same bearer-token auth as the
// job API: joining an authenticated dispatcher requires a token, and the
// dispatcher presents its peer token when submitting to authenticated
// workers — full token plumbing end to end.
func TestFleetAuthEndToEnd(t *testing.T) {
	ops := &AuthConfig{Tenants: []TenantConfig{{Name: "ops", Token: "tok-ops"}}}
	peers := &AuthConfig{Tenants: []TenantConfig{{Name: "fleet", Token: "tok-fleet"}}}

	disp, err := New(Config{Fleet: true, Auth: ops, PeerToken: "tok-fleet"})
	if err != nil {
		t.Fatal(err)
	}
	dhs := httptest.NewServer(disp.Handler())
	t.Cleanup(func() { dhs.Close(); disp.Close() })

	wsrv, err := New(Config{Workers: 1, Auth: peers})
	if err != nil {
		t.Fatal(err)
	}
	whs := httptest.NewServer(wsrv.Handler())
	t.Cleanup(func() { whs.Close(); wsrv.Close() })

	ctx := context.Background()
	var apiErr *APIError
	if _, err := NewClient(dhs.URL).JoinWorker(ctx, whs.URL); !errors.As(err, &apiErr) || apiErr.Code != CodeUnauthorized {
		t.Fatalf("tokenless join: %v, want unauthorized", err)
	}

	cl := NewClient(dhs.URL, WithToken("tok-ops"))
	if _, err := cl.JoinWorker(ctx, whs.URL); err != nil {
		t.Fatalf("authenticated join: %v", err)
	}

	// The dispatcher authenticates to the worker with its peer token.
	st, err := cl.Submit(ctx, simSpec("cholesky", 500, 71, 16))
	if err != nil {
		t.Fatal(err)
	}
	fin, err := cl.Wait(ctx, st.ID, nil)
	if err != nil || fin.Status != StatusDone {
		t.Fatalf("fleet job through authenticated worker: %v %+v", err, fin)
	}
	if fin.Tenant != "ops" {
		t.Fatalf("job attributed to %q, want ops", fin.Tenant)
	}
}
