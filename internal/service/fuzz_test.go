package service

import (
	"encoding/json"
	"testing"

	"tasksuperscalar/internal/workloads"
	"tasksuperscalar/tss"
)

// fuzzSpec builds a sim JobSpec from raw fuzz inputs. omit's low bits mark
// fields to leave unset (nil/zero) in the "defaulted" spec; the returned
// explicit spec carries the documented default in every omitted slot and is
// otherwise identical — the pair whose keys must collide.
func fuzzSpec(wl uint8, tasks int, seed int64, rt uint8, cores, trs, ort, trskb, ortkb int, memory bool, omit uint8) (defaulted, explicit *JobSpec) {
	pos := func(v, m, min int) int {
		v %= m
		if v < 0 {
			v = -v
		}
		return v + min
	}
	all := workloads.All()
	name := all[int(wl)%len(all)].Name
	runtimes := []string{"hardware", "software", "sequential"}
	runtime := runtimes[int(rt)%len(runtimes)]
	tasks = pos(tasks, 20000, 1)
	cores = pos(cores, 512, 1)
	trs = pos(trs, 16, 1)
	ort = pos(ort, 8, 1)
	trskb = pos(trskb, 2048, 1)
	ortkb = pos(ortkb, 1024, 1)

	build := func(fillDefaults bool) *JobSpec {
		s := &SimSpec{Workload: name, Machine: MachineSpec{Memory: memory}}
		set := func(bit uint8, apply func(), def func()) {
			if omit&bit == 0 {
				apply()
			} else if fillDefaults {
				def()
			}
		}
		set(1<<0, func() { v := tasks; s.Tasks = &v }, func() { v := 3000; s.Tasks = &v })
		set(1<<1, func() { v := seed; s.Seed = &v }, func() { v := int64(42); s.Seed = &v })
		set(1<<2, func() { s.Machine.Runtime = runtime }, func() { s.Machine.Runtime = "hardware" })
		set(1<<3, func() { s.Machine.Cores = cores }, func() { s.Machine.Cores = 256 })
		set(1<<4, func() { s.Machine.TRS = trs }, func() { s.Machine.TRS = 8 })
		set(1<<5, func() { s.Machine.ORT = ort }, func() { s.Machine.ORT = 2 })
		set(1<<6, func() { s.Machine.TRSKB = trskb }, func() { s.Machine.TRSKB = 768 })
		set(1<<7, func() { s.Machine.ORTKB = ortkb }, func() { s.Machine.ORTKB = 256 })
		return &JobSpec{Kind: KindSim, Sim: s}
	}
	return build(false), build(true)
}

// roundTrip copies a spec through its JSON wire form.
func roundTrip(t *testing.T, s *JobSpec) *JobSpec {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var out JobSpec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// FuzzJobSpecKey drives the content-address contract that makes the result
// cache and cross-node coalescing sound: a spec with defaulted fields and
// the same spec with the defaults written out explicitly must hash to the
// same key; the key must survive the JSON wire round-trip and repeated
// normalization; and any change to a semantic field must change the key.
func FuzzJobSpecKey(f *testing.F) {
	f.Add(uint8(0), 3000, int64(42), uint8(0), 256, 8, 2, 768, 256, false, uint8(0))
	f.Add(uint8(0), 3000, int64(42), uint8(0), 256, 8, 2, 768, 256, false, uint8(0xff))
	f.Add(uint8(3), 800, int64(0), uint8(1), 32, 4, 1, 512, 128, true, uint8(0x55))
	f.Add(uint8(7), 1, int64(-1), uint8(2), 1, 1, 1, 1, 1, false, uint8(0x0f))
	f.Add(uint8(255), -12345, int64(1<<40), uint8(9), -7, 100, -3, 99999, 0, true, uint8(0xaa))

	f.Fuzz(func(t *testing.T, wl uint8, tasks int, seed int64, rt uint8, cores, trs, ort, trskb, ortkb int, memory bool, omit uint8) {
		defaulted, explicit := fuzzSpec(wl, tasks, seed, rt, cores, trs, ort, trskb, ortkb, memory, omit)
		if err := defaulted.Normalize(); err != nil {
			// Sanitized specs are valid by construction; the explicit
			// twin must agree about any rejection.
			if err2 := explicit.Normalize(); err2 == nil {
				t.Fatalf("defaulted spec rejected (%v) but explicit twin accepted", err)
			}
			return
		}
		if err := explicit.Normalize(); err != nil {
			t.Fatalf("explicit twin rejected: %v", err)
		}

		key := defaulted.Key()
		if len(key) != 64 {
			t.Fatalf("key %q is not a hex sha256", key)
		}
		// Defaulted and explicit-default specs share one content address.
		if ek := explicit.Key(); ek != key {
			t.Fatalf("defaulted key %s != explicit-default key %s", key, ek)
		}
		// The key survives the wire round-trip and re-normalization.
		rt2 := roundTrip(t, defaulted)
		if err := rt2.Normalize(); err != nil {
			t.Fatalf("round-tripped spec rejected: %v", err)
		}
		if rk := rt2.Key(); rk != key {
			t.Fatalf("round-tripped key %s != original %s", rk, key)
		}
		if err := defaulted.Normalize(); err != nil {
			t.Fatalf("re-normalize: %v", err)
		}
		if k2 := defaulted.Key(); k2 != key {
			t.Fatalf("key not stable across re-normalization: %s vs %s", k2, key)
		}

		// Any semantic difference must produce a different key. Each
		// mutation edits one normalized field to a value guaranteed to
		// differ from the current one.
		mutate := func(name string, edit func(*JobSpec)) {
			m := roundTrip(t, defaulted)
			edit(m)
			if mk := m.Key(); mk == key {
				t.Fatalf("mutating %s did not change the key (spec %+v machine %+v)",
					name, *m.Sim, m.Sim.Machine)
			}
		}
		mutate("seed", func(s *JobSpec) { v := *s.Sim.Seed + 1; s.Sim.Seed = &v })
		mutate("tasks", func(s *JobSpec) { v := *s.Sim.Tasks + 1; s.Sim.Tasks = &v })
		mutate("cores", func(s *JobSpec) { s.Sim.Machine.Cores++ })
		mutate("trs", func(s *JobSpec) { s.Sim.Machine.TRS++ })
		mutate("ort", func(s *JobSpec) { s.Sim.Machine.ORT++ })
		mutate("trskb", func(s *JobSpec) { s.Sim.Machine.TRSKB++ })
		mutate("ortkb", func(s *JobSpec) { s.Sim.Machine.ORTKB++ })
		// OVTKB is normalized to ORTKB when omitted, so nudge it off the
		// whole normalized pair to prove it is keyed independently.
		mutate("ovtkb", func(s *JobSpec) { s.Sim.Machine.OVTKB = s.Sim.Machine.ORTKB + 1 })
		mutate("memory", func(s *JobSpec) { s.Sim.Machine.Memory = !s.Sim.Machine.Memory })
		mutate("runtime", func(s *JobSpec) {
			if s.Sim.Machine.Runtime == "hardware" {
				s.Sim.Machine.Runtime = "software"
			} else {
				s.Sim.Machine.Runtime = "hardware"
			}
		})
		mutate("policy", func(s *JobSpec) {
			if s.Sim.Machine.Policy == "critical-path" {
				s.Sim.Machine.Policy = "spec"
			} else {
				s.Sim.Machine.Policy = "critical-path"
			}
		})
		mutate("classes", func(s *JobSpec) {
			s.Sim.Machine.Classes = []tss.WorkerClass{{Name: "fast", Count: 1, Speed: 2}}
		})
		mutate("class_speed", func(s *JobSpec) {
			s.Sim.Machine.Classes = []tss.WorkerClass{{Name: "fast", Count: 1, Speed: 4}}
		})
		mutate("workload", func(s *JobSpec) {
			all := workloads.All()
			for _, w := range all {
				if w.Name != s.Sim.Workload {
					s.Sim.Workload = w.Name
					return
				}
			}
		})
	})
}
