package service

import (
	"container/list"
	"sync"
)

// Cache is a bounded, thread-safe LRU of finished job results, keyed by the
// job's content address (JobSpec.Key). Values are the canonical result
// encodings served verbatim on a hit, which is what makes repeated identical
// submissions byte-identical to the original run. Bounds are dual: an entry
// count and a total-bytes budget; inserting past either evicts from the
// least-recently-used end.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64

	ll    *list.List // front = most recently used
	items map[string]*list.Element
	bytes int64

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns a cache bounded to maxEntries results and maxBytes total
// result bytes. Non-positive bounds fall back to defaults (1024 entries,
// 64 MiB).
func NewCache(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// Get returns the cached result for key and marks it most recently used.
// Every call counts as a hit or a miss in Stats.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores a result, evicting least-recently-used entries as needed to
// respect both bounds. A value larger than the byte budget is not cached.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int64(len(val)) > c.maxBytes {
		return
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += int64(len(val)) - int64(len(ent.val))
		ent.val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
		c.bytes += int64(len(val))
	}
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, ent.key)
		c.bytes -= int64(len(ent.val))
		c.evictions++
	}
}

// CacheStats is the cache section of the /stats endpoint.
type CacheStats struct {
	// Entries and Bytes are the current occupancy.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// MaxEntries and MaxBytes are the configured bounds.
	MaxEntries int   `json:"max_entries"`
	MaxBytes   int64 `json:"max_bytes"`
	// Hits, Misses, and Evictions count Get outcomes and LRU evictions
	// since the daemon started. These are store-level counters: sweep
	// sharding probes the cache once per point, so they run ahead of the
	// job-level CacheHits on ServerStats.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Disk reports the persistent layer (nil without -cache-dir).
	Disk *DiskStats `json:"disk,omitempty"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:    c.ll.Len(),
		Bytes:      c.bytes,
		MaxEntries: c.maxEntries,
		MaxBytes:   c.maxBytes,
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
	}
}
