package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Backoff jitter bounds: every delay lands in [d/2, 3d/2) of the unjittered
// exponential, the exponential caps at max, and the stream is a pure
// function of its seed.
func TestBackoffJitterBounds(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	a := newBackoff(base, max, 42)
	b := newBackoff(base, max, 42)
	d := base
	for i := 0; i < 20; i++ {
		got := a.next()
		if got2 := b.next(); got != got2 {
			t.Fatalf("step %d: same-seed backoffs disagree: %v vs %v", i, got, got2)
		}
		if got < d/2 || got >= d/2+d {
			t.Fatalf("step %d: delay %v outside [%v, %v)", i, got, d/2, d/2+d)
		}
		if d < max {
			d *= 2
			if d > max {
				d = max
			}
		}
	}
	// Distinct seeds should diverge somewhere in 20 draws.
	c := newBackoff(base, max, 43)
	a2 := newBackoff(base, max, 42)
	diverged := false
	for i := 0; i < 20; i++ {
		if c.next() != a2.next() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 produced identical backoff streams")
	}
	if seedFromString("worker-a") == seedFromString("worker-b") {
		t.Fatal("seedFromString collided on distinct inputs")
	}
}

// flakyWorker fronts a real worker daemon with a proxy that fails POST
// /v1/jobs while `failing` is set (everything else — health probes, SSE,
// results — passes through), which is how tests produce worker-level
// dispatch failures on demand.
type flakyWorker struct {
	srv     *Server
	hs      *httptest.Server // the real worker
	proxy   *httptest.Server // what the dispatcher sees
	failing atomic.Bool
	fails   atomic.Uint64
}

func newFlakyWorker(t *testing.T, cfg Config) *flakyWorker {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	u, _ := url.Parse(hs.URL)
	rp := httputil.NewSingleHostReverseProxy(u)
	fw := &flakyWorker{srv: srv, hs: hs}
	fw.proxy = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fw.failing.Load() && r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
			fw.fails.Add(1)
			http.Error(w, "injected worker failure", http.StatusBadGateway)
			return
		}
		rp.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { fw.proxy.Close(); hs.Close(); srv.Close() })
	return fw
}

// The retry accounting bar: a worker that fails twice and then recovers
// costs exactly two budget units, the job still succeeds, and the
// conservation identity sum(worker.Failures) == Retries + Exhausted holds.
func TestFleetRetryAccountingConserved(t *testing.T) {
	disp, err := New(Config{
		Fleet: true, DispatchRetries: 5,
		RetryBackoff: time.Millisecond, RetryBackoffMax: 5 * time.Millisecond,
		BreakerThreshold: 10, // keep the breaker out of this test
	})
	if err != nil {
		t.Fatal(err)
	}
	dhs := httptest.NewServer(disp.Handler())
	t.Cleanup(func() { dhs.Close(); disp.Close() })
	cl := NewClient(dhs.URL)
	ctx := context.Background()

	fw := newFlakyWorker(t, Config{Workers: 2})
	if _, err := cl.JoinWorker(ctx, fw.proxy.URL); err != nil {
		t.Fatal(err)
	}

	fw.failing.Store(true)
	go func() {
		// Recover the worker after it has eaten two submissions.
		for fw.fails.Load() < 2 {
			time.Sleep(time.Millisecond)
		}
		fw.failing.Store(false)
	}()

	st, err := cl.Submit(ctx, quickSpec(51))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitFor(t, cl, st.ID, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
	if fin.Status != StatusDone {
		t.Fatalf("job through flaky worker ended %s: %s", fin.Status, fin.Error)
	}

	fs := disp.Stats().Fleet
	if fs.Retries != 2 || fs.Exhausted != 0 {
		t.Fatalf("retries=%d exhausted=%d, want 2/0", fs.Retries, fs.Exhausted)
	}
	var failures uint64
	for _, w := range fs.Workers {
		failures += w.Failures
	}
	if failures != fs.Retries+fs.Exhausted {
		t.Fatalf("conservation: worker failures %d != retries %d + exhausted %d",
			failures, fs.Retries, fs.Exhausted)
	}
	// The recovery closed the breaker and returned the worker to healthy.
	if w := fs.Workers[0]; w.Breaker != BreakerClosed || w.State != WorkerHealthy {
		t.Fatalf("recovered worker: breaker=%s state=%s", w.Breaker, w.State)
	}
}

// A worker that never recovers: the job fails once the budget is spent, with
// Exhausted counting it and the conservation identity intact.
func TestFleetRetryBudgetExhausted(t *testing.T) {
	disp, err := New(Config{
		Fleet: true, DispatchRetries: 3,
		RetryBackoff: time.Millisecond, RetryBackoffMax: 5 * time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: 2 * time.Millisecond,
		NoWorkerWait: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dhs := httptest.NewServer(disp.Handler())
	t.Cleanup(func() { dhs.Close(); disp.Close() })
	cl := NewClient(dhs.URL)
	ctx := context.Background()

	fw := newFlakyWorker(t, Config{Workers: 1})
	if _, err := cl.JoinWorker(ctx, fw.proxy.URL); err != nil {
		t.Fatal(err)
	}
	fw.failing.Store(true)

	st, err := cl.Submit(ctx, quickSpec(52))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitFor(t, cl, st.ID, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
	if fin.Status != StatusFailed || !strings.Contains(fin.Error, "retry budget exhausted") {
		t.Fatalf("exhausted job: status=%s error=%q", fin.Status, fin.Error)
	}

	fs := disp.Stats().Fleet
	if fs.Exhausted != 1 || fs.Retries != 3 {
		t.Fatalf("retries=%d exhausted=%d, want 3/1", fs.Retries, fs.Exhausted)
	}
	var failures uint64
	for _, w := range fs.Workers {
		failures += w.Failures
	}
	if failures != fs.Retries+fs.Exhausted {
		t.Fatalf("conservation: worker failures %d != retries+exhausted %d",
			failures, fs.Retries+fs.Exhausted)
	}
	if w := fs.Workers[0]; w.BreakerTrips == 0 {
		t.Fatalf("persistently failing worker never tripped its breaker: %+v", w)
	}
}

// The breaker lifecycle: consecutive failures trip the worker out of the
// rotation, and after the cooldown a half-open probe job whose success
// closes the breaker returns it — no operator action, no re-registration.
func TestBreakerHalfOpenRevival(t *testing.T) {
	disp, err := New(Config{
		Fleet: true, DispatchRetries: 1,
		RetryBackoff: time.Millisecond, RetryBackoffMax: 5 * time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: 10 * time.Millisecond,
		NoWorkerWait: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dhs := httptest.NewServer(disp.Handler())
	t.Cleanup(func() { dhs.Close(); disp.Close() })
	cl := NewClient(dhs.URL)
	ctx := context.Background()

	fw := newFlakyWorker(t, Config{Workers: 2})
	if _, err := cl.JoinWorker(ctx, fw.proxy.URL); err != nil {
		t.Fatal(err)
	}

	// Job 1 burns its budget (2 failures ≥ threshold): the breaker trips.
	fw.failing.Store(true)
	st, err := cl.Submit(ctx, quickSpec(53))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, cl, st.ID, func(s *SubmitStatus) bool { return s.Status == StatusFailed }, "failed")
	if w := disp.Stats().Fleet.Workers[0]; w.Breaker != BreakerTripped {
		t.Fatalf("after consecutive failures: breaker=%s, want tripped", w.Breaker)
	}

	// Worker recovers; after the cooldown the next job is the half-open
	// probe, succeeds, and closes the breaker.
	fw.failing.Store(false)
	time.Sleep(20 * time.Millisecond)
	st2, err := cl.Submit(ctx, quickSpec(54))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitFor(t, cl, st2.ID, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
	if fin.Status != StatusDone {
		t.Fatalf("probe job ended %s: %s", fin.Status, fin.Error)
	}
	if w := disp.Stats().Fleet.Workers[0]; w.Breaker != BreakerClosed || w.BreakerTrips == 0 {
		t.Fatalf("revived worker: breaker=%s trips=%d, want closed/≥1", w.Breaker, w.BreakerTrips)
	}
}

// Per-job deadlines: a job that runs past Config.JobTimeout fails with a
// deadline error instead of wedging a worker forever.
func TestJobDeadline(t *testing.T) {
	srv, err := New(Config{Workers: 1, JobTimeout: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	cl := NewClient(hs.URL)
	ctx := context.Background()

	st, err := cl.Submit(ctx, simSpec("cholesky", 20000, 7, 64))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitFor(t, cl, st.ID, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
	if fin.Status != StatusFailed || !strings.Contains(fin.Error, "deadline") {
		t.Fatalf("overrunning job: status=%s error=%q, want failed with deadline", fin.Status, fin.Error)
	}
}

// Graceful degradation: a dispatcher with zero workers holds the job in the
// dispatch wait instead of failing it, and a worker joining within
// NoWorkerWait picks it up.
func TestFleetNoWorkerWaitDegradation(t *testing.T) {
	disp, err := New(Config{
		Fleet: true, NoWorkerWait: 10 * time.Second,
		RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	dhs := httptest.NewServer(disp.Handler())
	t.Cleanup(func() { dhs.Close(); disp.Close() })
	cl := NewClient(dhs.URL)
	ctx := context.Background()

	st, err := cl.Submit(ctx, quickSpec(55))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if s, err := cl.Job(ctx, st.ID); err != nil || terminalStatus(s.Status) {
		t.Fatalf("job settled (%v, %v) with no workers instead of waiting", s, err)
	}

	wsrv, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	whs := httptest.NewServer(wsrv.Handler())
	t.Cleanup(func() { whs.Close(); wsrv.Close() })
	if _, err := cl.JoinWorker(ctx, whs.URL); err != nil {
		t.Fatal(err)
	}

	fin := waitFor(t, cl, st.ID, func(s *SubmitStatus) bool { return terminalStatus(s.Status) }, "terminal")
	if fin.Status != StatusDone {
		t.Fatalf("held job ended %s: %s", fin.Status, fin.Error)
	}
	if fs := disp.Stats().Fleet; fs.Starved == 0 {
		t.Fatalf("starvation wait not counted: %+v", fs)
	}
}

// JoinFleet's registration backoff: jitter stays within the ±50% envelope of
// the 1s→30s exponential, is deterministic per advertise URL, distinct
// across URLs, and the loop aborts promptly on context cancellation.
func TestJoinFleetBackoff(t *testing.T) {
	boA := newBackoff(time.Second, 30*time.Second, seedFromString("http://w-a:1"))
	boB := newBackoff(time.Second, 30*time.Second, seedFromString("http://w-b:1"))
	d := time.Second
	diverged := false
	for i := 0; i < 10; i++ {
		da, db := boA.next(), boB.next()
		if da < d/2 || da >= d/2+d {
			t.Fatalf("step %d: join delay %v outside [%v, %v)", i, da, d/2, d/2+d)
		}
		if da != db {
			diverged = true
		}
		if d < 30*time.Second {
			d *= 2
			if d > 30*time.Second {
				d = 30 * time.Second
			}
		}
	}
	if !diverged {
		t.Fatal("two workers drew identical join backoff streams (thundering herd)")
	}

	// Cancellation aborts a join loop stuck on an unreachable dispatcher.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := JoinFleet(ctx, "http://127.0.0.1:1", "http://127.0.0.1:2")
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled JoinFleet reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("JoinFleet did not abort on context cancellation")
	}
}

// Client-side retry: a retryable envelope (503 queue-full) is retried until
// the daemon recovers; a terminal envelope fails on the first attempt.
func TestClientWithRetry(t *testing.T) {
	var calls atomic.Int64
	mock := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeError(w, http.StatusServiceUnavailable, CodeQueueFull, "job queue full")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(SubmitStatus{ID: "job-1", Status: StatusQueued})
	}))
	defer mock.Close()

	cl := NewClient(mock.URL, WithRetry(RetryPolicy{Attempts: 5, Base: time.Millisecond, Max: 5 * time.Millisecond}))
	st, err := cl.Submit(context.Background(), quickSpec(56))
	if err != nil {
		t.Fatalf("retryable 503 not ridden out: %v", err)
	}
	if st.ID != "job-1" || calls.Load() != 3 {
		t.Fatalf("id=%s calls=%d, want job-1 after 3 calls", st.ID, calls.Load())
	}

	// Terminal rejection: exactly one attempt, no retries.
	var badCalls atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		badCalls.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid job")
	}))
	defer bad.Close()
	cl2 := NewClient(bad.URL, WithRetry(RetryPolicy{Attempts: 5, Base: time.Millisecond}))
	if _, err := cl2.Submit(context.Background(), quickSpec(57)); err == nil {
		t.Fatal("bad request succeeded")
	}
	if badCalls.Load() != 1 {
		t.Fatalf("terminal error retried: %d calls", badCalls.Load())
	}
}

// cutOnceTransport severs the body of the first event-stream response after
// a few bytes — the mid-flight failure Wait must reconnect through.
type cutOnceTransport struct {
	cut atomic.Bool
}

func (t *cutOnceTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if strings.HasSuffix(req.URL.Path, "/events") && t.cut.CompareAndSwap(false, true) {
		resp.Body = &cutAfter{rc: resp.Body, left: 10}
	}
	return resp, nil
}

type cutAfter struct {
	rc   io.ReadCloser
	left int
}

func (b *cutAfter) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.left {
		p = p[:b.left]
	}
	n, err := b.rc.Read(p)
	b.left -= n
	return n, err
}

func (b *cutAfter) Close() error { return b.rc.Close() }

// Wait under a retry policy survives a severed SSE stream: it reconnects
// (or finds the job already settled) instead of surfacing the read error.
func TestWaitReconnectsAfterStreamCut(t *testing.T) {
	srv, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })

	cl := NewClient(hs.URL,
		WithHTTPClient(&http.Client{Transport: &cutOnceTransport{}}),
		WithRetry(RetryPolicy{Attempts: 5, Base: time.Millisecond, Max: 10 * time.Millisecond}))
	ctx := context.Background()
	st, err := cl.Submit(ctx, quickSpec(58))
	if err != nil {
		t.Fatal(err)
	}
	fin, err := cl.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatalf("Wait did not survive the stream cut: %v", err)
	}
	if fin.Status != StatusDone {
		t.Fatalf("job ended %s: %s", fin.Status, fin.Error)
	}

	// Without a retry policy the same cut is fatal — the old behaviour.
	cl2 := NewClient(hs.URL, WithHTTPClient(&http.Client{Transport: &cutOnceTransport{}}))
	st2, err := cl2.Submit(ctx, quickSpec(59))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.Wait(ctx, st2.ID, nil); err == nil {
		t.Fatal("single-shot Wait rode through a cut stream")
	}
}
