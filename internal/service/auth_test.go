package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Auth config files are validated on load: every rejection names the problem.
func TestLoadAuthFileValidation(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o600); err != nil {
			t.Fatal(err)
		}
		return p
	}

	good, err := LoadAuthFile(write("good.json",
		`{"tenants": [
		   {"name": "alice", "token": "s3cret", "weight": 3, "max_inflight": 8, "rate_per_sec": 50},
		   {"name": "bob", "token": "hunter2"}
		 ]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(good.Tenants) != 2 || good.Tenants[0].Weight != 3 {
		t.Fatalf("bad parse: %+v", good)
	}

	bad := []struct{ name, body, want string }{
		{"empty.json", `{"tenants": []}`, "no tenants"},
		{"noname.json", `{"tenants": [{"token": "x"}]}`, "no name"},
		{"notoken.json", `{"tenants": [{"name": "a"}]}`, "no token"},
		{"dupname.json", `{"tenants": [{"name": "a", "token": "x"}, {"name": "a", "token": "y"}]}`, "duplicate"},
		{"duptoken.json", `{"tenants": [{"name": "a", "token": "x"}, {"name": "b", "token": "x"}]}`, "token"},
		{"negweight.json", `{"tenants": [{"name": "a", "token": "x", "weight": -1}]}`, "weight"},
		{"neglimit.json", `{"tenants": [{"name": "a", "token": "x", "max_inflight": -2}]}`, "limit"},
		{"unknownfield.json", `{"tenants": [{"name": "a", "token": "x", "color": "red"}]}`, "color"},
	}
	for _, tc := range bad {
		if _, err := LoadAuthFile(write(tc.name, tc.body)); err == nil {
			t.Errorf("%s: accepted, want error mentioning %q", tc.name, tc.want)
		}
	}
	if _, err := LoadAuthFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// An authenticated daemon rejects requests without a known bearer token on
// every /v1 endpoint with the unified unauthorized envelope, while /stats and
// /healthz stay open; a valid token resolves to its tenant.
func TestAuthRequired(t *testing.T) {
	auth := &AuthConfig{Tenants: []TenantConfig{{Name: "alice", Token: "s3cret"}}}
	_, anon := startDaemon(t, Config{Workers: 1, Auth: auth})
	ctx := context.Background()

	checkUnauthorized := func(err error) {
		t.Helper()
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("got %v, want *APIError", err)
		}
		if apiErr.Status != http.StatusUnauthorized || apiErr.Code != CodeUnauthorized || apiErr.Retryable {
			t.Fatalf("got status=%d code=%q retryable=%v, want 401 unauthorized non-retryable",
				apiErr.Status, apiErr.Code, apiErr.Retryable)
		}
	}
	_, err := anon.Submit(ctx, simSpec("cholesky", 500, 1, 16))
	checkUnauthorized(err)
	_, err = anon.Jobs(ctx, JobFilter{})
	checkUnauthorized(err)
	_, err = NewClient(anon.Base(), WithToken("wrong")).Jobs(ctx, JobFilter{})
	checkUnauthorized(err)

	// The envelope itself, at the wire level.
	resp, err := http.Get(anon.Base() + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var env errorBody
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("unauthorized response is not the unified envelope: %v", err)
	}
	resp.Body.Close()
	if env.Error.Code != CodeUnauthorized || env.Error.Message == "" || env.Error.Retryable {
		t.Fatalf("envelope %+v, want code=unauthorized with a message", env.Error)
	}

	// /stats and /healthz need no identity.
	if _, err := anon.Stats(ctx); err != nil {
		t.Fatalf("/stats requires auth: %v", err)
	}
	resp, err = http.Get(anon.Base() + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("/healthz requires auth: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	// The real token works, and the job is attributed to the tenant.
	alice := NewClient(anon.Base(), WithToken("s3cret"))
	st, err := alice.Submit(ctx, simSpec("cholesky", 500, 1, 16))
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "alice" {
		t.Fatalf("job attributed to %q, want alice", st.Tenant)
	}
	if _, err := alice.Wait(ctx, st.ID, nil); err != nil {
		t.Fatal(err)
	}
}

// The in-flight quota counts queued+running primary jobs only: a tenant at
// its quota is rejected with quota_exceeded, but coalesced submissions and
// cache hits — which occupy no worker — are always admitted, and settling a
// job frees its slot.
func TestQuotaMaxInflight(t *testing.T) {
	auth := &AuthConfig{Tenants: []TenantConfig{{Name: "alice", Token: "s3cret", MaxInflight: 1}}}
	_, base := startDaemon(t, Config{Workers: 1, Auth: auth})
	cl := NewClient(base.Base(), WithToken("s3cret"))
	ctx := context.Background()

	// The occupying job must still be in flight through the next two
	// submissions even on a loaded host, so it is sized for ~1s of work.
	slow := simSpec("cholesky", 60000, 11, 16)
	st1, err := cl.Submit(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}

	// A second distinct job busts the quota — deterministically, because the
	// first is still queued or running on the single worker.
	var apiErr *APIError
	_, err = cl.Submit(ctx, simSpec("cholesky", 500, 12, 16))
	if !errors.As(err, &apiErr) || apiErr.Code != CodeQuotaExceeded {
		t.Fatalf("over-quota submit: got %v, want quota_exceeded", err)
	}
	if apiErr.Status != http.StatusTooManyRequests || !apiErr.Retryable {
		t.Fatalf("quota rejection status=%d retryable=%v, want 429 retryable", apiErr.Status, apiErr.Retryable)
	}

	// An identical submission coalesces — no new worker slot, no quota.
	st2, err := cl.Submit(ctx, simSpec("cholesky", 60000, 11, 16))
	if err != nil {
		t.Fatalf("coalesced submission charged against quota: %v", err)
	}
	if !st2.Coalesced {
		t.Fatalf("identical in-flight submission not coalesced: %+v", st2)
	}

	// Settling releases the slot; a cache hit never consumes one.
	if _, err := cl.Wait(ctx, st1.ID, nil); err != nil {
		t.Fatal(err)
	}
	st3, err := cl.Submit(ctx, simSpec("cholesky", 60000, 11, 16))
	if err != nil || !st3.Cached {
		t.Fatalf("post-settle cache hit: %v %+v", err, st3)
	}
	if _, err := cl.Submit(ctx, simSpec("cholesky", 500, 12, 16)); err != nil {
		t.Fatalf("slot not released at settle: %v", err)
	}

	// The rejections are visible in /stats.
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Tenants) != 1 || stats.Tenants[0].RejectedQuota != 1 {
		t.Fatalf("tenant stats %+v, want rejected_quota=1", stats.Tenants)
	}
}

// The submission rate limit is a token bucket: burst admits back-to-back
// submissions, the next is rejected with rate_limited.
func TestRateLimit(t *testing.T) {
	auth := &AuthConfig{Tenants: []TenantConfig{{Name: "alice", Token: "s3cret", RatePerSec: 0.001, Burst: 2}}}
	_, base := startDaemon(t, Config{Workers: 1, Auth: auth})
	cl := NewClient(base.Base(), WithToken("s3cret"))
	ctx := context.Background()

	for i := int64(0); i < 2; i++ {
		if _, err := cl.Submit(ctx, simSpec("cholesky", 500, 100+i, 16)); err != nil {
			t.Fatalf("submission %d inside burst rejected: %v", i, err)
		}
	}
	var apiErr *APIError
	_, err := cl.Submit(ctx, simSpec("cholesky", 500, 300, 16))
	if !errors.As(err, &apiErr) || apiErr.Code != CodeRateLimited {
		t.Fatalf("over-rate submit: got %v, want rate_limited", err)
	}
	if apiErr.Status != http.StatusTooManyRequests || !apiErr.Retryable {
		t.Fatalf("rate rejection status=%d retryable=%v, want 429 retryable", apiErr.Status, apiErr.Retryable)
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tenants[0].RejectedRate != 1 {
		t.Fatalf("tenant stats %+v, want rejected_rate=1", stats.Tenants[0])
	}
}

// GET /v1/jobs: status and tenant filters plus deterministic cursor
// pagination — pages resume strictly after the cursor, never skipping or
// repeating a job.
func TestJobListFilterAndPagination(t *testing.T) {
	_, cl := startDaemon(t, Config{Workers: 2})
	ctx := context.Background()

	var ids []string
	for i := int64(0); i < 5; i++ {
		st, err := cl.Submit(ctx, simSpec("cholesky", 500, 400+i, 16))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if _, err := cl.Wait(ctx, id, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Walk in pages of 2: the union is every job, in submission order.
	var walked []string
	filter := JobFilter{Limit: 2}
	for {
		page, err := cl.Jobs(ctx, filter)
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Jobs) > 2 {
			t.Fatalf("page of %d jobs, limit 2", len(page.Jobs))
		}
		for _, j := range page.Jobs {
			walked = append(walked, j.ID)
			if j.Result != nil {
				t.Fatal("listing carried a result payload")
			}
		}
		if page.NextAfter == "" {
			break
		}
		filter.After = page.NextAfter
	}
	if len(walked) != len(ids) {
		t.Fatalf("walked %d jobs, want %d", len(walked), len(ids))
	}
	for i := range ids {
		if walked[i] != ids[i] {
			t.Fatalf("page walk out of order at %d: %s, want %s", i, walked[i], ids[i])
		}
	}

	// Filters: all five are done; none are running; the default tenant owns
	// them all; an unknown tenant owns none.
	done, err := cl.Jobs(ctx, JobFilter{Status: StatusDone})
	if err != nil || len(done.Jobs) != 5 {
		t.Fatalf("status=done: %v, %d jobs", err, len(done.Jobs))
	}
	running, err := cl.Jobs(ctx, JobFilter{Status: StatusRunning})
	if err != nil || len(running.Jobs) != 0 {
		t.Fatalf("status=running: %v, %d jobs", err, len(running.Jobs))
	}
	mine, err := cl.Jobs(ctx, JobFilter{Tenant: DefaultTenant})
	if err != nil || len(mine.Jobs) != 5 {
		t.Fatalf("tenant=default: %v, %d jobs", err, len(mine.Jobs))
	}
	none, err := cl.Jobs(ctx, JobFilter{Tenant: "nobody"})
	if err != nil || len(none.Jobs) != 0 {
		t.Fatalf("tenant=nobody: %v, %d jobs", err, len(none.Jobs))
	}

	// Bad parameters are unified bad_request envelopes.
	var apiErr *APIError
	if _, err := cl.Jobs(ctx, JobFilter{Status: "bogus"}); !errors.As(err, &apiErr) || apiErr.Code != CodeBadRequest {
		t.Fatalf("bogus status filter: %v", err)
	}
	if _, err := cl.Jobs(ctx, JobFilter{After: "not-a-job"}); !errors.As(err, &apiErr) || apiErr.Code != CodeBadRequest {
		t.Fatalf("bogus cursor: %v", err)
	}
}

// Unified envelope end to end: typed codes for the not-found and not-ready
// families, decodable via errors.As on every client method.
func TestErrorEnvelopeCodes(t *testing.T) {
	_, cl := startDaemon(t, Config{Workers: 1})
	ctx := context.Background()

	var apiErr *APIError
	if _, err := cl.Job(ctx, "job-999"); !errors.As(err, &apiErr) || apiErr.Code != CodeNotFound {
		t.Fatalf("missing job: %v, want not_found", err)
	}
	if apiErr.Status != http.StatusNotFound || apiErr.Retryable {
		t.Fatalf("not_found status=%d retryable=%v", apiErr.Status, apiErr.Retryable)
	}
	if _, err := cl.Result(ctx, "job-999"); !errors.As(err, &apiErr) || apiErr.Code != CodeNotFound {
		t.Fatalf("missing result: %v, want not_found", err)
	}

	// A result requested before the job settles is not_ready (retryable).
	st, err := cl.Submit(ctx, simSpec("cholesky", 6000, 21, 16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Result(ctx, st.ID); !errors.As(err, &apiErr) || apiErr.Code != CodeNotReady || !apiErr.Retryable {
		t.Fatalf("early result fetch: %v, want retryable not_ready", err)
	}
	if _, err := cl.Wait(ctx, st.ID, nil); err != nil {
		t.Fatal(err)
	}

	// A cancelled job's result is job_cancelled, and the legacy "cancelled"
	// wording survives in the message for humans.
	st2, err := cl.Submit(ctx, simSpec("cholesky", 6000, 22, 16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Cancel(ctx, st2.ID); err != nil {
		t.Fatal(err)
	}
	waitForTerminal(t, cl, st2.ID)
	if _, err := cl.Result(ctx, st2.ID); !errors.As(err, &apiErr) || apiErr.Code != CodeJobCancelled {
		t.Fatalf("cancelled result fetch: %v, want job_cancelled", err)
	}
}

// waitForTerminal polls until the job settles.
func waitForTerminal(t *testing.T, cl *Client, id string) {
	t.Helper()
	for {
		st, err := cl.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if terminalStatus(st.Status) {
			return
		}
		time.Sleep(time.Millisecond)
	}
}
