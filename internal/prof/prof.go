// Package prof wires the standard pprof profilers into the CLIs, so
// hot-path work starts from a profile instead of a guess (tssim and
// tsbench expose it as -cpuprofile / -memprofile).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (if cpuPath is non-empty) and returns a stop
// function that finishes the CPU profile and writes a heap profile (if
// memPath is non-empty). The stop function must run before the process
// exits normally; paths that os.Exit early lose the profile, like any
// pprof user. Errors are fatal: a requested profile that cannot be
// written should fail loudly, not silently produce nothing.
func Start(cpuPath, memPath string) (stop func()) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			os.Exit(1)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				os.Exit(1)
			}
			runtime.GC() // materialize the final live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
	}
}
