// Package benchsuite holds the simulation-substrate benchmark bodies that
// are shared between the `go test -bench` suite and `tsbench -benchjson`.
// Both consumers measure exactly this code, so the perf trajectory
// committed in BENCH_engine.json cannot drift from what the benchmark
// suite runs.
package benchsuite

import (
	"runtime"
	"testing"
	"time"

	"tasksuperscalar/internal/sim"
	"tasksuperscalar/internal/workloads"
	"tasksuperscalar/tss"
)

// ReportPerTask attaches host-time efficiency metrics — ns of wall clock
// and heap allocations per simulated task — to a run-loop benchmark. These
// are the numbers BENCH_engine.json tracks across PRs.
func ReportPerTask(b *testing.B, tasks int, run func()) {
	b.Helper()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	total := float64(tasks) * float64(b.N)
	b.ReportMetric(float64(tasks), "tasks/op")
	b.ReportMetric(float64(elapsed.Nanoseconds())/total, "ns/task")
	b.ReportMetric(float64(after.Mallocs-before.Mallocs)/total, "allocs/task")
}

// EngineScheduleFire measures raw event throughput on the near-horizon
// path that dominates simulation (delays within the calendar window).
func EngineScheduleFire(b *testing.B) {
	e := sim.NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(sim.Cycle(i%64), fn)
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// EngineSchedulePop interleaves one schedule with one pop — the engine's
// steady-state rhythm, with no queue growth.
func EngineSchedulePop(b *testing.B) {
	e := sim.NewEngine()
	fn := func() {}
	e.Schedule(1, fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(sim.Cycle(1+i%37), fn)
		e.Step()
	}
	e.Run()
}

// EngineMixedHorizons stresses the split between calendar buckets and the
// far heap: most events land near the clock, a steady minority at
// task-runtime horizons far beyond the bucket window.
func EngineMixedHorizons(b *testing.B) {
	e := sim.NewEngine()
	fn := func() {}
	delays := [8]sim.Cycle{0, 16, 22, 100, 640, 4095, 96_000, 250_000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(delays[i%len(delays)], fn)
		if i%512 == 511 {
			e.Run()
		}
	}
	e.Run()
}

// EngineChurn1M keeps one million events in flight and measures
// schedule/pop throughput against that standing population.
func EngineChurn1M(b *testing.B) {
	const standing = 1 << 20
	e := sim.NewEngine()
	fn := func() {}
	for i := 0; i < standing; i++ {
		// Spread the standing population across near and far horizons.
		e.Schedule(sim.Cycle(1+(i%200_000)), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(sim.Cycle(1+i%1024), fn)
		e.Step()
	}
	b.StopTimer()
	e.Run()
}

// ServerPipeline measures serial-server message processing (the
// module-controller hot path).
func ServerPipeline(b *testing.B) {
	e := sim.NewEngine()
	srv := sim.NewServer(e, "bench", func(int) sim.Cycle { return 16 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Submit(i)
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
	if srv.Served() != uint64(b.N) {
		b.Fatalf("served %d of %d", srv.Served(), b.N)
	}
}

// FrontendDecode measures raw frontend decode throughput on the reference
// workload (cycles of simulated work per simulated task are reported by
// Fig12/13; this reports host ns and allocations per simulated task).
func FrontendDecode(b *testing.B) {
	build := workloads.Cholesky(2000, 42)
	cfg := tss.DefaultConfig().WithCores(256)
	cfg.Memory = false
	b.ReportAllocs()
	ReportPerTask(b, len(build.Tasks), func() {
		if _, err := tss.RunTasks(build.Tasks, cfg); err != nil {
			b.Fatal(err)
		}
	})
}

// FrontendDecodeCriticalPath is FrontendDecode under the critical-path
// dispatch policy: the same workload and machine, but every ready task flows
// through the depth-bucketed priority queue (plus the one-time dependence-
// graph depth precompute). Tracks the host-time cost of the policy
// laboratory's most queue-intensive built-in against the FIFO baseline.
func FrontendDecodeCriticalPath(b *testing.B) {
	build := workloads.Cholesky(2000, 42)
	cfg := tss.DefaultConfig().WithCores(256)
	cfg.Memory = false
	cfg.Policy = tss.PolicyCriticalPath
	b.ReportAllocs()
	ReportPerTask(b, len(build.Tasks), func() {
		if _, err := tss.RunTasks(build.Tasks, cfg); err != nil {
			b.Fatal(err)
		}
	})
}

// FrontendDecodeSharded is FrontendDecode on the sharded engine (4 shards):
// the parallel trajectory tracked alongside the serial one in
// BENCH_engine.json. Results are bit-identical to FrontendDecode's run; the
// metric is purely host-time, and on hosts with few CPUs the barrier
// overhead dominates any queue-work overlap.
func FrontendDecodeSharded(b *testing.B) {
	build := workloads.Cholesky(2000, 42)
	cfg := tss.DefaultConfig().WithCores(256)
	cfg.Memory = false
	cfg.Shards = 4
	b.ReportAllocs()
	ReportPerTask(b, len(build.Tasks), func() {
		if _, err := tss.RunTasks(build.Tasks, cfg); err != nil {
			b.Fatal(err)
		}
	})
}
