package core

import (
	"tasksuperscalar/internal/sim"
	"tasksuperscalar/internal/taskmodel"
)

// ortEntry maps one memory object to its most recent user and its latest
// version (the renaming-table row).
type ortEntry struct {
	valid bool
	base  uint64
	size  uint32

	lastUser    OperandID
	lastUserGen uint32

	latestVer VersionID
	uses      int // uses granted for latestVer (release handshake)
}

// ortModule is one object renaming table: a 16-way logical cache of memory
// objects mapped onto an eDRAM block. Tags for each set live in two 64 B
// blocks that are read sequentially (§IV.B.3). ORTs never evict: a full set
// stalls the gateway until an entry is released.
type ortModule struct {
	fe    *Frontend
	index int
	node  int
	srv   *sim.Server[any]

	// entries holds every way of every set in one contiguous array (set s
	// occupies entries[s*ortWays : (s+1)*ortWays]), preallocated from the
	// configured table capacity — the fixed set-associative eDRAM block of
	// §IV.B.3.
	entries []ortEntry
	nsets   int
	setMask int                      // nsets-1 when nsets is a power of 2, else -1
	waiting []sim.FIFO[ortDecodeMsg] // stashed decodes per full set
	nwait   int                      // total stashed operands
	verSeq  uint32                   // version number allocator for the paired OVT

	// Stats.
	lookups, hits, inserts, releases uint64
	stallEvents                      uint64
	occupied                         int
	maxOccupied                      int
}

func newORT(fe *Frontend, index int) *ortModule {
	entries := int(fe.cfg.ORTBytesEach / ortEntryBytes)
	nsets := entries / ortWays
	if nsets < 1 {
		nsets = 1
	}
	o := &ortModule{fe: fe, index: index, nsets: nsets}
	o.setMask = -1
	if nsets&(nsets-1) == 0 {
		o.setMask = nsets - 1 // power-of-2 set count: mask instead of mod
	}
	o.entries = make([]ortEntry, nsets*ortWays)
	o.waiting = make([]sim.FIFO[ortDecodeMsg], nsets)
	o.srv = sim.NewServer[any](fe.eng, "ort", o.handle)
	o.srv.SetShardKey(1 + uint32(fe.cfg.NumTRS) + uint32(index))
	return o
}

// set returns the ways of one set.
func (o *ortModule) set(s int) []ortEntry {
	return o.entries[s*ortWays : (s+1)*ortWays]
}

func (o *ortModule) handle(m any) sim.Cycle {
	switch msg := m.(type) {
	case *ortDecodeMsg:
		v := *msg
		o.fe.pools.decode.put(msg)
		return o.handleDecode(v, false)
	case *ortReleaseMsg:
		v := *msg
		o.fe.pools.ortRelease.put(msg)
		return o.handleRelease(v)
	default:
		panic("ort: unknown message")
	}
}

func (o *ortModule) setFor(base uint64) int {
	h := base >> 6
	h ^= h >> 17
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	if o.setMask >= 0 {
		return int(h & uint64(o.setMask)) // identical to % for power-of-2 nsets
	}
	return int(h % uint64(o.nsets))
}

// lookupCost is the tag access: two 64 B blocks read sequentially.
func (o *ortModule) lookupCost() sim.Cycle { return 2 * o.fe.cfg.EDRAMCycles }

func (o *ortModule) find(set int, base uint64) *ortEntry {
	ways := o.set(set)
	for i := range ways {
		e := &ways[i]
		if e.valid && e.base == base {
			return e
		}
	}
	return nil
}

func (o *ortModule) freeWay(set int) *ortEntry {
	ways := o.set(set)
	for i := range ways {
		if !ways[i].valid {
			return &ways[i]
		}
	}
	return nil
}

func (o *ortModule) newVersion() VersionID {
	o.verSeq++
	return VersionID{OVT: uint16(o.index), Num: o.verSeq}
}

// handleDecode performs the renaming-table lookup for one operand and
// drives the flows of Figures 7 (output), 8 (input) and 9 (inout).
func (o *ortModule) handleDecode(m ortDecodeMsg, replay bool) sim.Cycle {
	cost := o.fe.cfg.ProcCycles + o.lookupCost()
	set := o.setFor(m.base)
	if !replay && o.waiting[set].Len() > 0 {
		// Preserve per-object decode order behind stashed operands.
		o.waiting[set].Push(m)
		o.nwait++
		return cost
	}
	o.lookups++
	e := o.find(set, m.base)
	if e == nil {
		w := o.freeWay(set)
		if w == nil {
			// Set full: hold the operand until an entry is released.
			// The gateway is stalled only when the stash outgrows its
			// credit limit (per-object order is kept by the per-set
			// FIFO stash).
			o.waiting[set].Push(m)
			o.nwait++
			o.stallEvents++
			if o.nwait > o.fe.cfg.ORTStashLimit {
				o.fe.setStall(stallSrcORT(o.index), true)
			}
			return cost
		}
		return cost + o.decodeMiss(m, w)
	}
	o.hits++
	return cost + o.decodeHit(m, e)
}

// decodeMiss services an operand whose object has no live entry: the data
// (if read) lives at its home address in memory.
func (o *ortModule) decodeMiss(m ortDecodeMsg, w *ortEntry) sim.Cycle {
	v := o.newVersion()
	*w = ortEntry{
		valid:       true,
		base:        m.base,
		size:        m.size,
		lastUser:    m.op,
		lastUserGen: o.fe.trsGen(m.op.Task),
		latestVer:   v,
		uses:        1,
	}
	o.inserts++
	o.occupied++
	if o.occupied > o.maxOccupied {
		o.maxOccupied = o.occupied
	}
	info := o.fe.pools.opInfo.get()
	*info = trsOperandInfoMsg{
		op: m.op, base: m.base, size: m.size, dir: m.dir, version: v,
	}
	nv := o.fe.pools.newVersion.get()
	*nv = ovtNewVersionMsg{v: v, base: m.base, size: m.size, initialUse: 1}
	switch m.dir {
	case taskmodel.In:
		// Data is in memory; the operand is immediately ready.
		info.immediateReady = 1
		info.readyBuf = m.base
	case taskmodel.InOut:
		// No previous version: input data is in memory; the OVT grants
		// the (in-place) output buffer.
		info.immediateReady = 1
		info.readyBuf = m.base
		nv.hasProducer = true
		nv.producer = m.op
		nv.inPlace = true
	case taskmodel.Out:
		// No previous version to protect: write in place. The OVT sends
		// the output-buffer grant.
		nv.hasProducer = true
		nv.producer = m.op
		nv.inPlace = true
	}
	o.fe.sendToTRS(o.node, int(m.op.Task.TRS), info)
	o.fe.sendToOVT(o.node, o.index, nv)
	return o.fe.cfg.EDRAMCycles // entry insert
}

// decodeHit services an operand whose object has a live entry.
func (o *ortModule) decodeHit(m ortDecodeMsg, e *ortEntry) sim.Cycle {
	prevUser := e.lastUser
	prevGen := e.lastUserGen
	prevVer := e.latestVer

	info := o.fe.pools.opInfo.get()
	*info = trsOperandInfoMsg{op: m.op, base: m.base, size: m.size, dir: m.dir}
	switch m.dir {
	case taskmodel.In:
		// RaR or RaW: register with the previous user, join the version.
		info.version = prevVer
		info.hasProducer = true
		info.producer = prevUser
		info.prodGen = prevGen
		au := o.fe.pools.addUse.get()
		*au = ovtAddUseMsg{v: prevVer}
		o.fe.sendToOVT(o.node, o.index, au)
		e.uses++
		if o.fe.cfg.Chaining || m.dir.Writes() {
			e.lastUser = m.op
			e.lastUserGen = o.fe.trsGen(m.op.Task)
		}
	case taskmodel.Out:
		v := o.newVersion()
		info.version = v
		nv := o.fe.pools.newVersion.get()
		*nv = ovtNewVersionMsg{
			v: v, base: m.base, size: m.size,
			hasProducer: true, producer: m.op,
			hasPrev: true, prev: prevVer,
			inPlace:    !o.fe.cfg.Renaming,
			initialUse: 1,
		}
		o.fe.sendToOVT(o.node, o.index, nv)
		e.lastUser = m.op
		e.lastUserGen = o.fe.trsGen(m.op.Task)
		e.latestVer = v
		e.uses = 1
	case taskmodel.InOut:
		// True dependency: never renamed. Register with the previous
		// user for input data; the OVT grants the output buffer once
		// the previous version dies.
		v := o.newVersion()
		info.version = v
		info.hasProducer = true
		info.producer = prevUser
		info.prodGen = prevGen
		nv := o.fe.pools.newVersion.get()
		*nv = ovtNewVersionMsg{
			v: v, base: m.base, size: m.size,
			hasProducer: true, producer: m.op,
			hasPrev: true, prev: prevVer,
			inPlace:    true,
			initialUse: 1,
		}
		o.fe.sendToOVT(o.node, o.index, nv)
		e.lastUser = m.op
		e.lastUserGen = o.fe.trsGen(m.op.Task)
		e.latestVer = v
		e.uses = 1
	}
	o.fe.sendToTRS(o.node, int(m.op.Task.TRS), info)
	return o.fe.cfg.EDRAMCycles // entry update
}

// handleRelease frees the object's entry if its latest version is the one
// the OVT declared idle, then replays stalled operands for the set.
func (o *ortModule) handleRelease(m ortReleaseMsg) sim.Cycle {
	cost := o.fe.cfg.ProcCycles + o.lookupCost()
	set := o.setFor(m.base)
	e := o.find(set, m.base)
	freed := false
	if e != nil && e.latestVer == m.version && e.uses == m.granted {
		// No grant happened since the OVT observed the version idle,
		// and none can be in flight: safe to free.
		e.valid = false
		o.occupied--
		o.releases++
		freed = true
	}
	ra := o.fe.pools.releaseAck.get()
	*ra = ovtReleaseAckMsg{v: m.version, freed: freed}
	o.fe.sendToOVT(o.node, o.index, ra)
	// Replay stashed decodes for this set, in order.
	for freed && o.waiting[set].Len() > 0 {
		if o.freeWay(set) == nil && o.find(set, o.waiting[set].Front().base) == nil {
			break
		}
		w := o.waiting[set].Pop()
		o.nwait--
		cost += o.handleDecode(w, true)
	}
	if o.nwait == 0 {
		o.fe.setStall(stallSrcORT(o.index), false)
	}
	return cost
}
