package core

import (
	"tasksuperscalar/internal/noc"
	"tasksuperscalar/internal/sim"
	"tasksuperscalar/internal/stats"
	"tasksuperscalar/internal/taskmodel"
)

// Frontend is the assembled task superscalar pipeline: one gateway, NumTRS
// task reservation stations, and NumORT object renaming tables, each paired
// with an object versioning table. All modules attach to the global ring.
type Frontend struct {
	eng *sim.Engine
	net *noc.Network
	cfg Config

	gw  *gateway
	trs []*trsModule
	ort []*ortModule
	ovt []*ovtModule

	dispatcher Dispatcher
	copyEngine CopyEngine

	// ortMask is len(ort)-1 when the ORT count is a power of 2 (mask
	// instead of mod on the per-operand routing path), else -1.
	ortMask int

	// pools recycles protocol message structs; together with the NoC's
	// typed delivery events this keeps the steady-state message path
	// allocation-free (see docs/ARCHITECTURE.md).
	pools     msgPools
	freeReady *readyEvent
	// freeRT recycles ReadyTask records (and their resolved-operand
	// slices) once the backend releases them, so dispatch allocates
	// nothing in steady state.
	freeRT *ReadyTask

	stallState []bool

	// Stats.
	window      stats.Counter
	decoded     uint64
	firstDecode sim.Cycle
	lastDecode  sim.Cycle
	retired     uint64

	// Decode-to-ready latency, kept as running aggregates (not a full
	// sample) so frontend memory stays independent of the task count.
	readyLagSum uint64
	readyLagN   uint64
	readyLagMax uint64
}

// New builds a frontend and attaches its modules to the network (call
// before net.Build()). copyEngine performs rename-buffer copy-back; pass
// NullCopyEngine when no memory system is modeled.
func New(eng *sim.Engine, net *noc.Network, cfg Config, copyEngine CopyEngine) *Frontend {
	if cfg.NumTRS < 1 || cfg.NumORT < 1 {
		panic("core: need at least one TRS and one ORT")
	}
	fe := &Frontend{
		eng:        eng,
		net:        net,
		cfg:        cfg,
		copyEngine: copyEngine,
		stallState: make([]bool, cfg.NumORT*2),
	}
	fe.gw = newGateway(fe)
	fe.gw.node = int(net.AddGlobalNode("gateway"))
	for i := 0; i < cfg.NumTRS; i++ {
		t := newTRS(fe, i)
		t.node = int(net.AddGlobalNode("trs"))
		fe.trs = append(fe.trs, t)
	}
	for i := 0; i < cfg.NumORT; i++ {
		o := newORT(fe, i)
		o.node = int(net.AddGlobalNode("ort"))
		fe.ort = append(fe.ort, o)
		v := newOVT(fe, i)
		v.node = int(net.AddGlobalNode("ovt"))
		fe.ovt = append(fe.ovt, v)
	}
	fe.ortMask = -1
	if n := len(fe.ort); n&(n-1) == 0 {
		fe.ortMask = n - 1
	}
	return fe
}

// SetDispatcher wires the execution backend.
func (fe *Frontend) SetDispatcher(d Dispatcher) { fe.dispatcher = d }

// Config returns the frontend configuration.
func (fe *Frontend) Config() Config { return fe.cfg }

// GatewayNode is the gateway's network attachment (generators send here).
func (fe *Frontend) GatewayNode() noc.NodeID { return noc.NodeID(fe.gw.node) }

// NullCopyEngine discards copy-back requests, completing them instantly.
type NullCopyEngine struct{ eng *sim.Engine }

// NewNullCopyEngine returns a copy engine for frontend-only simulations.
func NewNullCopyEngine(eng *sim.Engine) *NullCopyEngine { return &NullCopyEngine{eng: eng} }

// Copy implements CopyEngine.
func (n *NullCopyEngine) Copy(src, dst uint64, size uint32, done sim.Event) {
	n.eng.ScheduleEvent(1, done)
}

// --- ReadyTask recycling ---

// getReadyTask takes a dispatch record from the frontend's free list.
func (fe *Frontend) getReadyTask() *ReadyTask {
	rt := fe.freeRT
	if rt == nil {
		rt = &ReadyTask{owner: fe}
	} else {
		fe.freeRT = rt.nextFree
		rt.nextFree = nil
	}
	return rt
}

// PutReadyTask returns a released record; the operand slice keeps its
// capacity for the next dispatch. It implements ReadyTaskPool.
func (fe *Frontend) PutReadyTask(rt *ReadyTask) {
	rt.Task = nil
	rt.Operands = rt.Operands[:0]
	rt.Depth = 0
	rt.nextFree = fe.freeRT
	fe.freeRT = rt
}

// --- routing helpers ---

// ortFor hashes an operand base address to an ORT index; hashing (rather
// than using address bits directly) avoids load imbalance from varying
// object sizes (§IV.B.1).
func (fe *Frontend) ortFor(base uint64) int {
	h := base >> 6
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 32
	if fe.ortMask >= 0 {
		return int(h & uint64(fe.ortMask)) // identical to % for power-of-2 counts
	}
	return int(h % uint64(len(fe.ort)))
}

func (fe *Frontend) trsGen(id TaskID) uint32 {
	return fe.trs[id.TRS].slotGen(id.Slot)
}

// --- message transport (asynchronous point-to-point over the NoC) ---
//
// Messages are pooled structs passed as pointers; the NoC delivers them to
// the destination module's server through typed events, so no closure and
// no boxing happens per message.

func (fe *Frontend) sendToTRS(fromNode, trsIdx int, m any) {
	t := fe.trs[trsIdx]
	fe.net.SendMsg(noc.NodeID(fromNode), noc.NodeID(t.node), fe.cfg.CtrlBytes, t.srv, m)
}

func (fe *Frontend) sendToORT(fromNode, ortIdx int, m any) {
	o := fe.ort[ortIdx]
	fe.net.SendMsg(noc.NodeID(fromNode), noc.NodeID(o.node), fe.cfg.CtrlBytes, o.srv, m)
}

func (fe *Frontend) sendToOVT(fromNode, ovtIdx int, m any) {
	o := fe.ovt[ovtIdx]
	fe.net.SendMsg(noc.NodeID(fromNode), noc.NodeID(o.node), fe.cfg.CtrlBytes, o.srv, m)
}

func (fe *Frontend) sendToGW(fromNode int, m any) {
	fe.net.SendMsg(noc.NodeID(fromNode), noc.NodeID(fe.gw.node), fe.cfg.CtrlBytes, fe.gw.srv, m)
}

func (fe *Frontend) sendToTRSFromGW(m any, trsIdx int) {
	fe.sendToTRS(fe.gw.node, trsIdx, m)
}

func (fe *Frontend) sendToORTFromGW(m *ortDecodeMsg, ortIdx int) {
	fe.sendToORT(fe.gw.node, ortIdx, m)
}

// stall source encoding: ORT i and OVT i each get a slot in the gateway's
// stall bitmap.
func stallSrcORT(i int) int { return 2 * i }
func stallSrcOVT(i int) int { return 2*i + 1 }

// setStall asserts or clears gateway backpressure from a frontend module,
// sending a message only on state changes.
func (fe *Frontend) setStall(src int, on bool) {
	if fe.stallState[src] == on {
		return
	}
	fe.stallState[src] = on
	var fromNode int
	if src%2 == 0 {
		fromNode = fe.ort[src/2].node
	} else {
		fromNode = fe.ovt[src/2].node
	}
	sm := fe.pools.stall.get()
	*sm = gwStallMsg{src: src, stalled: on}
	fe.sendToGW(fromNode, sm)
}

// readyEvent carries one decoded-and-ready task to the dispatcher; pooled
// so the per-task dispatch costs no allocation.
type readyEvent struct {
	fe   *Frontend
	rt   *ReadyTask
	next *readyEvent
}

func (ev *readyEvent) Fire() {
	fe, rt := ev.fe, ev.rt
	ev.rt = nil
	ev.next = fe.freeReady
	fe.freeReady = ev
	fe.dispatcher.TaskReady(rt)
}

// dispatchReady ships a ready task to the backend's queuing system.
func (fe *Frontend) dispatchReady(fromNode int, rt *ReadyTask) {
	size := fe.cfg.CtrlBytes + 16*uint32(len(rt.Operands))
	lag := uint64(rt.ReadyAt - rt.DecodedAt)
	fe.readyLagSum += lag
	fe.readyLagN++
	if lag > fe.readyLagMax {
		fe.readyLagMax = lag
	}
	ev := fe.freeReady
	if ev == nil {
		ev = &readyEvent{fe: fe}
	} else {
		fe.freeReady = ev.next
		ev.next = nil
	}
	ev.rt = rt
	fe.net.SendEvent(noc.NodeID(fromNode), fe.dispatcher.Node(), size, ev)
}

// TaskFinished is called by the backend (from the worker's node) when a task
// completes; the TRS then walks the operands, notifies consumers, and frees
// the task's storage.
func (fe *Frontend) TaskFinished(fromNode noc.NodeID, id TaskID) {
	t := fe.trs[id.TRS]
	fm := fe.pools.finished.get()
	*fm = trsTaskFinishedMsg{id: id}
	fe.net.SendMsg(fromNode, noc.NodeID(t.node), fe.cfg.CtrlBytes, t.srv, fm)
}

// --- bookkeeping ---

func (fe *Frontend) noteWindowDelta(d int64) {
	fe.window.Inc(fe.eng.Now(), d)
}

func (fe *Frontend) noteDecoded(at sim.Cycle) {
	if fe.decoded == 0 {
		fe.firstDecode = at
	}
	fe.lastDecode = at
	fe.decoded++
}

func (fe *Frontend) noteTaskRetired(r *taskRec) {
	fe.retired++
}

// --- statistics ---

// FrontendStats summarizes a run of the pipeline frontend.
type FrontendStats struct {
	Decoded uint64
	Retired uint64
	// DecodeRate is the average time between successive additions to the
	// task graph, in cycles per task (§VI.A).
	DecodeRate float64

	WindowMax     int64
	WindowTimeAvg float64

	// TRS storage behaviour.
	TRSBytesAllocated uint64
	TRSBytesUsed      uint64
	// InternalFragmentation = 1 - used/allocated (§IV.B.2 reports ~20%).
	InternalFragmentation float64
	TRSDeferredHighWater  int

	// ORT/OVT behaviour.
	ORTStallEvents  uint64
	OVTStallEvents  uint64
	ORTMaxOccupied  int
	OVTMaxLive      int
	Renames         uint64
	CopyBacks       uint64
	InPlaceUnblocks uint64

	// Consumer chains: fraction with at most 2 links, the 95th
	// percentile, and the maximum (recorded only when Config.RecordChains).
	ChainFracAtMost2 float64
	ChainP95         float64
	ChainMax         int

	// Decode-to-ready latency aggregates, in cycles.
	ReadyLagAvg float64
	ReadyLagMax uint64

	GatewayAdmitted  uint64
	GatewayIssuedOps uint64

	// Per-module-type busy fractions over the run (bottleneck analysis
	// for the Figure 12/13 sweeps).
	GatewayUtil float64
	TRSUtil     float64 // busiest TRS
	ORTUtil     float64 // busiest ORT
	OVTUtil     float64 // busiest OVT
}

// Stats collects statistics across all modules. end is the cycle at which
// the run finished (for time-weighted averages).
func (fe *Frontend) Stats(end sim.Cycle) FrontendStats {
	s := FrontendStats{
		Decoded:          fe.decoded,
		Retired:          fe.retired,
		WindowMax:        fe.window.Max(),
		WindowTimeAvg:    fe.window.TimeAvg(end),
		GatewayAdmitted:  fe.gw.admitted,
		GatewayIssuedOps: fe.gw.issuedOps,
	}
	if fe.decoded > 1 {
		s.DecodeRate = float64(fe.lastDecode-fe.firstDecode) / float64(fe.decoded-1)
	}
	if end > 0 {
		s.GatewayUtil = float64(fe.gw.srv.BusyCycles()) / float64(end)
		for _, t := range fe.trs {
			if u := float64(t.srv.BusyCycles()) / float64(end); u > s.TRSUtil {
				s.TRSUtil = u
			}
		}
		for _, o := range fe.ort {
			if u := float64(o.srv.BusyCycles()) / float64(end); u > s.ORTUtil {
				s.ORTUtil = u
			}
		}
		for _, v := range fe.ovt {
			if u := float64(v.srv.BusyCycles()) / float64(end); u > s.OVTUtil {
				s.OVTUtil = u
			}
		}
	}
	for _, t := range fe.trs {
		s.TRSBytesAllocated += t.bytesAllocated
		s.TRSBytesUsed += t.bytesUsed
		if t.deferredHighWater > s.TRSDeferredHighWater {
			s.TRSDeferredHighWater = t.deferredHighWater
		}
	}
	if s.TRSBytesAllocated > 0 {
		s.InternalFragmentation = 1 - float64(s.TRSBytesUsed)/float64(s.TRSBytesAllocated)
	}
	var chains stats.Sample
	for _, o := range fe.ort {
		s.ORTStallEvents += o.stallEvents
		if o.maxOccupied > s.ORTMaxOccupied {
			s.ORTMaxOccupied = o.maxOccupied
		}
	}
	for _, v := range fe.ovt {
		s.OVTStallEvents += v.stallEvents
		s.Renames += v.renames
		s.CopyBacks += v.copyBacks
		s.InPlaceUnblocks += v.inPlaceUnblocks
		if v.maxLive > s.OVTMaxLive {
			s.OVTMaxLive = v.maxLive
		}
		for _, c := range v.chainLens {
			chains.Add(float64(c))
			if c > s.ChainMax {
				s.ChainMax = c
			}
		}
	}
	if chains.N() > 0 {
		s.ChainFracAtMost2 = chains.FracAtMost(2)
		s.ChainP95 = chains.Percentile(95)
	}
	if fe.readyLagN > 0 {
		s.ReadyLagAvg = float64(fe.readyLagSum) / float64(fe.readyLagN)
		s.ReadyLagMax = fe.readyLagMax
	}
	return s
}

// WindowOccupancy returns the current number of in-flight tasks.
func (fe *Frontend) WindowOccupancy() int64 { return fe.window.Cur() }

// Generator models the task-generating thread: it walks a task stream,
// paying a per-task packing cost, and writes tasks into the gateway's
// buffer, blocking when the buffer (and transitively the task window) is
// full — exactly the decoupled submission model of §III.C.
type Generator struct {
	fe     *Frontend
	node   noc.NodeID
	stream taskmodel.Stream

	// cur is the task being packed or awaiting buffer space; submitFn is
	// built once so the per-task schedule/await path does not allocate.
	cur      *taskmodel.Task
	submitFn func()

	produced   uint64
	done       bool
	onFinished []func()
}

// NewGenerator creates a generator that injects tasks from node (typically
// a core on a local ring).
func NewGenerator(fe *Frontend, node noc.NodeID, stream taskmodel.Stream) *Generator {
	g := &Generator{fe: fe, node: node, stream: stream}
	g.submitFn = g.trySubmit
	return g
}

// Start begins producing tasks.
func (g *Generator) Start() { g.produce() }

// Produced returns the number of tasks submitted so far.
func (g *Generator) Produced() uint64 { return g.produced }

// Done reports whether the stream is exhausted.
func (g *Generator) Done() bool { return g.done }

// OnFinished registers a callback for stream exhaustion.
func (g *Generator) OnFinished(fn func()) { g.onFinished = append(g.onFinished, fn) }

func (g *Generator) produce() {
	t := g.stream.Next()
	if t == nil {
		g.done = true
		for _, fn := range g.onFinished {
			fn()
		}
		return
	}
	if t.NumOperands() > MaxOperands {
		panic("generator: task exceeds the 19-operand limit")
	}
	g.cur = t
	cost := g.fe.cfg.GenBaseCycles + g.fe.cfg.GenPerOpCycles*sim.Cycle(t.NumOperands())
	g.fe.eng.Schedule(cost, g.submitFn)
}

func (g *Generator) trySubmit() {
	t := g.cur
	gw := g.fe.gw
	if !gw.RoomFor(t) {
		gw.AwaitRoom(g.submitFn)
		return
	}
	gw.Reserve(t)
	g.produced++
	g.cur = nil
	g.fe.net.SendMsg(g.node, g.fe.GatewayNode(), taskBytes(t), gw.enqSink, t)
	g.produce()
}
