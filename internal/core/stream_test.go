package core

import (
	"testing"

	"tasksuperscalar/internal/noc"
	"tasksuperscalar/internal/sim"
	"tasksuperscalar/internal/taskmodel"
)

// lazyStream materializes tasks on demand and counts how many the generator
// has pulled (so tests can observe back-pressure reaching the stream).
type lazyStream struct {
	total  int
	pulled int
	addr   taskmodel.Addr
}

func (s *lazyStream) Next() *taskmodel.Task {
	if s.pulled >= s.total {
		return nil
	}
	s.pulled++
	s.addr += 0x1000
	return &taskmodel.Task{
		Runtime:  1000,
		Seq:      uint64(s.pulled - 1),
		Operands: []taskmodel.Operand{{Base: s.addr, Size: 4096, Dir: taskmodel.InOut}},
	}
}

// stalledBackend accepts ready tasks but never finishes them, freezing the
// pipeline so the task window can only fill.
type stalledBackend struct {
	node  noc.NodeID
	ready int
}

func (b *stalledBackend) Node() noc.NodeID        { return b.node }
func (b *stalledBackend) TaskReady(rt *ReadyTask) { b.ready++ }

// TestGeneratorBackPressureStalledPipeline checks that a stalled pipeline
// propagates back-pressure all the way to the task stream: with a tiny TRS
// and a task-count cap on the gateway window, the generator must stop
// pulling after a bounded prefix of an arbitrarily long stream.
func TestGeneratorBackPressureStalledPipeline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumTRS = 1
	cfg.NumORT = 1
	cfg.TRSBytesEach = 16 * 128 // 16 blocks -> at most 16 single-operand tasks
	cfg.GatewayMaxTasks = 4

	eng := sim.NewEngine()
	net := noc.NewNetwork(eng, 8, noc.DefaultConfig())
	genNode := net.AddCore("generator")
	fe := New(eng, net, cfg, NewNullCopyEngine(eng))
	sb := &stalledBackend{node: net.AddGlobalNode("stalled-backend")}
	fe.SetDispatcher(sb)
	net.Build()

	st := &lazyStream{total: 10_000}
	gen := NewGenerator(fe, genNode, st)
	gen.Start()
	eng.Run() // quiesces once the generator blocks on the full window

	if gen.Done() {
		t.Fatal("generator claims the stream is exhausted")
	}
	// Window arithmetic: 16 TRS slots + 4 gateway tasks + 1 held by the
	// blocked generator, plus a little pipelining slack.
	if st.pulled >= 60 {
		t.Fatalf("stalled pipeline let the generator pull %d of %d tasks", st.pulled, st.total)
	}
	if st.pulled < 5 {
		t.Fatalf("generator barely progressed: pulled %d tasks", st.pulled)
	}
	if fe.gw.inFlight > cfg.GatewayMaxTasks {
		t.Fatalf("gateway window holds %d tasks, cap is %d", fe.gw.inFlight, cfg.GatewayMaxTasks)
	}
}

// TestGatewayTaskCapZeroMeansBytesOnly checks the default byte-budget
// behaviour is unchanged when no task cap is configured.
func TestGatewayTaskCapZeroMeansBytesOnly(t *testing.T) {
	tasks := []*taskmodel.Task{
		tk(1000, opOut(0x10000)),
		tk(1000, opIn(0x10000)),
	}
	cfg := DefaultConfig()
	cfg.GatewayMaxTasks = 0
	r := buildRig(t, cfg, tasks)
	r.run(t, 2)
}
