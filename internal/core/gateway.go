package core

import (
	"tasksuperscalar/internal/sim"
	"tasksuperscalar/internal/taskmodel"
)

// pendingTask is a task staged in the gateway's incoming buffer. Records
// recycle through the gateway's free list (one allocation per
// window-occupancy high-water mark, not per task).
type pendingTask struct {
	task  *taskmodel.Task
	bytes uint32

	allocSent  bool
	allocDone  bool
	id         TaskID
	nextIssue  int // next operand index to distribute
	issuesDone bool

	next *pendingTask // free-list link
}

// gateway is the pipeline entry point: it buffers incoming tasks (1 KB),
// allocates TRS storage, and distributes operands to the ORTs in task order
// (the in-order decode requirement of §III). The non-blocking protocol lets
// it pipeline allocation requests while older tasks are still being issued.
type gateway struct {
	fe   *Frontend
	node int
	srv  *sim.Server[any]

	queue    sim.FIFO[*pendingTask]
	freePend *pendingTask // free list of pendingTask records
	enqSink  sim.Sink     // delivery target for generator task injection
	bufUsed  uint32
	inFlight int      // reserved-or-queued tasks (incoming window, in tasks)
	waiters  []func() // generators blocked on buffer space
	drain    []func() // scratch for waking waiters without allocating
	// stalls is a bitset over the frontend's stall sources (2 per ORT/OVT
	// pair — small dense indices, so a word array beats a map).
	stalls   []uint64
	nstalled int

	// allocSent counts queued tasks whose allocation request has been
	// sent. Requests go out strictly in queue order and tasks retire from
	// the front in order, so the queue is always a sent prefix followed
	// by an unsent suffix: the next candidate is queue.At(allocSent), and
	// a reply's task is always inside the prefix — no scans needed.
	allocSent int

	freeTRS []bool
	rrNext  int
	anyFree bool

	// Stats.
	admitted  uint64
	issuedOps uint64
}

func newGateway(fe *Frontend) *gateway {
	g := &gateway{
		fe:      fe,
		stalls:  make([]uint64, (2*fe.cfg.NumORT+63)/64),
		freeTRS: make([]bool, fe.cfg.NumTRS),
	}
	for i := range g.freeTRS {
		g.freeTRS[i] = true
	}
	g.anyFree = true
	g.srv = sim.NewServer[any](fe.eng, "gateway", g.handle)
	g.srv.SetShardKey(0) // frontend shard map: gateway, then TRS/ORT/OVT blocks
	g.enqSink = enqueueSink{g}
	return g
}

// enqueueSink adapts task injection to the NoC's sink-based delivery: the
// generator's message payload is the task pointer itself.
type enqueueSink struct{ g *gateway }

func (s enqueueSink) Submit(m any) { s.g.Enqueue(m.(*taskmodel.Task)) }

// taskBytes is the space a task occupies in the gateway buffer: kernel
// pointer and globals plus one descriptor per operand.
func taskBytes(t *taskmodel.Task) uint32 {
	return 16 + 8*uint32(t.NumOperands())
}

// RoomFor reports whether the incoming buffer can accept the task: the byte
// budget of the hardware buffer, plus the optional task-count window cap
// used by streaming runs.
func (g *gateway) RoomFor(t *taskmodel.Task) bool {
	if max := g.fe.cfg.GatewayMaxTasks; max > 0 && g.inFlight >= max {
		return false
	}
	return g.bufUsed+taskBytes(t) <= g.fe.cfg.GatewayBufBytes
}

// Reserve claims buffer space for a task about to be sent (the generator
// reserves before injecting so in-flight tasks never overflow the buffer).
func (g *gateway) Reserve(t *taskmodel.Task) {
	g.bufUsed += taskBytes(t)
	g.inFlight++
}

// Enqueue stages an arriving task (called at NoC delivery time); space was
// already reserved by Reserve.
func (g *gateway) Enqueue(t *taskmodel.Task) {
	p := g.freePend
	if p == nil {
		p = &pendingTask{}
	} else {
		g.freePend = p.next
	}
	*p = pendingTask{task: t, bytes: taskBytes(t)}
	g.queue.Push(p)
	g.admitted++
	g.srv.Submit(gwKickMsg{})
}

// AwaitRoom registers a callback for when buffer space frees.
func (g *gateway) AwaitRoom(fn func()) { g.waiters = append(g.waiters, fn) }

// gwKickMsg wakes the gateway's work loop.
type gwKickMsg struct{}

func (g *gateway) handle(m any) sim.Cycle {
	switch msg := m.(type) {
	case gwKickMsg:
		return g.step()
	case *gwAllocReplyMsg:
		v := *msg
		g.fe.pools.allocReply.put(msg)
		return g.handleAllocReply(v)
	case *gwSpaceFreedMsg:
		trs := msg.trs
		g.fe.pools.spaceFreed.put(msg)
		g.freeTRS[trs] = true
		g.anyFree = true
		g.srv.Submit(gwKickMsg{})
		return g.fe.cfg.ProcCycles
	case *gwStallMsg:
		v := *msg
		g.fe.pools.stall.put(msg)
		return g.handleStall(v)
	default:
		panic("gateway: unknown message")
	}
}

func (g *gateway) handleStall(m gwStallMsg) sim.Cycle {
	word, bit := m.src/64, uint64(1)<<(m.src%64)
	was := g.stalls[word]&bit != 0
	if m.stalled && !was {
		g.stalls[word] |= bit
		g.nstalled++
	} else if !m.stalled && was {
		g.stalls[word] &^= bit
		g.nstalled--
		g.srv.Submit(gwKickMsg{})
	}
	return 0
}

// step performs one unit of gateway work: issuing the next operand of the
// oldest allocated task, or sending an allocation request for a newer task.
// Operand issue is strictly in task order; allocation requests pipeline
// ahead of it.
func (g *gateway) step() sim.Cycle {
	var cost sim.Cycle
	progress := false

	// 1. Issue the head task's operands, in order, unless stalled.
	if g.queue.Len() > 0 && g.nstalled == 0 {
		head := *g.queue.Front()
		if head.allocDone {
			cost += g.issueOne(head)
			progress = true
			if head.issuesDone {
				g.retire(head)
			}
		}
	}

	// 2. Pipeline one allocation request for the next unallocated task.
	if g.allocSent < g.queue.Len() {
		if trs := g.pickTRS(); trs >= 0 {
			p := *g.queue.At(g.allocSent)
			p.allocSent = true
			g.allocSent++
			am := g.fe.pools.alloc.get()
			*am = trsAllocMsg{task: p.task, gwRef: g.refOf(p)}
			g.fe.sendToTRSFromGW(am, trs)
			cost += g.fe.cfg.ProcCycles
			progress = true
		}
	}

	if progress {
		g.srv.Submit(gwKickMsg{})
	}
	return cost
}

// refOf returns a stable reference for the pending task (its position is
// not stable, so use the task's sequence number; the alloc reply echoes it).
func (g *gateway) refOf(p *pendingTask) int { return int(p.task.Seq) }

func (g *gateway) findRef(ref int) *pendingTask {
	// Only the sent prefix can have a reply outstanding.
	for i := 0; i < g.allocSent; i++ {
		if p := *g.queue.At(i); int(p.task.Seq) == ref {
			return p
		}
	}
	return nil
}

// pickTRS selects the next TRS with free space, round-robin.
func (g *gateway) pickTRS() int {
	if !g.anyFree {
		return -1
	}
	n := len(g.freeTRS)
	for i := 0; i < n; i++ {
		idx := (g.rrNext + i) % n
		if g.freeTRS[idx] {
			g.rrNext = (idx + 1) % n
			return idx
		}
	}
	g.anyFree = false
	return -1
}

func (g *gateway) handleAllocReply(m gwAllocReplyMsg) sim.Cycle {
	p := g.findRef(m.gwRef)
	if p == nil {
		panic("gateway: alloc reply for unknown task")
	}
	p.allocDone = true
	p.id = m.id
	if !m.moreSpace {
		g.freeTRS[m.id.TRS] = false
		g.anyFree = false
		for _, f := range g.freeTRS {
			if f {
				g.anyFree = true
				break
			}
		}
	}
	g.srv.Submit(gwKickMsg{})
	return g.fe.cfg.ProcCycles
}

// issueOne distributes the next operand of the head task: memory operands go
// to the ORT selected by the hashed base address, scalars directly to the
// TRS. Address hashing is pipelined and adds no latency (§IV.B.1).
func (g *gateway) issueOne(p *pendingTask) sim.Cycle {
	ops := p.task.Operands
	if p.nextIssue >= len(ops) {
		p.issuesDone = true
		return 0
	}
	i := p.nextIssue
	p.nextIssue++
	if p.nextIssue >= len(ops) {
		p.issuesDone = true
	}
	op := ops[i]
	oid := OperandID{Task: p.id, Index: uint8(i)}
	if op.Dir == taskmodel.Scalar {
		sm := g.fe.pools.scalar.get()
		*sm = trsScalarMsg{op: oid}
		g.fe.sendToTRSFromGW(sm, int(p.id.TRS))
	} else {
		ort := g.fe.ortFor(uint64(op.Base))
		dm := g.fe.pools.decode.get()
		*dm = ortDecodeMsg{
			op:   oid,
			base: uint64(op.Base),
			size: op.Size,
			dir:  op.Dir,
		}
		g.fe.sendToORTFromGW(dm, ort)
	}
	g.issuedOps++
	return g.fe.cfg.ProcCycles
}

// retire removes a fully issued task from the buffer and wakes blocked
// generators.
func (g *gateway) retire(p *pendingTask) {
	if g.queue.Len() == 0 || *g.queue.Front() != p {
		panic("gateway: retiring non-head task")
	}
	g.queue.Pop()
	g.allocSent-- // the head is always inside the sent prefix (allocDone)
	g.bufUsed -= p.bytes
	g.inFlight--
	*p = pendingTask{next: g.freePend}
	g.freePend = p
	// Wake blocked generators; a still-blocked generator re-registers
	// itself, so drain a snapshot rather than the live list (the two
	// slices swap roles so neither wake path allocates).
	g.waiters, g.drain = g.drain[:0], g.waiters
	for _, w := range g.drain {
		w()
	}
}
