package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tasksuperscalar/internal/graph"
	"tasksuperscalar/internal/noc"
	"tasksuperscalar/internal/sim"
	"tasksuperscalar/internal/taskmodel"
)

// mockBackend executes every ready task after its runtime with unlimited
// parallelism, so the frontend's dependency decoding is the only ordering
// constraint under test.
type mockBackend struct {
	eng  *sim.Engine
	fe   *Frontend
	node noc.NodeID

	start  map[uint64]sim.Cycle
	finish map[uint64]sim.Cycle
	ready  []*ReadyTask
	bufs   map[uint64]uint64 // task seq -> resolved buf of operand 0
}

func (m *mockBackend) Node() noc.NodeID { return m.node }

func (m *mockBackend) TaskReady(rt *ReadyTask) {
	m.start[rt.Task.Seq] = m.eng.Now()
	m.ready = append(m.ready, rt)
	if len(rt.Operands) > 0 {
		m.bufs[rt.Task.Seq] = rt.Operands[0].Buf
	}
	m.eng.Schedule(sim.Cycle(rt.Task.Runtime), func() {
		m.finish[rt.Task.Seq] = m.eng.Now()
		m.fe.TaskFinished(m.node, rt.ID)
	})
}

type rig struct {
	eng *sim.Engine
	fe  *Frontend
	gen *Generator
	mb  *mockBackend
}

// buildRig assembles a frontend with a mock backend over the given tasks.
func buildRig(t testing.TB, cfg Config, tasks []*taskmodel.Task) *rig {
	t.Helper()
	eng := sim.NewEngine()
	net := noc.NewNetwork(eng, 8, noc.DefaultConfig())
	genNode := net.AddCore("generator")
	fe := New(eng, net, cfg, NewNullCopyEngine(eng))
	mb := &mockBackend{
		eng:    eng,
		fe:     fe,
		node:   net.AddGlobalNode("mock-backend"),
		start:  make(map[uint64]sim.Cycle),
		finish: make(map[uint64]sim.Cycle),
		bufs:   make(map[uint64]uint64),
	}
	fe.SetDispatcher(mb)
	net.Build()
	gen := NewGenerator(fe, genNode, taskmodel.NewSliceStream(tasks))
	return &rig{eng: eng, fe: fe, gen: gen, mb: mb}
}

func (r *rig) run(t testing.TB, want int) {
	t.Helper()
	r.gen.Start()
	r.eng.Run()
	if len(r.mb.finish) != want {
		t.Fatalf("completed %d tasks, want %d (decoded %d, window %d)",
			len(r.mb.finish), want, r.fe.decoded, r.fe.WindowOccupancy())
	}
	if got := r.fe.WindowOccupancy(); got != 0 {
		t.Fatalf("window not drained: %d tasks still in flight", got)
	}
}

func tk(run uint64, ops ...taskmodel.Operand) *taskmodel.Task {
	return &taskmodel.Task{Runtime: run, Operands: ops}
}

func opIn(a taskmodel.Addr) taskmodel.Operand {
	return taskmodel.Operand{Base: a, Size: 4096, Dir: taskmodel.In}
}
func opOut(a taskmodel.Addr) taskmodel.Operand {
	return taskmodel.Operand{Base: a, Size: 4096, Dir: taskmodel.Out}
}
func opInOut(a taskmodel.Addr) taskmodel.Operand {
	return taskmodel.Operand{Base: a, Size: 4096, Dir: taskmodel.InOut}
}
func opScalar() taskmodel.Operand {
	return taskmodel.Operand{Size: 8, Dir: taskmodel.Scalar}
}

func TestProducerConsumer(t *testing.T) {
	tasks := []*taskmodel.Task{
		tk(1000, opOut(0x10000)),
		tk(1000, opIn(0x10000)),
	}
	r := buildRig(t, DefaultConfig(), tasks)
	r.run(t, 2)
	if r.mb.start[1] < r.mb.finish[0] {
		t.Fatalf("consumer started at %d before producer finished at %d",
			r.mb.start[1], r.mb.finish[0])
	}
}

func TestConsumerReceivesProducerBuffer(t *testing.T) {
	tasks := []*taskmodel.Task{
		tk(100, opOut(0x10000)),
		tk(100, opOut(0x10000)), // renamed: gets a fresh buffer
		tk(100, opIn(0x10000)),
	}
	r := buildRig(t, DefaultConfig(), tasks)
	r.run(t, 3)
	// Task 1's output was renamed (a previous version existed), so its
	// buffer is in the OVT rename region, and the consumer reads it.
	if r.mb.bufs[1] == 0x10000 {
		t.Fatal("second writer not renamed")
	}
	if r.mb.bufs[2] != r.mb.bufs[1] {
		t.Fatalf("consumer reads %#x, want producer's buffer %#x",
			r.mb.bufs[2], r.mb.bufs[1])
	}
	// Task 0 wrote in place (no previous version to protect).
	if r.mb.bufs[0] != 0x10000 {
		t.Fatalf("first writer buffer = %#x, want home address", r.mb.bufs[0])
	}
}

func TestRenamingBreaksWaR(t *testing.T) {
	// Long-running reader, then a writer of the same object. With
	// renaming, the writer must not wait for the reader.
	tasks := []*taskmodel.Task{
		tk(10, opOut(0x10000)),
		tk(1_000_000, opIn(0x10000)),
		tk(10, opOut(0x10000)),
	}
	r := buildRig(t, DefaultConfig(), tasks)
	r.run(t, 3)
	if r.mb.start[2] >= r.mb.finish[1] {
		t.Fatalf("renamed writer waited for reader: start %d vs reader finish %d",
			r.mb.start[2], r.mb.finish[1])
	}

	// Without renaming the writer serializes behind the reader.
	cfg := DefaultConfig()
	cfg.Renaming = false
	r2 := buildRig(t, cfg, []*taskmodel.Task{
		tk(10, opOut(0x10000)),
		tk(1_000_000, opIn(0x10000)),
		tk(10, opOut(0x10000)),
	})
	r2.run(t, 3)
	if r2.mb.start[2] < r2.mb.finish[1] {
		t.Fatalf("unrenamed writer did not wait: start %d vs reader finish %d",
			r2.mb.start[2], r2.mb.finish[1])
	}
}

func TestInOutChainSerializes(t *testing.T) {
	tasks := []*taskmodel.Task{
		tk(5000, opInOut(0x20000)),
		tk(5000, opInOut(0x20000)),
		tk(5000, opInOut(0x20000)),
	}
	r := buildRig(t, DefaultConfig(), tasks)
	r.run(t, 3)
	if r.mb.start[1] < r.mb.finish[0] || r.mb.start[2] < r.mb.finish[1] {
		t.Fatalf("inout chain overlapped: starts %d,%d finishes %d,%d",
			r.mb.start[1], r.mb.start[2], r.mb.finish[0], r.mb.finish[1])
	}
	// All three write in place at the home address.
	for seq := uint64(0); seq < 3; seq++ {
		if r.mb.bufs[seq] != 0x20000 {
			t.Fatalf("inout task %d buffer = %#x, want home address", seq, r.mb.bufs[seq])
		}
	}
}

func TestInOutWaitsForReaders(t *testing.T) {
	// Producer, long reader, then an inout. The inout writes in place and
	// must wait for the reader to release the previous version.
	tasks := []*taskmodel.Task{
		tk(10, opOut(0x30000)),
		tk(500_000, opIn(0x30000)),
		tk(10, opInOut(0x30000)),
	}
	r := buildRig(t, DefaultConfig(), tasks)
	r.run(t, 3)
	if r.mb.start[2] < r.mb.finish[1] {
		t.Fatalf("inout started at %d before reader finished at %d",
			r.mb.start[2], r.mb.finish[1])
	}
}

func TestScalarOnlyTask(t *testing.T) {
	tasks := []*taskmodel.Task{tk(10, opScalar(), opScalar())}
	r := buildRig(t, DefaultConfig(), tasks)
	r.run(t, 1)
}

func TestZeroOperandTask(t *testing.T) {
	tasks := []*taskmodel.Task{tk(10)}
	r := buildRig(t, DefaultConfig(), tasks)
	r.run(t, 1)
}

func TestManyOperandsUseIndirectBlocks(t *testing.T) {
	var ops []taskmodel.Operand
	for i := 0; i < MaxOperands; i++ {
		ops = append(ops, opOut(taskmodel.Addr(0x40000+i*0x1000)))
	}
	tasks := []*taskmodel.Task{tk(10, ops...)}
	r := buildRig(t, DefaultConfig(), tasks)
	r.run(t, 1)
	st := r.fe.Stats(r.eng.Now())
	if st.TRSBytesAllocated != 4*trsBlockBytes {
		t.Fatalf("19-operand task allocated %d bytes, want 4 blocks = %d",
			st.TRSBytesAllocated, 4*trsBlockBytes)
	}
}

func TestBlocksForOperands(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 4: 1, 5: 2, 9: 2, 10: 3, 14: 3, 15: 4, 19: 4}
	for n, want := range cases {
		if got := blocksForOperands(n); got != want {
			t.Errorf("blocksForOperands(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestChainForwarding(t *testing.T) {
	// One producer, many readers: the readers chain and all receive data.
	tasks := []*taskmodel.Task{tk(1000, opOut(0x50000))}
	for i := 0; i < 10; i++ {
		tasks = append(tasks, tk(100, opIn(0x50000)))
	}
	r := buildRig(t, DefaultConfig(), tasks)
	r.run(t, 11)
	for seq := uint64(1); seq <= 10; seq++ {
		if r.mb.start[seq] < r.mb.finish[0] {
			t.Fatalf("reader %d started before producer finished", seq)
		}
		if r.mb.bufs[seq] != r.mb.bufs[0] {
			t.Fatalf("reader %d buffer %#x, want producer's %#x", seq, r.mb.bufs[seq], r.mb.bufs[0])
		}
	}
	st := r.fe.Stats(r.eng.Now())
	if st.ChainMax < 10 {
		t.Fatalf("chain stats missed the 10-reader chain: max %d", st.ChainMax)
	}
}

func TestChainingDisabledStillCorrect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Chaining = false
	tasks := []*taskmodel.Task{tk(1000, opOut(0x50000))}
	for i := 0; i < 10; i++ {
		tasks = append(tasks, tk(100, opIn(0x50000)))
	}
	r := buildRig(t, cfg, tasks)
	r.run(t, 11)
	for seq := uint64(1); seq <= 10; seq++ {
		if r.mb.start[seq] < r.mb.finish[0] {
			t.Fatalf("reader %d started before producer finished", seq)
		}
	}
}

func TestWindowAccounting(t *testing.T) {
	var tasks []*taskmodel.Task
	for i := 0; i < 50; i++ {
		tasks = append(tasks, tk(10_000, opOut(taskmodel.Addr(0x100000+i*0x1000))))
	}
	r := buildRig(t, DefaultConfig(), tasks)
	r.run(t, 50)
	st := r.fe.Stats(r.eng.Now())
	if st.Decoded != 50 || st.Retired != 50 {
		t.Fatalf("decoded/retired = %d/%d, want 50/50", st.Decoded, st.Retired)
	}
	if st.WindowMax < 2 {
		t.Fatalf("window max = %d, expected overlap of independent tasks", st.WindowMax)
	}
}

func TestTinyTRSStillCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumTRS = 1
	cfg.TRSBytesEach = 8 * trsBlockBytes // window of 8 single-block tasks
	var tasks []*taskmodel.Task
	for i := 0; i < 100; i++ {
		tasks = append(tasks, tk(1000, opOut(taskmodel.Addr(0x100000+i*0x1000))))
	}
	r := buildRig(t, cfg, tasks)
	r.run(t, 100)
	st := r.fe.Stats(r.eng.Now())
	if st.WindowMax > 8 {
		t.Fatalf("window max %d exceeds TRS capacity of 8 tasks", st.WindowMax)
	}
}

func TestTinyORTStallsAndRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumORT = 1
	cfg.ORTBytesEach = 2 * ortWays * ortEntryBytes // 2 sets, 32 entries
	var tasks []*taskmodel.Task
	for i := 0; i < 200; i++ {
		tasks = append(tasks, tk(500, opOut(taskmodel.Addr(0x100000+i*0x1000))))
	}
	r := buildRig(t, cfg, tasks)
	r.run(t, 200)
	st := r.fe.Stats(r.eng.Now())
	if st.ORTStallEvents == 0 {
		t.Fatal("expected ORT-full stalls with a 32-entry ORT and 200 live objects")
	}
}

func TestTinyOVTStallsAndRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumORT = 1
	cfg.OVTBytesEach = 16 * ovtEntryBytes // 16 live versions
	var tasks []*taskmodel.Task
	for i := 0; i < 200; i++ {
		tasks = append(tasks, tk(500, opOut(taskmodel.Addr(0x100000+i*0x1000))))
	}
	r := buildRig(t, cfg, tasks)
	r.run(t, 200)
	st := r.fe.Stats(r.eng.Now())
	if st.OVTStallEvents == 0 {
		t.Fatal("expected OVT-full stalls with 16 version records and 200 live versions")
	}
	if st.OVTMaxLive > 16 {
		t.Fatalf("OVT exceeded capacity: %d live versions", st.OVTMaxLive)
	}
}

func TestDecodeRateMeasured(t *testing.T) {
	var tasks []*taskmodel.Task
	for i := 0; i < 100; i++ {
		tasks = append(tasks, tk(100_000,
			opIn(taskmodel.Addr(0x100000+(i%10)*0x1000)),
			opOut(taskmodel.Addr(0x200000+i*0x1000))))
	}
	r := buildRig(t, DefaultConfig(), tasks)
	r.run(t, 100)
	st := r.fe.Stats(r.eng.Now())
	if st.DecodeRate <= 0 {
		t.Fatal("decode rate not measured")
	}
	if st.DecodeRate > 2000 {
		t.Fatalf("decode rate %f cycles/task implausibly slow", st.DecodeRate)
	}
}

// randomStream builds a reproducible random task stream over a small pool of
// objects with mixed directionality.
func randomStream(rng *rand.Rand, n, objects int) []*taskmodel.Task {
	tasks := make([]*taskmodel.Task, n)
	for i := range tasks {
		nops := 1 + rng.Intn(4)
		if nops > objects {
			nops = objects
		}
		seen := map[taskmodel.Addr]bool{}
		var ops []taskmodel.Operand
		for len(ops) < nops {
			a := taskmodel.Addr(0x100000 + rng.Intn(objects)*0x1000)
			if seen[a] {
				continue
			}
			seen[a] = true
			dir := []taskmodel.Dir{taskmodel.In, taskmodel.Out, taskmodel.InOut}[rng.Intn(3)]
			ops = append(ops, taskmodel.Operand{Base: a, Size: 1024, Dir: dir})
		}
		tasks[i] = tk(uint64(100+rng.Intn(5000)), ops...)
	}
	return tasks
}

// TestScheduleRespectsOracleProperty is the core correctness property: the
// pipeline's observed execution order must satisfy every dependency edge of
// the sequential-semantics oracle graph.
func TestScheduleRespectsOracleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		tasks := randomStream(rng, n, 1+rng.Intn(12))
		renaming := rng.Intn(2) == 0
		cfg := DefaultConfig()
		cfg.Renaming = renaming
		r := buildRig(t, cfg, tasks)
		r.gen.Start()
		r.eng.Run()
		if len(r.mb.finish) != n {
			t.Logf("seed %d: only %d/%d tasks completed", seed, len(r.mb.finish), n)
			return false
		}
		g := graph.Build(tasks, graph.Options{Renaming: renaming})
		start := make([]uint64, n)
		finish := make([]uint64, n)
		for seq, c := range r.mb.start {
			start[seq] = c
		}
		for seq, c := range r.mb.finish {
			finish[seq] = c
		}
		if err := g.ValidateSchedule(start, finish); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestStressSmallConfigProperty drives random streams through a deliberately
// starved frontend (1 TRS, tiny ORT/OVT) to exercise every stall path.
func TestStressSmallConfigProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(60)
		tasks := randomStream(rng, n, 24)
		cfg := DefaultConfig()
		cfg.NumTRS = 1
		cfg.NumORT = 1
		cfg.TRSBytesEach = 6 * trsBlockBytes
		cfg.ORTBytesEach = uint64(2 * ortWays * ortEntryBytes)
		cfg.OVTBytesEach = 24 * ovtEntryBytes
		r := buildRig(t, cfg, tasks)
		r.gen.Start()
		r.eng.Run()
		if len(r.mb.finish) != n {
			t.Logf("seed %d: stalled run completed %d/%d", seed, len(r.mb.finish), n)
			return false
		}
		g := graph.Build(tasks, graph.Options{Renaming: true})
		start := make([]uint64, n)
		finish := make([]uint64, n)
		for seq, c := range r.mb.start {
			start[seq] = c
		}
		for seq, c := range r.mb.finish {
			finish[seq] = c
		}
		return g.ValidateSchedule(start, finish) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentationStatistic(t *testing.T) {
	// 3-operand tasks: 104 of 128 allocated bytes used -> ~19% waste.
	var tasks []*taskmodel.Task
	for i := 0; i < 20; i++ {
		tasks = append(tasks, tk(100,
			opIn(taskmodel.Addr(0x100000+i*0x3000)),
			opIn(taskmodel.Addr(0x200000+i*0x3000)),
			opOut(taskmodel.Addr(0x300000+i*0x3000))))
	}
	r := buildRig(t, DefaultConfig(), tasks)
	r.run(t, 20)
	st := r.fe.Stats(r.eng.Now())
	if st.InternalFragmentation < 0.10 || st.InternalFragmentation > 0.30 {
		t.Fatalf("fragmentation = %.2f, expected ~0.2 for 3-operand tasks", st.InternalFragmentation)
	}
}

func TestGeneratorBackpressure(t *testing.T) {
	// More tasks than the 1 KB gateway buffer holds at once: the
	// generator must block and resume.
	var tasks []*taskmodel.Task
	for i := 0; i < 300; i++ {
		tasks = append(tasks, tk(50, opOut(taskmodel.Addr(0x100000+i*0x1000))))
	}
	cfg := DefaultConfig()
	r := buildRig(t, cfg, tasks)
	r.run(t, 300)
	if r.gen.Produced() != 300 {
		t.Fatalf("generator produced %d, want 300", r.gen.Produced())
	}
}

func TestCopyBackOnIdleRenamedVersion(t *testing.T) {
	// Writer (renamed), reader, no further versions: when both retire the
	// renamed buffer must be copied back to the home address.
	tasks := []*taskmodel.Task{
		tk(10, opOut(0x60000)),
		tk(10, opOut(0x60000)), // renamed version
		tk(10, opIn(0x60000)),
	}
	r := buildRig(t, DefaultConfig(), tasks)
	r.run(t, 3)
	st := r.fe.Stats(r.eng.Now())
	if st.Renames != 1 {
		t.Fatalf("renames = %d, want 1", st.Renames)
	}
	if st.CopyBacks != 1 {
		t.Fatalf("copy-backs = %d, want 1 (idle renamed version)", st.CopyBacks)
	}
}

func TestTaskIDStrings(t *testing.T) {
	id := TaskID{TRS: 1, Slot: 17}
	if id.String() != "<1,17>" {
		t.Fatalf("TaskID.String() = %q", id.String())
	}
	op := OperandID{Task: id, Index: 0}
	if op.String() != "<1,17,0>" {
		t.Fatalf("OperandID.String() = %q", op.String())
	}
	if !noOperand.isNone() || !noVersion.isNone() {
		t.Fatal("sentinels broken")
	}
	if (VersionID{OVT: 0, Num: 3}).String() == "" {
		t.Fatal("version formatting broken")
	}
}
