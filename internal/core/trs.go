package core

import (
	"tasksuperscalar/internal/sim"
	"tasksuperscalar/internal/taskmodel"
)

// opRec is the per-operand state stored in a task's TRS blocks.
type opRec struct {
	base    uint64
	size    uint32
	dir     taskmodel.Dir
	version VersionID

	pending  int8 // data-ready messages still required
	stored   bool // operand info has arrived from the ORT/gateway
	dataDone bool // input data available (pure readers forward on arrival)
	buf      uint64

	hasNext bool // consumer chaining: the single next consumer of this
	next    OperandID

	consumers []OperandID // ablation mode only (Chaining=false)
}

// reset clears an operand record for reuse, keeping the consumers slice's
// capacity (the ablation mode refills it without allocating).
func (op *opRec) reset() {
	c := op.consumers[:0]
	*op = opRec{consumers: c}
}

// taskRec is the in-flight task meta-data held by a TRS (main block plus
// indirect blocks). Records live in the station's slot arena: the first
// mainBlockOperands operands are embedded inline (the paper's main block),
// the rest spill to a per-slot slice whose capacity is reused when the slot
// recycles (the indirect blocks).
type taskRec struct {
	id   TaskID
	gen  uint32
	live bool
	task *taskmodel.Task

	blocks int
	nops   int
	main   [mainBlockOperands]opRec
	spill  []opRec

	pendingOps   int // operand records not yet stored
	pendingReady int // data-ready messages not yet received
	dispatched   bool

	decodedAt sim.Cycle
	readyAt   sim.Cycle
}

// op returns the i-th operand record.
func (r *taskRec) op(i int) *opRec {
	if i < mainBlockOperands {
		return &r.main[i]
	}
	return &r.spill[i-mainBlockOperands]
}

// trsSlabChunk sizes the slot arena's chunks; chunked growth keeps record
// addresses stable across allocations (handlers hold *taskRec while serving
// deferred allocation queues).
const trsSlabChunk = 512

// trsModule is one task reservation station: an eDRAM block store whose
// controller serializes protocol messages. Task records live in a
// preallocated, slot-indexed arena (generation-checked) rather than on the
// heap, so steady-state task turnover does not allocate.
type trsModule struct {
	fe    *Frontend
	index int
	node  int // NoC node (stored as int to match noc.NodeID)
	srv   *sim.Server[any]

	totalBlocks int
	freeBlocks  int
	sramHeads   int // block addresses staged in the SRAM buffer

	slab      [][]taskRec // chunked slot arena; slot s → slab[s/chunk][s%chunk]
	slabLen   int
	freeSlots []uint32

	deferred     sim.FIFO[trsAllocMsg] // allocation requests awaiting free blocks
	reportedFull bool

	// Stats.
	allocated, freed  uint64
	bytesAllocated    uint64
	bytesUsed         uint64
	sramRefills       uint64
	deferredHighWater int
}

func newTRS(fe *Frontend, index int) *trsModule {
	t := &trsModule{
		fe:          fe,
		index:       index,
		totalBlocks: int(fe.cfg.TRSBytesEach / trsBlockBytes),
	}
	t.freeBlocks = t.totalBlocks
	t.sramHeads = sramFreeListHeads
	t.slab = append(t.slab, make([]taskRec, trsSlabChunk))
	t.srv = sim.NewServer[any](fe.eng, "trs", t.handle)
	t.srv.SetShardKey(1 + uint32(index))
	return t
}

// slot returns the arena record at a slot index.
func (t *trsModule) slot(s uint32) *taskRec {
	return &t.slab[s/trsSlabChunk][s%trsSlabChunk]
}

// handle copies each pooled message out and recycles it before dispatching,
// ordered by rough message frequency.
func (t *trsModule) handle(m any) sim.Cycle {
	switch msg := m.(type) {
	case *trsDataReadyMsg:
		v := *msg
		t.fe.pools.dataReady.put(msg)
		return t.handleDataReady(v)
	case *trsOperandInfoMsg:
		v := *msg
		t.fe.pools.opInfo.put(msg)
		return t.handleOperandInfo(v)
	case *trsRegisterConsumerMsg:
		v := *msg
		t.fe.pools.regConsumer.put(msg)
		return t.handleRegisterConsumer(v)
	case *trsScalarMsg:
		v := *msg
		t.fe.pools.scalar.put(msg)
		return t.handleScalar(v)
	case *trsAllocMsg:
		v := *msg
		t.fe.pools.alloc.put(msg)
		return t.handleAlloc(v)
	case *trsTaskFinishedMsg:
		v := *msg
		t.fe.pools.finished.put(msg)
		return t.handleFinished(v)
	default:
		panic("trs: unknown message")
	}
}

// blockAllocCost models pulling n block addresses from the SRAM-staged free
// list (1 cycle each), refilling from the eDRAM list node when it runs dry.
func (t *trsModule) blockAllocCost(n int) sim.Cycle {
	cost := sim.Cycle(n) // 1 cycle per block from SRAM
	for i := 0; i < n; i++ {
		if t.sramHeads == 0 {
			cost += t.fe.cfg.EDRAMCycles
			t.sramHeads = sramFreeListHeads
			t.sramRefills++
		}
		t.sramHeads--
	}
	return cost
}

func (t *trsModule) handleAlloc(m trsAllocMsg) sim.Cycle {
	nops := m.task.NumOperands()
	blocks := blocksForOperands(nops)
	if blocks > t.freeBlocks {
		// Defer until a task frees storage; the gateway's in-order issue
		// stage blocks on this task, which is exactly the paper's
		// "task window full" stall.
		t.deferred.Push(m)
		if t.deferred.Len() > t.deferredHighWater {
			t.deferredHighWater = t.deferred.Len()
		}
		return t.fe.cfg.ProcCycles
	}
	return t.allocate(m, blocks)
}

func (t *trsModule) allocate(m trsAllocMsg, blocks int) sim.Cycle {
	nops := m.task.NumOperands()
	t.freeBlocks -= blocks
	var slot uint32
	if n := len(t.freeSlots); n > 0 {
		slot = t.freeSlots[n-1]
		t.freeSlots = t.freeSlots[:n-1]
	} else {
		if t.slabLen == len(t.slab)*trsSlabChunk {
			t.slab = append(t.slab, make([]taskRec, trsSlabChunk))
		}
		slot = uint32(t.slabLen)
		t.slabLen++
	}
	rec := t.slot(slot)
	rec.gen++
	rec.live = true
	rec.id = TaskID{TRS: uint16(t.index), Slot: slot}
	rec.task = m.task
	rec.blocks = blocks
	rec.nops = nops
	if spill := nops - mainBlockOperands; spill > 0 {
		if cap(rec.spill) < spill {
			rec.spill = make([]opRec, spill)
		}
		rec.spill = rec.spill[:spill]
	} else {
		rec.spill = rec.spill[:0]
	}
	for i := 0; i < nops; i++ {
		rec.op(i).reset()
	}
	rec.pendingOps = nops
	rec.pendingReady = 0
	rec.dispatched = false
	rec.decodedAt = 0
	rec.readyAt = 0
	t.allocated++
	t.bytesAllocated += uint64(blocks * trsBlockBytes)
	t.bytesUsed += uint64(taskRecordBytes(nops))
	t.fe.noteWindowDelta(+1)

	// Reply to the gateway with the slot number.
	rm := t.fe.pools.allocReply.get()
	*rm = gwAllocReplyMsg{
		gwRef:     m.gwRef,
		id:        rec.id,
		moreSpace: t.freeBlocks >= blocksForOperands(MaxOperands),
	}
	t.fe.sendToGW(t.node, rm)
	if t.freeBlocks < blocksForOperands(MaxOperands) {
		t.reportedFull = true
	}
	extra := sim.Cycle(0)
	if nops == 0 {
		// Operand-less tasks are decoded and ready upon allocation.
		rec.decodedAt = t.fe.eng.Now()
		t.fe.noteDecoded(rec.decodedAt)
		extra = t.maybeDispatch(rec)
	}
	// Alloc processing: packet cost + block pulls + one eDRAM write per
	// block to initialize the task record.
	return t.fe.cfg.ProcCycles + t.blockAllocCost(blocks) +
		sim.Cycle(blocks)*t.fe.cfg.EDRAMCycles + extra
}

// rec returns the live record for id, or nil when the slot was freed or
// reused.
func (t *trsModule) rec(id TaskID, gen uint32, checkGen bool) *taskRec {
	if int(id.Slot) >= t.slabLen {
		return nil
	}
	r := t.slot(id.Slot)
	if !r.live {
		return nil
	}
	if checkGen && r.gen != gen {
		return nil
	}
	return r
}

// gen returns the slot's current generation (it survives frees, so the ORT
// can stamp last-user references that may outlive the task).
func (t *trsModule) slotGen(slot uint32) uint32 {
	if int(slot) >= t.slabLen {
		return 0
	}
	return t.slot(slot).gen
}

func (t *trsModule) handleOperandInfo(m trsOperandInfoMsg) sim.Cycle {
	r := t.rec(m.op.Task, 0, false)
	if r == nil {
		panic("trs: operand info for freed slot")
	}
	op := r.op(int(m.op.Index))
	op.base = m.base
	op.size = m.size
	op.dir = m.dir
	op.version = m.version
	op.stored = true
	switch m.dir {
	case taskmodel.In, taskmodel.Out:
		op.pending = 1
	case taskmodel.InOut:
		op.pending = 2
	}
	r.pendingReady += int(op.pending)

	cost := t.fe.cfg.ProcCycles + t.fe.cfg.EDRAMCycles
	if m.hasProducer {
		// Register with the previous user of the version for input data.
		rc := t.fe.pools.regConsumer.get()
		*rc = trsRegisterConsumerMsg{
			producer:     m.producer,
			prodGen:      m.prodGen,
			consumer:     m.op,
			queryVersion: m.version,
		}
		t.fe.sendToTRS(t.node, int(m.producer.Task.TRS), rc)
	}
	if m.immediateReady > 0 {
		op.pending -= m.immediateReady
		r.pendingReady -= int(m.immediateReady)
		op.buf = m.readyBuf
		op.dataDone = true
	}
	t.noteOperandStored(r)
	cost += t.maybeDispatch(r)
	return cost
}

func (t *trsModule) handleScalar(m trsScalarMsg) sim.Cycle {
	r := t.rec(m.op.Task, 0, false)
	if r == nil {
		panic("trs: scalar for freed slot")
	}
	op := r.op(int(m.op.Index))
	op.dir = taskmodel.Scalar
	op.stored = true
	op.dataDone = true
	t.noteOperandStored(r)
	cost := t.fe.cfg.ProcCycles + t.fe.cfg.EDRAMCycles
	cost += t.maybeDispatch(r)
	return cost
}

func (t *trsModule) noteOperandStored(r *taskRec) {
	r.pendingOps--
	if r.pendingOps == 0 {
		r.decodedAt = t.fe.eng.Now()
		t.fe.noteDecoded(r.decodedAt)
	}
}

func (t *trsModule) handleRegisterConsumer(m trsRegisterConsumerMsg) sim.Cycle {
	cost := t.fe.cfg.ProcCycles + 2*t.fe.cfg.EDRAMCycles // read + link write
	r := t.rec(m.producer.Task, m.prodGen, true)
	if r == nil {
		// The user already retired; its data was produced and written
		// back. Resolve the buffer through the version record.
		qm := t.fe.pools.query.get()
		*qm = ovtQueryBufMsg{
			v:        m.queryVersion,
			consumer: m.consumer,
		}
		t.fe.sendToOVT(t.node, int(m.queryVersion.OVT), qm)
		return cost
	}
	op := r.op(int(m.producer.Index))
	if !t.fe.cfg.Chaining {
		op.consumers = append(op.consumers, m.consumer)
		if op.dir == taskmodel.In && op.dataDone {
			t.sendDataReady(int(m.consumer.Task.TRS), m.consumer, op.buf, false)
		}
		return cost
	}
	if op.dir == taskmodel.In && op.dataDone {
		// Data already flowed through this reader: forward directly.
		t.sendDataReady(int(m.consumer.Task.TRS), m.consumer, op.buf, false)
		return cost
	}
	op.next = m.consumer
	op.hasNext = true
	return cost
}

func (t *trsModule) handleDataReady(m trsDataReadyMsg) sim.Cycle {
	r := t.rec(m.op.Task, 0, false)
	if r == nil {
		panic("trs: data ready for freed slot")
	}
	op := r.op(int(m.op.Index))
	cost := t.fe.cfg.ProcCycles + t.fe.cfg.EDRAMCycles
	if op.pending <= 0 {
		panic("trs: duplicate data ready")
	}
	op.pending--
	r.pendingReady--
	if !m.output {
		// Input data arrived: record its location and forward along the
		// consumer chain immediately (Figure 10).
		op.buf = m.buf
		op.dataDone = true
		if op.dir == taskmodel.In {
			t.forward(op, m.buf)
		}
	} else if op.buf == 0 || op.dir == taskmodel.Out {
		// Output buffer granted by the OVT (rename buffer or in-place
		// buffer once the previous version died).
		op.buf = m.buf
	}
	cost += t.maybeDispatch(r)
	return cost
}

// sendDataReady ships one pooled readiness notification to a consumer TRS.
func (t *trsModule) sendDataReady(trsIdx int, op OperandID, buf uint64, output bool) {
	dm := t.fe.pools.dataReady.get()
	*dm = trsDataReadyMsg{op: op, buf: buf, output: output}
	t.fe.sendToTRS(t.node, trsIdx, dm)
}

// forward passes an input-data-ready notification to the next consumer in
// the chain (or to every registered consumer in the ablation mode).
func (t *trsModule) forward(op *opRec, buf uint64) {
	if t.fe.cfg.Chaining {
		if op.hasNext {
			t.sendDataReady(int(op.next.Task.TRS), op.next, buf, false)
		}
		return
	}
	for _, c := range op.consumers {
		t.sendDataReady(int(c.Task.TRS), c, buf, false)
	}
	op.consumers = op.consumers[:0]
}

// maybeDispatch sends the task to the ready queue once fully decoded and all
// operands are ready. It returns the extra processing cost.
func (t *trsModule) maybeDispatch(r *taskRec) sim.Cycle {
	if r.dispatched || r.pendingOps > 0 || r.pendingReady > 0 {
		return 0
	}
	r.dispatched = true
	r.readyAt = t.fe.eng.Now()
	rt := t.fe.getReadyTask()
	ops := rt.Operands
	if cap(ops) < r.nops {
		ops = make([]ResolvedOperand, r.nops)
	} else {
		ops = ops[:r.nops]
	}
	for i := 0; i < r.nops; i++ {
		op := r.op(i)
		buf := op.buf
		if op.dir == taskmodel.Scalar {
			buf = 0
		}
		ops[i] = ResolvedOperand{
			Base: taskmodel.Addr(op.base),
			Buf:  buf,
			Size: op.size,
			Dir:  op.dir,
		}
	}
	rt.ID = r.id
	rt.Task = r.task
	rt.Operands = ops
	rt.DecodedAt = r.decodedAt
	rt.ReadyAt = r.readyAt
	t.fe.dispatchReady(t.node, rt)
	return t.fe.cfg.EDRAMCycles // read the record out for dispatch
}

func (t *trsModule) handleFinished(m trsTaskFinishedMsg) sim.Cycle {
	r := t.rec(m.id, 0, false)
	if r == nil {
		panic("trs: finish for freed slot")
	}
	// Traverse all operands: notify consumers, release version uses.
	cost := t.fe.cfg.ProcCycles * sim.Cycle(max(1, r.nops))
	cost += sim.Cycle(r.blocks) * t.fe.cfg.EDRAMCycles
	for i := 0; i < r.nops; i++ {
		op := r.op(i)
		if op.dir == taskmodel.Scalar {
			continue
		}
		if op.dir.Writes() {
			// The produced data is now final: release it to consumers.
			op.dataDone = true
			t.forward(op, op.buf)
		}
		du := t.fe.pools.decUse.get()
		*du = ovtDecUseMsg{v: op.version}
		t.fe.sendToOVT(t.node, int(op.version.OVT), du)
	}
	// Free the task storage (the slot keeps its generation counter).
	blocks := r.blocks
	r.live = false
	r.task = nil
	t.freeSlots = append(t.freeSlots, m.id.Slot)
	t.freeBlocks += blocks
	t.freed++
	t.fe.noteWindowDelta(-1)
	t.fe.noteTaskRetired(r)

	// Serve deferred allocations in order.
	for t.deferred.Len() > 0 {
		d := *t.deferred.Front()
		blocks := blocksForOperands(d.task.NumOperands())
		if blocks > t.freeBlocks {
			break
		}
		t.deferred.Pop()
		cost += t.allocate(d, blocks)
	}
	if t.reportedFull && t.deferred.Len() == 0 && t.freeBlocks >= blocksForOperands(MaxOperands) {
		t.reportedFull = false
		sf := t.fe.pools.spaceFreed.get()
		*sf = gwSpaceFreedMsg{trs: t.index}
		t.fe.sendToGW(t.node, sf)
	}
	return cost
}

// occupancy returns blocks in use.
func (t *trsModule) occupancy() int { return t.totalBlocks - t.freeBlocks }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
