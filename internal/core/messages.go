package core

import (
	"tasksuperscalar/internal/noc"
	"tasksuperscalar/internal/sim"
	"tasksuperscalar/internal/taskmodel"
)

// Protocol messages of the asynchronous point-to-point protocol (Figures
// 6-9). Each message type is handled by exactly one module kind.

// --- messages to a TRS ---

// trsAllocMsg asks a TRS to allocate storage for a new task (Figure 6).
type trsAllocMsg struct {
	task  *taskmodel.Task
	gwRef int // gateway buffer reference, echoed back to avoid associative lookups
}

// trsOperandInfoMsg delivers decoded operand information from an ORT
// ("operand <1,17,0> is 512B @283" in Figures 7-9).
type trsOperandInfoMsg struct {
	op      OperandID
	base    uint64
	size    uint32
	dir     taskmodel.Dir
	version VersionID // version this operand reads (In) or produces (Out/InOut)

	hasProducer bool // register with this user for input data
	producer    OperandID
	prodGen     uint32

	immediateReady int8   // ready messages satisfied at decode (ORT miss)
	readyBuf       uint64 // buffer address for immediately-ready data
}

// trsScalarMsg delivers a scalar operand directly from the gateway.
type trsScalarMsg struct {
	op OperandID
}

// trsRegisterConsumerMsg registers a consumer with the previous user of an
// object version (Figure 8: "register consumer of <2,5,2>").
type trsRegisterConsumerMsg struct {
	producer OperandID // the user being registered with
	prodGen  uint32
	consumer OperandID
	// queryVersion resolves the data location if the user already retired:
	// the version read (In) or the consumer's own in-place version (InOut).
	queryVersion VersionID
}

// trsDataReadyMsg marks one readiness condition of an operand satisfied.
type trsDataReadyMsg struct {
	op     OperandID
	buf    uint64
	output bool // true: output buffer available (from OVT); false: input data
}

// trsTaskFinishedMsg notifies the TRS that the backend completed the task.
type trsTaskFinishedMsg struct {
	id TaskID
}

// --- messages to an ORT ---

// ortDecodeMsg carries one memory operand from the gateway for dependency
// decoding.
type ortDecodeMsg struct {
	op   OperandID
	base uint64
	size uint32
	dir  taskmodel.Dir
}

// ortReleaseMsg tells the ORT that the latest version of an object went
// idle; the ORT may free the object's entry. granted is the number of uses
// the OVT has recorded for the version: the ORT frees the entry only if its
// own grant count matches, which proves no use can still be in flight (all
// grants originate at the ORT, and ORT->OVT messages are FIFO).
type ortReleaseMsg struct {
	base    uint64
	version VersionID
	granted int
}

// --- messages to an OVT ---

// ovtNewVersionMsg creates a new version record. The ORT assigns version IDs
// so no reply round-trip is needed.
type ovtNewVersionMsg struct {
	v    VersionID
	base uint64
	size uint32

	hasProducer bool
	producer    OperandID // writer operand producing the version

	hasPrev bool
	prev    VersionID

	inPlace    bool // inout (or renaming disabled): reuse prev's buffer
	initialUse int8 // use count held at creation (producer or first reader)
}

// ovtAddUseMsg registers a reader with a version.
type ovtAddUseMsg struct{ v VersionID }

// ovtDecUseMsg drops one use of a version (task finished).
type ovtDecUseMsg struct{ v VersionID }

// ovtQueryBufMsg resolves the data buffer of a version whose last user
// already retired; the OVT replies with a data-ready message.
type ovtQueryBufMsg struct {
	v        VersionID
	consumer OperandID
}

// ovtReleaseAckMsg acknowledges an ortReleaseMsg.
type ovtReleaseAckMsg struct {
	v     VersionID
	freed bool
}

// --- messages to the gateway ---

// gwAllocReplyMsg returns the allocated slot for a pending task ("use slot
// 17" in Figure 6).
type gwAllocReplyMsg struct {
	gwRef     int
	id        TaskID
	moreSpace bool // the TRS still has room for a maximal task
}

// gwSpaceFreedMsg re-announces a TRS that previously reported itself full.
type gwSpaceFreedMsg struct{ trs int }

// gwStallMsg asserts or releases backpressure from a full ORT or OVT.
type gwStallMsg struct {
	src     int // module index in the frontend's stall bitmap
	stalled bool
}

// ResolvedOperand is an operand as the backend sees it after decode: the
// original object identity plus the buffer the task must actually access
// (the rename buffer or a producer's version buffer).
type ResolvedOperand struct {
	Base taskmodel.Addr
	Buf  uint64
	Size uint32
	Dir  taskmodel.Dir
}

// ReadyTask is handed to the backend when all operands of a task are ready.
//
// Frontend-issued records are pooled: the backend calls Release when it has
// fully retired the task, returning the record (and its operand slice) to
// the issuing frontend's free list. Producers outside the hardware pipeline
// (the software runtime, the sequential driver, tests) build plain records
// for which Release is a no-op.
type ReadyTask struct {
	ID       TaskID
	Task     *taskmodel.Task
	Operands []ResolvedOperand

	DecodedAt sim.Cycle
	ReadyAt   sim.Cycle

	// Depth is scheduling metadata attached by the dispatcher: the task's
	// dependent-chain height (number of tasks transitively waiting on its
	// outputs) under the critical-path policy, 0 otherwise. It is a
	// priority hint, never machine state — producers leave it zero.
	Depth uint32

	owner    ReadyTaskPool // pool owner; nil for unpooled records
	nextFree *ReadyTask
}

// ReadyTaskPool recycles retired dispatch records. The hardware frontend is
// the canonical implementation; tests install recorders to observe the
// Release round-trip, and alternative producers may pool their own records.
type ReadyTaskPool interface {
	// PutReadyTask receives a record whose task has fully retired. The
	// record (including Task and Operands) is the pool's to reuse.
	PutReadyTask(rt *ReadyTask)
}

// NewPooledReadyTask builds a record owned by pool: its Release hands the
// record to pool.PutReadyTask instead of being a no-op.
func NewPooledReadyTask(pool ReadyTaskPool) *ReadyTask { return &ReadyTask{owner: pool} }

// Release returns a pooled record to its owner. The caller must not touch
// rt (including Task and Operands) afterwards; releasing an unpooled record
// does nothing.
func (rt *ReadyTask) Release() {
	if rt.owner != nil {
		rt.owner.PutReadyTask(rt)
	}
}

// Dispatcher consumes ready tasks; the execution backend implements it.
type Dispatcher interface {
	// Node is the dispatcher's attachment point on the network.
	Node() noc.NodeID
	// TaskReady delivers a fully decoded, ready-to-run task.
	TaskReady(rt *ReadyTask)
}
