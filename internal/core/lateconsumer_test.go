package core

import (
	"testing"

	"tasksuperscalar/internal/taskmodel"
)

// TestLateConsumerOfRetiredProducer covers the producer-gone path: the
// producer task finishes and frees its slot before a consumer's
// register-consumer message arrives, so the buffer must be resolved through
// the OVT version record.
func TestLateConsumerOfRetiredProducer(t *testing.T) {
	obj := taskmodel.Addr(0x70000)
	var tasks []*taskmodel.Task
	// Fast producer.
	tasks = append(tasks, tk(1, opOut(obj)))
	// Fillers delay the consumer's decode well past the producer's
	// retirement.
	for i := 0; i < 60; i++ {
		tasks = append(tasks, tk(50_000, opOut(taskmodel.Addr(0x100000+i*0x1000))))
	}
	// Late consumer.
	tasks = append(tasks, tk(10, opIn(obj)))
	r := buildRig(t, DefaultConfig(), tasks)
	r.run(t, 62)
	last := uint64(len(tasks) - 1)
	if r.mb.start[last] < r.mb.finish[0] {
		t.Fatal("consumer ran before producer")
	}
	if r.mb.bufs[last] != uint64(obj) {
		t.Fatalf("late consumer resolved buffer %#x, want home address %#x",
			r.mb.bufs[last], uint64(obj))
	}
}

// TestLateConsumerWithSlotReuse forces the producer's slot to be recycled by
// another task before the consumer registers: the generation check must
// detect the reuse and fall back to the OVT query.
func TestLateConsumerWithSlotReuse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumTRS = 1
	cfg.TRSBytesEach = 4 * trsBlockBytes // four slots force fast recycling
	obj := taskmodel.Addr(0x70000)
	var tasks []*taskmodel.Task
	tasks = append(tasks, tk(1, opOut(obj)))
	for i := 0; i < 40; i++ {
		tasks = append(tasks, tk(2_000, opOut(taskmodel.Addr(0x100000+i*0x1000))))
	}
	tasks = append(tasks, tk(10, opIn(obj)))
	r := buildRig(t, cfg, tasks)
	r.run(t, 42)
	last := uint64(len(tasks) - 1)
	if r.mb.bufs[last] != uint64(obj) {
		t.Fatalf("consumer after slot reuse resolved %#x, want %#x",
			r.mb.bufs[last], uint64(obj))
	}
}

// TestLateInOutOfRetiredProducer covers the same race for an inout consumer,
// whose query resolves through its own in-place version.
func TestLateInOutOfRetiredProducer(t *testing.T) {
	obj := taskmodel.Addr(0x70000)
	var tasks []*taskmodel.Task
	tasks = append(tasks, tk(1, opOut(obj)))
	for i := 0; i < 60; i++ {
		tasks = append(tasks, tk(50_000, opOut(taskmodel.Addr(0x100000+i*0x1000))))
	}
	tasks = append(tasks, tk(10, opInOut(obj)))
	r := buildRig(t, DefaultConfig(), tasks)
	r.run(t, 62)
	last := uint64(len(tasks) - 1)
	if r.mb.bufs[last] != uint64(obj) {
		t.Fatalf("late inout resolved %#x, want in-place home %#x",
			r.mb.bufs[last], uint64(obj))
	}
}

// TestRenamedBufferReusedAfterRelease checks the OVT bucket allocator
// recycles rename buffers: two serialized rename generations reuse storage.
func TestRenamedBufferReusedAfterRelease(t *testing.T) {
	obj := taskmodel.Addr(0x70000)
	var tasks []*taskmodel.Task
	// Two write-read generations; the second rename happens after the
	// first version dies, so the bucket can recycle the buffer.
	tasks = append(tasks,
		tk(10, opOut(obj)),
		tk(10, opOut(obj)), // renamed #1
		tk(10, opIn(obj)),
	)
	r := buildRig(t, DefaultConfig(), tasks)
	r.run(t, 3)
	st := r.fe.Stats(r.eng.Now())
	if st.Renames != 1 {
		t.Fatalf("renames = %d, want 1", st.Renames)
	}
	// All rename buffers must be back in their buckets at drain.
	for _, ovt := range r.fe.ovt {
		if ovt.renameBufOut != 0 {
			t.Fatalf("%d rename buffers leaked", ovt.renameBufOut)
		}
	}
}

// TestVersionRecordsDrainToZero ensures no version records leak after a
// mixed workload fully retires.
func TestVersionRecordsDrainToZero(t *testing.T) {
	var tasks []*taskmodel.Task
	for i := 0; i < 120; i++ {
		a := taskmodel.Addr(0x100000 + (i%10)*0x1000)
		switch i % 3 {
		case 0:
			tasks = append(tasks, tk(500, opOut(a)))
		case 1:
			tasks = append(tasks, tk(500, opIn(a)))
		case 2:
			tasks = append(tasks, tk(500, opInOut(a)))
		}
	}
	r := buildRig(t, DefaultConfig(), tasks)
	r.run(t, 120)
	// Let release handshakes finish.
	r.eng.Run()
	for i, ovt := range r.fe.ovt {
		if n := ovt.live(); n != 0 {
			t.Errorf("ovt%d still holds %d live versions after drain", i, n)
		}
		if ovt.stashed.Len() != 0 || ovt.pendingCount() != 0 {
			t.Errorf("ovt%d has stashed/pending state after drain", i)
		}
	}
	for i, ort := range r.fe.ort {
		if ort.occupied != 0 {
			t.Errorf("ort%d still has %d occupied entries after drain", i, ort.occupied)
		}
		if ort.nwait != 0 {
			t.Errorf("ort%d still has %d stashed operands", i, ort.nwait)
		}
	}
}
