package core

import (
	"testing"

	"tasksuperscalar/internal/noc"
	"tasksuperscalar/internal/sim"
	"tasksuperscalar/internal/taskmodel"
)

// TestVersionIDWraparound drives the version-number allocator across the
// uint32 wrap boundary. The OVT's open-addressed table is keyed by the raw
// version number (including 0, which the allocator produces right after the
// wrap), so creation, lookup, and release must all survive the rollover.
func TestVersionIDWraparound(t *testing.T) {
	var tasks []*taskmodel.Task
	for i := 0; i < 120; i++ {
		a := taskmodel.Addr(0x100000 + (i%10)*0x1000)
		switch i % 3 {
		case 0:
			tasks = append(tasks, tk(500, opOut(a)))
		case 1:
			tasks = append(tasks, tk(500, opIn(a)))
		case 2:
			tasks = append(tasks, tk(500, opInOut(a)))
		}
	}
	r := buildRig(t, DefaultConfig(), tasks)
	// Park every allocator a few versions short of the wrap; the workload
	// allocates far more versions than that, so numbers 2^32-1, 0, 1, …
	// are all exercised while earlier records are still live.
	for _, o := range r.fe.ort {
		o.verSeq = ^uint32(0) - 5
	}
	r.run(t, 120)
	r.eng.Run() // let release handshakes finish
	for i, ovt := range r.fe.ovt {
		if n := ovt.live(); n != 0 {
			t.Errorf("ovt%d still holds %d live versions after wraparound drain", i, n)
		}
		if ovt.pendingCount() != 0 || ovt.stashed.Len() != 0 {
			t.Errorf("ovt%d has pending/stashed state after wraparound drain", i)
		}
	}
	for i, o := range r.fe.ort {
		if o.verSeq >= ^uint32(0)-5 && o.lookups > 6 {
			t.Errorf("ort%d allocator did not wrap (verSeq=%d after %d lookups)",
				i, o.verSeq, o.lookups)
		}
	}
}

// TestRenameBufferBucketRecycling checks the per-log2-size free stacks: a
// long serial chain of renamed outputs of one size must recycle buffers
// from the stack rather than carving fresh ones from the OS-assigned
// region. One 16-buffer refill is the most a serial chain may consume.
func TestRenameBufferBucketRecycling(t *testing.T) {
	const n = 40
	var tasks []*taskmodel.Task
	for i := 0; i < n; i++ {
		// Repeated pure writers of one object: every version after the
		// first is renamed into a 4 KB rename buffer, then freed when
		// the version dies or is copied back.
		tasks = append(tasks, tk(300, opOut(0x200000)))
	}
	r := buildRig(t, DefaultConfig(), tasks)
	r.run(t, n)
	r.eng.Run()
	for i, ovt := range r.fe.ovt {
		if ovt.renames == 0 {
			continue // the object hashed to the other ORT/OVT pair
		}
		if ovt.renameBufOut != 0 {
			t.Errorf("ovt%d leaked %d rename buffers", i, ovt.renameBufOut)
		}
		carved := ovt.nextBuf - ((uint64(1) << 44) + uint64(i)<<40)
		if max := uint64(16 * 4096); carved > max {
			t.Errorf("ovt%d carved %d bytes of rename buffers for %d serial renames; "+
				"want at most one 16-buffer refill (%d) — free stacks not recycling",
				i, carved, ovt.renames, max)
		}
		// The freed buffers must be back on the 4 KB stack for reuse.
		if free := len(ovt.buckets[bucketFor(4096)]); free == 0 {
			t.Errorf("ovt%d has no free 4 KB buffers after drain", i)
		}
	}
}

// releasingBackend completes each ready task after its runtime and returns
// the dispatch record to the frontend pool, like the real backend. It
// handles one task in flight at a time (the zero-alloc test injects tasks
// one by one), so its completion closure is prebuilt.
type releasingBackend struct {
	eng     *sim.Engine
	fe      *Frontend
	node    noc.NodeID
	pending *ReadyTask
	fireFn  func()
	done    uint64
}

func (rb *releasingBackend) Node() noc.NodeID { return rb.node }

func (rb *releasingBackend) TaskReady(rt *ReadyTask) {
	if rb.pending != nil {
		panic("releasingBackend: overlapping tasks")
	}
	rb.pending = rt
	rb.eng.Schedule(sim.Cycle(rt.Task.Runtime), rb.fireFn)
}

func (rb *releasingBackend) fire() {
	rt := rb.pending
	rb.pending = nil
	rb.done++
	rb.fe.TaskFinished(rb.node, rt.ID)
	rt.Release()
}

// TestDecodeSteadyStateZeroAlloc pins the tentpole invariant: once every
// arena, table, free stack, and pool is warm, decoding and retiring tasks
// allocates nothing — the whole per-task path (gateway, ORT lookup, OVT
// versioning, TRS storage, dispatch, finish walk) runs in preallocated
// storage. This extends the engine-level AllocsPerRun assertions in
// internal/sim/engine_test.go to the full pipeline.
func TestDecodeSteadyStateZeroAlloc(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordChains = false // the chain log is O(tasks) by design

	eng := sim.NewEngine()
	net := noc.NewNetwork(eng, 8, noc.DefaultConfig())
	fe := New(eng, net, cfg, NewNullCopyEngine(eng))
	rb := &releasingBackend{eng: eng, fe: fe, node: net.AddGlobalNode("rb")}
	rb.fireFn = rb.fire
	fe.SetDispatcher(rb)
	net.Build()

	// A fixed task set reused round-robin: writers, readers, and in-place
	// chains over a handful of objects, exercising renaming, consumer
	// chaining, retired-producer queries, and scalar delivery.
	var tasks []*taskmodel.Task
	for i := 0; i < 12; i++ {
		a := taskmodel.Addr(0x300000 + (i%4)*0x1000)
		var task *taskmodel.Task
		switch i % 3 {
		case 0:
			task = tk(150, opOut(a), opScalar())
		case 1:
			task = tk(150, opIn(a))
		case 2:
			task = tk(150, opInOut(a))
		}
		task.Seq = uint64(i)
		tasks = append(tasks, task)
	}
	next := 0
	inject := func() {
		task := tasks[next]
		next = (next + 1) % len(tasks)
		fe.gw.Reserve(task)
		fe.gw.Enqueue(task)
		eng.Run()
	}

	// Warm every structure: slabs, free stacks, message pools, queues,
	// calendar buckets, rename-buffer stacks.
	for i := 0; i < 3*len(tasks); i++ {
		inject()
	}
	if avg := testing.AllocsPerRun(200, inject); avg != 0 {
		t.Fatalf("steady-state decode allocated %.2f times per task, want 0", avg)
	}
	if rb.pending != nil {
		t.Fatal("task left in flight")
	}
}

// TestDecodeSteadyStateShardedAllocBudget is the sharded twin of the
// zero-alloc test: the decode path itself still allocates nothing, but each
// inject() here spans a full Run, and a sharded Run spawns and joins its
// shard goroutines — a fixed per-run cost. The gate is therefore a small
// per-shard budget rather than zero; a structural regression on the sharded
// path (a buffer rebuilt per window, a cell escaping to the heap) blows
// well past it.
func TestDecodeSteadyStateShardedAllocBudget(t *testing.T) {
	const shards = 4
	cfg := DefaultConfig()
	cfg.RecordChains = false

	eng := sim.NewEngine()
	eng.SetShards(shards, 0)
	net := noc.NewNetwork(eng, 8, noc.DefaultConfig())
	fe := New(eng, net, cfg, NewNullCopyEngine(eng))
	rb := &releasingBackend{eng: eng, fe: fe, node: net.AddGlobalNode("rb")}
	rb.fireFn = rb.fire
	fe.SetDispatcher(rb)
	net.Build()

	var tasks []*taskmodel.Task
	for i := 0; i < 12; i++ {
		a := taskmodel.Addr(0x300000 + (i%4)*0x1000)
		var task *taskmodel.Task
		switch i % 3 {
		case 0:
			task = tk(150, opOut(a), opScalar())
		case 1:
			task = tk(150, opIn(a))
		case 2:
			task = tk(150, opInOut(a))
		}
		task.Seq = uint64(i)
		tasks = append(tasks, task)
	}
	next := 0
	inject := func() {
		task := tasks[next]
		next = (next + 1) % len(tasks)
		fe.gw.Reserve(task)
		fe.gw.Enqueue(task)
		eng.Run()
	}

	for i := 0; i < 3*len(tasks); i++ {
		inject()
	}
	avg := testing.AllocsPerRun(200, inject)
	if perShard := avg / shards; perShard > 8 {
		t.Fatalf("sharded decode allocated %.2f per task (%.2f per shard), budget 8/shard", avg, perShard)
	}
	if rb.pending != nil {
		t.Fatal("task left in flight")
	}
}
