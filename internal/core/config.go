package core

import "tasksuperscalar/internal/sim"

// Config sizes the pipeline frontend. The defaults reproduce the paper's
// chosen operating point: 8 TRSs and 2 ORT/OVT pairs, with 7 MB of eDRAM
// total (6 MB TRS + 512 KB ORT + 512 KB OVT).
type Config struct {
	NumTRS int // task reservation stations
	NumORT int // object renaming tables; each ORT pairs with one OVT

	TRSBytesEach uint64 // eDRAM per TRS (managed as 128 B blocks)
	ORTBytesEach uint64 // eDRAM per ORT (16-way sets, 32 B entries)
	OVTBytesEach uint64 // eDRAM per OVT (32 B version records)

	ProcCycles  sim.Cycle // per-packet controller processing (16)
	EDRAMCycles sim.Cycle // per-access eDRAM latency (22)

	GatewayBufBytes uint32 // incoming task buffer at the gateway (1 KB)

	// Task-generating thread model: cycles to pack and emit one task.
	GenBaseCycles  sim.Cycle
	GenPerOpCycles sim.Cycle

	// Renaming disables the OVT's rename buffers when false (ablation):
	// output operands then wait for the previous version to die, i.e.
	// WaR/WaW dependencies serialize.
	Renaming bool

	// Chaining selects consumer chaining (the paper's design) versus
	// direct per-operand consumer lists held at the producer (ablation).
	Chaining bool

	// CtrlBytes is the size of protocol messages on the NoC.
	CtrlBytes uint32

	// ORTStashLimit is the number of operands an ORT may hold waiting for
	// full sets before it backpressures the gateway. Decode order only
	// requires per-object FIFO, which the per-set stash preserves, so a
	// bounded stash lets unrelated operands flow past an unlucky set.
	ORTStashLimit int

	// GatewayMaxTasks additionally caps the gateway's incoming window in
	// tasks (0 = bytes-only, the hardware buffer model). Streaming runs use
	// it to bound how far the task-generating thread may run ahead of the
	// pipeline independently of task size.
	GatewayMaxTasks int

	// RecordChains retains the per-version consumer-chain lengths for the
	// §IV.B.2 statistics. The record grows with the task count, so
	// streaming runs disable it to keep memory proportional to the task
	// window.
	RecordChains bool
}

// Block geometry of the TRS storage (paper §IV.B.2).
const (
	trsBlockBytes     = 128
	mainBlockOperands = 4 // main block: task-globals + first 4 operands
	indirBlockOps     = 5 // each indirect block holds 5 more operands
	maxIndirBlocks    = 3 // up to 3 indirect blocks
	// MaxOperands is the architectural per-task operand limit (19).
	MaxOperands = mainBlockOperands + maxIndirBlocks*indirBlockOps

	ortEntryBytes = 32 // tag + last user + version pointer
	ortWays       = 16 // 16-way cache of memory objects
	ovtEntryBytes = 32 // version record

	sramFreeListHeads = 64 // block addresses staged in the 128 B SRAM buffer
)

// DefaultConfig returns the paper's operating point (§VI conclusion:
// 8 TRS + 2 ORT/OVT, 7 MB eDRAM).
func DefaultConfig() Config {
	return Config{
		NumTRS:          8,
		NumORT:          2,
		TRSBytesEach:    768 << 10, // 8 x 768 KB = 6 MB
		ORTBytesEach:    256 << 10, // 2 x 256 KB = 512 KB
		OVTBytesEach:    256 << 10, // 2 x 256 KB = 512 KB
		ProcCycles:      16,
		EDRAMCycles:     22,
		GatewayBufBytes: 1024,
		GenBaseCycles:   24,
		GenPerOpCycles:  12,
		Renaming:        true,
		Chaining:        true,
		CtrlBytes:       32,
		ORTStashLimit:   64,
		RecordChains:    true,
	}
}

// blocksForOperands returns how many 128 B blocks a task with n operands
// occupies: one main block plus indirect blocks of 5 operands each.
func blocksForOperands(n int) int {
	if n <= mainBlockOperands {
		return 1
	}
	extra := n - mainBlockOperands
	return 1 + (extra+indirBlockOps-1)/indirBlockOps
}

// taskRecordBytes estimates the bytes of task state actually used inside the
// allocated blocks (for the internal-fragmentation statistic): 32 B of task
// globals plus 24 B per operand.
func taskRecordBytes(n int) int { return 32 + 24*n }
