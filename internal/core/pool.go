package core

// pool is a simple free list of message structs. Protocol messages travel
// as *T inside an `any`: storing a pointer in an interface does not
// allocate, so a pooled message makes the whole send-transport-handle path
// allocation-free. Pools are owned by one Frontend and therefore by one
// engine goroutine — no locking.
//
// Convention: a message is taken with get, fully overwritten by the sender
// (whole-struct assignment, never field patching), and returned to the pool
// by the receiving module's handle method after it has copied the value
// out. Pooled messages must never be retained by reference across handler
// boundaries.
type pool[T any] struct {
	free []*T
}

func (p *pool[T]) get() *T {
	if n := len(p.free); n > 0 {
		x := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return x
	}
	return new(T)
}

func (p *pool[T]) put(x *T) {
	p.free = append(p.free, x)
}

// msgPools holds one free list per protocol message type.
type msgPools struct {
	alloc       pool[trsAllocMsg]
	opInfo      pool[trsOperandInfoMsg]
	scalar      pool[trsScalarMsg]
	regConsumer pool[trsRegisterConsumerMsg]
	dataReady   pool[trsDataReadyMsg]
	finished    pool[trsTaskFinishedMsg]

	decode     pool[ortDecodeMsg]
	ortRelease pool[ortReleaseMsg]

	newVersion pool[ovtNewVersionMsg]
	addUse     pool[ovtAddUseMsg]
	decUse     pool[ovtDecUseMsg]
	query      pool[ovtQueryBufMsg]
	releaseAck pool[ovtReleaseAckMsg]
	copyDone   pool[ovtCopyDoneMsg]

	allocReply pool[gwAllocReplyMsg]
	spaceFreed pool[gwSpaceFreedMsg]
	stall      pool[gwStallMsg]
}
