// Package core implements the paper's primary contribution: the distributed
// task superscalar pipeline frontend. A pipeline gateway admits tasks from
// the task-generating thread, object renaming tables (ORTs) map operands to
// their latest versions and producers, object versioning tables (OVTs) track
// live versions and rename output operands to break anti- and output-
// dependencies, and task reservation stations (TRSs) store in-flight task
// meta-data — embedding the task dependency graph — until all operands are
// ready. Ready tasks flow to the execution backend, which drives processor
// cores as functional units.
//
// Modules communicate through an asynchronous point-to-point protocol over
// the on-chip network, reproducing the event flows of Figures 6-9 of the
// paper. Every module charges 16 cycles of packet processing (multiplied by
// the number of operands involved) plus 22 cycles per eDRAM access
// (Table II).
package core

import "fmt"

// TaskID is the unique in-flight task identifier: the TRS index and the slot
// number inside that TRS (the address of the task's main block), e.g.
// <TRS,SLOT> = <1,17> in Figure 6.
type TaskID struct {
	TRS  uint16
	Slot uint32
}

// String renders the tuple as in the paper.
func (id TaskID) String() string { return fmt.Sprintf("<%d,%d>", id.TRS, id.Slot) }

// OperandID identifies one operand of an in-flight task: the task ID plus
// the operand index, e.g. <1,17,0>.
type OperandID struct {
	Task  TaskID
	Index uint8
}

// String renders the tuple as in the paper.
func (id OperandID) String() string {
	return fmt.Sprintf("<%d,%d,%d>", id.Task.TRS, id.Task.Slot, id.Index)
}

// noOperand is the sentinel for "no link" in consumer chains.
var noOperand = OperandID{Task: TaskID{TRS: ^uint16(0), Slot: ^uint32(0)}, Index: ^uint8(0)}

// isNone reports whether the ID is the chain terminator.
func (id OperandID) isNone() bool { return id == noOperand }

// VersionID names a live operand version inside an OVT.
type VersionID struct {
	OVT uint16
	Num uint32
}

// String renders the version for diagnostics.
func (v VersionID) String() string { return fmt.Sprintf("v<%d,%d>", v.OVT, v.Num) }

var noVersion = VersionID{OVT: ^uint16(0), Num: ^uint32(0)}

func (v VersionID) isNone() bool { return v == noVersion }
