package core

import (
	"tasksuperscalar/internal/sim"
)

// verRec is one operand version: usage count, buffer location, link to the
// next (in-place) version waiting on this one, and rename-buffer ownership.
// The OVT is the physical-register-file analogue — it holds only meta-data;
// buffers live in an OS-assigned memory region (§IV.B.4).
//
// Records live in a slab indexed by the open-addressed version table below,
// mirroring the paper's fixed-capacity set-associative eDRAM array: steady
// state allocates nothing, a full table stalls the gateway. A record whose
// creation is stashed behind a full table exists in the "pending" state,
// netting early AddUse/DecUse arrivals and parking buffer queries until the
// creation replays (this replaces the old pendingUses/pendingQueries maps).
type verRec struct {
	id   VersionID
	base uint64
	size uint32

	buf        uint64
	ownsRename bool // buf is a rename buffer owned by this version
	bufBucket  int

	useCount   int
	granted    int // total uses ever granted (release handshake with the ORT)
	totalUses  int // lifetime consumer count (chain-length statistic)
	superseded bool

	hasWaiter bool      // an in-place successor waits for this version to die
	waiter    OperandID // the successor's producer operand

	hasProducer bool
	producer    OperandID

	inPlaceNext    bool // the successor reuses this version's buffer
	copyInFlight   bool
	releasePending bool // ortRelease sent, awaiting ack
	dead           bool

	pending  bool // creation stashed; only pendUses/queries are meaningful
	pendUses int  // net uses that arrived before the stashed creation
	// queries holds consumers that asked for the buffer before creation;
	// the slice's capacity is recycled through the module's query pool.
	queries []OperandID
}

// CopyEngine abstracts the external DMA engine that copies rename buffers
// back to their original object addresses (mem.System implements it). done
// fires when the copy completes; passing a (pooled) typed event keeps the
// per-copy-back path allocation-free.
type CopyEngine interface {
	Copy(src, dst uint64, size uint32, done sim.Event)
}

const (
	// Rename buffers come in power-of-2 sizes from 2^minBucketLog2 (256 B)
	// up to 2^maxBucketLog2; the free lists are a fixed per-log2-size array
	// of stacks (§IV.B.4's OS-assigned region, carved on demand).
	minBucketLog2 = 8
	maxBucketLog2 = 32
)

// ovtSlabChunk sizes the verRec slab's chunks. Chunked growth keeps record
// addresses stable for the lifetime of the module (handlers hold *verRec
// across nested stash replays), while staying index-addressed.
const ovtSlabChunk = 512

// ovtModule is one object versioning table. It tracks live versions,
// breaks anti- and output-dependencies by renaming output operands into
// buffers drawn from power-of-2 buckets, and unblocks chained inout
// versions in order as their predecessors die.
type ovtModule struct {
	fe    *Frontend
	index int
	node  int
	srv   *sim.Server[any]

	capacity int

	// Open-addressed index: version number → slab slot. Linear probing
	// with backward-shift deletion; sized at construction for the table
	// capacity at ≤½ load and regrown only if overload (pending records)
	// ever pushes past that.
	tabMask uint32
	tabKeys []uint32
	tabSlot []int32 // slab index, -1 = empty
	tabUsed int

	slab     [][]verRec // chunked slab; index i → slab[i/chunk][i%chunk]
	slabLen  int
	freeSlab []int32 // free slot stack
	nlive    int     // records in the live (non-pending) state

	stashed sim.FIFO[ovtNewVersionMsg] // deferred creations while full

	// Free rename buffers by log2 size: fixed stacks, refilled by carving
	// 16-buffer chunks from the bump-allocated region.
	buckets [maxBucketLog2 + 1][]uint64
	nextBuf uint64

	qFree []([]OperandID) // recycled pending-query slices

	freeCopyDone *ovtCopyDoneEvent

	// Stats.
	created, released  uint64
	renames            uint64
	copyBacks          uint64
	inPlaceUnblocks    uint64
	stallEvents        uint64
	maxLive            int
	chainLens          []int // total consumers per dead version
	renameBufOut       int   // rename buffers currently allocated
	renameBufHighWater int
}

func newOVT(fe *Frontend, index int) *ovtModule {
	o := &ovtModule{
		fe:       fe,
		index:    index,
		capacity: int(fe.cfg.OVTBytesEach / ovtEntryBytes),
		// Rename buffers live in a private high region per OVT.
		nextBuf: (uint64(1) << 44) + uint64(index)<<40,
	}
	// Size the index for capacity live records at ≤½ load.
	size := uint32(16)
	for size < uint32(2*o.capacity) {
		size <<= 1
	}
	o.tabInit(size)
	o.slab = append(o.slab, make([]verRec, ovtSlabChunk))
	o.srv = sim.NewServer[any](fe.eng, "ovt", o.handle)
	o.srv.SetShardKey(1 + uint32(fe.cfg.NumTRS+fe.cfg.NumORT) + uint32(index))
	return o
}

// --- version index (open addressing) ---

const verHashMul = 0x9E3779B1 // 2^32 / φ, Fibonacci hashing

func (o *ovtModule) tabInit(size uint32) {
	o.tabMask = size - 1
	o.tabKeys = make([]uint32, size)
	o.tabSlot = make([]int32, size)
	for i := range o.tabSlot {
		o.tabSlot[i] = -1
	}
	o.tabUsed = 0
}

func (o *ovtModule) tabHome(num uint32) uint32 {
	return (num * verHashMul) & o.tabMask
}

// rec returns the record (live or pending) for a version number, or nil.
func (o *ovtModule) rec(num uint32) *verRec {
	i := o.tabHome(num)
	for {
		s := o.tabSlot[i]
		if s < 0 {
			return nil
		}
		if o.tabKeys[i] == num {
			return o.slabAt(s)
		}
		i = (i + 1) & o.tabMask
	}
}

func (o *ovtModule) slabAt(i int32) *verRec {
	return &o.slab[i/ovtSlabChunk][i%ovtSlabChunk]
}

// insert binds num to a fresh slab slot and returns the record, zeroed
// except for its recycled queries capacity. Version numbers are unique
// among live+pending records, so no duplicate check is needed.
func (o *ovtModule) insert(num uint32) *verRec {
	if uint32(o.tabUsed)*2 >= uint32(len(o.tabKeys)) {
		o.tabGrow()
	}
	var slot int32
	if n := len(o.freeSlab); n > 0 {
		slot = o.freeSlab[n-1]
		o.freeSlab = o.freeSlab[:n-1]
	} else {
		if o.slabLen == len(o.slab)*ovtSlabChunk {
			o.slab = append(o.slab, make([]verRec, ovtSlabChunk))
		}
		slot = int32(o.slabLen)
		o.slabLen++
	}
	i := o.tabHome(num)
	for o.tabSlot[i] >= 0 {
		i = (i + 1) & o.tabMask
	}
	o.tabKeys[i] = num
	o.tabSlot[i] = slot
	o.tabUsed++
	rec := o.slabAt(slot)
	q := rec.queries[:0]
	*rec = verRec{queries: q}
	return rec
}

// remove deletes num from the index and returns its slab slot to the free
// stack (backward-shift deletion keeps probe chains intact).
func (o *ovtModule) remove(num uint32) {
	i := o.tabHome(num)
	for o.tabKeys[i] != num || o.tabSlot[i] < 0 {
		i = (i + 1) & o.tabMask
	}
	o.freeSlab = append(o.freeSlab, o.tabSlot[i])
	mask := o.tabMask
	j := i
	for {
		o.tabSlot[i] = -1
		for {
			j = (j + 1) & mask
			if o.tabSlot[j] < 0 {
				o.tabUsed--
				return
			}
			home := o.tabHome(o.tabKeys[j])
			if (j-home)&mask >= (j-i)&mask {
				break
			}
		}
		o.tabKeys[i] = o.tabKeys[j]
		o.tabSlot[i] = o.tabSlot[j]
		i = j
	}
}

// tabGrow doubles the index (overload only: the construction size already
// covers the full live capacity at ½ load).
func (o *ovtModule) tabGrow() {
	oldKeys, oldSlot := o.tabKeys, o.tabSlot
	o.tabInit(uint32(len(oldKeys)) * 2)
	for i, s := range oldSlot {
		if s < 0 {
			continue
		}
		j := o.tabHome(oldKeys[i])
		for o.tabSlot[j] >= 0 {
			j = (j + 1) & o.tabMask
		}
		o.tabKeys[j] = oldKeys[i]
		o.tabSlot[j] = s
		o.tabUsed++
	}
}

// pendingRec returns the pending record for num, creating it if absent.
func (o *ovtModule) pendingRec(num uint32) *verRec {
	if r := o.rec(num); r != nil {
		return r
	}
	r := o.insert(num)
	r.pending = true
	return r
}

// pendingCount returns the number of pending (stash-shadow) records; used
// by tests and leak checks.
func (o *ovtModule) pendingCount() int { return o.tabUsed - o.nlive }

// --- message handling ---

func (o *ovtModule) handle(m any) sim.Cycle {
	switch msg := m.(type) {
	case *ovtNewVersionMsg:
		v := *msg
		o.fe.pools.newVersion.put(msg)
		return o.handleNewVersion(v, false)
	case *ovtAddUseMsg:
		v := *msg
		o.fe.pools.addUse.put(msg)
		return o.handleAddUse(v)
	case *ovtDecUseMsg:
		v := *msg
		o.fe.pools.decUse.put(msg)
		return o.handleDecUse(v)
	case *ovtQueryBufMsg:
		v := *msg
		o.fe.pools.query.put(msg)
		return o.handleQuery(v)
	case *ovtReleaseAckMsg:
		v := *msg
		o.fe.pools.releaseAck.put(msg)
		return o.handleReleaseAck(v)
	case *ovtCopyDoneMsg:
		v := *msg
		o.fe.pools.copyDone.put(msg)
		return o.handleCopyDone(v)
	default:
		panic("ovt: unknown message")
	}
}

// bucketFor returns the power-of-2 bucket index for a size.
func bucketFor(size uint32) int {
	b := minBucketLog2 // minimum 256 B buffers
	for (uint32(1) << b) < size {
		b++
	}
	return b
}

// allocBuffer grabs a rename buffer from the appropriate free stack,
// refilling the stack from the OS-assigned region when empty.
func (o *ovtModule) allocBuffer(size uint32) (uint64, int) {
	b := bucketFor(size)
	free := o.buckets[b]
	if len(free) == 0 {
		// Refill: carve a chunk of 16 buffers from the region.
		sz := uint64(1) << b
		for i := 0; i < 16; i++ {
			free = append(free, o.nextBuf)
			o.nextBuf += sz
		}
	}
	buf := free[len(free)-1]
	o.buckets[b] = free[:len(free)-1]
	o.renameBufOut++
	if o.renameBufOut > o.renameBufHighWater {
		o.renameBufHighWater = o.renameBufOut
	}
	return buf, b
}

func (o *ovtModule) freeBuffer(buf uint64, bucket int) {
	o.buckets[bucket] = append(o.buckets[bucket], buf)
	o.renameBufOut--
}

func (o *ovtModule) handleNewVersion(m ovtNewVersionMsg, replay bool) sim.Cycle {
	cost := o.fe.cfg.ProcCycles + o.fe.cfg.EDRAMCycles
	if o.nlive >= o.capacity {
		o.stashed.Push(m)
		if !replay {
			o.stallEvents++
			o.fe.setStall(stallSrcOVT(o.index), true)
		}
		return cost
	}
	rec := o.rec(m.v.Num)
	var queries []OperandID
	p := 0
	if rec != nil {
		// A pending shadow exists: absorb its netted uses and take its
		// parked queries (answered below, once the buffer is known).
		p = rec.pendUses
		queries = rec.queries
		rec.queries = nil
	} else {
		rec = o.insert(m.v.Num)
	}
	*rec = verRec{
		id:          m.v,
		base:        m.base,
		size:        m.size,
		useCount:    int(m.initialUse),
		granted:     int(m.initialUse),
		hasProducer: m.hasProducer,
		producer:    m.producer,
		queries:     rec.queries[:0],
	}
	if !m.hasProducer {
		// Producer-less (memory) versions: the initial reader counts as
		// a chained consumer for the chain-length statistic.
		rec.totalUses = int(m.initialUse)
	}
	o.nlive++
	o.created++
	if o.nlive > o.maxLive {
		o.maxLive = o.nlive
	}
	if p != 0 {
		// p may be negative when holders finished before the stashed
		// creation was processed. Grants only count positive additions.
		rec.useCount += p
		if p > 0 {
			rec.granted += p
			rec.totalUses += p
		}
	}

	// createVersion runs the Figure 7–9 flows and returns the buffer the
	// version resolved to; parked queries are answered last, preserving
	// the message order of the pre-arena implementation (the record may
	// die and its slab slot be reused during nested stash replays, so the
	// buffer value is captured rather than re-read).
	buf := o.createVersion(m, rec)
	for _, c := range queries {
		o.sendDataReady(c, buf, false)
	}
	if queries != nil {
		o.qFree = append(o.qFree, queries[:0])
	}
	return cost
}

// createVersion services the body of a version creation once admitted; it
// returns the buffer address the version starts with.
func (o *ovtModule) createVersion(m ovtNewVersionMsg, rec *verRec) uint64 {
	if !m.hasPrev {
		// First version of the object: data lives at the home address.
		rec.buf = m.base
		if m.hasProducer {
			// Output buffer is immediately available.
			o.grantOutput(rec)
		}
		o.maybeRelease(rec)
		return rec.buf
	}

	prev := o.rec(m.prev.Num)
	if prev == nil || prev.pending {
		panic("ovt: new version supersedes unknown version")
	}
	prev.superseded = true
	prev.inPlaceNext = m.inPlace
	if m.inPlace {
		// True-dependency chain (inout, or renaming disabled): reuse the
		// previous buffer and wait for the previous version to die.
		if prev.copyInFlight {
			// The previous buffer is being copied home; the successor
			// will find the data at the home address once it unblocks.
			rec.buf = prev.base
			prev.inPlaceNext = false // prev frees its own buffer
		} else {
			rec.buf = prev.buf
			rec.ownsRename = prev.ownsRename // ownership transfers at death
			rec.bufBucket = prev.bufBucket
		}
		prev.hasWaiter = true
		prev.waiter = m.producer
		buf := rec.buf
		o.maybeRelease(prev)
		o.maybeReleaseByNum(m.v.Num)
		return buf
	}
	// Renamed output: fresh buffer, ready immediately (Figure 7).
	buf, bucket := o.allocBuffer(m.size)
	rec.buf = buf
	rec.ownsRename = true
	rec.bufBucket = bucket
	o.renames++
	o.grantOutput(rec)
	o.maybeRelease(prev)
	o.maybeReleaseByNum(m.v.Num)
	return buf
}

// maybeReleaseByNum advances the new version's lifecycle only if it is
// still live. maybeRelease(prev) above can cascade into nested stash
// replays that supersede and retire the version being created (its netted
// use count may already be zero under overload) — its slab slot is then
// recycled, so the held pointer must not be touched again. The pre-arena
// code reached the same outcome through the dead-record guard on a stable
// heap record; re-resolving by version number is the arena equivalent.
func (o *ovtModule) maybeReleaseByNum(num uint32) {
	if r := o.rec(num); r != nil && !r.pending {
		o.maybeRelease(r)
	}
}

// sendDataReady ships one pooled readiness notification to an operand's TRS.
func (o *ovtModule) sendDataReady(op OperandID, buf uint64, output bool) {
	dm := o.fe.pools.dataReady.get()
	*dm = trsDataReadyMsg{op: op, buf: buf, output: output}
	o.fe.sendToTRS(o.node, int(op.Task.TRS), dm)
}

// grantOutput tells the producer's TRS that the output buffer is available.
func (o *ovtModule) grantOutput(rec *verRec) {
	o.sendDataReady(rec.producer, rec.buf, true)
}

func (o *ovtModule) handleAddUse(m ovtAddUseMsg) sim.Cycle {
	rec := o.rec(m.v.Num)
	if rec == nil || rec.pending {
		// The version's creation is stashed behind a full table; hold
		// the use until it replays.
		o.pendingRec(m.v.Num).pendUses++
		return o.fe.cfg.ProcCycles + o.fe.cfg.EDRAMCycles
	}
	rec.useCount++
	rec.granted++
	rec.totalUses++
	return o.fe.cfg.ProcCycles + o.fe.cfg.EDRAMCycles
}

func (o *ovtModule) handleDecUse(m ovtDecUseMsg) sim.Cycle {
	rec := o.rec(m.v.Num)
	if rec == nil || rec.pending {
		// The version's creation is stashed behind a full table and its
		// holder already finished (ORT-miss readers are ready at
		// decode). Net the release against the pending creation.
		o.pendingRec(m.v.Num).pendUses--
		return o.fe.cfg.ProcCycles + o.fe.cfg.EDRAMCycles
	}
	rec.useCount--
	if rec.useCount < 0 {
		panic("ovt: negative use count")
	}
	o.maybeRelease(rec)
	return o.fe.cfg.ProcCycles + o.fe.cfg.EDRAMCycles
}

func (o *ovtModule) handleQuery(m ovtQueryBufMsg) sim.Cycle {
	rec := o.rec(m.v.Num)
	if rec == nil || rec.pending {
		// Creation stashed: answer when it replays.
		p := o.pendingRec(m.v.Num)
		if p.queries == nil {
			if n := len(o.qFree); n > 0 {
				p.queries = o.qFree[n-1]
				o.qFree = o.qFree[:n-1]
			}
		}
		p.queries = append(p.queries, m.consumer)
		return o.fe.cfg.ProcCycles + o.fe.cfg.EDRAMCycles
	}
	o.sendDataReady(m.consumer, rec.buf, false)
	return o.fe.cfg.ProcCycles + o.fe.cfg.EDRAMCycles
}

// maybeRelease advances a version's lifecycle when its use count reaches
// zero: superseded versions die (notifying any in-place waiter); the latest
// version of an object is copied back to its home address (if renamed) and
// its ORT entry released.
func (o *ovtModule) maybeRelease(rec *verRec) {
	if rec.useCount != 0 || rec.dead || rec.copyInFlight {
		return
	}
	if rec.superseded {
		o.die(rec)
		return
	}
	if rec.ownsRename {
		// Idle latest version in a rename buffer: copy the data back to
		// the original object address with the external DMA engine.
		rec.copyInFlight = true
		o.copyBacks++
		ev := o.freeCopyDone
		if ev == nil {
			ev = &ovtCopyDoneEvent{o: o}
		} else {
			o.freeCopyDone = ev.next
			ev.next = nil
		}
		ev.v = rec.id
		o.fe.copyEngine.Copy(rec.buf, rec.base, rec.size, ev)
		return
	}
	if !rec.releasePending {
		rec.releasePending = true
		rm := o.fe.pools.ortRelease.get()
		*rm = ortReleaseMsg{base: rec.base, version: rec.id, granted: rec.granted}
		o.fe.sendToORT(o.node, o.index, rm)
	}
}

// ovtCopyDoneMsg is the internal completion event of a DMA copy-back.
type ovtCopyDoneMsg struct{ v VersionID }

// ovtCopyDoneEvent adapts a DMA completion to the module's message queue;
// instances recycle through the module's free list so copy-backs do not
// allocate.
type ovtCopyDoneEvent struct {
	o    *ovtModule
	v    VersionID
	next *ovtCopyDoneEvent
}

// Fire implements sim.Event: it recycles itself, then submits the pooled
// copy-done message.
func (ev *ovtCopyDoneEvent) Fire() {
	o, v := ev.o, ev.v
	ev.next = o.freeCopyDone
	o.freeCopyDone = ev
	cm := o.fe.pools.copyDone.get()
	*cm = ovtCopyDoneMsg{v: v}
	o.srv.Submit(cm)
}

func (o *ovtModule) handleCopyDone(m ovtCopyDoneMsg) sim.Cycle {
	rec := o.rec(m.v.Num)
	if rec == nil || rec.pending {
		return o.fe.cfg.ProcCycles
	}
	rec.copyInFlight = false
	if rec.ownsRename {
		o.freeBuffer(rec.buf, rec.bufBucket)
		rec.ownsRename = false
	}
	rec.buf = rec.base
	o.maybeRelease(rec)
	return o.fe.cfg.ProcCycles
}

// die removes a superseded version: frees its rename buffer (unless the
// successor took ownership) and unblocks an in-place successor.
func (o *ovtModule) die(rec *verRec) {
	rec.dead = true
	if o.fe.cfg.RecordChains {
		o.chainLens = append(o.chainLens, rec.totalUses)
	}
	if rec.ownsRename && !rec.inPlaceNext {
		o.freeBuffer(rec.buf, rec.bufBucket)
		rec.ownsRename = false
	}
	if rec.hasWaiter {
		// Figure 9: "data ready for output" once all users of the
		// previous version finished.
		o.inPlaceUnblocks++
		o.sendDataReady(rec.waiter, rec.buf, true)
	}
	o.remove(rec.id.Num)
	o.nlive--
	o.released++
	o.replayStashed()
}

func (o *ovtModule) handleReleaseAck(m ovtReleaseAckMsg) sim.Cycle {
	rec := o.rec(m.v.Num)
	cost := o.fe.cfg.ProcCycles
	if rec == nil || rec.pending {
		return cost
	}
	rec.releasePending = false
	if m.freed {
		// The ORT freed the entry with grant counts matching: no use of
		// this version can exist or arrive. Retire the record.
		if rec.useCount != 0 {
			panic("ovt: freed entry with live uses")
		}
		rec.superseded = true
		o.die(rec)
		return cost
	}
	// The entry changed since we observed the version idle: either an
	// AddUse is in flight (it will arrive and its DecUse re-triggers the
	// release) or a newer version superseded us (its NewVersion message
	// will arrive and retire this record). Either way a pending message
	// re-triggers the lifecycle; do not spin on releases here.
	return cost
}

// replayStashed admits deferred version creations after a release.
func (o *ovtModule) replayStashed() {
	for o.stashed.Len() > 0 && o.nlive < o.capacity {
		m := o.stashed.Pop()
		o.handleNewVersion(m, true)
	}
	if o.stashed.Len() == 0 {
		o.fe.setStall(stallSrcOVT(o.index), false)
	}
}

// live returns the number of live version records.
func (o *ovtModule) live() int { return o.nlive }
