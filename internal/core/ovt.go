package core

import (
	"tasksuperscalar/internal/sim"
)

// verRec is one live operand version: usage count, buffer location, link to
// the next (in-place) version waiting on this one, and rename-buffer
// ownership. The OVT is the physical-register-file analogue — it holds only
// meta-data; buffers live in an OS-assigned memory region (§IV.B.4).
type verRec struct {
	id   VersionID
	base uint64
	size uint32

	buf        uint64
	ownsRename bool // buf is a rename buffer owned by this version
	bufBucket  int

	useCount   int
	granted    int // total uses ever granted (release handshake with the ORT)
	totalUses  int // lifetime consumer count (chain-length statistic)
	superseded bool

	hasWaiter bool      // an in-place successor waits for this version to die
	waiter    OperandID // the successor's producer operand

	hasProducer bool
	producer    OperandID

	inPlaceNext    bool // the successor reuses this version's buffer
	copyInFlight   bool
	releasePending bool // ortRelease sent, awaiting ack
	dead           bool
}

// CopyEngine abstracts the external DMA engine that copies rename buffers
// back to their original object addresses (mem.System implements it).
type CopyEngine interface {
	Copy(src, dst uint64, size uint32, then func())
}

// ovtModule is one object versioning table. It tracks live versions,
// breaks anti- and output-dependencies by renaming output operands into
// buffers drawn from power-of-2 buckets, and unblocks chained inout
// versions in order as their predecessors die.
type ovtModule struct {
	fe    *Frontend
	index int
	node  int
	srv   *sim.Server[any]

	capacity int
	recs     map[uint32]*verRec
	stashed  []ovtNewVersionMsg // deferred creations while full
	// pendingUses and pendingQueries buffer messages that arrive for a
	// version whose creation is still stashed.
	pendingUses    map[uint32]int
	pendingQueries map[uint32][]OperandID

	buckets map[int][]uint64 // free rename buffers by log2 size
	nextBuf uint64           // bump allocator for fresh bucket chunks

	// Stats.
	created, released  uint64
	renames            uint64
	copyBacks          uint64
	inPlaceUnblocks    uint64
	stallEvents        uint64
	maxLive            int
	chainLens          []int // total consumers per dead version
	renameBufOut       int   // rename buffers currently allocated
	renameBufHighWater int
}

func newOVT(fe *Frontend, index int) *ovtModule {
	o := &ovtModule{
		fe:       fe,
		index:    index,
		capacity: int(fe.cfg.OVTBytesEach / ovtEntryBytes),
		recs:     make(map[uint32]*verRec),
		buckets:  make(map[int][]uint64),
		// Rename buffers live in a private high region per OVT.
		nextBuf:        (uint64(1) << 44) + uint64(index)<<40,
		pendingUses:    make(map[uint32]int),
		pendingQueries: make(map[uint32][]OperandID),
	}
	o.srv = sim.NewServer[any](fe.eng, "ovt", o.handle)
	return o
}

func (o *ovtModule) handle(m any) sim.Cycle {
	switch msg := m.(type) {
	case *ovtNewVersionMsg:
		v := *msg
		o.fe.pools.newVersion.put(msg)
		return o.handleNewVersion(v, false)
	case *ovtAddUseMsg:
		v := *msg
		o.fe.pools.addUse.put(msg)
		return o.handleAddUse(v)
	case *ovtDecUseMsg:
		v := *msg
		o.fe.pools.decUse.put(msg)
		return o.handleDecUse(v)
	case *ovtQueryBufMsg:
		v := *msg
		o.fe.pools.query.put(msg)
		return o.handleQuery(v)
	case *ovtReleaseAckMsg:
		v := *msg
		o.fe.pools.releaseAck.put(msg)
		return o.handleReleaseAck(v)
	case *ovtCopyDoneMsg:
		v := *msg
		o.fe.pools.copyDone.put(msg)
		return o.handleCopyDone(v)
	default:
		panic("ovt: unknown message")
	}
}

// bucketFor returns the power-of-2 bucket index for a size.
func bucketFor(size uint32) int {
	b := 8 // minimum 256 B buffers
	for (uint32(1) << b) < size {
		b++
	}
	return b
}

// allocBuffer grabs a rename buffer from the appropriate bucket, refilling
// the bucket from the OS-assigned region when empty.
func (o *ovtModule) allocBuffer(size uint32) (uint64, int) {
	b := bucketFor(size)
	free := o.buckets[b]
	if len(free) == 0 {
		// Refill: carve a chunk of 16 buffers from the region.
		sz := uint64(1) << b
		for i := 0; i < 16; i++ {
			free = append(free, o.nextBuf)
			o.nextBuf += sz
		}
	}
	buf := free[len(free)-1]
	o.buckets[b] = free[:len(free)-1]
	o.renameBufOut++
	if o.renameBufOut > o.renameBufHighWater {
		o.renameBufHighWater = o.renameBufOut
	}
	return buf, b
}

func (o *ovtModule) freeBuffer(buf uint64, bucket int) {
	o.buckets[bucket] = append(o.buckets[bucket], buf)
	o.renameBufOut--
}

func (o *ovtModule) handleNewVersion(m ovtNewVersionMsg, replay bool) sim.Cycle {
	cost := o.fe.cfg.ProcCycles + o.fe.cfg.EDRAMCycles
	if len(o.recs) >= o.capacity {
		o.stashed = append(o.stashed, m)
		if !replay {
			o.stallEvents++
			o.fe.setStall(stallSrcOVT(o.index), true)
		}
		return cost
	}
	rec := &verRec{
		id:          m.v,
		base:        m.base,
		size:        m.size,
		useCount:    int(m.initialUse),
		granted:     int(m.initialUse),
		hasProducer: m.hasProducer,
		producer:    m.producer,
	}
	if !m.hasProducer {
		// Producer-less (memory) versions: the initial reader counts as
		// a chained consumer for the chain-length statistic.
		rec.totalUses = int(m.initialUse)
	}
	o.recs[m.v.Num] = rec
	o.created++
	if len(o.recs) > o.maxLive {
		o.maxLive = len(o.recs)
	}
	if p, ok := o.pendingUses[m.v.Num]; ok {
		// p may be negative when holders finished before the stashed
		// creation was processed. Grants only count positive additions.
		rec.useCount += p
		if p > 0 {
			rec.granted += p
			rec.totalUses += p
		}
		delete(o.pendingUses, m.v.Num)
	}
	if qs := o.pendingQueries[m.v.Num]; len(qs) > 0 {
		// Buffer resolution for consumers that queried before creation:
		// deferred until the buffer is known, at the end of creation.
		defer func() {
			for _, c := range qs {
				o.sendDataReady(c, rec.buf, false)
			}
			delete(o.pendingQueries, m.v.Num)
		}()
	}

	if !m.hasPrev {
		// First version of the object: data lives at the home address.
		rec.buf = m.base
		if m.hasProducer {
			// Output buffer is immediately available.
			o.grantOutput(rec)
		}
		o.maybeRelease(rec)
		return cost
	}

	prev := o.recs[m.prev.Num]
	if prev == nil {
		panic("ovt: new version supersedes unknown version")
	}
	prev.superseded = true
	prev.inPlaceNext = m.inPlace
	if m.inPlace {
		// True-dependency chain (inout, or renaming disabled): reuse the
		// previous buffer and wait for the previous version to die.
		if prev.copyInFlight {
			// The previous buffer is being copied home; the successor
			// will find the data at the home address once it unblocks.
			rec.buf = prev.base
			prev.inPlaceNext = false // prev frees its own buffer
		} else {
			rec.buf = prev.buf
			rec.ownsRename = prev.ownsRename // ownership transfers at death
			rec.bufBucket = prev.bufBucket
		}
		prev.hasWaiter = true
		prev.waiter = m.producer
		o.maybeRelease(prev)
		o.maybeRelease(rec)
		return cost
	}
	// Renamed output: fresh buffer, ready immediately (Figure 7).
	buf, bucket := o.allocBuffer(m.size)
	rec.buf = buf
	rec.ownsRename = true
	rec.bufBucket = bucket
	o.renames++
	o.grantOutput(rec)
	o.maybeRelease(prev)
	o.maybeRelease(rec)
	return cost
}

// sendDataReady ships one pooled readiness notification to an operand's TRS.
func (o *ovtModule) sendDataReady(op OperandID, buf uint64, output bool) {
	dm := o.fe.pools.dataReady.get()
	*dm = trsDataReadyMsg{op: op, buf: buf, output: output}
	o.fe.sendToTRS(o.node, int(op.Task.TRS), dm)
}

// grantOutput tells the producer's TRS that the output buffer is available.
func (o *ovtModule) grantOutput(rec *verRec) {
	o.sendDataReady(rec.producer, rec.buf, true)
}

func (o *ovtModule) handleAddUse(m ovtAddUseMsg) sim.Cycle {
	rec := o.recs[m.v.Num]
	if rec == nil {
		// The version's creation is stashed behind a full table; hold
		// the use until it replays.
		o.pendingUses[m.v.Num]++
		return o.fe.cfg.ProcCycles + o.fe.cfg.EDRAMCycles
	}
	rec.useCount++
	rec.granted++
	rec.totalUses++
	return o.fe.cfg.ProcCycles + o.fe.cfg.EDRAMCycles
}

func (o *ovtModule) handleDecUse(m ovtDecUseMsg) sim.Cycle {
	rec := o.recs[m.v.Num]
	if rec == nil {
		// The version's creation is stashed behind a full table and its
		// holder already finished (ORT-miss readers are ready at
		// decode). Net the release against the pending creation.
		o.pendingUses[m.v.Num]--
		return o.fe.cfg.ProcCycles + o.fe.cfg.EDRAMCycles
	}
	rec.useCount--
	if rec.useCount < 0 {
		panic("ovt: negative use count")
	}
	o.maybeRelease(rec)
	return o.fe.cfg.ProcCycles + o.fe.cfg.EDRAMCycles
}

func (o *ovtModule) handleQuery(m ovtQueryBufMsg) sim.Cycle {
	rec := o.recs[m.v.Num]
	if rec == nil {
		// Creation stashed: answer when it replays.
		o.pendingQueries[m.v.Num] = append(o.pendingQueries[m.v.Num], m.consumer)
		return o.fe.cfg.ProcCycles + o.fe.cfg.EDRAMCycles
	}
	o.sendDataReady(m.consumer, rec.buf, false)
	return o.fe.cfg.ProcCycles + o.fe.cfg.EDRAMCycles
}

// maybeRelease advances a version's lifecycle when its use count reaches
// zero: superseded versions die (notifying any in-place waiter); the latest
// version of an object is copied back to its home address (if renamed) and
// its ORT entry released.
func (o *ovtModule) maybeRelease(rec *verRec) {
	if rec.useCount != 0 || rec.dead || rec.copyInFlight {
		return
	}
	if rec.superseded {
		o.die(rec)
		return
	}
	if rec.ownsRename {
		// Idle latest version in a rename buffer: copy the data back to
		// the original object address with the external DMA engine.
		rec.copyInFlight = true
		src, dst, size := rec.buf, rec.base, rec.size
		id := rec.id
		o.copyBacks++
		o.fe.copyEngine.Copy(src, dst, size, func() {
			cm := o.fe.pools.copyDone.get()
			*cm = ovtCopyDoneMsg{v: id}
			o.srv.Submit(cm)
		})
		return
	}
	if !rec.releasePending {
		rec.releasePending = true
		rm := o.fe.pools.ortRelease.get()
		*rm = ortReleaseMsg{base: rec.base, version: rec.id, granted: rec.granted}
		o.fe.sendToORT(o.node, o.index, rm)
	}
}

// ovtCopyDoneMsg is the internal completion event of a DMA copy-back.
type ovtCopyDoneMsg struct{ v VersionID }

func (o *ovtModule) handleCopyDone(m ovtCopyDoneMsg) sim.Cycle {
	rec := o.recs[m.v.Num]
	if rec == nil {
		return o.fe.cfg.ProcCycles
	}
	rec.copyInFlight = false
	if rec.ownsRename {
		o.freeBuffer(rec.buf, rec.bufBucket)
		rec.ownsRename = false
	}
	rec.buf = rec.base
	o.maybeRelease(rec)
	return o.fe.cfg.ProcCycles
}

// die removes a superseded version: frees its rename buffer (unless the
// successor took ownership) and unblocks an in-place successor.
func (o *ovtModule) die(rec *verRec) {
	rec.dead = true
	if o.fe.cfg.RecordChains {
		o.chainLens = append(o.chainLens, rec.totalUses)
	}
	if rec.ownsRename && !rec.inPlaceNext {
		o.freeBuffer(rec.buf, rec.bufBucket)
		rec.ownsRename = false
	}
	if rec.hasWaiter {
		// Figure 9: "data ready for output" once all users of the
		// previous version finished.
		o.inPlaceUnblocks++
		o.sendDataReady(rec.waiter, rec.buf, true)
	}
	delete(o.recs, rec.id.Num)
	o.released++
	o.replayStashed()
}

func (o *ovtModule) handleReleaseAck(m ovtReleaseAckMsg) sim.Cycle {
	rec := o.recs[m.v.Num]
	cost := o.fe.cfg.ProcCycles
	if rec == nil {
		return cost
	}
	rec.releasePending = false
	if m.freed {
		// The ORT freed the entry with grant counts matching: no use of
		// this version can exist or arrive. Retire the record.
		if rec.useCount != 0 {
			panic("ovt: freed entry with live uses")
		}
		rec.superseded = true
		o.die(rec)
		return cost
	}
	// The entry changed since we observed the version idle: either an
	// AddUse is in flight (it will arrive and its DecUse re-triggers the
	// release) or a newer version superseded us (its NewVersion message
	// will arrive and retire this record). Either way a pending message
	// re-triggers the lifecycle; do not spin on releases here.
	return cost
}

// replayStashed admits deferred version creations after a release.
func (o *ovtModule) replayStashed() {
	for len(o.stashed) > 0 && len(o.recs) < o.capacity {
		m := o.stashed[0]
		o.stashed = o.stashed[1:]
		o.handleNewVersion(m, true)
	}
	if len(o.stashed) == 0 {
		o.fe.setStall(stallSrcOVT(o.index), false)
	}
}

// live returns the number of live version records.
func (o *ovtModule) live() int { return len(o.recs) }
