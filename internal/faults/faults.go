// Package faults is a deterministic, seeded fault-injection layer for the
// service's chaos harness.
//
// An Injector is created from a seed and a Plan: per injection Point, the
// probability that a call faults and the mix of fault Kinds it draws from.
// Every decision is a pure function of (seed, point, call index) — no global
// randomness, no time — so a chaos schedule replays identically from its
// seed: the Nth store write under seed 7 is torn on every run, or never.
//
// The package knows nothing about the service; callers thread an Injector
// through the seams they want to shake. Transport wraps an
// http.RoundTripper so every dispatcher→worker request (and the SSE relay
// stream riding on it) can be dropped, delayed, answered with a synthetic
// 5xx, or cut mid-stream; the persistent result store consults StoreWrite to
// tear a write short, modeling a crash between write and fsync. Process-level
// events (killing a worker, crashing the dispatcher) are orchestrated by the
// harness itself from the same seed — an injector cannot kill its host.
//
// A nil *Injector is valid everywhere and injects nothing, so production
// paths pay one nil check.
package faults

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the injectable fault kinds.
type Kind int

const (
	// None: the call proceeds untouched.
	None Kind = iota
	// Drop fails the operation outright, as a severed connection would
	// (surfaces to http.Client callers as a transport error).
	Drop
	// Delay stalls the operation for a seeded duration within the point's
	// MaxDelay, then lets it proceed.
	Delay
	// Err5xx answers the request with a synthetic 500 before it reaches the
	// server — the shape of a dying proxy or an OOM-killed peer.
	Err5xx
	// Cut truncates the response body after a seeded number of bytes —
	// mid-stream for SSE, mid-payload for JSON — and then errors the read.
	Cut
	// Torn truncates a write to a seeded prefix, modeling a crash after the
	// write started but before it (and its fsync) completed.
	Torn
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Err5xx:
		return "5xx"
	case Cut:
		return "cut"
	case Torn:
		return "torn"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Point names one injection seam. Decisions are independent per point: each
// keeps its own call counter, so adding traffic at one point never perturbs
// the fault schedule of another.
type Point string

const (
	// RPC is consulted once per dispatcher→worker HTTP request.
	RPC Point = "rpc"
	// Stream is consulted once per dispatcher→worker HTTP response and cuts
	// its body (the SSE relay is the interesting victim).
	Stream Point = "stream"
	// StoreWrite is consulted once per persistent-store envelope write.
	StoreWrite Point = "store.write"
	// Heartbeat is consulted once per worker→dispatcher heartbeat request.
	Heartbeat Point = "heartbeat"
)

// Spec is one point's fault mix.
type Spec struct {
	// P is the probability in [0,1] that a call at this point faults.
	P float64
	// Kinds is the set a faulting call draws from, uniformly. Empty means
	// the point never faults regardless of P.
	Kinds []Kind
	// MaxDelay bounds Delay faults (default 20ms).
	MaxDelay time.Duration
	// CutAfter bounds how many body bytes a Cut lets through (default 1024;
	// the actual count is seeded in [0, CutAfter)).
	CutAfter int
	// TornAfter bounds how many bytes a Torn write keeps (default 64; the
	// actual prefix is seeded in [0, TornAfter)).
	TornAfter int
}

// Plan maps each injection point to its fault mix. Points absent from the
// plan never fault.
type Plan map[Point]Spec

// Fault is one injection decision.
type Fault struct {
	Kind Kind
	// Delay is the stall for Delay faults.
	Delay time.Duration
	// After is the byte prefix for Cut and Torn faults.
	After int
}

// Injector makes deterministic fault decisions. Safe for concurrent use; a
// nil *Injector never faults.
type Injector struct {
	seed uint64
	plan Plan

	mu       sync.Mutex
	calls    map[Point]uint64
	injected map[Point]uint64
}

// New returns an injector whose decisions are a pure function of seed and
// the per-point call index.
func New(seed int64, plan Plan) *Injector {
	return &Injector{
		seed:     uint64(seed),
		plan:     plan,
		calls:    make(map[Point]uint64),
		injected: make(map[Point]uint64),
	}
}

// splitmix64 is the SplitMix64 mixer: a bijective avalanche over uint64,
// here used to hash (seed, point, call index) into decision bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashPoint folds a point name into the seed stream.
func hashPoint(p Point) uint64 {
	h := uint64(14695981039346656037) // FNV offset basis
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return h
}

// At makes the decision for the next call at point p. Each call consumes one
// index, whether or not it faults.
func (in *Injector) At(p Point) Fault {
	if in == nil {
		return Fault{}
	}
	in.mu.Lock()
	n := in.calls[p]
	in.calls[p] = n + 1
	in.mu.Unlock()

	spec, ok := in.plan[p]
	if !ok || spec.P <= 0 || len(spec.Kinds) == 0 {
		return Fault{}
	}
	// Three independent streams from one (seed, point, index) state: the
	// fault coin, the kind pick, and the kind's magnitude.
	s := splitmix64(in.seed ^ hashPoint(p) ^ (n * 0x9e3779b97f4a7c15))
	r1 := splitmix64(s)
	r2 := splitmix64(r1)
	r3 := splitmix64(r2)

	if float64(r1>>11)/float64(1<<53) >= spec.P {
		return Fault{}
	}
	f := Fault{Kind: spec.Kinds[r2%uint64(len(spec.Kinds))]}
	switch f.Kind {
	case Delay:
		max := spec.MaxDelay
		if max <= 0 {
			max = 20 * time.Millisecond
		}
		f.Delay = time.Duration(r3 % uint64(max))
	case Cut:
		max := spec.CutAfter
		if max <= 0 {
			max = 1024
		}
		f.After = int(r3 % uint64(max))
	case Torn:
		max := spec.TornAfter
		if max <= 0 {
			max = 64
		}
		f.After = int(r3 % uint64(max))
	}
	in.mu.Lock()
	in.injected[p]++
	in.mu.Unlock()
	return f
}

// Injected reports how many calls at p actually faulted — the harness's
// evidence that a schedule exercised the seam at all.
func (in *Injector) Injected(p Point) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected[p]
}

// Transport wraps an http.RoundTripper with fault injection: Point is
// consulted per request (Drop, Delay, Err5xx), StreamPoint — when set — per
// response, to Cut its body. A zero Base uses http.DefaultTransport.
type Transport struct {
	Base        http.RoundTripper
	In          *Injector
	Point       Point
	StreamPoint Point
}

// NewTransport builds a fault-injecting transport over base (nil =
// http.DefaultTransport). stream may be empty to leave response bodies
// untouched.
func NewTransport(base http.RoundTripper, in *Injector, p, stream Point) *Transport {
	return &Transport{Base: base, In: in, Point: p, StreamPoint: stream}
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// droppedError marks an injected connection drop; it satisfies net-style
// temporariness checks only by being a generic transport error.
type droppedError struct{ p Point }

func (e droppedError) Error() string { return fmt.Sprintf("faults: %s connection dropped", e.p) }

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch f := t.In.At(t.Point); f.Kind {
	case Drop:
		return nil, droppedError{t.Point}
	case Err5xx:
		return &http.Response{
			StatusCode: http.StatusInternalServerError,
			Status:     "500 Internal Server Error (injected)",
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"text/plain"}},
			Body:    io.NopCloser(strings.NewReader("fault injected\n")),
			Request: req,
		}, nil
	case Delay:
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(f.Delay):
		}
	}
	resp, err := t.base().RoundTrip(req)
	if err != nil || t.StreamPoint == "" {
		return resp, err
	}
	if f := t.In.At(t.StreamPoint); f.Kind == Cut {
		resp.Body = &cutBody{rc: resp.Body, left: f.After, p: t.StreamPoint}
	}
	return resp, nil
}

// cutBody lets `left` bytes through, then errors every read — a stream
// severed mid-flight.
type cutBody struct {
	rc   io.ReadCloser
	left int
	p    Point
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, fmt.Errorf("faults: %s stream cut mid-flight", b.p)
	}
	if len(p) > b.left {
		p = p[:b.left]
	}
	n, err := b.rc.Read(p)
	b.left -= n
	if err == nil && b.left <= 0 {
		err = fmt.Errorf("faults: %s stream cut mid-flight", b.p)
	}
	return n, err
}

func (b *cutBody) Close() error { return b.rc.Close() }

// SleepCtx sleeps for d or until ctx ends, reporting whether the full sleep
// elapsed. Shared by retry loops that must stay cancellable.
func SleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
