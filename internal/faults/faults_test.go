package faults

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// The determinism contract: two injectors built from the same seed and plan
// make identical decisions call for call, and a different seed diverges.
func TestInjectorDeterministic(t *testing.T) {
	plan := Plan{
		RPC:        {P: 0.5, Kinds: []Kind{Drop, Delay, Err5xx}, MaxDelay: 10 * time.Millisecond},
		StoreWrite: {P: 0.3, Kinds: []Kind{Torn}, TornAfter: 100},
	}
	a, b := New(7, plan), New(7, plan)
	diverged := false
	var faulted int
	for i := 0; i < 1000; i++ {
		for _, p := range []Point{RPC, StoreWrite} {
			fa, fb := a.At(p), b.At(p)
			if fa != fb {
				t.Fatalf("call %d at %s: seed-7 injectors disagree: %+v vs %+v", i, p, fa, fb)
			}
			if fa.Kind != None {
				faulted++
			}
		}
	}
	if faulted == 0 {
		t.Fatal("1000 calls at P=0.5/0.3 injected nothing")
	}
	// A different seed must produce a different schedule somewhere.
	c := New(8, plan)
	a2 := New(7, plan)
	for i := 0; i < 1000; i++ {
		if c.At(RPC) != a2.At(RPC) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("seeds 7 and 8 produced identical 1000-call schedules")
	}
	if a.Injected(RPC) == 0 || a.Injected(StoreWrite) == 0 {
		t.Fatalf("injected counters empty: rpc=%d store=%d", a.Injected(RPC), a.Injected(StoreWrite))
	}
}

// Injection rates should land near the plan's P — a sanity check that the
// fault coin is actually uniform over [0,1).
func TestInjectorRate(t *testing.T) {
	in := New(42, Plan{RPC: {P: 0.2, Kinds: []Kind{Drop}}})
	const n = 5000
	for i := 0; i < n; i++ {
		in.At(RPC)
	}
	got := float64(in.Injected(RPC)) / n
	if got < 0.15 || got > 0.25 {
		t.Fatalf("P=0.2 injected at rate %.3f", got)
	}
}

// A nil injector is the production configuration: every decision is None and
// every counter is zero, with no allocations or panics.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if f := in.At(RPC); f.Kind != None {
		t.Fatalf("nil injector returned %+v", f)
	}
	if n := in.Injected(RPC); n != 0 {
		t.Fatalf("nil injector counted %d injections", n)
	}
	// Points absent from the plan never fault either.
	in2 := New(1, Plan{RPC: {P: 1, Kinds: []Kind{Drop}}})
	for i := 0; i < 100; i++ {
		if f := in2.At(Heartbeat); f.Kind != None {
			t.Fatalf("unplanned point faulted: %+v", f)
		}
	}
}

// Transport behaviour per kind, against a live httptest server.
func TestTransportKinds(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 4096))
	}))
	defer hs.Close()

	get := func(cl *http.Client) (*http.Response, []byte, error) {
		resp, err := cl.Get(hs.URL)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		b, rerr := io.ReadAll(resp.Body)
		return resp, b, rerr
	}

	t.Run("drop", func(t *testing.T) {
		in := New(1, Plan{RPC: {P: 1, Kinds: []Kind{Drop}}})
		cl := &http.Client{Transport: NewTransport(nil, in, RPC, "")}
		if _, _, err := get(cl); err == nil {
			t.Fatal("dropped request succeeded")
		} else if !strings.Contains(err.Error(), "connection dropped") {
			t.Fatalf("drop surfaced as %v", err)
		}
	})

	t.Run("err5xx", func(t *testing.T) {
		in := New(1, Plan{RPC: {P: 1, Kinds: []Kind{Err5xx}}})
		cl := &http.Client{Transport: NewTransport(nil, in, RPC, "")}
		resp, body, err := get(cl)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("injected 5xx arrived as %d", resp.StatusCode)
		}
		if string(body) != "fault injected\n" {
			t.Fatalf("injected body %q", body)
		}
	})

	t.Run("cut", func(t *testing.T) {
		in := New(1, Plan{Stream: {P: 1, Kinds: []Kind{Cut}, CutAfter: 100}})
		cl := &http.Client{Transport: NewTransport(nil, in, RPC, Stream)}
		_, body, err := get(cl)
		if err == nil {
			t.Fatal("cut stream read to EOF")
		}
		if !strings.Contains(err.Error(), "cut mid-flight") {
			t.Fatalf("cut surfaced as %v", err)
		}
		if len(body) >= 4096 {
			t.Fatalf("cut let all %d bytes through", len(body))
		}
	})

	t.Run("delay", func(t *testing.T) {
		in := New(1, Plan{RPC: {P: 1, Kinds: []Kind{Delay}, MaxDelay: 5 * time.Millisecond}})
		cl := &http.Client{Transport: NewTransport(nil, in, RPC, "")}
		resp, body, err := get(cl)
		if err != nil || resp.StatusCode != http.StatusOK || len(body) != 4096 {
			t.Fatalf("delayed request: %v status=%v len=%d", err, resp, len(body))
		}
	})

	t.Run("delay-cancelled", func(t *testing.T) {
		in := New(1, Plan{RPC: {P: 1, Kinds: []Kind{Delay}, MaxDelay: 10 * time.Second}})
		cl := &http.Client{Transport: NewTransport(nil, in, RPC, "")}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, hs.URL, nil)
		if _, err := cl.Do(req); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("cancelled delay returned %v", err)
		}
	})
}

func TestSleepCtx(t *testing.T) {
	if !SleepCtx(context.Background(), 0) {
		t.Fatal("zero sleep on live ctx reported cancellation")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if SleepCtx(ctx, time.Hour) {
		t.Fatal("sleep on dead ctx reported full elapse")
	}
}
