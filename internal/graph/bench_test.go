package graph

import (
	"testing"

	"tasksuperscalar/internal/taskmodel"
)

func benchTasks(n int) []*taskmodel.Task {
	tasks := make([]*taskmodel.Task, n)
	for i := range tasks {
		tasks[i] = &taskmodel.Task{
			Seq:     uint64(i),
			Runtime: 1000,
			Operands: []taskmodel.Operand{
				{Base: taskmodel.Addr(0x1000 * (i % 64)), Size: 64, Dir: taskmodel.In},
				{Base: taskmodel.Addr(0x1000 * ((i * 7) % 64)), Size: 64, Dir: taskmodel.Out},
			},
		}
	}
	return tasks
}

// BenchmarkBuild measures oracle graph construction.
func BenchmarkBuild(b *testing.B) {
	tasks := benchTasks(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(tasks, Options{Renaming: true})
	}
}

// BenchmarkAnalyze measures critical-path and width analytics.
func BenchmarkAnalyze(b *testing.B) {
	g := Build(benchTasks(2000), Options{Renaming: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Analyze()
	}
}
