// Package graph builds the reference inter-task data dependency graph for a
// task stream under sequential semantics. The simulator validates itself
// against this oracle: any execution order the pipeline produces must respect
// the graph. The package also computes parallelism analytics (critical path,
// average and peak parallelism) and renders Figure-1-style DOT output.
package graph

import (
	"fmt"
	"io"
	"sort"

	"tasksuperscalar/internal/taskmodel"
)

// Options control which dependencies become edges.
type Options struct {
	// Renaming mirrors the pipeline's OVT renaming: pure output operands
	// are renamed into fresh buffers, so WaR and WaW edges are not added
	// for them. InOut operands are never renamed (true dependencies) and
	// keep their WaR edges against readers of the previous version.
	// Without renaming, all WaR and WaW edges are included.
	Renaming bool
}

// Graph is a DAG over tasks; node i is the task with Seq i. Edges always
// point from earlier to later tasks (creation order is a topological order).
type Graph struct {
	Tasks []*taskmodel.Task
	// Succ[i] lists direct successors of task i, sorted ascending.
	Succ [][]int32
	// Pred[i] lists direct predecessors of task i, sorted ascending.
	Pred [][]int32
	// EdgeCount is the number of distinct edges.
	EdgeCount int
}

// objState tracks per-object history during construction.
type objState struct {
	lastWriter       int32 // -1 when the object has no in-stream producer yet
	readersSinceLast []int32
}

// Build constructs the dependency graph for tasks in slice order.
func Build(tasks []*taskmodel.Task, opts Options) *Graph {
	g := &Graph{
		Tasks: tasks,
		Succ:  make([][]int32, len(tasks)),
		Pred:  make([][]int32, len(tasks)),
	}
	state := make(map[taskmodel.Addr]*objState)
	get := func(a taskmodel.Addr) *objState {
		s, ok := state[a]
		if !ok {
			s = &objState{lastWriter: -1}
			state[a] = s
		}
		return s
	}

	for i, t := range tasks {
		ti := int32(i)
		preds := map[int32]struct{}{}
		// Phase 1: collect edges against the pre-task state.
		for _, op := range t.Operands {
			if op.Dir == taskmodel.Scalar {
				continue
			}
			s := get(op.Base)
			if op.Dir.Reads() {
				if s.lastWriter >= 0 {
					preds[s.lastWriter] = struct{}{} // RaW
				}
			}
			if op.Dir.Writes() {
				inPlace := op.Dir == taskmodel.InOut || !opts.Renaming
				if inPlace {
					for _, r := range s.readersSinceLast {
						if r != ti {
							preds[r] = struct{}{} // WaR
						}
					}
					if !opts.Renaming && s.lastWriter >= 0 {
						preds[s.lastWriter] = struct{}{} // WaW
					}
				}
			}
		}
		// Phase 2: update state with this task's effects.
		for _, op := range t.Operands {
			if op.Dir == taskmodel.Scalar {
				continue
			}
			s := get(op.Base)
			if op.Dir.Writes() {
				s.lastWriter = ti
				s.readersSinceLast = s.readersSinceLast[:0]
			}
			if op.Dir.Reads() || op.Dir.Writes() {
				// Writers are also recorded as users so future
				// in-place writers wait for them.
				s.readersSinceLast = append(s.readersSinceLast, ti)
			}
		}
		edge := make([]int32, 0, len(preds))
		for p := range preds {
			edge = append(edge, p)
		}
		sort.Slice(edge, func(a, b int) bool { return edge[a] < edge[b] })
		g.Pred[i] = edge
		for _, p := range edge {
			g.Succ[p] = append(g.Succ[p], ti)
		}
		g.EdgeCount += len(edge)
	}
	return g
}

// Roots returns the tasks with no predecessors.
func (g *Graph) Roots() []int {
	var out []int
	for i := range g.Tasks {
		if len(g.Pred[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Analytics summarizes the parallelism embedded in the graph.
type Analytics struct {
	Tasks          int
	Edges          int
	TotalWork      uint64  // sum of task runtimes (cycles)
	CriticalPath   uint64  // longest runtime-weighted path (cycles)
	AvgParallelism float64 // TotalWork / CriticalPath
	PeakWidth      int     // max concurrent tasks under ASAP schedule
	MaxDepth       int     // longest path in hops
}

// Analyze computes runtime-weighted critical path and width statistics.
func (g *Graph) Analyze() Analytics {
	n := len(g.Tasks)
	a := Analytics{Tasks: n, Edges: g.EdgeCount}
	finish := make([]uint64, n)
	depth := make([]int, n)
	type interval struct{ start, end uint64 }
	ivs := make([]interval, n)
	for i, t := range g.Tasks {
		var start uint64
		d := 0
		for _, p := range g.Pred[i] {
			if finish[p] > start {
				start = finish[p]
			}
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		finish[i] = start + t.Runtime
		depth[i] = d
		ivs[i] = interval{start, finish[i]}
		a.TotalWork += t.Runtime
		if finish[i] > a.CriticalPath {
			a.CriticalPath = finish[i]
		}
		if d > a.MaxDepth {
			a.MaxDepth = d
		}
	}
	if a.CriticalPath > 0 {
		a.AvgParallelism = float64(a.TotalWork) / float64(a.CriticalPath)
	}
	// Peak width by event sweep over ASAP intervals.
	type ev struct {
		at    uint64
		delta int
	}
	evs := make([]ev, 0, 2*n)
	for _, iv := range ivs {
		if iv.end == iv.start {
			continue
		}
		evs = append(evs, ev{iv.start, +1}, ev{iv.end, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].delta < evs[j].delta // end before start at same cycle
	})
	cur := 0
	for _, e := range evs {
		cur += e.delta
		if cur > a.PeakWidth {
			a.PeakWidth = cur
		}
	}
	return a
}

// ValidateSchedule checks that observed start times respect every edge:
// a task may only start after all its predecessors finished. start and
// finish are indexed by task Seq. It returns the first violated edge.
func (g *Graph) ValidateSchedule(start, finish []uint64) error {
	if len(start) != len(g.Tasks) || len(finish) != len(g.Tasks) {
		return fmt.Errorf("graph: schedule length %d/%d, want %d", len(start), len(finish), len(g.Tasks))
	}
	for i := range g.Tasks {
		for _, p := range g.Pred[i] {
			if start[i] < finish[p] {
				return fmt.Errorf("graph: task %d started at %d before predecessor %d finished at %d",
					i, start[i], p, finish[p])
			}
		}
	}
	return nil
}

// dotPalette provides fill shades per kernel, echoing Figure 1's shading.
var dotPalette = []string{
	"white", "gray85", "gray70", "gray55", "gray40",
	"lightblue", "lightsalmon", "palegreen", "khaki",
}

// WriteDOT renders the graph in Graphviz DOT format. Nodes are numbered by
// creation order starting at 1 and shaded by kernel, like Figure 1 of the
// paper. reg may be nil; it supplies kernel names for the legend.
func (g *Graph) WriteDOT(w io.Writer, reg *taskmodel.Registry) error {
	if _, err := fmt.Fprintln(w, "digraph tasks {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, "  node [shape=circle style=filled fontsize=10];")
	for i, t := range g.Tasks {
		color := dotPalette[int(t.Kernel)%len(dotPalette)]
		label := fmt.Sprintf("%d", i+1)
		tip := ""
		if reg != nil {
			tip = fmt.Sprintf(" tooltip=\"%s\"", reg.Name(t.Kernel))
		}
		fmt.Fprintf(w, "  t%d [label=\"%s\" fillcolor=\"%s\"%s];\n", i, label, color, tip)
	}
	for i := range g.Tasks {
		for _, s := range g.Succ[i] {
			fmt.Fprintf(w, "  t%d -> t%d;\n", i, s)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
