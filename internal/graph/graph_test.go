package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tasksuperscalar/internal/taskmodel"
)

func task(run uint64, ops ...taskmodel.Operand) *taskmodel.Task {
	return &taskmodel.Task{Runtime: run, Operands: ops}
}

func in(a taskmodel.Addr) taskmodel.Operand {
	return taskmodel.Operand{Base: a, Size: 64, Dir: taskmodel.In}
}
func out(a taskmodel.Addr) taskmodel.Operand {
	return taskmodel.Operand{Base: a, Size: 64, Dir: taskmodel.Out}
}
func inout(a taskmodel.Addr) taskmodel.Operand {
	return taskmodel.Operand{Base: a, Size: 64, Dir: taskmodel.InOut}
}

func seqd(tasks []*taskmodel.Task) []*taskmodel.Task {
	for i, t := range tasks {
		t.Seq = uint64(i)
	}
	return tasks
}

func TestRaWEdge(t *testing.T) {
	tasks := seqd([]*taskmodel.Task{
		task(10, out(0x1000)),
		task(10, in(0x1000)),
	})
	g := Build(tasks, Options{Renaming: true})
	if g.EdgeCount != 1 {
		t.Fatalf("EdgeCount = %d, want 1", g.EdgeCount)
	}
	if len(g.Pred[1]) != 1 || g.Pred[1][0] != 0 {
		t.Fatalf("task 1 preds = %v, want [0]", g.Pred[1])
	}
}

func TestRenamingBreaksWaRWaW(t *testing.T) {
	// reader of A, then writer of A: with renaming no edge; without, WaR.
	tasks := seqd([]*taskmodel.Task{
		task(10, in(0x1000)),
		task(10, out(0x1000)),
	})
	if g := Build(tasks, Options{Renaming: true}); g.EdgeCount != 0 {
		t.Fatalf("renamed WaR: EdgeCount = %d, want 0", g.EdgeCount)
	}
	if g := Build(tasks, Options{Renaming: false}); g.EdgeCount != 1 {
		t.Fatalf("unrenamed WaR: EdgeCount = %d, want 1", g.EdgeCount)
	}
	// writer, writer: WaW only without renaming.
	tasks = seqd([]*taskmodel.Task{
		task(10, out(0x1000)),
		task(10, out(0x1000)),
	})
	if g := Build(tasks, Options{Renaming: true}); g.EdgeCount != 0 {
		t.Fatalf("renamed WaW: EdgeCount = %d, want 0", g.EdgeCount)
	}
	if g := Build(tasks, Options{Renaming: false}); g.EdgeCount != 1 {
		t.Fatalf("unrenamed WaW: EdgeCount = %d, want 1", g.EdgeCount)
	}
}

func TestInOutIsNeverRenamed(t *testing.T) {
	// Producer, two readers, then an inout writer. The inout updates the
	// object in place, so it must wait for both readers and the producer
	// even with renaming enabled.
	tasks := seqd([]*taskmodel.Task{
		task(10, out(0x1000)),
		task(10, in(0x1000)),
		task(10, in(0x1000)),
		task(10, inout(0x1000)),
	})
	g := Build(tasks, Options{Renaming: true})
	preds := g.Pred[3]
	if len(preds) != 3 {
		t.Fatalf("inout preds = %v, want [0 1 2]", preds)
	}
}

func TestInOutChainSerializes(t *testing.T) {
	tasks := seqd([]*taskmodel.Task{
		task(10, inout(0x1000)),
		task(10, inout(0x1000)),
		task(10, inout(0x1000)),
	})
	g := Build(tasks, Options{Renaming: true})
	a := g.Analyze()
	if a.CriticalPath != 30 {
		t.Fatalf("inout chain critical path = %d, want 30", a.CriticalPath)
	}
	if a.PeakWidth != 1 {
		t.Fatalf("inout chain peak width = %d, want 1", a.PeakWidth)
	}
}

func TestAnalyzeIndependentTasks(t *testing.T) {
	var tasks []*taskmodel.Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, task(100, out(taskmodel.Addr(0x1000*(i+1)))))
	}
	g := Build(seqd(tasks), Options{Renaming: true})
	a := g.Analyze()
	if a.CriticalPath != 100 {
		t.Fatalf("critical path = %d, want 100", a.CriticalPath)
	}
	if a.PeakWidth != 8 {
		t.Fatalf("peak width = %d, want 8", a.PeakWidth)
	}
	if a.AvgParallelism < 7.9 || a.AvgParallelism > 8.1 {
		t.Fatalf("avg parallelism = %f, want ~8", a.AvgParallelism)
	}
	if a.MaxDepth != 0 {
		t.Fatalf("max depth = %d, want 0", a.MaxDepth)
	}
}

func TestDiamondGraph(t *testing.T) {
	// 0 -> {1,2} -> 3
	tasks := seqd([]*taskmodel.Task{
		task(5, out(0xA000)),
		task(7, in(0xA000), out(0xB000)),
		task(9, in(0xA000), out(0xC000)),
		task(5, in(0xB000), in(0xC000)),
	})
	g := Build(tasks, Options{Renaming: true})
	if got := g.Pred[3]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("diamond join preds = %v, want [1 2]", got)
	}
	a := g.Analyze()
	if a.CriticalPath != 5+9+5 {
		t.Fatalf("critical path = %d, want 19", a.CriticalPath)
	}
	if a.MaxDepth != 2 {
		t.Fatalf("depth = %d, want 2", a.MaxDepth)
	}
	roots := g.Roots()
	if len(roots) != 1 || roots[0] != 0 {
		t.Fatalf("roots = %v, want [0]", roots)
	}
}

func TestValidateSchedule(t *testing.T) {
	tasks := seqd([]*taskmodel.Task{
		task(10, out(0x1000)),
		task(10, in(0x1000)),
	})
	g := Build(tasks, Options{Renaming: true})
	if err := g.ValidateSchedule([]uint64{0, 10}, []uint64{10, 20}); err != nil {
		t.Fatalf("legal schedule rejected: %v", err)
	}
	if err := g.ValidateSchedule([]uint64{0, 5}, []uint64{10, 15}); err == nil {
		t.Fatal("overlapping dependent tasks accepted")
	}
	if err := g.ValidateSchedule([]uint64{0}, []uint64{0}); err == nil {
		t.Fatal("wrong-length schedule accepted")
	}
}

func TestWriteDOT(t *testing.T) {
	var reg taskmodel.Registry
	k := reg.Register("sgemm")
	tasks := seqd([]*taskmodel.Task{
		task(1, out(0x1000)),
		task(1, in(0x1000)),
	})
	tasks[0].Kernel = k
	var buf bytes.Buffer
	g := Build(tasks, Options{Renaming: true})
	if err := g.WriteDOT(&buf, &reg); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"digraph tasks", "t0 -> t1", "label=\"1\"", "label=\"2\""} {
		if !strings.Contains(s, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, s)
		}
	}
}

// Property: edges always point forward (creation order is topological), and
// Succ/Pred are mutually consistent, for random task streams.
func TestGraphWellFormedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		tasks := make([]*taskmodel.Task, n)
		for i := range tasks {
			nops := 1 + rng.Intn(4)
			ops := make([]taskmodel.Operand, nops)
			for j := range ops {
				ops[j] = taskmodel.Operand{
					Base: taskmodel.Addr(0x1000 * (1 + rng.Intn(8))),
					Size: 64,
					Dir:  taskmodel.Dir(rng.Intn(3)),
				}
			}
			tasks[i] = task(uint64(1+rng.Intn(100)), ops...)
		}
		g := Build(seqd(tasks), Options{Renaming: rng.Intn(2) == 0})
		for i := range g.Tasks {
			for _, p := range g.Pred[i] {
				if int(p) >= i {
					return false // edge not forward
				}
				found := false
				for _, s := range g.Succ[p] {
					if int(s) == i {
						found = true
					}
				}
				if !found {
					return false // succ/pred mismatch
				}
			}
		}
		// ASAP schedule from Analyze must validate against the graph.
		finish := make([]uint64, n)
		start := make([]uint64, n)
		for i, tk := range g.Tasks {
			var s uint64
			for _, p := range g.Pred[i] {
				if finish[p] > s {
					s = finish[p]
				}
			}
			start[i] = s
			finish[i] = s + tk.Runtime
		}
		return g.ValidateSchedule(start, finish) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: renaming never adds edges — the renamed graph is a subgraph of
// the unrenamed one.
func TestRenamingSubgraphProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		tasks := make([]*taskmodel.Task, n)
		for i := range tasks {
			ops := []taskmodel.Operand{{
				Base: taskmodel.Addr(0x1000 * (1 + rng.Intn(4))),
				Size: 64,
				Dir:  taskmodel.Dir(rng.Intn(3)),
			}}
			tasks[i] = task(1, ops...)
		}
		seqd(tasks)
		ren := Build(tasks, Options{Renaming: true})
		unren := Build(tasks, Options{Renaming: false})
		if ren.EdgeCount > unren.EdgeCount {
			return false
		}
		for i := range ren.Tasks {
			unrenPreds := map[int32]bool{}
			for _, p := range unren.Pred[i] {
				unrenPreds[p] = true
			}
			for _, p := range ren.Pred[i] {
				if !unrenPreds[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
