package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"tasksuperscalar/internal/taskmodel"
	"tasksuperscalar/internal/workloads"
)

func sampleTrace() *Trace {
	b := workloads.CholeskyN(5, 1)
	return FromTasks(b.Name, b.Reg, b.Tasks)
}

func tracesEqual(a, b *Trace) bool {
	if a.Name != b.Name || len(a.Kernels) != len(b.Kernels) || len(a.Tasks) != len(b.Tasks) {
		return false
	}
	for i := range a.Kernels {
		if a.Kernels[i] != b.Kernels[i] {
			return false
		}
	}
	for i := range a.Tasks {
		ta, tb := a.Tasks[i], b.Tasks[i]
		if ta.Kernel != tb.Kernel || ta.Runtime != tb.Runtime || len(ta.Operands) != len(tb.Operands) {
			return false
		}
		for j := range ta.Operands {
			if ta.Operands[j] != tb.Operands[j] {
				return false
			}
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(tr, got) {
		t.Fatal("binary round trip lost data")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(tr, got) {
		t.Fatal("JSON round trip lost data")
	}
}

func TestMaterializePreservesSemantics(t *testing.T) {
	b := workloads.CholeskyN(5, 1)
	tr := FromTasks(b.Name, b.Reg, b.Tasks)
	reg, tasks := tr.Materialize()
	if len(tasks) != len(b.Tasks) {
		t.Fatalf("materialized %d tasks, want %d", len(tasks), len(b.Tasks))
	}
	for i := range tasks {
		if tasks[i].Runtime != b.Tasks[i].Runtime || tasks[i].Kernel != b.Tasks[i].Kernel {
			t.Fatalf("task %d differs after round trip", i)
		}
		if tasks[i].Seq != uint64(i) {
			t.Fatalf("task %d has Seq %d", i, tasks[i].Seq)
		}
		for j := range tasks[i].Operands {
			if tasks[i].Operands[j] != b.Tasks[i].Operands[j] {
				t.Fatalf("task %d operand %d differs", i, j)
			}
		}
	}
	if reg.Name(0) != b.Reg.Name(0) {
		t.Fatal("kernel names lost")
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("XXXX????"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedBinaryRejected(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 12, len(full) / 2, len(full) - 3} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// Property: binary round trip preserves arbitrary generated traces.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		tr := &Trace{Name: "prop", Kernels: []string{"k0", "k1"}}
		count := int(n%40) + 1
		for i := 0; i < count; i++ {
			task := Task{Kernel: uint32(i % 2), Runtime: uint64(seed)&0xFFFF + uint64(i)}
			for j := 0; j <= i%3; j++ {
				task.Operands = append(task.Operands, Operand{
					Base: uint64(i*4096 + j), Size: uint32(64 + j), Dir: uint8(j % 3),
				})
			}
			tr.Tasks = append(tr.Tasks, task)
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return tracesEqual(tr, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromTasksNilRegistry(t *testing.T) {
	tasks := []*taskmodel.Task{{Runtime: 10}}
	tr := FromTasks("x", nil, tasks)
	if len(tr.Kernels) != 0 || len(tr.Tasks) != 1 {
		t.Fatal("nil registry handling broken")
	}
}
