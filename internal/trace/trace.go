// Package trace serializes task streams so workloads can be generated once
// and replayed across runs and tools — the same role TaskSim's application
// traces play in the paper. Two formats are provided: a compact binary
// format for large traces and JSON for inspection.
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"tasksuperscalar/internal/taskmodel"
)

// magic identifies the binary format ("TSS1").
var magic = [4]byte{'T', 'S', 'S', '1'}

// Trace is a serializable task stream with its kernel names.
type Trace struct {
	Name    string   `json:"name"`
	Kernels []string `json:"kernels"`
	Tasks   []Task   `json:"tasks"`
}

// Task is the serialized form of one task.
type Task struct {
	Kernel   uint32    `json:"kernel"`
	Runtime  uint64    `json:"runtime"`
	Operands []Operand `json:"operands"`
}

// Operand is the serialized operand tuple.
type Operand struct {
	Base uint64 `json:"base"`
	Size uint32 `json:"size"`
	Dir  uint8  `json:"dir"`
}

// FromTasks converts a task list and registry into a Trace.
func FromTasks(name string, reg *taskmodel.Registry, tasks []*taskmodel.Task) *Trace {
	t := &Trace{Name: name}
	if reg != nil {
		for i := 0; i < reg.Len(); i++ {
			t.Kernels = append(t.Kernels, reg.Name(taskmodel.KernelID(i)))
		}
	}
	for _, task := range tasks {
		st := Task{Kernel: uint32(task.Kernel), Runtime: task.Runtime}
		for _, op := range task.Operands {
			st.Operands = append(st.Operands, Operand{
				Base: uint64(op.Base), Size: op.Size, Dir: uint8(op.Dir),
			})
		}
		t.Tasks = append(t.Tasks, st)
	}
	return t
}

// Materialize rebuilds the in-memory task list and registry.
func (t *Trace) Materialize() (*taskmodel.Registry, []*taskmodel.Task) {
	reg := &taskmodel.Registry{}
	for _, k := range t.Kernels {
		reg.Register(k)
	}
	tasks := make([]*taskmodel.Task, len(t.Tasks))
	for i, st := range t.Tasks {
		task := &taskmodel.Task{
			Kernel:  taskmodel.KernelID(st.Kernel),
			Runtime: st.Runtime,
			Seq:     uint64(i),
		}
		for _, op := range st.Operands {
			task.Operands = append(task.Operands, taskmodel.Operand{
				Base: taskmodel.Addr(op.Base), Size: op.Size, Dir: taskmodel.Dir(op.Dir),
			})
		}
		tasks[i] = task
	}
	return reg, tasks
}

// WriteBinary emits the compact binary encoding.
func (t *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	writeStr := func(s string) {
		var lb [4]byte
		binary.LittleEndian.PutUint32(lb[:], uint32(len(s)))
		bw.Write(lb[:])
		bw.WriteString(s)
	}
	writeStr(t.Name)
	var nb [4]byte
	binary.LittleEndian.PutUint32(nb[:], uint32(len(t.Kernels)))
	bw.Write(nb[:])
	for _, k := range t.Kernels {
		writeStr(k)
	}
	binary.LittleEndian.PutUint32(nb[:], uint32(len(t.Tasks)))
	bw.Write(nb[:])
	var buf [8]byte
	for _, task := range t.Tasks {
		binary.LittleEndian.PutUint32(buf[:4], task.Kernel)
		bw.Write(buf[:4])
		binary.LittleEndian.PutUint64(buf[:], task.Runtime)
		bw.Write(buf[:])
		bw.WriteByte(byte(len(task.Operands)))
		for _, op := range task.Operands {
			binary.LittleEndian.PutUint64(buf[:], op.Base)
			bw.Write(buf[:])
			binary.LittleEndian.PutUint32(buf[:4], op.Size)
			bw.Write(buf[:4])
			bw.WriteByte(op.Dir)
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary encoding.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	readU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	readStr := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("trace: string length %d too large", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	t := &Trace{}
	var err error
	if t.Name, err = readStr(); err != nil {
		return nil, fmt.Errorf("trace: name: %w", err)
	}
	nk, err := readU32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nk; i++ {
		k, err := readStr()
		if err != nil {
			return nil, fmt.Errorf("trace: kernel %d: %w", i, err)
		}
		t.Kernels = append(t.Kernels, k)
	}
	nt, err := readU32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nt; i++ {
		var task Task
		if task.Kernel, err = readU32(); err != nil {
			return nil, fmt.Errorf("trace: task %d: %w", i, err)
		}
		if task.Runtime, err = readU64(); err != nil {
			return nil, err
		}
		nops, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		for j := byte(0); j < nops; j++ {
			var op Operand
			if op.Base, err = readU64(); err != nil {
				return nil, err
			}
			if op.Size, err = readU32(); err != nil {
				return nil, err
			}
			if op.Dir, err = br.ReadByte(); err != nil {
				return nil, err
			}
			task.Operands = append(task.Operands, op)
		}
		t.Tasks = append(t.Tasks, task)
	}
	return t, nil
}

// WriteJSON emits the JSON encoding (indented, for inspection).
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON parses the JSON encoding.
func ReadJSON(r io.Reader) (*Trace, error) {
	t := &Trace{}
	if err := json.NewDecoder(r).Decode(t); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return t, nil
}
