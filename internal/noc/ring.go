// Package noc models the paper's interconnect (Table II): a segmented
// two-level ring. Each group of 8 cores sits on a local processor ring, and a
// global ring connects the processor rings, the L2 banks, the memory
// controllers, and the task superscalar frontend modules. Links move 16
// bytes/cycle and each segment admits 4 concurrent connections.
//
// Transfers are modeled wormhole-style: the head flit takes one cycle per
// hop, the message occupies each traversed segment for its serialization
// time (bytes / link width), and per-segment occupancy is limited to the
// configured number of concurrent connections.
package noc

import (
	"fmt"

	"tasksuperscalar/internal/sim"
)

// Config are the physical ring parameters.
type Config struct {
	HopCycles  sim.Cycle // head latency per hop
	LinkBytes  uint32    // bytes per cycle per link
	SegConns   int       // concurrent connections per segment
	RouterOver sim.Cycle // fixed per-transfer overhead (injection/ejection)
}

// DefaultConfig returns the Table II interconnect parameters.
func DefaultConfig() Config {
	return Config{HopCycles: 1, LinkBytes: 16, SegConns: 4, RouterOver: 2}
}

// MinMessageLatency is the smallest possible cross-module transfer latency
// under this configuration: the fixed router overhead plus one hop's head
// latency. The sharded engine derives its commit window from it — it is the
// conservative-PDES lookahead of the interconnect, the shortest simulated
// interval after which a message sent now can first be observed elsewhere.
func (c Config) MinMessageLatency() sim.Cycle {
	return c.RouterOver + c.HopCycles
}

// Ring is a bidirectional ring with a fixed number of stops. Messages take
// the shortest direction. The zero value is not usable; use NewRing.
type Ring struct {
	eng   *sim.Engine
	name  string
	stops int
	cfg   Config
	// segBusy holds, for every (direction, segment, connection) triple,
	// the cycle at which that connection slot frees, flattened into one
	// contiguous array: slot c of segment s in direction d lives at
	// ((d*stops)+s)*SegConns + c. The reservation scan walks this on
	// every transfer, so locality matters. dir 0 = clockwise, 1 = ccw.
	segBusy []sim.Cycle

	// lastArrival enforces point-to-point FIFO delivery per (from,to)
	// pair: hardware rings deliver same-route messages in order (ordered
	// virtual channels), and the frontend protocol depends on it. Routes
	// are dense small integers (from*stops+to), so this is a flat table
	// rather than a map — it sits on the per-message hot path.
	lastArrival []sim.Cycle

	// slotScratch/prevScratch record, per hop of the in-flight
	// reservation, the flat segBusy index booked and the value it
	// overwrote (for rollback on a contention restart); reused across
	// transfers.
	slotScratch []int
	prevScratch []sim.Cycle

	// linkShift is log2(LinkBytes) when the link width is a power of two
	// (the common case), letting serCycles shift instead of divide; -1
	// otherwise.
	linkShift int

	// Stats.
	transfers uint64
	bytes     uint64
	waitTotal sim.Cycle
}

// NewRing creates a ring with the given number of stops.
func NewRing(eng *sim.Engine, name string, stops int, cfg Config) *Ring {
	if stops < 1 {
		panic(fmt.Sprintf("noc: ring %q needs at least 1 stop", name))
	}
	if cfg.SegConns < 1 {
		cfg.SegConns = 1
	}
	if cfg.LinkBytes == 0 {
		cfg.LinkBytes = 16
	}
	r := &Ring{eng: eng, name: name, stops: stops, cfg: cfg,
		lastArrival: make([]sim.Cycle, stops*stops),
		segBusy:     make([]sim.Cycle, 2*stops*cfg.SegConns),
		slotScratch: make([]int, stops),
		prevScratch: make([]sim.Cycle, stops),
	}
	r.linkShift = -1
	if lb := cfg.LinkBytes; lb != 0 && lb&(lb-1) == 0 {
		s := 0
		for uint32(1)<<s != lb {
			s++
		}
		r.linkShift = s
	}
	return r
}

// Stops returns the number of stops on the ring.
func (r *Ring) Stops() int { return r.stops }

// route returns the direction (0 cw, 1 ccw) and hop count for the shortest
// path from a to b. Stops are in [0, stops), so the cyclic distances reduce
// to one conditional add — this runs per message, and integer division is
// the single most expensive instruction on that path.
func (r *Ring) route(from, to int) (dir, hops int) {
	cw := to - from
	if cw < 0 {
		cw += r.stops
	}
	if cw == 0 {
		return 0, 0
	}
	if ccw := r.stops - cw; ccw < cw {
		return 1, ccw
	}
	return 0, cw
}

// serCycles returns the serialization time of a message.
func (r *Ring) serCycles(bytes uint32) sim.Cycle {
	if bytes == 0 {
		bytes = 1
	}
	var c sim.Cycle
	if r.linkShift >= 0 {
		c = sim.Cycle((bytes + r.cfg.LinkBytes - 1) >> r.linkShift)
	} else {
		c = sim.Cycle((bytes + r.cfg.LinkBytes - 1) / r.cfg.LinkBytes)
	}
	if c < 1 {
		c = 1
	}
	return c
}

// Transfer moves bytes from stop `from` to stop `to` and calls then when the
// tail arrives. It returns the scheduled arrival cycle. Same-stop transfers
// only pay the router overhead.
func (r *Ring) Transfer(from, to int, bytes uint32, then func()) sim.Cycle {
	arrival := r.Reserve(from, to, bytes)
	if then != nil {
		r.eng.ScheduleAt(arrival, then)
	}
	return arrival
}

// TransferEvent is Transfer with a typed completion event: ev fires at
// arrival through the engine's allocation-free event path.
func (r *Ring) TransferEvent(from, to int, bytes uint32, ev sim.Event) sim.Cycle {
	arrival := r.Reserve(from, to, bytes)
	r.eng.ScheduleEventAt(arrival, ev)
	return arrival
}

// TransferDeliver is Transfer that hands m to sink at arrival through the
// engine's pooled delivery events.
func (r *Ring) TransferDeliver(from, to int, bytes uint32, sink sim.Sink, m any) sim.Cycle {
	arrival := r.Reserve(from, to, bytes)
	r.eng.ScheduleDeliverAt(arrival, sink, m)
	return arrival
}

// Reserve books the segment occupancy for one message and returns its
// arrival cycle without scheduling anything; the caller decides how the
// arrival is acted upon. Same-stop transfers only pay the router overhead.
func (r *Ring) Reserve(from, to int, bytes uint32) sim.Cycle {
	if from < 0 || from >= r.stops || to < 0 || to >= r.stops {
		panic(fmt.Sprintf("noc: %s: transfer %d->%d outside [0,%d)", r.name, from, to, r.stops))
	}
	now := r.eng.Now()
	ser := r.serCycles(bytes)
	dir, hops := r.route(from, to)
	fifoKey := from*r.stops + to
	if hops == 0 {
		arrival := r.clampFIFO(fifoKey, now+r.cfg.RouterOver)
		r.transfers++
		r.bytes += uint64(bytes)
		return arrival
	}
	// Wormhole reservation: the message enters segment i at
	// start + i*hop and holds it for ser cycles. Find the earliest start
	// such that every traversed segment has a free connection slot.
	// Segment indices walk the ring incrementally (cw up from `from`,
	// ccw down from `from-1`), wrapping by compare — no divisions and no
	// materialized route on this per-message path.
	//
	// The pass is optimistic: each hop books its slot immediately (the
	// measured restart rate is ~zero). If a later segment is busy, the
	// bookings made so far are rolled back bit-exact and the scan
	// restarts at the pushed-back start time — the final segBusy state is
	// identical to a separate scan-then-book pair.
	firstSeg := from // cw: hop i crosses segment from+i
	if dir == 1 {    // ccw: hop i crosses segment from-1-i
		firstSeg = from - 1
		if firstSeg < 0 {
			firstSeg += r.stops
		}
	}
	start := now + r.cfg.RouterOver
	booked := r.slotScratch // flat segBusy index of each booked slot
	saved := r.prevScratch  // the value each booking overwrote
	conns := r.cfg.SegConns
	for i, s := 0, firstSeg; i < hops; i++ {
		enter := start + sim.Cycle(i)*r.cfg.HopCycles
		segBase := (dir*r.stops + s) * conns
		var slot int
		var free sim.Cycle
		if conns == 4 { // default geometry: unrolled, inlinable scan
			slot, free = earliestSlot4(r.segBusy[segBase : segBase+4 : segBase+4])
		} else {
			slot, free = earliestSlotN(r.segBusy[segBase : segBase+conns : segBase+conns])
		}
		if free > enter {
			// Roll back this attempt's bookings, push the whole message
			// start later, and restart: earlier segments must be
			// re-reserved at the new time.
			for k := 0; k < i; k++ {
				r.segBusy[booked[k]] = saved[k]
			}
			start += free - enter
			i, s = -1, firstSeg
			continue
		}
		idx := segBase + slot
		booked[i], saved[i] = idx, r.segBusy[idx]
		r.segBusy[idx] = enter + ser
		s = r.nextSeg(dir, s)
	}
	arrival := r.clampFIFO(fifoKey, start+sim.Cycle(hops)*r.cfg.HopCycles+ser)
	r.waitTotal += start - (now + r.cfg.RouterOver)
	r.transfers++
	r.bytes += uint64(bytes)
	return arrival
}

// clampFIFO enforces in-order delivery per (from,to) route. The table's
// zero value means "no prior message", exactly like the map it replaced.
func (r *Ring) clampFIFO(fifoKey int, arrival sim.Cycle) sim.Cycle {
	if last := r.lastArrival[fifoKey]; arrival <= last {
		arrival = last + 1
	}
	r.lastArrival[fifoKey] = arrival
	return arrival
}

// nextSeg advances a segment index one hop in the given direction.
func (r *Ring) nextSeg(dir, s int) int {
	if dir == 0 {
		s++
		if s == r.stops {
			s = 0
		}
		return s
	}
	s--
	if s < 0 {
		s = r.stops - 1
	}
	return s
}

// earliestSlot4 returns the connection slot of a 4-wide segment that frees
// first, and the cycle at which it frees; small enough to inline into the
// reservation loop. Ties resolve to the lowest slot, like earliestSlotN.
func earliestSlot4(busy []sim.Cycle) (int, sim.Cycle) {
	slot, free := 0, busy[0]
	if busy[1] < free {
		slot, free = 1, busy[1]
	}
	if busy[2] < free {
		slot, free = 2, busy[2]
	}
	if busy[3] < free {
		slot, free = 3, busy[3]
	}
	return slot, free
}

// earliestSlotN is the general-geometry scan.
func earliestSlotN(busy []sim.Cycle) (slot int, free sim.Cycle) {
	slot = 0
	free = busy[0]
	for i := 1; i < len(busy); i++ {
		if busy[i] < free {
			free = busy[i]
			slot = i
		}
	}
	return slot, free
}

// Transfers returns the number of completed transfer reservations.
func (r *Ring) Transfers() uint64 { return r.transfers }

// Bytes returns the total payload bytes moved.
func (r *Ring) Bytes() uint64 { return r.bytes }

// ContentionCycles returns cumulative cycles transfers waited for segment
// slots.
func (r *Ring) ContentionCycles() sim.Cycle { return r.waitTotal }
