// Package noc models the paper's interconnect (Table II): a segmented
// two-level ring. Each group of 8 cores sits on a local processor ring, and a
// global ring connects the processor rings, the L2 banks, the memory
// controllers, and the task superscalar frontend modules. Links move 16
// bytes/cycle and each segment admits 4 concurrent connections.
//
// Transfers are modeled wormhole-style: the head flit takes one cycle per
// hop, the message occupies each traversed segment for its serialization
// time (bytes / link width), and per-segment occupancy is limited to the
// configured number of concurrent connections.
package noc

import (
	"fmt"

	"tasksuperscalar/internal/sim"
)

// Config are the physical ring parameters.
type Config struct {
	HopCycles  sim.Cycle // head latency per hop
	LinkBytes  uint32    // bytes per cycle per link
	SegConns   int       // concurrent connections per segment
	RouterOver sim.Cycle // fixed per-transfer overhead (injection/ejection)
}

// DefaultConfig returns the Table II interconnect parameters.
func DefaultConfig() Config {
	return Config{HopCycles: 1, LinkBytes: 16, SegConns: 4, RouterOver: 2}
}

// Ring is a bidirectional ring with a fixed number of stops. Messages take
// the shortest direction. The zero value is not usable; use NewRing.
type Ring struct {
	eng   *sim.Engine
	name  string
	stops int
	cfg   Config
	// segBusy[dir][segment][conn] holds the cycle at which that
	// connection slot frees. dir 0 = clockwise, 1 = counter-clockwise.
	segBusy [2][][]sim.Cycle

	// lastArrival enforces point-to-point FIFO delivery per (from,to)
	// pair: hardware rings deliver same-route messages in order (ordered
	// virtual channels), and the frontend protocol depends on it.
	lastArrival map[int]sim.Cycle

	// Reservation scratch, reused across transfers so the hot path does
	// not allocate.
	segScratch  []int
	slotScratch []int

	// Stats.
	transfers uint64
	bytes     uint64
	waitTotal sim.Cycle
}

// NewRing creates a ring with the given number of stops.
func NewRing(eng *sim.Engine, name string, stops int, cfg Config) *Ring {
	if stops < 1 {
		panic(fmt.Sprintf("noc: ring %q needs at least 1 stop", name))
	}
	if cfg.SegConns < 1 {
		cfg.SegConns = 1
	}
	if cfg.LinkBytes == 0 {
		cfg.LinkBytes = 16
	}
	r := &Ring{eng: eng, name: name, stops: stops, cfg: cfg, lastArrival: make(map[int]sim.Cycle)}
	for d := 0; d < 2; d++ {
		r.segBusy[d] = make([][]sim.Cycle, stops)
		for s := range r.segBusy[d] {
			r.segBusy[d][s] = make([]sim.Cycle, cfg.SegConns)
		}
	}
	return r
}

// Stops returns the number of stops on the ring.
func (r *Ring) Stops() int { return r.stops }

// route returns the direction (0 cw, 1 ccw) and hop count for the shortest
// path from a to b.
func (r *Ring) route(from, to int) (dir, hops int) {
	cw := (to - from + r.stops) % r.stops
	ccw := (from - to + r.stops) % r.stops
	if cw <= ccw {
		return 0, cw
	}
	return 1, ccw
}

// serCycles returns the serialization time of a message.
func (r *Ring) serCycles(bytes uint32) sim.Cycle {
	if bytes == 0 {
		bytes = 1
	}
	c := sim.Cycle((bytes + r.cfg.LinkBytes - 1) / r.cfg.LinkBytes)
	if c < 1 {
		c = 1
	}
	return c
}

// Transfer moves bytes from stop `from` to stop `to` and calls then when the
// tail arrives. It returns the scheduled arrival cycle. Same-stop transfers
// only pay the router overhead.
func (r *Ring) Transfer(from, to int, bytes uint32, then func()) sim.Cycle {
	arrival := r.Reserve(from, to, bytes)
	if then != nil {
		r.eng.ScheduleAt(arrival, then)
	}
	return arrival
}

// TransferEvent is Transfer with a typed completion event: ev fires at
// arrival through the engine's allocation-free event path.
func (r *Ring) TransferEvent(from, to int, bytes uint32, ev sim.Event) sim.Cycle {
	arrival := r.Reserve(from, to, bytes)
	r.eng.ScheduleEventAt(arrival, ev)
	return arrival
}

// TransferDeliver is Transfer that hands m to sink at arrival through the
// engine's pooled delivery events.
func (r *Ring) TransferDeliver(from, to int, bytes uint32, sink sim.Sink, m any) sim.Cycle {
	arrival := r.Reserve(from, to, bytes)
	r.eng.ScheduleDeliverAt(arrival, sink, m)
	return arrival
}

// Reserve books the segment occupancy for one message and returns its
// arrival cycle without scheduling anything; the caller decides how the
// arrival is acted upon. Same-stop transfers only pay the router overhead.
func (r *Ring) Reserve(from, to int, bytes uint32) sim.Cycle {
	if from < 0 || from >= r.stops || to < 0 || to >= r.stops {
		panic(fmt.Sprintf("noc: %s: transfer %d->%d outside [0,%d)", r.name, from, to, r.stops))
	}
	now := r.eng.Now()
	ser := r.serCycles(bytes)
	dir, hops := r.route(from, to)
	fifoKey := from*r.stops + to
	if hops == 0 {
		arrival := r.clampFIFO(fifoKey, now+r.cfg.RouterOver)
		r.transfers++
		r.bytes += uint64(bytes)
		return arrival
	}
	// Wormhole reservation: the message enters segment i at
	// start + i*hop and holds it for ser cycles. Find the earliest start
	// such that every traversed segment has a free connection slot.
	start := now + r.cfg.RouterOver
	segs := r.segScratch[:0]
	for i := 0; i < hops; i++ {
		if dir == 0 {
			segs = append(segs, (from+i)%r.stops)
		} else {
			segs = append(segs, (from-1-i+2*r.stops)%r.stops)
		}
	}
	r.segScratch = segs
	slots := r.slotScratch
	if cap(slots) < hops {
		slots = make([]int, hops)
		r.slotScratch = slots
	}
	slots = slots[:hops]
	for i := 0; i < hops; i++ {
		enter := start + sim.Cycle(i)*r.cfg.HopCycles
		slot, free := r.earliestSlot(dir, segs[i])
		if free > enter {
			// Push the whole message start later and restart the scan,
			// since earlier segments must be re-reserved at the new time.
			start += free - enter
			i = -1
			continue
		}
		slots[i] = slot
	}
	for i, s := range segs {
		enter := start + sim.Cycle(i)*r.cfg.HopCycles
		r.segBusy[dir][s][slots[i]] = enter + ser
	}
	arrival := r.clampFIFO(fifoKey, start+sim.Cycle(hops)*r.cfg.HopCycles+ser)
	r.waitTotal += start - (now + r.cfg.RouterOver)
	r.transfers++
	r.bytes += uint64(bytes)
	return arrival
}

// clampFIFO enforces in-order delivery per (from,to) route.
func (r *Ring) clampFIFO(fifoKey int, arrival sim.Cycle) sim.Cycle {
	if last := r.lastArrival[fifoKey]; arrival <= last {
		arrival = last + 1
	}
	r.lastArrival[fifoKey] = arrival
	return arrival
}

// earliestSlot returns the connection slot on segment s (direction dir) that
// frees first, and the cycle at which it frees.
func (r *Ring) earliestSlot(dir, s int) (slot int, free sim.Cycle) {
	busy := r.segBusy[dir][s]
	slot = 0
	free = busy[0]
	for i := 1; i < len(busy); i++ {
		if busy[i] < free {
			free = busy[i]
			slot = i
		}
	}
	return slot, free
}

// Transfers returns the number of completed transfer reservations.
func (r *Ring) Transfers() uint64 { return r.transfers }

// Bytes returns the total payload bytes moved.
func (r *Ring) Bytes() uint64 { return r.bytes }

// ContentionCycles returns cumulative cycles transfers waited for segment
// slots.
func (r *Ring) ContentionCycles() sim.Cycle { return r.waitTotal }
