package noc

import (
	"fmt"

	"tasksuperscalar/internal/sim"
)

// NodeID identifies an endpoint attached to the network.
type NodeID int

// nodeKind distinguishes where a node lives.
type nodeKind uint8

const (
	kindCore   nodeKind = iota // on a local processor ring
	kindGlobal                 // directly on the global ring (L2, MC, frontend)
)

type node struct {
	kind       nodeKind
	name       string
	localRing  int // for cores
	localStop  int // stop on the local ring
	globalStop int // stop on the global ring (bridge stop for cores)
}

// Network is the two-level ring fabric: local 8-core processor rings whose
// bridge stops sit on a global ring shared with L2 banks, memory controllers
// and the frontend modules.
type Network struct {
	eng    *sim.Engine
	cfg    Config
	global *Ring
	locals []*Ring
	nodes  []node

	coresPerRing int
	// pending global stops are allocated before Build.
	built        bool
	globalOrder  []NodeID // global-resident nodes in attach order
	bridgeStops  []int    // global stop of each local ring's bridge
	messages     uint64
	totalLatency sim.Cycle
}

// NewNetwork creates a network; attach nodes with AddCore / AddGlobalNode,
// then call Build before sending.
func NewNetwork(eng *sim.Engine, coresPerRing int, cfg Config) *Network {
	if coresPerRing <= 0 {
		coresPerRing = 8
	}
	return &Network{eng: eng, cfg: cfg, coresPerRing: coresPerRing}
}

// AddCore attaches a core; cores fill local rings in order, 8 per ring.
func (n *Network) AddCore(name string) NodeID {
	if n.built {
		panic("noc: AddCore after Build")
	}
	id := NodeID(len(n.nodes))
	coreCount := 0
	for _, nd := range n.nodes {
		if nd.kind == kindCore {
			coreCount++
		}
	}
	ring := coreCount / n.coresPerRing
	stop := coreCount % n.coresPerRing
	n.nodes = append(n.nodes, node{kind: kindCore, name: name, localRing: ring, localStop: stop})
	return id
}

// AddGlobalNode attaches a node directly to the global ring (an L2 bank, a
// memory controller, or a frontend module).
func (n *Network) AddGlobalNode(name string) NodeID {
	if n.built {
		panic("noc: AddGlobalNode after Build")
	}
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, node{kind: kindGlobal, name: name})
	n.globalOrder = append(n.globalOrder, id)
	return id
}

// Build finalizes the topology: local rings get one extra bridge stop each,
// and the global ring interleaves bridges with the global-resident nodes.
func (n *Network) Build() {
	if n.built {
		return
	}
	coreCount := 0
	for _, nd := range n.nodes {
		if nd.kind == kindCore {
			coreCount++
		}
	}
	nRings := (coreCount + n.coresPerRing - 1) / n.coresPerRing
	n.locals = make([]*Ring, nRings)
	for i := range n.locals {
		// +1 stop for the bridge to the global ring.
		n.locals[i] = NewRing(n.eng, fmt.Sprintf("local%d", i), n.coresPerRing+1, n.cfg)
	}
	globalStops := nRings + len(n.globalOrder)
	if globalStops == 0 {
		globalStops = 1
	}
	n.global = NewRing(n.eng, "global", globalStops, n.cfg)
	// Assign global stops: bridges first (spread), then global nodes.
	n.bridgeStops = make([]int, nRings)
	stop := 0
	for i := 0; i < nRings; i++ {
		n.bridgeStops[i] = stop
		stop++
	}
	for _, id := range n.globalOrder {
		n.nodes[id].globalStop = stop
		stop++
	}
	for i := range n.nodes {
		if n.nodes[i].kind == kindCore {
			n.nodes[i].globalStop = n.bridgeStops[n.nodes[i].localRing]
		}
	}
	n.built = true
}

// bridgeLocalStop is the local-ring stop index used by the bridge.
func (n *Network) bridgeLocalStop() int { return n.coresPerRing }

// Send moves a message of the given size from one node to another and
// schedules then at arrival. It returns the arrival cycle for observability.
func (n *Network) Send(from, to NodeID, bytes uint32, then func()) sim.Cycle {
	if !n.built {
		panic("noc: Send before Build")
	}
	nf, nt := n.nodes[from], n.nodes[to]
	n.messages++
	sent := n.eng.Now()
	finish := func(arrival sim.Cycle) sim.Cycle {
		n.totalLatency += arrival - sent
		return arrival
	}
	switch {
	case nf.kind == kindCore && nt.kind == kindCore && nf.localRing == nt.localRing:
		return finish(n.locals[nf.localRing].Transfer(nf.localStop, nt.localStop, bytes, then))
	case nf.kind == kindGlobal && nt.kind == kindGlobal:
		return finish(n.global.Transfer(nf.globalStop, nt.globalStop, bytes, then))
	case nf.kind == kindCore && nt.kind == kindGlobal:
		// Local ring to bridge, then global ring to destination.
		n.locals[nf.localRing].Transfer(nf.localStop, n.bridgeLocalStop(), bytes, func() {
			n.global.Transfer(nf.globalStop, nt.globalStop, bytes, func() {
				finish(n.eng.Now())
				if then != nil {
					then()
				}
			})
		})
		return 0 // exact arrival known only after hop 2; stats via callback
	case nf.kind == kindGlobal && nt.kind == kindCore:
		n.global.Transfer(nf.globalStop, nt.globalStop, bytes, func() {
			n.locals[nt.localRing].Transfer(n.bridgeLocalStop(), nt.localStop, bytes, func() {
				finish(n.eng.Now())
				if then != nil {
					then()
				}
			})
		})
		return 0
	default: // core to core across rings: local, global, local
		n.locals[nf.localRing].Transfer(nf.localStop, n.bridgeLocalStop(), bytes, func() {
			n.global.Transfer(nf.globalStop, nt.globalStop, bytes, func() {
				n.locals[nt.localRing].Transfer(n.bridgeLocalStop(), nt.localStop, bytes, func() {
					finish(n.eng.Now())
					if then != nil {
						then()
					}
				})
			})
		})
		return 0
	}
}

// Messages returns the number of Send calls completed or in flight.
func (n *Network) Messages() uint64 { return n.messages }

// AvgLatency returns mean end-to-end latency of completed sends, in cycles.
func (n *Network) AvgLatency() float64 {
	if n.messages == 0 {
		return 0
	}
	return float64(n.totalLatency) / float64(n.messages)
}

// GlobalRing exposes the global ring for stats.
func (n *Network) GlobalRing() *Ring { return n.global }

// LocalRings exposes the local rings for stats.
func (n *Network) LocalRings() []*Ring { return n.locals }

// NodeName returns the diagnostic name of a node.
func (n *Network) NodeName(id NodeID) string { return n.nodes[id].name }
