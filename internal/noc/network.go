package noc

import (
	"fmt"

	"tasksuperscalar/internal/sim"
)

// NodeID identifies an endpoint attached to the network.
type NodeID int

// nodeKind distinguishes where a node lives.
type nodeKind uint8

const (
	kindCore   nodeKind = iota // on a local processor ring
	kindGlobal                 // directly on the global ring (L2, MC, frontend)
)

type node struct {
	kind       nodeKind
	name       string
	localRing  int // for cores
	localStop  int // stop on the local ring
	globalStop int // stop on the global ring (bridge stop for cores)
}

// Network is the two-level ring fabric: local 8-core processor rings whose
// bridge stops sit on a global ring shared with L2 banks, memory controllers
// and the frontend modules.
type Network struct {
	eng    *sim.Engine
	cfg    Config
	global *Ring
	locals []*Ring
	nodes  []node

	coresPerRing int
	coreCount    int
	// pending global stops are allocated before Build.
	built        bool
	globalOrder  []NodeID // global-resident nodes in attach order
	bridgeStops  []int    // global stop of each local ring's bridge
	messages     uint64
	totalLatency sim.Cycle

	// freeHop is the network-owned free list of multi-hop relay events;
	// bridged sends recycle through it instead of nesting closures.
	freeHop *hopEvent
}

// NewNetwork creates a network; attach nodes with AddCore / AddGlobalNode,
// then call Build before sending.
func NewNetwork(eng *sim.Engine, coresPerRing int, cfg Config) *Network {
	if coresPerRing <= 0 {
		coresPerRing = 8
	}
	return &Network{eng: eng, cfg: cfg, coresPerRing: coresPerRing}
}

// AddCore attaches a core; cores fill local rings in order, 8 per ring.
func (n *Network) AddCore(name string) NodeID {
	if n.built {
		panic("noc: AddCore after Build")
	}
	id := NodeID(len(n.nodes))
	ring := n.coreCount / n.coresPerRing
	stop := n.coreCount % n.coresPerRing
	n.coreCount++
	n.nodes = append(n.nodes, node{kind: kindCore, name: name, localRing: ring, localStop: stop})
	return id
}

// AddGlobalNode attaches a node directly to the global ring (an L2 bank, a
// memory controller, or a frontend module).
func (n *Network) AddGlobalNode(name string) NodeID {
	if n.built {
		panic("noc: AddGlobalNode after Build")
	}
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, node{kind: kindGlobal, name: name})
	n.globalOrder = append(n.globalOrder, id)
	return id
}

// Build finalizes the topology: local rings get one extra bridge stop each,
// and the global ring interleaves bridges with the global-resident nodes.
func (n *Network) Build() {
	if n.built {
		return
	}
	nRings := (n.coreCount + n.coresPerRing - 1) / n.coresPerRing
	n.locals = make([]*Ring, nRings)
	for i := range n.locals {
		// +1 stop for the bridge to the global ring.
		n.locals[i] = NewRing(n.eng, fmt.Sprintf("local%d", i), n.coresPerRing+1, n.cfg)
	}
	globalStops := nRings + len(n.globalOrder)
	if globalStops == 0 {
		globalStops = 1
	}
	n.global = NewRing(n.eng, "global", globalStops, n.cfg)
	// Assign global stops: bridges first (spread), then global nodes.
	n.bridgeStops = make([]int, nRings)
	stop := 0
	for i := 0; i < nRings; i++ {
		n.bridgeStops[i] = stop
		stop++
	}
	for _, id := range n.globalOrder {
		n.nodes[id].globalStop = stop
		stop++
	}
	for i := range n.nodes {
		if n.nodes[i].kind == kindCore {
			n.nodes[i].globalStop = n.bridgeStops[n.nodes[i].localRing]
		}
	}
	n.built = true
}

// bridgeLocalStop is the local-ring stop index used by the bridge.
func (n *Network) bridgeLocalStop() int { return n.coresPerRing }

// hopEvent relays one message across the ring hops of a bridged route. One
// pooled instance carries the whole journey: each Fire reserves the next
// hop and reschedules itself at that hop's arrival; the final Fire records
// latency, recycles the event, and performs the completion action.
type hopEvent struct {
	net    *Network
	bytes  uint32
	sent   sim.Cycle
	key    uint32 // shard affinity: the destination node
	stage  int8
	stages int8
	rings  [3]*Ring
	froms  [3]int
	tos    [3]int

	// Completion action: exactly one of sink (+m), ev, fn is set.
	sink sim.Sink
	m    any
	ev   sim.Event
	fn   func()

	next *hopEvent
}

// ShardKey stages a bridged message with its destination node's shard.
func (h *hopEvent) ShardKey() uint32 { return h.key }

func (h *hopEvent) Fire() {
	if h.stage < h.stages {
		i := h.stage
		h.stage++
		h.rings[i].TransferEvent(h.froms[i], h.tos[i], h.bytes, h)
		return
	}
	net := h.net
	net.totalLatency += net.eng.Now() - h.sent
	sink, m, ev, fn := h.sink, h.m, h.ev, h.fn
	h.sink, h.m, h.ev, h.fn = nil, nil, nil, nil
	h.next = net.freeHop
	net.freeHop = h
	switch {
	case sink != nil:
		sink.Submit(m)
	case ev != nil:
		ev.Fire()
	case fn != nil:
		fn()
	}
}

func (n *Network) getHop(bytes uint32) *hopEvent {
	h := n.freeHop
	if h == nil {
		h = &hopEvent{net: n}
	} else {
		n.freeHop = h.next
		h.next = nil
	}
	h.bytes = bytes
	h.sent = n.eng.Now()
	h.stage = 0
	h.stages = 0
	return h
}

func (h *hopEvent) addHop(r *Ring, from, to int) {
	h.rings[h.stages] = r
	h.froms[h.stages] = from
	h.tos[h.stages] = to
	h.stages++
}

// send is the shared transport core behind Send, SendEvent and SendMsg.
// Exactly one completion action (sink+m, ev, or fn) may be set; all are
// performed at tail arrival. Ring-resident routes complete through the
// engine's allocation-free scheduling paths; bridged routes relay through a
// pooled hopEvent. The returned arrival cycle is 0 for bridged routes,
// where it is only known once the last hop is reserved.
func (n *Network) send(from, to NodeID, bytes uint32, sink sim.Sink, m any, ev sim.Event, fn func()) sim.Cycle {
	if !n.built {
		panic("noc: Send before Build")
	}
	nf, nt := &n.nodes[from], &n.nodes[to]
	n.messages++
	sent := n.eng.Now()

	// Single-ring routes: reserve now, schedule the completion directly.
	if single := n.singleRing(nf, nt); single != nil {
		sf, st := n.ringStops(nf, nt)
		var arrival sim.Cycle
		switch {
		case sink != nil:
			arrival = single.TransferDeliver(sf, st, bytes, sink, m)
		case ev != nil:
			arrival = single.TransferEvent(sf, st, bytes, ev)
		default:
			arrival = single.Transfer(sf, st, bytes, fn)
		}
		n.totalLatency += arrival - sent
		return arrival
	}

	// Bridged routes: relay via a pooled hop event.
	h := n.getHop(bytes)
	h.key = uint32(to)
	h.sink, h.m, h.ev, h.fn = sink, m, ev, fn
	if nf.kind == kindCore {
		h.addHop(n.locals[nf.localRing], nf.localStop, n.bridgeLocalStop())
	}
	h.addHop(n.global, nf.globalStop, nt.globalStop)
	if nt.kind == kindCore {
		h.addHop(n.locals[nt.localRing], n.bridgeLocalStop(), nt.localStop)
	}
	h.Fire() // reserves hop 0 immediately, as the closure chain used to
	return 0
}

// singleRing returns the one ring a message traverses, or nil for bridged
// routes.
func (n *Network) singleRing(nf, nt *node) *Ring {
	switch {
	case nf.kind == kindCore && nt.kind == kindCore && nf.localRing == nt.localRing:
		return n.locals[nf.localRing]
	case nf.kind == kindGlobal && nt.kind == kindGlobal:
		return n.global
	}
	return nil
}

// ringStops returns the stops used on a single-ring route.
func (n *Network) ringStops(nf, nt *node) (from, to int) {
	if nf.kind == kindCore {
		return nf.localStop, nt.localStop
	}
	return nf.globalStop, nt.globalStop
}

// Send moves a message of the given size from one node to another and
// schedules then at arrival. It returns the arrival cycle for observability
// (0 on bridged routes, where arrival is known only via the callback).
func (n *Network) Send(from, to NodeID, bytes uint32, then func()) sim.Cycle {
	return n.send(from, to, bytes, nil, nil, nil, then)
}

// SendEvent is Send with a typed completion event: ev fires at arrival with
// no per-message allocation.
func (n *Network) SendEvent(from, to NodeID, bytes uint32, ev sim.Event) sim.Cycle {
	return n.send(from, to, bytes, nil, nil, ev, nil)
}

// SendMsg delivers m to sink when the message arrives. With a pooled or
// pointer-typed m this is the zero-allocation transport used by all
// frontend and backend protocol traffic.
func (n *Network) SendMsg(from, to NodeID, bytes uint32, sink sim.Sink, m any) sim.Cycle {
	return n.send(from, to, bytes, sink, m, nil, nil)
}

// Messages returns the number of Send calls completed or in flight.
func (n *Network) Messages() uint64 { return n.messages }

// AvgLatency returns mean end-to-end latency of completed sends, in cycles.
func (n *Network) AvgLatency() float64 {
	if n.messages == 0 {
		return 0
	}
	return float64(n.totalLatency) / float64(n.messages)
}

// GlobalRing exposes the global ring for stats.
func (n *Network) GlobalRing() *Ring { return n.global }

// LocalRings exposes the local rings for stats.
func (n *Network) LocalRings() []*Ring { return n.locals }

// NodeName returns the diagnostic name of a node.
func (n *Network) NodeName(id NodeID) string { return n.nodes[id].name }
