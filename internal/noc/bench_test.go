package noc

import (
	"testing"

	"tasksuperscalar/internal/sim"
)

// BenchmarkRingTransfer measures control-message reservation cost.
func BenchmarkRingTransfer(b *testing.B) {
	e := sim.NewEngine()
	r := NewRing(e, "bench", 64, DefaultConfig())
	for i := 0; i < b.N; i++ {
		r.Transfer(i%64, (i*17+5)%64, 32, nil)
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkNetworkCrossRing measures two-level routed sends.
func BenchmarkNetworkCrossRing(b *testing.B) {
	e := sim.NewEngine()
	n := NewNetwork(e, 8, DefaultConfig())
	var cores []NodeID
	for i := 0; i < 64; i++ {
		cores = append(cores, n.AddCore("c"))
	}
	g := n.AddGlobalNode("g")
	n.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(cores[i%64], g, 32, nil)
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}
