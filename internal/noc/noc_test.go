package noc

import (
	"testing"
	"testing/quick"

	"tasksuperscalar/internal/sim"
)

func TestRingShortestDirection(t *testing.T) {
	e := sim.NewEngine()
	r := NewRing(e, "r", 8, Config{HopCycles: 1, LinkBytes: 16, SegConns: 4})
	// 0 -> 2: 2 hops clockwise.
	arr := r.Transfer(0, 2, 16, nil)
	if arr != 0+2+1 { // no overhead configured, 2 hops + 1 ser
		t.Fatalf("0->2 arrival = %d, want 3", arr)
	}
	// 0 -> 7: 1 hop counter-clockwise, not 7 clockwise.
	arr = r.Transfer(0, 7, 16, nil)
	if arr != 1+1 {
		t.Fatalf("0->7 arrival = %d, want 2", arr)
	}
}

func TestRingSerializationTime(t *testing.T) {
	e := sim.NewEngine()
	r := NewRing(e, "r", 4, Config{HopCycles: 1, LinkBytes: 16, SegConns: 4})
	// 64 bytes over 16B/cy links = 4 cycles serialization + 1 hop.
	if arr := r.Transfer(0, 1, 64, nil); arr != 5 {
		t.Fatalf("64B 1-hop arrival = %d, want 5", arr)
	}
	// zero-byte control message still takes >= 1 cycle (different pair so
	// point-to-point FIFO does not clamp it).
	if arr := r.Transfer(2, 3, 0, nil); arr != 2 {
		t.Fatalf("0B 1-hop arrival = %d, want 2", arr)
	}
}

func TestRingSegmentContention(t *testing.T) {
	e := sim.NewEngine()
	// One connection per segment: the second transfer over the same
	// segment must wait for the first to release it.
	r := NewRing(e, "r", 4, Config{HopCycles: 1, LinkBytes: 16, SegConns: 1})
	a1 := r.Transfer(0, 1, 160, nil) // occupies seg 0 for 10 cycles
	a2 := r.Transfer(0, 1, 160, nil)
	if a1 != 11 {
		t.Fatalf("first arrival = %d, want 11", a1)
	}
	if a2 < a1+10 {
		t.Fatalf("second transfer did not wait: arrival %d after first %d", a2, a1)
	}
	if r.ContentionCycles() == 0 {
		t.Fatal("expected contention cycles to be recorded")
	}
}

func TestRingConcurrentConnections(t *testing.T) {
	e := sim.NewEngine()
	// Four connections per segment: four simultaneous messages pass
	// unhindered, the fifth waits.
	// Use distinct source stops so same-pair FIFO does not serialize the
	// arrivals; all four share the segment between stops 3 and 0... use a
	// larger ring so four transfers share one segment via distinct pairs.
	r := NewRing(e, "r", 12, Config{HopCycles: 1, LinkBytes: 16, SegConns: 4})
	var arrivals []sim.Cycle
	// All five cross segment 5->6.
	for i := 0; i < 5; i++ {
		arrivals = append(arrivals, r.Transfer(5-i, 6, 160, nil))
	}
	for i := 0; i < 4; i++ {
		// i hops to reach segment 5, then 1 hop + 10 ser.
		want := sim.Cycle(i) + 1 + 10
		if arrivals[i] != want {
			t.Fatalf("transfer %d arrival = %d, want %d", i, arrivals[i], want)
		}
	}
	unloaded := sim.Cycle(4) + 1 + 10
	if arrivals[4] <= unloaded {
		t.Fatalf("fifth transfer must queue behind the 4-connection limit, got %d", arrivals[4])
	}
}

func TestRingDisjointSegmentsDontContend(t *testing.T) {
	e := sim.NewEngine()
	r := NewRing(e, "r", 8, Config{HopCycles: 1, LinkBytes: 16, SegConns: 1})
	a1 := r.Transfer(0, 1, 160, nil)
	a2 := r.Transfer(4, 5, 160, nil) // different segment
	if a1 != a2 {
		t.Fatalf("disjoint transfers should not contend: %d vs %d", a1, a2)
	}
}

func TestRingCallbackFires(t *testing.T) {
	e := sim.NewEngine()
	r := NewRing(e, "r", 4, DefaultConfig())
	var at sim.Cycle
	want := r.Transfer(0, 2, 32, func() { at = e.Now() })
	e.Run()
	if at != want {
		t.Fatalf("callback at %d, want %d", at, want)
	}
}

func TestRingSameStop(t *testing.T) {
	e := sim.NewEngine()
	r := NewRing(e, "r", 4, Config{HopCycles: 1, LinkBytes: 16, SegConns: 4, RouterOver: 2})
	if arr := r.Transfer(3, 3, 64, nil); arr != 2 {
		t.Fatalf("same-stop arrival = %d, want router overhead 2", arr)
	}
}

func buildNet(t *testing.T, cores int) (*sim.Engine, *Network, []NodeID, []NodeID) {
	t.Helper()
	e := sim.NewEngine()
	n := NewNetwork(e, 8, DefaultConfig())
	var coreIDs, globalIDs []NodeID
	for i := 0; i < cores; i++ {
		coreIDs = append(coreIDs, n.AddCore("core"))
	}
	for i := 0; i < 4; i++ {
		globalIDs = append(globalIDs, n.AddGlobalNode("l2"))
	}
	n.Build()
	return e, n, coreIDs, globalIDs
}

func TestNetworkSameLocalRing(t *testing.T) {
	e, n, cores, _ := buildNet(t, 16)
	done := false
	n.Send(cores[0], cores[1], 16, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("same-ring message not delivered")
	}
}

func TestNetworkCrossRing(t *testing.T) {
	e, n, cores, _ := buildNet(t, 16)
	var arrival sim.Cycle
	n.Send(cores[0], cores[9], 16, func() { arrival = e.Now() })
	e.Run()
	if arrival == 0 {
		t.Fatal("cross-ring message not delivered")
	}
	// Must traverse local + global + local: strictly slower than same-ring.
	var sameRing sim.Cycle
	e2, n2, cores2, _ := buildNet(t, 16)
	n2.Send(cores2[0], cores2[1], 16, func() { sameRing = e2.Now() })
	e2.Run()
	if arrival <= sameRing {
		t.Fatalf("cross-ring latency %d not greater than same-ring %d", arrival, sameRing)
	}
}

func TestNetworkCoreToGlobal(t *testing.T) {
	e, n, cores, globals := buildNet(t, 16)
	var up, down sim.Cycle
	n.Send(cores[3], globals[0], 64, func() { up = e.Now() })
	e.Run()
	n.Send(globals[0], cores[3], 64, func() { down = e.Now() })
	e.Run()
	if up == 0 || down == 0 {
		t.Fatal("core<->global messages not delivered")
	}
	if n.Messages() != 2 {
		t.Fatalf("Messages() = %d, want 2", n.Messages())
	}
	if n.AvgLatency() <= 0 {
		t.Fatal("AvgLatency must be positive")
	}
}

func TestNetworkGlobalToGlobal(t *testing.T) {
	e, n, _, globals := buildNet(t, 8)
	delivered := false
	n.Send(globals[0], globals[3], 64, func() { delivered = true })
	e.Run()
	if !delivered {
		t.Fatal("global-global message not delivered")
	}
}

// Property: transfers always arrive, and arrival is no earlier than the
// unloaded latency (hops + serialization).
func TestRingLatencyLowerBoundProperty(t *testing.T) {
	f := func(from, to uint8, sz uint16) bool {
		e := sim.NewEngine()
		r := NewRing(e, "r", 16, Config{HopCycles: 1, LinkBytes: 16, SegConns: 4})
		f0, t0 := int(from%16), int(to%16)
		bytes := uint32(sz%4096) + 1
		arr := r.Transfer(f0, t0, bytes, nil)
		_, hops := r.route(f0, t0)
		minLat := sim.Cycle(hops) + r.serCycles(bytes)
		if hops == 0 {
			minLat = 0
		}
		return arr >= minLat
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: total bytes accounting matches what was sent.
func TestRingByteAccountingProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		e := sim.NewEngine()
		r := NewRing(e, "r", 8, DefaultConfig())
		var want uint64
		for i, s := range sizes {
			b := uint32(s)
			r.Transfer(i%8, (i+3)%8, b, nil)
			want += uint64(b)
		}
		return r.Bytes() == want && r.Transfers() == uint64(len(sizes))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
