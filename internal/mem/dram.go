package mem

import "tasksuperscalar/internal/sim"

// DRAMConfig models the Table II main memory: 4 memory controllers with 2
// channels each, one 800 MHz DDR3 DIMM per channel. At the 3.2 GHz core
// clock a DDR3-1600-style channel sustains about 2 bytes per core cycle;
// access latency is on the order of 50 ns (160 core cycles).
type DRAMConfig struct {
	Controllers   int
	ChannelsPerMC int
	Latency       sim.Cycle // fixed access latency per transfer
	BytesPerCycle float64   // sustained bandwidth per channel
}

// DefaultDRAMConfig returns the Table II configuration.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{Controllers: 4, ChannelsPerMC: 2, Latency: 160, BytesPerCycle: 2}
}

// DRAM models channel occupancy: each channel serves transfers serially at
// its sustained bandwidth after the fixed latency.
type DRAM struct {
	eng  *sim.Engine
	cfg  DRAMConfig
	busy []sim.Cycle // per-channel busy-until

	transfers uint64
	bytes     uint64
}

// NewDRAM creates the memory system.
func NewDRAM(eng *sim.Engine, cfg DRAMConfig) *DRAM {
	n := cfg.Controllers * cfg.ChannelsPerMC
	if n <= 0 {
		n = 1
	}
	if cfg.BytesPerCycle <= 0 {
		cfg.BytesPerCycle = 2
	}
	return &DRAM{eng: eng, cfg: cfg, busy: make([]sim.Cycle, n)}
}

// Channels returns the number of independent channels.
func (d *DRAM) Channels() int { return len(d.busy) }

// channelFor statically interleaves addresses across channels at 4 KB
// granularity.
func (d *DRAM) channelFor(addr uint64) int {
	return int((addr >> 12) % uint64(len(d.busy)))
}

// Transfer reserves channel time for moving the given bytes to or from the
// address and returns the completion cycle. Transfers on the same channel
// serialize; distinct channels proceed in parallel.
func (d *DRAM) Transfer(addr uint64, bytes uint32) sim.Cycle {
	ch := d.channelFor(addr)
	now := d.eng.Now()
	start := now
	if d.busy[ch] > start {
		start = d.busy[ch]
	}
	occupancy := sim.Cycle(float64(bytes) / d.cfg.BytesPerCycle)
	if occupancy < 1 {
		occupancy = 1
	}
	done := start + d.cfg.Latency + occupancy
	d.busy[ch] = start + occupancy // latency is pipelined; bandwidth is not
	d.transfers++
	d.bytes += uint64(bytes)
	return done
}

// Stats returns the number of transfers and total bytes moved.
func (d *DRAM) Stats() (transfers, bytes uint64) { return d.transfers, d.bytes }
