// Package mem models the CMP memory system of Table II: private L1 caches,
// a banked shared L2 with a directory-based MSI protocol, DDR3 memory
// controllers, and the DMA engine the OVT uses to copy rename buffers back
// to their original addresses.
//
// Two granularities are provided. SetAssocCache is a classic line-granular
// set-associative LRU cache used for detailed modeling and validation. The
// System type tracks coherence at memory-object granularity (an operand is
// fetched and written back as one DMA-style burst, matching how the paper's
// Cell-derived runtime stages task operands), which keeps large simulations
// fast while exercising the same protocol states.
package mem

import (
	"fmt"

	"tasksuperscalar/internal/sim"
)

// CacheConfig sizes a set-associative cache.
type CacheConfig struct {
	SizeBytes int
	LineBytes int
	Ways      int
	Latency   sim.Cycle
}

// L1Config returns the Table II private L1: 64 KB, 4-way, 3-cycle latency.
func L1Config() CacheConfig {
	return CacheConfig{SizeBytes: 64 << 10, LineBytes: 64, Ways: 4, Latency: 3}
}

// L2BankConfig returns one Table II L2 bank: 4 MB, 8-way, 22-cycle latency.
func L2BankConfig() CacheConfig {
	return CacheConfig{SizeBytes: 4 << 20, LineBytes: 64, Ways: 8, Latency: 22}
}

type cline struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU stamp
}

// SetAssocCache is a line-granular set-associative cache with LRU
// replacement and write-back, write-allocate policy.
type SetAssocCache struct {
	cfg   CacheConfig
	sets  [][]cline
	nsets int
	tick  uint64

	hits, misses, evictions, writebacks uint64
}

// NewSetAssocCache builds a cache from cfg. Size must be divisible by
// LineBytes*Ways.
func NewSetAssocCache(cfg CacheConfig) *SetAssocCache {
	if cfg.LineBytes <= 0 || cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		panic("mem: invalid cache config")
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if nsets == 0 {
		panic("mem: cache smaller than one set")
	}
	c := &SetAssocCache{cfg: cfg, nsets: nsets, sets: make([][]cline, nsets)}
	for i := range c.sets {
		c.sets[i] = make([]cline, cfg.Ways)
	}
	return c
}

// Config returns the cache geometry.
func (c *SetAssocCache) Config() CacheConfig { return c.cfg }

// Sets returns the number of sets.
func (c *SetAssocCache) Sets() int { return c.nsets }

func (c *SetAssocCache) index(addr uint64) (set int, tag uint64) {
	line := addr / uint64(c.cfg.LineBytes)
	return int(line % uint64(c.nsets)), line / uint64(c.nsets)
}

// AccessResult reports the outcome of a single-line access.
type AccessResult struct {
	Hit         bool
	Evicted     bool   // a valid line was displaced
	VictimAddr  uint64 // base address of the displaced line
	VictimDirty bool   // displaced line needed a writeback
}

// Access touches the line containing addr. With write=true the line becomes
// dirty. On a miss the line is allocated, possibly displacing the LRU way.
func (c *SetAssocCache) Access(addr uint64, write bool) AccessResult {
	set, tag := c.index(addr)
	c.tick++
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].used = c.tick
			if write {
				ways[i].dirty = true
			}
			c.hits++
			return AccessResult{Hit: true}
		}
	}
	c.misses++
	// Choose victim: first invalid way, else LRU.
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].used < ways[victim].used {
			victim = i
		}
	}
	res := AccessResult{}
	if ways[victim].valid {
		res.Evicted = true
		res.VictimDirty = ways[victim].dirty
		res.VictimAddr = (ways[victim].tag*uint64(c.nsets) + uint64(set)) * uint64(c.cfg.LineBytes)
		c.evictions++
		if ways[victim].dirty {
			c.writebacks++
		}
	}
	ways[victim] = cline{tag: tag, valid: true, dirty: write, used: c.tick}
	return res
}

// AccessRange touches every line in [addr, addr+size) and returns the hit
// and miss counts plus the number of dirty evictions triggered.
func (c *SetAssocCache) AccessRange(addr uint64, size uint32, write bool) (hits, misses, writebacks uint64) {
	if size == 0 {
		return 0, 0, 0
	}
	lb := uint64(c.cfg.LineBytes)
	first := addr / lb
	last := (addr + uint64(size) - 1) / lb
	for line := first; line <= last; line++ {
		r := c.Access(line*lb, write)
		if r.Hit {
			hits++
		} else {
			misses++
			if r.VictimDirty {
				writebacks++
			}
		}
	}
	return hits, misses, writebacks
}

// Contains reports whether the line holding addr is resident.
func (c *SetAssocCache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	for _, w := range c.sets[set] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops the line holding addr and reports whether it was dirty.
func (c *SetAssocCache) Invalidate(addr uint64) (wasDirty bool) {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag {
			wasDirty = w.dirty
			w.valid = false
			w.dirty = false
			return wasDirty
		}
	}
	return false
}

// Stats returns cumulative hit/miss/eviction/writeback counts.
func (c *SetAssocCache) Stats() (hits, misses, evictions, writebacks uint64) {
	return c.hits, c.misses, c.evictions, c.writebacks
}

// HitRate returns hits/(hits+misses), or 0 when no accesses happened.
func (c *SetAssocCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// String summarizes the cache for logs.
func (c *SetAssocCache) String() string {
	return fmt.Sprintf("cache{%dKB %d-way %dB lines, hit %.1f%%}",
		c.cfg.SizeBytes>>10, c.cfg.Ways, c.cfg.LineBytes, c.HitRate()*100)
}
