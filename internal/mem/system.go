package mem

import (
	"tasksuperscalar/internal/sim"

	"tasksuperscalar/internal/noc"
)

// SystemConfig sizes the object-granular coherent memory system.
type SystemConfig struct {
	Cores      int
	L1Bytes    uint64    // per-core L1 capacity (64 KB)
	L1Latency  sim.Cycle // 3 cycles
	L2Banks    int       // 32 banks
	L2Latency  sim.Cycle // 22 cycles
	DRAM       DRAMConfig
	LineDetail bool // additionally drive per-core line-granular L1 models
	CtrlBytes  uint32
}

// DefaultSystemConfig returns the Table II memory system for the given core
// count.
func DefaultSystemConfig(cores int) SystemConfig {
	return SystemConfig{
		Cores:     cores,
		L1Bytes:   64 << 10,
		L1Latency: 3,
		L2Banks:   32,
		L2Latency: 22,
		DRAM:      DefaultDRAMConfig(),
		CtrlBytes: 16,
	}
}

// dirEntry is the directory state for one memory object, embedded in the L2
// (MSI at object granularity: an object is Modified in one L1, Shared in
// several, or only present in L2/DRAM).
type dirEntry struct {
	size    uint32
	inL2    bool
	owner   int32 // core holding a dirty copy, -1 if none
	sharers []int32
}

func (d *dirEntry) addSharer(c int32) {
	for _, s := range d.sharers {
		if s == c {
			return
		}
	}
	d.sharers = append(d.sharers, c)
}

func (d *dirEntry) dropSharer(c int32) {
	for i, s := range d.sharers {
		if s == c {
			d.sharers[i] = d.sharers[len(d.sharers)-1]
			d.sharers = d.sharers[:len(d.sharers)-1]
			return
		}
	}
}

// l1Obj tracks one object resident in a core's L1.
type l1Obj struct {
	size  uint32
	dirty bool
	used  uint64
}

type l1State struct {
	objs map[uint64]*l1Obj
	used uint64
	tick uint64
}

// System is the object-granular coherent memory hierarchy. Worker cores
// fetch task operands as DMA-style bursts, the directory keeps L1 copies
// coherent, and the DMA engine copies rename buffers back to their home
// addresses on behalf of the OVT.
type System struct {
	eng  *sim.Engine
	net  *noc.Network
	cfg  SystemConfig
	dram *DRAM

	coreNodes []noc.NodeID
	bankNodes []noc.NodeID
	dmaNode   noc.NodeID

	dir map[uint64]*dirEntry
	l1  []*l1State
	// Optional line-granular models for validation/ablation.
	l1Lines []*SetAssocCache

	// freeEv recycles the typed events that drive the multi-stage fetch
	// and writeback protocols, so burst traffic does not allocate per
	// protocol step.
	freeEv *memEvent

	// Stats.
	fetches       uint64
	l1ObjHits     uint64
	invalidations uint64
	writebacks    uint64
	dmaCopies     uint64
	bytesMoved    uint64
}

// NewSystem builds the memory system and attaches its L2 banks, memory
// controllers and DMA engine to the network. coreNodes must already be
// attached by the caller (the backend owns core nodes).
func NewSystem(eng *sim.Engine, net *noc.Network, coreNodes []noc.NodeID, cfg SystemConfig) *System {
	m := &System{
		eng:       eng,
		net:       net,
		cfg:       cfg,
		dram:      NewDRAM(eng, cfg.DRAM),
		coreNodes: coreNodes,
		dir:       make(map[uint64]*dirEntry),
	}
	for i := 0; i < cfg.L2Banks; i++ {
		m.bankNodes = append(m.bankNodes, net.AddGlobalNode("l2bank"))
	}
	m.dmaNode = net.AddGlobalNode("dma")
	m.l1 = make([]*l1State, cfg.Cores)
	for i := range m.l1 {
		m.l1[i] = &l1State{objs: make(map[uint64]*l1Obj)}
	}
	if cfg.LineDetail {
		m.l1Lines = make([]*SetAssocCache, cfg.Cores)
		for i := range m.l1Lines {
			m.l1Lines[i] = NewSetAssocCache(L1Config())
		}
	}
	return m
}

// BankNode returns the NoC node of the L2 bank that homes addr.
func (m *System) BankNode(addr uint64) noc.NodeID {
	return m.bankNodes[m.bankFor(addr)]
}

func (m *System) bankFor(addr uint64) int {
	// Mix the address so consecutively allocated objects spread out.
	h := addr >> 6
	h ^= h >> 13
	return int(h % uint64(len(m.bankNodes)))
}

func (m *System) entry(base uint64, size uint32) *dirEntry {
	e, ok := m.dir[base]
	if !ok {
		e = &dirEntry{size: size, owner: -1}
		m.dir[base] = e
	}
	if size > e.size {
		e.size = size
	}
	return e
}

// resident reports whether core holds the object, updating LRU on touch.
func (m *System) resident(core int, base uint64) bool {
	st := m.l1[core]
	o, ok := st.objs[base]
	if ok {
		st.tick++
		o.used = st.tick
	}
	return ok
}

// install places the object in core's L1, evicting LRU objects as needed.
// Objects larger than the L1 bypass it.
func (m *System) install(core int, base uint64, size uint32, dirty bool) {
	if uint64(size) > m.cfg.L1Bytes {
		return
	}
	st := m.l1[core]
	if o, ok := st.objs[base]; ok {
		o.dirty = o.dirty || dirty
		st.tick++
		o.used = st.tick
		return
	}
	for st.used+uint64(size) > m.cfg.L1Bytes && len(st.objs) > 0 {
		m.evictLRU(core)
	}
	st.tick++
	st.objs[base] = &l1Obj{size: size, dirty: dirty, used: st.tick}
	st.used += uint64(size)
	e := m.entry(base, size)
	e.addSharer(int32(core))
	if dirty {
		e.owner = int32(core)
	}
}

func (m *System) evictLRU(core int) {
	st := m.l1[core]
	var victim uint64
	var best uint64 = ^uint64(0)
	for b, o := range st.objs {
		if o.used < best {
			best = o.used
			victim = b
		}
	}
	o := st.objs[victim]
	delete(st.objs, victim)
	st.used -= uint64(o.size)
	e := m.entry(victim, o.size)
	e.dropSharer(int32(core))
	if o.dirty && e.owner == int32(core) {
		// Asynchronous dirty eviction writeback to the home bank.
		e.owner = -1
		e.inL2 = true
		m.writebacks++
		m.bytesMoved += uint64(o.size)
		m.net.Send(m.coreNodes[core], m.BankNode(victim), o.size, nil)
	}
}

// memEvent drives the staged fetch and writeback protocols as one pooled
// object with a kind tag, advancing kind at each protocol step instead of
// nesting closures.
type memEvent struct {
	m    *System
	kind uint8
	core int32
	base uint64
	size uint32
	then func()
	next *memEvent
}

const (
	evFetchReq     uint8 = iota // request arrived at the home bank
	evFetchData                 // data available in L2: charge L2 latency
	evFetchBurst                // start the data burst bank -> core
	evFetchInstall              // burst arrived: install and complete
	evWriteback                 // writeback burst arrived at the bank
)

func (m *System) getEvent(kind uint8, core int, base uint64, size uint32, then func()) *memEvent {
	ev := m.freeEv
	if ev == nil {
		ev = &memEvent{m: m}
	} else {
		m.freeEv = ev.next
		ev.next = nil
	}
	ev.kind, ev.core, ev.base, ev.size, ev.then = kind, int32(core), base, size, then
	return ev
}

func (m *System) putEvent(ev *memEvent) {
	ev.then = nil
	ev.next = m.freeEv
	m.freeEv = ev
}

func (ev *memEvent) Fire() {
	m := ev.m
	switch ev.kind {
	case evFetchReq:
		e := m.entry(ev.base, ev.size)
		switch {
		case e.owner >= 0 && e.owner != ev.core:
			// Dirty in another L1: recall it first (cold path — the
			// recall round trip stays closure-based).
			owner := e.owner
			e.owner = -1
			e.inL2 = true
			m.writebacks++
			bank := m.BankNode(ev.base)
			base := ev.base
			m.net.Send(bank, m.coreNodes[owner], m.cfg.CtrlBytes, func() {
				if o, ok := m.l1[owner].objs[base]; ok {
					o.dirty = false
				}
				ev.kind = evFetchData
				m.net.SendEvent(m.coreNodes[owner], bank, ev.size, ev)
			})
		case e.inL2:
			ev.kind = evFetchData
			ev.Fire()
		default:
			// First touch: bring the object from DRAM into L2.
			done := m.dram.Transfer(ev.base, ev.size)
			e.inL2 = true
			ev.kind = evFetchData
			m.eng.ScheduleEventAt(done, ev)
		}
	case evFetchData:
		// L2 access latency, then data burst bank -> core.
		ev.kind = evFetchBurst
		m.eng.ScheduleEvent(m.cfg.L2Latency, ev)
	case evFetchBurst:
		n := m.transferBytes(int(ev.core), ev.base, ev.size)
		m.bytesMoved += uint64(n)
		ev.kind = evFetchInstall
		m.net.SendEvent(m.BankNode(ev.base), m.coreNodes[ev.core], n, ev)
	case evFetchInstall:
		m.install(int(ev.core), ev.base, ev.size, false)
		then := ev.then
		m.putEvent(ev)
		if then != nil {
			then()
		}
	case evWriteback:
		then := ev.then
		m.putEvent(ev)
		m.eng.Schedule(m.cfg.L2Latency, then)
	}
}

// Fetch acquires a read (shared) copy of the object into core's L1 and
// calls then when the data has arrived.
func (m *System) Fetch(core int, base uint64, size uint32, then func()) {
	if then == nil {
		then = func() {}
	}
	m.fetches++
	m.entry(base, size)
	if m.resident(core, base) {
		m.l1ObjHits++
		m.eng.Schedule(m.cfg.L1Latency, then)
		return
	}
	// Request message to the home bank.
	ev := m.getEvent(evFetchReq, core, base, size, then)
	m.net.SendEvent(m.coreNodes[core], m.BankNode(base), m.cfg.CtrlBytes, ev)
}

// transferBytes returns how many bytes must actually move for core to have
// the object. With line detail enabled, resident lines are not re-fetched.
func (m *System) transferBytes(core int, base uint64, size uint32) uint32 {
	if m.l1Lines == nil {
		return size
	}
	_, misses, _ := m.l1Lines[core].AccessRange(base, size, false)
	b := uint32(misses) * uint32(m.l1Lines[core].Config().LineBytes)
	if b == 0 {
		b = uint32(m.l1Lines[core].Config().LineBytes)
	}
	if b > size {
		b = size
	}
	return b
}

// AcquireWrite obtains exclusive ownership of the object for core without
// transferring data (used for pure output operands: write-allocate of a
// fresh buffer). Sharers elsewhere are invalidated. then runs once all
// invalidation acks return.
func (m *System) AcquireWrite(core int, base uint64, size uint32, then func()) {
	if then == nil {
		then = func() {}
	}
	e := m.entry(base, size)
	bank := m.BankNode(base)
	coreNode := m.coreNodes[core]
	m.net.Send(coreNode, bank, m.cfg.CtrlBytes, func() {
		m.invalidateOthers(core, base, e, func() {
			m.install(core, base, size, true)
			e.owner = int32(core)
			m.eng.Schedule(m.cfg.L1Latency, then)
		})
	})
}

// FetchExclusive acquires a writable copy including current data (inout
// operands).
func (m *System) FetchExclusive(core int, base uint64, size uint32, then func()) {
	if then == nil {
		then = func() {}
	}
	m.Fetch(core, base, size, func() {
		e := m.entry(base, size)
		m.invalidateOthers(core, base, e, func() {
			if o, ok := m.l1[core].objs[base]; ok {
				o.dirty = true
			}
			e.owner = int32(core)
			then()
		})
	})
}

// invalidateOthers sends invalidations to every sharer except core and
// waits for all acks.
func (m *System) invalidateOthers(core int, base uint64, e *dirEntry, then func()) {
	var targets []int32
	for _, s := range e.sharers {
		if s != int32(core) {
			targets = append(targets, s)
		}
	}
	if len(targets) == 0 {
		then()
		return
	}
	bank := m.BankNode(base)
	pending := len(targets)
	for _, tgt := range targets {
		tgt := tgt
		m.invalidations++
		m.net.Send(bank, m.coreNodes[tgt], m.cfg.CtrlBytes, func() {
			st := m.l1[tgt]
			if o, ok := st.objs[base]; ok {
				delete(st.objs, base)
				st.used -= uint64(o.size)
			}
			if m.l1Lines != nil {
				m.invalidateLines(int(tgt), base, e.size)
			}
			m.net.Send(m.coreNodes[tgt], bank, m.cfg.CtrlBytes, func() {
				pending--
				if pending == 0 {
					then()
				}
			})
		})
		e.dropSharer(tgt)
	}
	if e.owner >= 0 && e.owner != int32(core) {
		e.owner = -1
	}
}

func (m *System) invalidateLines(core int, base uint64, size uint32) {
	lc := m.l1Lines[core]
	lb := uint64(lc.Config().LineBytes)
	for a := base; a < base+uint64(size); a += lb {
		lc.Invalidate(a)
	}
}

// Writeback flushes core's dirty copy of the object to its home L2 bank
// (called when a task finishes so consumers can observe its outputs).
// The core keeps a clean shared copy.
func (m *System) Writeback(core int, base uint64, size uint32, then func()) {
	if then == nil {
		then = func() {}
	}
	e := m.entry(base, size)
	st := m.l1[core]
	if o, ok := st.objs[base]; ok {
		o.dirty = false
	}
	if e.owner == int32(core) {
		e.owner = -1
	}
	e.inL2 = true
	m.writebacks++
	m.bytesMoved += uint64(size)
	ev := m.getEvent(evWriteback, core, base, size, then)
	m.net.SendEvent(m.coreNodes[core], m.BankNode(base), size, ev)
}

// Copy performs a DMA copy between two objects (rename-buffer copy-back):
// data moves from src's home bank to dst's home bank, and stale L1 copies
// of dst are invalidated.
func (m *System) Copy(src, dst uint64, size uint32, then func()) {
	m.dmaCopies++
	m.bytesMoved += uint64(size)
	e := m.entry(dst, size)
	m.net.Send(m.dmaNode, m.BankNode(src), m.cfg.CtrlBytes, func() {
		m.net.Send(m.BankNode(src), m.BankNode(dst), size, func() {
			m.invalidateOthers(-1, dst, e, func() {
				e.inL2 = true
				if then != nil {
					then()
				}
			})
		})
	})
}

// Stats reports cumulative memory-system activity.
type Stats struct {
	Fetches       uint64
	L1ObjHits     uint64
	Invalidations uint64
	Writebacks    uint64
	DMACopies     uint64
	BytesMoved    uint64
	DRAMTransfers uint64
	DRAMBytes     uint64
}

// Snapshot returns the current statistics.
func (m *System) Snapshot() Stats {
	dt, db := m.dram.Stats()
	return Stats{
		Fetches:       m.fetches,
		L1ObjHits:     m.l1ObjHits,
		Invalidations: m.invalidations,
		Writebacks:    m.writebacks,
		DMACopies:     m.dmaCopies,
		BytesMoved:    m.bytesMoved,
		DRAMTransfers: dt,
		DRAMBytes:     db,
	}
}

// L1LineCache exposes the optional line-granular model for tests.
func (m *System) L1LineCache(core int) *SetAssocCache {
	if m.l1Lines == nil {
		return nil
	}
	return m.l1Lines[core]
}
