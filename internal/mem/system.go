package mem

import (
	"tasksuperscalar/internal/sim"

	"tasksuperscalar/internal/noc"
)

// SystemConfig sizes the object-granular coherent memory system.
type SystemConfig struct {
	Cores      int
	L1Bytes    uint64    // per-core L1 capacity (64 KB)
	L1Latency  sim.Cycle // 3 cycles
	L2Banks    int       // 32 banks
	L2Latency  sim.Cycle // 22 cycles
	DRAM       DRAMConfig
	LineDetail bool // additionally drive per-core line-granular L1 models
	CtrlBytes  uint32
}

// DefaultSystemConfig returns the Table II memory system for the given core
// count.
func DefaultSystemConfig(cores int) SystemConfig {
	return SystemConfig{
		Cores:     cores,
		L1Bytes:   64 << 10,
		L1Latency: 3,
		L2Banks:   32,
		L2Latency: 22,
		DRAM:      DefaultDRAMConfig(),
		CtrlBytes: 16,
	}
}

// dirEntry is the directory state for one memory object, embedded in the L2
// (MSI at object granularity: an object is Modified in one L1, Shared in
// several, or only present in L2/DRAM).
type dirEntry struct {
	size    uint32
	inL2    bool
	owner   int32 // core holding a dirty copy, -1 if none
	sharers []int32
}

func (d *dirEntry) addSharer(c int32) {
	for _, s := range d.sharers {
		if s == c {
			return
		}
	}
	d.sharers = append(d.sharers, c)
}

func (d *dirEntry) dropSharer(c int32) {
	for i, s := range d.sharers {
		if s == c {
			d.sharers[i] = d.sharers[len(d.sharers)-1]
			d.sharers = d.sharers[:len(d.sharers)-1]
			return
		}
	}
}

// dirTable is the directory: an open-addressed index from object base
// address to a chunked slab of dirEntry records. Entries are never removed
// (the directory's working set is the program's object set), and the slab's
// chunked growth keeps *dirEntry pointers stable for the protocol closures
// that hold them across multi-hop message chains.
type dirTable struct {
	mask   uint64
	keys   []uint64
	idx    []int32 // slab index, -1 = empty
	n      int
	chunks [][]dirEntry
}

const (
	dirInitSize = 1024 // initial hash slots (power of 2)
	dirChunk    = 512  // dirEntry records per slab chunk
)

func newDirTable() *dirTable {
	t := &dirTable{}
	t.init(dirInitSize)
	t.chunks = append(t.chunks, make([]dirEntry, 0, dirChunk))
	return t
}

func (t *dirTable) init(size uint64) {
	t.mask = size - 1
	t.keys = make([]uint64, size)
	t.idx = make([]int32, size)
	for i := range t.idx {
		t.idx[i] = -1
	}
	t.n = 0
}

func (t *dirTable) at(i int32) *dirEntry {
	return &t.chunks[i/dirChunk][i%dirChunk]
}

// get returns the entry for base, or nil. Pointers are stable for the
// lifetime of the table.
func (t *dirTable) get(base uint64) *dirEntry {
	i := l1Hash(base) & t.mask
	for {
		s := t.idx[i]
		if s < 0 {
			return nil
		}
		if t.keys[i] == base {
			return t.at(s)
		}
		i = (i + 1) & t.mask
	}
}

// insert adds a fresh entry for base (the caller has checked absence).
func (t *dirTable) insert(base uint64, e dirEntry) *dirEntry {
	if uint64(t.n)*2 >= uint64(len(t.keys)) {
		t.regrow()
	}
	last := len(t.chunks) - 1
	if len(t.chunks[last]) == dirChunk {
		t.chunks = append(t.chunks, make([]dirEntry, 0, dirChunk))
		last++
	}
	t.chunks[last] = append(t.chunks[last], e)
	slab := int32(last*dirChunk + len(t.chunks[last]) - 1)
	i := l1Hash(base) & t.mask
	for t.idx[i] >= 0 {
		i = (i + 1) & t.mask
	}
	t.keys[i] = base
	t.idx[i] = slab
	t.n++
	return t.at(slab)
}

// forEach visits every directory entry (observability/tests).
func (t *dirTable) forEach(fn func(base uint64, e *dirEntry)) {
	for i, s := range t.idx {
		if s >= 0 {
			fn(t.keys[i], t.at(s))
		}
	}
}

func (t *dirTable) regrow() {
	oldKeys, oldIdx := t.keys, t.idx
	t.init(uint64(len(oldKeys)) * 2)
	for i, s := range oldIdx {
		if s < 0 {
			continue
		}
		j := l1Hash(oldKeys[i]) & t.mask
		for t.idx[j] >= 0 {
			j = (j + 1) & t.mask
		}
		t.keys[j] = oldKeys[i]
		t.idx[j] = s
		t.n++
	}
}

// l1Obj tracks one object resident in a core's L1.
type l1Obj struct {
	size  uint32
	dirty bool
	used  uint64 // LRU stamp (strictly increasing per core, so unique)
}

// l1State is one core's L1 content: an open-addressed hash table from
// object base address to l1Obj, stored inline (linear probing with
// backward-shift deletion). The table replaces a map[uint64]*l1Obj: object
// staging touches it on every fetch, and inline storage means residency
// churn allocates nothing once the table reaches its working-set size.
type l1State struct {
	mask  uint64
	keys  []uint64
	objs  []l1Obj
	state []uint8 // 0 = empty, 1 = occupied
	n     int

	used uint64
	tick uint64
}

const l1InitSize = 64 // initial hash slots per core (power of 2)

func newL1State() *l1State {
	st := &l1State{}
	st.grow(l1InitSize)
	return st
}

func (st *l1State) grow(size uint64) {
	oldKeys, oldObjs, oldState := st.keys, st.objs, st.state
	st.mask = size - 1
	st.keys = make([]uint64, size)
	st.objs = make([]l1Obj, size)
	st.state = make([]uint8, size)
	st.n = 0
	for i, s := range oldState {
		if s != 0 {
			st.put(oldKeys[i], oldObjs[i])
		}
	}
}

func l1Hash(base uint64) uint64 {
	h := base >> 6
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h
}

// get returns the resident object record, or nil. The pointer is transient:
// it is invalidated by the next put or delete.
func (st *l1State) get(base uint64) *l1Obj {
	i := l1Hash(base) & st.mask
	for {
		if st.state[i] == 0 {
			return nil
		}
		if st.keys[i] == base {
			return &st.objs[i]
		}
		i = (i + 1) & st.mask
	}
}

// put inserts or overwrites the record for base.
func (st *l1State) put(base uint64, o l1Obj) {
	if uint64(st.n)*2 >= uint64(len(st.keys)) {
		st.grow(uint64(len(st.keys)) * 2)
	}
	i := l1Hash(base) & st.mask
	for st.state[i] != 0 {
		if st.keys[i] == base {
			st.objs[i] = o
			return
		}
		i = (i + 1) & st.mask
	}
	st.keys[i] = base
	st.objs[i] = o
	st.state[i] = 1
	st.n++
}

// delete removes base if present (backward-shift deletion keeps probe
// chains intact).
func (st *l1State) delete(base uint64) {
	mask := st.mask
	i := l1Hash(base) & mask
	for {
		if st.state[i] == 0 {
			return
		}
		if st.keys[i] == base {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		st.state[i] = 0
		for {
			j = (j + 1) & mask
			if st.state[j] == 0 {
				st.n--
				return
			}
			home := l1Hash(st.keys[j]) & mask
			if (j-home)&mask >= (j-i)&mask {
				break
			}
		}
		st.keys[i] = st.keys[j]
		st.objs[i] = st.objs[j]
		st.state[i] = 1
		i = j
	}
}

// forEach visits every resident object (observability/tests; iteration
// order is the table's slot order).
func (st *l1State) forEach(fn func(base uint64, o *l1Obj)) {
	for i, s := range st.state {
		if s != 0 {
			fn(st.keys[i], &st.objs[i])
		}
	}
}

// lruVictim returns the base of the least-recently-used object. LRU stamps
// are unique, so the scan is deterministic regardless of table layout.
func (st *l1State) lruVictim() uint64 {
	var victim uint64
	best := ^uint64(0)
	for i, s := range st.state {
		if s != 0 && st.objs[i].used < best {
			best = st.objs[i].used
			victim = st.keys[i]
		}
	}
	return victim
}

// System is the object-granular coherent memory hierarchy. Worker cores
// fetch task operands as DMA-style bursts, the directory keeps L1 copies
// coherent, and the DMA engine copies rename buffers back to their home
// addresses on behalf of the OVT.
type System struct {
	eng  *sim.Engine
	net  *noc.Network
	cfg  SystemConfig
	dram *DRAM

	coreNodes []noc.NodeID
	bankNodes []noc.NodeID
	dmaNode   noc.NodeID
	// bankMask is L2Banks-1 when the bank count is a power of 2 (mask
	// instead of mod on the per-access home-bank path), else -1.
	bankMask int

	dir *dirTable
	l1  []*l1State
	// Optional line-granular models for validation/ablation.
	l1Lines []*SetAssocCache

	// freeEv recycles the typed events that drive the multi-stage fetch
	// and writeback protocols, so burst traffic does not allocate per
	// protocol step.
	freeEv *memEvent

	// Stats.
	fetches       uint64
	l1ObjHits     uint64
	invalidations uint64
	writebacks    uint64
	dmaCopies     uint64
	bytesMoved    uint64
}

// NewSystem builds the memory system and attaches its L2 banks, memory
// controllers and DMA engine to the network. coreNodes must already be
// attached by the caller (the backend owns core nodes).
func NewSystem(eng *sim.Engine, net *noc.Network, coreNodes []noc.NodeID, cfg SystemConfig) *System {
	m := &System{
		eng:       eng,
		net:       net,
		cfg:       cfg,
		dram:      NewDRAM(eng, cfg.DRAM),
		coreNodes: coreNodes,
		dir:       newDirTable(),
	}
	for i := 0; i < cfg.L2Banks; i++ {
		m.bankNodes = append(m.bankNodes, net.AddGlobalNode("l2bank"))
	}
	m.bankMask = -1
	if n := len(m.bankNodes); n&(n-1) == 0 {
		m.bankMask = n - 1
	}
	m.dmaNode = net.AddGlobalNode("dma")
	m.l1 = make([]*l1State, cfg.Cores)
	for i := range m.l1 {
		m.l1[i] = newL1State()
	}
	if cfg.LineDetail {
		m.l1Lines = make([]*SetAssocCache, cfg.Cores)
		for i := range m.l1Lines {
			m.l1Lines[i] = NewSetAssocCache(L1Config())
		}
	}
	return m
}

// BankNode returns the NoC node of the L2 bank that homes addr.
func (m *System) BankNode(addr uint64) noc.NodeID {
	return m.bankNodes[m.bankFor(addr)]
}

func (m *System) bankFor(addr uint64) int {
	// Mix the address so consecutively allocated objects spread out.
	h := addr >> 6
	h ^= h >> 13
	if m.bankMask >= 0 {
		return int(h & uint64(m.bankMask)) // identical to % for power-of-2 bank counts
	}
	return int(h % uint64(len(m.bankNodes)))
}

func (m *System) entry(base uint64, size uint32) *dirEntry {
	e := m.dir.get(base)
	if e == nil {
		e = m.dir.insert(base, dirEntry{size: size, owner: -1})
	}
	if size > e.size {
		e.size = size
	}
	return e
}

// resident reports whether core holds the object, updating LRU on touch.
func (m *System) resident(core int, base uint64) bool {
	st := m.l1[core]
	o := st.get(base)
	if o != nil {
		st.tick++
		o.used = st.tick
	}
	return o != nil
}

// install places the object in core's L1, evicting LRU objects as needed.
// Objects larger than the L1 bypass it.
func (m *System) install(core int, base uint64, size uint32, dirty bool) {
	if uint64(size) > m.cfg.L1Bytes {
		return
	}
	st := m.l1[core]
	if o := st.get(base); o != nil {
		o.dirty = o.dirty || dirty
		st.tick++
		o.used = st.tick
		return
	}
	for st.used+uint64(size) > m.cfg.L1Bytes && st.n > 0 {
		m.evictLRU(core)
	}
	st.tick++
	st.put(base, l1Obj{size: size, dirty: dirty, used: st.tick})
	st.used += uint64(size)
	e := m.entry(base, size)
	e.addSharer(int32(core))
	if dirty {
		e.owner = int32(core)
	}
}

func (m *System) evictLRU(core int) {
	st := m.l1[core]
	victim := st.lruVictim()
	o := *st.get(victim)
	st.delete(victim)
	st.used -= uint64(o.size)
	e := m.entry(victim, o.size)
	e.dropSharer(int32(core))
	if o.dirty && e.owner == int32(core) {
		// Asynchronous dirty eviction writeback to the home bank.
		e.owner = -1
		e.inL2 = true
		m.writebacks++
		m.bytesMoved += uint64(o.size)
		m.net.Send(m.coreNodes[core], m.BankNode(victim), o.size, nil)
	}
}

// memEvent drives the staged fetch and writeback protocols as one pooled
// object with a kind tag, advancing kind at each protocol step instead of
// nesting closures.
type memEvent struct {
	m    *System
	kind uint8
	core int32
	base uint64
	size uint32
	then func()
	next *memEvent
}

const (
	evFetchReq     uint8 = iota // request arrived at the home bank
	evFetchData                 // data available in L2: charge L2 latency
	evFetchBurst                // start the data burst bank -> core
	evFetchInstall              // burst arrived: install and complete
	evWriteback                 // writeback burst arrived at the bank
)

// ShardKey gives memory-protocol events the affinity of the core they
// serve, so one core's fetch/writeback chatter stays in one shard's queue.
func (ev *memEvent) ShardKey() uint32 { return uint32(ev.core) }

func (m *System) getEvent(kind uint8, core int, base uint64, size uint32, then func()) *memEvent {
	ev := m.freeEv
	if ev == nil {
		ev = &memEvent{m: m}
	} else {
		m.freeEv = ev.next
		ev.next = nil
	}
	ev.kind, ev.core, ev.base, ev.size, ev.then = kind, int32(core), base, size, then
	return ev
}

func (m *System) putEvent(ev *memEvent) {
	ev.then = nil
	ev.next = m.freeEv
	m.freeEv = ev
}

func (ev *memEvent) Fire() {
	m := ev.m
	switch ev.kind {
	case evFetchReq:
		e := m.entry(ev.base, ev.size)
		switch {
		case e.owner >= 0 && e.owner != ev.core:
			// Dirty in another L1: recall it first (cold path — the
			// recall round trip stays closure-based).
			owner := e.owner
			e.owner = -1
			e.inL2 = true
			m.writebacks++
			bank := m.BankNode(ev.base)
			base := ev.base
			m.net.Send(bank, m.coreNodes[owner], m.cfg.CtrlBytes, func() {
				if o := m.l1[owner].get(base); o != nil {
					o.dirty = false
				}
				ev.kind = evFetchData
				m.net.SendEvent(m.coreNodes[owner], bank, ev.size, ev)
			})
		case e.inL2:
			ev.kind = evFetchData
			ev.Fire()
		default:
			// First touch: bring the object from DRAM into L2.
			done := m.dram.Transfer(ev.base, ev.size)
			e.inL2 = true
			ev.kind = evFetchData
			m.eng.ScheduleEventAt(done, ev)
		}
	case evFetchData:
		// L2 access latency, then data burst bank -> core.
		ev.kind = evFetchBurst
		m.eng.ScheduleEvent(m.cfg.L2Latency, ev)
	case evFetchBurst:
		n := m.transferBytes(int(ev.core), ev.base, ev.size)
		m.bytesMoved += uint64(n)
		ev.kind = evFetchInstall
		m.net.SendEvent(m.BankNode(ev.base), m.coreNodes[ev.core], n, ev)
	case evFetchInstall:
		m.install(int(ev.core), ev.base, ev.size, false)
		then := ev.then
		m.putEvent(ev)
		if then != nil {
			then()
		}
	case evWriteback:
		then := ev.then
		m.putEvent(ev)
		m.eng.Schedule(m.cfg.L2Latency, then)
	}
}

// Fetch acquires a read (shared) copy of the object into core's L1 and
// calls then when the data has arrived.
func (m *System) Fetch(core int, base uint64, size uint32, then func()) {
	if then == nil {
		then = func() {}
	}
	m.fetches++
	m.entry(base, size)
	if m.resident(core, base) {
		m.l1ObjHits++
		m.eng.Schedule(m.cfg.L1Latency, then)
		return
	}
	// Request message to the home bank.
	ev := m.getEvent(evFetchReq, core, base, size, then)
	m.net.SendEvent(m.coreNodes[core], m.BankNode(base), m.cfg.CtrlBytes, ev)
}

// transferBytes returns how many bytes must actually move for core to have
// the object. With line detail enabled, resident lines are not re-fetched.
func (m *System) transferBytes(core int, base uint64, size uint32) uint32 {
	if m.l1Lines == nil {
		return size
	}
	_, misses, _ := m.l1Lines[core].AccessRange(base, size, false)
	b := uint32(misses) * uint32(m.l1Lines[core].Config().LineBytes)
	if b == 0 {
		b = uint32(m.l1Lines[core].Config().LineBytes)
	}
	if b > size {
		b = size
	}
	return b
}

// AcquireWrite obtains exclusive ownership of the object for core without
// transferring data (used for pure output operands: write-allocate of a
// fresh buffer). Sharers elsewhere are invalidated. then runs once all
// invalidation acks return.
func (m *System) AcquireWrite(core int, base uint64, size uint32, then func()) {
	if then == nil {
		then = func() {}
	}
	e := m.entry(base, size)
	bank := m.BankNode(base)
	coreNode := m.coreNodes[core]
	m.net.Send(coreNode, bank, m.cfg.CtrlBytes, func() {
		m.invalidateOthers(core, base, e, func() {
			m.install(core, base, size, true)
			e.owner = int32(core)
			m.eng.Schedule(m.cfg.L1Latency, then)
		})
	})
}

// FetchExclusive acquires a writable copy including current data (inout
// operands).
func (m *System) FetchExclusive(core int, base uint64, size uint32, then func()) {
	if then == nil {
		then = func() {}
	}
	m.Fetch(core, base, size, func() {
		e := m.entry(base, size)
		m.invalidateOthers(core, base, e, func() {
			if o := m.l1[core].get(base); o != nil {
				o.dirty = true
			}
			e.owner = int32(core)
			then()
		})
	})
}

// invalidateOthers sends invalidations to every sharer except core and
// waits for all acks.
func (m *System) invalidateOthers(core int, base uint64, e *dirEntry, then func()) {
	var targets []int32
	for _, s := range e.sharers {
		if s != int32(core) {
			targets = append(targets, s)
		}
	}
	if len(targets) == 0 {
		then()
		return
	}
	bank := m.BankNode(base)
	pending := len(targets)
	for _, tgt := range targets {
		tgt := tgt
		m.invalidations++
		m.net.Send(bank, m.coreNodes[tgt], m.cfg.CtrlBytes, func() {
			st := m.l1[tgt]
			if o := st.get(base); o != nil {
				size := o.size
				st.delete(base)
				st.used -= uint64(size)
			}
			if m.l1Lines != nil {
				m.invalidateLines(int(tgt), base, e.size)
			}
			m.net.Send(m.coreNodes[tgt], bank, m.cfg.CtrlBytes, func() {
				pending--
				if pending == 0 {
					then()
				}
			})
		})
		e.dropSharer(tgt)
	}
	if e.owner >= 0 && e.owner != int32(core) {
		e.owner = -1
	}
}

func (m *System) invalidateLines(core int, base uint64, size uint32) {
	lc := m.l1Lines[core]
	lb := uint64(lc.Config().LineBytes)
	for a := base; a < base+uint64(size); a += lb {
		lc.Invalidate(a)
	}
}

// Writeback flushes core's dirty copy of the object to its home L2 bank
// (called when a task finishes so consumers can observe its outputs).
// The core keeps a clean shared copy.
func (m *System) Writeback(core int, base uint64, size uint32, then func()) {
	if then == nil {
		then = func() {}
	}
	e := m.entry(base, size)
	st := m.l1[core]
	if o := st.get(base); o != nil {
		o.dirty = false
	}
	if e.owner == int32(core) {
		e.owner = -1
	}
	e.inL2 = true
	m.writebacks++
	m.bytesMoved += uint64(size)
	ev := m.getEvent(evWriteback, core, base, size, then)
	m.net.SendEvent(m.coreNodes[core], m.BankNode(base), size, ev)
}

// Copy performs a DMA copy between two objects (rename-buffer copy-back):
// data moves from src's home bank to dst's home bank, and stale L1 copies
// of dst are invalidated. done fires when the copy completes (it implements
// core.CopyEngine; the OVT passes a pooled event).
func (m *System) Copy(src, dst uint64, size uint32, done sim.Event) {
	m.dmaCopies++
	m.bytesMoved += uint64(size)
	e := m.entry(dst, size)
	m.net.Send(m.dmaNode, m.BankNode(src), m.cfg.CtrlBytes, func() {
		m.net.Send(m.BankNode(src), m.BankNode(dst), size, func() {
			m.invalidateOthers(-1, dst, e, func() {
				e.inL2 = true
				if done != nil {
					done.Fire()
				}
			})
		})
	})
}

// Stats reports cumulative memory-system activity.
type Stats struct {
	Fetches       uint64
	L1ObjHits     uint64
	Invalidations uint64
	Writebacks    uint64
	DMACopies     uint64
	BytesMoved    uint64
	DRAMTransfers uint64
	DRAMBytes     uint64
}

// Snapshot returns the current statistics.
func (m *System) Snapshot() Stats {
	dt, db := m.dram.Stats()
	return Stats{
		Fetches:       m.fetches,
		L1ObjHits:     m.l1ObjHits,
		Invalidations: m.invalidations,
		Writebacks:    m.writebacks,
		DMACopies:     m.dmaCopies,
		BytesMoved:    m.bytesMoved,
		DRAMTransfers: dt,
		DRAMBytes:     db,
	}
}

// L1LineCache exposes the optional line-granular model for tests.
func (m *System) L1LineCache(core int) *SetAssocCache {
	if m.l1Lines == nil {
		return nil
	}
	return m.l1Lines[core]
}
