package mem

import (
	"testing"

	"tasksuperscalar/internal/noc"
	"tasksuperscalar/internal/sim"
)

// BenchmarkCacheAccess measures single-line set-associative lookups.
func BenchmarkCacheAccess(b *testing.B) {
	c := NewSetAssocCache(L1Config())
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*64)%(128<<10), i%4 == 0)
	}
}

// BenchmarkCacheAccessRange measures bulk (operand-sized) accesses.
func BenchmarkCacheAccessRange(b *testing.B) {
	c := NewSetAssocCache(L1Config())
	b.SetBytes(16 << 10)
	for i := 0; i < b.N; i++ {
		c.AccessRange(uint64(i%8)*(16<<10), 16<<10, false)
	}
}

// BenchmarkSystemFetch measures object-granular coherent fetches.
func BenchmarkSystemFetch(b *testing.B) {
	e := sim.NewEngine()
	net := noc.NewNetwork(e, 8, noc.DefaultConfig())
	var coreNodes []noc.NodeID
	for i := 0; i < 16; i++ {
		coreNodes = append(coreNodes, net.AddCore("c"))
	}
	m := NewSystem(e, net, coreNodes, DefaultSystemConfig(16))
	net.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Fetch(i%16, uint64(0x10000+(i%64)*0x10000), 16<<10, nil)
		if i%256 == 255 {
			e.Run()
		}
	}
	e.Run()
}
