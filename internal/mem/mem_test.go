package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tasksuperscalar/internal/noc"
	"tasksuperscalar/internal/sim"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewSetAssocCache(CacheConfig{SizeBytes: 1024, LineBytes: 64, Ways: 2, Latency: 3})
	if r := c.Access(0x100, false); r.Hit {
		t.Fatal("cold access must miss")
	}
	if r := c.Access(0x100, false); !r.Hit {
		t.Fatal("second access must hit")
	}
	if r := c.Access(0x13F, false); !r.Hit {
		t.Fatal("same line must hit")
	}
	if r := c.Access(0x140, false); r.Hit {
		t.Fatal("next line must miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 64B lines, 8 sets (1024B). Three lines mapping to set 0:
	// line addresses are multiples of 64*8=512.
	c := NewSetAssocCache(CacheConfig{SizeBytes: 1024, LineBytes: 64, Ways: 2, Latency: 3})
	c.Access(0, false)
	c.Access(512, false)
	c.Access(0, false) // touch 0 so 512 is LRU
	r := c.Access(1024, false)
	if r.Hit || !r.Evicted {
		t.Fatalf("expected eviction on conflict miss, got %+v", r)
	}
	if r.VictimAddr != 512 {
		t.Fatalf("evicted %#x, want 512 (LRU)", r.VictimAddr)
	}
	if !c.Contains(0) || c.Contains(512) || !c.Contains(1024) {
		t.Fatal("LRU state wrong after eviction")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := NewSetAssocCache(CacheConfig{SizeBytes: 1024, LineBytes: 64, Ways: 2, Latency: 3})
	c.Access(0, true) // dirty
	c.Access(512, false)
	c.Access(512, false)
	c.Access(0, false)
	r := c.Access(1024, false) // evicts 512 (clean)
	if r.VictimDirty {
		t.Fatal("clean victim flagged dirty")
	}
	c.Access(2048, false) // now 0 is LRU? touch order: 0 touched recently...
	_, _, _, wb := c.Stats()
	_ = wb
	// Force dirty eviction: fill set with new lines.
	c2 := NewSetAssocCache(CacheConfig{SizeBytes: 1024, LineBytes: 64, Ways: 2, Latency: 3})
	c2.Access(0, true)
	c2.Access(512, true)
	r = c2.Access(1024, false)
	if !r.Evicted || !r.VictimDirty {
		t.Fatalf("expected dirty eviction, got %+v", r)
	}
	_, _, _, wb2 := c2.Stats()
	if wb2 != 1 {
		t.Fatalf("writebacks = %d, want 1", wb2)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewSetAssocCache(L1Config())
	c.Access(0x2000, true)
	if !c.Invalidate(0x2000) {
		t.Fatal("invalidate must report dirty")
	}
	if c.Contains(0x2000) {
		t.Fatal("line still present after invalidate")
	}
	if c.Invalidate(0x2000) {
		t.Fatal("second invalidate must report clean/absent")
	}
}

func TestCacheAccessRange(t *testing.T) {
	c := NewSetAssocCache(L1Config())
	hits, misses, _ := c.AccessRange(0, 64*10, false)
	if hits != 0 || misses != 10 {
		t.Fatalf("cold range: hits=%d misses=%d, want 0/10", hits, misses)
	}
	hits, misses, _ = c.AccessRange(0, 64*10, false)
	if hits != 10 || misses != 0 {
		t.Fatalf("warm range: hits=%d misses=%d, want 10/0", hits, misses)
	}
	// Unaligned range spanning two lines.
	c2 := NewSetAssocCache(L1Config())
	_, misses, _ = c2.AccessRange(60, 8, false)
	if misses != 2 {
		t.Fatalf("unaligned 8B spanning 2 lines: misses=%d, want 2", misses)
	}
	if h, m, w := c2.AccessRange(0, 0, false); h+m+w != 0 {
		t.Fatal("zero-size range must not touch the cache")
	}
}

func TestCacheHitRateWorkingSet(t *testing.T) {
	// A working set equal to the cache size must fully hit on re-access.
	c := NewSetAssocCache(L1Config())
	size := uint32(c.Config().SizeBytes)
	c.AccessRange(0, size, false)
	hits, misses, _ := c.AccessRange(0, size, false)
	if misses != 0 {
		t.Fatalf("re-access of L1-sized set missed %d times (hits %d)", misses, hits)
	}
	// Twice the cache size thrashes.
	c2 := NewSetAssocCache(L1Config())
	c2.AccessRange(0, 2*size, false)
	hits, _, _ = c2.AccessRange(0, 2*size, false)
	if hits != 0 {
		t.Fatalf("thrashing set hit %d times, want 0 with LRU", hits)
	}
}

// Property: hits+misses equals lines touched for arbitrary ranges.
func TestCacheRangeCountProperty(t *testing.T) {
	f := func(addr uint32, size uint16) bool {
		c := NewSetAssocCache(L1Config())
		a := uint64(addr)
		s := uint32(size)
		if s == 0 {
			return true
		}
		h, m, _ := c.AccessRange(a, s, false)
		lb := uint64(64)
		lines := (a+uint64(s)-1)/lb - a/lb + 1
		return h+m == lines
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDRAMChannelSerialization(t *testing.T) {
	e := sim.NewEngine()
	d := NewDRAM(e, DRAMConfig{Controllers: 1, ChannelsPerMC: 1, Latency: 100, BytesPerCycle: 2})
	done1 := d.Transfer(0, 200) // 100 cycles occupancy
	done2 := d.Transfer(0, 200)
	if done1 != 200 { // 100 latency + 100 occupancy
		t.Fatalf("first transfer done at %d, want 200", done1)
	}
	if done2 != 300 { // starts after first's occupancy (100), +100+100
		t.Fatalf("second transfer done at %d, want 300", done2)
	}
}

func TestDRAMChannelParallelism(t *testing.T) {
	e := sim.NewEngine()
	d := NewDRAM(e, DefaultDRAMConfig())
	if d.Channels() != 8 {
		t.Fatalf("channels = %d, want 8 (4 MC x 2)", d.Channels())
	}
	// Addresses in different 4KB frames map to different channels.
	done1 := d.Transfer(0, 4096)
	done2 := d.Transfer(4096, 4096)
	if done1 != done2 {
		t.Fatalf("independent channels should finish together: %d vs %d", done1, done2)
	}
}

func newTestSystem(t *testing.T, cores int, lineDetail bool) (*sim.Engine, *System) {
	t.Helper()
	e := sim.NewEngine()
	net := noc.NewNetwork(e, 8, noc.DefaultConfig())
	var coreNodes []noc.NodeID
	for i := 0; i < cores; i++ {
		coreNodes = append(coreNodes, net.AddCore("core"))
	}
	cfg := DefaultSystemConfig(cores)
	cfg.LineDetail = lineDetail
	m := NewSystem(e, net, coreNodes, cfg)
	net.Build()
	return e, m
}

func TestFetchColdThenWarm(t *testing.T) {
	e, m := newTestSystem(t, 4, false)
	var t1, t2 sim.Cycle
	m.Fetch(0, 0x10000, 16384, func() { t1 = e.Now() })
	e.Run()
	m.Fetch(0, 0x10000, 16384, func() { t2 = e.Now() - t1 })
	e.Run()
	if t1 == 0 {
		t.Fatal("cold fetch never completed")
	}
	if t2 != m.cfg.L1Latency {
		t.Fatalf("warm fetch took %d cycles, want L1 latency %d", t2, m.cfg.L1Latency)
	}
	s := m.Snapshot()
	if s.L1ObjHits != 1 {
		t.Fatalf("L1 object hits = %d, want 1", s.L1ObjHits)
	}
	if s.DRAMTransfers != 1 {
		t.Fatalf("DRAM transfers = %d, want 1 (first touch)", s.DRAMTransfers)
	}
}

func TestSecondCoreHitsL2(t *testing.T) {
	e, m := newTestSystem(t, 4, false)
	m.Fetch(0, 0x10000, 16384, nil)
	e.Run()
	m.Fetch(1, 0x10000, 16384, nil)
	e.Run()
	s := m.Snapshot()
	if s.DRAMTransfers != 1 {
		t.Fatalf("DRAM transfers = %d, want 1 (second core must hit L2)", s.DRAMTransfers)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	e, m := newTestSystem(t, 4, false)
	m.Fetch(0, 0x10000, 4096, nil)
	m.Fetch(1, 0x10000, 4096, nil)
	e.Run()
	done := false
	m.FetchExclusive(2, 0x10000, 4096, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("exclusive fetch never completed")
	}
	s := m.Snapshot()
	if s.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", s.Invalidations)
	}
	if m.resident(0, 0x10000) || m.resident(1, 0x10000) {
		t.Fatal("sharer copies survived invalidation")
	}
}

func TestDirtyRecallOnFetch(t *testing.T) {
	e, m := newTestSystem(t, 4, false)
	m.AcquireWrite(0, 0x20000, 4096, nil)
	e.Run()
	got := false
	m.Fetch(1, 0x20000, 4096, func() { got = true })
	e.Run()
	if !got {
		t.Fatal("fetch after dirty copy never completed")
	}
	s := m.Snapshot()
	if s.Writebacks == 0 {
		t.Fatal("dirty recall must count a writeback")
	}
}

func TestL1CapacityEviction(t *testing.T) {
	e, m := newTestSystem(t, 2, false)
	// Fill the 64KB L1 with five 16KB objects: one must be evicted.
	for i := 0; i < 5; i++ {
		m.Fetch(0, uint64(0x100000+i*0x10000), 16384, nil)
		e.Run()
	}
	st := m.l1[0]
	if st.used > m.cfg.L1Bytes {
		t.Fatalf("L1 over capacity: %d > %d", st.used, m.cfg.L1Bytes)
	}
	if st.n != 4 {
		t.Fatalf("expected 4 resident objects, got %d", st.n)
	}
	// The first-fetched object must be the evicted one (LRU).
	if m.resident(0, 0x100000) {
		t.Fatal("LRU object still resident")
	}
}

func TestHugeObjectBypassesL1(t *testing.T) {
	e, m := newTestSystem(t, 2, false)
	m.Fetch(0, 0x800000, 770<<10, nil) // SPECFEM-sized operand
	e.Run()
	if m.resident(0, 0x800000) {
		t.Fatal("object larger than L1 must not be cached")
	}
}

func TestWritebackMakesDataVisible(t *testing.T) {
	e, m := newTestSystem(t, 2, false)
	m.AcquireWrite(0, 0x30000, 8192, nil)
	e.Run()
	fin := false
	m.Writeback(0, 0x30000, 8192, func() { fin = true })
	e.Run()
	if !fin {
		t.Fatal("writeback never completed")
	}
	ent := m.dir.get(0x30000)
	if ent.owner != -1 || !ent.inL2 {
		t.Fatalf("directory after writeback: owner=%d inL2=%v", ent.owner, ent.inL2)
	}
}

func TestDMACopyInvalidatesDst(t *testing.T) {
	e, m := newTestSystem(t, 2, false)
	m.Fetch(0, 0x40000, 4096, nil)
	e.Run()
	done := false
	m.Copy(0x50000, 0x40000, 4096, sim.FuncEvent(func() { done = true }))
	e.Run()
	if !done {
		t.Fatal("DMA copy never completed")
	}
	if m.resident(0, 0x40000) {
		t.Fatal("stale destination copy survived DMA copy")
	}
	if m.Snapshot().DMACopies != 1 {
		t.Fatal("DMA copy not counted")
	}
}

func TestLineDetailReducesTransfer(t *testing.T) {
	e, m := newTestSystem(t, 2, true)
	m.Fetch(0, 0x60000, 4096, nil)
	e.Run()
	lc := m.L1LineCache(0)
	if lc == nil {
		t.Fatal("line cache missing in line-detail mode")
	}
	_, misses, _ := lc.AccessRange(0x60000, 4096, false)
	if misses != 0 {
		t.Fatalf("lines not resident after fetch: %d misses", misses)
	}
}

// Property: the L1 object state never exceeds capacity and directory sharer
// lists stay consistent with residency, across random operation sequences.
func TestCoherenceInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine()
		net := noc.NewNetwork(e, 8, noc.DefaultConfig())
		cores := 4
		var coreNodes []noc.NodeID
		for i := 0; i < cores; i++ {
			coreNodes = append(coreNodes, net.AddCore("core"))
		}
		m := NewSystem(e, net, coreNodes, DefaultSystemConfig(cores))
		net.Build()
		for op := 0; op < 50; op++ {
			core := rng.Intn(cores)
			base := uint64(0x10000 * (1 + rng.Intn(8)))
			size := uint32(4096 * (1 + rng.Intn(4)))
			switch rng.Intn(4) {
			case 0:
				m.Fetch(core, base, size, nil)
			case 1:
				m.FetchExclusive(core, base, size, nil)
			case 2:
				m.AcquireWrite(core, base, size, nil)
			case 3:
				m.Writeback(core, base, size, nil)
			}
			e.Run()
		}
		for c := 0; c < cores; c++ {
			if m.l1[c].used > m.cfg.L1Bytes {
				return false
			}
			var sum uint64
			m.l1[c].forEach(func(_ uint64, o *l1Obj) {
				sum += uint64(o.size)
			})
			if sum != m.l1[c].used {
				return false
			}
		}
		// Every owner in the directory must actually hold the object.
		ok := true
		m.dir.forEach(func(base uint64, ent *dirEntry) {
			if ent.owner >= 0 && m.l1[ent.owner].get(base) == nil {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
