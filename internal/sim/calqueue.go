package sim

import "math/bits"

// calQueue is the engine's pending-event set: a hierarchical calendar queue
// tuned for discrete-event simulation, where almost every event lands within
// a few hundred cycles of the clock.
//
// Near-future events live in a ring of per-cycle buckets covering a window
// of calWindow cycles starting at winStart; each bucket is an append-only
// FIFO, so same-cycle events keep their schedule (seq) order for free.
// Events beyond the window go to a plain binary min-heap of cells ("far"),
// which is migrated into the window whenever the window advances. The far
// heap is also the fallback for events scheduled below the window (possible
// after a peek jumped the window forward and the clock was then rewound by
// RunUntil): pop compares the far minimum against the window head, so the
// global (at, seq) order holds unconditionally.
//
// Scheduling and popping are O(1) amortized for in-window events — an
// append and a slice read, with no interface boxing and no allocation once
// the bucket storage is warm — and O(log n) for the rare far events.
type calQueue struct {
	buckets  []bucket // len calWindow; bucket i holds cycles c with c&calMask == i
	winStart Cycle    // first cycle covered by the bucket window (calMask-aligned)
	scan     Cycle    // no in-window events exist at cycles < scan
	inWin    int      // events currently held in buckets
	far      farHeap  // events outside [winStart, winStart+calWindow)
	n        int      // total pending events

	// occ mirrors bucket occupancy, one bit per bucket, so seek jumps to
	// the next non-empty bucket with a word scan instead of walking empty
	// cycles one at a time. Invariant: bit i is set iff buckets[i] holds
	// at least one event.
	occ [calWindow / 64]uint64
}

func (q *calQueue) setOcc(i uint32)   { q.occ[i>>6] |= 1 << (i & 63) }
func (q *calQueue) clearOcc(i uint32) { q.occ[i>>6] &^= 1 << (i & 63) }

const (
	calWindowBits = 12
	calWindow     = Cycle(1) << calWindowBits
	calMask       = calWindow - 1

	// bucketSeedCap is the initial per-bucket capacity, carved from one
	// contiguous backing array at init. Growing 4096 buckets from nil one
	// append at a time costs thousands of small allocations per engine;
	// seeding them from a single slab removes that warm-up tax (buckets
	// that outgrow the seed reallocate individually and stay warm).
	bucketSeedCap = 8

	// farSeedCap pre-sizes the far heap so the first few hundred
	// long-horizon events (task runtimes, DRAM transfers) grow it once.
	farSeedCap = 256
)

// cell is one scheduled event. Exactly one of fn and ev is set.
type cell struct {
	at  Cycle
	seq uint64
	fn  func()
	ev  Event
}

// cellBefore is the engine's total event order: time, then schedule order.
func cellBefore(a, b *cell) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

type bucket struct {
	events []cell
	head   int
}

func (q *calQueue) len() int { return q.n }

func (q *calQueue) init() {
	if q.buckets == nil {
		q.buckets = make([]bucket, calWindow)
		seed := make([]cell, int(calWindow)*bucketSeedCap)
		for i := range q.buckets {
			q.buckets[i].events = seed[i*bucketSeedCap : i*bucketSeedCap : (i+1)*bucketSeedCap]
		}
		q.far.h = make([]cell, 0, farSeedCap)
	}
}

// schedule inserts a cell. Cells with at below the window (only possible
// after the clock was rewound below winStart) go to the far heap, where pop
// finds them via the head comparison.
func (q *calQueue) schedule(c cell) {
	q.init()
	q.n++
	if c.at-q.winStart < calWindow { // unsigned: below-window wraps huge
		b := &q.buckets[c.at&calMask]
		if len(b.events) == b.head {
			q.setOcc(uint32(c.at & calMask))
		}
		b.events = append(b.events, c)
		q.inWin++
		if c.at < q.scan {
			q.scan = c.at
		}
		return
	}
	q.far.push(c)
}

// rebase moves the bucket window so that cycle t is covered, then migrates
// far events that now fall inside it. Only called when the window is empty.
func (q *calQueue) rebase(t Cycle) {
	q.winStart = t &^ calMask
	q.scan = t
	for len(q.far.h) > 0 && q.far.h[0].at-q.winStart < calWindow {
		c := q.far.pop()
		b := &q.buckets[c.at&calMask]
		if len(b.events) == b.head {
			q.setOcc(uint32(c.at & calMask))
		}
		b.events = append(b.events, c)
		q.inWin++
		if c.at < q.scan {
			q.scan = c.at
		}
	}
}

// seek advances scan to the next non-empty bucket and returns it. The
// caller must ensure inWin > 0. The occupancy bitmap turns the walk over
// empty cycles into a word scan: find the next set bit at or after scan's
// bucket, circularly (bucket order from scan is cycle order within the
// window, so the first occupied bucket is the earliest pending cycle).
func (q *calQueue) seek() *bucket {
	// Fast path: the bucket at scan is still non-empty (same-cycle event
	// bursts are the common case — module costs cluster messages).
	if b := &q.buckets[q.scan&calMask]; b.head < len(b.events) {
		return b
	}
	start := uint32(q.scan & calMask)
	w := start >> 6
	if word := q.occ[w] & (^uint64(0) << (start & 63)); word != 0 {
		i := w<<6 + uint32(bits.TrailingZeros64(word))
		q.scan += Cycle(i-start) & calMask
		return &q.buckets[i]
	}
	for k := 1; k <= len(q.occ); k++ {
		w2 := (w + uint32(k)) % uint32(len(q.occ))
		if word := q.occ[w2]; word != 0 {
			i := w2<<6 + uint32(bits.TrailingZeros64(word))
			q.scan += Cycle(i-start) & calMask
			return &q.buckets[i]
		}
	}
	panic("sim: calendar queue window accounting corrupted")
}

// pop removes and returns the earliest cell in (at, seq) order.
func (q *calQueue) pop() (cell, bool) {
	if q.n == 0 {
		return cell{}, false
	}
	q.init()
	if q.inWin == 0 {
		q.rebase(q.far.h[0].at) // guaranteed to move the far minimum in-window
	}
	b := q.seek()
	c := &b.events[b.head]
	// The far heap may hold an earlier event only when it has entries below
	// the window; one comparison keeps the order exact in that rare case.
	if len(q.far.h) > 0 && cellBefore(&q.far.h[0], c) {
		q.n--
		return q.far.pop(), true
	}
	out := *c
	*c = cell{} // release the closure/event reference
	b.head++
	if b.head == len(b.events) {
		b.events = b.events[:0]
		b.head = 0
		q.clearOcc(uint32(q.scan & calMask))
	}
	q.inWin--
	q.n--
	return out, true
}

// peek returns the (at, seq) ordering key of the earliest pending cell
// without removing it. The sharded committer uses it to merge the overlay
// queue against shard batches at exact (cycle, seq) precision; peekAt below
// remains the cheaper time-only probe.
func (q *calQueue) peek() (Cycle, uint64, bool) {
	if q.n == 0 {
		return 0, 0, false
	}
	q.init()
	if q.inWin == 0 {
		// n > 0 and nothing in the window means the far heap is non-empty.
		return q.far.h[0].at, q.far.h[0].seq, true
	}
	b := q.seek()
	c := &b.events[b.head]
	if len(q.far.h) > 0 && cellBefore(&q.far.h[0], c) {
		return q.far.h[0].at, q.far.h[0].seq, true
	}
	return c.at, c.seq, true
}

// peekAt returns the timestamp of the earliest pending cell without
// removing it.
func (q *calQueue) peekAt() (Cycle, bool) {
	if q.n == 0 {
		return 0, false
	}
	q.init()
	if q.inWin == 0 {
		return q.far.h[0].at, true
	}
	b := q.seek()
	at := b.events[b.head].at
	if len(q.far.h) > 0 && q.far.h[0].at < at {
		at = q.far.h[0].at
	}
	return at, true
}

// farHeap is a hand-rolled binary min-heap of cells ordered by (at, seq).
// container/heap would box every cell into an interface; this does not.
type farHeap struct {
	h []cell
}

func (f *farHeap) push(c cell) {
	f.h = append(f.h, c)
	i := len(f.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !cellBefore(&f.h[i], &f.h[parent]) {
			break
		}
		f.h[i], f.h[parent] = f.h[parent], f.h[i]
		i = parent
	}
}

func (f *farHeap) pop() cell {
	top := f.h[0]
	last := len(f.h) - 1
	f.h[0] = f.h[last]
	f.h[last] = cell{} // release references
	f.h = f.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && cellBefore(&f.h[l], &f.h[small]) {
			small = l
		}
		if r < last && cellBefore(&f.h[r], &f.h[small]) {
			small = r
		}
		if small == i {
			break
		}
		f.h[i], f.h[small] = f.h[small], f.h[i]
		i = small
	}
	return top
}
