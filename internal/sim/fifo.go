package sim

// FIFO is an allocation-conscious first-in-first-out queue backed by one
// slice. Popping advances a head index instead of reslicing (`s = s[1:]`
// permanently discards capacity, so a queue that cycles through it
// reallocates on almost every push); pushing compacts the consumed prefix
// back to the front before the backing array would have to grow. A queue
// that reaches its high-water mark therefore stops allocating entirely —
// the property the zero-steady-state-allocation invariant of the pipeline
// modules is built on (see docs/ARCHITECTURE.md).
//
// The zero value is an empty queue. FIFO is not safe for concurrent use;
// like every simulation structure it is owned by one engine goroutine.
type FIFO[T any] struct {
	buf  []T
	head int
}

// Len returns the number of queued elements.
func (f *FIFO[T]) Len() int { return len(f.buf) - f.head }

// Push appends x to the tail.
func (f *FIFO[T]) Push(x T) {
	if f.head > 0 && len(f.buf) == cap(f.buf) {
		// Reuse the consumed prefix instead of growing.
		n := copy(f.buf, f.buf[f.head:])
		clearTail(f.buf, n)
		f.buf = f.buf[:n]
		f.head = 0
	}
	f.buf = append(f.buf, x)
}

// Pop removes and returns the head element. It panics on an empty queue.
func (f *FIFO[T]) Pop() T {
	x := f.buf[f.head]
	var zero T
	f.buf[f.head] = zero // release references held by the slot
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return x
}

// Front returns a pointer to the head element without removing it. The
// pointer is invalidated by the next Push or Pop.
func (f *FIFO[T]) Front() *T { return &f.buf[f.head] }

// PopBack removes and returns the tail element (the rare deque case, e.g.
// work stealing). It panics on an empty queue.
func (f *FIFO[T]) PopBack() T {
	last := len(f.buf) - 1
	x := f.buf[last]
	var zero T
	f.buf[last] = zero
	f.buf = f.buf[:last]
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return x
}

// At returns a pointer to the i-th queued element (0 = head). The pointer
// is invalidated by the next Push or Pop.
func (f *FIFO[T]) At(i int) *T { return &f.buf[f.head+i] }

// RemoveAt removes and returns the i-th queued element (0 = head),
// preserving the relative order of the remaining elements. Cost is O(i):
// the prefix before the removed slot shifts toward the tail and the head
// index advances, so removals near the head — the only ones the bounded
// scan windows of the dispatch policies perform — stay cheap and never
// move the unscanned suffix. It panics when i is out of range.
func (f *FIFO[T]) RemoveAt(i int) T {
	idx := f.head + i
	x := f.buf[idx]
	copy(f.buf[f.head+1:idx+1], f.buf[f.head:idx])
	var zero T
	f.buf[f.head] = zero
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return x
}

// clearTail zeroes buf[n:] so moved-from slots do not retain references.
func clearTail[T any](buf []T, n int) {
	var zero T
	for i := n; i < len(buf); i++ {
		buf[i] = zero
	}
}
