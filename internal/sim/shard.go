package sim

import "sync"

// shard is one goroutine-owned slice of the pending-event set. Each shard
// runs its own calendar queue: modules (or, for unhinted events, a
// deterministic seq stripe) are mapped onto shards, and every event bound
// for a shard's modules at or beyond the commit horizon is staged in that
// shard's queue instead of the committer's.
//
// The shard goroutine does the queue bookkeeping the serial engine pays on
// its critical path — calendar-bucket inserts, occupancy scans, far-heap
// sifts — concurrently with the committer's merge-and-fire loop:
//
//   - absorb: cross-shard event batches arrive in the inbox (mutex-guarded
//     double buffer) and are folded into the calendar queue while the
//     committer is still firing the current window;
//   - drain: at each window barrier the shard pops everything below the new
//     horizon into a reusable batch, already in (cycle, seq) order because
//     the calendar queue pops in exactly that order, and reports the
//     timestamp of its earliest remaining event for horizon planning.
//
// Shard state is touched by the shard goroutine only; the committer
// communicates exclusively through the inbox mutex and the cmd/reply
// channels, whose sends/receives provide the happens-before edges that make
// the batch and buffer hand-offs race-free.
type shard struct {
	id int
	q  calQueue

	// inbox receives cross-shard cells from the committer mid-window;
	// spare is the second half of the double buffer so absorption swaps
	// slices instead of copying under the lock.
	mu    sync.Mutex
	inbox []cell
	spare []cell

	// notify wakes the shard for an asynchronous absorb (capacity 1:
	// coalescing repeated pokes is fine, absorption is idempotent).
	notify chan struct{}
	// cmd carries window barriers and shutdown; reply returns the drained
	// batch. Both are capacity 1 so a barrier round-trip never blocks the
	// peer on an unbuffered rendezvous.
	cmd   chan shardCmd
	reply chan shardReply

	// batch holds the events drained for the current window, in (at, seq)
	// order. Owned by the shard during drain, read by the committer
	// between reply and the next cmd, then reused.
	batch []cell
}

// shardCmd is a window barrier (drain everything below horizon) or, when
// exit is set, a shutdown request. cells carries the committer's final
// outbox flush for this shard; the buffer is handed back through the reply
// for reuse.
type shardCmd struct {
	horizon Cycle
	cells   []cell
	exit    bool
}

// shardReply reports one drained window: the batch of cells below the
// horizon, the earliest timestamp still pending in the shard's queue (ok
// reports whether any), and the returned flush buffer.
type shardReply struct {
	batch  []cell
	nextAt Cycle
	ok     bool
	cells  []cell
}

func newShard(id int) *shard {
	return &shard{
		id:     id,
		notify: make(chan struct{}, 1),
		cmd:    make(chan shardCmd, 1),
		reply:  make(chan shardReply, 1),
	}
}

// loop is the shard goroutine body. It exits on an exit command; the
// engine's run WaitGroup observes the departure, so a sharded run never
// returns with its workers still alive.
func (s *shard) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-s.notify:
			s.absorb()
		case c := <-s.cmd:
			if c.exit {
				return
			}
			for i := range c.cells {
				s.q.schedule(c.cells[i])
				c.cells[i] = cell{}
			}
			s.absorb()
			s.drain(c.horizon)
			nextAt, ok := s.q.peekAt()
			s.reply <- shardReply{batch: s.batch, nextAt: nextAt, ok: ok, cells: c.cells[:0]}
		}
	}
}

// absorb folds the inbox into the calendar queue. A stale notify after a
// barrier already absorbed is harmless: the swapped-in buffer is empty.
func (s *shard) absorb() {
	s.mu.Lock()
	cells := s.inbox
	s.inbox = s.spare[:0]
	s.mu.Unlock()
	for i := range cells {
		s.q.schedule(cells[i])
		cells[i] = cell{} // drop the closure/event reference from the buffer
	}
	s.spare = cells[:0]
}

// drain pops every event below horizon into the batch. The calendar queue
// yields exact (at, seq) order, so the batch is born sorted and the
// committer's merge needs only head comparisons.
func (s *shard) drain(horizon Cycle) {
	s.batch = s.batch[:0]
	for {
		at, ok := s.q.peekAt()
		if !ok || at >= horizon {
			return
		}
		c, _ := s.q.pop()
		s.batch = append(s.batch, c)
	}
}
