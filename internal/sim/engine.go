// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a cycle-granular clock and fires scheduled events in
// (time, insertion-order) order, which makes every simulation reproducible:
// two events scheduled for the same cycle always fire in the order they were
// scheduled. All timing in the repository is expressed in core clock cycles
// of the simulated 3.2 GHz CMP (see Table II of the paper).
//
// Events come in two representations. Closure events (Schedule/ScheduleAt)
// are the convenient general form. Typed events (ScheduleEvent and the
// pooled ScheduleDeliver) exist for hot paths: the pending-event set stores
// plain structs in calendar-queue buckets, so scheduling a prebuilt closure
// or a pooled Event performs no allocation at all — see docs/ARCHITECTURE.md
// for the invariants hot senders rely on.
package sim

import (
	"context"
	"sync"
)

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle = uint64

// Event is a typed simulation event: an object fired by the engine at its
// scheduled cycle. Implementations that are pooled must recycle themselves
// inside Fire (the engine drops its reference before calling it).
type Event interface {
	Fire()
}

// Sink consumes simulation messages at delivery time. Server[any]
// implements it, which lets the NoC hand a message straight to a module's
// input queue through a pooled delivery event instead of a fresh closure.
type Sink interface {
	Submit(m any)
}

// FuncEvent adapts a closure to Event for call sites that take an Event but
// sit on cold paths where a per-use allocation is acceptable.
type FuncEvent func()

// Fire implements Event.
func (f FuncEvent) Fire() { f() }

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	q    calQueue
	now  Cycle
	seq  uint64
	fire uint64 // events fired, for diagnostics

	// freeDeliver is the engine-owned free list (deliberately not a
	// sync.Pool: engines are single-threaded and pool hits must be
	// allocation- and lock-free) backing ScheduleDeliver.
	freeDeliver *deliverEvent

	// Sharded execution (see parallel.go). nshards <= 1 leaves every path
	// in this file exactly as the serial engine; during a sharded run par
	// is non-nil and put() routes cells through it. extPending counts
	// events staged outside q (outboxes, shard queues, drained batches),
	// so Pending stays exact in sharded mode.
	nshards    int
	window     Cycle
	shards     []*shard
	parWG      sync.WaitGroup
	par        *parRun
	parState   parRun
	extPending int
}

// NewEngine returns an engine with its clock at cycle zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fire }

// Pending returns the number of scheduled events that have not yet fired.
func (e *Engine) Pending() int { return e.q.len() + e.extPending }

// put stores a freshly sequenced cell: straight into the calendar queue on
// the serial path, through the shard router during a sharded run. The
// single predictable branch is the serial loop's entire cost for the
// sharded machinery.
func (e *Engine) put(c cell) {
	if p := e.par; p != nil {
		p.route(c)
		return
	}
	e.q.schedule(c)
}

// Schedule arranges for fn to run delay cycles from now. A zero delay runs
// fn later in the current cycle, after all previously scheduled work for
// this cycle.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.seq++
	e.put(cell{at: e.now + delay, seq: e.seq, fn: fn})
}

// ScheduleAt arranges for fn to run at the given absolute cycle. Scheduling
// in the past is an error in the caller; the event fires immediately (at the
// current cycle) instead of time-travelling.
func (e *Engine) ScheduleAt(at Cycle, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.put(cell{at: at, seq: e.seq, fn: fn})
}

// ScheduleEvent arranges for ev.Fire to run delay cycles from now, without
// allocating: the event reference is stored directly in the queue cell.
func (e *Engine) ScheduleEvent(delay Cycle, ev Event) {
	e.seq++
	e.put(cell{at: e.now + delay, seq: e.seq, ev: ev})
}

// ScheduleEventAt is ScheduleEvent with an absolute cycle, clamped to the
// present like ScheduleAt.
func (e *Engine) ScheduleEventAt(at Cycle, ev Event) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.put(cell{at: at, seq: e.seq, ev: ev})
}

// deliverEvent carries one message to a sink; instances are recycled
// through the engine's free list, so steady-state delivery does not
// allocate.
type deliverEvent struct {
	eng  *Engine
	sink Sink
	m    any
	next *deliverEvent
}

// Fire recycles the event before submitting, so the sink's handler may
// immediately schedule further deliveries through the same free list.
func (d *deliverEvent) Fire() {
	sink, m := d.sink, d.m
	d.sink, d.m = nil, nil
	d.next = d.eng.freeDeliver
	d.eng.freeDeliver = d
	sink.Submit(m)
}

func (e *Engine) getDeliver(sink Sink, m any) *deliverEvent {
	d := e.freeDeliver
	if d == nil {
		d = &deliverEvent{eng: e}
	} else {
		e.freeDeliver = d.next
		d.next = nil
	}
	d.sink = sink
	d.m = m
	return d
}

// ScheduleDeliver submits m to sink delay cycles from now through a pooled
// delivery event (no closure, no allocation in steady state).
func (e *Engine) ScheduleDeliver(delay Cycle, sink Sink, m any) {
	e.ScheduleEvent(delay, e.getDeliver(sink, m))
}

// ScheduleDeliverAt is ScheduleDeliver with an absolute cycle.
func (e *Engine) ScheduleDeliverAt(at Cycle, sink Sink, m any) {
	e.ScheduleEventAt(at, e.getDeliver(sink, m))
}

// Step fires the next event, advancing the clock to its timestamp.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	c, ok := e.q.pop()
	if !ok {
		return false
	}
	e.now = c.at
	e.fire++
	if c.ev != nil {
		c.ev.Fire()
	} else {
		c.fn()
	}
	return true
}

// Run fires events until none remain, and returns the final cycle. With
// SetShards(n > 1) the run executes on the sharded engine (parallel.go);
// results are bit-for-bit identical either way.
func (e *Engine) Run() Cycle {
	if e.nshards > 1 {
		c, _ := e.runSharded(nil, 0)
		return c
	}
	for e.Step() {
	}
	return e.now
}

// DefaultCancelCheckCycles is the cancellation-poll granularity RunContext
// uses when the caller passes zero: fine enough that a cancelled multi-second
// run stops within milliseconds of wall time, coarse enough that the check is
// invisible in the event loop's profile.
const DefaultCancelCheckCycles Cycle = 1 << 16

// RunContext fires events until none remain or ctx is cancelled, polling
// ctx.Err at a bounded simulated-cycle granularity: once on entry, then
// after the first event fired at or beyond each checkEvery-cycle boundary
// (zero means DefaultCancelCheckCycles). Cancellation is cooperative and
// strictly observational: the poll never reorders, drops, or injects
// events, so a run that is not cancelled is cycle-exact identical to Run —
// and because the poll piggybacks on the clock Step already advanced, the
// event loop pays one integer compare per event, never an extra queue
// inspection. On cancellation the clock stays at the last fired event and
// ctx.Err() is returned; the pending events are left in the queue (the
// caller abandons the simulation).
//
// A ctx that can never be cancelled (nil, or Done() == nil like
// context.Background()) skips the polling entirely and is exactly Run.
func (e *Engine) RunContext(ctx context.Context, checkEvery Cycle) (Cycle, error) {
	if e.nshards > 1 {
		return e.runSharded(ctx, checkEvery)
	}
	if ctx == nil || ctx.Done() == nil {
		return e.Run(), nil
	}
	if checkEvery == 0 {
		checkEvery = DefaultCancelCheckCycles
	}
	if err := ctx.Err(); err != nil {
		return e.now, err
	}
	next := e.now + checkEvery
	for e.Step() {
		if e.now >= next {
			if err := ctx.Err(); err != nil {
				return e.now, err
			}
			next = e.now + checkEvery
		}
	}
	return e.now, nil
}

// RunUntil fires events with timestamps <= limit and then advances the
// clock to limit (when it has not already passed it), whether or not events
// remain beyond the horizon. The returned clock never exceeds limit.
// RunUntil always executes serially: between sharded runs every event lives
// in the engine's own queue (shards drain completely before Run returns),
// so the serial walk is exact regardless of the SetShards setting.
func (e *Engine) RunUntil(limit Cycle) Cycle {
	for {
		at, ok := e.q.peekAt()
		if !ok || at > limit {
			break
		}
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
	return e.now
}

// RunFor is shorthand for RunUntil(Now()+d).
func (e *Engine) RunFor(d Cycle) Cycle { return e.RunUntil(e.now + d) }
