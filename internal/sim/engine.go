// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a cycle-granular clock and fires scheduled events in
// (time, insertion-order) order, which makes every simulation reproducible:
// two events scheduled for the same cycle always fire in the order they were
// scheduled. All timing in the repository is expressed in core clock cycles
// of the simulated 3.2 GHz CMP (see Table II of the paper).
package sim

import "container/heap"

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle = uint64

// event is a closure scheduled to fire at a given cycle. seq breaks ties so
// that same-cycle events fire in schedule order (determinism).
type event struct {
	at  Cycle
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	pq   eventHeap
	now  Cycle
	seq  uint64
	fire uint64 // events fired, for diagnostics
}

// NewEngine returns an engine with its clock at cycle zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fire }

// Pending returns the number of scheduled events that have not yet fired.
func (e *Engine) Pending() int { return len(e.pq) }

// Schedule arranges for fn to run delay cycles from now. A zero delay runs
// fn later in the current cycle, after all previously scheduled work for
// this cycle.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.seq++
	heap.Push(&e.pq, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// ScheduleAt arranges for fn to run at the given absolute cycle. Scheduling
// in the past is an error in the caller; the event fires immediately (at the
// current cycle) instead of time-travelling.
func (e *Engine) ScheduleAt(at Cycle, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.pq, event{at: at, seq: e.seq, fn: fn})
}

// Step fires the next event, advancing the clock to its timestamp.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.at
	e.fire++
	ev.fn()
	return true
}

// Run fires events until none remain, and returns the final cycle.
func (e *Engine) Run() Cycle {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= limit and returns the clock,
// which will not exceed limit.
func (e *Engine) RunUntil(limit Cycle) Cycle {
	for len(e.pq) > 0 && e.pq[0].at <= limit {
		e.Step()
	}
	if e.now < limit && len(e.pq) == 0 {
		// Nothing left; clock stays where the last event fired.
		return e.now
	}
	if e.now > limit {
		e.now = limit
	}
	return e.now
}

// RunFor is shorthand for RunUntil(Now()+d).
func (e *Engine) RunFor(d Cycle) Cycle { return e.RunUntil(e.now + d) }
