package sim

import "testing"

// FIFO must behave like a plain queue through arbitrary push/pop
// interleavings, including the compaction path that reuses the consumed
// prefix of the backing array.
func TestFIFOOrder(t *testing.T) {
	var f FIFO[int]
	nextPush, nextPop := 0, 0
	// A skewed interleaving that repeatedly wraps the backing array.
	for round := 0; round < 100; round++ {
		for i := 0; i < 3+round%5; i++ {
			f.Push(nextPush)
			nextPush++
		}
		for i := 0; i < 2+round%4 && f.Len() > 0; i++ {
			if got := f.Pop(); got != nextPop {
				t.Fatalf("popped %d, want %d", got, nextPop)
			}
			nextPop++
		}
	}
	for f.Len() > 0 {
		if got := f.Pop(); got != nextPop {
			t.Fatalf("drain popped %d, want %d", got, nextPop)
		}
		nextPop++
	}
	if nextPop != nextPush {
		t.Fatalf("popped %d of %d pushed", nextPop, nextPush)
	}
}

func TestFIFOFrontAtPopBack(t *testing.T) {
	var f FIFO[string]
	f.Push("a")
	f.Push("b")
	f.Push("c")
	if *f.Front() != "a" || *f.At(1) != "b" {
		t.Fatal("Front/At disagree with push order")
	}
	if got := f.PopBack(); got != "c" {
		t.Fatalf("PopBack = %q, want c", got)
	}
	if got := f.Pop(); got != "a" {
		t.Fatalf("Pop = %q, want a", got)
	}
	if f.Len() != 1 {
		t.Fatalf("Len = %d, want 1", f.Len())
	}
}

// A queue cycling at its high-water mark must stop allocating: pops advance
// the head, pushes compact the consumed prefix instead of growing.
func TestFIFOSteadyStateZeroAlloc(t *testing.T) {
	var f FIFO[int]
	for i := 0; i < 64; i++ {
		f.Push(i)
	}
	for f.Len() > 32 {
		f.Pop()
	}
	if avg := testing.AllocsPerRun(500, func() {
		f.Push(1)
		f.Pop()
	}); avg != 0 {
		t.Fatalf("steady-state push/pop allocated %.2f times, want 0", avg)
	}
}
