package sim

import "testing"

// FIFO must behave like a plain queue through arbitrary push/pop
// interleavings, including the compaction path that reuses the consumed
// prefix of the backing array.
func TestFIFOOrder(t *testing.T) {
	var f FIFO[int]
	nextPush, nextPop := 0, 0
	// A skewed interleaving that repeatedly wraps the backing array.
	for round := 0; round < 100; round++ {
		for i := 0; i < 3+round%5; i++ {
			f.Push(nextPush)
			nextPush++
		}
		for i := 0; i < 2+round%4 && f.Len() > 0; i++ {
			if got := f.Pop(); got != nextPop {
				t.Fatalf("popped %d, want %d", got, nextPop)
			}
			nextPop++
		}
	}
	for f.Len() > 0 {
		if got := f.Pop(); got != nextPop {
			t.Fatalf("drain popped %d, want %d", got, nextPop)
		}
		nextPop++
	}
	if nextPop != nextPush {
		t.Fatalf("popped %d of %d pushed", nextPop, nextPush)
	}
}

func TestFIFOFrontAtPopBack(t *testing.T) {
	var f FIFO[string]
	f.Push("a")
	f.Push("b")
	f.Push("c")
	if *f.Front() != "a" || *f.At(1) != "b" {
		t.Fatal("Front/At disagree with push order")
	}
	if got := f.PopBack(); got != "c" {
		t.Fatalf("PopBack = %q, want c", got)
	}
	if got := f.Pop(); got != "a" {
		t.Fatalf("Pop = %q, want a", got)
	}
	if f.Len() != 1 {
		t.Fatalf("Len = %d, want 1", f.Len())
	}
}

// RemoveAt must act like Pop for index 0 and like an order-preserving
// middle removal elsewhere, across interleavings that wrap the backing
// array — the operation the dispatch policies' scan windows depend on.
func TestFIFORemoveAt(t *testing.T) {
	// Model-check against a plain slice through a deterministic mix of
	// pushes, pops and middle removals.
	var f FIFO[int]
	var model []int
	next := 0
	rng := uint64(12345)
	rand := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	for step := 0; step < 2000; step++ {
		switch op := rand(3); {
		case op == 0 || f.Len() == 0:
			f.Push(next)
			model = append(model, next)
			next++
		case op == 1:
			if got, want := f.Pop(), model[0]; got != want {
				t.Fatalf("step %d: Pop = %d, want %d", step, got, want)
			}
			model = model[1:]
		default:
			i := rand(f.Len())
			want := model[i]
			if got := f.RemoveAt(i); got != want {
				t.Fatalf("step %d: RemoveAt(%d) = %d, want %d", step, i, got, want)
			}
			model = append(model[:i], model[i+1:]...)
		}
		if f.Len() != len(model) {
			t.Fatalf("step %d: Len = %d, model %d", step, f.Len(), len(model))
		}
	}
	for i := range model {
		if got := *f.At(i); got != model[i] {
			t.Fatalf("drain check: At(%d) = %d, want %d", i, got, model[i])
		}
	}
}

// Like Pop, a steady-state RemoveAt near the head must not allocate.
func TestFIFORemoveAtZeroAlloc(t *testing.T) {
	var f FIFO[int]
	for i := 0; i < 64; i++ {
		f.Push(i)
	}
	for f.Len() > 32 {
		f.Pop()
	}
	if avg := testing.AllocsPerRun(500, func() {
		f.Push(1)
		f.RemoveAt(f.Len() / 2)
	}); avg != 0 {
		t.Fatalf("steady-state RemoveAt allocated %.2f times, want 0", avg)
	}
}

// A queue cycling at its high-water mark must stop allocating: pops advance
// the head, pushes compact the consumed prefix instead of growing.
func TestFIFOSteadyStateZeroAlloc(t *testing.T) {
	var f FIFO[int]
	for i := 0; i < 64; i++ {
		f.Push(i)
	}
	for f.Len() > 32 {
		f.Pop()
	}
	if avg := testing.AllocsPerRun(500, func() {
		f.Push(1)
		f.Pop()
	}); avg != 0 {
		t.Fatalf("steady-state push/pop allocated %.2f times, want 0", avg)
	}
}
