package sim

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// --- deterministic random event cascades -------------------------------
//
// The cascade is a self-scheduling event graph: every fired event logs
// (cycle, id) and schedules a pseudo-random number of children at
// pseudo-random delays, mixing closures, typed events, shard-hinted typed
// events, and pooled deliveries. The generator is seeded, so serial and
// sharded engines receive bit-identical workloads; the logged trace is the
// engine's observable total order.

type traceRec struct {
	at Cycle
	id uint64
}

type cascade struct {
	e      *Engine
	rng    uint64
	budget int
	nextID uint64
	trace  []traceRec
	sink   *Server[any]
}

func (c *cascade) rand() uint64 {
	c.rng = c.rng*6364136223846793005 + 1442695040888963407
	return c.rng >> 33
}

var cascadeDelays = [...]Cycle{0, 0, 1, 2, 3, 16, 22, 37, 100, 640, 999, 4095, 4097, 70_000, 250_000}

// hintedEvent is a typed event with a shard-affinity key, standing in for
// a module-owned pooled event.
type hintedEvent struct {
	c   *cascade
	id  uint64
	key uint32
}

func (h *hintedEvent) Fire()            { h.c.fire(h.id) }
func (h *hintedEvent) ShardKey() uint32 { return h.key }

func (c *cascade) fire(id uint64) {
	c.trace = append(c.trace, traceRec{at: c.e.Now(), id: id})
	kids := int(c.rand() % 4)
	for k := 0; k < kids && c.budget > 0; k++ {
		c.budget--
		c.spawn()
	}
}

func (c *cascade) spawn() {
	id := c.nextID
	c.nextID++
	delay := cascadeDelays[c.rand()%uint64(len(cascadeDelays))]
	switch c.rand() % 4 {
	case 0:
		c.e.Schedule(delay, func() { c.fire(id) })
	case 1:
		c.e.ScheduleAt(c.e.Now()+delay, func() { c.fire(id) })
	case 2:
		c.e.ScheduleEvent(delay, &hintedEvent{c: c, id: id, key: uint32(id % 7)})
	case 3:
		c.e.ScheduleDeliver(delay, c.sink, id)
	}
}

// runCascade executes one seeded cascade on a fresh engine and returns its
// trace plus final clock and fire count.
func runCascade(seed uint64, budget, shards int, window Cycle) ([]traceRec, Cycle, uint64) {
	e := NewEngine()
	if shards > 1 {
		e.SetShards(shards, window)
	}
	c := &cascade{e: e, rng: seed, budget: budget}
	c.sink = NewServer(e, "sink", func(m any) Cycle {
		c.fire(m.(uint64))
		return Cycle(c.rand() % 40)
	})
	for i := 0; i < 8; i++ {
		c.budget--
		c.spawn()
	}
	end := e.Run()
	return c.trace, end, e.Fired()
}

// TestShardedTraceEquivalence is the engine-level differential harness:
// for a spread of seeds, every shard count and window size must reproduce
// the serial fire trace record for record — same events, same cycles, same
// order.
func TestShardedTraceEquivalence(t *testing.T) {
	type combo struct {
		shards int
		window Cycle
	}
	combos := []combo{{2, 0}, {4, 0}, {8, 0}, {2, 1}, {4, 64}, {8, 4096}, {3, 17}}
	for _, seed := range []uint64{1, 7, 42, 0xdeadbeef} {
		want, wantEnd, wantFired := runCascade(seed, 3000, 1, 0)
		if len(want) == 0 {
			t.Fatalf("seed %d produced an empty serial trace", seed)
		}
		for _, cb := range combos {
			got, end, fired := runCascade(seed, 3000, cb.shards, cb.window)
			if end != wantEnd || fired != wantFired {
				t.Fatalf("seed %d shards %d window %d: end %d fired %d, serial end %d fired %d",
					seed, cb.shards, cb.window, end, fired, wantEnd, wantFired)
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d shards %d window %d: trace length %d, serial %d",
					seed, cb.shards, cb.window, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d shards %d window %d: trace[%d] = %+v, serial %+v",
						seed, cb.shards, cb.window, i, got[i], want[i])
				}
			}
		}
	}
}

// TestShardedPendingExact keeps Pending honest across the staged paths: a
// handler that probes mid-run must see the true pending count, and a
// completed run must report zero.
func TestShardedPendingExact(t *testing.T) {
	e := NewEngine()
	e.SetShards(4, 16)
	var probes []int
	for i := 0; i < 10; i++ {
		e.Schedule(Cycle(i*100), func() {
			probes = append(probes, e.Pending())
			e.Schedule(5000, func() {})
		})
	}
	e.Run()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after sharded run = %d, want 0", got)
	}
	// Each probe sees the not-yet-fired initial events plus the long-delay
	// events scheduled by earlier probes.
	for i, p := range probes {
		if want := (10 - 1 - i) + i; p != want {
			t.Fatalf("probe %d saw Pending %d, want %d", i, p, want)
		}
	}
}

// TestShardedRunEmpty covers the degenerate run: no events at all must
// terminate immediately and leak nothing.
func TestShardedRunEmpty(t *testing.T) {
	e := NewEngine()
	e.SetShards(8, 0)
	if end := e.Run(); end != 0 {
		t.Fatalf("empty sharded run ended at %d", end)
	}
}

// TestShardedRunUntilInterleave checks that the serial RunUntil walk and
// sharded full runs compose: shards hold no events between runs, so
// switching entry points cannot lose or reorder work.
func TestShardedRunUntilInterleave(t *testing.T) {
	e := NewEngine()
	e.SetShards(4, 32)
	var fired []Cycle
	for _, d := range []Cycle{10, 2000, 90_000} {
		d := d
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	e.Run()
	e.Schedule(50, func() { fired = append(fired, e.Now()) })
	e.RunUntil(e.Now() + 40) // does not reach it
	e.Run()                  // sharded run picks it up
	want := []Cycle{10, 2000, 90_000, 90_050}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

// goroutinesSettle polls until the goroutine count returns to base (the
// runtime may briefly keep exited goroutines visible).
func goroutinesSettle(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d, base %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardedGoroutineLifecycle pins the leak contract: shard workers are
// spawned by Run and joined before it returns — completed, empty, and
// repeated runs all leave the engine goroutine-free.
func TestShardedGoroutineLifecycle(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		_, _, _ = runCascade(uint64(i+1), 500, 8, 0)
	}
	e := NewEngine()
	e.SetShards(4, 0)
	e.Run() // empty
	e.Schedule(10, func() {})
	e.Run()
	goroutinesSettle(t, base)
}

// TestShardedCancelJoinsShards drives RunContext cancellation on the
// sharded engine: the run must stop within one poll interval of simulated
// time, return the context error, and join every shard goroutine — no
// deadlock at the window barrier, no leaked workers.
func TestShardedCancelJoinsShards(t *testing.T) {
	base := runtime.NumGoroutine()
	e := NewEngine()
	e.SetShards(8, 64)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cancelledAt Cycle
	var after int
	var tick func()
	tick = func() {
		if e.Now() >= 10_000 && cancelledAt == 0 {
			cancelledAt = e.Now()
			cancel()
		}
		if cancelledAt != 0 {
			after++
		}
		e.Schedule(10, tick)
	}
	e.Schedule(0, tick)
	const poll = 512
	end, err := e.RunContext(ctx, poll)
	if err == nil {
		t.Fatal("cancelled sharded run returned no error")
	}
	if cancelledAt == 0 {
		t.Fatal("cancel point never reached")
	}
	if end < cancelledAt || end > cancelledAt+poll {
		t.Fatalf("stopped at %d, cancel at %d, poll %d: not within one interval", end, cancelledAt, poll)
	}
	goroutinesSettle(t, base)

	// Pre-cancelled: returns before spawning anything.
	e2 := NewEngine()
	e2.SetShards(4, 0)
	e2.Schedule(5, func() {})
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := e2.RunContext(ctx2, 0); err == nil {
		t.Fatal("pre-cancelled sharded run returned no error")
	}
	goroutinesSettle(t, base)
}

// TestShardedUncancelledMatchesSerial mirrors the serial RunContext
// contract on the sharded path: polling is observational.
func TestShardedUncancelledMatchesSerial(t *testing.T) {
	want, wantEnd, _ := runCascade(99, 2000, 1, 0)
	e := NewEngine()
	e.SetShards(4, 0)
	c := &cascade{e: e, rng: 99, budget: 2000}
	c.sink = NewServer(e, "sink", func(m any) Cycle {
		c.fire(m.(uint64))
		return Cycle(c.rand() % 40)
	})
	for i := 0; i < 8; i++ {
		c.budget--
		c.spawn()
	}
	ctx, cancelFn := context.WithCancel(context.Background())
	defer cancelFn()
	end, err := e.RunContext(ctx, 100) // aggressive polling
	if err != nil {
		t.Fatal(err)
	}
	if end != wantEnd || len(c.trace) != len(want) {
		t.Fatalf("ctx sharded run end %d/%d events, serial %d/%d", end, len(c.trace), wantEnd, len(want))
	}
	for i := range want {
		if c.trace[i] != want[i] {
			t.Fatalf("trace[%d] = %+v, serial %+v", i, c.trace[i], want[i])
		}
	}
}

// TestShardedSteadyStateAllocBudget bounds what a warm sharded engine
// allocates per Run: the queues, outboxes, batches, and channels are all
// reused, so the only per-run cost is spawning the shard goroutines. The
// budget is deliberately per-shard so a structural regression (a buffer
// rebuilt per window, a cell escaping to the heap) trips it immediately.
func TestShardedSteadyStateAllocBudget(t *testing.T) {
	const shards = 4
	e := NewEngine()
	e.SetShards(shards, 64)
	var rng uint64 = 12345
	iter := func() {
		// A fixed mixed-horizon burst, re-seeded each run.
		rng = 12345
		for i := 0; i < 400; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			e.Schedule(cascadeDelays[(rng>>33)%uint64(len(cascadeDelays))], nop)
		}
		e.Run()
	}
	for i := 0; i < 5; i++ {
		iter() // warm queues, buffers, goroutine stacks
	}
	avg := testing.AllocsPerRun(50, iter)
	perShard := avg / shards
	if perShard > 8 {
		t.Fatalf("sharded run allocates %.1f per run (%.2f per shard), budget 8/shard", avg, perShard)
	}
}

var nop = func() {}
