// Package sim_test holds the workload-level differential equivalence suite
// for the sharded engine: every recorded workload (and the streaming CPI
// generator) is run serial and at several shard counts through the full tss
// machine, and the complete results — makespan, per-task schedules, every
// statistics block — must be byte-identical. The external test package
// exists so this file can import tss (which itself imports internal/sim)
// without a cycle.
package sim_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"tasksuperscalar/internal/workloads"
	"tasksuperscalar/tss"
)

// shardCounts are the parallel configurations diffed against serial. 1 is
// the reference itself; the rest cover even, power-of-two, and odd counts.
var shardCounts = []int{2, 4, 8}

// resultBytes renders a full result for byte comparison. JSON covers every
// exported field (including the Start/Finish schedules and the stats
// blocks); reflect.DeepEqual in the caller additionally covers anything
// JSON would miss.
func resultBytes(t *testing.T, r *tss.Result) []byte {
	t.Helper()
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return raw
}

func diffResults(t *testing.T, label string, want, got *tss.Result) {
	t.Helper()
	wb, gb := resultBytes(t, want), resultBytes(t, got)
	if string(wb) != string(gb) {
		t.Fatalf("%s: sharded result differs from serial\nserial: %s\nsharded: %s", label, wb, gb)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: results not deeply equal despite identical encodings", label)
	}
}

// TestWorkloadEquivalenceAllShardCounts runs every recorded workload on the
// hardware pipeline, serial vs sharded, and byte-compares the results.
func TestWorkloadEquivalenceAllShardCounts(t *testing.T) {
	for _, wl := range workloads.All() {
		b := wl.Gen(500, 11)
		cfg := tss.DefaultConfig().WithCores(32)
		cfg.Memory = false
		want, err := tss.RunTasks(b.Tasks, cfg)
		if err != nil {
			t.Fatalf("%s serial: %v", wl.Name, err)
		}
		for _, n := range shardCounts {
			cfg.Shards = n
			got, err := tss.RunTasks(wl.Gen(500, 11).Tasks, cfg)
			if err != nil {
				t.Fatalf("%s shards %d: %v", wl.Name, n, err)
			}
			diffResults(t, fmt.Sprintf("%s shards %d", wl.Name, n), want, got)
		}
	}
}

// TestWorkloadEquivalenceMemorySystem repeats the diff with the coherent
// memory hierarchy enabled (bank events, DMA bursts and writebacks all
// cross shards).
func TestWorkloadEquivalenceMemorySystem(t *testing.T) {
	for _, name := range []string{"cholesky", "h264"} {
		wl, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("unknown workload %s", name)
		}
		b := wl.Gen(400, 3)
		cfg := tss.DefaultConfig().WithCores(32)
		cfg.Memory = true
		want, err := tss.RunTasks(b.Tasks, cfg)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, n := range shardCounts {
			cfg.Shards = n
			got, err := tss.RunTasks(wl.Gen(400, 3).Tasks, cfg)
			if err != nil {
				t.Fatalf("%s shards %d: %v", name, n, err)
			}
			diffResults(t, fmt.Sprintf("%s+mem shards %d", name, n), want, got)
		}
	}
}

// TestWorkloadEquivalenceRuntimes covers the software-runtime and
// sequential execution paths, which drive the same engine through
// different module graphs.
func TestWorkloadEquivalenceRuntimes(t *testing.T) {
	wl, _ := workloads.ByName("fft")
	for _, kind := range []tss.RuntimeKind{tss.SoftwareRuntime, tss.Sequential} {
		b := wl.Gen(400, 5)
		cfg := tss.DefaultConfig().WithCores(16)
		cfg.Memory = false
		cfg.Runtime = kind
		want, err := tss.RunTasks(b.Tasks, cfg)
		if err != nil {
			t.Fatalf("%v serial: %v", kind, err)
		}
		for _, n := range shardCounts {
			cfg.Shards = n
			got, err := tss.RunTasks(wl.Gen(400, 5).Tasks, cfg)
			if err != nil {
				t.Fatalf("%v shards %d: %v", kind, n, err)
			}
			diffResults(t, fmt.Sprintf("%v shards %d", kind, n), want, got)
		}
	}
}

// TestCPIStreamEquivalence diffs the lazily generated streaming path: the
// generator is pulled task by task with the gateway's buffer as
// back-pressure, so decode, generation, and execution interleave — the
// hardest schedule to reproduce.
func TestCPIStreamEquivalence(t *testing.T) {
	cfg := tss.DefaultConfig().WithCores(16)
	cfg.Memory = false
	want, err := tss.RunStream(workloads.NewCPIStream(600, 21), cfg)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, n := range shardCounts {
		cfg.Shards = n
		got, err := tss.RunStream(workloads.NewCPIStream(600, 21), cfg)
		if err != nil {
			t.Fatalf("shards %d: %v", n, err)
		}
		diffResults(t, fmt.Sprintf("cpistream shards %d", n), want, got)
	}
}
