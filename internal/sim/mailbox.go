package sim

// ShardHinted is implemented by typed events (and by Sinks reached through
// ScheduleDeliver) that carry a stable shard-affinity key: a small integer
// naming the simulated unit the event belongs to — a frontend module, a
// worker core, a memory bank, a ring segment. The sharded engine maps the
// key onto a shard (key mod shard count), so all of a module's staged
// events live in one shard's calendar queue, mirroring the conservative-
// PDES partition of the machine. Events without a hint are striped
// deterministically by their schedule sequence number.
//
// The hint is pure placement: it decides which shard does the queue
// bookkeeping for the event, never when or in what order the event fires,
// so an affinity change can never alter simulation results.
type ShardHinted interface {
	ShardKey() uint32
}

// outbox buffers cells routed to one shard between flushes. The committer
// owns it; flushing appends into the shard's inbox under its mutex and
// pokes the shard to absorb concurrently with the commit loop.
type outbox struct {
	cells []cell
}

// outboxFlushLen is the batch size at which a shard's outbox is pushed to
// its inbox mid-window. Large enough that the mutex and wakeup amortize,
// small enough that shards see staging work well before the barrier.
const outboxFlushLen = 128

// shardFor places a cell: typed events and delivery sinks that carry a
// ShardKey go to their module's shard; everything else stripes by seq.
// Placement is a pure function of the cell — never of goroutine timing —
// which keeps every queue state on the sharded path deterministic.
func (p *parRun) shardFor(c *cell) int {
	key := uint32(c.seq)
	if c.ev != nil {
		switch h := c.ev.(type) {
		case *deliverEvent:
			// Pooled deliveries inherit the affinity of the module they
			// deliver to, when it has one.
			if sh, ok := h.sink.(ShardHinted); ok {
				key = sh.ShardKey()
			}
		case ShardHinted:
			key = h.ShardKey()
		}
	}
	return int(key % uint32(len(p.out)))
}

// route is the sharded engine's schedule path: cells below the commit
// horizon go to the committer's overlay queue (they may have to fire in the
// window being committed right now); cells at or beyond it are staged in
// their shard's calendar queue via the outbox.
func (p *parRun) route(c cell) {
	e := p.e
	if c.at < p.horizon {
		e.q.schedule(c)
		// Keep the cached overlay head exact: a new cell can only take
		// the head by strictly earlier (at, seq) — equal cycles lose on
		// seq, which grows monotonically.
		if !p.ovOK || c.at < p.ovAt {
			p.ovAt, p.ovSeq, p.ovOK = c.at, c.seq, true
		}
		return
	}
	if c.at < p.routedMin {
		p.routedMin = c.at
	}
	e.extPending++
	sid := p.shardFor(&c)
	ob := &p.out[sid]
	ob.cells = append(ob.cells, c)
	if len(ob.cells) >= outboxFlushLen {
		ob.cells = p.flush(e.shards[sid], ob.cells)
	}
}

// flush hands an outbox batch to a shard's inbox and wakes the shard. The
// committer keeps (and reuses) its buffer; the copy runs outside any hot
// per-event path.
func (p *parRun) flush(s *shard, cells []cell) []cell {
	s.mu.Lock()
	s.inbox = append(s.inbox, cells...)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default: // a wakeup is already pending; absorption drains everything
	}
	for i := range cells {
		cells[i] = cell{}
	}
	return cells[:0]
}
