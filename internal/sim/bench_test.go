package sim_test

// The benchmark bodies live in internal/benchsuite, shared with
// `tsbench -benchjson` so the committed BENCH_engine.json trajectory
// measures exactly the same code.

import (
	"testing"

	"tasksuperscalar/internal/benchsuite"
)

// BenchmarkEngineScheduleFire measures raw near-horizon event throughput.
func BenchmarkEngineScheduleFire(b *testing.B) { benchsuite.EngineScheduleFire(b) }

// BenchmarkEngineSchedulePop interleaves one schedule with one pop — the
// engine's steady-state rhythm.
func BenchmarkEngineSchedulePop(b *testing.B) { benchsuite.EngineSchedulePop(b) }

// BenchmarkEngineMixedHorizons mixes calendar-window events with
// far-horizon (task-runtime) events.
func BenchmarkEngineMixedHorizons(b *testing.B) { benchsuite.EngineMixedHorizons(b) }

// BenchmarkEngineChurn1M measures schedule/pop against a standing
// population of one million in-flight events.
func BenchmarkEngineChurn1M(b *testing.B) { benchsuite.EngineChurn1M(b) }

// BenchmarkServerPipeline measures serial-server message processing.
func BenchmarkServerPipeline(b *testing.B) { benchsuite.ServerPipeline(b) }
