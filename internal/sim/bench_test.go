package sim

import "testing"

// BenchmarkEngineScheduleFire measures raw event throughput.
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.Schedule(Cycle(i%64), func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkServerPipeline measures serial-server message processing.
func BenchmarkServerPipeline(b *testing.B) {
	e := NewEngine()
	srv := NewServer(e, "bench", func(int) Cycle { return 16 })
	for i := 0; i < b.N; i++ {
		srv.Submit(i)
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
	if srv.Served() != uint64(b.N) {
		b.Fatalf("served %d of %d", srv.Served(), b.N)
	}
}
