package sim

// Server models a hardware unit that processes one message at a time.
//
// Each pipeline module in the paper (gateway, TRS, ORT, OVT) has a single
// controller: messages queue at the module and are serviced serially, each
// charging a processing cost (16 cycles per packet, multiplied by the number
// of operands involved) plus any eDRAM accesses (22 cycles each). Server
// captures exactly that: Submit enqueues work, the handler returns the
// service time, and the server stays busy for that long before dequeuing the
// next message.
type Server[M any] struct {
	eng  *Engine
	name string
	h    func(M) Cycle

	busy  bool
	queue []M

	// Stats.
	served    uint64
	busyUntil Cycle
	busyTotal Cycle
	maxQueue  int
}

// NewServer creates a serial server driven by eng. handler processes one
// message and returns the number of cycles the unit is occupied by it.
func NewServer[M any](eng *Engine, name string, handler func(M) Cycle) *Server[M] {
	return &Server[M]{eng: eng, name: name, h: handler}
}

// Name returns the diagnostic name of the server.
func (s *Server[M]) Name() string { return s.name }

// Submit enqueues a message for processing. Messages are processed in FIFO
// order; the handler for a message runs when the unit becomes free.
func (s *Server[M]) Submit(m M) {
	s.queue = append(s.queue, m)
	if len(s.queue) > s.maxQueue {
		s.maxQueue = len(s.queue)
	}
	if !s.busy {
		s.busy = true
		s.eng.Schedule(0, s.dispatch)
	}
}

// SubmitAfter enqueues a message after a transit delay (e.g. NoC latency).
func (s *Server[M]) SubmitAfter(delay Cycle, m M) {
	s.eng.Schedule(delay, func() { s.Submit(m) })
}

func (s *Server[M]) dispatch() {
	if len(s.queue) == 0 {
		s.busy = false
		return
	}
	m := s.queue[0]
	s.queue = s.queue[1:]
	cost := s.h(m)
	s.served++
	s.busyTotal += cost
	s.busyUntil = s.eng.Now() + cost
	s.eng.Schedule(cost, s.dispatch)
}

// QueueLen returns the number of messages waiting (not including the one in
// service).
func (s *Server[M]) QueueLen() int { return len(s.queue) }

// Served returns the number of messages fully processed.
func (s *Server[M]) Served() uint64 { return s.served }

// BusyCycles returns the cumulative cycles spent in service.
func (s *Server[M]) BusyCycles() Cycle { return s.busyTotal }

// MaxQueue returns the high-water mark of the input queue.
func (s *Server[M]) MaxQueue() int { return s.maxQueue }

// Utilization returns busy cycles divided by elapsed cycles so far.
func (s *Server[M]) Utilization() float64 {
	if s.eng.Now() == 0 {
		return 0
	}
	return float64(s.busyTotal) / float64(s.eng.Now())
}
