package sim

// Server models a hardware unit that processes one message at a time.
//
// Each pipeline module in the paper (gateway, TRS, ORT, OVT) has a single
// controller: messages queue at the module and are serviced serially, each
// charging a processing cost (16 cycles per packet, multiplied by the number
// of operands involved) plus any eDRAM accesses (22 cycles each). Server
// captures exactly that: Submit enqueues work, the handler returns the
// service time, and the server stays busy for that long before dequeuing the
// next message.
//
// The input queue is a head-indexed slice that reuses its backing array, and
// dispatch is rescheduled through a closure built once at construction, so a
// warm server enqueues and services messages without allocating. Server[any]
// satisfies Sink, which lets the NoC deliver straight into the queue.
type Server[M any] struct {
	eng  *Engine
	name string
	h    func(M) Cycle
	key  uint32 // shard-affinity key (see ShardHinted)

	busy  bool
	queue []M
	head  int

	dispatchFn func()          // prebuilt; every reschedule reuses it
	freeSub    *submitEvent[M] // free list backing SubmitAfter

	// Stats.
	served    uint64
	busyUntil Cycle
	busyTotal Cycle
	maxQueue  int
}

// NewServer creates a serial server driven by eng. handler processes one
// message and returns the number of cycles the unit is occupied by it.
func NewServer[M any](eng *Engine, name string, handler func(M) Cycle) *Server[M] {
	s := &Server[M]{eng: eng, name: name, h: handler}
	s.dispatchFn = s.dispatch
	return s
}

// Name returns the diagnostic name of the server.
func (s *Server[M]) Name() string { return s.name }

// SetShardKey assigns the server's shard-affinity key. Modules call this at
// construction so the sharded engine stages all of one unit's events —
// including pooled deliveries addressed to it and SubmitAfter transits — in
// the same shard's calendar queue. Purely placement; never affects results.
func (s *Server[M]) SetShardKey(k uint32) { s.key = k }

// ShardKey implements ShardHinted.
func (s *Server[M]) ShardKey() uint32 { return s.key }

// Submit enqueues a message for processing. Messages are processed in FIFO
// order; the handler for a message runs when the unit becomes free.
func (s *Server[M]) Submit(m M) {
	s.queue = append(s.queue, m)
	if n := len(s.queue) - s.head; n > s.maxQueue {
		s.maxQueue = n
	}
	if !s.busy {
		s.busy = true
		s.eng.Schedule(0, s.dispatchFn)
	}
}

// submitEvent defers one message across a transit delay; instances recycle
// through the owning server's free list.
type submitEvent[M any] struct {
	s    *Server[M]
	m    M
	next *submitEvent[M]
}

// ShardKey gives in-transit submissions the affinity of their destination
// server.
func (ev *submitEvent[M]) ShardKey() uint32 { return ev.s.key }

func (ev *submitEvent[M]) Fire() {
	s, m := ev.s, ev.m
	var zero M
	ev.m = zero
	ev.next = s.freeSub
	s.freeSub = ev
	s.Submit(m)
}

// SubmitAfter enqueues a message after a transit delay (e.g. NoC latency).
func (s *Server[M]) SubmitAfter(delay Cycle, m M) {
	ev := s.freeSub
	if ev == nil {
		ev = &submitEvent[M]{s: s}
	} else {
		s.freeSub = ev.next
		ev.next = nil
	}
	ev.m = m
	s.eng.ScheduleEvent(delay, ev)
}

func (s *Server[M]) dispatch() {
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
		s.busy = false
		return
	}
	m := s.queue[s.head]
	var zero M
	s.queue[s.head] = zero // release the message for GC
	s.head++
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
	}
	cost := s.h(m)
	s.served++
	s.busyTotal += cost
	s.busyUntil = s.eng.Now() + cost
	s.eng.Schedule(cost, s.dispatchFn)
}

// QueueLen returns the number of messages waiting (not including the one in
// service).
func (s *Server[M]) QueueLen() int { return len(s.queue) - s.head }

// Served returns the number of messages fully processed.
func (s *Server[M]) Served() uint64 { return s.served }

// BusyCycles returns the cumulative cycles spent in service.
func (s *Server[M]) BusyCycles() Cycle { return s.busyTotal }

// MaxQueue returns the high-water mark of the input queue.
func (s *Server[M]) MaxQueue() int { return s.maxQueue }

// Utilization returns busy cycles divided by elapsed cycles so far.
func (s *Server[M]) Utilization() float64 {
	if s.eng.Now() == 0 {
		return 0
	}
	return float64(s.busyTotal) / float64(s.eng.Now())
}
