package sim

import "context"

// Sharded execution.
//
// The engine can partition its pending-event set across N goroutine-owned
// shards (SetShards), each running a private calendar queue. Execution
// proceeds in commit windows: at a window barrier every shard drains its
// events below the new horizon into a sorted batch (in parallel with its
// peers), and the committer — the goroutine that called Run — k-way merges
// the batches with its own overlay queue and fires events in the exact
// global (cycle, seq) order the serial engine would use. Events scheduled
// by firing handlers route by shard affinity: below the horizon they join
// the committer's overlay (they may belong to the window being committed),
// at or beyond it they are staged to their shard's queue through batched
// mailboxes that the shard absorbs concurrently with the commit loop.
//
// Determinism is structural, not incidental: handlers only ever run on the
// committer goroutine, in a total order that is a pure function of
// (cycle, seq) — never of goroutine arrival — and sequence numbers are
// assigned by the committer in fire order, exactly as the serial loop
// assigns them. A sharded run is therefore bit-for-bit identical to the
// serial run at every shard count; the parallelism lives in the queue
// bookkeeping (calendar inserts, occupancy scans, far-heap sifts, window
// drains), which shards perform off the commit path. This is the
// "speculate-then-commit-in-order" fallback of conservative PDES: with
// zero-delay intra-module events the model's true lookahead is zero, so
// rather than relaxing the event order the engine stages speculatively and
// commits conservatively.

const (
	// DefaultShardWindow is the commit-window length in simulated cycles
	// when SetShards is given zero: long enough that barrier round-trips
	// amortize over hundreds of events, short enough that staged events
	// reach their shards well before they are needed back.
	DefaultShardWindow Cycle = 1024

	// MaxShards bounds the shard count; beyond this the per-barrier fan-out
	// costs more than any queue-work parallelism can return.
	MaxShards = 64
)

// SetShards configures sharded execution for subsequent Run/RunContext
// calls: n worker shards (n <= 1 restores the serial loop) and the commit
// window in cycles (0 selects DefaultShardWindow). Shard workers are
// spawned when a run starts and joined before it returns — an idle engine
// owns no goroutines. Sharding is an observer: it never changes simulated
// results, only which goroutine performs queue bookkeeping. SetShards must
// not be called while a run is in progress.
func (e *Engine) SetShards(n int, window Cycle) {
	if e.par != nil {
		panic("sim: SetShards during an active run")
	}
	if n < 1 {
		n = 1
	}
	if n > MaxShards {
		n = MaxShards
	}
	if window == 0 {
		window = DefaultShardWindow
	}
	if n != e.nshards {
		e.shards = nil // rebuilt (empty) on the next sharded run
	}
	e.nshards = n
	e.window = window
}

// Shards reports the configured shard count (1 means serial).
func (e *Engine) Shards() int {
	if e.nshards < 1 {
		return 1
	}
	return e.nshards
}

// parRun is the committer's per-run view of the sharded machinery. It is
// embedded in the engine and reused across runs so a warm engine starts a
// sharded run without allocating.
type parRun struct {
	e       *Engine
	horizon Cycle // end (exclusive) of the window being committed

	// routedMin tracks the earliest timestamp routed to any outbox since
	// the last barrier; it joins the shard minima and the overlay head in
	// the next horizon computation, so no staged event can be skipped.
	routedMin Cycle

	out []outbox // per-shard staging buffers (committer-owned)

	// Per-shard merge state for the current window.
	cur    [][]cell // drained batches, consumed front to back
	curIdx []int
	pendAt []Cycle // earliest event left in each shard's queue…
	pendOK []bool  // …and whether there is one

	// Cached overlay head, kept exact so the merge loop pays one compare
	// per event instead of a calendar-queue probe.
	ovAt  Cycle
	ovSeq uint64
	ovOK  bool
}

const noCycle = ^Cycle(0)

// startShards lazily builds the shard set and spawns one goroutine per
// shard for this run.
func (e *Engine) startShards() {
	n := e.nshards
	if e.shards == nil {
		e.shards = make([]*shard, n)
		for i := range e.shards {
			e.shards[i] = newShard(i)
		}
		e.parState = parRun{
			e:      e,
			out:    make([]outbox, n),
			cur:    make([][]cell, n),
			curIdx: make([]int, n),
			pendAt: make([]Cycle, n),
			pendOK: make([]bool, n),
		}
	}
	e.parWG.Add(n)
	for _, s := range e.shards {
		go s.loop(&e.parWG)
	}
}

// stopShards asks every shard goroutine to exit and joins them. Pending
// staged events (only present when a run was cancelled) stay in the shard
// queues; the caller abandons the engine in that case.
func (e *Engine) stopShards() {
	for _, s := range e.shards {
		s.cmd <- shardCmd{exit: true}
	}
	e.parWG.Wait()
}

// refreshOverlayHead re-probes the overlay queue after a pop or a barrier.
func (p *parRun) refreshOverlayHead() {
	p.ovAt, p.ovSeq, p.ovOK = p.e.q.peek()
}

// runSharded is the sharded counterpart of Run/RunContext. ctx may be nil
// (plain Run); checkEvery follows RunContext's contract. It always joins
// its shard goroutines before returning, whether the run completes, is
// cancelled, or panics.
func (e *Engine) runSharded(ctx context.Context, checkEvery Cycle) (Cycle, error) {
	if e.par != nil {
		panic("sim: nested Run on a sharded engine")
	}
	cancellable := ctx != nil && ctx.Done() != nil
	if cancellable {
		if checkEvery == 0 {
			checkEvery = DefaultCancelCheckCycles
		}
		if err := ctx.Err(); err != nil {
			return e.now, err
		}
	}

	e.startShards()
	p := &e.parState
	for s := range p.pendOK {
		p.pendOK[s] = false
	}
	p.routedMin = noCycle
	e.par = p
	defer func() {
		e.par = nil
		e.stopShards()
	}()

	nextCheck := e.now + checkEvery
	shards := e.shards
	for {
		// Plan the next window: the earliest pending event anywhere —
		// overlay, shard queues (as last reported), or cells routed since
		// the last barrier — opens it; nothing pending ends the run.
		gmin, any := noCycle, false
		if at, ok := e.q.peekAt(); ok {
			gmin, any = at, true
		}
		for s := range p.pendOK {
			if p.pendOK[s] && p.pendAt[s] < gmin {
				gmin, any = p.pendAt[s], true
			}
		}
		if p.routedMin != noCycle && p.routedMin < gmin {
			gmin, any = p.routedMin, true
		}
		if !any {
			return e.now, nil
		}
		p.horizon = gmin + e.window
		p.routedMin = noCycle

		// Barrier: final-flush each outbox with the drain command, then
		// collect the sorted batches. Shards drain concurrently.
		for s, sh := range shards {
			sh.cmd <- shardCmd{horizon: p.horizon, cells: p.out[s].cells}
		}
		for s, sh := range shards {
			r := <-sh.reply
			p.cur[s], p.curIdx[s] = r.batch, 0
			p.pendAt[s], p.pendOK[s] = r.nextAt, r.ok
			p.out[s].cells = r.cells
		}
		p.refreshOverlayHead()

		// Commit: merge the shard batches and the overlay and fire in
		// global (cycle, seq) order until the window is exhausted.
		for {
			best, bc := -1, (*cell)(nil)
			for s := range p.cur {
				if p.curIdx[s] < len(p.cur[s]) {
					c := &p.cur[s][p.curIdx[s]]
					if bc == nil || cellBefore(c, bc) {
						best, bc = s, c
					}
				}
			}
			fromOverlay := p.ovOK && p.ovAt < p.horizon &&
				(bc == nil || p.ovAt < bc.at || (p.ovAt == bc.at && p.ovSeq < bc.seq))
			if fromOverlay {
				c, _ := e.q.pop()
				e.now = c.at
				e.fire++
				p.refreshOverlayHead()
				if c.ev != nil {
					c.ev.Fire()
				} else {
					c.fn()
				}
			} else if bc != nil {
				c := *bc
				*bc = cell{}
				p.curIdx[best]++
				e.extPending--
				e.now = c.at
				e.fire++
				if c.ev != nil {
					c.ev.Fire()
				} else {
					c.fn()
				}
			} else {
				break // window committed
			}
			if cancellable && e.now >= nextCheck {
				if err := ctx.Err(); err != nil {
					return e.now, err
				}
				nextCheck = e.now + checkEvery
			}
		}
	}
}
