package sim

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Cycle
	for _, d := range []Cycle{5, 3, 9, 3, 0, 7} {
		d := d
		e.Schedule(d, func() { got = append(got, d) })
	}
	e.Run()
	want := []Cycle{0, 3, 3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at delay %d, want %d (order %v)", i, got[i], want[i], got)
		}
	}
}

func TestEngineSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(4, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events out of schedule order: %v", got)
		}
	}
}

func TestEngineClockAdvances(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		if e.Now() != 10 {
			t.Errorf("Now() = %d inside event, want 10", e.Now())
		}
		e.Schedule(5, func() {
			if e.Now() != 15 {
				t.Errorf("nested Now() = %d, want 15", e.Now())
			}
		})
	})
	end := e.Run()
	if end != 15 {
		t.Fatalf("Run() = %d, want 15", end)
	}
	if e.Fired() != 2 {
		t.Fatalf("Fired() = %d, want 2", e.Fired())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	for _, d := range []Cycle{1, 2, 30} {
		e.Schedule(d, func() { fired++ })
	}
	e.RunUntil(10)
	if fired != 2 {
		t.Fatalf("RunUntil(10) fired %d events, want 2", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 3 {
		t.Fatalf("Run() after RunUntil fired %d total, want 3", fired)
	}
}

// Regression: after draining all events at or below the limit, the clock
// must advance to the limit — both when later events remain pending and
// when the queue is empty — so RunFor windows stack without drift.
func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Schedule(500, func() {})
	if got := e.RunUntil(100); got != 100 {
		t.Fatalf("RunUntil(100) = %d with events pending, want 100", got)
	}
	if e.Now() != 100 {
		t.Fatalf("Now() = %d after RunUntil(100), want 100", e.Now())
	}
	// A relative schedule now counts from the horizon, not the last event.
	fired := Cycle(0)
	e.Schedule(10, func() { fired = e.Now() })
	e.RunUntil(400)
	if fired != 110 {
		t.Fatalf("event scheduled after RunUntil fired at %d, want 110", fired)
	}
	if e.Now() != 400 {
		t.Fatalf("Now() = %d after RunUntil(400), want 400", e.Now())
	}
	// Empty queue: the clock still advances to the limit.
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("Now() = %d after draining RunUntil(1000), want 1000", e.Now())
	}
}

func TestScheduleAtPastClamps(t *testing.T) {
	e := NewEngine()
	e.Schedule(20, func() {
		e.ScheduleAt(5, func() {
			if e.Now() != 20 {
				t.Errorf("past event fired at %d, want clamped to 20", e.Now())
			}
		})
	})
	e.Run()
}

// Property: for any random set of delays, events fire in nondecreasing time
// order and every event fires exactly once.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n%64) + 1
		delays := make([]Cycle, count)
		var fireTimes []Cycle
		for i := 0; i < count; i++ {
			delays[i] = Cycle(rng.Intn(1000))
			d := delays[i]
			e.Schedule(d, func() { fireTimes = append(fireTimes, d) })
		}
		e.Run()
		if len(fireTimes) != count {
			return false
		}
		sorted := append([]Cycle(nil), delays...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range sorted {
			if fireTimes[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServerSerializesWork(t *testing.T) {
	e := NewEngine()
	var done []Cycle
	srv := NewServer(e, "trs0", func(m int) Cycle { return 10 })
	wrapped := NewServer(e, "obs", func(m int) Cycle { return 0 })
	_ = wrapped
	// Observe completion times via a second schedule inside the handler.
	srv2 := NewServer(e, "unit", func(m int) Cycle {
		e.Schedule(10, func() { done = append(done, e.Now()) })
		return 10
	})
	for i := 0; i < 3; i++ {
		srv2.Submit(i)
	}
	e.Run()
	want := []Cycle{10, 20, 30}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion %d at %d, want %d (%v)", i, done[i], want[i], done)
		}
	}
	if srv2.Served() != 3 {
		t.Fatalf("Served() = %d, want 3", srv2.Served())
	}
	if srv2.BusyCycles() != 30 {
		t.Fatalf("BusyCycles() = %d, want 30", srv2.BusyCycles())
	}
	_ = srv
}

func TestServerSubmitAfter(t *testing.T) {
	e := NewEngine()
	var at Cycle
	srv := NewServer(e, "u", func(m string) Cycle {
		at = e.Now()
		return 5
	})
	srv.SubmitAfter(17, "x")
	e.Run()
	if at != 17 {
		t.Fatalf("message serviced at %d, want 17", at)
	}
}

func TestServerQueueStats(t *testing.T) {
	e := NewEngine()
	srv := NewServer(e, "u", func(m int) Cycle { return 100 })
	for i := 0; i < 5; i++ {
		srv.Submit(i)
	}
	e.RunUntil(0)
	if srv.MaxQueue() != 5 {
		t.Fatalf("MaxQueue() = %d, want 5", srv.MaxQueue())
	}
	e.Run()
	if srv.QueueLen() != 0 {
		t.Fatalf("QueueLen() = %d after drain, want 0", srv.QueueLen())
	}
}

// refEvent mirrors one scheduled event for the reference ordering.
type refEvent struct {
	at  Cycle
	seq uint64
	id  int
}

// Property: the calendar queue pops in exactly the (at, seq) order of a
// reference sort, for arbitrary interleavings of near-window, far-horizon
// and same-cycle schedules — including schedules issued from inside fired
// events (which is how the rebasing and scan-rewind paths get exercised).
func TestCalendarQueueMatchesReference(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n%512) + 8
		// Delay menu spans same-cycle bursts, the bucket window, window
		// boundaries and deep far-heap horizons.
		delays := []Cycle{0, 1, 3, 16, 22, 100, 1023, 4095, 4096, 4097, 12_000, 100_000, 1 << 21}
		var ref []refEvent
		var got []int
		id := 0
		var seq uint64
		var schedule func(depth int)
		schedule = func(depth int) {
			d := delays[rng.Intn(len(delays))]
			myID := id
			id++
			seq++
			ref = append(ref, refEvent{at: e.Now() + d, seq: seq, id: myID})
			e.Schedule(d, func() {
				got = append(got, myID)
				// A third of events schedule more work when firing.
				if depth < 3 && rng.Intn(3) == 0 {
					schedule(depth + 1)
				}
			})
		}
		for i := 0; i < count; i++ {
			schedule(0)
		}
		e.Run()
		if len(got) != len(ref) {
			return false
		}
		// The reference order is computed incrementally: events appended
		// during execution carry the at/seq observed at schedule time, so
		// a stable (at, seq) sort reproduces the contract exactly.
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].at != ref[j].at {
				return ref[i].at < ref[j].at
			}
			return ref[i].seq < ref[j].seq
		})
		for i := range ref {
			if got[i] != ref[i].id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The steady-state schedule/pop path must not allocate: closure cells and
// typed events are stored directly in calendar buckets, and delivery events
// recycle through the engine's free list.
func TestEngineZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	count := 0
	fn := func() { count++ }
	sink := NewServer(e, "sink", func(any) Cycle { return 4 })
	// Warm bucket storage (every slot of the calendar ring), free lists
	// and server queues — the state any engine reaches moments into a run.
	for i := 0; i < 2*int(calWindow); i++ {
		e.Schedule(Cycle(i), fn)
		if i%16 == 0 {
			e.ScheduleDeliver(Cycle(i), sink, 7)
		}
	}
	e.Run()
	if avg := testing.AllocsPerRun(500, func() {
		e.Schedule(3, fn)
		e.Schedule(250, fn)
		e.ScheduleDeliver(17, sink, 7)
		e.Run()
	}); avg != 0 {
		t.Fatalf("steady-state schedule/pop allocated %.1f times per run, want 0", avg)
	}
}

// SubmitAfter recycles its carrier events, so repeated deferred submits do
// not allocate either.
func TestServerSubmitAfterZeroAlloc(t *testing.T) {
	e := NewEngine()
	srv := NewServer(e, "u", func(int) Cycle { return 2 })
	for i := 0; i < 2*int(calWindow); i++ {
		srv.SubmitAfter(Cycle(i), 1)
	}
	e.Run()
	if avg := testing.AllocsPerRun(500, func() {
		srv.SubmitAfter(9, 1)
		e.Run()
	}); avg != 0 {
		t.Fatalf("SubmitAfter allocated %.1f times per run, want 0", avg)
	}
}

// Property: a serial server processing k messages of fixed cost c finishes at
// exactly k*c regardless of submission pattern within cycle 0.
func TestServerThroughputProperty(t *testing.T) {
	f := func(k uint8, c uint8) bool {
		e := NewEngine()
		cost := Cycle(c%50) + 1
		n := int(k%32) + 1
		srv := NewServer(e, "u", func(int) Cycle { return cost })
		for i := 0; i < n; i++ {
			srv.Submit(i)
		}
		end := e.Run()
		return end == Cycle(n)*cost
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// RunContext with a never-cancellable context must be exactly Run: same
// final clock, same fired count, same event order.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	build := func() (*Engine, *[]Cycle) {
		e := NewEngine()
		var got []Cycle
		for _, d := range []Cycle{5, 3, 9, 3, 0, 70000, 7, 200000} {
			d := d
			e.Schedule(d, func() {
				got = append(got, d)
				if d == 3 {
					e.Schedule(100000, func() { got = append(got, 100003) })
				}
			})
		}
		return e, &got
	}

	ref, refGot := build()
	refEnd := ref.Run()

	e, got := build()
	end, err := e.RunContext(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if end != refEnd || e.Fired() != ref.Fired() {
		t.Fatalf("RunContext end=%d fired=%d, Run end=%d fired=%d",
			end, e.Fired(), refEnd, ref.Fired())
	}
	if len(*got) != len(*refGot) {
		t.Fatalf("RunContext fired %d events, Run fired %d", len(*got), len(*refGot))
	}
	for i := range *refGot {
		if (*got)[i] != (*refGot)[i] {
			t.Fatalf("event %d: RunContext order %v, Run order %v", i, *got, *refGot)
		}
	}
}

// A cancellable-but-never-cancelled context must not perturb the run either
// (cancellation polling is observational), at any poll granularity.
func TestRunContextUncancelledIsDeterministic(t *testing.T) {
	run := func(every Cycle) (Cycle, uint64) {
		e := NewEngine()
		for i := Cycle(0); i < 500; i++ {
			i := i
			e.Schedule(i*137, func() {
				if i%3 == 0 {
					e.Schedule(i*31+1, func() {})
				}
			})
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		end, err := e.RunContext(ctx, every)
		if err != nil {
			t.Fatal(err)
		}
		return end, e.Fired()
	}
	refEnd, refFired := run(0)
	for _, every := range []Cycle{1, 7, 1000, 1 << 20} {
		end, fired := run(every)
		if end != refEnd || fired != refFired {
			t.Fatalf("checkEvery=%d: end=%d fired=%d, want end=%d fired=%d",
				every, end, fired, refEnd, refFired)
		}
	}
}

// Cancellation stops the loop within one poll interval of simulated time and
// returns the context's error with the clock parked at the last fired event.
func TestRunContextCancelStopsWithinInterval(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired []Cycle
	for i := Cycle(0); i < 100; i++ {
		i := i
		e.Schedule(i*1000, func() {
			fired = append(fired, i*1000)
			if i == 10 {
				cancel()
			}
		})
	}
	end, err := e.RunContext(ctx, 1000)
	if err != context.Canceled {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	// The cancel lands at cycle 10000; the next poll boundary is at most
	// one interval later, so no event beyond 11000 may have fired.
	if end > 11000 {
		t.Fatalf("engine ran to %d after cancellation at 10000 (poll every 1000)", end)
	}
	if e.Pending() == 0 {
		t.Fatal("cancelled run should leave pending events in the queue")
	}
	if got := fired[len(fired)-1]; Cycle(end) != got {
		t.Fatalf("clock %d not parked at last fired event %d", end, got)
	}
}

// A context cancelled before the run starts must fire nothing beyond the
// first poll window.
func TestRunContextPreCancelled(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(0, func() { n++ })
	e.Schedule(DefaultCancelCheckCycles+1, func() { n++ })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.RunContext(ctx, 0)
	if err != context.Canceled {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	if n > 1 {
		t.Fatalf("fired %d events after pre-cancelled context, want at most the first window", n)
	}
}
